"""Pass 3 — counter reconciliation over :mod:`repro.perf.counters` output.

The PMU-style counters are emitted independently by the scheduler, the
memory hierarchy, the exact cache simulator, the executor and the OpenMP
model — so their published identities cross-check one subsystem against
another:

* ``pipeline.issue_slots.total == used + stalled`` and
  ``used == pipeline.instructions`` (front-end slot accounting);
* the dynamic instruction mix sums to the instruction count, and each
  per-op mix counter matches an independent recount of the compiled
  stream (flop consistency between the analytic path and the counters);
* ``cachesim.accesses == hits + misses`` and ``evictions <= misses``
  (exact cache-simulator bookkeeping);
* per-level traffic forms a chain — misses leaving one cache level are
  exactly the accesses entering the next, ending at ``dram.hits``;
* ``exec.seconds + exec.hidden_seconds == exec.compute_seconds +
  exec.memory_seconds`` (the max/min roofline split, summed over runs);
* parallel sweeps merge per-task counters to exactly the serial totals
  (the OpenMP-model analog of per-thread sums equalling merged totals).

:func:`check_counters` applies every identity that is decidable on a
bare :class:`~repro.perf.counters.CounterSet` (this is what strict mode
runs on each scope exit); :func:`check_profile` adds the checks that
need the profile's system and toolchain context.

This module also hosts the **ECM reconciliation pass**:
:func:`check_ecm` compares the analytical ECM tier
(:mod:`repro.ecm.model`) against the fast engine for one kernel point
and :func:`run_ecm_pass` sweeps every catalogued kernel under every
toolchain, demanding the deviation stay inside the per-kernel bounds of
:data:`repro.ecm.model.ECM_TOLERANCES`.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.machine.isa import Op
from repro.validate.report import PassResult, Violation

__all__ = [
    "check_counters",
    "check_profile",
    "check_sweep_merge",
    "check_ecm",
    "run_counter_pass",
    "run_ecm_pass",
]

#: FP arithmetic ops for the instruction-mix flop consistency check
_FP_OPS = frozenset((
    Op.FADD, Op.FMUL, Op.FMA, Op.FDIV, Op.FSQRT, Op.FRECPE, Op.FRSQRTE,
    Op.FEXPA, Op.FSCALE, Op.FCMP, Op.FSEL, Op.FMINMAX, Op.FCVT, Op.FMOV,
))

#: canonical inner-to-outer level order for chain checks
_LEVEL_ORDER = ("L1", "L2", "L3")


def _close(a: float, b: float) -> bool:
    """Equality with float-sum slack (counters accumulate additively)."""
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def check_counters(counters: Mapping[str, float],
                   label: str = "") -> list[Violation]:
    """Identities decidable on a bare counter mapping.

    Each identity is only evaluated when its counters are present, so
    partial scopes (a scope around only the scheduler, say) validate
    cleanly.  All checked identities are linear in the emissions, so
    they hold for any union of complete runs — which is exactly what a
    scope accumulates.
    """
    out: list[Violation] = []
    where = label or getattr(counters, "label", "") or "<counters>"
    get = lambda name: counters.get(name, 0.0)  # noqa: E731

    if "pipeline.issue_slots.total" in counters:
        total = get("pipeline.issue_slots.total")
        used = get("pipeline.issue_slots.used")
        stalled = get("pipeline.issue_slots.stalled")
        if not _close(total, used + stalled):
            out.append(Violation(
                "counters.slots.identity", where,
                f"issue_slots.total {total} != used {used} + stalled "
                f"{stalled}",
            ))
        if "pipeline.instructions" in counters and not _close(
                used, get("pipeline.instructions")):
            out.append(Violation(
                "counters.slots.used", where,
                f"issue_slots.used {used} != pipeline.instructions "
                f"{get('pipeline.instructions')}",
            ))

    mix = [v for k, v in counters.items()
           if k.startswith("pipeline.instr_mix.")]
    if mix and "pipeline.instructions" in counters:
        if not _close(sum(mix), get("pipeline.instructions")):
            out.append(Violation(
                "counters.instr_mix.sum", where,
                f"instruction mix sums to {sum(mix)}, "
                f"pipeline.instructions is {get('pipeline.instructions')}",
            ))

    if "cachesim.accesses" in counters:
        acc = get("cachesim.accesses")
        h, m = get("cachesim.hits"), get("cachesim.misses")
        if not _close(acc, h + m):
            out.append(Violation(
                "counters.cachesim.identity", where,
                f"cachesim.accesses {acc} != hits {h} + misses {m}",
            ))
        if get("cachesim.evictions") > m + 1e-9:
            out.append(Violation(
                "counters.cachesim.evictions", where,
                f"cachesim.evictions {get('cachesim.evictions')} exceeds "
                f"misses {m}",
            ))

    if "exec.seconds" in counters:
        lhs = get("exec.seconds") + get("exec.hidden_seconds")
        rhs = get("exec.compute_seconds") + get("exec.memory_seconds")
        if not _close(lhs, rhs):
            out.append(Violation(
                "counters.exec.split", where,
                f"exec.seconds + hidden ({lhs}) != compute + memory "
                f"({rhs}) — the max/min roofline split is broken",
            ))

    # mixed-system scopes may interleave 2- and 3-level hierarchies, so
    # only the (always valid) containment inequality is checked here;
    # check_profile() enforces the exact chain for a known hierarchy
    present = [n for n in _LEVEL_ORDER
               if f"memory.levels.{n}.hits" in counters
               or f"memory.levels.{n}.misses" in counters]
    for inner, outer in zip(present, present[1:]):
        inner_m = get(f"memory.levels.{inner}.misses")
        outer_acc = (get(f"memory.levels.{outer}.hits")
                     + get(f"memory.levels.{outer}.misses"))
        if outer_acc > inner_m + 1e-9:
            out.append(Violation(
                "counters.levels.containment", where,
                f"{outer} sees {outer_acc} accesses but only {inner_m} "
                f"queries missed {inner}",
            ))
    if present and get("memory.levels.dram.hits") > (
            get(f"memory.levels.{present[0]}.misses") + 1e-9):
        out.append(Violation(
            "counters.levels.containment", where,
            f"dram serves {get('memory.levels.dram.hits')} queries but "
            f"only {get(f'memory.levels.{present[0]}.misses')} missed "
            f"{present[0]}",
        ))
    return out


def check_profile(profile) -> list[Violation]:
    """Full reconciliation of one :class:`~repro.perf.profile.KernelProfile`.

    Adds to :func:`check_counters`: the exact per-level chain for the
    profile's hierarchy, the instruction-mix recount against a fresh
    compile of the same kernel, and the 1%-band agreement of
    ``derived.reconciliation`` with the analytic run.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import get_toolchain
    from repro.kernels.catalog import build_kernel
    from repro.machine.systems import get_system

    c = profile.counters
    where = f"profile:{profile.kernel}/{profile.toolchain}"
    out = check_counters(c, label=where)
    get = lambda name: c.get(name, 0.0)  # noqa: E731

    # exact level chain for this hierarchy: misses leaving level k are
    # the accesses entering level k+1; the last level drains into DRAM
    system = get_system(profile.system)
    names = [lvl.name for lvl in system.hierarchy.levels]
    for inner, outer in zip(names, names[1:]):
        inner_m = get(f"memory.levels.{inner}.misses")
        outer_acc = (get(f"memory.levels.{outer}.hits")
                     + get(f"memory.levels.{outer}.misses"))
        if not _close(inner_m, outer_acc):
            out.append(Violation(
                "counters.levels.chain", where,
                f"{inner}.misses {inner_m} != {outer} accesses "
                f"{outer_acc}",
            ))
    if not _close(get(f"memory.levels.{names[-1]}.misses"),
                  get("memory.levels.dram.hits")):
        out.append(Violation(
            "counters.levels.chain", where,
            f"{names[-1]}.misses {get(f'memory.levels.{names[-1]}.misses')}"
            f" != dram.hits {get('memory.levels.dram.hits')}",
        ))

    # instruction-mix recount: an independent compile of the same kernel
    # must predict every pipeline.instr_mix.* counter exactly
    compiled = compile_loop(
        build_kernel(profile.kernel),
        get_toolchain(profile.toolchain),
        system.cpu,
    )
    iters = get("pipeline.iterations")
    fp_expected = 0.0
    for op, count in compiled.stream.counts().items():
        expect = count * iters
        got = get(f"pipeline.instr_mix.{op.value}")
        if not _close(got, expect):
            out.append(Violation(
                "counters.instr_mix.recount", where,
                f"instr_mix.{op.value} is {got}, an independent recount "
                f"of the stream says {expect}",
            ))
        if op in _FP_OPS:
            fp_expected += expect
    fp_got = sum(v for k, v in c.items()
                 if k.startswith("pipeline.instr_mix.")
                 and Op(k.rsplit(".", 1)[1]) in _FP_OPS)
    if not _close(fp_got, fp_expected):
        out.append(Violation(
            "counters.flops.consistency", where,
            f"FP instruction counters sum to {fp_got}, the stream's "
            f"fp_ops x iterations is {fp_expected}",
        ))

    rec = profile.derived()["reconciliation"]
    if not math.isclose(rec["seconds_from_counters"], profile.run.seconds,
                        rel_tol=0.01):
        out.append(Violation(
            "counters.reconcile.seconds", where,
            f"seconds recomputed from counters "
            f"({rec['seconds_from_counters']}) is more than 1% away from "
            f"the model's {profile.run.seconds}",
        ))
    return out


def check_sweep_merge(points: int = 6) -> list[Violation]:
    """Parallel sweep totals must equal the serial totals exactly.

    Runs the same schedule sweep twice under a profiling scope — once
    serially, once on the thread pool (where each task records into its
    own scope and :mod:`repro.engine.sweep` merges in submission order)
    — and demands identical counter sets.  This is the model's version
    of "OpenMP per-thread sums equal merged totals".
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.engine.scheduler import schedule_on
    from repro.engine.sweep import map_schedules
    from repro.kernels.loops import LOOP_NAMES, build_loop
    from repro.machine.microarch import A64FX
    from repro.perf.counters import ProfileScope

    names = (LOOP_NAMES * 2)[:points]
    streams = [
        compile_loop(build_loop(n), TOOLCHAINS["fujitsu"], A64FX).stream
        for n in names
    ]
    totals = []
    for mode in ("serial", "thread"):
        with ProfileScope(f"sweep:{mode}") as counters:
            map_schedules(
                lambda s: schedule_on(A64FX, s), streams, mode=mode
            )
        # the schedule cache's own hit/miss split legitimately differs
        # between the two runs (the first warms it for the second); the
        # simulated pipeline.* payloads are what must merge identically
        totals.append({k: v for k, v in counters.as_dict().items()
                       if not k.startswith("schedule_cache.")})
    serial, threaded = totals
    out: list[Violation] = []
    for key in sorted(set(serial) | set(threaded)):
        a, b = serial.get(key, 0.0), threaded.get(key, 0.0)
        if a != b:
            out.append(Violation(
                "counters.sweep.merge", f"sweep:{key}",
                f"threaded total {b} != serial total {a}",
            ))
    return out


def check_ecm(kernel: str, toolchain: str = "fujitsu", *,
              n: int | None = None) -> list[Violation]:
    """Reconcile the ECM prediction against the engine for one point.

    Runs :func:`repro.ecm.model.compare_kernel` and reports a violation
    when the relative deviation leaves the kernel's stated tolerance.
    """
    from repro.ecm.model import compare_kernel

    cmp = compare_kernel(kernel, toolchain, n=n)
    if cmp.within_tolerance:
        return []
    return [Violation(
        "ecm.deviation", f"ecm:{kernel}/{toolchain}",
        f"ecm {cmp.prediction.seconds * 1e6:.3f} us vs engine "
        f"{cmp.engine_seconds * 1e6:.3f} us: deviation "
        f"{cmp.deviation * 100.0:+.1f}% exceeds the stated "
        f"{cmp.tolerance * 100.0:.0f}% bound (bound: "
        f"{cmp.prediction.bound})",
    )]


def run_ecm_pass() -> PassResult:
    """Reconcile the ECM tier over the full kernel x toolchain grid.

    Every catalogued kernel (paper suite + SpMV/stencil workloads) is
    compared under every toolchain at its default problem size — the
    same grid the calibration of
    :data:`repro.ecm.model.ECM_TOLERANCES` swept, so a model or machine
    -table change that moves any point past its bound fails loudly.
    """
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.catalog import ALL_KERNEL_NAMES

    result = PassResult(name="ecm")
    for kernel in ALL_KERNEL_NAMES:
        for toolchain in sorted(TOOLCHAINS):
            result.violations += check_ecm(kernel, toolchain)
            result.checked += 1
    return result


def run_counter_pass() -> PassResult:
    """Reconcile profiles of representative kernels + the sweep merge.

    Profiles cover an L1-resident compute kernel, a gather (index
    traffic), and a large-``n`` stream that spills past L2 — so the
    level-chain and byte identities see both cache-resident and
    DRAM-bound shapes.
    """
    import numpy as np

    from repro.machine.memory import CacheSim
    from repro.perf.counters import ProfileScope
    from repro.perf.profile import profile_kernel

    result = PassResult(name="counters")
    for kernel, toolchain, n in (
        ("simple", "fujitsu", None),
        ("gather", "fujitsu", None),
        ("exp", "gnu", None),
        ("simple", "intel", None),
        ("exp", "fujitsu", 4_000_000),
    ):
        prof = profile_kernel(kernel, toolchain, n=n)
        result.violations += check_profile(prof)
        result.checked += 1

    # exact cache-simulator identity on a replayed trace
    with ProfileScope("validate:cachesim") as counters:
        sim = CacheSim(capacity=4096, line=64, assoc=4)
        rng = np.random.default_rng(7)
        sim.access_trace(rng.integers(0, 65536, size=4096))
    result.violations += check_counters(counters)
    result.checked += 1

    result.violations += check_sweep_merge()
    result.checked += 1
    return result
