"""Strict mode — run the validators inline at every call site.

:func:`install_strict_hooks` registers three observers:

* every compiled loop runs the pass-1 IR verifier
  (:func:`repro.validate.ir.verify_compiled`);
* every simulated schedule and every executor run goes through the
  pass-2 invariant checker
  (:class:`repro.validate.schedule.ScheduleInvariantChecker`);
* every cleanly-exited :class:`~repro.perf.counters.ProfileScope` runs
  the pass-3 counter identities
  (:func:`repro.validate.reconcile.check_counters`).

The first violation raises
:class:`~repro.validate.report.ValidationError` at the offending call
site — turning a silent model bug into a pinpointed traceback.  The
test suite installs these hooks for the whole session when the
environment variable ``REPRO_VALIDATE=1`` is set (see
``tests/conftest.py``); CI runs the tier-1 subset that exercises the
engine this way.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

from repro.validate.report import ValidationError
from repro.validate.schedule import ScheduleInvariantChecker

__all__ = [
    "install_strict_hooks",
    "uninstall_strict_hooks",
    "strict_hooks",
    "strict_from_env",
]

_checker: ScheduleInvariantChecker | None = None


def _on_compile(compiled) -> None:
    """Compile observer: IR-verify every lowered loop, raise on breach."""
    from repro.validate.ir import verify_compiled

    found = verify_compiled(compiled)
    if found:
        raise ValidationError(found)


def _on_scope_exit(counters) -> None:
    """Scope observer: reconcile counter identities, raise on breach."""
    from repro.validate.reconcile import check_counters

    found = check_counters(counters)
    if found:
        raise ValidationError(found)


def install_strict_hooks() -> None:
    """Register the strict observers (idempotent)."""
    global _checker
    if _checker is not None:
        return
    from repro.compilers.codegen import add_compile_observer
    from repro.perf.counters import add_scope_observer

    _checker = ScheduleInvariantChecker(strict=True).install()
    add_compile_observer(_on_compile)
    add_scope_observer(_on_scope_exit)


def uninstall_strict_hooks() -> None:
    """Deregister the strict observers (idempotent)."""
    global _checker
    if _checker is None:
        return
    from repro.compilers.codegen import remove_compile_observer
    from repro.perf.counters import remove_scope_observer

    _checker.uninstall()
    remove_compile_observer(_on_compile)
    remove_scope_observer(_on_scope_exit)
    _checker = None


@contextlib.contextmanager
def strict_hooks() -> Iterator[None]:
    """Strict validation for the duration of a ``with`` block."""
    install_strict_hooks()
    try:
        yield
    finally:
        uninstall_strict_hooks()


def strict_from_env() -> bool:
    """Install the strict hooks when ``REPRO_VALIDATE=1``; report if so."""
    if os.environ.get("REPRO_VALIDATE") == "1":
        install_strict_hooks()
        return True
    return False
