"""Run every validation pass and assemble the versioned report."""

from __future__ import annotations

from repro.validate.report import ValidationReport

__all__ = ["validate_all"]


def validate_all(seeds: int = 25, bands: bool = True) -> ValidationReport:
    """Run passes 1-6 (and optionally the paper-band scoring).

    Parameters
    ----------
    seeds:
        Number of differential-fuzz seeds for pass 4; the machine-spec
        fuzz lane (pass 6) runs ``max(5, seeds // 2)`` seeds of random
        declarative machines through the same scheduler oracle.
    bands:
        Also re-score every paper expectation table (slowest pass —
        ``--no-bands`` on the CLI skips it for quick checks).
    """
    from repro.validate.bands import run_band_pass
    from repro.validate.fuzz import run_fuzz_pass, run_machine_fuzz_pass
    from repro.validate.ir import run_ir_pass
    from repro.validate.reconcile import run_counter_pass, run_ecm_pass
    from repro.validate.schedule import run_schedule_pass

    report = ValidationReport()
    report.passes.append(run_ir_pass())
    report.passes.append(run_schedule_pass())
    report.passes.append(run_counter_pass())
    report.passes.append(run_fuzz_pass(seeds=seeds))
    report.passes.append(run_ecm_pass())
    report.passes.append(run_machine_fuzz_pass(seeds=max(5, seeds // 2)))
    if bands:
        report.passes.append(run_band_pass())
    return report
