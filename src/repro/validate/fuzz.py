"""Pass 4 — differential fuzz oracle against the golden reference.

The fast event-driven scheduler (:mod:`repro.engine.scheduler`) carries
two optimizations the frozen seed implementation
(:mod:`repro.engine._reference`) does not: event-driven time advance and
steady-state period detection.  Both are required to be *observationally
invisible*.  This pass generates randomized-but-well-formed IR loops,
compiles each under a randomly drawn toolchain, and demands that

* the fast scheduler with period detection,
* the fast scheduler with detection disabled (full simulation),
* the batched SoA engine (:func:`repro.engine.batch.schedule_batch`),
  including its ``pipeline.*`` counter payload, and
* the reference scheduler

return bit-identical :class:`~repro.engine.scheduler.ScheduleResult`
values, and that a schedule-cache hit replays both the result and the
exact counter payload of the original simulation.

Every generated loop also passes through the pass-1 IR verifier, so a
fuzz seed that produces malformed IR is reported as a generator bug
rather than crashing the oracle.

Each seed is additionally cross-checked against the *analytical* tier:
the same compiled loop gets an ECM prediction
(:func:`repro.ecm.model.predict_compiled`) and the ecm/engine runtime
ratio must stay inside the documented envelope
(:data:`ECM_FUZZ_RATIO_LOW` .. :data:`ECM_FUZZ_RATIO_HIGH`); a breach
reports the offending seed.
"""

from __future__ import annotations

import random

from repro.validate.report import PassResult, Violation

__all__ = [
    "random_loop",
    "random_machine_spec",
    "check_seed",
    "check_ecm_seed",
    "check_machine_seed",
    "run_fuzz_pass",
    "run_machine_fuzz_pass",
    "ECM_FUZZ_RATIO_LOW",
    "ECM_FUZZ_RATIO_HIGH",
]

#: envelope for ecm/engine seconds on fuzzed loops.  The upper edge
#: rests on the composition ceiling: both tiers price memory streams
#: with the same effective-bandwidth rule, so whenever the analytical
#: ``T_comp`` stays at or below the simulated compute time,
#: ``ecm <= T_comp' + T_data <= 2 * max(T_comp', T_data) = 2 * engine``
#: — additive composition can at most double the roofline max, and
#: random loops do land exactly on 2.0 when compute and memory tie
#: (seeds 1050/1076 over 1000-1099).  The in-core window bound may
#: overshoot the simulator by a few percent (see
#: :mod:`repro.ecm.incore`), so the ceiling carries 10% headroom.  The
#: lower edge is calibrated: the in-core bounds undershoot long
#: dependence chains by at most ~25% across seeds 1000-1099, kept at
#: 0.5 for headroom.
ECM_FUZZ_RATIO_LOW = 0.5
ECM_FUZZ_RATIO_HIGH = 2.0 * 1.10

#: math functions every toolchain model can lower (scalar or vector)
_FNS = ("recip", "sqrt", "exp", "sin", "pow")
_PATTERNS = ("contig", "stride", "random", "window128")
_BINOPS = ("+", "-", "*", "/")
_CMPS = ("<", "<=", ">", ">=", "==")


def random_loop(rng: random.Random, name: str = "fuzz"):
    """Build a random well-formed IR loop.

    Draws the structural axes the paper's suite exercises: contiguous /
    strided / indexed access, predication, gather and scatter, reductions,
    and vector-math calls — composed randomly rather than from the fixed
    Section III shapes.
    """
    from repro.compilers.ir import (
        ArrayInfo, BinOp, Call, Cmp, Const, Load, LoopIdx, Reduce, Store,
        Var,
    )

    kib = rng.choice((4, 16, 48, 512, 4096, 65536))
    arrays = {
        "x": ArrayInfo("x", footprint=kib * 1024.0,
                       pattern=rng.choice(_PATTERNS)),
        "y": ArrayInfo("y", footprint=kib * 1024.0, pattern="contig"),
    }
    use_gather = rng.random() < 0.4
    use_scatter = rng.random() < 0.25
    if use_gather or use_scatter:
        arrays["idx"] = ArrayInfo("idx", footprint=kib * 1024.0,
                                  pattern="contig")

    def leaf():
        r = rng.random()
        if r < 0.35:
            return Load("x", index=LoopIdx())
        if r < 0.45 and use_gather:
            return Load("x", index=Load("idx", index=LoopIdx()))
        if r < 0.7:
            return Const(round(rng.uniform(0.5, 4.0), 3))
        return Var("s")

    def expr(depth: int):
        if depth <= 0 or rng.random() < 0.3:
            return leaf()
        r = rng.random()
        if r < 0.25:
            fn = rng.choice(_FNS)
            args = ((expr(depth - 1), Const(2.0)) if fn == "pow"
                    else (expr(depth - 1),))
            return Call(fn, args)
        return BinOp(rng.choice(_BINOPS), expr(depth - 1), expr(depth - 1))

    body = []
    mask = None
    if rng.random() < 0.3:
        mask = Cmp(rng.choice(_CMPS), Load("x", index=LoopIdx()),
                   Const(round(rng.uniform(-1.0, 1.0), 3)))
    index = (Load("idx", index=LoopIdx()) if use_scatter else LoopIdx())
    body.append(Store("y", expr(rng.randint(1, 3)), index=index, mask=mask))
    if rng.random() < 0.35:
        body.append(Reduce("s", rng.choice(("+", "max", "min")),
                           expr(rng.randint(1, 2))))

    from repro.compilers.ir import Loop

    return Loop(
        name=name,
        length=rng.choice((512, 4096, 100_000)),
        body=tuple(body),
        arrays=arrays,
    )


def _result_fields(result) -> dict:
    """The comparable fields of a ScheduleResult (label excluded)."""
    return {
        "cycles_per_iter": result.cycles_per_iter,
        "elements_per_iter": result.elements_per_iter,
        "instructions_per_iter": result.instructions_per_iter,
        "ipc": result.ipc,
        "pipe_occupancy": dict(result.pipe_occupancy),
        "bound": result.bound,
    }


def _results_equal(a: dict, b: dict) -> set:
    """Field names where two result dicts disagree.

    Everything is compared bit-exact except ``pipe_occupancy``, whose
    busy-cycle sums accumulate in a different order under period
    detection and may wobble in the last bit (compared at the same 1e-9
    the golden-equivalence suite uses).
    """
    import math

    diff = {k for k in a if k != "pipe_occupancy" and a[k] != b[k]}
    occ_a, occ_b = a["pipe_occupancy"], b["pipe_occupancy"]
    if set(occ_a) != set(occ_b) or any(
        not math.isclose(occ_a[p], occ_b[p], rel_tol=1e-9, abs_tol=1e-12)
        for p in occ_a
    ):
        diff.add("pipe_occupancy")
    return diff


def check_seed(seed: int) -> list[Violation]:
    """Differential-check one fuzz seed; returns any violations.

    Compiles one random loop under one random toolchain and runs the
    three-way scheduler comparison plus the cache-replay check.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.engine._reference import ReferenceScheduler
    from repro.engine.batch import schedule_batch
    from repro.engine.scheduler import PipelineScheduler, schedule_on
    from repro.machine.microarch import A64FX, SKYLAKE_6140
    from repro.perf.counters import ProfileScope
    from repro.validate.ir import verify_loop

    rng = random.Random(seed)
    loop = random_loop(rng, name=f"fuzz{seed}")
    where = f"seed={seed}"

    bad_ir = verify_loop(loop)
    if bad_ir:
        return [Violation("fuzz.generator", where,
                          f"generator produced malformed IR: {v}")
                for v in bad_ir]

    tc = rng.choice(sorted(TOOLCHAINS.values(), key=lambda t: t.name))
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    compiled = compile_loop(loop, tc, march)
    stream = compiled.stream

    out: list[Violation] = []
    with ProfileScope(f"fuzz:{seed}:scalar") as scalar_counters:
        fast = PipelineScheduler(march).steady_state(stream)
    full = PipelineScheduler(march, extrapolate=False).steady_state(stream)
    golden = ReferenceScheduler(march).steady_state(stream)
    with ProfileScope(f"fuzz:{seed}:batch") as batch_counters:
        batched = schedule_batch([(march, stream)], cache=False)[0]
    for label, other in (
        ("extrapolate=False", full),
        ("reference", golden),
        ("batched", batched),
    ):
        a, b = _result_fields(fast), _result_fields(other)
        diff = _results_equal(a, b)
        if diff:
            out.append(Violation(
                "fuzz.divergence", f"{where} tc={tc.name}",
                f"fast scheduler disagrees with {label} on "
                f"{sorted(diff)}: {a} vs {b}",
            ))
    if scalar_counters.as_dict() != batch_counters.as_dict():
        out.append(Violation(
            "fuzz.batch.counters", f"{where} tc={tc.name}",
            f"batched engine emitted different counters: "
            f"{batch_counters.as_dict()} vs {scalar_counters.as_dict()}",
        ))

    # cache-hit replay: result and counter payload must be identical
    with ProfileScope(f"fuzz:{seed}:miss") as miss:
        first = schedule_on(march, stream)
    with ProfileScope(f"fuzz:{seed}:hit") as hit:
        second = schedule_on(march, stream)
    if _result_fields(first) != _result_fields(second):
        out.append(Violation(
            "fuzz.cache.result", f"{where} tc={tc.name}",
            "schedule-cache hit returned a different result than the miss",
        ))
    def payload(counters) -> dict:
        # drop the cache's own hit/miss bookkeeping: it differs between
        # the two scopes by construction
        return {k: v for k, v in counters.as_dict().items()
                if not k.startswith("schedule_cache.")}

    if payload(miss) != payload(hit):
        out.append(Violation(
            "fuzz.cache.counters", f"{where} tc={tc.name}",
            f"cache hit replayed different counters: "
            f"{payload(hit)} vs {payload(miss)}",
        ))

    # analytical-tier cross-check on the very same compiled loop
    out += _ecm_envelope(compiled, tc, where)
    return out


def _ecm_envelope(compiled, tc, where: str) -> list[Violation]:
    """Check one compiled fuzz loop's ecm/engine ratio envelope."""
    from repro.ecm.model import engine_seconds_for, predict_compiled
    from repro.machine.systems import get_system

    system = get_system("skylake" if tc.target == "x86" else "ookami")
    pred = predict_compiled(compiled, system)
    engine = engine_seconds_for(compiled, system)
    ratio = pred.seconds / engine
    if ECM_FUZZ_RATIO_LOW <= ratio <= ECM_FUZZ_RATIO_HIGH:
        return []
    return [Violation(
        "fuzz.ecm.deviation", f"{where} tc={tc.name}",
        f"ecm/engine ratio {ratio:.4f} outside "
        f"[{ECM_FUZZ_RATIO_LOW}, {ECM_FUZZ_RATIO_HIGH}] "
        f"(ecm {pred.seconds * 1e6:.3f} us vs engine "
        f"{engine * 1e6:.3f} us, bound {pred.bound})",
    )]


def check_ecm_seed(seed: int) -> list[Violation]:
    """ECM-only fuzz check for one seed (a :func:`check_seed` subset).

    Rebuilds the seed's random loop and toolchain draw, compiles it, and
    verifies the analytical prediction stays inside the ecm/engine ratio
    envelope.  Malformed-IR seeds return no violations here; they are
    reported as generator bugs by :func:`check_seed`.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.machine.microarch import A64FX, SKYLAKE_6140
    from repro.validate.ir import verify_loop

    rng = random.Random(seed)
    loop = random_loop(rng, name=f"fuzz{seed}")
    if verify_loop(loop):
        return []
    tc = rng.choice(sorted(TOOLCHAINS.values(), key=lambda t: t.name))
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    compiled = compile_loop(loop, tc, march)
    return _ecm_envelope(compiled, tc, f"seed={seed}")


def run_fuzz_pass(seeds: int = 25, base_seed: int = 1000) -> PassResult:
    """Run *seeds* differential fuzz seeds starting at *base_seed*."""
    result = PassResult(name="fuzz")
    for i in range(seeds):
        result.violations += check_seed(base_seed + i)
        result.checked += 1
    return result


# ----------------------------------------------------------------------
# Machine-spec fuzz lane: random declarative machines through the full
# engine stack.
# ----------------------------------------------------------------------

#: axes the machine fuzzer draws from (anything a grid sweep can reach)
_FUZZ_VECTOR_BITS = (128, 192, 256, 384, 512, 768, 1024)
_FUZZ_WINDOWS = (16, 48, 72, 128, 224, 384)
_FUZZ_ISSUE = (1, 2, 3, 4, 5, 6, 8)


def random_machine_spec(rng: random.Random, name: str = "fuzzmachine"):
    """Draw a random valid :class:`~repro.machine.spec.MachineSpec`.

    Starts from a random preset (so the timing table always covers the
    op vocabulary), then perturbs the spec axes a grid sweep explores —
    vector length, issue width, window, clocks, HBM bandwidth — and
    jitters a subset of op latencies.  Blocking ops (rtput == latency)
    stay blocking so the A64FX sqrt mechanism keeps appearing in the
    fuzzed population.  Spec validation runs in the constructor, so a
    bad draw fails loudly here, not deep in the scheduler.
    """
    from dataclasses import replace

    from repro.machine.spec import (
        A64FX_SPEC, EPYC_7742_SPEC, RVV_SPEC, SKYLAKE_6140_SPEC,
    )

    base = rng.choice((A64FX_SPEC, SKYLAKE_6140_SPEC, RVV_SPEC,
                       EPYC_7742_SPEC))
    timings = []
    for t in base.timings:
        if rng.random() < 0.3:
            latency = max(1.0, round(t.latency * rng.uniform(0.5, 2.0)))
            rtput = latency if t.rtput == t.latency else t.rtput
            t = replace(t, latency=latency, rtput=rtput)
        timings.append(t)
    clock = round(rng.uniform(1.0, 3.8), 2)
    spec = replace(
        base,
        name=f"{name}({base.name})#{rng.randrange(1 << 30)}",
        system_name="",
        vector_bits=rng.choice(_FUZZ_VECTOR_BITS),
        issue_width=rng.choice(_FUZZ_ISSUE),
        window=rng.choice(_FUZZ_WINDOWS),
        clock_ghz=clock,
        allcore_clock_ghz=round(clock * rng.uniform(0.5, 1.0), 2),
        timings=tuple(timings),
    )
    if spec.memory is not None and rng.random() < 0.5:
        spec = replace(
            spec,
            memory=replace(spec.memory,
                           dram_bw_gbs=rng.choice((64.0, 128.0, 256.0,
                                                   512.0))),
        )
    return spec


def check_machine_seed(seed: int) -> list[Violation]:
    """Differential-check one random machine spec; returns violations.

    Draws a random valid spec, requires the JSON round-trip to rebuild
    a value-equal spec sharing the *same* cached
    :class:`~repro.machine.microarch.Microarch`, then compiles a random
    loop for the machine (first compiling toolchain of its ISA) and
    demands the fast / full / reference / batched schedulers agree
    bit-exactly — the same oracle :func:`check_seed` applies to the
    preset machines, on a machine that exists only as data.  No ECM
    envelope: its calibration is for the real machines.
    """
    from repro.compilers.codegen import compile_loop
    from repro.engine._reference import ReferenceScheduler
    from repro.engine.batch import schedule_batch
    from repro.engine.scheduler import PipelineScheduler
    from repro.machine.grid import _toolchains_for
    from repro.machine.spec import MachineSpec
    from repro.perf.counters import ProfileScope
    from repro.validate.ir import verify_loop

    rng = random.Random(seed)
    where = f"seed={seed}"
    try:
        spec = random_machine_spec(rng, name=f"fuzzmachine{seed}")
    except ValueError as exc:
        return [Violation("machine_fuzz.generator", where,
                          f"generator drew an invalid spec: {exc}")]

    out: list[Violation] = []
    rebuilt = MachineSpec.from_json(spec.to_json())
    if rebuilt != spec:
        out.append(Violation(
            "machine_fuzz.roundtrip", where,
            "JSON round-trip produced a different spec"))
    march = spec.build_core()
    if rebuilt.build_core() is not march:
        out.append(Violation(
            "machine_fuzz.build_cache", where,
            "round-tripped spec built a distinct Microarch object"))

    loop = random_loop(rng, name=f"fuzzmachine{seed}")
    if verify_loop(loop):
        return out  # generator bugs are check_seed's department
    compiled = None
    for tc in _toolchains_for(march):
        try:
            compiled = compile_loop(loop, tc, march)
            break
        except ValueError:
            continue
    if compiled is None:
        return out + [Violation(
            "machine_fuzz.compile", where,
            f"no toolchain of ISA {spec.isa!r} compiles the fuzz loop")]
    stream = compiled.stream

    with ProfileScope(f"machine-fuzz:{seed}:scalar") as scalar_counters:
        fast = PipelineScheduler(march).steady_state(stream)
    full = PipelineScheduler(march, extrapolate=False).steady_state(stream)
    golden = ReferenceScheduler(march).steady_state(stream)
    with ProfileScope(f"machine-fuzz:{seed}:batch") as batch_counters:
        batched = schedule_batch([(march, stream)], cache=False)[0]
    for label, other in (
        ("extrapolate=False", full),
        ("reference", golden),
        ("batched", batched),
    ):
        a, b = _result_fields(fast), _result_fields(other)
        diff = _results_equal(a, b)
        if diff:
            out.append(Violation(
                "machine_fuzz.divergence",
                f"{where} machine={spec.name} tc={compiled.toolchain.name}",
                f"fast scheduler disagrees with {label} on "
                f"{sorted(diff)}: {a} vs {b}",
            ))
    if scalar_counters.as_dict() != batch_counters.as_dict():
        out.append(Violation(
            "machine_fuzz.batch.counters",
            f"{where} machine={spec.name}",
            f"batched engine emitted different counters: "
            f"{batch_counters.as_dict()} vs {scalar_counters.as_dict()}",
        ))
    return out


def run_machine_fuzz_pass(seeds: int = 10,
                          base_seed: int = 5000) -> PassResult:
    """Run *seeds* machine-spec fuzz seeds starting at *base_seed*."""
    result = PassResult(name="machine-fuzz")
    for i in range(seeds):
        result.violations += check_machine_seed(base_seed + i)
        result.checked += 1
    return result
