"""Pass 2 — scheduler/machine invariant checker.

:class:`ScheduleInvariantChecker` consumes the
:class:`~repro.engine.scheduler.ScheduleRecord` issue-event log exposed
by the scheduler's observer hook and re-derives, independently of the
simulator, the properties the machine model promises:

* **non-negative timings** — every resolved latency and reciprocal
  throughput is ``>= 0``;
* **monotone cycle time** — issue cycles never decrease along the event
  log (events are appended in issue order);
* **front-end cap** — at most ``issue_width`` issues per cycle;
* **per-pipe legality** — replaying the pipe-backlog chain, every issue
  lands on a pipe that frees up within its cycle, exactly the
  ``_best_pipe`` admission rule;
* **bounded window / in-order retire** — instruction ``d`` may issue
  only once everything at or below ``d - window`` has completed (the
  retire pointer must have passed it for ``d`` to be window-visible);
* **dataflow** — no instruction issues before its producers complete
  (loop-carried producers resolve to the previous iteration);
* **completeness** — every dynamic instruction issues exactly once;
* **result bookkeeping** — ``cycles_per_iter`` recomputed from the raw
  event log matches the returned
  :class:`~repro.engine.scheduler.ScheduleResult`.

:func:`check_kernel_run` asserts the executor's roofline-composition
identities on every :class:`~repro.engine.executor.KernelRun`.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.engine.executor import KernelRun
from repro.engine.scheduler import (
    PipelineScheduler,
    ScheduleRecord,
    ScheduleResult,
    add_schedule_observer,
    remove_schedule_observer,
)
from repro.machine.isa import Pipe
from repro.machine.memory import MemoryStream
from repro.validate.report import PassResult, Violation

__all__ = [
    "ScheduleInvariantChecker",
    "check_record",
    "check_kernel_run",
    "run_schedule_pass",
]


def check_record(record: ScheduleRecord) -> list[Violation]:
    """All schedule invariants for one issue-event log; returns violations."""
    out: list[Violation] = []
    stream = record.stream
    where = stream.label or "<unlabeled stream>"
    n_body = len(stream)
    total = n_body * record.n_iters
    timings = record.timings()
    issue_width = record.march.issue_width
    window = record.window

    for pos, (lat, rtput, _pipes) in enumerate(timings):
        if lat < 0 or rtput < 0:
            ins = stream.body[pos]
            out.append(Violation(
                "sched.timing.nonneg", where,
                f"body[{pos}] ({ins.tag or ins.op.value}) has negative "
                f"timing (latency={lat}, rtput={rtput})",
            ))
            return out  # completions below would be meaningless

    events = record.issues
    issue_cycle = [math.inf] * total
    completion = [math.inf] * total
    seen = [0] * total
    prev_cycle = -math.inf
    per_cycle = 0
    pipe_free: dict[Pipe, float] = {p: 0.0 for p in Pipe}

    for k, (d, cycle, pipe) in enumerate(events):
        if d < 0 or d >= total:
            out.append(Violation(
                "sched.issue.range", where,
                f"event {k} issues dynamic instruction {d}, outside "
                f"[0, {total})",
            ))
            continue
        if cycle < prev_cycle:
            out.append(Violation(
                "sched.cycle.monotone", where,
                f"event {k} issues at cycle {cycle}, before the previous "
                f"event's cycle {prev_cycle}",
            ))
        per_cycle = per_cycle + 1 if cycle == prev_cycle else 1
        if per_cycle > issue_width:
            out.append(Violation(
                "sched.issue.width", where,
                f"cycle {cycle} issues {per_cycle} instructions, "
                f"issue_width is {issue_width}",
            ))
        prev_cycle = max(prev_cycle, cycle)
        lat, rtput, pipes = timings[d % n_body]
        if pipe not in pipes:
            out.append(Violation(
                "sched.pipe.legal", where,
                f"event {k} issues body[{d % n_body}] on pipe "
                f"{pipe.value}, legal pipes are "
                f"{sorted(p.value for p in pipes)}",
            ))
        elif pipe_free[pipe] >= cycle + 1.0:
            out.append(Violation(
                "sched.pipe.busy", where,
                f"event {k} issues on pipe {pipe.value} at cycle {cycle} "
                f"but the pipe is busy until {pipe_free[pipe]}",
            ))
        pipe_free[pipe] = max(pipe_free[pipe], cycle) + rtput
        seen[d] += 1
        issue_cycle[d] = cycle
        completion[d] = cycle + lat

    for d, n in enumerate(seen):
        if n != 1:
            out.append(Violation(
                "sched.issue.exactly_once", where,
                f"dynamic instruction {d} issued {n} times",
            ))
    if any(n != 1 for n in seen):
        return out  # window/dataflow checks assume a complete log

    # bounded window + in-order retire: d is only window-visible once the
    # retire pointer passed d - window, i.e. everything at or below
    # d - window completed no later than d's issue cycle
    prefix_completion = 0.0
    for d in range(total):
        if d - window >= 0:
            if d - window == 0:
                prefix_completion = completion[0]
            else:
                prefix_completion = max(
                    prefix_completion, completion[d - window]
                )
            if prefix_completion > issue_cycle[d]:
                out.append(Violation(
                    "sched.retire.window", where,
                    f"instruction {d} issued at cycle {issue_cycle[d]} "
                    f"while instruction {d - window} (window={window} "
                    f"behind) only completes at {prefix_completion} — "
                    f"out-of-order retire or window overrun",
                ))

    deps, _consumers = PipelineScheduler._static_dataflow(stream.body)
    for d in range(total):
        it, pos = divmod(d, n_body)
        for ppos, delta in deps[pos]:
            sit = it - delta
            if sit < 0:
                continue
            s = sit * n_body + ppos
            if completion[s] > issue_cycle[d]:
                out.append(Violation(
                    "sched.dataflow", where,
                    f"instruction {d} issued at cycle {issue_cycle[d]} "
                    f"before its producer {s} completed at "
                    f"{completion[s]}",
                ))

    out += _check_result_bookkeeping(
        record, issue_cycle, n_body, issue_width, where
    )
    return out


def _check_result_bookkeeping(
    record: ScheduleRecord,
    issue_cycle: list[float],
    n_body: int,
    issue_width: int,
    where: str,
) -> list[Violation]:
    """Recompute cycles_per_iter from raw events and compare."""
    out: list[Violation] = []
    n_iters = record.n_iters
    warmup = PipelineScheduler.WARMUP_ITERS
    iter_last = [0.0] * n_iters
    for d, c in enumerate(issue_cycle):
        it = d // n_body
        if c > iter_last[it]:
            iter_last[it] = c
    span = iter_last[n_iters - 1] - iter_last[warmup - 1]
    cpi = span / (n_iters - warmup)
    cpi = max(cpi, n_body / issue_width)
    got = record.result.cycles_per_iter
    if not math.isclose(cpi, got, rel_tol=1e-9, abs_tol=1e-12):
        out.append(Violation(
            "sched.result.cpi", where,
            f"cycles_per_iter recomputed from the event log is {cpi}, "
            f"the ScheduleResult says {got}",
        ))
    return out


def check_kernel_run(
    run: KernelRun,
    sched: ScheduleResult,
    streams: tuple[MemoryStream, ...] = (),
) -> list[Violation]:
    """Executor roofline-composition identities for one kernel run."""
    out: list[Violation] = []
    where = run.label or "<unlabeled run>"
    if run.compute_seconds < 0 or run.memory_seconds < 0:
        out.append(Violation(
            "exec.nonneg", where,
            f"negative time component (compute={run.compute_seconds}, "
            f"memory={run.memory_seconds})",
        ))
    expect = max(run.compute_seconds, run.memory_seconds)
    if run.seconds != expect:
        out.append(Violation(
            "exec.roofline.max", where,
            f"seconds {run.seconds} != max(compute "
            f"{run.compute_seconds}, memory {run.memory_seconds})",
        ))
    if run.hidden_seconds != min(run.compute_seconds, run.memory_seconds):
        out.append(Violation(
            "exec.roofline.hidden", where,
            f"hidden_seconds {run.hidden_seconds} != min(compute, memory)",
        ))
    if run.cycles_per_iter != sched.cycles_per_iter:
        out.append(Violation(
            "exec.schedule.cpi", where,
            f"run carries cycles_per_iter {run.cycles_per_iter}, the "
            f"schedule says {sched.cycles_per_iter}",
        ))
    if run.clock_ghz <= 0 or run.iters <= 0:
        out.append(Violation(
            "exec.positive", where,
            f"clock_ghz={run.clock_ghz} and iters={run.iters} must be "
            f"positive",
        ))
    return out


class ScheduleInvariantChecker:
    """Collects (or raises on) schedule/run invariant violations.

    Install via :meth:`install` to observe every simulated schedule and
    every executor run; with ``strict=True`` the first violating call
    site raises :class:`~repro.validate.report.ValidationError`, else
    violations accumulate in :attr:`violations` for batch reporting.
    Use as a context manager to guarantee uninstall.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: list[Violation] = []
        self.schedules_checked = 0
        self.runs_checked = 0
        self._installed = False

    # -- observer callbacks -------------------------------------------
    def on_schedule(self, record: ScheduleRecord) -> None:
        """Schedule-observer entry point (see scheduler hook)."""
        found = check_record(record)
        self.schedules_checked += 1
        self._account(found)

    def on_run(
        self,
        run: KernelRun,
        sched: ScheduleResult,
        streams: tuple[MemoryStream, ...],
    ) -> None:
        """Run-observer entry point (see executor hook)."""
        found = check_kernel_run(run, sched, streams)
        self.runs_checked += 1
        self._account(found)

    def _account(self, found: list[Violation]) -> None:
        if not found:
            return
        if self.strict:
            from repro.validate.report import ValidationError

            raise ValidationError(found)
        self.violations += found

    # -- lifecycle -----------------------------------------------------
    def install(self) -> "ScheduleInvariantChecker":
        """Register with the scheduler and executor observer hooks."""
        from repro.engine.executor import add_run_observer

        if not self._installed:
            add_schedule_observer(self.on_schedule)
            add_run_observer(self.on_run)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Deregister from the observer hooks (idempotent)."""
        from repro.engine.executor import remove_run_observer

        if self._installed:
            remove_schedule_observer(self.on_schedule)
            remove_run_observer(self.on_run)
            self._installed = False

    def __enter__(self) -> "ScheduleInvariantChecker":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()


def run_schedule_pass(loops: Iterable[str] | None = None) -> PassResult:
    """Schedule the suite loops with the checker installed.

    Runs the simulator directly (cache bypassed — cache hits replay
    stored outcomes without simulating, so only misses are observable)
    and executes each compiled loop once so the executor identities get
    exercised too.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.engine.executor import KernelExecutor
    from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES, build_loop
    from repro.machine.microarch import A64FX, SKYLAKE_6140
    from repro.machine.systems import get_system

    names = tuple(loops) if loops is not None else (
        LOOP_NAMES + MATH_LOOP_NAMES
    )
    ookami = get_system("ookami")
    skylake = get_system("skylake")
    with ScheduleInvariantChecker(strict=False) as checker:
        for name in names:
            loop = build_loop(name)
            for tc in TOOLCHAINS.values():
                x86 = tc.target == "x86"
                march = SKYLAKE_6140 if x86 else A64FX
                compiled = compile_loop(loop, tc, march)
                sched = PipelineScheduler(march).steady_state(compiled.stream)
                KernelExecutor(skylake if x86 else ookami).run(
                    sched, compiled.mem_streams, compiled.n_iters
                )
    result = PassResult(
        name="schedule",
        checked=checker.schedules_checked + checker.runs_checked,
    )
    result.violations = checker.violations
    return result
