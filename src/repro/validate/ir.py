"""Pass 1 — IR verifier: loop well-formedness and lowering bookkeeping.

:func:`verify_loop` checks an IR :class:`~repro.compilers.ir.Loop`
*before* compilation: operand typing (the frozen dataclasses accept any
object, so a :class:`~repro.compilers.ir.Cmp` smuggled into an operand
position is constructible but type-illegal), math-call arity, index and
mask legality, and the :class:`~repro.compilers.ir.ArrayInfo` table.

:func:`verify_compiled` checks a :class:`~repro.compilers.codegen.CompiledLoop`
*after* the vectorizer and code generator ran: stream dataflow, timing
overrides, unroll-factor bookkeeping (``elements_per_iter == lanes x
unroll``), agreement between each ``ArrayInfo`` and the emitted
loads/stores (gather/scatter splitting, pair coalescing, per-copy CSE)
and the derived :class:`~repro.machine.memory.MemoryStream` set.

The expected instruction counts mirror the code generator's documented
strategies — the point is that the two independent derivations must
agree, so a refactor that silently changes one side trips the other.
"""

from __future__ import annotations

from typing import Iterable

from repro.compilers.codegen import CompiledLoop, compile_loop
from repro.compilers.ir import (
    ArrayInfo,
    BinOp,
    Call,
    Cmp,
    Const,
    Load,
    Loop,
    LoopIdx,
    Reduce,
    Store,
    Var,
)
from repro.machine.isa import Op
from repro.validate.report import PassResult, Violation

__all__ = ["verify_loop", "verify_compiled", "run_ir_pass", "CALL_ARITY"]

#: required argument count per math function (everything else is unary)
CALL_ARITY = {"pow": 2}

_EXPR_TYPES = (Const, Var, Load, BinOp, Call)


# ---------------------------------------------------------------------------
# IR-level checks
# ---------------------------------------------------------------------------


def verify_loop(loop: Loop) -> list[Violation]:
    """Static well-formedness of one IR loop; returns violations."""
    out: list[Violation] = []
    where = f"loop {loop.name!r}"

    for name in sorted(loop.referenced_arrays()):
        info = loop.arrays.get(name)
        if not isinstance(info, ArrayInfo):
            out.append(Violation(
                "ir.array.info", where,
                f"array {name!r} is referenced without an ArrayInfo entry",
            ))

    for si, stmt in enumerate(loop.body):
        swhere = f"{where}, body[{si}]"
        if isinstance(stmt, Store):
            _check_expr(stmt.value, f"{swhere} Store.value", out)
            _check_index(stmt.index, f"{swhere} Store.index", out)
            if stmt.mask is not None:
                if not isinstance(stmt.mask, Cmp):
                    out.append(Violation(
                        "ir.mask.type", swhere,
                        f"Store.mask must be a Cmp, got "
                        f"{type(stmt.mask).__name__}",
                    ))
                else:
                    _check_expr(stmt.mask.lhs, f"{swhere} mask.lhs", out)
                    _check_expr(stmt.mask.rhs, f"{swhere} mask.rhs", out)
        elif isinstance(stmt, Reduce):
            _check_expr(stmt.value, f"{swhere} Reduce.value", out)
            if not stmt.var:
                out.append(Violation(
                    "ir.reduce.var", swhere,
                    "Reduce must name its accumulator variable",
                ))
        else:
            out.append(Violation(
                "ir.stmt.type", swhere,
                f"statements must be Store or Reduce, got "
                f"{type(stmt).__name__}",
            ))
    return out


def _check_expr(e: object, where: str, out: list[Violation]) -> None:
    """Recursive operand typing + arity checks for one expression tree."""
    if isinstance(e, Cmp):
        out.append(Violation(
            "ir.expr.type", where,
            "Cmp is only legal as a Store mask, not as an operand",
        ))
        return
    if not isinstance(e, _EXPR_TYPES):
        out.append(Violation(
            "ir.expr.type", where,
            f"expected an expression node, got {type(e).__name__}",
        ))
        return
    if isinstance(e, BinOp):
        _check_expr(e.lhs, f"{where}.lhs", out)
        _check_expr(e.rhs, f"{where}.rhs", out)
    elif isinstance(e, Call):
        want = CALL_ARITY.get(e.fn, 1)
        if len(e.args) != want:
            out.append(Violation(
                "ir.call.arity", where,
                f"Call({e.fn!r}) takes {want} argument(s), got "
                f"{len(e.args)}",
            ))
        for k, a in enumerate(e.args):
            _check_expr(a, f"{where}.args[{k}]", out)
    elif isinstance(e, Load):
        _check_index(e.index, f"{where}.index", out)


def _check_index(idx: object, where: str, out: list[Violation]) -> None:
    """An index is the induction variable or one level of indirection."""
    if isinstance(idx, LoopIdx):
        return
    if isinstance(idx, Load):
        if not isinstance(idx.index, LoopIdx):
            out.append(Violation(
                "ir.load.index", where,
                "index loads must be direct (one level of indirection); "
                f"got a nested {type(idx.index).__name__} index",
            ))
        return
    out.append(Violation(
        "ir.load.index", where,
        f"index must be LoopIdx or Load, got {type(idx).__name__}",
    ))


# ---------------------------------------------------------------------------
# Lowered-stream checks
# ---------------------------------------------------------------------------


def verify_compiled(compiled: CompiledLoop) -> list[Violation]:
    """Bookkeeping agreement between IR, stream and memory streams."""
    out = verify_loop(compiled.loop)
    loop = compiled.loop
    tc = compiled.toolchain
    march = compiled.march
    stream = compiled.stream
    where = stream.label or f"loop {loop.name!r}/{tc.name}"

    try:
        stream.validate()
    except ValueError as exc:
        out.append(Violation("lower.stream.dataflow", where, str(exc)))

    for idx, ins in enumerate(stream.body):
        for attr in ("latency_override", "rtput_override"):
            v = getattr(ins, attr)
            if v is not None and v < 0:
                out.append(Violation(
                    "lower.instr.override", where,
                    f"instruction {idx} ({ins.tag or ins.op.value}) has a "
                    f"negative {attr} ({v})",
                ))

    # unroll-factor bookkeeping: recompute the factors independently
    vectorized = compiled.report.vectorized
    unroll = tc.unroll
    if vectorized and not loop.math_calls():
        unroll = max(unroll, tc.small_loop_unroll)
    lanes = march.lanes_f64 if vectorized else 1
    expect_epi = lanes * unroll
    if compiled.elements_per_iter != expect_epi:
        out.append(Violation(
            "lower.unroll.bookkeeping", where,
            f"elements_per_iter {compiled.elements_per_iter} != lanes "
            f"({lanes}) x unroll ({unroll}) = {expect_epi}",
        ))
    if stream.elements_per_iter != compiled.elements_per_iter:
        out.append(Violation(
            "lower.unroll.bookkeeping", where,
            f"stream.elements_per_iter {stream.elements_per_iter} "
            f"disagrees with CompiledLoop.elements_per_iter "
            f"{compiled.elements_per_iter}",
        ))

    out += _check_mem_streams(compiled, where)
    out += _check_access_counts(compiled, where, vectorized, unroll, lanes)
    out += _check_mask_wiring(compiled, where, vectorized)

    if not stream.body or stream.body[-1].op is not Op.BRANCH:
        out.append(Violation(
            "lower.tail.branch", where,
            "lowered body must end with the loop-closing BRANCH",
        ))
    return out


def _check_mem_streams(compiled: CompiledLoop, where: str) -> list[Violation]:
    """ArrayInfo table vs the derived MemoryStream set, field by field."""
    out: list[Violation] = []
    loop = compiled.loop
    referenced = sorted(loop.referenced_arrays())
    by_name = {s.name: s for s in compiled.mem_streams}
    if sorted(by_name) != referenced:
        out.append(Violation(
            "lower.memstream.set", where,
            f"memory streams {sorted(by_name)} != referenced arrays "
            f"{referenced}",
        ))
        return out
    stored = {s.array for s in loop.body if isinstance(s, Store)}
    for name in referenced:
        info = loop.arrays[name]
        ms = by_name[name]
        expect_bytes = float(info.elem_size * compiled.elements_per_iter)
        if ms.bytes_per_iter != expect_bytes:
            out.append(Violation(
                "lower.memstream.bytes", where,
                f"stream {name!r} moves {ms.bytes_per_iter} B/iter, "
                f"ArrayInfo implies {expect_bytes}",
            ))
        if ms.footprint != info.footprint:
            out.append(Violation(
                "lower.memstream.footprint", where,
                f"stream {name!r} footprint {ms.footprint} != ArrayInfo "
                f"footprint {info.footprint}",
            ))
        if ms.pattern != info.pattern:
            out.append(Violation(
                "lower.memstream.pattern", where,
                f"stream {name!r} pattern {ms.pattern!r} != ArrayInfo "
                f"pattern {info.pattern!r}",
            ))
        if ms.is_store != (name in stored):
            out.append(Violation(
                "lower.memstream.store_flag", where,
                f"stream {name!r} is_store={ms.is_store} but the IR "
                f"{'stores' if name in stored else 'never stores'} it",
            ))
    return out


def _check_access_counts(
    compiled: CompiledLoop, where: str, vectorized: bool,
    unroll: int, lanes: int,
) -> list[Violation]:
    """Emitted load/store/gather/scatter counts vs the IR access shapes.

    Re-derives, independently of the lowerer, how many memory
    instructions each array must produce per lowered iteration: per-copy
    CSE collapses equal expression nodes, gathers split into
    ``lanes`` transactions (or ``lanes // 2`` under 128-byte-window pair
    coalescing — loads only), scatters into ``lanes`` always.
    """
    out: list[Violation] = []
    loop = compiled.loop
    march = compiled.march
    body = compiled.stream.body

    # walk the trees the lowerer walks through _lower_expr: a gather is a
    # leaf there (its index load is emitted directly, outside the CSE
    # cache), so the index Load must not also count as a standalone load
    gathers: set[Load] = set()
    contig: set[Load] = set()

    def walk(e) -> None:
        if isinstance(e, Load):
            (gathers if e.is_gather else contig).add(e)
        elif isinstance(e, BinOp):
            walk(e.lhs)
            walk(e.rhs)
        elif isinstance(e, Call):
            for a in e.args:
                walk(a)

    for stmt in loop.body:
        if isinstance(stmt, Store):
            walk(stmt.value)
            if stmt.mask is not None:
                walk(stmt.mask.lhs)
                walk(stmt.mask.rhs)
        else:
            walk(stmt.value)
    scatter_stmts = [s for s in loop.body
                     if isinstance(s, Store) and s.is_scatter]
    plain_stores = [s for s in loop.body
                    if isinstance(s, Store) and not s.is_scatter]

    def uops(array: str, is_store: bool) -> int:
        info = loop.arrays[array]
        if (not is_store and info.pattern == "window128"
                and march.gather_pair_coalescing):
            return max(1, march.lanes_f64 // 2)
        return march.lanes_f64

    # gather transactions per array (tags name the array)
    if vectorized:
        for arr in sorted({g.array for g in gathers}):
            n = sum(uops(g.array, False) for g in gathers if g.array == arr)
            got = sum(
                1 for ins in body
                if ins.op is Op.GATHER_UOP and ins.tag.endswith(f" {arr}")
            )
            if got != unroll * n:
                out.append(Violation(
                    "lower.access.gather_uops", where,
                    f"array {arr!r}: {got} gather transactions emitted, "
                    f"expected unroll ({unroll}) x {n}",
                ))
        n_scat = sum(uops(s.array, True) for s in scatter_stmts)
        got = sum(1 for ins in body if ins.op is Op.SCATTER_UOP)
        if got != unroll * n_scat:
            out.append(Violation(
                "lower.access.scatter_uops", where,
                f"{got} scatter transactions emitted, expected unroll "
                f"({unroll}) x {n_scat}",
            ))
    else:
        for arr in sorted({g.array for g in gathers}):
            n = sum(1 for g in gathers if g.array == arr)
            got = sum(
                1 for ins in body
                if ins.op is Op.SLOAD and ins.tag == f"gather {arr}"
            )
            if got != unroll * n:
                out.append(Violation(
                    "lower.access.gather_uops", where,
                    f"array {arr!r}: {got} scalar indirect loads emitted, "
                    f"expected unroll ({unroll}) x {n}",
                ))

    # contiguous loads: one CSE'd load per distinct contiguous Load expr,
    # plus one (uncached) index load per gather expr / scatter statement
    load_ops = (Op.VLOAD,) if vectorized else (Op.SLOAD,)
    for arr in sorted(loop.referenced_arrays()):
        n = (
            sum(1 for e in contig if e.array == arr)
            + sum(1 for g in gathers
                  if isinstance(g.index, Load) and g.index.array == arr)
            + sum(1 for s in scatter_stmts
                  if isinstance(s.index, Load) and s.index.array == arr)
        )
        got = sum(
            1 for ins in body
            if ins.op in load_ops and ins.tag == f"load {arr}"
        )
        if got != unroll * n:
            out.append(Violation(
                "lower.access.loads", where,
                f"array {arr!r}: {got} contiguous loads emitted, expected "
                f"unroll ({unroll}) x {n}",
            ))

    # plain (non-scatter) stores: one per Store statement per copy
    store_ops = (Op.VSTORE,) if vectorized else (Op.SSTORE,)
    for arr in sorted({s.array for s in plain_stores}):
        n = sum(1 for s in plain_stores if s.array == arr)
        got = sum(
            1 for ins in body
            if ins.op in store_ops
            and ins.tag in (f"store {arr}", f"store? {arr}")
        )
        if got != unroll * n:
            out.append(Violation(
                "lower.access.stores", where,
                f"array {arr!r}: {got} stores emitted, expected unroll "
                f"({unroll}) x {n}",
            ))
    return out


def _check_mask_wiring(
    compiled: CompiledLoop, where: str, vectorized: bool
) -> list[Violation]:
    """Every IR-masked store must consume the dest of a compare op."""
    out: list[Violation] = []
    if not compiled.loop.has_predicated_store():
        return out
    body = compiled.stream.body
    cmp_op = Op.FCMP if vectorized else Op.SFP
    cmp_dests = {ins.dest for ins in body if ins.op is cmp_op and ins.dest}
    masked_arrays = {
        s.array for s in compiled.loop.body
        if isinstance(s, Store) and s.mask is not None and not s.is_scatter
    }
    for arr in sorted(masked_arrays):
        stores = [ins for ins in body
                  if ins.tag in (f"store {arr}", f"store? {arr}")]
        for ins in stores:
            if len(ins.srcs) < 2 or ins.srcs[-1] not in cmp_dests:
                out.append(Violation(
                    "lower.mask.wiring", where,
                    f"masked store of {arr!r} does not consume a compare "
                    f"result (srcs={ins.srcs})",
                ))
    return out


# ---------------------------------------------------------------------------
# The batch pass
# ---------------------------------------------------------------------------


def run_ir_pass(loops: Iterable[str] | None = None) -> PassResult:
    """Compile every suite loop under every toolchain and verify each.

    Covers both the SVE toolchains (on the A64FX model) and the x86
    toolchain (on Skylake), including scalar fallbacks where the
    vectorizer rejects a loop — the verifier's expected counts must
    agree with whatever path the code generator took.
    """
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES, build_loop
    from repro.machine.microarch import A64FX, SKYLAKE_6140

    names = tuple(loops) if loops is not None else (
        LOOP_NAMES + MATH_LOOP_NAMES
    )
    result = PassResult(name="ir")
    for name in names:
        loop = build_loop(name)
        for tc in TOOLCHAINS.values():
            march = SKYLAKE_6140 if tc.target == "x86" else A64FX
            compiled = compile_loop(loop, tc, march)
            result.violations += verify_compiled(compiled)
            result.checked += 1
    return result
