"""Model-validation subsystem: static analysis + runtime invariants.

Four passes cross-check the performance model against itself and
against its frozen golden reference (see ``docs/VALIDATION.md``):

1. **ir** — loop/stream well-formedness after the vectorizer and the
   code generator (:mod:`repro.validate.ir`);
2. **schedule** — scheduler and executor machine invariants replayed
   from the issue-event log (:mod:`repro.validate.schedule`);
3. **counters** — PMU-counter reconciliation identities
   (:mod:`repro.validate.reconcile`);
4. **fuzz** — differential fuzzing of the fast scheduler against
   :mod:`repro.engine._reference` (:mod:`repro.validate.fuzz`).

Three front ends share these passes: the library API
(:func:`validate_all`), strict inline hooks for the test suite
(:mod:`repro.validate.hooks`, enabled by ``REPRO_VALIDATE=1``), and the
``python -m repro validate`` CLI, which additionally re-scores every
paper expectation (:mod:`repro.validate.bands`) and emits a versioned
``repro.validate/1`` JSON report.
"""

from repro.validate.report import (
    VALIDATE_SCHEMA,
    PassResult,
    ValidationError,
    ValidationReport,
    Violation,
)
from repro.validate.runner import validate_all

__all__ = [
    "VALIDATE_SCHEMA",
    "Violation",
    "PassResult",
    "ValidationReport",
    "ValidationError",
    "validate_all",
]
