"""Report types for the model-validation subsystem.

A validation run produces a :class:`ValidationReport`: one
:class:`PassResult` per pass (``ir``, ``schedule``, ``counters``,
``fuzz``, and optionally ``bands``), each holding the number of units it
checked and any :class:`Violation` records.  The report serializes to a
versioned JSON document (:data:`VALIDATE_SCHEMA` = ``repro.validate/1``)
— the machine-readable artifact behind ``python -m repro validate
--json`` — and renders as a text summary for the terminal.

Strict mode (:mod:`repro.validate.hooks`) surfaces the same violations
as a :class:`ValidationError` raised at the offending call site instead
of collecting them into a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "VALIDATE_SCHEMA",
    "Violation",
    "PassResult",
    "ValidationReport",
    "ValidationError",
]

#: schema tag of the JSON validation report (bump on breaking changes)
VALIDATE_SCHEMA = "repro.validate/1"


@dataclass(frozen=True)
class Violation:
    """One invariant breach, pinpointed.

    ``rule`` is the dotted identifier of the invariant (stable, suitable
    for grepping and for asserting in tests); ``where`` names the object
    that broke it (a loop, a stream label, a counter name); ``detail``
    states the observed and expected values.
    """

    rule: str
    where: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.where}: {self.detail}"

    def to_json(self) -> dict[str, str]:
        """Plain-dict form used inside the JSON report."""
        return {"rule": self.rule, "where": self.where,
                "detail": self.detail}


@dataclass
class PassResult:
    """Outcome of one validation pass.

    ``checked`` counts the units the pass examined (loops compiled,
    schedules replayed, identities evaluated, fuzz seeds run, band
    entries scored); ``data`` carries optional pass-specific payload
    (the bands pass stores its per-entry scores there).
    """

    name: str
    checked: int = 0
    violations: list[Violation] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the pass found no violations."""
        return not self.violations

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form used inside the JSON report."""
        doc: dict[str, Any] = {
            "name": self.name,
            "ok": self.ok,
            "checked": self.checked,
            "violations": [v.to_json() for v in self.violations],
        }
        if self.data:
            doc["data"] = self.data
        return doc


@dataclass
class ValidationReport:
    """A full validation run: one :class:`PassResult` per pass."""

    passes: list[PassResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every pass found no violations."""
        return all(p.ok for p in self.passes)

    def pass_named(self, name: str) -> PassResult:
        """The pass called *name* (KeyError when absent)."""
        for p in self.passes:
            if p.name == name:
                return p
        raise KeyError(name)

    def to_json(self) -> dict[str, Any]:
        """The versioned ``repro.validate/1`` JSON document."""
        return {
            "schema": VALIDATE_SCHEMA,
            "ok": self.ok,
            "passes": [p.to_json() for p in self.passes],
        }

    def render(self) -> str:
        """Human-readable summary (the default CLI output)."""
        lines = [f"model validation ({VALIDATE_SCHEMA})", ""]
        for p in self.passes:
            status = "ok" if p.ok else f"{len(p.violations)} violation(s)"
            lines.append(f"  {p.name:<10} {p.checked:>5} checked   {status}")
            for v in p.violations:
                lines.append(f"      {v}")
        lines.append("")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


class ValidationError(RuntimeError):
    """An invariant breach raised at the call site (strict mode).

    Carries the :class:`Violation` records so tests and callers can
    assert on the exact rule that fired; the message lists every
    violation with its pinpointed location.
    """

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = tuple(violations)
        lines = [f"{len(self.violations)} validation violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        super().__init__("\n".join(lines))
