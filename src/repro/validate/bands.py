"""Re-score every paper expectation in :mod:`repro.bench.expected`.

The CLI's band pass re-runs the figure generators and scores each entry
of the expectation tables as in-band or out-of-band, mirroring the
tier-1 regression assertions exactly (same tolerances, same relations) —
so a pristine tree scores all-in-band and a drifted model pinpoints
which figure moved.

Each scored entry is a dict ``{"figure", "entry", "value", "band",
"in_band", "note"}``.  Quantities the paper text only orders (the
"fujitsu beats cray beats arm" relations) are encoded as 1.0/0.0 with
band ``[1, 1]``; paper numbers the tests deliberately do not pin (the
Section IV per-library cycle counts beyond GNU's, which the model
reproduces only in ordering) are recorded with ``band: null`` and
``in_band: null`` — informational, never failing.
"""

from __future__ import annotations

from typing import Any

from repro.validate.report import PassResult, Violation

__all__ = ["score_bands", "run_band_pass"]


def _entry(figure: str, name: str, value: float,
           band: tuple[float, float] | None, note: str = "") -> dict[str, Any]:
    """One scored band entry (``band=None`` marks informational)."""
    in_band = None if band is None else bool(band[0] <= value <= band[1])
    return {
        "figure": figure,
        "entry": name,
        "value": value,
        "band": list(band) if band is not None else None,
        "in_band": in_band,
        "note": note,
    }


def _relation(figure: str, name: str, holds: bool, note: str) -> dict[str, Any]:
    """An ordering assertion encoded as 1.0-in-[1,1]."""
    return _entry(figure, name, 1.0 if holds else 0.0, (1.0, 1.0), note)


def _fig12_entries() -> list[dict[str, Any]]:
    from repro.bench.expected import FIG1_FIG2_RATIO_BANDS
    from repro.bench.figures import fig1_loop_suite, fig2_math_suite

    rows = fig1_loop_suite() + fig2_math_suite()

    def ratio(loop: str, tc: str) -> float:
        return next(r["rel_skylake"] for r in rows
                    if r["loop"] == loop and r["toolchain"] == tc)

    out = [
        _entry("fig1-2", f"{loop}:fujitsu/skylake", ratio(loop, "fujitsu"),
               FIG1_FIG2_RATIO_BANDS[loop],
               "runtime ratio A64FX(fujitsu)/Skylake(intel)")
        for loop in sorted(FIG1_FIG2_RATIO_BANDS)
    ]
    loops = sorted({r["loop"] for r in rows})
    out.append(_relation(
        "fig1-2", "fujitsu-best-on-a64fx",
        all(ratio(l, "fujitsu") <= ratio(l, tc) * 1.02
            for l in loops for tc in ("cray", "arm", "gnu")),
        "fujitsu delivers the highest performance for all loops",
    ))
    out.append(_relation(
        "fig1-2", "short_gather-coalescing",
        ratio("short_gather", "fujitsu") < 0.75 * ratio("gather", "fujitsu"),
        "128-byte-window coalescing makes short gather the closest loop",
    ))
    return out


def _sec4_entries() -> list[dict[str, Any]]:
    from repro.bench.expected import SEC4_EXP_CYCLES
    from repro.bench.figures import sec4_exp_study

    rows = {r["impl"]: r for r in sec4_exp_study(ulp_samples=50_000)}
    gnu = rows["gnu library (scalar libm)"]["cycles_per_elem"]
    fj = rows["fujitsu library"]["cycles_per_elem"]
    cray = rows["cray library"]["cycles_per_elem"]
    arm = rows["arm library"]["cycles_per_elem"]
    vla = rows["fexpa-vla (paper kernel)"]["cycles_per_elem"]
    paper = SEC4_EXP_CYCLES["gnu-serial"]
    out = [
        _entry("sec4", "gnu-serial cycles/elem", gnu,
               (paper * 0.9, paper * 1.1),
               f"paper reports {paper} cycles/element"),
        _relation("sec4", "library-ordering", fj < cray < arm < gnu,
                  "fujitsu < cray < arm < gnu cycles/element"),
        _entry("sec4", "fexpa-vla cycles/elem", vla, (1.0, 2.6),
               "the hand kernel lands in the ~2 cycles/element class"),
        _relation("sec4", "unrolling-helps",
                  rows["fexpa-unrolled-x2"]["cycles_per_elem"] < vla,
                  "unrolling once decreases cycles/element"),
        _relation("sec4", "estrin-beats-horner",
                  vla < rows["fexpa-horner"]["cycles_per_elem"],
                  "the Estrin form is slightly faster than Horner"),
        _entry("sec4", "fexpa-vla max ulp",
               rows["fexpa-vla (paper kernel)"]["max_ulp"], (0.0, 6.0),
               "about 6 ulp precision"),
        _relation("sec4", "refined-improves-ulp",
                  rows["fexpa-refined (corrected last FMA)"]["max_ulp"]
                  < rows["fexpa-vla (paper kernel)"]["max_ulp"],
                  "correcting the last FMA tightens the ulp bound"),
    ]
    # the remaining Section IV paper numbers are reproduced in ordering
    # only; record the model's values against them informationally
    for impl, key in (("arm library", "arm"), ("cray library", "cray"),
                      ("fujitsu library", "fujitsu")):
        out.append(_entry(
            "sec4", f"{key} cycles/elem",
            rows[impl]["cycles_per_elem"], None,
            f"paper reports {SEC4_EXP_CYCLES[key]} (ordering enforced above)",
        ))
    return out


def _npb_entries() -> list[dict[str, Any]]:
    from repro.bench.expected import (
        FIG3_RATIO_BANDS, FIG5_EFFICIENCY_BANDS, FIG6_EFFICIENCY_BANDS,
    )
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.workload import parallel_run, serial_seconds
    from repro.machine.systems import get_system
    from repro.npb.workloads import NPB_WORKLOADS

    ookami, skylake = get_system("ookami"), get_system("skylake")
    out = []
    for bench in sorted(FIG3_RATIO_BANDS):
        work = NPB_WORKLOADS[bench]
        best = min(serial_seconds(work, ookami, TOOLCHAINS[tc])
                   for tc in ("fujitsu", "cray", "arm", "gnu"))
        icc = serial_seconds(work, skylake, TOOLCHAINS["intel"])
        out.append(_entry("fig3", f"{bench}:bestA64FX/icc", best / icc,
                          FIG3_RATIO_BANDS[bench],
                          "serial runtime ratio, best A64FX toolchain"))
    for bench in sorted(FIG5_EFFICIENCY_BANDS):
        run = parallel_run(NPB_WORKLOADS[bench], ookami,
                           TOOLCHAINS["gnu"], 48)
        out.append(_entry("fig5", f"{bench}:efficiency@48", run.efficiency,
                          FIG5_EFFICIENCY_BANDS[bench],
                          "A64FX+GCC parallel efficiency, 48 threads"))
    for bench in sorted(FIG6_EFFICIENCY_BANDS):
        run = parallel_run(NPB_WORKLOADS[bench], skylake,
                           TOOLCHAINS["intel"], 36)
        out.append(_entry("fig6", f"{bench}:efficiency@36", run.efficiency,
                          FIG6_EFFICIENCY_BANDS[bench],
                          "Skylake+icc parallel efficiency, 36 threads"))
    return out


def _hpcc_entries() -> list[dict[str, Any]]:
    from repro.bench.expected import FIG8_PERCENT_OF_PEAK, HPCC_RATIOS
    from repro.hpcc.dgemm import dgemm_rate_gflops
    from repro.hpcc.fft import fft_rate_gflops
    from repro.hpcc.hpl import hpl_rate_gflops

    out = []
    for (system, library), pct in sorted(FIG8_PERCENT_OF_PEAK.items()):
        point = dgemm_rate_gflops(system, library)
        out.append(_entry("fig8", f"{system}/{library}:%peak",
                          point.percent_of_peak, (pct - 1.0, pct + 1.0),
                          f"paper prints {pct}% of peak"))

    def rel_band(target: float, rel: float) -> tuple[float, float]:
        return (target * (1 - rel), target * (1 + rel))

    fj = dgemm_rate_gflops("ookami", "fujitsu-blas").gflops_per_core
    ob = dgemm_rate_gflops("ookami", "openblas").gflops_per_core
    zen = dgemm_rate_gflops("bridges2", "blis-zen2").gflops_per_core
    out.append(_entry(
        "fig8", "dgemm fujitsu/openblas", fj / ob,
        rel_band(HPCC_RATIOS["dgemm_fujitsu_vs_openblas"], 0.15),
        "almost 14 times faster than non-optimized OpenBLAS"))
    out.append(_entry(
        "fig8", "dgemm a64fx/zen2 core", fj / zen,
        rel_band(HPCC_RATIOS["dgemm_a64fx_vs_zen2_core"], 0.1),
        "1.6 times faster than AMD Zen 2 cores"))
    out.append(_entry(
        "fig9", "hpl fujitsu/openblas",
        hpl_rate_gflops("ookami", "fujitsu-blas")
        / hpl_rate_gflops("ookami", "openblas"),
        rel_band(HPCC_RATIOS["hpl_fujitsu_vs_openblas"], 0.2),
        "nearly ten times faster than non-optimized OpenBLAS"))
    out.append(_entry(
        "fig9", "fft fujitsu/stock",
        fft_rate_gflops("ookami", "fujitsu-fftw")
        / fft_rate_gflops("ookami", "fftw"),
        rel_band(HPCC_RATIOS["fft_fujitsu_vs_stock"], 0.1),
        "4.2 times faster than the non-optimized FFTW"))
    return out


def _table3_entries() -> list[dict[str, Any]]:
    from repro.bench.expected import TABLE3_EXPECTED
    from repro.bench.figures import table3_systems

    out = []
    for row, exp in zip(table3_systems(), TABLE3_EXPECTED):
        name = exp["system"]
        out.append(_entry(
            "table3", f"{name}:peak_gflops_core", row["peak_gflops_core"],
            (exp["peak_core"] * (1 - 1e-3), exp["peak_core"] * (1 + 1e-3)),
            "per-core peak derived from the machine model"))
        out.append(_entry(
            "table3", f"{name}:peak_gflops_node", row["peak_gflops_node"],
            (exp["peak_node"] * (1 - 2e-3), exp["peak_node"] * (1 + 2e-3)),
            "per-node peak derived from the machine model"))
        out.append(_relation(
            "table3", f"{name}:cores",
            row["cores_per_node"] == exp["cores"],
            f"paper lists {exp['cores']} cores/node"))
    return out


def score_bands() -> list[dict[str, Any]]:
    """All scored entries, every expectation table covered."""
    return (_fig12_entries() + _sec4_entries() + _npb_entries()
            + _hpcc_entries() + _table3_entries())


def run_band_pass() -> PassResult:
    """Score the expectation tables; out-of-band entries are violations."""
    entries = score_bands()
    result = PassResult(name="bands", checked=len(entries))
    result.data["entries"] = entries
    for e in entries:
        if e["in_band"] is False:
            band = e["band"]
            result.violations.append(Violation(
                "bands.out_of_band", f"{e['figure']}:{e['entry']}",
                f"value {e['value']} outside [{band[0]}, {band[1]}] "
                f"({e['note']})",
            ))
    return result
