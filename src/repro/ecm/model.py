"""ECM composition: closed-form kernel runtime predictions.

This is the third — and fastest — prediction tier.  Where the full
simulation replays every issue slot and the fast engine event-steps the
same model, :func:`predict_compiled` combines two closed forms:

* ``T_comp`` — the in-core bounds of :mod:`repro.ecm.incore`, scaled by
  the toolchain's code-quality factor (the same fold the figure pipeline
  applies to simulated schedules);
* ``T_data`` — the per-stream boundary traffic of
  :mod:`repro.ecm.traffic`.

The composition rule is a *machine-table property*
(:attr:`repro.machine.microarch.Microarch.mem_overlap`, set from the
measurements of Alappat et al., arXiv 2103.03013 / 2009.13903):

* **overlapping** (the x86 cores): in-core arithmetic overlaps all data
  transfers, only the load/store pipe cycles serialize with them —
  ``T = max(T_OL, T_nOL + sum T_data)``;
* **non-overlapping** (A64FX): measured single-core behaviour shows no
  overlap between in-core work and transfers beyond L1 —
  ``T = T_comp + sum T_data``.

:func:`compare_kernel` runs the same compiled kernel through the fast
engine + executor (exactly the ``repro profile`` composition) and
reports the relative deviation; :data:`ECM_TOLERANCES` states the
per-kernel bound the reconciliation pass and the ``tests/ecm`` suite
enforce.  Tolerances are calibrated, not aspirational: the analytical
in-core bounds track the simulated schedule from below (overshooting by
at most a few percent — see :mod:`repro.ecm.incore`), so L1-resident
kernels deviate mostly downward, while memory-bound kernels are bounded
above by the additive-composition surplus.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro._util import require_in
from repro.compilers.codegen import CompiledLoop, compile_loop
from repro.ecm.incore import InCoreSummary, analyze_stream
from repro.ecm.traffic import StreamTraffic, data_cycles
from repro.kernels.catalog import ALL_KERNEL_NAMES, build_kernel
from repro.machine.numa import PagePlacement
from repro.machine.systems import System

__all__ = [
    "EcmPrediction",
    "EcmComparison",
    "ECM_TOLERANCES",
    "ECM_DEFAULT_TOLERANCE",
    "ecm_tolerance",
    "predict_compiled",
    "predict_kernel",
    "engine_seconds_for",
    "compare_kernel",
    "prediction_to_json",
]

#: per-kernel relative-deviation bounds for |ECM - engine| / engine,
#: calibrated over every toolchain in the catalog at each kernel's
#: default (per-family) problem size, then given ~1.3x headroom.  Two
#: systematic effects set the scale: the analytical in-core bounds
#: track the simulated schedule from below, so L1-resident kernels
#: deviate downward (the window bound undershoots long dependence chains
#: by up to ~20%); and on the non-overlapping A64FX the additive
#: ``T_comp + T_data`` composition sits *above* the engine's roofline
#: ``max(compute, memory)`` by up to the compute/memory ratio, so the
#: memory-bound SpMV/stencil kernels deviate upward (largest for
#: stencil3d, whose many neighbour streams keep T_comp comparable to
#: T_data).  Port-pressure-bound kernels (the gathers/scatters) agree to
#: well under a percent.
ECM_TOLERANCES: dict[str, float] = {
    "simple": 0.25,
    "predicate": 0.10,
    "gather": 0.10,
    "scatter": 0.10,
    "short_gather": 0.10,
    "short_scatter": 0.10,
    "recip": 0.30,
    "sqrt": 0.30,
    "exp": 0.15,
    "sin": 0.10,
    "pow": 0.20,
    "spmv_crs": 0.20,
    "spmv_sell": 0.60,
    "stencil2d": 0.55,
    "stencil3d": 0.75,
}

#: fallback bound for loops outside the catalog; fuzzed random loops use
#: the wider theorem-backed ratio envelope in :mod:`repro.validate.fuzz`
ECM_DEFAULT_TOLERANCE = 0.60


def ecm_tolerance(kernel: str) -> float:
    """The stated ECM-vs-engine relative-deviation bound for *kernel*."""
    return ECM_TOLERANCES.get(kernel, ECM_DEFAULT_TOLERANCE)


@dataclass(frozen=True)
class EcmPrediction:
    """One kernel's analytical runtime prediction.

    Cycle quantities are per lowered loop iteration;
    ``cycles_per_element`` and ``seconds`` fold in the iteration count
    and clock the same way the engine tier does.
    """

    kernel: str
    toolchain: str
    system: str
    incore: InCoreSummary
    streams: tuple[StreamTraffic, ...]
    quality_factor: float
    mem_overlap: bool
    cycles_per_iter: float
    elements_per_iter: int
    n_iters: float
    clock_ghz: float

    @property
    def t_comp_cycles(self) -> float:
        """In-core cycles per iteration, quality factor included."""
        return self.incore.t_comp * self.quality_factor

    @property
    def t_data_cycles(self) -> float:
        """Total data-transfer cycles per iteration across all streams."""
        return sum(s.cycles_per_iter for s in self.streams)

    @property
    def cycles_per_element(self) -> float:
        """Composed cycles per source element."""
        return self.cycles_per_iter / self.elements_per_iter

    @property
    def seconds(self) -> float:
        """Predicted wall time of the full kernel."""
        return self.cycles_per_iter * self.n_iters / (self.clock_ghz * 1e9)

    @property
    def bound(self) -> str:
        """The dominating term: ``data:<stream>`` when transfers dominate
        the in-core time, else the in-core bound name."""
        if self.t_data_cycles > self.t_comp_cycles and self.streams:
            hot = max(self.streams, key=lambda s: s.cycles_per_iter)
            return f"data:{hot.name}"
        return self.incore.bound

    def composition(self) -> str:
        """Human-readable form of the applied composition rule."""
        if self.mem_overlap:
            return "max(T_OL, T_nOL + sum(T_data))"
        return "T_comp + sum(T_data)"


@dataclass(frozen=True)
class EcmComparison:
    """ECM prediction vs fast-engine simulation for one kernel point."""

    prediction: EcmPrediction
    engine_seconds: float
    tolerance: float

    @property
    def deviation(self) -> float:
        """Relative deviation ``(ecm - engine) / engine``."""
        return (self.prediction.seconds - self.engine_seconds) / self.engine_seconds

    @property
    def within_tolerance(self) -> bool:
        """True when ``|deviation|`` stays inside the stated bound."""
        return abs(self.deviation) <= self.tolerance


def _compose(
    summary: InCoreSummary,
    streams: tuple[StreamTraffic, ...],
    factor: float,
    mem_overlap: bool,
) -> float:
    """Apply the machine's ECM composition rule, returning cycles/iter."""
    t_data = sum(s.cycles_per_iter for s in streams)
    if not mem_overlap:
        return factor * summary.t_comp + t_data
    t_ol = factor * max(summary.t_ol, summary.issue_cycles,
                        summary.chain_cycles, summary.window_cycles)
    return max(t_ol, factor * summary.t_nol + t_data)


def predict_compiled(
    compiled: CompiledLoop,
    system: System,
    *,
    allcore: bool = False,
    active_cores_per_domain: int = 1,
    placement: PagePlacement = PagePlacement.FIRST_TOUCH,
    window: int | None = None,
) -> EcmPrediction:
    """Analytically predict *compiled* on *system* — no simulation.

    The keyword parameters mirror
    :meth:`repro.engine.executor.KernelExecutor.run` so the two tiers
    answer the same question about the same execution configuration.
    """
    march = compiled.march
    clock = (system.cpu.allcore_clock_ghz if allcore
             else system.cpu.clock_ghz)
    summary = analyze_stream(compiled.stream, march, window=window)
    placement_domains = 1 if placement is PagePlacement.SINGLE_DOMAIN else None
    streams = data_cycles(
        compiled.mem_streams, system.hierarchy, clock,
        active_cores_per_domain=active_cores_per_domain,
        placement_domains=placement_domains,
    )
    factor = (compiled.toolchain.simd_quality if compiled.report.vectorized
              else compiled.toolchain.code_quality)
    cycles = _compose(summary, streams, factor, march.mem_overlap)
    return EcmPrediction(
        kernel=compiled.loop.name,
        toolchain=compiled.toolchain.name,
        system=system.name,
        incore=summary,
        streams=streams,
        quality_factor=factor,
        mem_overlap=march.mem_overlap,
        cycles_per_iter=cycles,
        elements_per_iter=compiled.elements_per_iter,
        n_iters=compiled.n_iters,
        clock_ghz=clock,
    )


def predict_kernel(
    kernel: str,
    toolchain: str = "fujitsu",
    system: str | None = None,
    *,
    n: int | None = None,
    window: int | None = None,
) -> EcmPrediction:
    """Predict any catalogued kernel by name (the ``repro ecm`` CLI core).

    ``system`` defaults to the toolchain's natural target (Ookami for
    SVE toolchains, the Skylake 6140 node for x86), exactly like
    :func:`repro.perf.profile.profile_kernel`.
    """
    from repro.compilers.toolchains import get_toolchain
    from repro.machine.systems import get_system
    from repro.perf.profile import default_system_for

    require_in(kernel, ALL_KERNEL_NAMES, "kernel name")
    tc = get_toolchain(toolchain)
    system_key = system if system is not None else default_system_for(toolchain)
    sysobj = get_system(system_key)
    loop = build_kernel(kernel, n)
    compiled = compile_loop(loop, tc, sysobj.cpu)
    return predict_compiled(compiled, sysobj, window=window)


def engine_seconds_for(
    compiled: CompiledLoop,
    system: System,
    *,
    window: int | None = None,
) -> float:
    """Fast-engine + executor wall time for *compiled* on *system*.

    This is the exact composition the ``repro profile`` pipeline uses:
    simulated steady-state schedule, quality factor folded into the
    cycles, roofline max with the memory streams.
    """
    from repro.engine.executor import KernelExecutor
    from repro.engine.scheduler import PipelineScheduler

    if window is None:
        sched = compiled.schedule
    else:
        sched = PipelineScheduler(
            compiled.march, window=window
        ).steady_state(compiled.stream)
    factor = (compiled.toolchain.simd_quality if compiled.report.vectorized
              else compiled.toolchain.code_quality)
    executed = replace(sched, cycles_per_iter=sched.cycles_per_iter * factor)
    run = KernelExecutor(system).run(
        executed, compiled.mem_streams, n_iters=compiled.n_iters
    )
    return run.seconds


def compare_kernel(
    kernel: str,
    toolchain: str = "fujitsu",
    system: str | None = None,
    *,
    n: int | None = None,
    window: int | None = None,
    tolerance: float | None = None,
) -> EcmComparison:
    """Predict *kernel* analytically **and** simulate it; bundle both.

    The returned comparison carries the stated per-kernel tolerance
    (overridable for experiments); the reconciliation pass and the
    ``tests/ecm`` suite assert :attr:`EcmComparison.within_tolerance`.
    """
    from repro.compilers.toolchains import get_toolchain
    from repro.machine.systems import get_system
    from repro.perf.profile import default_system_for

    require_in(kernel, ALL_KERNEL_NAMES, "kernel name")
    tc = get_toolchain(toolchain)
    system_key = system if system is not None else default_system_for(toolchain)
    sysobj = get_system(system_key)
    compiled = compile_loop(build_kernel(kernel, n), tc, sysobj.cpu)
    prediction = predict_compiled(compiled, sysobj, window=window)
    engine = engine_seconds_for(compiled, sysobj, window=window)
    tol = tolerance if tolerance is not None else ecm_tolerance(kernel)
    return EcmComparison(
        prediction=prediction,
        engine_seconds=engine,
        tolerance=tol,
    )


def prediction_to_json(pred: EcmPrediction) -> dict[str, Any]:
    """Stable JSON document for one prediction (``repro.ecm/1``)."""
    return {
        "schema": "repro.ecm/1",
        "kernel": pred.kernel,
        "toolchain": pred.toolchain,
        "system": pred.system,
        "composition": pred.composition(),
        "mem_overlap": pred.mem_overlap,
        "quality_factor": pred.quality_factor,
        "clock_ghz": pred.clock_ghz,
        "elements_per_iter": pred.elements_per_iter,
        "n_iters": pred.n_iters,
        "incore": {
            "t_ol": pred.incore.t_ol,
            "t_nol": pred.incore.t_nol,
            "issue_cycles": pred.incore.issue_cycles,
            "chain_cycles": pred.incore.chain_cycles,
            "window_cycles": pred.incore.window_cycles,
            "t_comp": pred.incore.t_comp,
            "bound": pred.incore.bound,
            "n_instrs": pred.incore.n_instrs,
        },
        "streams": [
            {
                "name": s.name,
                "serving": s.serving,
                "cycles_per_iter": s.cycles_per_iter,
                "boundaries": [
                    {
                        "boundary": b.boundary,
                        "line_bytes_per_iter": b.line_bytes_per_iter,
                        "cycles_per_iter": b.cycles_per_iter,
                    }
                    for b in s.boundaries
                ],
            }
            for s in pred.streams
        ],
        "t_comp_cycles": pred.t_comp_cycles,
        "t_data_cycles": pred.t_data_cycles,
        "cycles_per_iter": pred.cycles_per_iter,
        "cycles_per_element": pred.cycles_per_element,
        "seconds": pred.seconds,
        "microseconds": pred.seconds * 1e6,
        "bound": pred.bound,
    }
