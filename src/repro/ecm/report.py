"""Text rendering for ECM predictions (the ``repro ecm`` CLI output).

The layout follows the ECM-style decomposition the profiling report
already prints for *simulated* runs, so the two tiers read the same way
side by side: in-core bounds first, then per-stream boundary traffic,
then the composed prediction with the applied overlap rule spelled out.
"""

from __future__ import annotations

from repro.ecm.model import EcmComparison, EcmPrediction

__all__ = ["render_prediction", "render_comparison"]


def render_prediction(pred: EcmPrediction) -> str:
    """Multi-line human-readable breakdown of one ECM prediction."""
    inc = pred.incore
    lines = [
        f"== ecm: {pred.kernel} | toolchain={pred.toolchain} "
        f"| system={pred.system} ==",
        "",
        f"in-core ({inc.n_instrs} instrs/iter, "
        f"{pred.elements_per_iter} elem/iter):",
        f"  T_OL  (arith pipes)   {inc.t_ol:10.2f} cyc/iter",
        f"  T_nOL (ld/st pipes)   {inc.t_nol:10.2f} cyc/iter",
        f"  issue bound           {inc.issue_cycles:10.2f} cyc/iter",
        f"  chain bound           {inc.chain_cycles:10.2f} cyc/iter",
        f"  window bound          {inc.window_cycles:10.2f} cyc/iter",
        f"  T_comp = max(...)     {inc.t_comp:10.2f} cyc/iter  "
        f"(bound: {inc.bound}, quality x{pred.quality_factor:.2f})",
        "",
    ]
    if pred.streams and any(s.boundaries for s in pred.streams):
        lines.append("data transfers:")
        for s in pred.streams:
            if not s.boundaries:
                lines.append(f"  {s.name:<10} L1-resident (in-core)")
                continue
            for b in s.boundaries:
                lines.append(
                    f"  {s.name:<10} {b.boundary:<12} "
                    f"{b.line_bytes_per_iter:10.1f} B/iter  "
                    f"{b.cycles_per_iter:10.2f} cyc/iter"
                )
            lines.append(
                f"  {s.name:<10} T_data (served by {s.serving}) "
                f"{s.cycles_per_iter:10.2f} cyc/iter"
            )
        lines.append("")
    else:
        lines.append("data transfers: all streams L1-resident (T_data = 0)")
        lines.append("")
    lines.extend([
        f"composition  T = {pred.composition()}   "
        f"[{'overlapping' if pred.mem_overlap else 'non-overlapping'} core]",
        f"  T_comp               {pred.t_comp_cycles:10.2f} cyc/iter",
        f"  sum(T_data)          {pred.t_data_cycles:10.2f} cyc/iter",
        f"  T                    {pred.cycles_per_iter:10.2f} cyc/iter -> "
        f"{pred.cycles_per_element:.3f} cyc/elem",
        f"  predicted wall time  {pred.seconds * 1e6:10.2f} us "
        f"({pred.n_iters:.0f} iters @ {pred.clock_ghz:.2f} GHz, "
        f"bound: {pred.bound})",
    ])
    return "\n".join(lines)


def render_comparison(cmp: EcmComparison) -> str:
    """One-line ECM-vs-engine reconciliation summary."""
    status = "OK" if cmp.within_tolerance else "EXCEEDS"
    return (
        f"ecm {cmp.prediction.seconds * 1e6:.2f} us vs engine "
        f"{cmp.engine_seconds * 1e6:.2f} us: deviation "
        f"{cmp.deviation * 100.0:+.1f}% (tolerance "
        f"{cmp.tolerance * 100.0:.0f}%, {status})"
    )
