"""Analytical in-core model: ``T_comp`` without simulating a single cycle.

The fast engine *simulates* the bounded-window out-of-order core.  This
module instead computes four closed-form **lower bounds** on the
steady-state initiation interval of a loop body and takes their max —
the classic ECM in-core recipe (Alappat et al., arXiv 2103.03013),
evaluated straight from the microarchitecture timing tables:

* **port pressure** — each instruction's reciprocal throughput is
  assigned to the least-loaded pipe it may execute on (the same greedy
  placement the scheduler converges to); no pipe can be busy less than
  its assigned work.  The load/store pipes' pressure is ``T_nOL``
  (non-overlapping in ECM terms: these cycles move data), the busiest
  remaining pipe gives ``T_OL``.
* **issue** — ``n_instrs / issue_width``: the front end retires at most
  ``issue_width`` instructions per cycle.
* **recurrence chain** — for every loop-carried dependence the
  initiation interval cannot beat the total latency around the cycle
  (a 9-cycle FMA chain caps an un-unrolled reduction at 9 cycles/iter).
* **window** — with an iteration critical path of ``L`` cycles and
  ``N`` instructions per iteration, at most ``(window + N) / N``
  iterations are ever in flight behind the in-order retire pointer, so
  ``T >= L * N / (window + N)`` (the mechanism that makes long
  dependence chains expensive even out-of-order).

The issue and chain bounds are true lower bounds on what the simulator
can achieve.  The port bound assigns whole reciprocal throughputs
greedily, and the window bound is a closed-form model of the finite
reorder window — both track the simulator tightly but may overshoot its
steady state by a few percent (the simulator can split an
instruction's pipe occupancy across iterations, and it keeps slightly
more iterations in flight than the closed form admits).  In practice
the analytical ``T_comp`` stays within ~10% of the simulated
cycles-per-iter from below and ~9% from above across the whole catalog,
which is what makes the reconciliation pass in
:mod:`repro.validate.reconcile` meaningful.

Dependence resolution intentionally reuses
:meth:`repro.engine.scheduler.PipelineScheduler._static_dataflow` so the
analytical model and the simulator can never drift apart on *which*
edges exist — they may only disagree on the cycles those edges cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.engine.scheduler import PipelineScheduler
from repro.machine.isa import InstructionStream, Pipe
from repro.machine.microarch import Microarch

__all__ = ["InCoreSummary", "analyze_stream"]

#: pipes whose busy cycles are data movement (ECM's non-overlapping part)
_NOL_PIPES = frozenset((Pipe.LS1, Pipe.LS2))

#: fixed pipe indexing so the hot placement loop runs on plain lists
#: instead of enum-keyed dicts (this function is the analytical tier's
#: entire in-core cost, and the 100x-vs-engine bench floor is sensitive
#: to it)
_PIPES = tuple(Pipe)
_PIPE_INDEX = {p: i for i, p in enumerate(_PIPES)}
_NOL_INDICES = tuple(_PIPE_INDEX[p] for p in _NOL_PIPES)
_OL_INDICES = tuple(i for i, p in enumerate(_PIPES) if p not in _NOL_PIPES)

#: pipe-set -> index tuple sorted by mnemonic, memoized (a handful of
#: distinct sets exist across all timing tables)
_PIPESET_CACHE: dict[frozenset, tuple[int, ...]] = {}


def _pipe_indices(pipes: frozenset) -> tuple[int, ...]:
    idxs = _PIPESET_CACHE.get(pipes)
    if idxs is None:
        idxs = tuple(_PIPE_INDEX[p]
                     for p in sorted(pipes, key=lambda p: p.value))
        _PIPESET_CACHE[pipes] = idxs
    return idxs


@dataclass(frozen=True)
class InCoreSummary:
    """Closed-form in-core bounds for one lowered loop body.

    All quantities are cycles per (possibly unrolled, vectorized) loop
    iteration.  ``t_comp`` is the composed in-core prediction; ``bound``
    names which of the four bounds is active.
    """

    t_ol: float
    t_nol: float
    issue_cycles: float
    chain_cycles: float
    window_cycles: float
    port_cycles: Mapping[Pipe, float]
    n_instrs: int

    @property
    def t_comp(self) -> float:
        """The in-core initiation-interval bound: max of the four bounds."""
        return max(self.t_ol, self.t_nol, self.issue_cycles,
                   self.chain_cycles, self.window_cycles)

    @property
    def bound(self) -> str:
        """Name of the active in-core bound (``port:fla``, ``issue``,
        ``chain`` or ``window``)."""
        port = max(self.t_ol, self.t_nol)
        best = max(port, self.issue_cycles, self.chain_cycles,
                   self.window_cycles)
        if best == self.chain_cycles and self.chain_cycles > port:
            return "chain"
        if best == self.window_cycles and self.window_cycles > port:
            return "window"
        if best == self.issue_cycles and self.issue_cycles > port:
            return "issue"
        hot = max(self.port_cycles.items(), key=lambda kv: kv[1])
        return f"port:{hot[0].value}"


def _resolved_timings(stream: InstructionStream, march: Microarch):
    """Per body position ``(latency, rtput, pipe_indices)`` honoring
    overrides — the same resolution rule the scheduler applies.  Pipes
    come back as :data:`_PIPES` indices sorted by mnemonic, so the
    placement loop below runs on plain ints."""
    out = []
    for ins in stream.body:
        t = march.timing(ins.op)
        lat = (ins.latency_override
               if ins.latency_override is not None else t.latency)
        rtp = (ins.rtput_override
               if ins.rtput_override is not None else t.rtput)
        out.append((lat, rtp, _pipe_indices(t.pipes)))
    return out


class _StreamBase:
    """Window-independent part of the in-core analysis for one stream.

    Everything in :func:`analyze_stream` except the window bound is a
    pure function of (stream body, march); :mod:`repro.ecm.batch`
    memoizes this object per (march, body) and re-derives only the
    ``window_cycles`` term per point, which is what makes vectorized
    ECM batches cheap without changing a single float.
    """

    __slots__ = ("load", "t_ol", "t_nol", "issue_cycles", "chain_cycles",
                 "crit_path", "n")

    def __init__(self, load, t_ol, t_nol, issue_cycles, chain_cycles,
                 crit_path, n) -> None:
        self.load = load
        self.t_ol = t_ol
        self.t_nol = t_nol
        self.issue_cycles = issue_cycles
        self.chain_cycles = chain_cycles
        self.crit_path = crit_path
        self.n = n


def _stream_base(stream: InstructionStream, march: Microarch) -> _StreamBase:
    """All window-independent in-core bounds for *stream* on *march*."""
    body = stream.body
    if not body:
        raise ValueError("cannot analyze an empty instruction stream")
    n = len(body)
    timings = _resolved_timings(stream, march)
    deps, _consumers = PipelineScheduler._static_dataflow(body)

    # --- port pressure: greedy least-loaded placement, most-constrained
    # instructions first (an op locked to one pipe must land there; ops
    # with alternatives then fill the remaining slack — the balance the
    # out-of-order scheduler converges to in steady state); index tuples
    # are mnemonic-sorted, so first-wins ties match the scheduler's
    # min(pipes, key=(load, value)) rule
    load = [0.0] * len(_PIPES)
    for _lat, rtp, idxs in sorted(timings, key=lambda t: len(t[2])):
        best = idxs[0]
        for i in idxs[1:]:
            if load[i] < load[best]:
                best = i
        load[best] += rtp
    t_nol = max(load[i] for i in _NOL_INDICES)
    t_ol = max(load[i] for i in _OL_INDICES)

    # --- front-end issue bound -----------------------------------------
    issue_cycles = n / march.issue_width

    # --- iteration critical path (same-iteration edges only) -----------
    finish = [0.0] * n
    for k in range(n):
        ready = 0.0
        for pos, delta in deps[k]:
            if delta == 0 and finish[pos] > ready:
                ready = finish[pos]
        finish[k] = ready + timings[k][0]
    crit_path = max(finish)

    # --- loop-carried recurrence bound ---------------------------------
    # for each cross-iteration edge producer p -> consumer i, the
    # initiation interval is at least the total latency around the cycle:
    # the longest same-iteration latency path from i to p, closed by the
    # carried edge.
    chain_cycles = 0.0
    for i in range(n):
        for p, delta in deps[i]:
            if delta != 1:
                continue
            if p < i:
                # no same-iteration path can run backwards; the cycle
                # still costs at least the producer's own latency
                candidate = timings[p][0]
            else:
                dist = [-1.0] * n
                dist[i] = timings[i][0]
                for k in range(i + 1, p + 1):
                    best = -1.0
                    for pos, d in deps[k]:
                        if d == 0 and dist[pos] >= 0.0 and dist[pos] > best:
                            best = dist[pos]
                    if best >= 0.0:
                        dist[k] = best + timings[k][0]
                candidate = dist[p] if dist[p] >= 0.0 else timings[p][0]
            if candidate > chain_cycles:
                chain_cycles = candidate

    return _StreamBase(load, t_ol, t_nol, issue_cycles, chain_cycles,
                       crit_path, n)


def _summarize(base: _StreamBase, win: int) -> InCoreSummary:
    """Fold the window bound into a base analysis (shared with batches)."""
    # at most (win + n) / n iterations in flight; each takes >= crit_path
    window_cycles = base.crit_path * base.n / (win + base.n)
    return InCoreSummary(
        t_ol=base.t_ol,
        t_nol=base.t_nol,
        issue_cycles=base.issue_cycles,
        chain_cycles=base.chain_cycles,
        window_cycles=window_cycles,
        port_cycles={p: base.load[i] for i, p in enumerate(_PIPES)},
        n_instrs=base.n,
    )


def analyze_stream(
    stream: InstructionStream,
    march: Microarch,
    window: int | None = None,
) -> InCoreSummary:
    """Compute the four analytical in-core bounds for *stream* on *march*.

    ``window`` overrides the reorder-window size (same meaning as the
    :class:`~repro.engine.scheduler.PipelineScheduler` parameter).
    """
    win = march.window if window is None else window
    return _summarize(_stream_base(stream, march), win)
