"""Analytical ``T_data``: per-boundary cacheline traffic at documented bandwidths.

For every memory stream of a compiled kernel this module answers two
questions the ECM model needs:

* **how many bytes cross each hierarchy boundary** — a stream served by
  level ``k`` moves its lines across every boundary from ``k`` down to
  L1 (inclusive caches); the byte count at a boundary is the *useful*
  payload divided by the line utilization of the outer level's line size
  (the same :meth:`~repro.machine.memory.MemoryHierarchy.line_utilization`
  rule the bandwidth model applies, so a random 8-byte gather drags full
  256-byte lines on A64FX);
* **how many cycles those bytes cost** — inner boundaries are priced at
  the outer level's documented ``bw_bytes_per_cycle``; the DRAM boundary
  uses the same
  :meth:`~repro.machine.memory.MemoryHierarchy.effective_bw_gbs` rule as
  the executor (per-core prefetch/latency caps, bandwidth sharing,
  write-allocate doubling for stores), converted to cycles at the core
  clock.

Per stream, ``T_data`` takes the **max** over its boundary terms rather
than the sum: on the machines studied, inter-cache transfers overlap
with the DRAM transfer (hardware prefetchers stream lines inward
concurrently with outstanding fills), so the slowest boundary — in
practice the outermost one — dominates.  This deliberately makes the
per-stream data term identical to the executor's memory term; the
ECM-vs-engine deviation measured by :mod:`repro.validate.reconcile` is
then purely about in-core accuracy and composition
(max-overlap vs additive), not about two competing bandwidth tables.
The full per-boundary breakdown is kept for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.machine.memory import MemoryHierarchy, MemoryStream

__all__ = ["BoundaryTraffic", "StreamTraffic", "stream_traffic", "data_cycles"]


@dataclass(frozen=True)
class BoundaryTraffic:
    """Traffic of one stream across one hierarchy boundary.

    ``boundary`` names the two sides (``"L2<->L1"``, ``"DRAM<->L2"``);
    ``line_bytes_per_iter`` is the transferred volume including the
    wasted part of each line; ``cycles_per_iter`` prices it at the
    boundary's bandwidth.
    """

    boundary: str
    line_bytes_per_iter: float
    cycles_per_iter: float


@dataclass(frozen=True)
class StreamTraffic:
    """All boundary crossings of one memory stream.

    ``cycles_per_iter`` is the stream's ``T_data`` contribution — the
    max over its boundary terms (overlapping inter-level transfers).
    ``serving`` names the level that holds the working set.
    """

    name: str
    serving: str
    boundaries: tuple[BoundaryTraffic, ...]

    @property
    def cycles_per_iter(self) -> float:
        """The stream's data-transfer cycles per iteration."""
        if not self.boundaries:
            return 0.0
        return max(b.cycles_per_iter for b in self.boundaries)


def _level_name(hier: MemoryHierarchy, idx: int) -> str:
    return hier.levels[idx].name if idx < len(hier.levels) else "DRAM"


def stream_traffic(
    stream: MemoryStream,
    hier: MemoryHierarchy,
    clock_ghz: float,
    *,
    active_cores_per_domain: int = 1,
    placement_domains: int | None = None,
) -> StreamTraffic:
    """Boundary-by-boundary traffic of *stream* through *hier*.

    A stream served by L1 crosses no boundary (its latency lives inside
    the in-core schedule).  The outermost boundary is priced with the
    executor's effective-bandwidth rule; inner boundaries use the
    documented per-level bandwidths.
    """
    lvl = hier.serving_level(stream.footprint, active_cores_per_domain)
    boundaries: list[BoundaryTraffic] = []
    for k in range(1, lvl + 1):
        outer_is_dram = k == len(hier.levels)
        line = hier.line if outer_is_dram else hier.levels[k].line
        util = hier.line_utilization(stream, line)
        line_bytes = stream.bytes_per_iter / util
        if k == lvl:
            # outermost boundary: the executor's effective-bandwidth rule
            # (already includes utilization, caps, sharing, write-allocate)
            eff_gbs = hier.effective_bw_gbs(
                stream, clock_ghz,
                active_cores_per_domain=active_cores_per_domain,
                placement_domains=placement_domains,
            )
            cycles = stream.bytes_per_iter * clock_ghz / eff_gbs
        else:
            bw = hier.levels[k].bw_bytes_per_cycle
            cycles = line_bytes / bw
        boundaries.append(BoundaryTraffic(
            boundary=f"{_level_name(hier, k)}<->{_level_name(hier, k - 1)}",
            line_bytes_per_iter=line_bytes,
            cycles_per_iter=cycles,
        ))
    return StreamTraffic(
        name=stream.name,
        serving=_level_name(hier, lvl),
        boundaries=tuple(boundaries),
    )


def data_cycles(
    streams: Sequence[MemoryStream],
    hier: MemoryHierarchy,
    clock_ghz: float,
    *,
    active_cores_per_domain: int = 1,
    placement_domains: int | None = None,
) -> tuple[StreamTraffic, ...]:
    """Per-stream ``T_data`` accounting for a compiled kernel's streams."""
    return tuple(
        stream_traffic(
            s, hier, clock_ghz,
            active_cores_per_domain=active_cores_per_domain,
            placement_domains=placement_domains,
        )
        for s in streams
    )
