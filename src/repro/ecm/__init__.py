"""Analytical ECM prediction tier (Execution-Cache-Memory model).

The repository predicts kernel runtimes at three speeds:

1. **full simulation** — ``PipelineScheduler(march, extrapolate=False)``
   grinds through every issue slot (the golden reference);
2. **fast engine** — the event-driven scheduler with steady-state
   period detection plus the schedule cache;
3. **this package** — no simulation at all: closed-form ``T_comp`` from
   the instruction mix against the port/issue/latency tables
   (:mod:`repro.ecm.incore`), closed-form ``T_data`` from per-boundary
   cacheline traffic against documented bandwidths
   (:mod:`repro.ecm.traffic`), composed per the machine's measured
   overlap rule (:mod:`repro.ecm.model`) — microseconds per prediction,
   which is what makes large design-space sweeps interactive.

The model follows Alappat et al. (arXiv 2103.03013, 2009.13903): on
x86 cores in-core work overlaps all transfers
(``T = max(T_OL, T_nOL + sum T_data)``); the A64FX shows essentially no
such overlap (``T = T_comp + sum T_data``).  The rule is carried by the
machine table (:attr:`repro.machine.microarch.Microarch.mem_overlap`),
not by name checks.

Accuracy is *enforced*, not hoped for: the ``ecm`` reconciliation pass
(:mod:`repro.validate.reconcile`) and the ``tests/ecm`` suite bound the
ECM-vs-engine deviation per kernel with the stated tolerances in
:data:`repro.ecm.model.ECM_TOLERANCES`, and the differential fuzzer
extends the same check to random loops.
"""

from repro.ecm.incore import InCoreSummary, analyze_stream
from repro.ecm.model import (
    ECM_DEFAULT_TOLERANCE,
    ECM_TOLERANCES,
    EcmComparison,
    EcmPrediction,
    compare_kernel,
    ecm_tolerance,
    engine_seconds_for,
    predict_compiled,
    predict_kernel,
    prediction_to_json,
)
from repro.ecm.report import render_comparison, render_prediction
from repro.ecm.traffic import BoundaryTraffic, StreamTraffic, data_cycles

__all__ = [
    "InCoreSummary",
    "analyze_stream",
    "BoundaryTraffic",
    "StreamTraffic",
    "data_cycles",
    "EcmPrediction",
    "EcmComparison",
    "ECM_TOLERANCES",
    "ECM_DEFAULT_TOLERANCE",
    "ecm_tolerance",
    "predict_compiled",
    "predict_kernel",
    "engine_seconds_for",
    "compare_kernel",
    "prediction_to_json",
    "render_prediction",
    "render_comparison",
]
