"""Vectorized ECM batches: N closed-form predictions as one array program.

``run_sweep(tier="ecm")`` over a design-space grid evaluates the same
(march, loop body) in-core analysis and the same (system, memory
-stream) traffic pricing once per *window* — but only the window bound
actually depends on the window.  :func:`predict_batch` exploits that:

* the window-independent in-core base (port pressure, issue, critical
  path, recurrence chain — :func:`repro.ecm.incore._stream_base`) is
  memoized per (march, body) and stacked into float64 arrays;
* per-stream boundary traffic (:func:`repro.ecm.traffic.data_cycles`)
  is memoized per (hierarchy, streams, clock, cores, placement) and its
  summed ``T_data`` stacked alongside;
* the window bounds and the overlap/non-overlap composition of
  :func:`repro.ecm.model._compose` are then evaluated for all points at
  once as numpy array arithmetic.

Exactness contract: float64 array ops are applied in the same operand
order as the scalar path (``np.maximum.reduce`` is the same fold-left
as Python's ``max``), so every returned
:class:`~repro.ecm.model.EcmPrediction` is **bit-identical** to what
:func:`~repro.ecm.model.predict_compiled` returns for the same point —
``tests/ecm/test_batch.py`` and the grid fuzz lane enforce this.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.compilers.codegen import CompiledLoop
from repro.ecm.incore import _stream_base, _summarize
from repro.ecm.model import EcmPrediction
from repro.ecm.traffic import StreamTraffic, data_cycles
from repro.machine.numa import PagePlacement
from repro.machine.systems import System

__all__ = ["predict_batch", "clear_ecm_memos"]

#: memoized window-independent in-core bases, keyed by
#: (id(march), id(stream)) with both objects pinned in the value so
#: their ids cannot be recycled — compile-cache hits share the same
#: stream object, and id keys keep lookups O(1) instead of hashing the
#: whole instruction body per point
_BASE_MEMO: OrderedDict = OrderedDict()
#: memoized (streams, t_data) traffic, keyed by (id(hierarchy),
#: id(mem_streams), clock, cores, placement), pinned likewise
_TRAFFIC_MEMO: OrderedDict = OrderedDict()
_MEMO_CAP = 1024
_MEMO_LOCK = threading.Lock()


def clear_ecm_memos() -> None:
    """Drop the batch memos (cold-path benchmarks; pure caches)."""
    with _MEMO_LOCK:
        _BASE_MEMO.clear()
        _TRAFFIC_MEMO.clear()


def _memo_get(memo: OrderedDict, key):
    with _MEMO_LOCK:
        hit = memo.get(key)
        if hit is not None:
            memo.move_to_end(key)
            return hit[1]
    return None


def _memo_put(memo: OrderedDict, key, pin, value) -> None:
    with _MEMO_LOCK:
        memo[key] = (pin, value)
        memo.move_to_end(key)
        while len(memo) > _MEMO_CAP:
            memo.popitem(last=False)


def _base_for(compiled: CompiledLoop):
    """The memoized window-independent in-core base for one point."""
    march = compiled.march
    stream = compiled.stream
    key = (id(march), id(stream))
    base = _memo_get(_BASE_MEMO, key)
    if base is None:
        base = _stream_base(stream, march)
        _memo_put(_BASE_MEMO, key, (march, stream), base)
    return base


def _traffic_for(
    compiled: CompiledLoop, system: System, clock: float,
    active_cores_per_domain: int, placement_domains: int | None,
) -> tuple[tuple[StreamTraffic, ...], float]:
    """Memoized (per-stream traffic, summed ``T_data``) for one point."""
    hier = system.hierarchy
    mem_streams = compiled.mem_streams
    key = (id(hier), id(mem_streams), clock,
           active_cores_per_domain, placement_domains)
    hit = _memo_get(_TRAFFIC_MEMO, key)
    if hit is None:
        streams = data_cycles(
            mem_streams, hier, clock,
            active_cores_per_domain=active_cores_per_domain,
            placement_domains=placement_domains,
        )
        # same fold-left sum as EcmPrediction.t_data_cycles / _compose
        t_data = sum(s.cycles_per_iter for s in streams)
        hit = (streams, t_data)
        _memo_put(_TRAFFIC_MEMO, key, (hier, mem_streams), hit)
    return hit


def predict_batch(
    items: Sequence[tuple[CompiledLoop, System, int | None]],
    *,
    allcore: bool = False,
    active_cores_per_domain: int = 1,
    placement: PagePlacement = PagePlacement.FIRST_TOUCH,
) -> list[EcmPrediction]:
    """Predict many ``(compiled, system, window)`` points in one pass.

    Returns one :class:`~repro.ecm.model.EcmPrediction` per item, in
    item order, each bit-identical to
    ``predict_compiled(compiled, system, window=window, ...)`` with the
    same keyword configuration.  Shared (march, body) and (system,
    streams) components are analyzed once and stacked; only the
    composed arithmetic runs per point, vectorized.
    """
    if not items:
        return []
    n_items = len(items)
    placement_domains = (1 if placement is PagePlacement.SINGLE_DOMAIN
                         else None)
    bases = []
    traffics = []
    clocks = []
    wins = []
    factors = np.empty(n_items, dtype=np.float64)
    overlap = np.empty(n_items, dtype=bool)
    t_ol = np.empty(n_items, dtype=np.float64)
    t_nol = np.empty(n_items, dtype=np.float64)
    issue = np.empty(n_items, dtype=np.float64)
    chain = np.empty(n_items, dtype=np.float64)
    crit = np.empty(n_items, dtype=np.float64)
    n_arr = np.empty(n_items, dtype=np.float64)
    win_arr = np.empty(n_items, dtype=np.float64)
    t_data = np.empty(n_items, dtype=np.float64)
    for i, (compiled, system, window) in enumerate(items):
        march = compiled.march
        clock = (system.cpu.allcore_clock_ghz if allcore
                 else system.cpu.clock_ghz)
        base = _base_for(compiled)
        streams, td = _traffic_for(
            compiled, system, clock, active_cores_per_domain,
            placement_domains,
        )
        win = march.window if window is None else window
        bases.append(base)
        traffics.append(streams)
        clocks.append(clock)
        wins.append(win)
        factors[i] = (compiled.toolchain.simd_quality
                      if compiled.report.vectorized
                      else compiled.toolchain.code_quality)
        overlap[i] = march.mem_overlap
        t_ol[i] = base.t_ol
        t_nol[i] = base.t_nol
        issue[i] = base.issue_cycles
        chain[i] = base.chain_cycles
        crit[i] = base.crit_path
        n_arr[i] = base.n
        win_arr[i] = win
        t_data[i] = td

    # the only window-dependent in-core term, for every point at once
    windowc = crit * n_arr / (win_arr + n_arr)
    # _compose, vectorized: np.maximum.reduce folds left exactly like
    # the scalar max(), so equal-magnitude ties resolve identically
    t_comp = np.maximum.reduce([t_ol, t_nol, issue, chain, windowc])
    non_overlap_cycles = factors * t_comp + t_data
    t_ol_term = factors * np.maximum.reduce([t_ol, issue, chain, windowc])
    overlap_cycles = np.maximum(t_ol_term, factors * t_nol + t_data)
    cycles = np.where(overlap, overlap_cycles, non_overlap_cycles)

    out: list[EcmPrediction] = []
    for i, (compiled, system, _window) in enumerate(items):
        summary = _summarize(bases[i], wins[i])
        out.append(EcmPrediction(
            kernel=compiled.loop.name,
            toolchain=compiled.toolchain.name,
            system=system.name,
            incore=summary,
            streams=traffics[i],
            quality_factor=float(factors[i]),
            mem_overlap=compiled.march.mem_overlap,
            cycles_per_iter=float(cycles[i]),
            elements_per_iter=compiled.elements_per_iter,
            n_iters=compiled.n_iters,
            clock_ghz=clocks[i],
        ))
    return out
