"""Proxy applications: LULESH (Section VI of the paper)."""
