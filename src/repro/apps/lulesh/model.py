"""Table II / Figure 7: LULESH timing model per toolchain.

The paper times LULESH 1.0 ("Base") and a Sandy-Bridge-era vectorized
port ("Vect"), single-thread ("st") and all cores ("mt"), on five
toolchains.  The mechanisms that shape Table II:

* **Base is scalar everywhere** — the reference code's element loops and
  gather/scatter accumulation defeat all vectorizers, so every A64FX
  compiler lands at the machine's scalar rate (the four Base(st) entries
  agree to 1%: 2.030-2.055 s) and Intel's advantage (0.395 s) is the
  scalar-latency x clock gap this model derives.
* **Vect vectorizes part of the work** — element-local arithmetic
  vectorizes, the nodal scatter/accumulate and EOS branches stay scalar,
  so Vect(st) improves by ~1.3-1.6x, ordered by SIMD codegen quality.
* **mt = OpenMP at full node** — 48 threads on A64FX (fixed clock) vs 32
  on the 6130 (AVX clock derate), with LULESH's modest working set
  keeping it compute-bound.
"""

from __future__ import annotations

from repro._util import require_in
from repro.compilers.toolchains import TOOLCHAINS, Toolchain, get_toolchain
from repro.kernels.workload import Workload, parallel_run, serial_seconds
from repro.machine.systems import System, get_system

__all__ = ["LULESH_BASE", "LULESH_VECT", "lulesh_time", "table2_rows", "TABLE2_PAPER"]

# Calibrated so the A64FX scalar rate reproduces Base(st) ~= 2.05 s:
# the run executes ~1.64e9 scalar-equivalent flops (45^3-element problem,
# ~few hundred cycles to a converged Sedov state).
_FLOPS = 1.64e9
_TRAFFIC = 4.0e9  # bytes; LULESH's working set is cache-unfriendly but small

LULESH_BASE = Workload(
    name="LULESH-base",
    flops=_FLOPS,
    vector_fraction=0.0,
    contig_bytes=_TRAFFIC,
    parallel_fraction=0.995,
    regions=400.0,       # ~8 parallel regions x ~50 time steps
    imbalance=0.15,
)

LULESH_VECT = Workload(
    name="LULESH-vect",
    flops=_FLOPS,
    vector_fraction=0.40,   # element-local arithmetic; scatters stay scalar
    vec_efficiency=0.30,
    contig_bytes=_TRAFFIC,
    parallel_fraction=0.995,
    regions=400.0,
    imbalance=0.15,
)

#: Table II as printed in the paper (seconds), for EXPERIMENTS.md
TABLE2_PAPER: dict[tuple[str, str], dict[str, float]] = {
    ("arm", "base"): {"st": 2.030, "mt": 0.0661},
    ("arm", "vect"): {"st": 1.575, "mt": 0.0359},
    ("cray", "base"): {"st": 2.055, "mt": 0.0677},
    ("cray", "vect"): {"st": 1.310, "mt": 0.0298},
    ("fujitsu", "base"): {"st": 2.052, "mt": 0.0662},
    ("fujitsu", "vect"): {"st": 1.359, "mt": 0.0361},
    ("gnu", "base"): {"st": 2.054, "mt": 0.0674},
    ("gnu", "vect"): {"st": 1.533, "mt": 0.0351},
    ("intel", "base"): {"st": 0.395, "mt": 0.0355},
    ("intel", "vect"): {"st": 0.260, "mt": 0.0154},
}


def _system_for(toolchain: Toolchain) -> System:
    """Intel ran on the 32-core Skylake 6130 node; the rest on Ookami."""
    return get_system("skylake-6130" if toolchain.target == "x86" else "ookami")


def lulesh_time(
    toolchain_name: str, variant: str = "base", mt: bool = False
) -> float:
    """Modeled LULESH runtime (seconds) for a Table II cell."""
    require_in(variant, ("base", "vect"), "variant")
    tc = get_toolchain(toolchain_name)
    system = _system_for(tc)
    work = LULESH_BASE if variant == "base" else LULESH_VECT
    if not mt:
        return serial_seconds(work, system, tc)
    threads = system.cores
    return parallel_run(work, system, tc, threads).seconds


def _table2_row(name: str) -> dict[str, object]:
    """One compiler's Table II row (top-level: sweep-dispatchable)."""
    tc = TOOLCHAINS[name]
    row: dict[str, object] = {
        "compiler": name,
        "version": tc.version,
        "flags": tc.flags,
    }
    for variant in ("base", "vect"):
        for mode, mt in (("st", False), ("mt", True)):
            key = f"{variant}_{mode}"
            row[key] = lulesh_time(name, variant, mt=mt)
            row[f"paper_{key}"] = TABLE2_PAPER[(name, variant)][mode]
    return row


def table2_rows(parallel: bool = False) -> list[dict[str, object]]:
    """All Table II rows: modeled vs paper values.

    The per-compiler cells share math-loop schedules through the
    content-addressed cache (:mod:`repro.engine.cache`); *parallel*
    fans the compilers out over the sweep runner."""
    from repro.engine.sweep import map_schedules

    return map_schedules(
        _table2_row, ("arm", "cray", "fujitsu", "gnu", "intel"),
        mode="thread" if parallel else "serial",
    )
