"""Spherically-symmetric Lagrangian hydrodynamics: the Sedov blast.

The numerical essentials LULESH exercises, on the geometry where the
Sedov problem has its analytic answer:

* a **staggered Lagrangian mesh** — node positions/velocities at shell
  boundaries, thermodynamic state (density, energy, pressure, artificial
  viscosity) in the shells between them; the mesh moves with the fluid;
* the **von Neumann–Richtmyer scheme** — leapfrog momentum/energy update
  with quadratic + linear artificial viscosity to spread the shock over
  a few zones;
* an **ideal-gas EOS** (``gamma = 1.4``) and a **Courant-limited
  time step** recomputed every cycle, like LULESH's
  ``CalcTimeConstraintsForElems``.

Verification targets (the "analytic answers" of Sec. VI):

* total energy (kinetic + internal) conserved to a small tolerance;
* the shock radius grows as the Sedov–Taylor similarity solution
  ``r_s(t) = xi0 * (E t^2 / rho0)^(1/5)`` — tests fit the exponent;
* density stays positive, mass exactly conserved (Lagrangian zones).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require_positive

__all__ = ["SedovSpherical"]

GAMMA = 1.4


@dataclass
class SedovSpherical:
    """Sedov point blast on a spherical Lagrangian mesh.

    Parameters
    ----------
    nzones: number of radial shells.
    rmax: initial outer radius.
    rho0: ambient density.
    e_blast: energy deposited in the innermost zone at t=0.
    cq, cl: quadratic and linear artificial-viscosity coefficients.
    courant: CFL safety factor.
    """

    nzones: int = 200
    rmax: float = 1.0
    rho0: float = 1.0
    e_blast: float = 0.5
    cq: float = 2.0
    cl: float = 0.3
    courant: float = 0.3
    r: np.ndarray = field(init=False)      #: node radii (nzones+1)
    u: np.ndarray = field(init=False)      #: node velocities
    m: np.ndarray = field(init=False)      #: zone masses (fixed)
    e: np.ndarray = field(init=False)      #: specific internal energy
    rho: np.ndarray = field(init=False)
    p: np.ndarray = field(init=False)
    q: np.ndarray = field(init=False)
    t: float = field(init=False, default=0.0)
    cycles: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        require_positive(self.nzones, "nzones")
        require_positive(self.rmax, "rmax")
        require_positive(self.rho0, "rho0")
        require_positive(self.e_blast, "e_blast")
        if self.nzones < 10:
            raise ValueError("need at least 10 zones to resolve the shock")
        self.r = np.linspace(0.0, self.rmax, self.nzones + 1)
        self.u = np.zeros(self.nzones + 1)
        vol = self._zone_volumes(self.r)
        self.m = self.rho0 * vol
        self.rho = np.full(self.nzones, self.rho0)
        self.e = np.zeros(self.nzones)
        # point blast: all energy in the innermost zone (LULESH deposits
        # it in the corner element)
        self.e[0] = self.e_blast / self.m[0]
        self.q = np.zeros(self.nzones)
        self.p = self._eos(self.rho, self.e)

    # ------------------------------------------------------------------
    @staticmethod
    def _zone_volumes(r: np.ndarray) -> np.ndarray:
        return (4.0 / 3.0) * np.pi * (r[1:] ** 3 - r[:-1] ** 3)

    @staticmethod
    def _eos(rho: np.ndarray, e: np.ndarray) -> np.ndarray:
        """Ideal-gas pressure (energies can transiently be tiny negative
        from roundoff; clamp like LULESH's ``e_min``)."""
        return (GAMMA - 1.0) * rho * np.maximum(e, 0.0)

    def sound_speed(self) -> np.ndarray:
        """Adiabatic sound speed per zone."""
        return np.sqrt(GAMMA * np.maximum(self.p, 1e-30) / self.rho)

    def _dt(self) -> float:
        """Courant time step over zone widths."""
        dr = np.diff(self.r)
        cs = self.sound_speed()
        # viscosity stiffens the effective signal speed near the shock
        du = np.abs(np.diff(self.u))
        signal = cs + self.cq * du
        return float(self.courant * np.min(dr / np.maximum(signal, 1e-12)))

    # ------------------------------------------------------------------
    def step(self) -> float:
        """Advance one cycle; returns the dt used."""
        dt = self._dt()
        r, u, m = self.r, self.u, self.m

        # nodal acceleration from pressure + viscosity gradient
        ptot = self.p + self.q
        area = 4.0 * np.pi * r[1:-1] ** 2
        # node i sits between zones i-1 and i; nodal mass is half of each
        mnode = 0.5 * (m[:-1] + m[1:])
        force = -(ptot[1:] - ptot[:-1]) * area
        accel = np.zeros_like(u)
        accel[1:-1] = force / mnode
        # origin pinned; outer boundary free (zero outside pressure)
        accel[-1] = (ptot[-1]) * 4.0 * np.pi * r[-1] ** 2 / (0.5 * m[-1])

        u_new = u + dt * accel
        u_new[0] = 0.0
        r_new = r + dt * u_new
        if np.any(np.diff(r_new) <= 0):
            raise FloatingPointError("mesh tangling: zone inverted")

        vol_new = self._zone_volumes(r_new)
        rho_new = m / vol_new

        # artificial viscosity on compression (von Neumann-Richtmyer)
        du = u_new[1:] - u_new[:-1]
        compress = du < 0.0
        q_new = np.where(
            compress,
            self.cq * rho_new * du * du
            + self.cl * rho_new * self.sound_speed() * np.abs(du),
            0.0,
        )

        # internal energy: pdV work with time-centered pressure
        vol_old = self._zone_volumes(r)
        dvol = vol_new - vol_old
        # predictor with old pressure, corrector via implicit EOS solve:
        # e_new = e_old - (p_half + q) dV / m with p_half = (p_old+p_new)/2
        # gives a linear equation for e_new under the ideal-gas EOS.
        a = (GAMMA - 1.0) * rho_new * dvol / (2.0 * m)
        e_new = (self.e - (0.5 * self.p + q_new) * dvol / m) / (1.0 + a)
        e_new = np.maximum(e_new, 0.0)

        self.r, self.u = r_new, u_new
        self.rho, self.e, self.q = rho_new, e_new, q_new
        self.p = self._eos(rho_new, e_new)
        self.t += dt
        self.cycles += 1
        return dt

    def run(self, t_end: float, max_cycles: int = 100000) -> int:
        """Advance to *t_end*; returns cycles executed."""
        require_positive(t_end, "t_end")
        start = self.cycles
        while self.t < t_end and self.cycles - start < max_cycles:
            self.step()
        if self.t < t_end:
            raise RuntimeError("max_cycles reached before t_end")
        return self.cycles - start

    # -- diagnostics ------------------------------------------------------
    def total_energy(self) -> float:
        """Kinetic + internal energy (conserved quantity)."""
        ke_node = 0.5 * self.u**2
        mnode = np.zeros_like(self.u)
        mnode[:-1] += 0.5 * self.m
        mnode[1:] += 0.5 * self.m
        return float(np.sum(mnode * ke_node) + np.sum(self.m * self.e))

    def total_mass(self) -> float:
        """Total mass on the grid (conserved by the Lagrangian step)."""
        return float(np.sum(self.m))

    def shock_radius(self) -> float:
        """Radius of the peak-density zone (the shock front)."""
        k = int(np.argmax(self.rho))
        return float(0.5 * (self.r[k] + self.r[k + 1]))

    @staticmethod
    def sedov_exponent() -> float:
        """The similarity exponent: r_s ~ t^(2/5) for a point blast in 3D."""
        return 0.4
