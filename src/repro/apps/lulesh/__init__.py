"""LULESH — Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics.

"LULESH solves a simplified Sedov blast problem with analytic answers
while capturing the numerical essentials of more complex hydrodynamic
applications."  (paper, Sec. VI)

Three layers:

* :mod:`repro.apps.lulesh.hydro` — a complete spherically-symmetric
  Lagrangian hydrodynamics solver (staggered von Neumann–Richtmyer scheme
  with artificial viscosity, ideal-gas EOS, Courant-limited time steps)
  running the Sedov point-blast problem with *analytic answers*: the
  shock radius follows ``r_s ~ t^(2/5)`` and total energy is conserved.
* :mod:`repro.apps.lulesh.hexkernels` — the real LULESH 3-D hex-element
  hot kernels (element volume from 8 corner nodes, shape-function
  derivatives / B-matrix, characteristic length) in two variants: the
  reference per-element loop (``Base`` in Table II) and the
  array-vectorized form (``Vect``).
* :mod:`repro.apps.lulesh.model` — Table II / Figure 7 performance
  signatures (base vs vectorized, single-thread vs full node, per
  toolchain).
"""

from repro.apps.lulesh.hydro import SedovSpherical
from repro.apps.lulesh.hexkernels import (
    hex_volumes_base,
    hex_volumes_vect,
    characteristic_length,
    shape_function_derivatives,
)
from repro.apps.lulesh.model import (
    LULESH_BASE,
    LULESH_VECT,
    lulesh_time,
    table2_rows,
)

__all__ = [
    "SedovSpherical",
    "hex_volumes_base",
    "hex_volumes_vect",
    "characteristic_length",
    "shape_function_derivatives",
    "LULESH_BASE",
    "LULESH_VECT",
    "lulesh_time",
    "table2_rows",
]
