"""The LULESH 3-D hexahedral element kernels, Base and Vect variants.

Table II compares "Base" (the reference LULESH 1.0 code, element-at-a-
time loops the compilers cannot vectorize across elements) with "Vect"
(an available vectorized implementation, originally tuned for Sandy
Bridge).  This module implements the actual hot kernels both ways:

* :func:`hex_volumes_base` / :func:`hex_volumes_vect` — element volume
  from the 8 corner nodes via the triple-product formula
  (``CalcElemVolume``), as a per-element Python loop and as a numpy
  array-program over all elements.
* :func:`shape_function_derivatives` — the B-matrix / partial volume
  derivatives (``CalcElemShapeFunctionDerivatives``), vectorized.
* :func:`characteristic_length` — element characteristic length used by
  the Courant constraint (``CalcElemCharacteristicLength``).

Tests verify both variants agree bit-for-bit and match analytic volumes
for known hexes (unit cube, sheared/parallelepiped elements).
"""

from __future__ import annotations

import numpy as np

from repro._util import require_positive

__all__ = [
    "make_box_mesh",
    "hex_volumes_base",
    "hex_volumes_vect",
    "shape_function_derivatives",
    "characteristic_length",
]

#: LULESH node ordering for one hexahedron (corner offsets in x, y, z)
_HEX_CORNERS = np.array(
    [
        (0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0),
        (0, 0, 1), (1, 0, 1), (1, 1, 1), (0, 1, 1),
    ],
    dtype=np.int64,
)


def make_box_mesh(n: int, jitter: float = 0.0, seed: int = 0
                  ) -> tuple[np.ndarray, np.ndarray]:
    """A structured box of ``n^3`` hex elements.

    Returns ``(coords, conn)``: node coordinates ``((n+1)^3, 3)`` and the
    element connectivity ``(n^3, 8)`` in LULESH corner order.  ``jitter``
    perturbs interior nodes to make elements genuinely hexahedral.
    """
    require_positive(n, "n")
    grid = np.linspace(0.0, 1.0, n + 1)
    xs, ys, zs = np.meshgrid(grid, grid, grid, indexing="ij")
    coords = np.stack([xs.ravel(), ys.ravel(), zs.ravel()], axis=1)
    if jitter:
        rng = np.random.default_rng(seed)
        interior = np.all((coords > 0) & (coords < 1), axis=1)
        coords[interior] += (jitter / n) * rng.uniform(
            -0.5, 0.5, (int(interior.sum()), 3)
        )

    def nid(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        return (i * (n + 1) + j) * (n + 1) + k

    idx = np.indices((n, n, n)).reshape(3, -1).T  # (nelem, 3)
    conn = np.empty((n**3, 8), dtype=np.int64)
    for c, (di, dj, dk) in enumerate(_HEX_CORNERS):
        conn[:, c] = nid(idx[:, 0] + di, idx[:, 1] + dj, idx[:, 2] + dk)
    return coords, conn


def _triple(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Scalar triple product a . (b x c) on trailing xyz axes."""
    return (
        a[..., 0] * (b[..., 1] * c[..., 2] - b[..., 2] * c[..., 1])
        + a[..., 1] * (b[..., 2] * c[..., 0] - b[..., 0] * c[..., 2])
        + a[..., 2] * (b[..., 0] * c[..., 1] - b[..., 1] * c[..., 0])
    )


def _volume_from_corners(x: np.ndarray) -> np.ndarray:
    """LULESH ``CalcElemVolume``: sum of three triple products / 12.

    ``x`` has shape ``(..., 8, 3)`` in LULESH corner order.
    """
    d61 = x[..., 6, :] - x[..., 1, :]
    d70 = x[..., 7, :] - x[..., 0, :]
    d63 = x[..., 6, :] - x[..., 3, :]
    d20 = x[..., 2, :] - x[..., 0, :]
    d50 = x[..., 5, :] - x[..., 0, :]
    d64 = x[..., 6, :] - x[..., 4, :]
    d31 = x[..., 3, :] - x[..., 1, :]
    d72 = x[..., 7, :] - x[..., 2, :]
    d43 = x[..., 4, :] - x[..., 3, :]
    d57 = x[..., 5, :] - x[..., 7, :]
    d14 = x[..., 1, :] - x[..., 4, :]
    d25 = x[..., 2, :] - x[..., 5, :]
    v = (
        _triple(d31 + d72, d63, d20)
        + _triple(d43 + d57, d64, d70)
        + _triple(d14 + d25, d61, d50)
    )
    return v / 12.0


def hex_volumes_base(coords: np.ndarray, conn: np.ndarray) -> np.ndarray:
    """Element volumes, one element at a time (the Table II "Base" shape:
    a serial loop the compiler cannot vectorize across elements)."""
    nelem = conn.shape[0]
    out = np.empty(nelem)
    for e in range(nelem):
        out[e] = float(_volume_from_corners(coords[conn[e]]))
    return out


def hex_volumes_vect(coords: np.ndarray, conn: np.ndarray) -> np.ndarray:
    """Element volumes, all elements at once (the "Vect" shape: gathers
    corner coordinates into ``(nelem, 8, 3)`` then applies the formula
    as straight-line vector arithmetic)."""
    return _volume_from_corners(coords[conn])


def shape_function_derivatives(
    coords: np.ndarray, conn: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """LULESH ``CalcElemShapeFunctionDerivatives`` over all elements.

    Returns ``(b, det)``: the B-matrix ``(nelem, 3, 8)`` of partial
    volume derivatives and the Jacobian determinant ``(nelem,)``
    (= volume/8 for the trilinear hex at the centroid).
    """
    x = coords[conn]  # (nelem, 8, 3)
    # centroid Jacobian columns (LULESH's fjxxi etc.), each (nelem, 3)
    t1 = x[:, 6] - x[:, 0]
    t2 = x[:, 5] - x[:, 3]
    t3 = x[:, 4] - x[:, 2]
    t4 = x[:, 7] - x[:, 1]
    fj_xi = 0.125 * (t1 + t2 - t3 - t4)
    fj_et = 0.125 * (t1 - t2 - t3 + t4)
    fj_ze = 0.125 * (t1 + t2 + t3 + t4)

    # cofactors
    cj_xi = np.cross(fj_et, fj_ze)
    cj_et = np.cross(fj_ze, fj_xi)
    cj_ze = np.cross(fj_xi, fj_et)

    det = 8.0 * np.einsum("ei,ei->e", fj_ze, cj_ze)

    signs = np.array(
        [
            (-1, -1, -1), (+1, -1, -1), (+1, +1, -1), (-1, +1, -1),
            (-1, -1, +1), (+1, -1, +1), (+1, +1, +1), (-1, +1, +1),
        ],
        dtype=np.float64,
    )
    # b[e, :, node] = sx*cj_xi + sy*cj_et + sz*cj_ze
    b = (
        signs[None, :, 0, None] * cj_xi[:, None, :]
        + signs[None, :, 1, None] * cj_et[:, None, :]
        + signs[None, :, 2, None] * cj_ze[:, None, :]
    )
    return np.swapaxes(b, 1, 2), det


def characteristic_length(coords: np.ndarray, conn: np.ndarray) -> np.ndarray:
    """LULESH ``CalcElemCharacteristicLength``: 4 * volume / sqrt(max
    face diagonal area), per element (drives the Courant constraint)."""
    x = coords[conn]
    vol = _volume_from_corners(x)
    faces = (
        (0, 1, 2, 3), (4, 5, 6, 7), (0, 1, 5, 4),
        (1, 2, 6, 5), (2, 3, 7, 6), (3, 0, 4, 7),
    )
    max_area = np.zeros(conn.shape[0])
    for f in faces:
        d20 = x[:, f[2]] - x[:, f[0]]
        d31 = x[:, f[3]] - x[:, f[1]]
        fx = d20 - d31
        gx = d20 + d31
        area = (
            np.einsum("ei,ei->e", fx, fx) * np.einsum("ei,ei->e", gx, gx)
            - np.einsum("ei,ei->e", fx, gx) ** 2
        )
        max_area = np.maximum(max_area, area)
    return 4.0 * vol / np.sqrt(np.maximum(max_area, 1e-30))
