"""Toolchain models: loop IR, vectorization, instruction selection.

The paper's central subject is how five compiler toolchains (Fujitsu,
Cray, ARM, GNU on A64FX; Intel on Skylake) turn the same source loops into
very differently performing machine code.  This package models that
pipeline:

* :mod:`repro.compilers.ir` — a small typed loop IR describing the
  paper's kernels (arithmetic, math calls, predicated stores,
  gather/scatter).
* :mod:`repro.compilers.toolchains` — the catalog of toolchains with
  their Table-I flags, vectorization capabilities, math-library bindings,
  instruction-selection quirks and OpenMP runtime traits.
* :mod:`repro.compilers.vectorizer` — the legality/strategy pass deciding
  per statement whether a toolchain vectorizes it.
* :mod:`repro.compilers.codegen` — lowering of (possibly vectorized) IR
  to an abstract instruction stream for a target microarchitecture.
"""

from repro.compilers.ir import (
    ArrayInfo,
    BinOp,
    Call,
    Cmp,
    Const,
    Load,
    Loop,
    LoopIdx,
    Reduce,
    Store,
    Var,
)
from repro.compilers.toolchains import (
    ARM,
    CRAY,
    FUJITSU,
    GNU,
    INTEL,
    TOOLCHAINS,
    Toolchain,
    get_toolchain,
)
from repro.compilers.vectorizer import VectorizationReport, vectorize
from repro.compilers.codegen import CompiledLoop, compile_loop

__all__ = [
    "ArrayInfo", "BinOp", "Call", "Cmp", "Const", "Load", "Loop", "LoopIdx",
    "Reduce", "Store", "Var",
    "Toolchain", "TOOLCHAINS", "FUJITSU", "CRAY", "ARM", "GNU", "INTEL",
    "get_toolchain",
    "VectorizationReport", "vectorize",
    "CompiledLoop", "compile_loop",
]
