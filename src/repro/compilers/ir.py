"""A small typed loop IR for the paper's kernels.

The IR describes one countable innermost loop over ``i = 0..n-1`` whose
body is a sequence of statements over float64 arrays.  It is deliberately
minimal — just rich enough to express every kernel in Sections III and IV
of the paper:

* ``simple``:     ``y[i] = 2*x[i] + 3*x[i]*x[i]``
* ``predicate``:  ``if (x[i] > 0) y[i] = x[i]``
* ``gather``:     ``y[i] = x[index[i]]``
* ``scatter``:    ``y[index[i]] = x[i]``
* math loops:     ``y[i] = f(x[i])`` for recip/sqrt/exp/sin/pow
* reductions:     ``sum += x[i]`` (Monte Carlo statistics)

Expressions form a tree of :class:`Const`, :class:`Load`, :class:`Var`,
:class:`BinOp`, :class:`Call` and :class:`Cmp` nodes; statements are
:class:`Store` (optionally masked by a compare) and :class:`Reduce`.
Every loop carries an :class:`ArrayInfo` table describing footprints and
access patterns, which the code generator forwards to the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Mapping, Sequence, Union

from repro._util import require_in, require_positive

__all__ = [
    "ArrayInfo", "Const", "Var", "LoopIdx", "Load", "BinOp", "Call", "Cmp",
    "Store", "Reduce", "Loop", "Expr", "Stmt", "MATH_FUNCTIONS",
]

#: math functions recognized by Call nodes (the paper's Section III suite)
MATH_FUNCTIONS = ("recip", "sqrt", "exp", "sin", "pow", "log")

BinOpKind = Literal["+", "-", "*", "/"]
CmpKind = Literal["<", "<=", ">", ">=", "=="]


@dataclass(frozen=True)
class ArrayInfo:
    """Memory characteristics of one array referenced by the loop."""

    name: str
    footprint: float               #: bytes the loop touches in this array
    pattern: str = "contig"        #: contig | random | window128 | stride
    elem_size: int = 8

    def __post_init__(self) -> None:
        require_positive(self.footprint, "footprint")
        require_in(self.pattern, ("contig", "random", "window128", "stride"),
                   "pattern")


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A floating-point literal."""

    value: float


@dataclass(frozen=True)
class Var:
    """A scalar variable live across the loop (reduction accumulator or a
    loop-invariant input such as the exponent of ``pow``)."""

    name: str


@dataclass(frozen=True)
class LoopIdx:
    """The loop induction variable used as an index."""


@dataclass(frozen=True)
class Load:
    """``array[index]``.  ``index`` is the induction variable or another
    Load (indirection — a gather)."""

    array: str
    index: "IndexExpr" = field(default_factory=LoopIdx)

    @property
    def is_gather(self) -> bool:
        """True when the load is indexed through another array."""
        return isinstance(self.index, Load)


@dataclass(frozen=True)
class BinOp:
    """Elementwise binary arithmetic on two expressions."""
    kind: BinOpKind
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        require_in(self.kind, ("+", "-", "*", "/"), "BinOp.kind")


@dataclass(frozen=True)
class Call:
    """A math-function call, e.g. ``exp(x[i])`` or ``pow(x[i], p)``."""

    fn: str
    args: tuple["Expr", ...]

    def __post_init__(self) -> None:
        require_in(self.fn, MATH_FUNCTIONS, "Call.fn")
        if not self.args:
            raise ValueError("Call needs at least one argument")


@dataclass(frozen=True)
class Cmp:
    """Elementwise comparison; only legal as a Store mask."""
    kind: CmpKind
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        require_in(self.kind, ("<", "<=", ">", ">=", "=="), "Cmp.kind")


Expr = Union[Const, Var, Load, BinOp, Call]
IndexExpr = Union[LoopIdx, Load]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Store:
    """``array[index] = value``, optionally predicated by ``mask``.

    A masked store models ``if (cond) y[i] = ...`` — the paper's
    ``predicate`` kernel.  An indirect index models a scatter.
    """

    array: str
    value: Expr
    index: IndexExpr = field(default_factory=LoopIdx)
    mask: Cmp | None = None

    @property
    def is_scatter(self) -> bool:
        """True when the store is indexed through another array."""
        return isinstance(self.index, Load)


@dataclass(frozen=True)
class Reduce:
    """``acc <op>= value`` — a loop-carried reduction."""

    var: str
    kind: Literal["+", "max", "min"]
    value: Expr

    def __post_init__(self) -> None:
        require_in(self.kind, ("+", "max", "min"), "Reduce.kind")


Stmt = Union[Store, Reduce]


# --------------------------------------------------------------------------
# The loop
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Loop:
    """One countable innermost loop."""

    name: str
    length: int
    body: tuple[Stmt, ...]
    arrays: Mapping[str, ArrayInfo]

    def __post_init__(self) -> None:
        require_positive(self.length, "length")
        if not self.body:
            raise ValueError("loop body must not be empty")
        for arr in self.referenced_arrays():
            if arr not in self.arrays:
                raise ValueError(
                    f"loop {self.name!r} references array {arr!r} without "
                    "an ArrayInfo entry"
                )

    # -- analysis helpers ------------------------------------------------
    def referenced_arrays(self) -> set[str]:
        """Names of every array the loop body touches."""
        out: set[str] = set()
        for stmt in self.body:
            out |= _stmt_arrays(stmt)
        return out

    def expressions(self) -> Iterator[Expr]:
        """All expression nodes in the body, depth-first."""
        for stmt in self.body:
            if isinstance(stmt, Store):
                yield from _walk(stmt.value)
                if isinstance(stmt.index, Load):
                    yield from _walk(stmt.index)
                if stmt.mask is not None:
                    yield from _walk(stmt.mask.lhs)
                    yield from _walk(stmt.mask.rhs)
            else:
                yield from _walk(stmt.value)

    def math_calls(self) -> list[str]:
        """Names of math functions called per iteration (with repeats)."""
        return [e.fn for e in self.expressions() if isinstance(e, Call)]

    def has_gather(self) -> bool:
        """True when any expression loads through an index array."""
        return any(isinstance(e, Load) and e.is_gather for e in self.expressions())

    def has_scatter(self) -> bool:
        """True when any store writes through an index array."""
        return any(isinstance(s, Store) and s.is_scatter for s in self.body)

    def has_predicated_store(self) -> bool:
        """True when any store carries a mask."""
        return any(isinstance(s, Store) and s.mask is not None for s in self.body)

    def has_reduction(self) -> bool:
        """True when the body contains a Reduce statement."""
        return any(isinstance(s, Reduce) for s in self.body)

    def flops_per_iter(self) -> int:
        """Scalar flop count of one iteration (calls counted as 1 flop —
        the convention used when reporting kernel GFLOP/s is arithmetic
        only; math-call cost is tracked separately)."""
        count = 0
        for e in self.expressions():
            if isinstance(e, (BinOp, Call)):
                count += 1
        return count


def _walk(e: Expr | Cmp) -> Iterator[Expr]:
    if isinstance(e, Cmp):
        yield from _walk(e.lhs)
        yield from _walk(e.rhs)
        return
    yield e
    if isinstance(e, BinOp):
        yield from _walk(e.lhs)
        yield from _walk(e.rhs)
    elif isinstance(e, Call):
        for a in e.args:
            yield from _walk(a)
    elif isinstance(e, Load) and isinstance(e.index, Load):
        yield from _walk(e.index)


def _stmt_arrays(stmt: Stmt) -> set[str]:
    out: set[str] = set()

    def visit(e: Expr | Cmp) -> None:
        if isinstance(e, Cmp):
            visit(e.lhs)
            visit(e.rhs)
            return
        if isinstance(e, Load):
            out.add(e.array)
            if isinstance(e.index, Load):
                visit(e.index)
        elif isinstance(e, BinOp):
            visit(e.lhs)
            visit(e.rhs)
        elif isinstance(e, Call):
            for a in e.args:
                visit(a)

    if isinstance(stmt, Store):
        out.add(stmt.array)
        if isinstance(stmt.index, Load):
            visit(stmt.index)
        if stmt.mask is not None:
            visit(stmt.mask)
        visit(stmt.value)
    else:
        visit(stmt.value)
    return out
