"""Lowering of loop IR to abstract instruction streams.

``compile_loop(loop, toolchain, march)`` runs the vectorizer and then
lowers the loop body to an :class:`~repro.machine.isa.InstructionStream`
for the target microarchitecture, applying the toolchain's strategies:

* **FMA contraction** — ``a*b + c`` fuses (all toolchains use
  ``-ffast-math``-class flags, Table I).
* **Divide/sqrt selection** — ``newton`` expands to the estimate
  instruction (``FRECPE``/``FRSQRTE``) plus Newton–Raphson refinement
  steps; ``hardware`` emits the blocking ``FDIV``/``FSQRT`` (the GNU/ARM
  choice the paper calls out).
* **Vector math recipes** — calls such as ``exp`` splice in the
  instruction sequence of the toolchain's library algorithm, built by
  :mod:`repro.mathlib.vectormath` (Fujitsu's ``FEXPA`` 5-term kernel,
  Cray/ARM 13-term kernels, Intel SVML).
* **Gather/scatter splitting** — a gather becomes one transaction per
  element, or per *pair* of elements when the indices stay inside an
  aligned 128-byte window on a machine with pair coalescing (the A64FX
  rule behind the paper's short-gather result).
* **Unrolling** — the body is replicated ``toolchain.unroll`` times with
  renamed temporaries and separate reduction accumulators, which is what
  lets the scheduler overlap the 9-cycle FMA chains ("Unrolling once
  decreased this to 1.9 cycles/element", Sec. IV).
* **Scalar fallback** — when the vectorizer refuses the loop (GNU with
  ``exp``/``sin``/``pow``), the body is lowered element-at-a-time with
  opaque libm calls of the measured serial cost.

The result also carries the loop's :class:`~repro.machine.memory.MemoryStream`
set so the executor can add memory-hierarchy time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping

from repro.compilers.ir import (
    ArrayInfo,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    Load,
    Loop,
    LoopIdx,
    Reduce,
    Store,
    Var,
)
from repro.compilers.toolchains import Toolchain
from repro.compilers.vectorizer import VectorizationReport, vectorize
from repro.engine.scheduler import ScheduleResult, schedule_on
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.memory import MemoryStream
from repro.machine.microarch import Microarch

__all__ = [
    "CompiledLoop",
    "compile_loop",
    "add_compile_observer",
    "remove_compile_observer",
]

#: opt-in compile observers (see :func:`add_compile_observer`); empty in
#: normal operation so lowering pays nothing for the hook point
_COMPILE_OBSERVERS: list = []


def add_compile_observer(observer) -> None:
    """Register *observer* to receive every :class:`CompiledLoop` that
    :func:`compile_loop` produces, after vectorization and lowering.

    Used by :mod:`repro.validate` to verify IR well-formedness and the
    lowered stream's bookkeeping (unroll factors, gather/scatter
    splitting, memory-stream footprints) inline, without the compiler
    importing the validator.
    """
    _COMPILE_OBSERVERS.append(observer)


def remove_compile_observer(observer) -> None:
    """Unregister a compile observer added by :func:`add_compile_observer`."""
    _COMPILE_OBSERVERS.remove(observer)


@dataclass
class CompiledLoop:
    """A loop lowered for one (toolchain, microarchitecture) pair."""

    loop: Loop
    toolchain: Toolchain
    march: Microarch
    stream: InstructionStream
    report: VectorizationReport
    mem_streams: tuple[MemoryStream, ...]
    elements_per_iter: int

    @property
    def n_iters(self) -> float:
        """Dynamic iteration count of the lowered loop."""
        return math.ceil(self.loop.length / self.elements_per_iter)

    @cached_property
    def schedule(self) -> ScheduleResult:
        """Steady-state schedule on the target core.

        Cached twice over: per-instance here, and process-wide (by
        march/stream content) in :mod:`repro.engine.cache`, so sweeps
        that recompile the same loop — or different toolchains emitting
        identical streams — never re-simulate."""
        return schedule_on(self.march, self.stream)

    @property
    def cycles_per_element(self) -> float:
        """Compute-side cycles per source-loop element, including the
        toolchain's quality factor: SIMD code-generation polish for
        vectorized loops (where Fujitsu leads, Fig. 1), general optimizer
        quality for scalar code (where GNU leads, Fig. 3)."""
        factor = (
            self.toolchain.simd_quality
            if self.report.vectorized
            else self.toolchain.code_quality
        )
        return self.schedule.cycles_per_element * factor


def compile_loop(loop: Loop, toolchain: Toolchain, march: Microarch) -> CompiledLoop:
    """Vectorize (if possible) and lower *loop* for *march*.

    Any (toolchain, march) pairing is accepted — the abstract op
    vocabulary is shared across ISAs, and cross-target pairings are how
    the design-space sweeps retarget one lowered stream to many
    machines.  A toolchain recipe that genuinely needs a missing ISA
    feature fails loudly instead: the FEXPA exponential raises at
    recipe-build time (``mathlib.vectormath.build_recipe``) and any
    other gap surfaces as the timing-table KeyError at schedule time.
    """
    report = vectorize(loop, toolchain)
    lowerer = _Lowerer(loop, toolchain, march, vectorized=report.vectorized)
    stream, elements_per_iter = lowerer.lower()
    mem_streams = _memory_streams(loop, elements_per_iter)
    compiled = CompiledLoop(
        loop=loop,
        toolchain=toolchain,
        march=march,
        stream=stream,
        report=report,
        mem_streams=mem_streams,
        elements_per_iter=elements_per_iter,
    )
    for observer in tuple(_COMPILE_OBSERVERS):
        observer(compiled)
    return compiled


# ---------------------------------------------------------------------------


def _memory_streams(loop: Loop, elements_per_iter: int) -> tuple[MemoryStream, ...]:
    """One MemoryStream per referenced array, sized per lowered iteration."""
    stored = {s.array for s in loop.body if isinstance(s, Store)}
    streams = []
    for name in sorted(loop.referenced_arrays()):
        info = loop.arrays[name]
        streams.append(
            MemoryStream(
                name=name,
                bytes_per_iter=float(info.elem_size * elements_per_iter),
                footprint=info.footprint,
                pattern=info.pattern,  # type: ignore[arg-type]
                is_store=name in stored,
                elem_size=info.elem_size,
            )
        )
    return tuple(streams)


class _Lowerer:
    """Stateful expression/statement lowering for one loop."""

    def __init__(
        self,
        loop: Loop,
        toolchain: Toolchain,
        march: Microarch,
        vectorized: bool,
    ) -> None:
        self.loop = loop
        self.tc = toolchain
        self.march = march
        self.vectorized = vectorized
        self.instrs: list[Instruction] = []
        self._tmp = 0
        self._cse: dict[tuple[int, Expr], str] = {}
        self._copy = 0  # current unroll copy index

    # -- public ------------------------------------------------------------
    def lower(self) -> tuple[InstructionStream, int]:
        # compilers unroll short arithmetic loops aggressively but leave
        # big math-library bodies alone (the paper's Sec. IV exp loop kept
        # its vector-length-agnostic single-iteration structure)
        unroll = self.tc.unroll
        if self.vectorized and not self.loop.math_calls():
            unroll = max(unroll, self.tc.small_loop_unroll)
        lanes = self.march.lanes_f64 if self.vectorized else 1
        for copy in range(unroll):
            self._copy = copy
            for stmt in self.loop.body:
                if isinstance(stmt, Store):
                    self._lower_store(stmt)
                else:
                    self._lower_reduce(stmt)
        self._emit_loop_tail()
        stream = InstructionStream(
            body=self.instrs,
            elements_per_iter=lanes * unroll,
            label=f"{self.loop.name}/{self.tc.name}/{self.march.name}",
        )
        stream.validate()
        return stream, lanes * unroll

    # -- helpers -------------------------------------------------------------
    def _new(self, hint: str) -> str:
        self._tmp += 1
        return f"{hint}_{self._copy}_{self._tmp}"

    def _emit(
        self,
        op: Op,
        dest: str,
        *srcs: str,
        carried: bool = False,
        tag: str = "",
        latency: float | None = None,
        rtput: float | None = None,
    ) -> str:
        self.instrs.append(
            Instruction(
                op=op,
                dest=dest,
                srcs=tuple(srcs),
                carried=carried,
                tag=tag,
                latency_override=latency,
                rtput_override=rtput,
            )
        )
        return dest

    # -- statements ------------------------------------------------------------
    def _lower_store(self, stmt: Store) -> None:
        value = self._lower_expr(stmt.value)
        mask = ""
        if stmt.mask is not None:
            mask = self._lower_cmp(stmt.mask)
        if stmt.is_scatter:
            assert isinstance(stmt.index, Load)
            idx = self._lower_contig_load(stmt.index.array)
            n_uops = self._index_uops(stmt.array, is_store=True)
            store_op = Op.SCATTER_UOP if self.vectorized else Op.SSTORE
            info = self.loop.arrays[stmt.array]
            # scatters are never pair-coalesced, but writes that stay
            # inside one 256-byte line merge in the store buffer: "the
            # short scatter test localizes pairs of 128-byte windows
            # within a single 256 byte cache line, whereas the cache line
            # is only 64 bytes on Skylake" (Sec. III)
            rtput = (
                0.75
                if info.pattern == "window128"
                and self.vectorized
                and self.march.gather_pair_coalescing
                else None
            )
            for k in range(n_uops):
                srcs = (value, idx) + ((mask,) if mask else ())
                self._emit(store_op, "", *srcs, tag=f"scatter[{k}]",
                           rtput=rtput)
            return
        store_op = Op.VSTORE if self.vectorized else Op.SSTORE
        srcs = (value,) + ((mask,) if mask else ())
        if (mask and self.vectorized
                and self.march.vector_isa.predicated_store_crack):
            # A64FX cracks predicated stores into slower store flows; this
            # is the mechanism behind the paper's predicate loop running
            # 3x (not the clock-ratio 2x) slower than Skylake (Fig. 1).
            self._emit(store_op, "", *srcs, tag=f"store? {stmt.array}",
                       rtput=1.2)
        else:
            self._emit(store_op, "", *srcs, tag=f"store {stmt.array}")

    def _lower_reduce(self, stmt: Reduce) -> None:
        value = self._lower_expr(stmt.value)
        acc = f"acc_{stmt.var}_{self._copy}"  # one accumulator per copy
        op = Op.FADD if self.vectorized else Op.SFP
        if stmt.kind in ("max", "min"):
            op = Op.FMINMAX if self.vectorized else Op.SFP
        self._emit(op, acc, acc, value, carried=True, tag=f"reduce {stmt.var}")

    # -- expressions ------------------------------------------------------------
    def _lower_expr(self, e: Expr) -> str:
        key = (self._copy, e)
        hit = self._cse.get(key)
        if hit is not None:
            return hit
        name = self._lower_expr_uncached(e)
        self._cse[key] = name
        return name

    def _lower_expr_uncached(self, e: Expr) -> str:
        if isinstance(e, Const):
            return f"const({e.value})"  # constants live in registers: free
        if isinstance(e, Var):
            return f"var({e.name})"  # loop-invariant input: ready at 0
        if isinstance(e, Load):
            if e.is_gather:
                return self._lower_gather(e)
            return self._lower_contig_load(e.array)
        if isinstance(e, BinOp):
            return self._lower_binop(e)
        if isinstance(e, Call):
            return self._lower_call(e)
        raise TypeError(f"cannot lower expression {e!r}")

    def _lower_contig_load(self, array: str) -> str:
        dest = self._new(f"ld_{array}")
        op = Op.VLOAD if self.vectorized else Op.SLOAD
        return self._emit(op, dest, tag=f"load {array}")

    def _lower_gather(self, e: Load) -> str:
        assert isinstance(e.index, Load)
        idx = self._lower_contig_load(e.index.array)
        if not self.vectorized:
            # scalar indirect load: address dep on the index value
            dest = self._new(f"g_{e.array}")
            return self._emit(Op.SLOAD, dest, idx, tag=f"gather {e.array}")
        n_uops = self._index_uops(e.array)
        dest = ""
        for k in range(n_uops):
            dest = self._new(f"g_{e.array}")
            self._emit(Op.GATHER_UOP, dest, idx, tag=f"gather[{k}] {e.array}")
        return dest  # consumers wait on the last transaction

    def _index_uops(self, array: str, is_store: bool = False) -> int:
        """Transactions per vector for an indexed access of *array*.

        Pair coalescing applies to gather *loads* only: "No such
        acceleration is indicated for scatter operations" (Sec. III).
        """
        lanes = self.march.lanes_f64
        info = self.loop.arrays[array]
        if (
            not is_store
            and info.pattern == "window128"
            and self.march.gather_pair_coalescing
        ):
            # adjacent-element pairs share an aligned 128-byte window and
            # are not split (A64FX microarchitecture manual; paper Sec. III)
            return max(1, lanes // 2)
        return lanes

    def _lower_binop(self, e: BinOp) -> str:
        # FMA contraction: (a*b) + c / c + (a*b) / (a*b) - c
        if e.kind in ("+", "-"):
            for mul, other, order in (
                (e.lhs, e.rhs, "lhs"),
                (e.rhs, e.lhs, "rhs"),
            ):
                if isinstance(mul, BinOp) and mul.kind == "*":
                    if e.kind == "-" and order == "rhs":
                        continue  # c - a*b: fused too, but keep model simple
                    a = self._lower_expr(mul.lhs)
                    b = self._lower_expr(mul.rhs)
                    c = self._lower_expr(other)
                    dest = self._new("fma")
                    op = Op.FMA if self.vectorized else Op.SFP
                    return self._emit(op, dest, a, b, c, tag="fma")
        lhs = self._lower_expr(e.lhs)
        rhs = self._lower_expr(e.rhs)
        if e.kind == "/":
            return self._lower_divide(lhs, rhs)
        dest = self._new("t")
        if self.vectorized:
            op = Op.FMUL if e.kind == "*" else Op.FADD
        else:
            op = Op.SFP
        return self._emit(op, dest, lhs, rhs, tag=e.kind)

    def _lower_cmp(self, c: Cmp) -> str:
        lhs = self._lower_expr(c.lhs)
        rhs = self._lower_expr(c.rhs)
        dest = self._new("mask")
        op = Op.FCMP if self.vectorized else Op.SFP
        return self._emit(op, dest, lhs, rhs, tag=f"cmp{c.kind}")

    # -- divide / sqrt / math calls ------------------------------------------------
    def _lower_divide(self, num: str, den: str) -> str:
        if not self.vectorized:
            dest = self._new("div")
            return self._emit(Op.SFDIV, dest, num, den, tag="sdiv")
        if self.tc.div_strategy == "hardware":
            dest = self._new("div")
            return self._emit(Op.FDIV, dest, num, den, tag="fdiv")
        recip = self._newton_recip(den)
        dest = self._new("div")
        return self._emit(Op.FMUL, dest, num, recip, tag="div=num*recip")

    def _newton_recip(self, den: str) -> str:
        """FRECPE estimate + 3 Newton steps: x' = x*(2 - d*x).

        Under the fast-math flags of Table I the compilers settle for two
        quadratic steps (~32 bits, relative error ~1e-10); the numerics in
        :mod:`repro.mathlib.newton` chart the per-step accuracy."""
        x = self._emit(Op.FRECPE, self._new("rcp"), den, tag="frecpe")
        for step in range(2):
            e = self._emit(Op.FMA, self._new("rcpe"), den, x, tag=f"nr{step}a")
            x = self._emit(Op.FMA, self._new("rcp"), x, e, x, tag=f"nr{step}b")
        return x

    def _newton_rsqrt(self, x_in: str) -> str:
        """FRSQRTE estimate + 2 fused Newton steps (fast-math precision).

        SVE provides FRSQRTS, which fuses the (3 - x*y*y)/2 half of each
        step into one instruction, so a step is FRSQRTS + FMUL."""
        y = self._emit(Op.FRSQRTE, self._new("rsq"), x_in, tag="frsqrte")
        for step in range(2):
            h = self._emit(Op.FMA, self._new("rsqh"), x_in, y, tag=f"frsqrts{step}")
            y = self._emit(Op.FMUL, self._new("rsq"), y, h, tag=f"ns{step}")
        return y

    def _lower_call(self, e: Call) -> str:
        args = [self._lower_expr(a) for a in e.args]
        fn = e.fn

        if not self.vectorized:
            if fn == "recip":
                dest = self._new("recip")
                return self._emit(Op.SFDIV, dest, args[0], tag="srecip")
            if fn == "sqrt":
                dest = self._new("sqrt")
                return self._emit(Op.SFSQRT, dest, args[0], tag="ssqrt")
            impl = self.tc.math_impl(fn)
            cost = impl.scalar_cycles if impl.kind == "scalar_call" else 20.0
            dest = self._new(fn)
            return self._emit(
                Op.CALL, dest, *args, tag=f"call {fn}",
                latency=cost, rtput=cost,
            )

        if fn == "recip":
            return self._newton_recip_or_hw(args[0])
        if fn == "sqrt":
            return self._sqrt_or_hw(args[0])

        impl = self.tc.math_impl(fn)
        if impl.kind == "scalar_call":
            # vectorizer should have scalarized the loop; defensive check
            raise RuntimeError(
                f"{self.tc.name} cannot vectorize {fn}; "
                "the vectorizer should have rejected this loop"
            )
        from repro.mathlib.vectormath import build_recipe  # lazy: avoid cycle

        dest = self._new(fn)
        instrs = build_recipe(
            impl.recipe, self.march, args, dest, prefix=self._new(fn)
        )
        self.instrs.extend(instrs)
        return dest

    def _newton_recip_or_hw(self, x: str) -> str:
        if self.tc.div_strategy == "hardware":
            dest = self._new("recip")
            return self._emit(Op.FDIV, dest, x, tag="fdiv(1/x)")
        return self._newton_recip(x)

    def _sqrt_or_hw(self, x: str) -> str:
        if self.tc.sqrt_strategy == "hardware":
            dest = self._new("sqrt")
            return self._emit(Op.FSQRT, dest, x, tag="fsqrt")
        rsq = self._newton_rsqrt(x)
        dest = self._new("sqrt")
        return self._emit(Op.FMUL, dest, x, rsq, tag="sqrt=x*rsqrt")

    # -- loop control -------------------------------------------------------------
    def _emit_loop_tail(self) -> None:
        self._copy = self.tc.unroll  # distinct namespace for the tail
        self._emit(Op.SALU, self._new("ptr"), tag="advance pointers")
        if self.vectorized and self.march.vector_isa.predicated_tail:
            # VLA predicated loop (SVE/RVV): WHILELT + branch on predicate
            p = self._emit(Op.PWHILE, self._new("p"), tag="whilelt")
            self._emit(Op.BRANCH, "", p, tag="b.first")
        else:
            c = self._emit(Op.SALU, self._new("cmp"), tag="cmp n")
            self._emit(Op.BRANCH, "", c, tag="b.lt")
