"""The toolchain catalog: what each compiler can vectorize and how.

Everything the paper observed about the five toolchains is encoded here as
*capabilities*, so the rest of the system derives performance differences
mechanically rather than by table lookup:

* **Vectorization coverage** (Sec. III): "The Intel, Fujitsu, Cray and ARM
  compilers vectorized all loops, whereas the GNU compiler did not
  vectorize exp, sin, and pow" — GNU has no SVE vector math library in
  glibc, so those calls stay scalar libm calls (~32 cycles/eval for exp).
* **Instruction selection** (Sec. III): "the AMD and GNU compilers
  selecting the SVE FSQRT instruction that on A64FX is blocking with a 134
  cycle latency ... The Cray and Fujitsu compilers instead employ a Newton
  algorithm"; similarly GNU still emits FDIV for reciprocal.
* **Math-library algorithms** (Sec. IV): each toolchain's vectorized exp
  (and friends) is a *recipe name* resolved by
  :mod:`repro.mathlib.vectormath` into an actual instruction sequence (and,
  for the numerics, an actual numpy implementation) — Fujitsu's uses
  ``FEXPA`` with a 5-term polynomial, the others use a 13-term economized
  expansion with varying overhead.
* **OpenMP runtime traits** (Sec. V): the Fujitsu runtime's default
  CMG-0 data placement, the ARM runtime's higher region overheads.
* **Table I flags** are carried verbatim for the report generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Literal, Mapping

from repro._util import require_in
from repro.engine.openmp import RuntimeTraits
from repro.machine.numa import PagePlacement

__all__ = [
    "MathImpl",
    "Toolchain",
    "FUJITSU",
    "CRAY",
    "ARM",
    "GNU",
    "INTEL",
    "TOOLCHAINS",
    "get_toolchain",
]

DivStrategy = Literal["hardware", "newton"]


@dataclass(frozen=True)
class MathImpl:
    """How a toolchain implements one vector math function.

    ``kind='vector'`` names a recipe from
    :data:`repro.mathlib.vectormath.RECIPES` (an instruction-sequence
    builder plus a real numpy implementation).  ``kind='scalar_call'``
    models a serial libm call with the given per-element cycle cost —
    the GNU situation on ARM+SVE.
    """

    fn: str
    kind: Literal["vector", "scalar_call"]
    recipe: str = ""
    scalar_cycles: float = 0.0

    def __post_init__(self) -> None:
        require_in(self.kind, ("vector", "scalar_call"), "MathImpl.kind")
        if self.kind == "vector" and not self.recipe:
            raise ValueError("vector MathImpl needs a recipe name")
        if self.kind == "scalar_call" and self.scalar_cycles <= 0:
            raise ValueError("scalar_call MathImpl needs scalar_cycles > 0")


@dataclass(frozen=True)
class Toolchain:
    """A compiler + math library + OpenMP runtime bundle."""

    name: str
    version: str
    flags: str                       #: Table I / Table II flag string
    target: Literal["sve", "x86"]
    math_impls: Mapping[str, MathImpl]
    div_strategy: DivStrategy = "newton"
    sqrt_strategy: DivStrategy = "newton"
    unroll: int = 4                  #: innermost-loop unroll factor
    small_loop_unroll: int = 4       #: unroll applied to short no-call loops
    openmp: RuntimeTraits = field(default_factory=lambda: RuntimeTraits("generic"))
    code_quality: float = 1.0        #: scalar/whole-app compute multiplier
    simd_quality: float = 1.0        #: vectorized-loop codegen multiplier
    #: serial libm cost in cycles/call on the toolchain's native libm
    #: (used for math calls inside loops the vectorizer cannot touch).
    #: The paper measures GNU's serial exp at ~32 cycles on A64FX; the
    #: commercial toolchains ship much faster scalar math libraries.
    scalar_libm: Mapping[str, float] = field(default_factory=dict)
    vectorizes_predicate: bool = True

    def __post_init__(self) -> None:
        require_in(self.target, ("sve", "x86"), "target")
        if self.unroll < 1 or self.small_loop_unroll < 1:
            raise ValueError("unroll factors must be >= 1")
        if self.code_quality < 1.0 or self.simd_quality < 1.0:
            raise ValueError("quality factors are slowdown multipliers >= 1.0")

    def vectorizes_call(self, fn: str) -> bool:
        """Whether calls to *fn* vectorize (recip/sqrt are open-coded from
        arithmetic and always vectorize; the rest need a vector math
        library entry)."""
        if fn in ("recip", "sqrt"):
            return True
        impl = self.math_impls.get(fn)
        return impl is not None and impl.kind == "vector"

    def math_impl(self, fn: str) -> MathImpl:
        """How this toolchain implements vector math function *fn*."""
        try:
            return self.math_impls[fn]
        except KeyError:
            raise KeyError(
                f"toolchain {self.name!r} has no implementation for {fn!r}"
            ) from None


def _impls(**kw: MathImpl) -> Mapping[str, MathImpl]:
    return MappingProxyType({impl.fn: impl for impl in kw.values()})


def _vec(fn: str, recipe: str) -> MathImpl:
    return MathImpl(fn=fn, kind="vector", recipe=recipe)


def _scalar(fn: str, cycles: float) -> MathImpl:
    return MathImpl(fn=fn, kind="scalar_call", scalar_cycles=cycles)


# ---------------------------------------------------------------------------
# Scalar libm costs on A64FX (cycles per evaluation).  The paper measures
# the GNU serial exp at "nearly 32 cycles per evaluation"; the others are
# scaled by their relative algorithmic complexity.
# ---------------------------------------------------------------------------
_GNU_LIBM = {
    "exp": 32.0,
    "sin": 42.0,
    "pow": 95.0,
    "log": 36.0,
}


FUJITSU = Toolchain(
    name="fujitsu",
    version="1.0.20",
    flags="-Kfast -KSVE -Koptmsg=2",
    target="sve",
    math_impls=_impls(
        exp=_vec("exp", "exp_fexpa_estrin"),
        sin=_vec("sin", "sin_fast"),
        pow=_vec("pow", "pow_explog_fast"),
        log=_vec("log", "log_fast"),
    ),
    div_strategy="newton",
    sqrt_strategy="newton",
    unroll=1,
    small_loop_unroll=4,
    openmp=RuntimeTraits(
        name="fujitsu-omp",
        fork_join_us=2.0,
        barrier_us_log2=0.5,
        # the paper's headline NUMA finding: everything on CMG 0 by default
        default_placement=PagePlacement.SINGLE_DOMAIN,
    ),
    code_quality=1.10,
    simd_quality=1.0,
    scalar_libm={"exp": 10.0, "sin": 13.0, "pow": 30.0, "log": 11.0,
                 "sqrt": 15.0, "recip": 12.0},
)


CRAY = Toolchain(
    name="cray",
    version="10.0.2",
    flags="-O3 -h aggress,flex_mp=tolerant,msgs,negmsgs,vector3,omp",
    target="sve",
    math_impls=_impls(
        exp=_vec("exp", "exp_table13_estrin"),
        sin=_vec("sin", "sin_std"),
        pow=_vec("pow", "pow_explog"),
        log=_vec("log", "log_std"),
    ),
    div_strategy="newton",
    sqrt_strategy="newton",
    unroll=1,
    small_loop_unroll=4,
    openmp=RuntimeTraits(
        name="cray-omp",
        fork_join_us=2.5,
        barrier_us_log2=0.6,
        default_placement=PagePlacement.FIRST_TOUCH,
    ),
    code_quality=1.14,
    simd_quality=1.10,
    scalar_libm={"exp": 13.0, "sin": 16.0, "pow": 36.0, "log": 14.0,
                 "sqrt": 18.0, "recip": 14.0},
)


ARM = Toolchain(
    name="arm",
    version="21",
    flags=(
        "-std=c++17 -Ofast -ffp-contract=fast -ffast-math -Wall "
        "-Rpass=loop-vectorize -march=armv8.2-a+sve -mcpu=a64fx -armpl "
        "-fopenmp"
    ),
    target="sve",
    math_impls=_impls(
        exp=_vec("exp", "exp_sleef_horner13"),
        sin=_vec("sin", "sin_sleef"),
        pow=_vec("pow", "pow_sleef"),
        log=_vec("log", "log_sleef"),
    ),
    div_strategy="newton",        # fixed in v21 (v20 still used FDIV)
    sqrt_strategy="hardware",     # still emits the blocking FSQRT
    unroll=1,
    small_loop_unroll=2,
    openmp=RuntimeTraits(
        name="arm-llvm-omp",
        fork_join_us=5.0,
        barrier_us_log2=1.4,
        default_placement=PagePlacement.FIRST_TOUCH,
        scheduling_imbalance=0.10,
    ),
    code_quality=1.15,
    simd_quality=1.35,
    scalar_libm={"exp": 15.0, "sin": 19.0, "pow": 42.0, "log": 16.0,
                 "sqrt": 22.0, "recip": 15.0},
)


GNU = Toolchain(
    name="gnu",
    version="11.1.0",
    flags=(
        "-Ofast -ffast-math -Wall -mtune=a64fx -mcpu=a64fx "
        "-march=armv8.2-a+sve -fopt-info-vec -fopt-info-vec-missed -fopenmp"
    ),
    target="sve",
    # no SVE vector math library exists in glibc: exp/sin/pow/log stay
    # scalar libm calls (Section III's "must be avoided for HPC kernels")
    math_impls=_impls(
        exp=_scalar("exp", _GNU_LIBM["exp"]),
        sin=_scalar("sin", _GNU_LIBM["sin"]),
        pow=_scalar("pow", _GNU_LIBM["pow"]),
        log=_scalar("log", _GNU_LIBM["log"]),
    ),
    div_strategy="hardware",      # emits FDIV (like ARM v20)
    sqrt_strategy="hardware",     # emits the blocking FSQRT
    unroll=1,
    small_loop_unroll=2,
    openmp=RuntimeTraits(
        name="libgomp",
        fork_join_us=2.5,
        barrier_us_log2=0.7,
        default_placement=PagePlacement.FIRST_TOUCH,
    ),
    code_quality=1.0,             # best scalar/loop optimizer in Fig. 3
    simd_quality=1.30,
    scalar_libm={"exp": 32.0, "sin": 42.0, "pow": 95.0, "log": 36.0,
                 "sqrt": 51.0, "recip": 43.0},
)


INTEL = Toolchain(
    name="intel",
    version="19.1.2.254",
    flags=(
        "-xHOST -O3 -ipo -no-prec-div -fp-model fast=2 -qopt-report=5 "
        "-qopt-report-phase=vec -mkl=sequential -qopt-zmm-usage=high "
        "-qopenmp"
    ),
    target="x86",
    math_impls=_impls(
        exp=_vec("exp", "exp_svml"),
        sin=_vec("sin", "sin_svml"),
        pow=_vec("pow", "pow_svml"),
        log=_vec("log", "log_svml"),
    ),
    div_strategy="newton",
    sqrt_strategy="newton",
    unroll=2,
    small_loop_unroll=4,
    openmp=RuntimeTraits(
        name="intel-omp",
        fork_join_us=1.2,
        barrier_us_log2=0.4,
        default_placement=PagePlacement.FIRST_TOUCH,
    ),
    code_quality=1.0,
    scalar_libm={"exp": 9.0, "sin": 11.0, "pow": 26.0, "log": 10.0,
                 "sqrt": 12.0, "recip": 9.0},
)


TOOLCHAINS: dict[str, Toolchain] = {
    t.name: t for t in (FUJITSU, CRAY, ARM, GNU, INTEL)
}


def get_toolchain(name: str) -> Toolchain:
    """Look up a toolchain by name (case-insensitive)."""
    try:
        return TOOLCHAINS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown toolchain {name!r}; available: {sorted(TOOLCHAINS)}"
        ) from None
