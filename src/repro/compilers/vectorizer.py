"""The vectorization legality/strategy pass.

Decides whether a given toolchain vectorizes a given loop, and why —
mirroring the paper's Section III finding that Intel/Fujitsu/Cray/ARM
vectorized the whole suite while GNU refused the ``exp``/``sin``/``pow``
loops (no SVE vector math library to call).

The report's ``remarks`` deliberately read like real ``-fopt-info-vec`` /
``-Rpass=loop-vectorize`` output so examples can show the out-of-the-box
experience the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compilers.ir import Call, Loop
from repro.compilers.toolchains import Toolchain

__all__ = ["VectorizationReport", "vectorize"]


@dataclass(frozen=True)
class VectorizationReport:
    """Outcome of the vectorization pass for one loop."""

    loop: str
    toolchain: str
    vectorized: bool
    remarks: tuple[str, ...] = ()
    blocking_calls: tuple[str, ...] = ()

    def __str__(self) -> str:
        head = (
            f"{self.toolchain}: loop {self.loop!r} "
            f"{'VECTORIZED' if self.vectorized else 'NOT vectorized'}"
        )
        return "\n".join([head, *("  " + r for r in self.remarks)])


def vectorize(loop: Loop, toolchain: Toolchain) -> VectorizationReport:
    """Run the legality pass of *toolchain* over *loop*.

    The model follows real auto-vectorizer behaviour: a single call with no
    vector implementation forces the whole loop to stay scalar (the
    vectorizer cannot mix lanes with a scalar libm call), whereas
    predicated stores, gathers, scatters and fast-math reductions are all
    vectorizable by every toolchain in the study.
    """
    remarks: list[str] = []
    blocking: list[str] = []

    for fn in sorted(set(loop.math_calls())):
        if toolchain.vectorizes_call(fn):
            impl = "open-coded" if fn in ("recip", "sqrt") else (
                toolchain.math_impl(fn).recipe
            )
            remarks.append(f"call {fn}(): vectorized ({impl})")
        else:
            blocking.append(fn)
            remarks.append(
                f"call {fn}(): no vector math library entry — "
                "loop remains scalar"
            )

    if loop.has_predicated_store():
        if toolchain.vectorizes_predicate:
            remarks.append("conditional store: vectorized with predication")
        else:
            blocking.append("<predicate>")
            remarks.append("conditional store: not supported — loop remains scalar")

    if loop.has_gather():
        remarks.append("indirect load: vectorized as gather")
    if loop.has_scatter():
        remarks.append("indirect store: vectorized as scatter")
    if loop.has_reduction():
        remarks.append("reduction: vectorized with fast-math reassociation")

    vectorized = not blocking
    if vectorized and not remarks:
        remarks.append("straight-line arithmetic: vectorized")

    return VectorizationReport(
        loop=loop.name,
        toolchain=toolchain.name,
        vectorized=vectorized,
        remarks=tuple(remarks),
        blocking_calls=tuple(blocking),
    )
