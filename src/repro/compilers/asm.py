"""Pseudo-assembly rendering of compiled loops.

"The small loops also permit examining and understanding the generated
code" (paper, Sec. III) — this module is that examination tool for the
model: it renders an :class:`~repro.machine.isa.InstructionStream` as an
SVE- or AVX-512-flavoured listing, so one can *see* the difference
between, say, the Fujitsu Newton-Raphson sqrt sequence and GNU's single
blocking ``FSQRT``, or GNU's scalar ``bl exp`` call in the middle of an
otherwise vectorizable loop.

The mnemonics follow the target ISA's conventions (``fmla z…`` vs
``vfmadd231pd zmm…``); register allocation is a simple rename of the
dataflow names, cycling through the architectural register file.
"""

from __future__ import annotations

from typing import Mapping

from repro.compilers.codegen import CompiledLoop
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import Microarch

__all__ = ["render_asm", "render_compiled_loop"]

#: mnemonic per op for the two ISA flavours
_SVE_MNEMONICS: Mapping[Op, str] = {
    Op.FADD: "fadd", Op.FMUL: "fmul", Op.FMA: "fmla", Op.FMOV: "fmov",
    Op.FCMP: "fcmgt", Op.FSEL: "sel", Op.FMINMAX: "fmaxnm",
    Op.FCVT: "fcvtzs", Op.FDIV: "fdiv", Op.FSQRT: "fsqrt",
    Op.FRECPE: "frecpe", Op.FRSQRTE: "frsqrte", Op.FEXPA: "fexpa",
    Op.FSCALE: "fscale", Op.IADD: "add", Op.IMUL: "mul",
    Op.ILOGIC: "lsl", Op.PERM: "tbl", Op.PLOGIC: "and",
    Op.PWHILE: "whilelt", Op.PTEST: "ptest", Op.VLOAD: "ld1d",
    Op.VSTORE: "st1d", Op.GATHER_UOP: "ld1d(gather)",
    Op.SCATTER_UOP: "st1d(scatter)", Op.SLOAD: "ldr", Op.SSTORE: "str",
    Op.SALU: "add", Op.SFP: "fmadd", Op.SFDIV: "fdiv", Op.SFSQRT: "fsqrt",
    Op.BRANCH: "b.first", Op.CALL: "bl",
}

_AVX_MNEMONICS: Mapping[Op, str] = {
    Op.FADD: "vaddpd", Op.FMUL: "vmulpd", Op.FMA: "vfmadd231pd",
    Op.FMOV: "vmovapd", Op.FCMP: "vcmppd", Op.FSEL: "vblendmpd",
    Op.FMINMAX: "vmaxpd", Op.FCVT: "vcvtpd2qq", Op.FDIV: "vdivpd",
    Op.FSQRT: "vsqrtpd", Op.FRECPE: "vrcp14pd", Op.FRSQRTE: "vrsqrt14pd",
    Op.FSCALE: "vscalefpd", Op.IADD: "vpaddq", Op.IMUL: "vpmullq",
    Op.ILOGIC: "vpsllq", Op.PERM: "vpermt2pd", Op.PLOGIC: "kandw",
    Op.PWHILE: "kmovw", Op.PTEST: "ktestw", Op.VLOAD: "vmovupd",
    Op.VSTORE: "vmovupd(store)", Op.GATHER_UOP: "vgatherqpd",
    Op.SCATTER_UOP: "vscatterqpd", Op.SLOAD: "mov", Op.SSTORE: "mov(store)",
    Op.SALU: "add", Op.SFP: "vfmadd231sd", Op.SFDIV: "vdivsd",
    Op.SFSQRT: "vsqrtsd", Op.BRANCH: "jb", Op.CALL: "call",
}

_VECTOR_OPS = {
    Op.FADD, Op.FMUL, Op.FMA, Op.FMOV, Op.FCMP, Op.FSEL, Op.FMINMAX,
    Op.FCVT, Op.FDIV, Op.FSQRT, Op.FRECPE, Op.FRSQRTE, Op.FEXPA,
    Op.FSCALE, Op.IADD, Op.IMUL, Op.ILOGIC, Op.PERM, Op.VLOAD, Op.VSTORE,
    Op.GATHER_UOP, Op.SCATTER_UOP,
}
_PRED_OPS = {Op.PLOGIC, Op.PWHILE, Op.PTEST}


class _RegAlloc:
    """Cyclic register renaming for the listing (z0..z31 / zmm0..zmm31)."""

    def __init__(self, vec_prefix: str, n_regs: int = 32) -> None:
        self.vec_prefix = vec_prefix
        self.n_regs = n_regs
        self._map: dict[str, str] = {}
        self._next = 0
        self._next_pred = 0
        self._next_scalar = 0

    def reg(self, name: str, op: Op | None = None) -> str:
        if not name:
            return ""
        if name.startswith("const("):
            return f"#{name[6:-1]}"
        if name.startswith("var("):
            return f"[{name[4:-1]}]"
        if name not in self._map:
            if op in _PRED_OPS:
                self._map[name] = f"p{self._next_pred % 8}"
                self._next_pred += 1
            elif op in _VECTOR_OPS or op is Op.FEXPA:
                self._map[name] = f"{self.vec_prefix}{self._next % self.n_regs}"
                self._next += 1
            else:
                self._map[name] = f"x{self._next_scalar % 16 + 8}"
                self._next_scalar += 1
        return self._map[name]


def render_asm(stream: InstructionStream, march: Microarch) -> str:
    """Render *stream* as a pseudo-assembly listing for *march*'s ISA."""
    sve = "sve" in march.vector_isa.toolchain_targets
    mnemonics = _SVE_MNEMONICS if sve else _AVX_MNEMONICS
    alloc = _RegAlloc("z" if sve else "zmm")

    lines = [f"// {stream.label or 'kernel'}  "
             f"[{march.name}, {stream.elements_per_iter} elem/iter]",
             ".loop:"]
    for ins in stream.body:
        mnem = mnemonics.get(ins.op)
        if mnem is None:
            raise ValueError(
                f"{march.name} has no encoding for {ins.op.value!r}"
            )
        dest = alloc.reg(ins.dest, ins.op)
        srcs = ", ".join(alloc.reg(s, ins.op) for s in ins.srcs)
        operands = ", ".join(p for p in (dest, srcs) if p)
        comment = f"  // {ins.tag}" if ins.tag else ""
        carried = "  // loop-carried" if ins.carried and not ins.tag else ""
        lines.append(f"    {mnem:<18} {operands}{comment}{carried}")
    lines.append("    // -> .loop")
    return "\n".join(lines)


def render_compiled_loop(compiled: CompiledLoop) -> str:
    """Listing plus the schedule summary — the full 'examine the
    generated code' experience for one (loop, toolchain, machine)."""
    asm = render_asm(compiled.stream, compiled.march)
    sched = compiled.schedule
    summary = (
        f"// schedule: {sched.cycles_per_iter:.2f} cycles/iter, "
        f"{compiled.cycles_per_element:.2f} cycles/element, "
        f"ipc={sched.ipc:.2f}, bound={sched.bound}\n"
        f"// vectorized: {compiled.report.vectorized} "
        f"({compiled.toolchain.name} {compiled.toolchain.version})"
    )
    return f"{asm}\n{summary}"
