"""Content-addressed compile cache: memoize :func:`compile_loop`.

Grid-scale sweeps (``run_sweep`` over hundreds of (kernel x toolchain
x window) points) re-lower the *same* (loop, toolchain, march) triple
once per window — vectorization, lowering and memory-stream derivation
are pure functions of content, so all but the first run is wasted work.
:func:`cached_compile` keys compilations on content fingerprints:

* **loop fingerprint** — name, trip count, the full IR body and the
  array table (IR nodes are frozen dataclasses with canonical reprs,
  so structurally identical loops share an entry even when rebuilt);
* **toolchain fingerprint** — every codegen-relevant field of the
  frozen :class:`~repro.compilers.toolchains.Toolchain` (flags, math
  implementations, divide/sqrt strategy, unroll, quality factors);
* **march fingerprint** — reuses
  :func:`repro.engine.cache.march_fingerprint` (timing tables and
  scheduler version), plus the lowering-relevant traits (vector width,
  FEXPA, gather-pair coalescing).

Hit discipline: a hit returns a **fresh** :class:`CompiledLoop` copy
(``dataclasses.replace``) sharing the immutable loop/stream/report
/mem-stream objects but *not* the per-instance cached ``schedule``
property — so a cached compilation is observationally identical to a
cold one: ``cycles_per_element`` still consults the schedule cache and
re-emits its counters.  Compile observers (:mod:`repro.validate`) ran
when the entry was created; like schedule-cache hits, replays are not
re-observed.

Hit/miss statistics live alongside the schedule cache's
(``python -m repro cache show`` prints both); ``REPRO_COMPILE_CACHE=off``
disables the layer the same way ``REPRO_SCHEDULE_CACHE`` does for
schedules.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import replace

from repro.compilers.codegen import CompiledLoop, compile_loop
from repro.compilers.ir import Loop
from repro.compilers.toolchains import Toolchain
from repro.machine.microarch import Microarch

__all__ = [
    "CompileCache",
    "cached_compile",
    "compile_cache_enabled",
    "compile_key",
    "configure_compile_cache",
    "get_compile_cache",
    "loop_fingerprint",
    "toolchain_fingerprint",
]


def loop_fingerprint(loop: Loop) -> str:
    """Digest of everything about *loop* that lowering reads.

    IR nodes are frozen dataclasses whose ``repr`` is canonical; the
    array table is serialized in sorted-name order so construction
    order cannot split entries.
    """
    blob = repr((loop.name, loop.length, loop.body,
                 tuple(sorted(loop.arrays.items()))))
    return hashlib.sha256(blob.encode()).hexdigest()


#: fingerprints of process-lived catalog objects, keyed by id with the
#: object pinned in the value so the id cannot be recycled
_OBJ_FP: dict[int, tuple[object, str]] = {}
_OBJ_FP_LOCK = threading.Lock()


def _pinned_fingerprint(obj: object) -> str:
    with _OBJ_FP_LOCK:
        hit = _OBJ_FP.get(id(obj))
        if hit is not None:
            return hit[1]
    fp = hashlib.sha256(repr(obj).encode()).hexdigest()
    with _OBJ_FP_LOCK:
        _OBJ_FP[id(obj)] = (obj, fp)
    return fp


def toolchain_fingerprint(tc: Toolchain) -> str:
    """Digest of the frozen toolchain (flags, strategies, qualities)."""
    return _pinned_fingerprint(tc)


def compile_key(loop: Loop, toolchain: Toolchain,
                march: Microarch) -> tuple[str, str, str]:
    """The content-addressed cache key for one compilation.

    The march component digests the frozen ``Microarch`` repr, which
    covers both the timing tables and the lowering traits
    (``vector_bits``, ``has_fexpa``, gather-pair coalescing, ...).
    """
    return (loop_fingerprint(loop), toolchain_fingerprint(toolchain),
            _pinned_fingerprint(march))


class CompileCache:
    """Thread-safe LRU of :class:`CompiledLoop` results, content-keyed."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str, str], CompiledLoop] = (
            OrderedDict())
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def peek(self, key: tuple[str, str, str]) -> bool:
        """True if *key* is resident — no stats movement, no LRU touch.

        Provenance probe mirroring
        :meth:`repro.engine.cache.ScheduleCache.peek`; the serve tier
        uses it to label ECM responses ``cache: hit|miss`` without
        disturbing the counters asserted by the dedup test suites.
        """
        with self._lock:
            return key in self._entries

    def lookup(self, key: tuple[str, str, str]) -> CompiledLoop | None:
        """Fetch an entry (refreshing LRU order), or None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: tuple[str, str, str],
              entry: CompiledLoop) -> None:
        """Insert an entry, evicting least-recently-used past capacity."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> int:
        """Drop every entry and reset statistics; returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.hits = self.misses = 0
        return dropped

    def stats(self) -> dict[str, float]:
        """Hit/miss/size statistics as a plain dict."""
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ----------------------------------------------------------------------
_CACHE: CompileCache | None = None
_CACHE_LOCK = threading.Lock()


def get_compile_cache() -> CompileCache:
    """The process-wide compile cache (created on first use)."""
    global _CACHE
    with _CACHE_LOCK:
        if _CACHE is None:
            _CACHE = CompileCache()
        return _CACHE


def configure_compile_cache(capacity: int = 1024) -> CompileCache:
    """Replace the process-wide compile cache (fresh, empty)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = CompileCache(capacity=capacity)
        return _CACHE


def compile_cache_enabled() -> bool:
    """True unless ``REPRO_COMPILE_CACHE=off`` (same grammar as the
    schedule cache's ``REPRO_SCHEDULE_CACHE`` kill switch)."""
    return os.environ.get("REPRO_COMPILE_CACHE", "").lower() not in (
        "off", "0", "no", "false",
    )


def cached_compile(loop: Loop, toolchain: Toolchain,
                   march: Microarch) -> CompiledLoop:
    """:func:`compile_loop` through the content-addressed cache.

    A hit returns a fresh :class:`CompiledLoop` instance (shared
    immutable components, private ``schedule`` slot), so downstream
    schedule-cache lookups and counter emissions are identical whether
    the compilation was cached or cold.
    """
    if not compile_cache_enabled():
        return compile_loop(loop, toolchain, march)
    cache = get_compile_cache()
    key = compile_key(loop, toolchain, march)
    entry = cache.lookup(key)
    if entry is None:
        entry = compile_loop(loop, toolchain, march)
        cache.store(key, entry)
        return entry
    return replace(entry)
