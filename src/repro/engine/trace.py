"""Issue-trace capture and pipeline diagrams for the scheduler.

The scheduler reports steady-state aggregates; this module runs the
*same* event-driven simulation (not a copy of it) with an ``on_issue``
hook installed, recording when each instruction issues and on which
pipe, then renders the first iterations as a text pipeline diagram —
the tool one reaches for when asking "why is this kernel 2.2
cycles/element?" (exactly the Section IV exercise).

Installing the hook disables steady-state extrapolation, so every issue
of every iteration is observed; the issue decisions are identical to
the aggregate scheduler's by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_positive
from repro.engine.scheduler import PipelineScheduler
from repro.machine.isa import InstructionStream, Pipe
from repro.machine.microarch import Microarch

__all__ = ["IssueEvent", "capture_trace", "render_pipeline_diagram"]


@dataclass(frozen=True)
class IssueEvent:
    """One dynamic instruction's issue record."""

    index: int          #: dynamic instruction index
    iteration: int
    position: int       #: position within the loop body
    cycle: float
    pipe: Pipe
    mnemonic: str


def capture_trace(
    march: Microarch, stream: InstructionStream, iterations: int = 4,
    window: int | None = None,
) -> list[IssueEvent]:
    """Issue events of the first *iterations* of *stream* on *march*."""
    require_positive(iterations, "iterations")
    stream.validate()
    body = stream.body
    n_body = len(body)
    events: list[IssueEvent] = []

    def record(d: int, cycle: float, pipe: Pipe) -> None:
        ins = body[d % n_body]
        events.append(
            IssueEvent(
                index=d,
                iteration=d // n_body,
                position=d % n_body,
                cycle=cycle,
                pipe=pipe,
                mnemonic=ins.tag or ins.op.value,
            )
        )

    scheduler = PipelineScheduler(march, window=window)
    scheduler._simulate(stream, iterations, on_issue=record)
    return events


def render_pipeline_diagram(
    march: Microarch,
    stream: InstructionStream,
    iterations: int = 2,
    max_cycles: int = 64,
) -> str:
    """Text pipeline diagram: one row per pipe, one column per cycle.

    Cells show the loop-body position of the instruction issued there
    (letters a-z for positions 0-25, then '+'), with '.' for idle cycles.
    """
    events = capture_trace(march, stream, iterations=iterations)
    horizon = min(max_cycles,
                  int(max(e.cycle for e in events)) + 1)
    pipes = [p for p in Pipe]
    grid = {p: ["."] * horizon for p in pipes}
    for e in events:
        c = int(e.cycle)
        if c < horizon:
            mark = chr(ord("a") + e.position) if e.position < 26 else "+"
            grid[e.pipe][c] = mark

    lines = [
        f"// {stream.label or 'kernel'} on {march.name}: first "
        f"{iterations} iterations (cells = body position a..z)"
    ]
    ruler = "".join(str(i % 10) for i in range(horizon))
    lines.append(f"{'cycle':>6} {ruler}")
    for p in pipes:
        row = "".join(grid[p])
        if set(row) != {"."}:
            lines.append(f"{p.value:>6} {row}")
    legend = ", ".join(
        f"{chr(ord('a') + i) if i < 26 else '+'}={ins.tag or ins.op.value}"
        for i, ins in enumerate(stream.body[:12])
    )
    lines.append(f"legend: {legend}" + (" ..." if len(stream.body) > 12 else ""))
    return "\n".join(lines)
