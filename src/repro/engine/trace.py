"""Issue-trace capture and pipeline diagrams for the scheduler.

The scheduler reports steady-state aggregates; this module re-runs the
same greedy simulation while recording *when* each instruction issues and
on which pipe, then renders the first iterations as a text pipeline
diagram — the tool one reaches for when asking "why is this kernel 2.2
cycles/element?" (exactly the Section IV exercise).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_positive
from repro.engine.scheduler import PipelineScheduler
from repro.machine.isa import InstructionStream, Pipe
from repro.machine.microarch import Microarch

__all__ = ["IssueEvent", "capture_trace", "render_pipeline_diagram"]


@dataclass(frozen=True)
class IssueEvent:
    """One dynamic instruction's issue record."""

    index: int          #: dynamic instruction index
    iteration: int
    position: int       #: position within the loop body
    cycle: float
    pipe: Pipe
    mnemonic: str


class _TracingScheduler(PipelineScheduler):
    """PipelineScheduler that records issue events.

    Reuses the parent's dependency resolution and timing lookup; the
    simulation loop is re-implemented here (kept deliberately in sync
    with the parent — the equivalence is asserted by tests, which compare
    the traced steady-state CPI against the parent's).
    """

    def trace(self, stream: InstructionStream,
              iterations: int) -> list[IssueEvent]:
        require_positive(iterations, "iterations")
        stream.validate()
        body = stream.body
        n_body = len(body)
        total = n_body * iterations
        deps = self._build_deps(body, iterations)
        timings = [self._timing_of(i) for i in body]
        issue_width = self.march.issue_width

        completion = [float("inf")] * total
        issued = [False] * total
        pipe_free: dict[Pipe, float] = {p: 0.0 for p in Pipe}
        events: list[IssueEvent] = []

        head = 0
        retire = 0
        cycle = 0.0
        remaining = total
        while remaining and cycle < 1e6:
            while (retire < total and issued[retire]
                   and completion[retire] <= cycle):
                retire += 1
            rob_limit = min(total, retire + self.window)
            issued_now = 0
            progressed = False
            for d in range(head, rob_limit):
                if issued_now >= issue_width:
                    break
                if issued[d]:
                    continue
                lat, rtput, pipes = timings[d % n_body]
                ready = max((completion[s] for s in deps[d]), default=0.0)
                if ready <= cycle:
                    pipe = self._best_pipe(pipes, pipe_free, cycle)
                    if pipe is not None:
                        issued[d] = True
                        completion[d] = cycle + lat
                        pipe_free[pipe] = max(pipe_free[pipe], cycle) + rtput
                        ins = body[d % n_body]
                        events.append(
                            IssueEvent(
                                index=d,
                                iteration=d // n_body,
                                position=d % n_body,
                                cycle=cycle,
                                pipe=pipe,
                                mnemonic=ins.tag or ins.op.value,
                            )
                        )
                        issued_now += 1
                        remaining -= 1
                        progressed = True
            while head < total and issued[head]:
                head += 1
            if progressed:
                cycle += 1.0
            else:
                cycle = self._next_event(
                    cycle, head, rob_limit, issued, deps, completion,
                    timings, n_body, pipe_free, retire,
                )
        if remaining:
            raise RuntimeError("trace simulation failed to converge")
        return events


def capture_trace(
    march: Microarch, stream: InstructionStream, iterations: int = 4,
    window: int | None = None,
) -> list[IssueEvent]:
    """Issue events of the first *iterations* of *stream* on *march*."""
    return _TracingScheduler(march, window=window).trace(stream, iterations)


def render_pipeline_diagram(
    march: Microarch,
    stream: InstructionStream,
    iterations: int = 2,
    max_cycles: int = 64,
) -> str:
    """Text pipeline diagram: one row per pipe, one column per cycle.

    Cells show the loop-body position of the instruction issued there
    (letters a-z for positions 0-25, then '+'), with '.' for idle cycles.
    """
    events = capture_trace(march, stream, iterations=iterations)
    horizon = min(max_cycles,
                  int(max(e.cycle for e in events)) + 1)
    pipes = [p for p in Pipe]
    grid = {p: ["."] * horizon for p in pipes}
    for e in events:
        c = int(e.cycle)
        if c < horizon:
            mark = chr(ord("a") + e.position) if e.position < 26 else "+"
            grid[e.pipe][c] = mark

    lines = [
        f"// {stream.label or 'kernel'} on {march.name}: first "
        f"{iterations} iterations (cells = body position a..z)"
    ]
    ruler = "".join(str(i % 10) for i in range(horizon))
    lines.append(f"{'cycle':>6} {ruler}")
    for p in pipes:
        row = "".join(grid[p])
        if set(row) != {"."}:
            lines.append(f"{p.value:>6} {row}")
    legend = ", ".join(
        f"{chr(ord('a') + i) if i < 26 else '+'}={ins.tag or ins.op.value}"
        for i, ins in enumerate(stream.body[:12])
    )
    lines.append(f"legend: {legend}" + (" ..." if len(stream.body) > 12 else ""))
    return "\n".join(lines)
