"""Sharded batch scheduling: the SoA batch across a process pool.

:func:`repro.engine.batch.schedule_batch` deduplicates a sweep's
requests into unique lanes but still simulates them on one core.
:func:`schedule_batch_sharded` runs the *same* plan with the simulation
phase split into contiguous per-worker shards on a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* the **plan** phase (validation, content fingerprints, dedup, schedule
  -cache prefetch) runs in the caller;
* each worker simulates its shard of unique lanes with the identical
  ``_Lane`` array program — per-lane results are independent, and the
  vectorized finalization is element-wise, so a per-shard finalize
  equals the whole-batch finalize float for float.  With
  ``REPRO_CACHE_DIR`` set, workers share precompiled timing/dependency
  tables through the disk layer of :mod:`repro.engine.batch` instead of
  re-deriving them;
* the **completion** phase (cache stores, observer dispatch, counter
  and ``schedule_cache.*`` emissions) runs back in the caller in
  request submission order.

Because every stateful step happens in the caller in the same sequence
as the serial batch, the results, counter totals and cache statistics
are **bit-identical** to :func:`~repro.engine.batch.schedule_batch` —
and to the per-point scheduler (``tests/engine/test_shard.py`` and the
grid fuzz lane enforce both).

Profitability routing: forking a pool and rebuilding per-worker tables
costs tens of milliseconds, so tiny batches or starved pools are a net
loss — ``schedule_batch_sharded`` therefore routes through
:func:`plan_shards` and silently runs the serial batch path when the
effective worker count or the unique-lane count falls below the
:data:`SHARD_MIN_JOBS`/:data:`SHARD_MIN_JOBS_PER_WORKER` thresholds
(``max_workers=None`` additionally caps workers at the CPU count — a
1-core "pool" can only lose).  The decision every call actually took is
reported by :func:`last_shard_plan` and recorded in the ``grid`` tier
of ``BENCH_engine.json``, so a small-pool deployment can never
misread pool overhead as a sharding speedup regression.

Where process pools are unavailable the pool downgrade of
:mod:`repro.engine.sweep` applies: a
:class:`~repro.engine.sweep.PoolDowngradeWarning` is emitted, threads
are used instead, and :func:`~repro.engine.sweep.last_effective_mode`
reports what actually ran.  A divergent lane raises the same
:class:`~repro.engine.scheduler.ScheduleDivergence` as the scalar path
(the exception pickles by field across the pool boundary).
"""

from __future__ import annotations

import os
import threading
from typing import Sequence

from repro.engine.batch import (
    _complete_batch,
    _plan_batch,
    _plan_jobs,
    _simulate_jobs,
)
from repro.engine.scheduler import ScheduleResult
from repro.engine.sweep import _make_pool, _set_effective_mode

__all__ = [
    "SHARD_MODES",
    "SHARD_MIN_JOBS",
    "SHARD_MIN_JOBS_PER_WORKER",
    "last_shard_plan",
    "plan_shards",
    "schedule_batch_sharded",
]

#: executor modes :func:`schedule_batch_sharded` accepts
SHARD_MODES = ("serial", "thread", "process")

#: below this many unique lanes the batch always runs serially — the
#: pool spin-up alone outweighs simulating a handful of lanes
SHARD_MIN_JOBS = 4

#: in auto mode (``max_workers=None``) workers are capped so each shard
#: carries at least this many unique lanes; an explicit ``max_workers``
#: is an opt-in and bypasses this cap (tests and benchmarks rely on
#: forcing a pool on any machine)
SHARD_MIN_JOBS_PER_WORKER = 8

_LAST_PLAN = threading.local()


def last_shard_plan() -> dict | None:
    """Routing decision of the calling thread's last sharded batch.

    A dict with ``routing`` (``"serial"`` or ``"sharded"``),
    ``workers`` (effective worker count) and ``jobs`` (unique-lane
    count after deduplication); ``None`` before any sharded batch ran
    on this thread.  ``repro bench --tier grid`` records this in the
    ``grid.shard`` payload so the sharded-vs-serial comparison is only
    scored when sharding actually ran.
    """
    return getattr(_LAST_PLAN, "value", None)


def _set_shard_plan(routing: str, workers: int, jobs: int) -> None:
    _LAST_PLAN.value = {"routing": routing, "workers": workers,
                        "jobs": jobs}


def plan_shards(n_jobs: int, max_workers: int | None = None) -> tuple[str, int]:
    """Profitability routing for a prospective sharded batch.

    Returns ``(routing, workers)`` where ``routing`` is ``"serial"`` or
    ``"sharded"`` and ``workers`` is the effective worker count the
    sharded path would use.  The serial route is chosen when fewer than
    :data:`SHARD_MIN_JOBS` unique lanes are pending or the effective
    worker count collapses to one; with ``max_workers=None`` the worker
    count is additionally capped by the CPU count and by
    :data:`SHARD_MIN_JOBS_PER_WORKER` lanes per shard, so small pools
    (and 1-core machines) fall back to the serial batch instead of
    paying pool overhead for no parallelism.
    """
    if n_jobs < 1:
        return "serial", 1
    if max_workers is None:
        cores = os.cpu_count() or 1
        workers = min(cores, max(1, n_jobs // SHARD_MIN_JOBS_PER_WORKER))
    else:
        workers = max(1, max_workers)
    workers = min(workers, n_jobs)
    if workers < 2 or n_jobs < SHARD_MIN_JOBS:
        return "serial", 1
    return "sharded", workers


def _simulate_shard(payload: tuple) -> list:
    """Worker entry point: simulate one shard of unique lanes.

    Top-level (picklable) and free of process-global side effects —
    the schedule cache, observers and counters are only touched by the
    parent's completion phase.
    """
    jobs, record, n_iters = payload
    return _simulate_jobs(jobs, record, n_iters)


def schedule_batch_sharded(
    requests: Sequence[tuple],
    *,
    cache: bool = True,
    max_workers: int | None = None,
    mode: str = "process",
) -> list[ScheduleResult]:
    """:func:`~repro.engine.batch.schedule_batch`, simulation sharded.

    Identical request grammar, identical results, counters and cache
    statistics — only the wall time of the unique-lane simulation
    changes.  Routing is decided by :func:`plan_shards`:
    ``max_workers=None`` uses the CPU count capped to
    :data:`SHARD_MIN_JOBS_PER_WORKER` lanes per shard, an explicit
    ``max_workers`` forces that many workers (still bounded by the
    unique-lane count); batches below the profitability thresholds run
    the serial batch path in-process.  ``mode="serial"`` forces that,
    ``mode="thread"`` uses a thread pool (useful under profilers or
    where fork is unavailable).  :func:`last_shard_plan` reports the
    decision taken.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"mode must be one of {SHARD_MODES}, got {mode!r}")
    if not requests:
        return []
    plan = _plan_batch(requests, cache)
    jobs = _plan_jobs(plan)
    routing, workers = plan_shards(len(jobs), max_workers)
    if mode == "serial" or routing == "serial":
        _set_shard_plan("serial", 1, len(jobs))
        _set_effective_mode("serial")
        sim_out = _simulate_jobs(jobs, plan.record, plan.n_iters)
        return _complete_batch(plan, sim_out)

    _set_shard_plan("sharded", workers, len(jobs))
    size = (len(jobs) + workers - 1) // workers
    shards = [jobs[s:s + size] for s in range(0, len(jobs), size)]
    pool, effective = _make_pool(mode, workers)
    _set_effective_mode(effective)
    with pool:
        futures = [
            pool.submit(_simulate_shard, (shard, plan.record, plan.n_iters))
            for shard in shards
        ]
        sim_out = [item for fut in futures for item in fut.result()]
    return _complete_batch(plan, sim_out)
