"""Sharded batch scheduling: the SoA batch across a process pool.

:func:`repro.engine.batch.schedule_batch` deduplicates a sweep's
requests into unique lanes but still simulates them on one core.
:func:`schedule_batch_sharded` runs the *same* plan with the simulation
phase split into contiguous per-worker shards on a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* the **plan** phase (validation, content fingerprints, dedup, schedule
  -cache prefetch) runs in the caller;
* each worker simulates its shard of unique lanes with the identical
  ``_Lane`` array program — per-lane results are independent, and the
  vectorized finalization is element-wise, so a per-shard finalize
  equals the whole-batch finalize float for float.  With
  ``REPRO_CACHE_DIR`` set, workers share precompiled timing/dependency
  tables through the disk layer of :mod:`repro.engine.batch` instead of
  re-deriving them;
* the **completion** phase (cache stores, observer dispatch, counter
  and ``schedule_cache.*`` emissions) runs back in the caller in
  request submission order.

Because every stateful step happens in the caller in the same sequence
as the serial batch, the results, counter totals and cache statistics
are **bit-identical** to :func:`~repro.engine.batch.schedule_batch` —
and to the per-point scheduler (``tests/engine/test_shard.py`` and the
grid fuzz lane enforce both).

Where process pools are unavailable the pool downgrade of
:mod:`repro.engine.sweep` applies: a
:class:`~repro.engine.sweep.PoolDowngradeWarning` is emitted, threads
are used instead, and :func:`~repro.engine.sweep.last_effective_mode`
reports what actually ran.  A divergent lane raises the same
:class:`~repro.engine.scheduler.ScheduleDivergence` as the scalar path
(the exception pickles by field across the pool boundary).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.engine.batch import (
    _complete_batch,
    _plan_batch,
    _plan_jobs,
    _simulate_jobs,
)
from repro.engine.scheduler import ScheduleResult
from repro.engine.sweep import _make_pool, _set_effective_mode

__all__ = ["SHARD_MODES", "schedule_batch_sharded"]

#: executor modes :func:`schedule_batch_sharded` accepts
SHARD_MODES = ("serial", "thread", "process")


def _simulate_shard(payload: tuple) -> list:
    """Worker entry point: simulate one shard of unique lanes.

    Top-level (picklable) and free of process-global side effects —
    the schedule cache, observers and counters are only touched by the
    parent's completion phase.
    """
    jobs, record, n_iters = payload
    return _simulate_jobs(jobs, record, n_iters)


def schedule_batch_sharded(
    requests: Sequence[tuple],
    *,
    cache: bool = True,
    max_workers: int | None = None,
    mode: str = "process",
) -> list[ScheduleResult]:
    """:func:`~repro.engine.batch.schedule_batch`, simulation sharded.

    Identical request grammar, identical results, counters and cache
    statistics — only the wall time of the unique-lane simulation
    changes.  ``max_workers`` defaults to the CPU count; shards are
    contiguous slices of the deduplicated job list, so submission
    -order reassembly is trivial.  Batches whose unique-lane count (or
    worker budget) is 1 run in-process; ``mode="serial"`` forces that,
    ``mode="thread"`` uses a thread pool (useful under profilers or
    where fork is unavailable).
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"mode must be one of {SHARD_MODES}, got {mode!r}")
    if not requests:
        return []
    plan = _plan_batch(requests, cache)
    jobs = _plan_jobs(plan)
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(workers, len(jobs)))
    if mode == "serial" or workers <= 1 or len(jobs) <= 1:
        _set_effective_mode("serial")
        sim_out = _simulate_jobs(jobs, plan.record, plan.n_iters)
        return _complete_batch(plan, sim_out)

    size = (len(jobs) + workers - 1) // workers
    shards = [jobs[s:s + size] for s in range(0, len(jobs), size)]
    pool, effective = _make_pool(mode, workers)
    _set_effective_mode(effective)
    with pool:
        futures = [
            pool.submit(_simulate_shard, (shard, plan.record, plan.n_iters))
            for shard in shards
        ]
        sim_out = [item for fut in futures for item in fut.result()]
    return _complete_batch(plan, sim_out)
