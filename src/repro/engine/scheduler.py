"""Cycle-approximate out-of-order pipeline scheduler.

This is the model behind every "cycles per element" figure in the
reproduction.  It replays an :class:`~repro.machine.isa.InstructionStream`
(a loop body) for enough iterations to reach steady state against the
pipe/latency/throughput tables of a :class:`~repro.machine.microarch.Microarch`,
using a greedy pick-oldest-ready policy inside a bounded out-of-order
window:

* each dynamic instruction becomes ready when all of its sources have
  completed (register dataflow; loop-carried sources resolve to the
  previous iteration's value);
* each cycle, up to ``issue_width`` ready instructions from the oldest
  ``window`` un-issued instructions are issued to free pipes;
* a pipe stays busy for the op's reciprocal throughput — which equals the
  full latency for blocking ops such as the A64FX ``FSQRT`` (the mechanism
  behind the 20x sqrt gap of Section III);
* results appear ``latency`` cycles after issue.

The model captures exactly the effects the paper reasons about — dual
FP-pipe pressure, 9-cycle FMA chains that need unrolling to hide
("Unrolling once decreased this to 1.9 cycles/element", Sec. IV), blocking
iterative units, and the single shuffle pipe — while remaining a few
hundred lines of plain Python.

When a :class:`repro.perf.counters.ProfileScope` is active, the simulation
additionally emits PMU-style counters under ``pipeline.*``: front-end
issue-slot accounting (``issue_slots.total == issue_slots.used +
issue_slots.stalled`` holds exactly), per-pipe busy cycles, and the
dynamic instruction-mix histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.machine.isa import Instruction, InstructionStream, Op, Pipe
from repro.machine.microarch import Microarch
from repro.perf.counters import emit, is_profiling

__all__ = ["ScheduleResult", "PipelineScheduler", "schedule_on"]


@dataclass(frozen=True)
class ScheduleResult:
    """Steady-state schedule statistics for one loop body.

    ``cycles_per_iter`` is the asymptotic initiation interval of the loop
    body; ``cycles_per_element`` divides by the stream's
    ``elements_per_iter`` (vector lanes), matching the unit used throughout
    the paper's Section IV.  ``bound`` names the limiting resource:
    ``"pipe:<name>"`` when one pipe is >90% occupied, ``"issue"`` when the
    front end is, else ``"latency"`` (dependence chains).
    """

    cycles_per_iter: float
    elements_per_iter: int
    instructions_per_iter: int
    ipc: float
    pipe_occupancy: Mapping[Pipe, float]
    bound: str
    label: str = ""

    @property
    def cycles_per_element(self) -> float:
        return self.cycles_per_iter / self.elements_per_iter

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.label or 'kernel'}: {self.cycles_per_iter:.2f} cyc/iter, "
            f"{self.cycles_per_element:.2f} cyc/elem, ipc={self.ipc:.2f}, "
            f"bound={self.bound}>"
        )


class PipelineScheduler:
    """Greedy bounded-window scheduler for one microarchitecture.

    Parameters
    ----------
    march:
        The core model supplying timings, pipes, issue width and window.
    window:
        Optional override of the out-of-order window (used to model
        compilers that do not unroll: a small window pins the schedule to
        one iteration's dependence chain).
    """

    #: iterations simulated before measurement starts (pipeline warm-up)
    WARMUP_ITERS = 8
    #: iterations measured for the steady-state estimate
    MEASURE_ITERS = 16

    def __init__(self, march: Microarch, window: int | None = None) -> None:
        self.march = march
        self.window = march.window if window is None else window
        if self.window < 1:
            raise ValueError("window must be >= 1")

    # ------------------------------------------------------------------
    def steady_state(self, stream: InstructionStream) -> ScheduleResult:
        """Simulate the loop and return steady-state statistics."""
        if len(stream) == 0:
            raise ValueError("cannot schedule an empty instruction stream")
        stream.validate()
        n_iters = self.WARMUP_ITERS + self.MEASURE_ITERS
        body = stream.body
        n_body = len(body)
        total = n_body * n_iters

        # --- resolve dataflow to dynamic-instruction dependencies --------
        deps: list[tuple[int, ...]] = self._build_deps(body, n_iters)

        timings = [self._timing_of(ins) for ins in body]

        # --- event-driven-ish cycle simulation ---------------------------
        issue_width = self.march.issue_width
        # completion is +inf until an instruction issues, so consumers of a
        # not-yet-issued producer are correctly seen as not ready
        completion = [float("inf")] * total
        issued = [False] * total
        pipe_free: dict[Pipe, float] = {p: 0.0 for p in Pipe}
        pipe_busy_cycles: dict[Pipe, float] = {p: 0.0 for p in Pipe}
        iter_last_issue = [0.0] * n_iters

        head = 0    # first unissued instruction
        retire = 0  # first unretired instruction (ROB head)
        cycle = 0.0
        remaining = total
        max_cycles = 1e7  # safety net against model bugs
        while remaining and cycle < max_cycles:
            # retire in order: the ROB frees slots only from the front,
            # so long-latency chains hold the window open behind them —
            # the mechanism that makes un-unrolled 9-cycle FMA chains cost
            # what the paper measures.
            while retire < total and issued[retire] and completion[retire] <= cycle:
                retire += 1
            rob_limit = min(total, retire + self.window)

            issued_now = 0
            progressed = False
            for d in range(head, rob_limit):
                if issued_now >= issue_width:
                    break
                if issued[d]:
                    continue
                lat, rtput, pipes = timings[d % n_body]
                ready = max((completion[s] for s in deps[d]), default=0.0)
                if ready <= cycle:
                    pipe = self._best_pipe(pipes, pipe_free, cycle)
                    if pipe is not None:
                        issued[d] = True
                        completion[d] = cycle + lat
                        # queueing semantics: fractional reciprocal
                        # throughputs accumulate as backlog instead of
                        # rounding up to whole cycles
                        pipe_free[pipe] = max(pipe_free[pipe], cycle) + rtput
                        pipe_busy_cycles[pipe] += rtput
                        issued_now += 1
                        remaining -= 1
                        it = d // n_body
                        iter_last_issue[it] = max(iter_last_issue[it], cycle)
                        progressed = True
            while head < total and issued[head]:
                head += 1
            if progressed:
                cycle += 1.0
            else:
                # nothing issued: jump to the next time anything frees up
                cycle = self._next_event(
                    cycle, head, rob_limit, issued, deps, completion,
                    timings, n_body, pipe_free, retire,
                )
        if remaining:
            raise RuntimeError(
                "scheduler failed to converge — check the instruction "
                "stream for an unsatisfiable dependence"
            )

        first = self.WARMUP_ITERS
        last = n_iters - 1
        span = iter_last_issue[last] - iter_last_issue[first - 1]
        cpi = span / (last - first + 1)
        cpi = max(cpi, n_body / issue_width)  # front-end lower bound

        # utilization against the true makespan (warmup included), so the
        # metric stays in [0, 1] even when warmup is slower than steady
        # state on tiny bodies
        makespan = max(cycle, 1.0)
        occupancy = {
            p: min(1.0, pipe_busy_cycles[p] / makespan) for p in Pipe
        }
        bound = self._classify_bound(cpi, n_body, occupancy)
        if is_profiling():
            self._emit_counters(
                stream, n_iters, total, makespan, cpi, pipe_busy_cycles
            )
        return ScheduleResult(
            cycles_per_iter=cpi,
            elements_per_iter=stream.elements_per_iter,
            instructions_per_iter=n_body,
            ipc=n_body / cpi if cpi else float("inf"),
            pipe_occupancy=occupancy,
            bound=bound,
            label=stream.label,
        )

    # ------------------------------------------------------------------
    def _emit_counters(
        self,
        stream: InstructionStream,
        n_iters: int,
        total: int,
        makespan: float,
        cpi: float,
        pipe_busy_cycles: Mapping[Pipe, float],
    ) -> None:
        """Emit ``pipeline.*`` PMU counters for one simulated schedule.

        The front-end slot identity is exact by construction: every
        simulated cycle offers ``issue_width`` slots; each dynamic
        instruction consumes one, and the remainder are stall slots
        (empty issue slots — dependence, pipe-busy, or window stalls).
        """
        slot_total = self.march.issue_width * makespan
        emit("pipeline.schedules", 1.0)
        emit("pipeline.iterations", float(n_iters))
        emit("pipeline.instructions", float(total))
        emit("pipeline.makespan_cycles", makespan)
        emit("pipeline.steady_cycles", cpi * n_iters)
        emit("pipeline.issue_slots.total", slot_total)
        emit("pipeline.issue_slots.used", float(total))
        emit("pipeline.issue_slots.stalled", slot_total - total)
        for pipe, busy in pipe_busy_cycles.items():
            if busy:
                emit(f"pipeline.pipe_busy.{pipe.value}", busy)
        for op, count in stream.counts().items():
            emit(f"pipeline.instr_mix.{op.value}", float(count * n_iters))

    # ------------------------------------------------------------------
    def _timing_of(self, ins: Instruction) -> tuple[float, float, frozenset[Pipe]]:
        t = self.march.timing(ins.op)
        lat = ins.latency_override if ins.latency_override is not None else t.latency
        rtp = ins.rtput_override if ins.rtput_override is not None else t.rtput
        return (lat, rtp, t.pipes)

    @staticmethod
    def _best_pipe(
        pipes: frozenset[Pipe], pipe_free: dict[Pipe, float], cycle: float
    ) -> Pipe | None:
        """Pipe that frees up within this cycle with the smallest backlog,
        or None if all are busy past it."""
        best: Pipe | None = None
        for p in pipes:
            if pipe_free[p] < cycle + 1.0:
                if best is None or pipe_free[p] < pipe_free[best]:
                    best = p
        return best

    @staticmethod
    def _build_deps(body: list[Instruction], n_iters: int) -> list[tuple[int, ...]]:
        """Map every dynamic instruction to the dynamic indices it reads."""
        n_body = len(body)
        # static resolution: for each body position, each src resolves to
        # (producer position, iteration delta) or None for loop inputs.
        static: list[list[tuple[int, int] | None]] = []
        last_def: dict[str, int] = {}
        # final defs of the previous iteration
        final_def: dict[str, int] = {}
        for j, ins in enumerate(body):
            if ins.dest:
                final_def[ins.dest] = j
        for j, ins in enumerate(body):
            resolved: list[tuple[int, int] | None] = []
            for src in ins.srcs:
                if ins.carried and src == ins.dest:
                    prev = final_def.get(src)
                    resolved.append((prev, 1) if prev is not None else None)
                elif src in last_def:
                    resolved.append((last_def[src], 0))
                elif src in final_def:
                    # produced later in the body -> previous iteration's value
                    resolved.append((final_def[src], 1))
                else:
                    resolved.append(None)  # loop input, ready at cycle 0
            static.append(resolved)
            if ins.dest:
                last_def[ins.dest] = j
        deps: list[tuple[int, ...]] = []
        for it in range(n_iters):
            base = it * n_body
            for j in range(n_body):
                dyn: list[int] = []
                for res in static[j]:
                    if res is None:
                        continue
                    pos, delta = res
                    src_it = it - delta
                    if src_it >= 0:
                        dyn.append(src_it * n_body + pos)
                deps.append(tuple(dyn))
        return deps

    @staticmethod
    def _next_event(
        cycle: float,
        head: int,
        rob_limit: int,
        issued: list[bool],
        deps: list[tuple[int, ...]],
        completion: list[float],
        timings: list[tuple[float, float, frozenset[Pipe]]],
        n_body: int,
        pipe_free: dict[Pipe, float],
        retire: int,
    ) -> float:
        """Earliest future time at which anything can change: a stalled
        in-window instruction becoming issueable, or the ROB head
        retiring (which widens the window)."""
        horizon = float("inf")
        for d in range(head, rob_limit):
            if issued[d]:
                continue
            ready = max((completion[s] for s in deps[d]), default=0.0)
            _, _, pipes = timings[d % n_body]
            pipe_t = min(pipe_free[p] for p in pipes) - 1.0
            horizon = min(horizon, max(ready, pipe_t))
        if retire < rob_limit and issued[retire]:
            horizon = min(horizon, completion[retire])
        if horizon == float("inf"):
            horizon = cycle + 1.0
        return max(horizon, cycle + 1.0)

    @staticmethod
    def _classify_bound(
        cpi: float, n_body: int, occupancy: Mapping[Pipe, float]
    ) -> str:
        hot = max(occupancy.items(), key=lambda kv: kv[1])
        if hot[1] > 0.9:
            return f"pipe:{hot[0].value}"
        if n_body / cpi > 3.5:
            return "issue"
        return "latency"


def schedule_on(march: Microarch, stream: InstructionStream,
                window: int | None = None) -> ScheduleResult:
    """Convenience wrapper: schedule *stream* on *march*."""
    return PipelineScheduler(march, window=window).steady_state(stream)
