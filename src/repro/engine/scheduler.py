"""Cycle-approximate pipeline scheduler (event-driven fast path).

This is the model behind every "cycles per element" figure in the
reproduction.  It replays an :class:`~repro.machine.isa.InstructionStream`
(a loop body) for enough iterations to reach steady state against the
pipe/latency/throughput tables of a :class:`~repro.machine.microarch.Microarch`.

The issue model — stated once, accurately (DESIGN.md and
docs/ARCHITECTURE.md point here): **greedy bounded-window out-of-order
issue with in-order retire**.  Instructions issue out of program order,
oldest-ready first, from a reorder window of ``window`` dynamic
instructions behind the in-order retire pointer; up to ``issue_width``
issue per cycle.  It is *not* a pure in-order dual-pipe model (younger
independent instructions overtake stalled older ones inside the window)
and not an unbounded out-of-order model (the window and in-order retire
bound how far ahead the core can look — the mechanism that makes
un-unrolled 9-cycle FMA chains cost what the paper measures).

* each dynamic instruction becomes ready when all of its sources have
  completed (register dataflow; loop-carried sources resolve to the
  previous iteration's value);
* each cycle, up to ``issue_width`` ready instructions from the oldest
  ``window`` un-issued instructions are issued to free pipes;
* a pipe stays busy for the op's reciprocal throughput — which equals the
  full latency for blocking ops such as the A64FX ``FSQRT`` (the mechanism
  behind the 20x sqrt gap of Section III);
* results appear ``latency`` cycles after issue.

Two fast paths make the simulation cheap without changing a single
result (golden-equivalence is enforced by
``tests/engine/test_golden_equivalence.py`` against the preserved seed
implementation in :mod:`repro.engine._reference`):

* **event-driven core** — ready/waiting heaps plus per-pipe free times
  replace the per-cycle window scan; idle cycles are skipped natively,
  so the old ``_next_event`` helper is gone;
* **steady-state period detection** — once the relative schedule state
  (issue offsets and pipe backlogs modulo the current cycle) repeats
  between iterations, the simulator fast-forwards whole periods and
  resimulates only the tail, instead of grinding through all
  ``WARMUP_ITERS + MEASURE_ITERS`` iterations.

When a :class:`repro.perf.counters.ProfileScope` is active, the simulation
additionally emits PMU-style counters under ``pipeline.*``: front-end
issue-slot accounting (``issue_slots.total == issue_slots.used +
issue_slots.stalled`` holds exactly), per-pipe busy cycles, and the
dynamic instruction-mix histogram.  The fast paths (and cache hits via
:func:`schedule_on`) emit the identical counter payload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from heapq import heapify, heappop, heappush
from typing import Callable, Mapping

from repro.machine.isa import Instruction, InstructionStream, Pipe
from repro.machine.microarch import Microarch
from repro.perf.counters import emit, is_profiling

__all__ = [
    "ScheduleResult",
    "ScheduleDivergence",
    "ScheduleRecord",
    "PipelineScheduler",
    "schedule_on",
    "add_schedule_observer",
    "remove_schedule_observer",
    "counter_payload",
    "clear_memos",
]

_INF = float("inf")
#: stable pipe order for state snapshots and fast-forward bookkeeping
_PIPES = tuple(Pipe)


def _canon_pipes(pipes: frozenset[Pipe]) -> tuple[Pipe, ...]:
    """*pipes* in ``Pipe`` definition order — the canonical tie-break walk.

    ``_best_pipe`` picks the first least-loaded candidate, so the walk
    order decides ties between equally-free pipes.  A frozenset's
    iteration order depends on ``PYTHONHASHSEED`` and does not survive a
    pickle round-trip to a shard worker; sorting once at timing
    -resolution time makes every scheduler (scalar, reference, batched,
    sharded) break ties identically on any seed and in any process.
    """
    return tuple(p for p in _PIPES if p in pipes)

#: opt-in schedule observers (see :func:`add_schedule_observer`); empty in
#: normal operation so the fast path pays nothing for the hook point
_SCHEDULE_OBSERVERS: list = []


@dataclass(frozen=True)
class ScheduleRecord:
    """One simulated schedule, as seen by a schedule observer.

    ``issues`` is the complete issue-event log — one ``(dynamic_index,
    cycle, pipe)`` tuple per dynamic instruction, in issue order — which
    is everything an external invariant checker needs to re-derive
    completions, retire order, window residency and per-pipe backlogs
    (see :mod:`repro.validate.schedule`).  Recording the log disables
    steady-state period detection for the observed schedule; results are
    identical either way (the golden-equivalence property), only slower.
    """

    march: Microarch
    window: int
    stream: InstructionStream
    n_iters: int
    issues: tuple[tuple[int, float, Pipe], ...]
    result: ScheduleResult

    def timings(self) -> list[tuple[float, float, tuple[Pipe, ...]]]:
        """Per body position ``(latency, rtput, pipes)`` under ``march``,
        honoring per-instruction overrides — the same resolution (and
        canonical pipe order) the scheduler itself used."""
        out = []
        for ins in self.stream.body:
            t = self.march.timing(ins.op)
            lat = (ins.latency_override
                   if ins.latency_override is not None else t.latency)
            rtp = (ins.rtput_override
                   if ins.rtput_override is not None else t.rtput)
            out.append((lat, rtp, _canon_pipes(t.pipes)))
        return out


def add_schedule_observer(
    observer: Callable[[ScheduleRecord], None]
) -> None:
    """Register *observer* to receive a :class:`ScheduleRecord` for every
    schedule the :class:`PipelineScheduler` simulates.

    Observation is opt-in instrumentation for invariant checking
    (:mod:`repro.validate`): while any observer is installed, simulated
    schedules record their full issue-event log (disabling period
    detection — identical results, more work).  Cache hits served by
    :mod:`repro.engine.cache` replay stored outcomes without simulating
    and are therefore not observed.
    """
    _SCHEDULE_OBSERVERS.append(observer)


def remove_schedule_observer(
    observer: Callable[[ScheduleRecord], None]
) -> None:
    """Unregister a schedule observer added by :func:`add_schedule_observer`."""
    _SCHEDULE_OBSERVERS.remove(observer)


@lru_cache(maxsize=1024)
def _dataflow_of(
    body: tuple[Instruction, ...],
) -> tuple[
    tuple[tuple[tuple[int, int], ...], ...],
    tuple[tuple[tuple[int, int], ...], ...],
]:
    """Memoized static dataflow of one loop body (content-keyed).

    :class:`~repro.machine.isa.Instruction` is frozen/hashable, so the
    body tuple itself is the key: repeated scheduling of the same loop
    (every sweep, every toolchain emitting an identical stream) stops
    re-deriving dependency edges.  See
    :meth:`PipelineScheduler._static_dataflow` for the semantics.
    """
    n_body = len(body)
    last_def: dict[str, int] = {}
    final_def: dict[str, int] = {}
    for j, ins in enumerate(body):
        if ins.dest:
            final_def[ins.dest] = j
    deps: list[tuple[tuple[int, int], ...]] = []
    for j, ins in enumerate(body):
        resolved: list[tuple[int, int]] = []
        for src in ins.srcs:
            if ins.carried and src == ins.dest:
                prev = final_def.get(src)
                if prev is not None:
                    resolved.append((prev, 1))
            elif src in last_def:
                resolved.append((last_def[src], 0))
            elif src in final_def:
                resolved.append((final_def[src], 1))
            # else: loop input, ready at cycle 0
        deps.append(tuple(resolved))
        if ins.dest:
            last_def[ins.dest] = j
    consumers: list[list[tuple[int, int]]] = [[] for _ in range(n_body)]
    for j, resolved in enumerate(deps):
        for pos, delta in resolved:
            consumers[pos].append((j, delta))
    return tuple(deps), tuple(tuple(c) for c in consumers)


#: memoized per-(march, body) resolved timing rows (candidate pipes in
#: canonical order — see :func:`_canon_pipes`).  Keyed by ``id(march)``
#: with the march pinned in the value so the id cannot be recycled while
#: the entry lives; bounded LRU, guarded for the threaded sweep runner.
_TIMINGS_MEMO: OrderedDict[
    tuple[int, tuple[Instruction, ...]],
    tuple[Microarch, tuple[tuple[float, float, tuple[Pipe, ...]], ...]],
] = OrderedDict()
_TIMINGS_MEMO_CAP = 1024
_MEMO_LOCK = threading.Lock()


def _timings_for(
    march: Microarch, body: tuple[Instruction, ...]
) -> tuple[tuple[float, float, tuple[Pipe, ...]], ...]:
    """Per body position ``(latency, rtput, pipes)`` under *march*,
    honoring per-instruction overrides; memoized per (march, body).
    Candidate pipes come back in canonical :func:`_canon_pipes` order so
    tie-breaking is reproducible across seeds and process boundaries."""
    key = (id(march), body)
    with _MEMO_LOCK:
        hit = _TIMINGS_MEMO.get(key)
        if hit is not None:
            _TIMINGS_MEMO.move_to_end(key)
            return hit[1]
    rows = []
    for ins in body:
        t = march.timing(ins.op)
        lat = (ins.latency_override
               if ins.latency_override is not None else t.latency)
        rtp = (ins.rtput_override
               if ins.rtput_override is not None else t.rtput)
        rows.append((lat, rtp, _canon_pipes(t.pipes)))
    resolved = tuple(rows)
    with _MEMO_LOCK:
        _TIMINGS_MEMO[key] = (march, resolved)
        _TIMINGS_MEMO.move_to_end(key)
        while len(_TIMINGS_MEMO) > _TIMINGS_MEMO_CAP:
            _TIMINGS_MEMO.popitem(last=False)
    return resolved


def clear_memos() -> None:
    """Drop the memoized dataflow/timing tables (cold-path benchmarks).

    The memos are pure caches — clearing them changes nothing but the
    time the next schedule takes to rebuild its tables.
    """
    _dataflow_of.cache_clear()
    with _MEMO_LOCK:
        _TIMINGS_MEMO.clear()


class ScheduleDivergence(RuntimeError):
    """The simulation exceeded ``PipelineScheduler.MAX_CYCLES``.

    Raised instead of a bare ``RuntimeError`` so callers can tell a
    non-converging schedule (a model bug or an unsatisfiable dependence
    in the stream) apart from other failures.  The message names the
    stream label, the window, and the first stuck dynamic instruction.
    """

    def __init__(self, stream: InstructionStream, window: int,
                 stuck_index: int, n_body: int) -> None:
        ins = stream.body[stuck_index % n_body]
        self.label = stream.label
        self.window = window
        self.stuck_index = stuck_index
        self.stuck_iteration = stuck_index // n_body
        self.stuck_position = stuck_index % n_body
        self.stuck_mnemonic = ins.tag or ins.op.value
        super().__init__(
            f"scheduler failed to converge on stream "
            f"{stream.label or '<unlabeled>'!r} (window={window}): first "
            f"stuck dynamic instruction #{stuck_index} "
            f"(iteration {self.stuck_iteration}, body position "
            f"{self.stuck_position}, {self.stuck_mnemonic!r}) — check the "
            f"instruction stream for an unsatisfiable dependence"
        )

    def __reduce__(self):
        """Pickle by field (the custom ``__init__`` takes the stream
        itself, which a shard worker's traceback must not require)."""
        state = {
            "label": self.label,
            "window": self.window,
            "stuck_index": self.stuck_index,
            "stuck_iteration": self.stuck_iteration,
            "stuck_position": self.stuck_position,
            "stuck_mnemonic": self.stuck_mnemonic,
        }
        return (_rebuild_divergence, (self.args, state))


def _rebuild_divergence(args: tuple, state: dict) -> "ScheduleDivergence":
    """Unpickle helper for :class:`ScheduleDivergence` (same message)."""
    exc = ScheduleDivergence.__new__(ScheduleDivergence)
    RuntimeError.__init__(exc, *args)
    for name, value in state.items():
        setattr(exc, name, value)
    return exc


@dataclass(frozen=True)
class ScheduleResult:
    """Steady-state schedule statistics for one loop body.

    ``cycles_per_iter`` is the asymptotic initiation interval of the loop
    body; ``cycles_per_element`` divides by the stream's
    ``elements_per_iter`` (vector lanes), matching the unit used throughout
    the paper's Section IV.  ``bound`` names the limiting resource:
    ``"pipe:<name>"`` when one pipe is >90% occupied, ``"issue"`` when the
    front end is, else ``"latency"`` (dependence chains).
    """

    cycles_per_iter: float
    elements_per_iter: int
    instructions_per_iter: int
    ipc: float
    pipe_occupancy: Mapping[Pipe, float]
    bound: str
    label: str = ""

    @property
    def cycles_per_element(self) -> float:
        """Cycles per result element (the paper's Section IV unit)."""
        return self.cycles_per_iter / self.elements_per_iter

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.label or 'kernel'}: {self.cycles_per_iter:.2f} cyc/iter, "
            f"{self.cycles_per_element:.2f} cyc/elem, ipc={self.ipc:.2f}, "
            f"bound={self.bound}>"
        )


class PipelineScheduler:
    """Greedy bounded-window scheduler for one microarchitecture.

    Parameters
    ----------
    march:
        The core model supplying timings, pipes, issue width and window.
    window:
        Optional override of the out-of-order window (used to model
        compilers that do not unroll: a small window pins the schedule to
        one iteration's dependence chain).
    extrapolate:
        Enable steady-state period detection (on by default).  Turn off
        to force the full iteration-by-iteration simulation — results
        are identical either way; this is a debugging escape hatch.
    """

    #: iterations simulated before measurement starts (pipeline warm-up)
    WARMUP_ITERS = 8
    #: iterations measured for the steady-state estimate
    MEASURE_ITERS = 16
    #: safety net against model bugs (class attribute so tests can lower it)
    MAX_CYCLES = 1e7

    def __init__(self, march: Microarch, window: int | None = None,
                 *, extrapolate: bool = True) -> None:
        self.march = march
        self.window = march.window if window is None else window
        self.extrapolate = extrapolate
        if self.window < 1:
            raise ValueError("window must be >= 1")

    # ------------------------------------------------------------------
    def steady_state(self, stream: InstructionStream) -> ScheduleResult:
        """Simulate the loop and return steady-state statistics."""
        result, payload = self._outcome(stream)
        if is_profiling():
            for name, value in payload.items():
                emit(name, value)
        return result

    # ------------------------------------------------------------------
    def _outcome(
        self, stream: InstructionStream
    ) -> tuple[ScheduleResult, dict[str, float]]:
        """Schedule *stream* and return (result, counter payload).

        The payload is the exact set of ``pipeline.*`` emissions the
        schedule produces under profiling; the cache layer stores it so
        hits re-emit identical counters.
        """
        if len(stream) == 0:
            raise ValueError("cannot schedule an empty instruction stream")
        stream.validate()
        n_iters = self.WARMUP_ITERS + self.MEASURE_ITERS
        n_body = len(stream)
        observers = tuple(_SCHEDULE_OBSERVERS)
        events: list[tuple[int, float, Pipe]] = []
        cycle, iter_last_issue, pipe_busy_cycles = self._simulate(
            stream, n_iters,
            on_issue=(
                (lambda d, c, p: events.append((d, c, p)))
                if observers else None
            ),
            extrapolate=self.extrapolate,
        )

        first = self.WARMUP_ITERS
        last = n_iters - 1
        span = iter_last_issue[last] - iter_last_issue[first - 1]
        cpi = span / (last - first + 1)
        cpi = max(cpi, n_body / self.march.issue_width)  # front-end bound

        # utilization against the true makespan (warmup included), so the
        # metric stays in [0, 1] even when warmup is slower than steady
        # state on tiny bodies
        makespan = max(cycle, 1.0)
        occupancy = {
            p: min(1.0, pipe_busy_cycles[p] / makespan) for p in Pipe
        }
        bound = self._classify_bound(cpi, n_body, occupancy)
        result = ScheduleResult(
            cycles_per_iter=cpi,
            elements_per_iter=stream.elements_per_iter,
            instructions_per_iter=n_body,
            ipc=n_body / cpi if cpi else float("inf"),
            pipe_occupancy=occupancy,
            bound=bound,
            label=stream.label,
        )
        payload = self._counter_payload(
            stream, n_iters, n_body * n_iters, makespan, cpi,
            pipe_busy_cycles,
        )
        if observers:
            record = ScheduleRecord(
                march=self.march, window=self.window, stream=stream,
                n_iters=n_iters, issues=tuple(events), result=result,
            )
            for observer in observers:
                observer(record)
        return result, payload

    # ------------------------------------------------------------------
    def _simulate(
        self,
        stream: InstructionStream,
        n_iters: int,
        on_issue: Callable[[int, float, Pipe], None] | None = None,
        extrapolate: bool = True,
    ) -> tuple[float, list[float], dict[Pipe, float]]:
        """Event-driven simulation of *n_iters* iterations of *stream*.

        Returns ``(final_cycle, iter_last_issue, pipe_busy_cycles)``.
        ``on_issue(dyn_index, cycle, pipe)`` is called for every issue
        (used by :mod:`repro.engine.trace`); installing a hook disables
        period detection so every issue event is observed.
        """
        body = stream.body
        n_body = len(body)
        total = n_body * n_iters
        window = self.window
        issue_width = self.march.issue_width
        body_key = tuple(body)
        timings = _timings_for(self.march, body_key)
        static_deps, static_consumers = _dataflow_of(body_key)

        completion = [_INF] * total
        issued = bytearray(total)
        # per-instruction count of not-yet-issued producers, and running
        # max of issued producers' completion times (the ready time once
        # the count hits zero); both valid only for entered instructions
        pending = [0] * total
        ready_acc = [0.0] * total
        pipe_free: dict[Pipe, float] = {p: 0.0 for p in Pipe}
        pipe_busy: dict[Pipe, float] = {p: 0.0 for p in Pipe}
        pipe_touch: dict[Pipe, float] = {p: -_INF for p in Pipe}
        iter_last_issue = [0.0] * n_iters

        waiting: list[tuple[float, int]] = []  # (becomes-ready time, index)
        ready: list[int] = []                  # ready, oldest (smallest) first
        blocked: list[int] = []                # ready but no free pipe

        retire = 0
        entered = 0  # high-water mark of the ROB window
        cycle = 0.0
        remaining = total
        max_cycles = self.MAX_CYCLES

        # period detection: relative-state snapshots at iteration
        # boundaries of the retire pointer
        detect = extrapolate and on_issue is None and n_iters > self.WARMUP_ITERS
        snapshots: dict[tuple, tuple[int, float, dict[Pipe, float]]] = {}
        last_snap_iter = 0

        while remaining and cycle < max_cycles:
            while retire < total and issued[retire] and completion[retire] <= cycle:
                retire += 1
            rob_limit = retire + window
            if rob_limit > total:
                rob_limit = total

            # admit newly visible instructions into the window
            while entered < rob_limit:
                d = entered
                it, pos = divmod(d, n_body)
                pend = 0
                racc = 0.0
                for ppos, delta in static_deps[pos]:
                    sit = it - delta
                    if sit < 0:
                        continue
                    s = sit * n_body + ppos
                    if issued[s]:
                        c = completion[s]
                        if c > racc:
                            racc = c
                    else:
                        pend += 1
                pending[d] = pend
                ready_acc[d] = racc
                if pend == 0:
                    if racc <= cycle:
                        heappush(ready, d)
                    else:
                        heappush(waiting, (racc, d))
                entered += 1

            if detect:
                retire_iter = retire // n_body
                if retire_iter > last_snap_iter:
                    last_snap_iter = retire_iter
                    key = self._state_key(
                        cycle, retire, rob_limit, n_body, issued,
                        completion, pending, ready_acc, pipe_free,
                    )
                    prior = snapshots.get(key)
                    if prior is None:
                        snapshots[key] = (
                            retire_iter, cycle, dict(pipe_busy)
                        )
                    elif retire_iter >= self.WARMUP_ITERS:
                        skipped = self._fast_forward(
                            prior, retire_iter, cycle, n_body, total,
                            retire, rob_limit, issued, completion,
                            pending, ready_acc, pipe_free, pipe_busy,
                            pipe_touch, iter_last_issue, waiting, ready,
                        )
                        if skipped is not None:
                            retire, entered, cycle, dS = skipped
                            remaining -= dS
                            detect = False
                            continue

            # promote instructions whose ready time has arrived
            while waiting and waiting[0][0] <= cycle:
                heappush(ready, heappop(waiting)[1])

            issued_now = 0
            progressed = False
            while ready and issued_now < issue_width:
                d = heappop(ready)
                lat, rtput, pipes = timings[d % n_body]
                pipe = self._best_pipe(pipes, pipe_free, cycle)
                if pipe is None:
                    blocked.append(d)
                    continue
                issued[d] = 1
                comp = cycle + lat
                completion[d] = comp
                pf = pipe_free[pipe]
                pipe_free[pipe] = (pf if pf > cycle else cycle) + rtput
                pipe_busy[pipe] += rtput
                pipe_touch[pipe] = cycle
                issued_now += 1
                remaining -= 1
                it = d // n_body
                if cycle > iter_last_issue[it]:
                    iter_last_issue[it] = cycle
                progressed = True
                if on_issue is not None:
                    on_issue(d, cycle, pipe)
                # wake consumers: their pending count drops, their ready
                # time accumulates this completion
                for jpos, delta in static_consumers[d % n_body]:
                    cons = (it + delta) * n_body + jpos
                    if cons >= entered or issued[cons]:
                        continue
                    if comp > ready_acc[cons]:
                        ready_acc[cons] = comp
                    pending[cons] -= 1
                    if pending[cons] == 0:
                        r = ready_acc[cons]
                        if r <= cycle:
                            heappush(ready, cons)
                        else:
                            heappush(waiting, (r, cons))
            for d in blocked:
                heappush(ready, d)
            blocked.clear()

            if progressed:
                cycle += 1.0
            else:
                cycle = self._stall_horizon(
                    cycle, ready, waiting, timings, n_body, pipe_free,
                    ready_acc, issued, completion, retire, rob_limit,
                )
        if remaining:
            stuck = retire
            while stuck < total and issued[stuck]:
                stuck += 1
            raise ScheduleDivergence(stream, window, stuck, n_body)
        return cycle, iter_last_issue, pipe_busy

    # ------------------------------------------------------------------
    @staticmethod
    def _state_key(
        cycle: float,
        retire: int,
        rob_limit: int,
        n_body: int,
        issued: bytearray,
        completion: list[float],
        pending: list[int],
        ready_acc: list[float],
        pipe_free: dict[Pipe, float],
    ) -> tuple:
        """Hashable relative state of the in-flight window.

        Two simulation moments with equal keys evolve identically (up to
        a uniform shift of all times and dynamic indices): the key holds
        the retire offset within the body, the window extent, every pipe
        backlog relative to ``cycle``, and per in-flight instruction its
        issued flag plus completion/ready time relative to ``cycle``.
        Past times (<= cycle) are collapsed — they no longer influence
        issue decisions — except pipe backlogs, where ``_best_pipe``
        breaks ties by comparing raw values: those are encoded by rank
        so the relative order (all that matters) must recur.
        """
        parts: list = [retire % n_body, rob_limit - retire]
        past: list[float] = []
        for p in _PIPES:
            pf = pipe_free[p]
            if pf <= cycle:
                past.append(pf)
        rank = {v: -1.0 - i for i, v in enumerate(sorted(set(past)))}
        for p in _PIPES:
            pf = pipe_free[p]
            parts.append(pf - cycle if pf > cycle else rank[pf])
        for d in range(retire, rob_limit):
            if issued[d]:
                c = completion[d]
                parts.append((1, c - cycle if c > cycle else 0.0))
            else:
                r = ready_acc[d]
                parts.append(
                    (0, pending[d], r - cycle if r > cycle else 0.0)
                )
        return tuple(parts)

    # ------------------------------------------------------------------
    def _fast_forward(
        self,
        prior: tuple[int, float, dict[Pipe, float]],
        k_iter: int,
        cycle: float,
        n_body: int,
        total: int,
        retire: int,
        rob_limit: int,
        issued: bytearray,
        completion: list[float],
        pending: list[int],
        ready_acc: list[float],
        pipe_free: dict[Pipe, float],
        pipe_busy: dict[Pipe, float],
        pipe_touch: dict[Pipe, float],
        iter_last_issue: list[float],
        waiting: list[tuple[float, int]],
        ready: list[int],
    ) -> tuple[int, int, float, int] | None:
        """Skip whole steady-state periods by shifting the in-flight state.

        ``prior`` is an earlier snapshot with an identical relative state
        key; the schedule between the two is one period (``p`` iterations,
        ``D`` cycles).  The largest number of whole periods that keeps the
        tail clear of end-of-stream window clamping is skipped; the tail
        is then resimulated exactly, so end effects and the measured
        iteration endpoints stay bit-faithful.  Returns the new
        ``(retire, entered, cycle, skipped_instructions)`` or None when
        no skip is admissible yet.
        """
        j_iter, c_j, busy_j = prior
        p = k_iter - j_iter
        D = cycle - c_j
        if p <= 0 or D <= 0.0:
            return None
        r0 = retire % n_body
        # last iteration the retire pointer may reach with the window
        # still fully inside the stream (no ROB end-clamping during or
        # right after the skipped span)
        limit_iter = (total - self.window - r0) // n_body - 1
        q = (limit_iter - k_iter) // p
        if q <= 0:
            return None
        m = q * p
        S = m * n_body
        T = q * D
        lo, hi = retire, rob_limit

        # shift the in-flight slice up by S dynamic instructions and T
        # cycles; times already in the past stay as-is (they only feed
        # max() accumulations and <=-cycle comparisons downstream)
        for d in range(hi - 1, lo - 1, -1):
            nd = d + S
            issued[nd] = issued[d]
            c = completion[d]
            completion[nd] = c + T if c > cycle else c
            pending[nd] = pending[d]
            r = ready_acc[d]
            ready_acc[nd] = r + T if r > cycle else r
        # the skipped span retires wholesale: issued, completed in the past
        for d in range(lo, lo + S):
            issued[d] = 1
            completion[d] = 0.0

        waiting[:] = [
            (r + T if r > cycle else r, d + S) for r, d in waiting
        ]
        heapify(waiting)
        ready[:] = [d + S for d in ready]
        heapify(ready)

        # pipes touched within the matched period keep shifting their
        # backlog; untouched pipes hold absolute (past) values
        for pipe in _PIPES:
            if pipe_touch[pipe] >= c_j:
                pipe_free[pipe] += T
                pipe_touch[pipe] += T
            pipe_busy[pipe] += q * (pipe_busy[pipe] - busy_j[pipe])

        hi_it = (hi - 1) // n_body
        for it in range(hi_it, k_iter - 1, -1):
            v = iter_last_issue[it]
            iter_last_issue[it + m] = v + T if v > 0.0 else 0.0

        return retire + S, hi + S, cycle + T, S

    # ------------------------------------------------------------------
    @staticmethod
    def _stall_horizon(
        cycle: float,
        ready: list[int],
        waiting: list[tuple[float, int]],
        timings: list[tuple[float, float, frozenset[Pipe]]],
        n_body: int,
        pipe_free: dict[Pipe, float],
        ready_acc: list[float],
        issued: bytearray,
        completion: list[float],
        retire: int,
        rob_limit: int,
    ) -> float:
        """Next cycle at which anything can change: a stalled in-window
        instruction becoming issueable (sources done AND a pipe freeing
        within the cycle), or the ROB head retiring (widening the
        window).  Instructions still waiting on un-issued producers have
        an infinite ready bound and contribute nothing."""
        horizon = _INF
        for d in ready:
            pipes = timings[d % n_body][2]
            pipe_t = min(pipe_free[p] for p in pipes) - 1.0
            r = ready_acc[d]
            t = pipe_t if pipe_t > r else r
            if t < horizon:
                horizon = t
        for r, d in waiting:
            pipes = timings[d % n_body][2]
            pipe_t = min(pipe_free[p] for p in pipes) - 1.0
            t = pipe_t if pipe_t > r else r
            if t < horizon:
                horizon = t
        if retire < rob_limit and issued[retire]:
            c = completion[retire]
            if c < horizon:
                horizon = c
        if horizon == _INF:
            horizon = cycle + 1.0
        floor = cycle + 1.0
        return horizon if horizon > floor else floor

    # ------------------------------------------------------------------
    def _counter_payload(
        self,
        stream: InstructionStream,
        n_iters: int,
        total: int,
        makespan: float,
        cpi: float,
        pipe_busy_cycles: Mapping[Pipe, float],
    ) -> dict[str, float]:
        """The ``pipeline.*`` PMU counters for one simulated schedule.

        The front-end slot identity is exact by construction: every
        simulated cycle offers ``issue_width`` slots; each dynamic
        instruction consumes one, and the remainder are stall slots
        (empty issue slots — dependence, pipe-busy, or window stalls).
        """
        return counter_payload(
            self.march, stream, n_iters, total, makespan, cpi,
            pipe_busy_cycles,
        )

    # ------------------------------------------------------------------
    def _timing_of(
        self, ins: Instruction
    ) -> tuple[float, float, tuple[Pipe, ...]]:
        return _timings_for(self.march, (ins,))[0]

    @staticmethod
    def _best_pipe(
        pipes: tuple[Pipe, ...], pipe_free: dict[Pipe, float], cycle: float
    ) -> Pipe | None:
        """Pipe that frees up within this cycle with the smallest backlog,
        or None if all are busy past it.  *pipes* arrives in canonical
        :func:`_canon_pipes` order, which fixes the tie between
        equally-free candidates."""
        best: Pipe | None = None
        for p in pipes:
            if pipe_free[p] < cycle + 1.0:
                if best is None or pipe_free[p] < pipe_free[best]:
                    best = p
        return best

    @staticmethod
    def _static_dataflow(
        body: list[Instruction],
    ) -> tuple[
        list[tuple[tuple[int, int], ...]],
        list[tuple[tuple[int, int], ...]],
    ]:
        """Per body position: producers as (position, iteration delta),
        and the inverse consumer map.  Deltas are 0 (same iteration) or
        1 (previous iteration's value: loop-carried, or defined later in
        the body).  Memoized per body content in :func:`_dataflow_of`."""
        deps, consumers = _dataflow_of(tuple(body))
        return list(deps), list(consumers)

    @staticmethod
    def _classify_bound(
        cpi: float, n_body: int, occupancy: Mapping[Pipe, float]
    ) -> str:
        hot = max(occupancy.items(), key=lambda kv: kv[1])
        if hot[1] > 0.9:
            return f"pipe:{hot[0].value}"
        if n_body / cpi > 3.5:
            return "issue"
        return "latency"


def counter_payload(
    march: Microarch,
    stream: InstructionStream,
    n_iters: int,
    total: int,
    makespan: float,
    cpi: float,
    pipe_busy_cycles: Mapping[Pipe, float],
) -> dict[str, float]:
    """The ``pipeline.*`` PMU counters for one simulated schedule.

    Shared by the event-driven scheduler and the batched SoA engine
    (:mod:`repro.engine.batch`) so both paths emit — and the schedule
    cache replays — byte-identical payloads.  The front-end slot
    identity ``issue_slots.total == used + stalled`` is exact by
    construction: every simulated cycle offers ``issue_width`` slots,
    each dynamic instruction consumes one, and the remainder stall.
    """
    slot_total = march.issue_width * makespan
    payload = {
        "pipeline.schedules": 1.0,
        "pipeline.iterations": float(n_iters),
        "pipeline.instructions": float(total),
        "pipeline.makespan_cycles": makespan,
        "pipeline.steady_cycles": cpi * n_iters,
        "pipeline.issue_slots.total": slot_total,
        "pipeline.issue_slots.used": float(total),
        "pipeline.issue_slots.stalled": slot_total - total,
    }
    for pipe, busy in pipe_busy_cycles.items():
        if busy:
            payload[f"pipeline.pipe_busy.{pipe.value}"] = busy
    for op, count in stream.counts().items():
        payload[f"pipeline.instr_mix.{op.value}"] = float(count * n_iters)
    return payload


def schedule_on(march: Microarch, stream: InstructionStream,
                window: int | None = None, *,
                cache: bool = True) -> ScheduleResult:
    """Convenience wrapper: schedule *stream* on *march*.

    Goes through the process-wide content-addressed schedule cache
    (:mod:`repro.engine.cache`) unless ``cache=False`` — repeated sweeps
    over identical (march, stream, window) points, including identical
    streams emitted by different toolchains, reuse the schedule.
    """
    if cache:
        from repro.engine.cache import cached_schedule

        return cached_schedule(march, stream, window=window)
    return PipelineScheduler(march, window=window).steady_state(stream)
