"""Reference (seed) pipeline scheduler — the slow, obviously-correct model.

This module preserves the original per-cycle implementation of
:class:`~repro.engine.scheduler.PipelineScheduler` exactly as it shipped:
a full ready-scan of the out-of-order window on *every* simulated cycle,
with an explicit ``_next_event`` jump for idle stretches.  The production
scheduler has since been rewritten as an event-driven core with
steady-state period detection (see ``scheduler.py``); this copy is kept
for two jobs:

* the golden-equivalence suite (``tests/engine/test_golden_equivalence.py``)
  proves the fast paths reproduce these results to within 1e-9 relative;
* ``benchmarks/engine_bench.py`` uses it as the "cold seed" baseline that
  speedups in ``BENCH_engine.json`` are measured against.

Do not add features here — the whole point is that this file does not
move.
"""

from __future__ import annotations

from typing import Mapping

from repro.machine.isa import Instruction, InstructionStream, Pipe
from repro.machine.microarch import Microarch
from repro.perf.counters import emit, is_profiling

from repro.engine.scheduler import ScheduleResult, _canon_pipes

__all__ = ["ReferenceScheduler"]


class ReferenceScheduler:
    """The seed greedy bounded-window scheduler (per-cycle ready scan)."""

    WARMUP_ITERS = 8
    MEASURE_ITERS = 16

    def __init__(self, march: Microarch, window: int | None = None) -> None:
        self.march = march
        self.window = march.window if window is None else window
        if self.window < 1:
            raise ValueError("window must be >= 1")

    # ------------------------------------------------------------------
    def steady_state(self, stream: InstructionStream) -> ScheduleResult:
        """Simulate the loop and return steady-state statistics."""
        if len(stream) == 0:
            raise ValueError("cannot schedule an empty instruction stream")
        stream.validate()
        n_iters = self.WARMUP_ITERS + self.MEASURE_ITERS
        body = stream.body
        n_body = len(body)
        total = n_body * n_iters

        deps: list[tuple[int, ...]] = self._build_deps(body, n_iters)
        timings = [self._timing_of(ins) for ins in body]

        issue_width = self.march.issue_width
        completion = [float("inf")] * total
        issued = [False] * total
        pipe_free: dict[Pipe, float] = {p: 0.0 for p in Pipe}
        pipe_busy_cycles: dict[Pipe, float] = {p: 0.0 for p in Pipe}
        iter_last_issue = [0.0] * n_iters

        head = 0
        retire = 0
        cycle = 0.0
        remaining = total
        max_cycles = 1e7
        while remaining and cycle < max_cycles:
            while retire < total and issued[retire] and completion[retire] <= cycle:
                retire += 1
            rob_limit = min(total, retire + self.window)

            issued_now = 0
            progressed = False
            for d in range(head, rob_limit):
                if issued_now >= issue_width:
                    break
                if issued[d]:
                    continue
                lat, rtput, pipes = timings[d % n_body]
                ready = max((completion[s] for s in deps[d]), default=0.0)
                if ready <= cycle:
                    pipe = self._best_pipe(pipes, pipe_free, cycle)
                    if pipe is not None:
                        issued[d] = True
                        completion[d] = cycle + lat
                        pipe_free[pipe] = max(pipe_free[pipe], cycle) + rtput
                        pipe_busy_cycles[pipe] += rtput
                        issued_now += 1
                        remaining -= 1
                        it = d // n_body
                        iter_last_issue[it] = max(iter_last_issue[it], cycle)
                        progressed = True
            while head < total and issued[head]:
                head += 1
            if progressed:
                cycle += 1.0
            else:
                cycle = self._next_event(
                    cycle, head, rob_limit, issued, deps, completion,
                    timings, n_body, pipe_free, retire,
                )
        if remaining:
            raise RuntimeError(
                "scheduler failed to converge — check the instruction "
                "stream for an unsatisfiable dependence"
            )

        first = self.WARMUP_ITERS
        last = n_iters - 1
        span = iter_last_issue[last] - iter_last_issue[first - 1]
        cpi = span / (last - first + 1)
        cpi = max(cpi, n_body / issue_width)

        makespan = max(cycle, 1.0)
        occupancy = {
            p: min(1.0, pipe_busy_cycles[p] / makespan) for p in Pipe
        }
        bound = self._classify_bound(cpi, n_body, occupancy)
        if is_profiling():
            self._emit_counters(
                stream, n_iters, total, makespan, cpi, pipe_busy_cycles
            )
        return ScheduleResult(
            cycles_per_iter=cpi,
            elements_per_iter=stream.elements_per_iter,
            instructions_per_iter=n_body,
            ipc=n_body / cpi if cpi else float("inf"),
            pipe_occupancy=occupancy,
            bound=bound,
            label=stream.label,
        )

    # ------------------------------------------------------------------
    def _emit_counters(
        self,
        stream: InstructionStream,
        n_iters: int,
        total: int,
        makespan: float,
        cpi: float,
        pipe_busy_cycles: Mapping[Pipe, float],
    ) -> None:
        slot_total = self.march.issue_width * makespan
        emit("pipeline.schedules", 1.0)
        emit("pipeline.iterations", float(n_iters))
        emit("pipeline.instructions", float(total))
        emit("pipeline.makespan_cycles", makespan)
        emit("pipeline.steady_cycles", cpi * n_iters)
        emit("pipeline.issue_slots.total", slot_total)
        emit("pipeline.issue_slots.used", float(total))
        emit("pipeline.issue_slots.stalled", slot_total - total)
        for pipe, busy in pipe_busy_cycles.items():
            if busy:
                emit(f"pipeline.pipe_busy.{pipe.value}", busy)
        for op, count in stream.counts().items():
            emit(f"pipeline.instr_mix.{op.value}", float(count * n_iters))

    # ------------------------------------------------------------------
    def _timing_of(
        self, ins: Instruction
    ) -> tuple[float, float, tuple[Pipe, ...]]:
        t = self.march.timing(ins.op)
        lat = ins.latency_override if ins.latency_override is not None else t.latency
        rtp = ins.rtput_override if ins.rtput_override is not None else t.rtput
        # canonical pipe order: ties between equally-free pipes must
        # break the same way as the fast scheduler on any hash seed
        return (lat, rtp, _canon_pipes(t.pipes))

    @staticmethod
    def _best_pipe(
        pipes: tuple[Pipe, ...], pipe_free: dict[Pipe, float], cycle: float
    ) -> Pipe | None:
        best: Pipe | None = None
        for p in pipes:
            if pipe_free[p] < cycle + 1.0:
                if best is None or pipe_free[p] < pipe_free[best]:
                    best = p
        return best

    @staticmethod
    def _build_deps(body: list[Instruction], n_iters: int) -> list[tuple[int, ...]]:
        n_body = len(body)
        static: list[list[tuple[int, int] | None]] = []
        last_def: dict[str, int] = {}
        final_def: dict[str, int] = {}
        for j, ins in enumerate(body):
            if ins.dest:
                final_def[ins.dest] = j
        for j, ins in enumerate(body):
            resolved: list[tuple[int, int] | None] = []
            for src in ins.srcs:
                if ins.carried and src == ins.dest:
                    prev = final_def.get(src)
                    resolved.append((prev, 1) if prev is not None else None)
                elif src in last_def:
                    resolved.append((last_def[src], 0))
                elif src in final_def:
                    resolved.append((final_def[src], 1))
                else:
                    resolved.append(None)
            static.append(resolved)
            if ins.dest:
                last_def[ins.dest] = j
        deps: list[tuple[int, ...]] = []
        for it in range(n_iters):
            for j in range(n_body):
                dyn: list[int] = []
                for res in static[j]:
                    if res is None:
                        continue
                    pos, delta = res
                    src_it = it - delta
                    if src_it >= 0:
                        dyn.append(src_it * n_body + pos)
                deps.append(tuple(dyn))
        return deps

    @staticmethod
    def _next_event(
        cycle: float,
        head: int,
        rob_limit: int,
        issued: list[bool],
        deps: list[tuple[int, ...]],
        completion: list[float],
        timings: list[tuple[float, float, frozenset[Pipe]]],
        n_body: int,
        pipe_free: dict[Pipe, float],
        retire: int,
    ) -> float:
        horizon = float("inf")
        for d in range(head, rob_limit):
            if issued[d]:
                continue
            ready = max((completion[s] for s in deps[d]), default=0.0)
            _, _, pipes = timings[d % n_body]
            pipe_t = min(pipe_free[p] for p in pipes) - 1.0
            horizon = min(horizon, max(ready, pipe_t))
        if retire < rob_limit and issued[retire]:
            horizon = min(horizon, completion[retire])
        if horizon == float("inf"):
            horizon = cycle + 1.0
        return max(horizon, cycle + 1.0)

    @staticmethod
    def _classify_bound(
        cpi: float, n_body: int, occupancy: Mapping[Pipe, float]
    ) -> str:
        hot = max(occupancy.items(), key=lambda kv: kv[1])
        if hot[1] > 0.9:
            return f"pipe:{hot[0].value}"
        if n_body / cpi > 3.5:
            return "issue"
        return "latency"
