"""Parallel sweep runner: fan schedule work out over workers.

Every figure/table in the reproduction is a sweep — (kernel x toolchain
x system x window) points that are embarrassingly parallel once the
schedule cache (:mod:`repro.engine.cache`) deduplicates shared work.
This module provides the fan-out primitives used by
``examples/reproduce_paper.py``, the figure drivers and
``benchmarks/engine_bench.py``:

* :func:`map_schedules` — ``map(fn, items)`` over a thread/process pool
  (or serially), preserving input order, with **exact counter merging**:
  each task runs inside its own :class:`~repro.perf.counters.ProfileScope`
  (the scope stack is thread-local), and the captured counters are merged
  into the caller's active scopes in submission order — so
  ``ProfileScope`` totals under parallelism are bit-identical to a
  serial run.
* :func:`run_sweep` — the common case: schedule a list of
  :class:`SweepPoint` (loop, toolchain[, window]) specs and return one
  stats row per point.  Points are named, not objects, so the work ships
  cleanly to process pools.

Modes: ``"serial"`` (in-process, live emission), ``"thread"`` (default;
shares the in-process schedule cache, fine for the GIL-light scheduler
inner loop), ``"process"`` (true parallelism; combine with
``REPRO_CACHE_DIR`` so workers share schedules via the disk cache).

Batched scheduling: when a sweep carries at least
:func:`batch_min_points` points, :func:`run_sweep` routes them through
the grid fast paths — compilations deduplicate through the
content-addressed compile cache (:mod:`repro.compilers.cache`),
engine-tier points run as one structure-of-arrays batch
(:mod:`repro.engine.batch`; sharded over a process pool by
:mod:`repro.engine.shard` under ``mode="process"``), and ECM-tier
points evaluate as one vectorized array program
(:mod:`repro.ecm.batch`) — identical rows, counters and cache
statistics, multiplicatively fewer scalar evaluations.  ``batch=False``
(or ``REPRO_BATCH_SCHEDULE=off``) forces the per-point path; single
points and small sweeps keep the event-driven scheduler automatically.
``REPRO_BATCH_MIN_POINTS`` overrides the routing threshold.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Iterable, Sequence, TypeVar

from repro.perf.counters import ProfileScope, active_scopes

__all__ = [
    "BATCH_MIN_POINTS",
    "PoolDowngradeWarning",
    "SweepPoint",
    "TIERS",
    "batch_min_points",
    "last_effective_mode",
    "map_schedules",
    "run_sweep",
]

T = TypeVar("T")
R = TypeVar("R")

MODES = ("serial", "thread", "process")


#: prediction tiers a sweep point can run under
TIERS = ("engine", "ecm")

#: default minimum point count before :func:`run_sweep` routes through
#: the batched grid paths (below this, per-point scheduling is cheaper
#: than assembling a batch); override with ``REPRO_BATCH_MIN_POINTS``
BATCH_MIN_POINTS = 8


class PoolDowngradeWarning(RuntimeWarning):
    """A requested process pool was unavailable; threads ran instead.

    Emitted by :func:`map_schedules` and
    :func:`repro.engine.shard.schedule_batch_sharded` when
    ``mode="process"`` cannot create a
    :class:`~concurrent.futures.ProcessPoolExecutor` (sandboxes without
    fork/spawn).  Results are identical either way — only the expected
    parallel speedup is lost — but the downgrade is no longer silent:
    callers and tests can catch the warning or inspect
    :func:`last_effective_mode`.
    """


_EFFECTIVE_MODE = threading.local()


def _set_effective_mode(mode: str) -> None:
    _EFFECTIVE_MODE.value = mode


def last_effective_mode() -> str | None:
    """Executor mode the calling thread's last sweep actually used.

    ``"serial"``, ``"thread"`` or ``"process"`` — the mode that *ran*,
    after any short-circuit (single item, one worker) or process-pool
    downgrade; ``None`` before any sweep ran on this thread.
    """
    return getattr(_EFFECTIVE_MODE, "value", None)


def _make_pool(mode: str, max_workers: int | None) -> tuple[Executor, str]:
    """Create the executor for *mode*; returns (pool, effective mode).

    The process→thread downgrade (no fork/spawn in sandboxes) warns via
    :class:`PoolDowngradeWarning` instead of swapping silently.
    """
    if mode == "process":
        try:
            return ProcessPoolExecutor(max_workers=max_workers), "process"
        except (OSError, PermissionError) as exc:
            warnings.warn(
                f"process pool unavailable ({exc}); "
                "falling back to a thread pool",
                PoolDowngradeWarning, stacklevel=3,
            )
    return ThreadPoolExecutor(max_workers=max_workers), "thread"


def _batch_enabled() -> bool:
    """Default batching policy (``REPRO_BATCH_SCHEDULE`` kill switch)."""
    return os.environ.get("REPRO_BATCH_SCHEDULE", "").lower() not in (
        "off", "0", "no", "false",
    )


def batch_min_points() -> int:
    """The effective batch-routing threshold for :func:`run_sweep`.

    Defaults to :data:`BATCH_MIN_POINTS`; the ``REPRO_BATCH_MIN_POINTS``
    environment variable (validated integer >= 1, documented next to
    the ``REPRO_BATCH_SCHEDULE`` kill switch) overrides it, e.g. to
    force tiny sweeps onto the batch path in experiments or to keep
    mid-size sweeps per-point.
    """
    raw = os.environ.get("REPRO_BATCH_MIN_POINTS")
    if raw is None or raw.strip() == "":
        return BATCH_MIN_POINTS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH_MIN_POINTS must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"REPRO_BATCH_MIN_POINTS must be >= 1, got {value}"
        )
    return value


@dataclass(frozen=True)
class SweepPoint:
    """One schedule request, by name (picklable for process pools).

    ``tier`` selects the prediction tier: ``"engine"`` simulates the
    steady-state schedule on the fast event-driven scheduler;
    ``"ecm"`` evaluates the analytical ECM model
    (:mod:`repro.ecm.model`) instead — no simulation, microseconds per
    point.

    ``machine`` names a :data:`~repro.machine.spec.MACHINE_SPECS`
    preset to target instead of the paper's default pairing (A64FX for
    SVE toolchains, Skylake 6140 for x86); ECM-tier points then price
    traffic against that machine's own memory system.
    """

    loop: str
    toolchain: str
    window: int | None = None
    tier: str = "engine"
    machine: str | None = None


def _captured_call(fn: Callable[[T], R], item: T) -> tuple[R, dict[str, float]]:
    """Run one task under a private scope; return (value, its counters)."""
    with ProfileScope("sweep-task") as counters:
        value = fn(item)
    return value, counters.as_dict()


def map_schedules(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    mode: str = "thread",
    max_workers: int | None = None,
) -> list[R]:
    """Apply *fn* to every item, possibly in parallel; results in order.

    Counters emitted inside tasks are merged into the caller's active
    profiling scopes in submission order, keeping totals exactly equal
    to a serial run.  ``mode="process"`` requires *fn* and the items to
    be picklable (use module-level functions and name-based specs).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    items = list(items)
    if mode == "serial" or len(items) <= 1:
        # live emission into the caller's scopes; nothing to merge
        _set_effective_mode("serial")
        return [fn(item) for item in items]

    pool, effective = _make_pool(mode, max_workers)
    _set_effective_mode(effective)
    with pool:
        outcomes = list(pool.map(_captured_call, repeat(fn), items))

    results: list[R] = []
    scopes = active_scopes()
    for value, counters in outcomes:
        for scope in scopes:
            scope.merge(counters)
        results.append(value)
    return results


# ----------------------------------------------------------------------
def _normalize(
    point: "SweepPoint | Sequence", tier: str | None,
) -> tuple[str, str, int | None, str, str | None]:
    if isinstance(point, SweepPoint):
        return (point.loop, point.toolchain, point.window,
                tier or point.tier, point.machine)
    loop, toolchain, *rest = point
    window = rest[0] if rest else None
    point_tier = rest[1] if len(rest) > 1 else None
    machine = rest[2] if len(rest) > 2 else None
    return (str(loop), str(toolchain), window,
            tier or point_tier or "engine", machine)


def _resolve_targets(tc_name: str, machine: str | None):
    """(march, system) for one sweep point.

    With no machine the paper's default pairing applies (A64FX for SVE
    toolchains, Skylake 6140 for x86, systems via
    :func:`~repro.perf.profile.default_system_for`); a ``machine``
    preset key targets that spec's core and — for ECM pricing — its own
    node.  The system is resolved lazily because engine-tier points
    never need one (core-only presets stay sweepable there).
    """
    from repro.compilers.toolchains import get_toolchain
    from repro.machine.microarch import A64FX, SKYLAKE_6140

    if machine is not None:
        from repro.machine.spec import get_machine_spec

        spec = get_machine_spec(machine)
        return spec.build_core(), spec.build_system
    tc = get_toolchain(tc_name)
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX

    def default_system():
        from repro.machine.systems import get_system
        from repro.perf.profile import default_system_for

        return get_system(default_system_for(tc_name))

    return march, default_system


def _schedule_point(
    spec: tuple[str, str, int | None, str, str | None],
) -> dict:
    """Compile + predict one named sweep point (top-level: picklable).

    The ``engine`` tier simulates through the cached fast scheduler;
    the ``ecm`` tier evaluates the analytical model on the same
    compiled loop, so the two rows are directly comparable.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import get_toolchain
    from repro.kernels.catalog import build_kernel

    loop, tc_name, window, tier, machine = spec
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    tc = get_toolchain(tc_name)
    march, system_of = _resolve_targets(tc_name, machine)
    compiled = compile_loop(build_kernel(loop), tc, march)
    row = {
        "loop": loop,
        "toolchain": tc.name,
        "march": march.name,
        "window": window if window is not None else march.window,
        "tier": tier,
        "model_cycles_per_element": compiled.cycles_per_element,
    }
    if machine is not None:
        row["machine"] = machine
    if tier == "ecm":
        from repro.ecm.model import predict_compiled

        system = system_of()
        pred = predict_compiled(compiled, system, window=window)
        row.update({
            "cycles_per_iter": pred.cycles_per_iter,
            "cycles_per_element": pred.cycles_per_element,
            "ipc": pred.incore.n_instrs / pred.cycles_per_iter,
            "bound": pred.bound,
        })
        return row
    from repro.engine.scheduler import schedule_on

    sched = schedule_on(march, compiled.stream, window)
    row.update({
        "cycles_per_iter": sched.cycles_per_iter,
        "cycles_per_element": sched.cycles_per_element,
        "ipc": sched.ipc,
        "bound": sched.bound,
    })
    return row


def _run_sweep_batched(
    specs: list[tuple[str, str, int | None, str, str | None]],
    *,
    mode: str,
    max_workers: int | None,
) -> list[dict]:
    """Batched sweep: both tiers ride the grid fast paths.

    Compilations go through the content-addressed compile cache
    (:func:`repro.compilers.cache.cached_compile`), so a grid sharing
    (loop, toolchain) across many windows lowers each combination once.
    Every point contributes the default-window schedule request behind
    ``CompiledLoop.cycles_per_element``; engine points add their
    explicitly windowed request — matching the per-point path request
    for request, so cache statistics and ``ProfileScope`` totals stay
    bit-identical.  The deduplicated batch simulates sharded over a
    process pool under ``mode="process"``
    (:func:`repro.engine.shard.schedule_batch_sharded`), in-process
    otherwise; ECM-tier rows then compose in one vectorized pass
    (:func:`repro.ecm.batch.predict_batch`).
    """
    from repro.compilers.cache import cached_compile
    from repro.compilers.toolchains import get_toolchain
    from repro.ecm.batch import predict_batch
    from repro.engine.batch import schedule_batch
    from repro.engine.shard import schedule_batch_sharded
    from repro.kernels.catalog import build_kernel

    rows: list[dict | None] = [None] * len(specs)
    requests: list[tuple] = []
    pending: list[tuple] = []
    # one compiled loop per (loop, toolchain, machine) combo for the
    # whole sweep; the request list below still carries one entry per
    # *point*, which is what keeps cache statistics and counters equal
    # to the per-point path — sharing the compiled object only skips
    # redundant IR builds
    compiled_of: dict[tuple[str, str, str | None], object] = {}
    system_of: dict[tuple[str, str | None], object] = {}
    for i, (loop, tc_name, window, point_tier, machine) in enumerate(specs):
        if point_tier not in TIERS:
            raise ValueError(
                f"tier must be one of {TIERS}, got {point_tier!r}"
            )
        compiled = compiled_of.get((loop, tc_name, machine))
        if compiled is None:
            tc = get_toolchain(tc_name)
            march, resolve_system = _resolve_targets(tc_name, machine)
            system_of.setdefault((tc_name, machine), resolve_system)
            compiled = cached_compile(build_kernel(loop), tc, march)
            compiled_of[(loop, tc_name, machine)] = compiled
        march = compiled.march
        req_idx = len(requests)
        # the default-window schedule behind cycles_per_element; the
        # per-point path looks it up for every row in both tiers
        requests.append((march, compiled.stream))
        if point_tier == "engine":
            requests.append((march, compiled.stream, window))
        pending.append((i, compiled, march, window, point_tier, req_idx))

    if mode == "process":
        results = schedule_batch_sharded(requests, max_workers=max_workers)
    else:
        _set_effective_mode("serial")
        results = schedule_batch(requests)

    ecm_items: list[tuple] = []
    ecm_rows: list[tuple[int, dict]] = []
    for i, compiled, march, window, point_tier, req_idx in pending:
        # pre-seed the cached property so cycles_per_element reuses the
        # batch result instead of re-entering the scalar scheduler
        compiled.__dict__["schedule"] = results[req_idx]
        row = {
            "loop": specs[i][0],
            "toolchain": compiled.toolchain.name,
            "march": march.name,
            "window": window if window is not None else march.window,
            "tier": point_tier,
            "model_cycles_per_element": compiled.cycles_per_element,
        }
        machine = specs[i][4]
        if machine is not None:
            row["machine"] = machine
        if point_tier == "ecm":
            system = system_of[(specs[i][1], machine)]()
            ecm_items.append((compiled, system, window))
            ecm_rows.append((i, row))
            continue
        sched = results[req_idx + 1]
        row.update({
            "cycles_per_iter": sched.cycles_per_iter,
            "cycles_per_element": sched.cycles_per_element,
            "ipc": sched.ipc,
            "bound": sched.bound,
        })
        rows[i] = row

    if ecm_items:
        preds = predict_batch(ecm_items)
        for (i, row), pred in zip(ecm_rows, preds):
            row.update({
                "cycles_per_iter": pred.cycles_per_iter,
                "cycles_per_element": pred.cycles_per_element,
                "ipc": pred.incore.n_instrs / pred.cycles_per_iter,
                "bound": pred.bound,
            })
            rows[i] = row
    return rows  # type: ignore[return-value]


def run_sweep(
    points: Iterable["SweepPoint | Sequence"],
    *,
    mode: str = "thread",
    max_workers: int | None = None,
    tier: str | None = None,
    batch: bool | None = None,
) -> list[dict]:
    """Predict every (loop, toolchain[, window]) point; one row each.

    Rows arrive in input order and carry the prediction statistics plus
    the codegen-adjusted ``model_cycles_per_element`` (the quantity the
    paper's Section IV tables quote).  ``tier`` overrides the tier of
    every point at once (``--tier ecm`` on the CLIs lands here); per
    -point tiers come from :attr:`SweepPoint.tier`.

    ``batch`` controls the batched grid paths: ``None`` (default) uses
    them when at least :func:`batch_min_points` points (of either tier)
    are pending (unless ``REPRO_BATCH_SCHEDULE=off``), ``True`` forces
    them, ``False`` keeps the per-point event-driven path.  Rows,
    counters and cache statistics are identical either way; under
    ``mode="process"`` the batch simulation itself shards across a
    process pool.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    specs = [_normalize(p, tier) for p in points]
    n_engine = sum(1 for s in specs if s[3] == "engine")
    n_pred = len(specs)
    use_batch = _batch_enabled() if batch is None else batch
    threshold = batch_min_points()
    if use_batch and (n_engine >= threshold or n_pred >= threshold or
                      (batch is True and n_pred > 0)):
        return _run_sweep_batched(
            specs, mode=mode, max_workers=max_workers
        )
    return map_schedules(
        _schedule_point, specs, mode=mode, max_workers=max_workers
    )
