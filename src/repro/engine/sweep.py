"""Parallel sweep runner: fan schedule work out over workers.

Every figure/table in the reproduction is a sweep — (kernel x toolchain
x system x window) points that are embarrassingly parallel once the
schedule cache (:mod:`repro.engine.cache`) deduplicates shared work.
This module provides the fan-out primitives used by
``examples/reproduce_paper.py``, the figure drivers and
``benchmarks/engine_bench.py``:

* :func:`map_schedules` — ``map(fn, items)`` over a thread/process pool
  (or serially), preserving input order, with **exact counter merging**:
  each task runs inside its own :class:`~repro.perf.counters.ProfileScope`
  (the scope stack is thread-local), and the captured counters are merged
  into the caller's active scopes in submission order — so
  ``ProfileScope`` totals under parallelism are bit-identical to a
  serial run.
* :func:`run_sweep` — the common case: schedule a list of
  :class:`SweepPoint` (loop, toolchain[, window]) specs and return one
  stats row per point.  Points are named, not objects, so the work ships
  cleanly to process pools.

Modes: ``"serial"`` (in-process, live emission), ``"thread"`` (default;
shares the in-process schedule cache, fine for the GIL-light scheduler
inner loop), ``"process"`` (true parallelism; combine with
``REPRO_CACHE_DIR`` so workers share schedules via the disk cache).

Batched scheduling: when a sweep carries at least
:data:`BATCH_MIN_POINTS` engine-tier points, :func:`run_sweep` routes
them through the structure-of-arrays batch engine
(:mod:`repro.engine.batch`) instead of scheduling point-by-point —
identical rows, counters and cache statistics, one deduplicated array
program instead of N scalar simulations.  ``batch=False`` (or
``REPRO_BATCH_SCHEDULE=off``) forces the per-point path; single points
and small sweeps keep the event-driven scheduler automatically.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Iterable, Sequence, TypeVar

from repro.perf.counters import ProfileScope, active_scopes

__all__ = [
    "BATCH_MIN_POINTS",
    "SweepPoint",
    "TIERS",
    "map_schedules",
    "run_sweep",
]

T = TypeVar("T")
R = TypeVar("R")

MODES = ("serial", "thread", "process")


#: prediction tiers a sweep point can run under
TIERS = ("engine", "ecm")

#: minimum engine-tier points before :func:`run_sweep` routes through
#: the batched SoA engine (below this, per-point scheduling is cheaper
#: than assembling a batch)
BATCH_MIN_POINTS = 8


def _batch_enabled() -> bool:
    """Default batching policy (``REPRO_BATCH_SCHEDULE`` kill switch)."""
    return os.environ.get("REPRO_BATCH_SCHEDULE", "").lower() not in (
        "off", "0", "no", "false",
    )


@dataclass(frozen=True)
class SweepPoint:
    """One schedule request, by name (picklable for process pools).

    ``tier`` selects the prediction tier: ``"engine"`` simulates the
    steady-state schedule on the fast event-driven scheduler;
    ``"ecm"`` evaluates the analytical ECM model
    (:mod:`repro.ecm.model`) instead — no simulation, microseconds per
    point.
    """

    loop: str
    toolchain: str
    window: int | None = None
    tier: str = "engine"


def _captured_call(fn: Callable[[T], R], item: T) -> tuple[R, dict[str, float]]:
    """Run one task under a private scope; return (value, its counters)."""
    with ProfileScope("sweep-task") as counters:
        value = fn(item)
    return value, counters.as_dict()


def map_schedules(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    mode: str = "thread",
    max_workers: int | None = None,
) -> list[R]:
    """Apply *fn* to every item, possibly in parallel; results in order.

    Counters emitted inside tasks are merged into the caller's active
    profiling scopes in submission order, keeping totals exactly equal
    to a serial run.  ``mode="process"`` requires *fn* and the items to
    be picklable (use module-level functions and name-based specs).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    items = list(items)
    if mode == "serial" or len(items) <= 1:
        # live emission into the caller's scopes; nothing to merge
        return [fn(item) for item in items]

    if mode == "process":
        try:
            pool_cls: type = ProcessPoolExecutor
            pool = pool_cls(max_workers=max_workers)
        except (OSError, PermissionError):  # no fork/spawn in sandbox
            pool = ThreadPoolExecutor(max_workers=max_workers)
    else:
        pool = ThreadPoolExecutor(max_workers=max_workers)
    with pool:
        outcomes = list(pool.map(_captured_call, repeat(fn), items))

    results: list[R] = []
    scopes = active_scopes()
    for value, counters in outcomes:
        for scope in scopes:
            scope.merge(counters)
        results.append(value)
    return results


# ----------------------------------------------------------------------
def _normalize(
    point: "SweepPoint | Sequence", tier: str | None,
) -> tuple[str, str, int | None, str]:
    if isinstance(point, SweepPoint):
        return (point.loop, point.toolchain, point.window,
                tier or point.tier)
    loop, toolchain, *rest = point
    window = rest[0] if rest else None
    point_tier = rest[1] if len(rest) > 1 else None
    return (str(loop), str(toolchain), window,
            tier or point_tier or "engine")


def _schedule_point(spec: tuple[str, str, int | None, str]) -> dict:
    """Compile + predict one named sweep point (top-level: picklable).

    The ``engine`` tier simulates through the cached fast scheduler;
    the ``ecm`` tier evaluates the analytical model on the same
    compiled loop, so the two rows are directly comparable.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import get_toolchain
    from repro.kernels.catalog import build_kernel
    from repro.machine.microarch import A64FX, SKYLAKE_6140

    loop, tc_name, window, tier = spec
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    tc = get_toolchain(tc_name)
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    compiled = compile_loop(build_kernel(loop), tc, march)
    row = {
        "loop": loop,
        "toolchain": tc.name,
        "march": march.name,
        "window": window if window is not None else march.window,
        "tier": tier,
        "model_cycles_per_element": compiled.cycles_per_element,
    }
    if tier == "ecm":
        from repro.ecm.model import predict_compiled
        from repro.machine.systems import get_system
        from repro.perf.profile import default_system_for

        system = get_system(default_system_for(tc_name))
        pred = predict_compiled(compiled, system, window=window)
        row.update({
            "cycles_per_iter": pred.cycles_per_iter,
            "cycles_per_element": pred.cycles_per_element,
            "ipc": pred.incore.n_instrs / pred.cycles_per_iter,
            "bound": pred.bound,
        })
        return row
    from repro.engine.scheduler import schedule_on

    sched = schedule_on(march, compiled.stream, window)
    row.update({
        "cycles_per_iter": sched.cycles_per_iter,
        "cycles_per_element": sched.cycles_per_element,
        "ipc": sched.ipc,
        "bound": sched.bound,
    })
    return row


def _run_sweep_batched(
    specs: list[tuple[str, str, int | None, str]],
    *,
    mode: str,
    max_workers: int | None,
) -> list[dict]:
    """Batched sweep: engine-tier points go through one SoA batch.

    Each engine point contributes two schedule requests — the default
    -window schedule behind ``CompiledLoop.cycles_per_element`` and the
    explicitly windowed one — matching the per-point path request for
    request, so cache statistics and ``ProfileScope`` totals stay
    bit-identical.  The default-window result pre-seeds the compiled
    loop's cached ``schedule`` property; ECM-tier points in a mixed
    sweep fall back to :func:`map_schedules`.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import get_toolchain
    from repro.engine.batch import schedule_batch
    from repro.kernels.catalog import build_kernel
    from repro.machine.microarch import A64FX, SKYLAKE_6140

    rows: list[dict | None] = [None] * len(specs)
    requests: list[tuple] = []
    pending: list[tuple[int, object, object, int | None]] = []
    ecm_idx: list[int] = []
    for i, (loop, tc_name, window, point_tier) in enumerate(specs):
        if point_tier not in TIERS:
            raise ValueError(
                f"tier must be one of {TIERS}, got {point_tier!r}"
            )
        if point_tier == "ecm":
            ecm_idx.append(i)
            continue
        tc = get_toolchain(tc_name)
        march = SKYLAKE_6140 if tc.target == "x86" else A64FX
        compiled = compile_loop(build_kernel(loop), tc, march)
        requests.append((march, compiled.stream))
        requests.append((march, compiled.stream, window))
        pending.append((i, compiled, march, window))

    results = schedule_batch(requests)
    for k, (i, compiled, march, window) in enumerate(pending):
        default_sched = results[2 * k]
        sched = results[2 * k + 1]
        # pre-seed the cached property so cycles_per_element reuses the
        # batch result instead of re-entering the scalar scheduler
        compiled.__dict__["schedule"] = default_sched
        rows[i] = {
            "loop": specs[i][0],
            "toolchain": compiled.toolchain.name,
            "march": march.name,
            "window": window if window is not None else march.window,
            "tier": "engine",
            "model_cycles_per_element": compiled.cycles_per_element,
            "cycles_per_iter": sched.cycles_per_iter,
            "cycles_per_element": sched.cycles_per_element,
            "ipc": sched.ipc,
            "bound": sched.bound,
        }
    if ecm_idx:
        ecm_rows = map_schedules(
            _schedule_point, [specs[i] for i in ecm_idx],
            mode=mode, max_workers=max_workers,
        )
        for i, row in zip(ecm_idx, ecm_rows):
            rows[i] = row
    return rows  # type: ignore[return-value]


def run_sweep(
    points: Iterable["SweepPoint | Sequence"],
    *,
    mode: str = "thread",
    max_workers: int | None = None,
    tier: str | None = None,
    batch: bool | None = None,
) -> list[dict]:
    """Predict every (loop, toolchain[, window]) point; one row each.

    Rows arrive in input order and carry the prediction statistics plus
    the codegen-adjusted ``model_cycles_per_element`` (the quantity the
    paper's Section IV tables quote).  ``tier`` overrides the tier of
    every point at once (``--tier ecm`` on the CLIs lands here); per
    -point tiers come from :attr:`SweepPoint.tier`.

    ``batch`` controls the batched SoA engine: ``None`` (default) uses
    it when at least :data:`BATCH_MIN_POINTS` engine-tier points are
    pending (unless ``REPRO_BATCH_SCHEDULE=off``), ``True`` forces it,
    ``False`` keeps the per-point event-driven path.  Rows, counters
    and cache statistics are identical either way.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    specs = [_normalize(p, tier) for p in points]
    n_engine = sum(1 for s in specs if s[3] == "engine")
    use_batch = _batch_enabled() if batch is None else batch
    if use_batch and (n_engine >= BATCH_MIN_POINTS or
                      (batch is True and n_engine > 0)):
        return _run_sweep_batched(
            specs, mode=mode, max_workers=max_workers
        )
    return map_schedules(
        _schedule_point, specs, mode=mode, max_workers=max_workers
    )
