"""Single-core kernel execution: compute cycles + memory hierarchy time.

:class:`KernelExecutor` combines the two halves of the machine model:

* the *compute* half — a :class:`~repro.engine.scheduler.ScheduleResult`
  giving steady-state cycles per loop iteration, which already includes
  L1-hit load latencies; and
* the *memory* half — analytic time for the kernel's
  :class:`~repro.machine.memory.MemoryStream` set beyond L1, from the
  :class:`~repro.machine.memory.MemoryHierarchy`.

The two overlap on every machine studied (hardware prefetch plus
out-of-order execution), so runtime per iteration is the **max** of the
compute and memory components — the standard roofline composition, applied
at loop granularity.  The max does not discard the loser: each run
attributes its time as a *bound* component (the max) and a *hidden*
component (the min, fully overlapped under the bound), and under an
active :class:`repro.perf.counters.ProfileScope` both sides are emitted
as ``exec.*`` counters together with per-level ``memory.levels.*`` byte
traffic.  This reproduces, e.g., why the choice of compiler stops
mattering once a loop's working set spills to HBM — the compute term is
still there, but it is hidden (and the counters show exactly how much of
it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro._util import require_positive
from repro.engine.scheduler import ScheduleResult
from repro.machine.memory import MemoryStream
from repro.machine.numa import PagePlacement
from repro.machine.systems import System
from repro.perf.counters import emit, emit_unique, is_profiling

__all__ = [
    "KernelRun",
    "KernelExecutor",
    "add_run_observer",
    "remove_run_observer",
]

#: opt-in run observers (see :func:`add_run_observer`); empty in normal
#: operation so kernel execution pays nothing for the hook point
_RUN_OBSERVERS: list = []


def add_run_observer(
    observer: "Callable[[KernelRun, ScheduleResult, tuple[MemoryStream, ...]], None]",
) -> None:
    """Register *observer* to receive every :class:`KernelRun` the
    executor produces, together with the schedule and memory streams it
    was composed from.

    Used by :mod:`repro.validate` to assert the roofline-composition
    invariants (``seconds == max(compute, memory)``, non-negative
    components) on every run without the executor importing the
    validator.
    """
    _RUN_OBSERVERS.append(observer)


def remove_run_observer(
    observer: "Callable[[KernelRun, ScheduleResult, tuple[MemoryStream, ...]], None]",
) -> None:
    """Unregister a run observer added by :func:`add_run_observer`."""
    _RUN_OBSERVERS.remove(observer)


@dataclass(frozen=True)
class KernelRun:
    """Outcome of executing a kernel on the model.

    ``seconds`` is the predicted wall time; the compute/memory split shows
    which side of the roofline bound the kernel sits on.
    """

    label: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    iters: float
    cycles_per_iter: float
    clock_ghz: float

    @property
    def bound(self) -> str:
        """The limiting resource: ``"memory"`` or ``"compute"``."""
        return "memory" if self.memory_seconds > self.compute_seconds else "compute"

    @property
    def hidden_seconds(self) -> float:
        """Time of the non-bound component, fully overlapped under the
        bound one (the counter-attributed split of the max composition)."""
        return min(self.compute_seconds, self.memory_seconds)

    @property
    def effective_cpi(self) -> float:
        """Effective cycles per loop iteration including memory stalls."""
        return self.seconds * self.clock_ghz * 1e9 / self.iters

    def gflops(self, flops_total: float) -> float:
        """Achieved GFLOP/s given the kernel's total flop count."""
        require_positive(flops_total, "flops_total")
        return flops_total / self.seconds / 1e9


class KernelExecutor:
    """Executes scheduled kernels on one core of a :class:`System`."""

    def __init__(self, system: System) -> None:
        self.system = system

    def run(
        self,
        sched: ScheduleResult,
        streams: Sequence[MemoryStream] = (),
        n_iters: float = 1.0,
        *,
        allcore: bool = False,
        active_cores_per_domain: int = 1,
        placement: PagePlacement = PagePlacement.FIRST_TOUCH,
        overhead_cycles: float = 0.0,
    ) -> KernelRun:
        """Predict the runtime of ``n_iters`` iterations of a kernel.

        Parameters
        ----------
        sched:
            Steady-state schedule of the loop body.
        streams:
            The kernel's memory streams; L1-resident streams contribute no
            extra time (their latency is already inside ``sched``).
        n_iters:
            Dynamic iteration count of the (vectorized) loop.
        allcore:
            Use the all-core clock (x86 AVX-512 license frequency).
        active_cores_per_domain:
            How many sibling cores contend for shared cache/DRAM (used by
            the OpenMP model; 1 for single-core runs).
        placement:
            NUMA page placement (restricts DRAM bandwidth under
            SINGLE_DOMAIN).
        overhead_cycles:
            One-off cycles added to the whole run (loop setup, function
            call overhead).
        """
        require_positive(n_iters, "n_iters")
        clock = (
            self.system.cpu.allcore_clock_ghz if allcore else self.system.cpu.clock_ghz
        )
        compute_s = (sched.cycles_per_iter * n_iters + overhead_cycles) / (clock * 1e9)

        hier = self.system.hierarchy
        placement_domains = (
            1 if placement is PagePlacement.SINGLE_DOMAIN else None
        )
        profiling = is_profiling()
        memory_s = 0.0
        for stream in streams:
            lvl = hier.serving_level(stream.footprint, active_cores_per_domain)
            stream_bytes = stream.bytes_per_iter * n_iters
            if lvl == 0:
                # L1-resident: latency already in the schedule
                if profiling:
                    lvl_name = hier.levels[0].name
                    emit(f"memory.levels.{lvl_name}.bytes_in", stream_bytes)
                continue
            bw = hier.effective_bw_gbs(
                stream,
                clock,
                active_cores_per_domain=active_cores_per_domain,
                placement_domains=placement_domains,
            )
            stream_s = stream_bytes / (bw * 1e9)
            memory_s += stream_s
            if profiling:
                lvl_name = (
                    hier.levels[lvl].name if lvl < len(hier.levels) else "dram"
                )
                emit(f"memory.levels.{lvl_name}.bytes_in", stream_bytes)
                if stream.is_store:
                    # write-allocate: the stored lines travel back out too
                    emit(f"memory.levels.{lvl_name}.bytes_out", stream_bytes)
                emit(f"exec.stream_seconds.{stream.name}", stream_s)
                emit_unique(f"exec.stream_bw_gbs.{stream.name}", bw)

        total = max(compute_s, memory_s)
        if profiling:
            emit("exec.runs", 1.0)
            emit("exec.compute_cycles",
                 sched.cycles_per_iter * n_iters + overhead_cycles)
            emit("exec.compute_seconds", compute_s)
            emit("exec.memory_seconds", memory_s)
            emit("exec.seconds", total)
            emit("exec.hidden_seconds", min(compute_s, memory_s))
            emit("exec.bound.memory" if memory_s > compute_s
                 else "exec.bound.compute", 1.0)
        run = KernelRun(
            label=sched.label,
            seconds=total,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            iters=n_iters,
            cycles_per_iter=sched.cycles_per_iter,
            clock_ghz=clock,
        )
        for observer in tuple(_RUN_OBSERVERS):
            observer(run, sched, tuple(streams))
        return run
