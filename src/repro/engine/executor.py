"""Single-core kernel execution: compute cycles + memory hierarchy time.

:class:`KernelExecutor` combines the two halves of the machine model:

* the *compute* half — a :class:`~repro.engine.scheduler.ScheduleResult`
  giving steady-state cycles per loop iteration, which already includes
  L1-hit load latencies; and
* the *memory* half — analytic time for the kernel's
  :class:`~repro.machine.memory.MemoryStream` set beyond L1, from the
  :class:`~repro.machine.memory.MemoryHierarchy`.

The two overlap on every machine studied (hardware prefetch plus
out-of-order execution), so runtime per iteration is the **max** of the
compute and memory components — the standard roofline composition, applied
at loop granularity.  This reproduces, e.g., why the choice of compiler
stops mattering once a loop's working set spills to HBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro._util import require_positive
from repro.engine.scheduler import ScheduleResult
from repro.machine.memory import MemoryStream
from repro.machine.numa import PagePlacement
from repro.machine.systems import System

__all__ = ["KernelRun", "KernelExecutor"]


@dataclass(frozen=True)
class KernelRun:
    """Outcome of executing a kernel on the model.

    ``seconds`` is the predicted wall time; the compute/memory split shows
    which side of the roofline bound the kernel sits on.
    """

    label: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    iters: float
    cycles_per_iter: float
    clock_ghz: float

    @property
    def bound(self) -> str:
        return "memory" if self.memory_seconds > self.compute_seconds else "compute"

    @property
    def effective_cpi(self) -> float:
        """Effective cycles per loop iteration including memory stalls."""
        return self.seconds * self.clock_ghz * 1e9 / self.iters

    def gflops(self, flops_total: float) -> float:
        require_positive(flops_total, "flops_total")
        return flops_total / self.seconds / 1e9


class KernelExecutor:
    """Executes scheduled kernels on one core of a :class:`System`."""

    def __init__(self, system: System) -> None:
        self.system = system

    def run(
        self,
        sched: ScheduleResult,
        streams: Sequence[MemoryStream] = (),
        n_iters: float = 1.0,
        *,
        allcore: bool = False,
        active_cores_per_domain: int = 1,
        placement: PagePlacement = PagePlacement.FIRST_TOUCH,
        overhead_cycles: float = 0.0,
    ) -> KernelRun:
        """Predict the runtime of ``n_iters`` iterations of a kernel.

        Parameters
        ----------
        sched:
            Steady-state schedule of the loop body.
        streams:
            The kernel's memory streams; L1-resident streams contribute no
            extra time (their latency is already inside ``sched``).
        n_iters:
            Dynamic iteration count of the (vectorized) loop.
        allcore:
            Use the all-core clock (x86 AVX-512 license frequency).
        active_cores_per_domain:
            How many sibling cores contend for shared cache/DRAM (used by
            the OpenMP model; 1 for single-core runs).
        placement:
            NUMA page placement (restricts DRAM bandwidth under
            SINGLE_DOMAIN).
        overhead_cycles:
            One-off cycles added to the whole run (loop setup, function
            call overhead).
        """
        require_positive(n_iters, "n_iters")
        clock = (
            self.system.cpu.allcore_clock_ghz if allcore else self.system.cpu.clock_ghz
        )
        compute_s = (sched.cycles_per_iter * n_iters + overhead_cycles) / (clock * 1e9)

        hier = self.system.hierarchy
        placement_domains = (
            1 if placement is PagePlacement.SINGLE_DOMAIN else None
        )
        memory_s = 0.0
        for stream in streams:
            lvl = hier.serving_level(stream.footprint, active_cores_per_domain)
            if lvl == 0:
                continue  # L1-resident: latency already in the schedule
            bw = hier.effective_bw_gbs(
                stream,
                clock,
                active_cores_per_domain=active_cores_per_domain,
                placement_domains=placement_domains,
            )
            memory_s += stream.bytes_per_iter * n_iters / (bw * 1e9)

        total = max(compute_s, memory_s)
        return KernelRun(
            label=sched.label,
            seconds=total,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            iters=n_iters,
            cycles_per_iter=sched.cycles_per_iter,
            clock_ghz=clock,
        )
