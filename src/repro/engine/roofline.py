"""Roofline-model helpers.

The roofline model bounds a kernel's attainable performance by
``min(peak_flops, intensity * bandwidth)``.  The executor uses it to
compose compute and memory time; the HPCC benchmarks and the reports use
it to express results as a percentage of theoretical peak, the convention
of the paper's Figures 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_positive
from repro.machine.systems import System

__all__ = ["Roofline"]


@dataclass(frozen=True)
class Roofline:
    """A two-ceiling roofline: peak GFLOP/s and one bandwidth ceiling."""

    peak_gflops: float
    bw_gbs: float

    def __post_init__(self) -> None:
        require_positive(self.peak_gflops, "peak_gflops")
        require_positive(self.bw_gbs, "bw_gbs")

    @classmethod
    def for_core(cls, system: System, allcore: bool = False) -> "Roofline":
        """Single-core roofline of *system* (streaming bandwidth cap)."""
        peak = system.cpu.peak_gflops_core(allcore=allcore)
        bw = min(system.hierarchy.stream_bw_core_gbs, system.hierarchy.dram_bw_gbs)
        return cls(peak_gflops=peak, bw_gbs=bw)

    @classmethod
    def for_node(cls, system: System) -> "Roofline":
        """Full-node roofline of *system*."""
        return cls(
            peak_gflops=system.peak_gflops_node,
            bw_gbs=system.hierarchy.node_dram_bw_gbs,
        )

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (flop/byte) where the ceilings meet."""
        return self.peak_gflops / self.bw_gbs

    def attainable_gflops(self, intensity: float) -> float:
        """Attainable GFLOP/s at *intensity* flop/byte."""
        require_positive(intensity, "intensity")
        return min(self.peak_gflops, intensity * self.bw_gbs)

    def fraction_of_peak(self, achieved_gflops: float) -> float:
        """Express an achieved rate as a fraction of the compute peak."""
        if achieved_gflops < 0:
            raise ValueError("achieved_gflops must be non-negative")
        return achieved_gflops / self.peak_gflops

    def time_seconds(self, flops: float, nbytes: float) -> float:
        """Roofline execution-time bound for a phase moving *nbytes* and
        computing *flops* (max of the compute and memory times)."""
        if flops < 0 or nbytes < 0:
            raise ValueError("flops and nbytes must be non-negative")
        t_compute = flops / (self.peak_gflops * 1e9) if flops else 0.0
        t_memory = nbytes / (self.bw_gbs * 1e9) if nbytes else 0.0
        return max(t_compute, t_memory)
