"""Batched structure-of-arrays scheduling engine.

Sweeping the paper's figures means scheduling many independent
(stream, toolchain, machine) points; the event-driven scheduler
(:mod:`repro.engine.scheduler`) simulates them one at a time through
enum-keyed dicts and a single ready heap.  This module schedules a whole
batch as one array program:

* **precompiled int-indexed tables** — per (march, body) the latencies,
  reciprocal throughputs, pipe-candidate sets and dataflow edges are
  resolved once into flat integer-indexed lists (:class:`_StreamTables`,
  LRU-cached), so the inner loop never hashes an enum or re-derives a
  dependency edge;
* **content-addressed deduplication** — requests with identical
  (march, stream, window) fingerprints simulate once and fan results
  back out per request (different toolchains frequently emit identical
  streams for the same loop);
* **array-stepped lanes** — each unique point is a `_Lane` advanced in
  bounded super-steps under a numpy active mask; lanes whose
  steady-state period detection fires fast-forward and retire from the
  batch early, so one slow lane never serializes the rest;
* **class-partitioned ready heaps** — ready instructions are grouped by
  pipe-candidate class; once a class has no pipe free this cycle it is
  skipped wholesale instead of re-popping and re-blocking each member
  (the dominant cost of the scalar path on pipe-bound kernels);
* **vectorized finalization** — steady-state statistics for all lanes
  (cycles/iter, occupancy, makespan) are computed with numpy in one
  shot.

Exactness contract: the batched path issues the *identical* dynamic
instruction sequence as :class:`~repro.engine.scheduler.PipelineScheduler`
— same issue cycles, same pipe choices (the pipe-candidate order of each
class is the canonical ``_canon_pipes`` order the scalar ``_best_pipe``
walks), same period detection keys and fast-forward shifts — and
therefore bit-identical :class:`~repro.engine.scheduler.ScheduleResult`
fields and ``pipeline.*`` counter payloads
(``tests/engine/test_batch.py`` enforces this against both the
event-driven path and the frozen seed oracle in
:mod:`repro.engine._reference`).

The schedule cache (:mod:`repro.engine.cache`) sits in front exactly as
it does for ``schedule_on``: batch requests look up, store and re-emit
the same entries and ``schedule_cache.hits``/``misses`` counters a
sequential run would.  Deduplicated duplicate requests behave like
cache hits (replayed, not re-simulated, hence not re-observed by
schedule observers).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import replace
from heapq import heapify, heappop, heappush
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.engine.scheduler import (
    _PIPES,
    _SCHEDULE_OBSERVERS,
    PipelineScheduler,
    ScheduleDivergence,
    ScheduleRecord,
    ScheduleResult,
    _dataflow_of,
    _timings_for,
    counter_payload,
)
from repro.machine.isa import Instruction, InstructionStream
from repro.machine.microarch import Microarch
from repro.perf.counters import emit, is_profiling

__all__ = ["schedule_batch", "clear_tables"]

_INF = float("inf")
_N_PIPES = len(_PIPES)
_PIPE_INDEX = {p: i for i, p in enumerate(_PIPES)}

#: cycle-loop passes one lane runs per super-step round before the
#: driver rotates to the next active lane
_STEP_BUDGET = 512


class _StreamTables:
    """Precompiled int-indexed tables for one (march, loop body).

    ``lat``/``rtp`` are per-body-position effective latency and
    reciprocal throughput (overrides resolved).  Positions are grouped
    into *pipe-candidate classes*: ``cls_of[pos]`` names the class and
    ``class_pipes[c]`` is the candidate pipe-id tuple, in the canonical
    ``_canon_pipes`` order the scalar scheduler's ``_best_pipe`` walks —
    so tie-breaking between equally-free pipes is bit-identical on any
    hash seed and across process boundaries (shard workers rebuild the
    same tables from pickled requests).  ``deps``/``consumers`` come
    from the memoized static dataflow.
    """

    __slots__ = ("lat", "rtp", "cls_of", "class_pipes", "deps", "consumers")

    def __init__(self, march: Microarch,
                 body: tuple[Instruction, ...]) -> None:
        timings = _timings_for(march, body)
        self.deps, self.consumers = _dataflow_of(body)
        self.lat = [t[0] for t in timings]
        self.rtp = [t[1] for t in timings]
        class_ids: dict[tuple[int, ...], int] = {}
        cls_of: list[int] = []
        class_pipes: list[tuple[int, ...]] = []
        for _lat, _rtp, pipes in timings:
            key = tuple(_PIPE_INDEX[p] for p in pipes)
            c = class_ids.get(key)
            if c is None:
                c = len(class_pipes)
                class_ids[key] = c
                class_pipes.append(key)
            cls_of.append(c)
        self.cls_of = cls_of
        self.class_pipes = tuple(class_pipes)

    # -- JSON round-trip for the shared disk layer ---------------------
    def to_json(self) -> dict:
        """Serialize the precompiled tables (floats round-trip exactly)."""
        return {
            "format": TABLES_FORMAT,
            "lat": self.lat,
            "rtp": self.rtp,
            "cls_of": self.cls_of,
            "class_pipes": [list(c) for c in self.class_pipes],
            "deps": [[list(e) for e in d] for d in self.deps],
            "consumers": [[list(e) for e in d] for d in self.consumers],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "_StreamTables":
        """Rebuild tables persisted by :meth:`to_json`."""
        if doc.get("format") != TABLES_FORMAT:
            raise ValueError(f"unknown tables format {doc.get('format')!r}")
        self = cls.__new__(cls)
        self.lat = [float(v) for v in doc["lat"]]
        self.rtp = [float(v) for v in doc["rtp"]]
        self.cls_of = [int(v) for v in doc["cls_of"]]
        self.class_pipes = tuple(
            tuple(int(p) for p in c) for c in doc["class_pipes"])
        self.deps = tuple(
            tuple((int(p), int(d)) for p, d in dep) for dep in doc["deps"])
        self.consumers = tuple(
            tuple((int(p), int(d)) for p, d in con)
            for con in doc["consumers"])
        return self


#: LRU of precompiled tables, keyed by ``id(march)`` with the march
#: pinned in the value so the id cannot be recycled while the entry lives
_TABLES: OrderedDict[
    tuple[int, tuple[Instruction, ...]], tuple[Microarch, _StreamTables]
] = OrderedDict()
_TABLES_CAP = 512
_TABLES_LOCK = threading.Lock()

#: disk format of persisted precompiled tables (bump on layout changes)
TABLES_FORMAT = "repro.batch-tables/1"


def _tables_disk_dir() -> Path | None:
    """Where shard workers share precompiled tables (``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    return Path(root) / "tables" if root else None


def _tables_disk_key(march: Microarch,
                     body: tuple[Instruction, ...]) -> str:
    """Content fingerprint of one table set (march timings + body)."""
    from repro.engine.cache import march_fingerprint

    # body-only digest (elements_per_iter does not shape the tables);
    # the march side reuses the schedule cache's fingerprint, which
    # already folds in the scheduler version and the full timing table
    body_rows = [
        (ins.op.value, ins.dest, list(ins.srcs), ins.carried,
         ins.latency_override, ins.rtput_override)
        for ins in body
    ]
    blob = json.dumps([TABLES_FORMAT, body_rows], separators=(",", ":"))
    return (march_fingerprint(march, 0)[:16] + "-"
            + hashlib.sha256(blob.encode()).hexdigest()[:32])


def _tables_for(march: Microarch,
                body: tuple[Instruction, ...]) -> _StreamTables:
    """Fetch (or build) the precompiled tables for (march, body).

    With ``REPRO_CACHE_DIR`` set, table sets are also persisted as
    versioned JSON so shard workers (and later processes) load them
    instead of re-deriving timings and dataflow edges; corrupt or
    stale-format files are silently rebuilt.
    """
    key = (id(march), body)
    with _TABLES_LOCK:
        hit = _TABLES.get(key)
        if hit is not None:
            _TABLES.move_to_end(key)
            return hit[1]
    disk_dir = _tables_disk_dir()
    path = (disk_dir / f"{_tables_disk_key(march, body)}.json"
            if disk_dir is not None else None)
    tables = None
    if path is not None:
        try:
            tables = _StreamTables.from_json(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError, TypeError):
            tables = None
    if tables is None:
        tables = _StreamTables(march, body)
        if path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(f".tmp{os.getpid()}")
                tmp.write_text(json.dumps(tables.to_json(), sort_keys=True))
                tmp.replace(path)
            except OSError:  # pragma: no cover - read-only cache dir
                pass
    with _TABLES_LOCK:
        _TABLES[key] = (march, tables)
        _TABLES.move_to_end(key)
        while len(_TABLES) > _TABLES_CAP:
            _TABLES.popitem(last=False)
    return tables


def clear_tables() -> None:
    """Drop the precompiled batch tables (cold-path benchmarks).

    Pure cache: clearing changes nothing but the time the next batch
    takes to rebuild its tables.  ``benchmarks/engine_bench.py`` calls
    this (plus :func:`repro.engine.scheduler.clear_memos`) before cold
    timings so memo warm-up cannot flatter them.
    """
    with _TABLES_LOCK:
        _TABLES.clear()


# ----------------------------------------------------------------------
def _state_key(cycle, retire, rob_limit, n_body, issued, completion,
               pending, ready_acc, pipe_free):
    """Int-pipe port of ``PipelineScheduler._state_key`` (same tuples)."""
    parts: list = [retire % n_body, rob_limit - retire]
    past: list[float] = []
    for pf in pipe_free:
        if pf <= cycle:
            past.append(pf)
    rank = {v: -1.0 - i for i, v in enumerate(sorted(set(past)))}
    for pf in pipe_free:
        parts.append(pf - cycle if pf > cycle else rank[pf])
    for d in range(retire, rob_limit):
        if issued[d]:
            c = completion[d]
            parts.append((1, c - cycle if c > cycle else 0.0))
        else:
            r = ready_acc[d]
            parts.append((0, pending[d], r - cycle if r > cycle else 0.0))
    return tuple(parts)


def _fast_forward(prior, k_iter, cycle, n_body, total, window, retire,
                  rob_limit, issued, completion, pending, ready_acc,
                  pipe_free, pipe_busy, pipe_touch, iter_last_issue,
                  waiting, heaps):
    """Int-pipe port of ``PipelineScheduler._fast_forward``.

    Identical arithmetic and shift discipline; the only structural
    difference is that the ready set lives in per-class heaps, which are
    shifted in place (a uniform +S shift preserves the heap property).
    """
    j_iter, c_j, busy_j = prior
    p = k_iter - j_iter
    D = cycle - c_j
    if p <= 0 or D <= 0.0:
        return None
    r0 = retire % n_body
    limit_iter = (total - window - r0) // n_body - 1
    q = (limit_iter - k_iter) // p
    if q <= 0:
        return None
    m = q * p
    S = m * n_body
    T = q * D
    lo, hi = retire, rob_limit
    for d in range(hi - 1, lo - 1, -1):
        nd = d + S
        issued[nd] = issued[d]
        c = completion[d]
        completion[nd] = c + T if c > cycle else c
        pending[nd] = pending[d]
        r = ready_acc[d]
        ready_acc[nd] = r + T if r > cycle else r
    for d in range(lo, lo + S):
        issued[d] = 1
        completion[d] = 0.0
    waiting[:] = [(r + T if r > cycle else r, d + S) for r, d in waiting]
    heapify(waiting)
    for h in heaps:
        if h:
            h[:] = [d + S for d in h]
    for i in range(_N_PIPES):
        if pipe_touch[i] >= c_j:
            pipe_free[i] += T
            pipe_touch[i] += T
        pipe_busy[i] += q * (pipe_busy[i] - busy_j[i])
    hi_it = (hi - 1) // n_body
    for it in range(hi_it, k_iter - 1, -1):
        v = iter_last_issue[it]
        iter_last_issue[it + m] = v + T if v > 0.0 else 0.0
    return retire + S, hi + S, cycle + T, S


class _Lane:
    """One (march, stream, window) point being simulated in the batch.

    Carries the full in-flight simulation state of the scalar
    ``_simulate`` loop, with pipes as integers (position in
    ``scheduler._PIPES``) and the ready heap partitioned by
    pipe-candidate class.  ``step`` advances up to a bounded number of
    cycle-loop passes so the batch driver can interleave lanes.
    """

    __slots__ = (
        "march", "stream", "window", "tables", "n_body", "total",
        "n_iters", "warmup", "issue_width", "completion", "issued",
        "pending", "ready_acc", "pipe_free", "pipe_busy", "pipe_touch",
        "iter_last_issue", "waiting", "heaps", "retire", "entered",
        "cycle", "remaining", "detect", "snapshots", "last_snap_iter",
        "events",
    )

    def __init__(self, march: Microarch, stream: InstructionStream,
                 window: int, tables: _StreamTables, record: bool,
                 n_iters: int) -> None:
        self.march = march
        self.stream = stream
        self.window = window
        self.tables = tables
        n_body = len(stream)
        total = n_body * n_iters
        self.n_body = n_body
        self.total = total
        self.n_iters = n_iters
        self.warmup = PipelineScheduler.WARMUP_ITERS
        self.issue_width = march.issue_width
        self.completion = [_INF] * total
        self.issued = bytearray(total)
        self.pending = [0] * total
        self.ready_acc = [0.0] * total
        self.pipe_free = [0.0] * _N_PIPES
        self.pipe_busy = [0.0] * _N_PIPES
        self.pipe_touch = [-_INF] * _N_PIPES
        self.iter_last_issue = [0.0] * n_iters
        self.waiting: list[tuple[float, int]] = []
        self.heaps: list[list[int]] = [[] for _ in tables.class_pipes]
        self.retire = 0
        self.entered = 0
        self.cycle = 0.0
        self.remaining = total
        # recording (for schedule observers) disables period detection so
        # every issue event is captured — identical results, more work
        self.events: list | None = [] if record else None
        self.detect = (not record) and n_iters > self.warmup
        self.snapshots: dict = {}
        self.last_snap_iter = 0

    # ------------------------------------------------------------------
    def step(self, budget: int) -> bool:
        """Run up to *budget* cycle-loop passes; True once fully retired.

        Bit-exact port of ``PipelineScheduler._simulate``: retire scan,
        window admission, period detection/fast-forward, waiting→ready
        promotion, then the greedy issue loop — pipe-candidate classes
        replace the single ready heap (a class with no pipe free this
        cycle is excluded wholesale; pipes only get busier within a
        cycle, so its members could never issue anyway).
        """
        tables = self.tables
        deps = tables.deps
        consumers = tables.consumers
        lats = tables.lat
        rtps = tables.rtp
        cls_of = tables.cls_of
        class_pipes = tables.class_pipes
        n_cls = len(class_pipes)
        n_body = self.n_body
        total = self.total
        window = self.window
        issue_width = self.issue_width
        completion = self.completion
        issued = self.issued
        pending = self.pending
        ready_acc = self.ready_acc
        pipe_free = self.pipe_free
        pipe_busy = self.pipe_busy
        pipe_touch = self.pipe_touch
        iter_last_issue = self.iter_last_issue
        waiting = self.waiting
        heaps = self.heaps
        retire = self.retire
        entered = self.entered
        cycle = self.cycle
        remaining = self.remaining
        detect = self.detect
        snapshots = self.snapshots
        last_snap_iter = self.last_snap_iter
        events = self.events
        warmup = self.warmup
        max_cycles = PipelineScheduler.MAX_CYCLES
        passes = 0

        while remaining and cycle < max_cycles and passes < budget:
            passes += 1
            while (retire < total and issued[retire]
                   and completion[retire] <= cycle):
                retire += 1
            rob_limit = retire + window
            if rob_limit > total:
                rob_limit = total

            # admit newly visible instructions into the window
            while entered < rob_limit:
                d = entered
                it, pos = divmod(d, n_body)
                pend = 0
                racc = 0.0
                for ppos, delta in deps[pos]:
                    sit = it - delta
                    if sit < 0:
                        continue
                    s = sit * n_body + ppos
                    if issued[s]:
                        c = completion[s]
                        if c > racc:
                            racc = c
                    else:
                        pend += 1
                pending[d] = pend
                ready_acc[d] = racc
                if pend == 0:
                    if racc <= cycle:
                        heappush(heaps[cls_of[pos]], d)
                    else:
                        heappush(waiting, (racc, d))
                entered += 1

            if detect:
                retire_iter = retire // n_body
                if retire_iter > last_snap_iter:
                    last_snap_iter = retire_iter
                    key = _state_key(
                        cycle, retire, rob_limit, n_body, issued,
                        completion, pending, ready_acc, pipe_free,
                    )
                    prior = snapshots.get(key)
                    if prior is None:
                        snapshots[key] = (retire_iter, cycle, pipe_busy[:])
                    elif retire_iter >= warmup:
                        skipped = _fast_forward(
                            prior, retire_iter, cycle, n_body, total,
                            window, retire, rob_limit, issued, completion,
                            pending, ready_acc, pipe_free, pipe_busy,
                            pipe_touch, iter_last_issue, waiting, heaps,
                        )
                        if skipped is not None:
                            retire, entered, cycle, dS = skipped
                            remaining -= dS
                            detect = False
                            continue

            # promote instructions whose ready time has arrived
            while waiting and waiting[0][0] <= cycle:
                d = heappop(waiting)[1]
                heappush(heaps[cls_of[d % n_body]], d)

            # classify non-empty classes: can anything of this class
            # issue this cycle?  (pre-filter only — the authoritative
            # check runs with current pipe state at selection time)
            limit = cycle + 1.0
            free_cls: list[int] = []
            blocked_cls: list[int] = []
            for c in range(n_cls):
                if heaps[c]:
                    for p in class_pipes[c]:
                        if pipe_free[p] < limit:
                            free_cls.append(c)
                            break
                    else:
                        blocked_cls.append(c)

            issued_now = 0
            progressed = False
            while free_cls and issued_now < issue_width:
                # oldest ready instruction among non-blocked classes
                best_c = free_cls[0]
                best_d = heaps[best_c][0]
                for c in free_cls[1:]:
                    hd = heaps[c][0]
                    if hd < best_d:
                        best_d = hd
                        best_c = c
                # smallest-backlog free pipe; first-in-order wins ties,
                # matching the scalar _best_pipe canonical-order walk
                best_p = -1
                best_f = limit
                for p in class_pipes[best_c]:
                    f = pipe_free[p]
                    if f < best_f:
                        best_f = f
                        best_p = p
                if best_p < 0:
                    free_cls.remove(best_c)
                    blocked_cls.append(best_c)
                    continue
                h = heaps[best_c]
                heappop(h)
                if not h:
                    free_cls.remove(best_c)
                d = best_d
                it, pos = divmod(d, n_body)
                issued[d] = 1
                comp = cycle + lats[pos]
                completion[d] = comp
                rtp = rtps[pos]
                pf = pipe_free[best_p]
                pipe_free[best_p] = (pf if pf > cycle else cycle) + rtp
                pipe_busy[best_p] += rtp
                pipe_touch[best_p] = cycle
                issued_now += 1
                remaining -= 1
                if cycle > iter_last_issue[it]:
                    iter_last_issue[it] = cycle
                progressed = True
                if events is not None:
                    events.append((d, cycle, _PIPES[best_p]))
                # wake consumers: pending drops, ready time accumulates
                for jpos, delta in consumers[pos]:
                    cons = (it + delta) * n_body + jpos
                    if cons >= entered or issued[cons]:
                        continue
                    if comp > ready_acc[cons]:
                        ready_acc[cons] = comp
                    pending[cons] -= 1
                    if pending[cons] == 0:
                        r = ready_acc[cons]
                        if r <= cycle:
                            cc = cls_of[jpos]
                            heappush(heaps[cc], cons)
                            if cc not in free_cls and cc not in blocked_cls:
                                for p in class_pipes[cc]:
                                    if pipe_free[p] < limit:
                                        free_cls.append(cc)
                                        break
                                else:
                                    blocked_cls.append(cc)
                        else:
                            heappush(waiting, (r, cons))

            if progressed:
                cycle += 1.0
            else:
                # stall horizon: next cycle anything can change
                pts = [0.0] * n_cls
                for c in range(n_cls):
                    mn = _INF
                    for p in class_pipes[c]:
                        f = pipe_free[p]
                        if f < mn:
                            mn = f
                    pts[c] = mn - 1.0
                horizon = _INF
                for c in range(n_cls):
                    pt = pts[c]
                    for d in heaps[c]:
                        r = ready_acc[d]
                        t = pt if pt > r else r
                        if t < horizon:
                            horizon = t
                for r, d in waiting:
                    pt = pts[cls_of[d % n_body]]
                    t = pt if pt > r else r
                    if t < horizon:
                        horizon = t
                if retire < rob_limit and issued[retire]:
                    c = completion[retire]
                    if c < horizon:
                        horizon = c
                floor = cycle + 1.0
                if horizon == _INF:
                    horizon = floor
                cycle = horizon if horizon > floor else floor

        self.retire = retire
        self.entered = entered
        self.cycle = cycle
        self.remaining = remaining
        self.detect = detect
        self.last_snap_iter = last_snap_iter
        if remaining and cycle >= max_cycles:
            stuck = retire
            while stuck < total and issued[stuck]:
                stuck += 1
            raise ScheduleDivergence(self.stream, window, stuck, n_body)
        return remaining == 0


# ----------------------------------------------------------------------
def _run_lanes(lanes: list[_Lane]) -> None:
    """Advance all lanes to completion in bounded super-steps.

    A numpy bool mask tracks which lanes are still active; each round
    gives every active lane ``_STEP_BUDGET`` cycle-loop passes.  Lanes
    whose period detection fires fast-forward and drop out early, so the
    mask shrinks fast and a slow (non-periodic) lane never serializes
    the converged ones behind it.
    """
    if not lanes:
        return
    active = np.ones(len(lanes), dtype=bool)
    while True:
        idxs = np.flatnonzero(active)
        if idxs.size == 0:
            return
        for i in idxs:
            if lanes[i].step(_STEP_BUDGET):
                active[i] = False


def _finalize(lanes: list[_Lane]) -> list[tuple[ScheduleResult, dict]]:
    """Vectorized steady-state statistics for all retired lanes.

    One numpy pass computes every lane's cycles/iter (with the front-end
    bound), makespan and pipe occupancy; the arithmetic matches the
    scalar ``_outcome`` operation-for-operation, so the float64 results
    are bit-identical and the payloads byte-identical.
    """
    if not lanes:
        return []
    n_iters = lanes[0].n_iters
    first = lanes[0].warmup
    last = n_iters - 1
    cycle_arr = np.array([ln.cycle for ln in lanes], dtype=np.float64)
    nbody = np.array([ln.n_body for ln in lanes], dtype=np.float64)
    width = np.array([ln.issue_width for ln in lanes], dtype=np.float64)
    busy = np.array([ln.pipe_busy for ln in lanes], dtype=np.float64)
    ili = np.array([ln.iter_last_issue for ln in lanes], dtype=np.float64)
    span = ili[:, last] - ili[:, first - 1]
    cpi = span / float(last - first + 1)
    cpi = np.maximum(cpi, nbody / width)  # front-end bound
    makespan = np.maximum(cycle_arr, 1.0)
    occ = np.minimum(1.0, busy / makespan[:, None])
    out: list[tuple[ScheduleResult, dict]] = []
    for i, lane in enumerate(lanes):
        cpi_i = float(cpi[i])
        mk = float(makespan[i])
        nb = lane.n_body
        occupancy = {p: float(occ[i, j]) for j, p in enumerate(_PIPES)}
        bound = PipelineScheduler._classify_bound(cpi_i, nb, occupancy)
        result = ScheduleResult(
            cycles_per_iter=cpi_i,
            elements_per_iter=lane.stream.elements_per_iter,
            instructions_per_iter=nb,
            ipc=nb / cpi_i if cpi_i else _INF,
            pipe_occupancy=occupancy,
            bound=bound,
            label=lane.stream.label,
        )
        busy_map = {p: float(busy[i, j]) for j, p in enumerate(_PIPES)}
        payload = counter_payload(
            lane.march, lane.stream, n_iters, nb * n_iters, mk, cpi_i,
            busy_map,
        )
        out.append((result, payload))
    return out


# ----------------------------------------------------------------------
class _BatchPlan:
    """Prepared batch: normalized requests, dedup map, cache prefetch.

    Produced by :func:`_plan_batch` and consumed by
    :func:`_complete_batch`; the jobs in between can be simulated
    in-process (:func:`_simulate_jobs`) or sharded across a process
    pool (:mod:`repro.engine.shard`) — the plan and completion phases
    run in the caller either way, so cache statistics and counter
    emissions are sequenced identically.
    """

    __slots__ = ("marches", "streams", "windows", "keys", "first_seen",
                 "entries", "job_keys", "cache_obj", "record", "n_iters")


def _plan_batch(requests: Sequence[tuple], cache: bool) -> _BatchPlan:
    """Validate, fingerprint, deduplicate and cache-prefetch *requests*."""
    from repro.engine.cache import (
        enabled,
        get_cache,
        march_fingerprint,
        stream_fingerprint,
    )

    plan = _BatchPlan()
    marches: list[Microarch] = []
    streams: list[InstructionStream] = []
    windows: list[int] = []
    for req in requests:
        march, stream, *rest = req
        window = rest[0] if rest and rest[0] is not None else march.window
        if window < 1:
            raise ValueError("window must be >= 1")
        if len(stream) == 0:
            raise ValueError("cannot schedule an empty instruction stream")
        stream.validate()
        marches.append(march)
        streams.append(stream)
        windows.append(window)

    mfp_memo: dict[tuple[int, int], str] = {}
    keys: list[tuple[str, str]] = []
    for march, stream, window in zip(marches, streams, windows):
        mk = (id(march), window)
        mfp = mfp_memo.get(mk)
        if mfp is None:
            mfp = march_fingerprint(march, window)
            mfp_memo[mk] = mfp
        keys.append((mfp, stream_fingerprint(stream)))

    cache_obj = get_cache() if (cache and enabled()) else None
    first_seen: dict[tuple[str, str], int] = {}
    entries: dict = {}
    job_keys: list[tuple[str, str]] = []
    for i, key in enumerate(keys):
        if key in first_seen:
            continue
        first_seen[key] = i
        if cache_obj is not None:
            entry = cache_obj.lookup(key)
            if entry is not None:
                entries[key] = entry
                continue
        job_keys.append(key)

    plan.marches = marches
    plan.streams = streams
    plan.windows = windows
    plan.keys = keys
    plan.first_seen = first_seen
    plan.entries = entries
    plan.job_keys = job_keys
    plan.cache_obj = cache_obj
    plan.record = bool(_SCHEDULE_OBSERVERS)
    plan.n_iters = (PipelineScheduler.WARMUP_ITERS
                    + PipelineScheduler.MEASURE_ITERS)
    return plan


def _plan_jobs(
    plan: _BatchPlan,
) -> list[tuple[Microarch, InstructionStream, int]]:
    """The unique (march, stream, window) points the plan must simulate."""
    out = []
    for key in plan.job_keys:
        i = plan.first_seen[key]
        out.append((plan.marches[i], plan.streams[i], plan.windows[i]))
    return out


def _simulate_jobs(
    jobs: list[tuple[Microarch, InstructionStream, int]],
    record: bool,
    n_iters: int,
) -> list[tuple[ScheduleResult, dict, tuple | None]]:
    """Simulate unique jobs as one lane set; (result, payload, events).

    This is the only phase shard workers execute remotely; it touches
    no process-global state beyond the pure table memos, so running
    job subsets in separate processes composes to the same output.
    """
    lanes = [
        _Lane(march, stream, window,
              _tables_for(march, tuple(stream.body)), record, n_iters)
        for march, stream, window in jobs
    ]
    _run_lanes(lanes)
    return [
        (result, payload,
         tuple(lane.events) if lane.events is not None else None)
        for lane, (result, payload) in zip(lanes, _finalize(lanes))
    ]


def _complete_batch(
    plan: _BatchPlan,
    sim_out: list[tuple[ScheduleResult, dict, tuple | None]],
) -> list[ScheduleResult]:
    """Store, observe and emit — in request submission order."""
    from repro.engine.cache import _Entry

    cache_obj = plan.cache_obj
    streams = plan.streams
    simulated: dict[tuple[str, str], tuple[ScheduleResult, dict]] = {}
    for key, (result, payload, _events) in zip(plan.job_keys, sim_out):
        simulated[key] = (result, payload)
        if cache_obj is not None:
            entry = _Entry(result=replace(result, label=""),
                           counters=payload)
            cache_obj.store(key, entry)
            plan.entries[key] = entry
    if plan.record:
        observers = tuple(_SCHEDULE_OBSERVERS)
        for key, (result, _payload, events) in zip(plan.job_keys, sim_out):
            i = plan.first_seen[key]
            rec = ScheduleRecord(
                march=plan.marches[i], window=plan.windows[i],
                stream=streams[i], n_iters=plan.n_iters,
                issues=events, result=result,
            )
            for observer in observers:
                observer(rec)

    profiling = is_profiling()
    results: list[ScheduleResult] = []
    for i, key in enumerate(plan.keys):
        if cache_obj is not None:
            if i == plan.first_seen[key]:
                entry = plan.entries[key]
                fresh = key in simulated
            else:
                # duplicates hit the cache like a sequential run would,
                # so hit statistics stay identical
                entry = cache_obj.lookup(key) or plan.entries[key]
                fresh = False
            if profiling:
                emit("schedule_cache.misses" if fresh
                     else "schedule_cache.hits", 1.0)
                for name, value in entry.counters.items():
                    emit(name, value)
            results.append(replace(entry.result, label=streams[i].label))
        else:
            result, payload = simulated[key]
            if profiling:
                for name, value in payload.items():
                    emit(name, value)
            results.append(replace(result, label=streams[i].label))
    return results


def schedule_batch(
    requests: Sequence[tuple],
    *,
    cache: bool = True,
) -> list[ScheduleResult]:
    """Schedule many ``(march, stream[, window])`` points as one batch.

    Returns one :class:`~repro.engine.scheduler.ScheduleResult` per
    request, in request order — each bit-identical to what
    ``schedule_on(march, stream, window, cache=cache)`` would return,
    including the ``pipeline.*`` counter payload and
    ``schedule_cache.hits``/``misses`` emissions under an active
    :class:`~repro.perf.counters.ProfileScope` and the hit/miss
    statistics of the process-wide schedule cache.

    Content-identical requests are deduplicated: the point simulates
    once and duplicates replay the stored outcome (relabeled per
    request), exactly like cache hits — and, like cache hits, replays
    are not re-observed by schedule observers.

    :func:`repro.engine.shard.schedule_batch_sharded` runs the same
    plan with the simulation phase fanned out over a process pool.
    """
    if not requests:
        return []
    plan = _plan_batch(requests, cache)
    sim_out = _simulate_jobs(_plan_jobs(plan), plan.record, plan.n_iters)
    return _complete_batch(plan, sim_out)
