"""The performance engine: pipeline scheduling, roofline composition,
single-kernel execution, and the OpenMP-like threading model.

* :mod:`repro.engine.scheduler` — replays an abstract instruction stream
  against a :class:`~repro.machine.microarch.Microarch` and reports
  steady-state cycles/iteration (the quantity behind every
  "cycles per element" number in the paper); event-driven with
  steady-state period extrapolation.
* :mod:`repro.engine.batch` — batched structure-of-arrays scheduling:
  many (march, stream, window) points deduplicated and simulated as one
  int-indexed array program, bit-identical to the scalar path
  (``schedule_batch``); sweeps of ≥ ``BATCH_MIN_POINTS`` engine points
  ride on it automatically.
* :mod:`repro.engine.cache` — content-addressed schedule cache
  (in-process LRU plus an opt-in on-disk JSON layer) keyed on march and
  stream fingerprints.
* :mod:`repro.engine.sweep` — parallel sweep runner with exact
  profiling-counter merging (``map_schedules`` / ``run_sweep``).
* :mod:`repro.engine.roofline` — peak/bandwidth ceilings and arithmetic
  intensity helpers.
* :mod:`repro.engine.executor` — combines compute cycles with memory-
  hierarchy time into a kernel runtime on a full :class:`System`.
* :mod:`repro.engine.openmp` — fork/join threading with NUMA placement,
  scheduling overheads and parallel-efficiency accounting (Figs. 4-6).

Every stage is instrumented with the PMU-style counters of
:mod:`repro.perf`: wrap any engine call in a
:class:`repro.perf.counters.ProfileScope` to collect per-pipe occupancy,
stall cycles, per-level memory traffic and compute-vs-memory attribution
(see ``docs/PROFILING.md``).
"""

from repro.engine.scheduler import (
    PipelineScheduler,
    ScheduleDivergence,
    ScheduleResult,
    schedule_on,
)
from repro.engine.batch import schedule_batch
from repro.engine.cache import ScheduleCache
from repro.engine.sweep import SweepPoint, map_schedules, run_sweep
from repro.engine.roofline import Roofline
from repro.engine.executor import KernelExecutor, KernelRun
from repro.engine.openmp import OpenMPModel, ParallelRun, RuntimeTraits

__all__ = [
    "PipelineScheduler",
    "ScheduleDivergence",
    "ScheduleResult",
    "schedule_on",
    "schedule_batch",
    "ScheduleCache",
    "SweepPoint",
    "map_schedules",
    "run_sweep",
    "Roofline",
    "KernelExecutor",
    "KernelRun",
    "OpenMPModel",
    "ParallelRun",
    "RuntimeTraits",
]
