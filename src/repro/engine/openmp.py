"""OpenMP-like fork/join threading model with NUMA placement.

This module turns a *work decomposition* (serial compute time, memory
traffic split into streaming and random components, number of parallel
regions, load imbalance) into multi-threaded runtimes — the machinery
behind the paper's full-node NPB comparison (Fig. 4), the parallel-
efficiency curves (Figs. 5-6), and the LULESH ``mt`` columns (Table II).

The mechanisms encoded:

* **Amdahl + imbalance** — the parallelizable compute shrinks as
  ``f/p * (1+imbalance)``; the serial remainder does not.
* **Bandwidth saturation** — memory time is bounded by the aggregate
  bandwidth the active threads can draw, which depends on how many NUMA
  domains host both threads *and pages*.  The Fujitsu runtime's default
  "allocate on CMG 0" policy squeezes all 48 threads through one CMG's
  controller; first-touch unlocks all four (Fig. 4's ``fujitsu`` vs
  ``fujitsu-first-touch`` bars).
* **Clock throttling** — x86 cores drop from boost to the all-core
  AVX-512 license clock once every core is busy, which alone caps
  Skylake's EP efficiency near 0.7 (Fig. 6); the A64FX clock is fixed.
* **Runtime overhead** — each parallel region pays a fork/join plus a
  barrier that grows with the thread count; OpenMP runtimes differ
  (the ARM runtime's higher costs reproduce its BT/UA full-node anomaly).

Under an active :class:`repro.perf.counters.ProfileScope`,
:meth:`OpenMPModel.run` emits ``omp.*`` counters: the seconds lost to
load imbalance, the fork/join vs barrier overhead split, and the
placement-attributed CMG-local vs remote DRAM bytes (the quantity that
separates Fig. 4's ``fujitsu`` and ``fujitsu-first-touch`` bars).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import require_positive
from repro.machine.numa import PagePlacement
from repro.machine.systems import System
from repro.perf.counters import emit, is_profiling

__all__ = ["RuntimeTraits", "WorkDecomposition", "ParallelRun", "OpenMPModel"]


@dataclass(frozen=True)
class RuntimeTraits:
    """Performance-relevant traits of one OpenMP runtime implementation."""

    name: str
    fork_join_us: float = 2.0          #: cost to enter/exit a parallel region
    barrier_us_log2: float = 0.5       #: barrier cost per log2(threads)
    default_placement: PagePlacement = PagePlacement.FIRST_TOUCH
    scheduling_imbalance: float = 0.0  #: extra fractional imbalance added

    def __post_init__(self) -> None:
        if self.fork_join_us < 0 or self.barrier_us_log2 < 0:
            raise ValueError("overheads must be non-negative")
        if self.scheduling_imbalance < 0:
            raise ValueError("scheduling_imbalance must be non-negative")

    def region_overhead_s(self, threads: int) -> float:
        """Overhead of one parallel region with *threads* threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads == 1:
            return 0.0
        return 1e-6 * (self.fork_join_us + self.barrier_us_log2 * math.log2(threads))


@dataclass(frozen=True)
class WorkDecomposition:
    """How one application run decomposes for the threading model.

    All quantities describe the *whole run* on one node.

    ``compute_serial_s`` is the single-core compute time (from the kernel
    executor / workload model).  ``contig_bytes`` and ``random_bytes`` are
    DRAM-level traffic (useful bytes) with streaming and random access
    patterns respectively.  ``parallel_fraction`` is the Amdahl fraction of
    the compute; ``regions`` the number of parallel regions entered during
    the run; ``imbalance`` the fractional load imbalance of the static
    schedule.
    """

    compute_serial_s: float
    contig_bytes: float = 0.0
    random_bytes: float = 0.0
    parallel_fraction: float = 1.0
    regions: float = 1.0
    imbalance: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.compute_serial_s, "compute_serial_s")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if self.contig_bytes < 0 or self.random_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        if self.regions < 0 or self.imbalance < 0:
            raise ValueError("regions and imbalance must be non-negative")


@dataclass(frozen=True)
class ParallelRun:
    """Predicted multi-threaded execution."""

    seconds: float
    threads: int
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    serial_seconds: float  # the 1-thread prediction, for efficiency

    @property
    def speedup(self) -> float:
        """Serial-over-parallel runtime ratio."""
        return self.serial_seconds / self.seconds

    @property
    def efficiency(self) -> float:
        """Parallel efficiency, the y-axis of the paper's Figs. 5-6."""
        return self.speedup / self.threads

    @property
    def bound(self) -> str:
        """The limiting resource: ``"memory"`` or ``"compute"``."""
        return "memory" if self.memory_seconds > self.compute_seconds else "compute"


class OpenMPModel:
    """Threading model for one system + OpenMP runtime pair."""

    def __init__(self, system: System, traits: RuntimeTraits) -> None:
        self.system = system
        self.traits = traits

    # ------------------------------------------------------------------
    def aggregate_bw_gbs(
        self, threads: int, placement: PagePlacement, pattern: str = "contig"
    ) -> float:
        """Usable aggregate DRAM bandwidth for *threads* under *placement*.

        Contiguous traffic is capped by per-thread streaming ability and
        the placement-limited controller bandwidth; random traffic is
        additionally limited by per-thread memory-level parallelism and
        line utilization (useful bytes per transferred line).
        """
        hier = self.system.hierarchy
        topo = self.system.topology
        raw = topo.aggregate_bandwidth_gbs(threads, placement)
        if pattern == "contig":
            return min(raw, threads * hier.stream_bw_core_gbs)
        # random: latency-bound per thread, line-utilization derated
        lat = hier.dram_latency_ns * topo.latency_factor(placement, threads)
        per_thread = hier.mlp * hier.line / lat
        util = 8.0 / hier.line
        return min(raw, threads * per_thread) * util

    # ------------------------------------------------------------------
    def run(
        self,
        work: WorkDecomposition,
        threads: int,
        placement: PagePlacement | None = None,
    ) -> ParallelRun:
        """Predict the wall time of *work* on *threads* threads.

        ``placement=None`` uses the runtime's default policy — this is how
        the Fujitsu runtime's CMG-0 behaviour enters the NPB results
        without the caller doing anything special.
        """
        if threads < 1 or threads > self.system.cores:
            raise ValueError(
                f"threads must be in [1, {self.system.cores}], got {threads}"
            )
        if placement is None:
            placement = self.traits.default_placement

        cpu = self.system.cpu
        # clock derating when the whole chip runs wide SIMD
        frac_busy = threads / self.system.cores
        clock_scale = 1.0
        if threads > 1:
            # linear interpolation between boost and all-core license clock
            target = (
                cpu.clock_ghz
                + (cpu.allcore_clock_ghz - cpu.clock_ghz) * frac_busy
            )
            clock_scale = cpu.clock_ghz / target

        f = work.parallel_fraction
        # a single thread has no partner to be imbalanced against
        imbalance = (
            work.imbalance + self.traits.scheduling_imbalance
            if threads > 1
            else 0.0
        )
        compute_s = work.compute_serial_s * clock_scale * (
            (1.0 - f) + f * (1.0 + imbalance) / threads
        )

        memory_s = 0.0
        if work.contig_bytes:
            bw = self.aggregate_bw_gbs(threads, placement, "contig")
            memory_s += work.contig_bytes / (bw * 1e9)
        if work.random_bytes:
            bw = self.aggregate_bw_gbs(threads, placement, "random")
            memory_s += work.random_bytes / (bw * 1e9)

        overhead_s = work.regions * self.traits.region_overhead_s(threads)
        total = max(compute_s, memory_s) + overhead_s

        if is_profiling():
            self._emit_counters(
                work, threads, placement, compute_s, memory_s, imbalance
            )

        serial = self._serial_seconds(work)
        return ParallelRun(
            seconds=total,
            threads=threads,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            overhead_seconds=overhead_s,
            serial_seconds=serial,
        )

    def _emit_counters(
        self,
        work: WorkDecomposition,
        threads: int,
        placement: PagePlacement,
        compute_s: float,
        memory_s: float,
        imbalance: float,
    ) -> None:
        """Emit ``omp.*`` PMU counters for one threaded prediction.

        Imbalance seconds are the excess of the imbalanced parallel
        compute over a perfectly balanced split of the same work; local
        vs remote bytes follow the page-placement policy (first-touch
        pages are all CMG-local, a single-domain policy leaves every
        thread outside domain 0 fetching remotely, interleaving spreads
        pages evenly over all domains).
        """
        f = work.parallel_fraction
        denom = (1.0 - f) + f * (1.0 + imbalance) / threads
        serial_equiv = compute_s / denom if denom else 0.0
        imbalance_s = serial_equiv * f * imbalance / threads
        emit("omp.parallel_runs", 1.0)
        emit("omp.threads", float(threads))
        emit("omp.regions", work.regions)
        emit("omp.compute_seconds", compute_s)
        emit("omp.memory_seconds", memory_s)
        emit("omp.imbalance_seconds", imbalance_s)
        if threads > 1:
            emit("omp.fork_join_seconds",
                 1e-6 * self.traits.fork_join_us * work.regions)
            emit("omp.barrier_seconds",
                 1e-6 * self.traits.barrier_us_log2
                 * math.log2(threads) * work.regions)
        total_bytes = work.contig_bytes + work.random_bytes
        act = self.system.topology.active_domains(threads)
        if placement is PagePlacement.FIRST_TOUCH:
            local_frac = 1.0
        elif placement is PagePlacement.SINGLE_DOMAIN:
            local_frac = 1.0 / act
        else:  # INTERLEAVE
            local_frac = 1.0 / self.system.topology.domains
        emit("omp.bytes.local", total_bytes * local_frac)
        emit("omp.bytes.remote", total_bytes * (1.0 - local_frac))

    def _serial_seconds(self, work: WorkDecomposition) -> float:
        """One-thread prediction with the same composition rules."""
        memory_s = 0.0
        if work.contig_bytes:
            bw = self.aggregate_bw_gbs(1, PagePlacement.FIRST_TOUCH, "contig")
            memory_s += work.contig_bytes / (bw * 1e9)
        if work.random_bytes:
            bw = self.aggregate_bw_gbs(1, PagePlacement.FIRST_TOUCH, "random")
            memory_s += work.random_bytes / (bw * 1e9)
        return max(work.compute_serial_s, memory_s)

    # ------------------------------------------------------------------
    def efficiency_curve(
        self,
        work: WorkDecomposition,
        thread_counts: list[int],
        placement: PagePlacement | None = None,
    ) -> dict[int, float]:
        """Parallel efficiency at each thread count (Figs. 5-6)."""
        return {
            p: self.run(work, p, placement).efficiency for p in thread_counts
        }
