"""Content-addressed schedule cache: memoize ``PipelineScheduler`` runs.

Every figure/table sweep in the reproduction re-schedules the same
(kernel x toolchain x window) points over and over — and different
toolchains frequently emit *identical* instruction streams for the same
loop.  This module keys schedules on content, not identity:

* **march fingerprint** — the microarch name, issue width, effective
  window, and the full op timing table (so editing a latency invalidates
  every dependent schedule);
* **stream fingerprint** — the instruction body (op, dest, srcs,
  carried, overrides) and ``elements_per_iter``.  The stream *label* is
  deliberately excluded: labels embed the toolchain name, and two
  compilers emitting the same instructions must share one cache entry.
  On a hit the cached result is relabeled for the requesting stream.

The in-process layer is a thread-safe LRU (:class:`ScheduleCache`); an
opt-in on-disk layer persists entries as versioned JSON under
``$REPRO_CACHE_DIR`` (or ``~/.cache/repro`` when enabled via
:func:`configure`), surviving across processes and sweep workers.

Cache hits must be observationally identical to cold runs: each entry
stores the schedule's ``pipeline.*`` counter payload, and a hit re-emits
it into every active :class:`~repro.perf.counters.ProfileScope`, so the
front-end slot identity (``issue_slots.total == used + stalled``) holds
exactly on the cached path too.  Hits and misses are themselves counted
under ``schedule_cache.*``.

Environment knobs
-----------------
``REPRO_CACHE_DIR``
    Enables the on-disk layer at the given directory.
``REPRO_SCHEDULE_CACHE=off``
    Disables caching entirely (every request recomputes).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.engine.scheduler import PipelineScheduler, ScheduleResult
from repro.machine.isa import InstructionStream, Pipe
from repro.machine.microarch import Microarch
from repro.perf.counters import emit, is_profiling

__all__ = [
    "ScheduleCache",
    "cached_schedule",
    "configure",
    "enabled",
    "get_cache",
    "march_fingerprint",
    "stream_fingerprint",
]

#: bump to invalidate all persisted entries when scheduler semantics move
SCHEDULER_VERSION = 2
DISK_FORMAT = "repro.schedule-cache/1"

_PIPE_BY_VALUE = {p.value: p for p in Pipe}


#: identity-keyed fingerprint memos: content hashing walks the whole
#: timing table / instruction body, but marches are module singletons
#: and batched sweeps share one stream object across every window of a
#: combo, so (id, pinned-object) lookups make repeat fingerprints O(1);
#: the pinned object is compared with ``is`` to survive id recycling
_MARCH_FP: dict[tuple[int, int], tuple[Microarch, str]] = {}
_STREAM_FP: dict[int, tuple[InstructionStream, str]] = {}
_FP_MEMO_CAP = 4096


def march_fingerprint(march: Microarch, window: int) -> str:
    """Digest of everything about *march* that the scheduler reads."""
    hit = _MARCH_FP.get((id(march), window))
    if hit is not None and hit[0] is march:
        return hit[1]
    timing_rows = sorted(
        (
            op.value,
            t.latency,
            t.rtput,
            sorted(p.value for p in t.pipes),
        )
        for op, t in march.timings.items()
    )
    blob = json.dumps(
        [
            SCHEDULER_VERSION,
            march.name,
            march.issue_width,
            window,
            PipelineScheduler.WARMUP_ITERS,
            PipelineScheduler.MEASURE_ITERS,
            timing_rows,
        ],
        separators=(",", ":"),
    )
    fp = hashlib.sha256(blob.encode()).hexdigest()
    if len(_MARCH_FP) >= _FP_MEMO_CAP:
        _MARCH_FP.clear()
    _MARCH_FP[(id(march), window)] = (march, fp)
    return fp


def stream_fingerprint(stream: InstructionStream) -> str:
    """Digest of the schedule-relevant stream content (label excluded)."""
    hit = _STREAM_FP.get(id(stream))
    if hit is not None and hit[0] is stream:
        return hit[1]
    rows = [
        (
            ins.op.value,
            ins.dest,
            list(ins.srcs),
            ins.carried,
            ins.latency_override,
            ins.rtput_override,
        )
        for ins in stream.body
    ]
    blob = json.dumps(
        [stream.elements_per_iter, rows], separators=(",", ":")
    )
    fp = hashlib.sha256(blob.encode()).hexdigest()
    if len(_STREAM_FP) >= _FP_MEMO_CAP:
        _STREAM_FP.clear()
    _STREAM_FP[id(stream)] = (stream, fp)
    return fp


@dataclass
class _Entry:
    """One cached schedule: the unlabeled result + its counter payload."""

    result: ScheduleResult
    counters: dict[str, float] = field(default_factory=dict)

    # -- JSON round-trip for the disk layer ----------------------------
    def to_json(self) -> dict:
        r = self.result
        return {
            "format": DISK_FORMAT,
            "result": {
                "cycles_per_iter": r.cycles_per_iter,
                "elements_per_iter": r.elements_per_iter,
                "instructions_per_iter": r.instructions_per_iter,
                "ipc": r.ipc,
                "pipe_occupancy": {
                    p.value: occ for p, occ in r.pipe_occupancy.items()
                },
                "bound": r.bound,
            },
            "counters": self.counters,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "_Entry":
        if doc.get("format") != DISK_FORMAT:
            raise ValueError(f"unknown cache format {doc.get('format')!r}")
        r = doc["result"]
        result = ScheduleResult(
            cycles_per_iter=r["cycles_per_iter"],
            elements_per_iter=r["elements_per_iter"],
            instructions_per_iter=r["instructions_per_iter"],
            ipc=r["ipc"],
            pipe_occupancy={
                _PIPE_BY_VALUE[v]: occ
                for v, occ in r["pipe_occupancy"].items()
            },
            bound=r["bound"],
            label="",
        )
        return cls(result=result, counters=dict(doc["counters"]))


class ScheduleCache:
    """Thread-safe LRU of schedules, with an optional on-disk layer."""

    def __init__(self, capacity: int = 4096,
                 disk_dir: str | os.PathLike | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self._entries: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_writes = 0

    # ------------------------------------------------------------------
    def peek(self, key: tuple[str, str]) -> bool:
        """True if *key* is resident in memory — no stats, no LRU touch.

        Observational probe for layers that report cache provenance
        (the serve tier's per-request ``cache: hit|miss`` field) without
        perturbing the hit/miss counters a real lookup would move.  The
        disk layer is deliberately not consulted: a disk read is not
        free, and provenance only needs to know whether the answer was
        already in this process.
        """
        with self._lock:
            return key in self._entries

    def lookup(self, key: tuple[str, str]) -> _Entry | None:
        """Fetch an entry (refreshing LRU order), or None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        entry = self._disk_read(key)
        with self._lock:
            if entry is not None:
                self.disk_hits += 1
                self.hits += 1
                self._put_locked(key, entry)
            else:
                if self.disk_dir is not None:
                    self.disk_misses += 1
                self.misses += 1
        return entry

    def store(self, key: tuple[str, str], entry: _Entry) -> None:
        """Insert an entry and mirror it to the disk layer if enabled."""
        with self._lock:
            self._put_locked(key, entry)
        self._disk_write(key, entry)

    def _put_locked(self, key: tuple[str, str], entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def clear(self, disk: bool = False) -> int:
        """Drop every in-memory entry (and persisted ones if *disk*).

        Returns the number of entries removed."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.hits = self.misses = 0
            self.disk_hits = self.disk_misses = self.disk_writes = 0
        if disk and self.disk_dir is not None and self.disk_dir.is_dir():
            for path in self.disk_dir.glob("*.json"):
                try:
                    path.unlink()
                    dropped += 1
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        return dropped

    def stats(self) -> dict[str, float]:
        """Hit/miss/size statistics as a plain dict.

        The ``disk_*`` counters observe the persistent layer alone:
        ``disk_hits``/``disk_misses`` count reads that fell through the
        memory LRU (misses only when a disk directory is configured, so
        memory-only caches report zeros), ``disk_writes`` counts entries
        mirrored out by :meth:`store`.
        """
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "disk_hits": float(self.disk_hits),
                "disk_misses": float(self.disk_misses),
                "disk_writes": float(self.disk_writes),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _disk_path(self, key: tuple[str, str]) -> Path | None:
        if self.disk_dir is None:
            return None
        march_fp, stream_fp = key
        return self.disk_dir / f"{march_fp[:16]}-{stream_fp[:32]}.json"

    def _disk_read(self, key: tuple[str, str]) -> _Entry | None:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            doc = json.loads(path.read_text())
            return _Entry.from_json(doc)
        except (OSError, ValueError, KeyError, TypeError):
            # missing, corrupt or stale-format entry: recompute
            return None

    def _disk_write(self, key: tuple[str, str], entry: _Entry) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(entry.to_json(), sort_keys=True))
            tmp.replace(path)
        except OSError:  # pragma: no cover - read-only cache dir etc.
            return
        with self._lock:
            self.disk_writes += 1


# ----------------------------------------------------------------------
_CACHE: ScheduleCache | None = None
_CACHE_LOCK = threading.Lock()


def get_cache() -> ScheduleCache:
    """The process-wide schedule cache (created on first use).

    Honors ``REPRO_CACHE_DIR`` for the on-disk layer at creation time.
    """
    global _CACHE
    with _CACHE_LOCK:
        if _CACHE is None:
            _CACHE = ScheduleCache(disk_dir=os.environ.get("REPRO_CACHE_DIR"))
        return _CACHE


def configure(capacity: int = 4096,
              disk_dir: str | os.PathLike | None = None) -> ScheduleCache:
    """Replace the process-wide cache (e.g. to enable the disk layer)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = ScheduleCache(capacity=capacity, disk_dir=disk_dir)
        return _CACHE


def _enabled() -> bool:
    return os.environ.get("REPRO_SCHEDULE_CACHE", "").lower() not in (
        "off", "0", "no", "false",
    )


def enabled() -> bool:
    """True when schedule caching is active (``REPRO_SCHEDULE_CACHE``).

    Public so other cache-fronting layers (the batched engine in
    :mod:`repro.engine.batch`) honor the same kill switch as
    :func:`cached_schedule`.
    """
    return _enabled()


def cached_schedule(march: Microarch, stream: InstructionStream,
                    window: int | None = None) -> ScheduleResult:
    """Schedule *stream* on *march* through the content-addressed cache.

    Equivalent to ``PipelineScheduler(march, window).steady_state(stream)``
    — including the ``pipeline.*`` counters emitted under profiling —
    but repeated requests for content-identical inputs are O(1).
    """
    scheduler = PipelineScheduler(march, window=window)
    if not _enabled():
        return scheduler.steady_state(stream)
    cache = get_cache()
    key = (
        march_fingerprint(march, scheduler.window),
        stream_fingerprint(stream),
    )
    entry = cache.lookup(key)
    if entry is None:
        result, payload = scheduler._outcome(stream)
        entry = _Entry(result=replace(result, label=""), counters=payload)
        cache.store(key, entry)
        if is_profiling():
            emit("schedule_cache.misses", 1.0)
    elif is_profiling():
        emit("schedule_cache.hits", 1.0)
    if is_profiling():
        for name, value in entry.counters.items():
            emit(name, value)
    return replace(entry.result, label=stream.label)
