"""repro — reproduction of "A64FX performance: experience on Ookami"
(CLUSTER 2021).

The package rebuilds the paper's entire experimental apparatus in Python:

* :mod:`repro.machine` — cycle-approximate models of the A64FX and the
  comparison CPUs (Skylake, KNL, EPYC): SVE/AVX instruction timing, cache
  and HBM hierarchy, CMG NUMA topology.
* :mod:`repro.compilers` — models of the five toolchains (Fujitsu, Cray,
  ARM, GNU, Intel): vectorization capabilities, math-library bindings,
  instruction selection, OpenMP runtime traits.
* :mod:`repro.engine` — pipeline scheduler, roofline composition, kernel
  executor and OpenMP threading model.
* :mod:`repro.mathlib` — real, ULP-validated vector math kernels
  (the Section IV FEXPA exponential, Newton sqrt/recip, sin, log, pow).
* :mod:`repro.kernels` — the Section III loop suite and the Monte Carlo
  example.
* :mod:`repro.npb` — NAS Parallel Benchmarks (EP/CG complete with
  official verification; BT/SP/LU/UA as real reduced-scale solvers) plus
  class-C workload signatures.
* :mod:`repro.apps.lulesh` — the LULESH Sedov-blast proxy app.
* :mod:`repro.hpcc` — DGEMM / HPL / FFT implementations and the
  library-performance catalog.
* :mod:`repro.bench` — the harness regenerating every table and figure.

Quick start::

    from repro import quickstart
    print(quickstart())
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.machine.systems import SYSTEMS, get_system
from repro.compilers.toolchains import TOOLCHAINS, get_toolchain


def quickstart() -> str:
    """One-paragraph smoke test: compile the paper's 'simple' loop with
    every toolchain and report modeled runtime ratios vs Skylake+icc."""
    from repro.bench.figures import fig1_loop_suite

    rows = fig1_loop_suite(loops=("simple",))
    lines = ["simple loop, runtime relative to Skylake + Intel:"]
    for row in rows:
        lines.append(f"  {row['toolchain']:<10} {row['rel_skylake']:.2f}x")
    return "\n".join(lines)


__all__ = [
    "SYSTEMS",
    "get_system",
    "TOOLCHAINS",
    "get_toolchain",
    "quickstart",
    "__version__",
]
