"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the available experiments (tables/figures).
``run <id> [...]``
    Regenerate one or more experiments as text tables (``run all`` for
    everything).
``asm <loop> <toolchain>``
    Show the pseudo-assembly + schedule for a catalogued kernel under
    one toolchain (suite loops simple/predicate/gather/scatter/
    short_gather/short_scatter, math loops recip/sqrt/exp/sin/pow, and
    the sparse/stencil workloads spmv_crs/spmv_sell/stencil2d/
    stencil3d).
``pipeline <loop> <toolchain>``
    Render the pipeline diagram of the compiled loop's first iterations.
``profile <loop> [toolchain] [--system KEY] [--n LEN] [--json]``
    Run a catalogued kernel under the PMU-style counter subsystem and
    print an ECM-style breakdown (``--json`` for the machine-readable
    profile document; see docs/PROFILING.md).
``ecm <kernel> [toolchain] [--system KEY] [--n LEN] [--json] [--compare]``
    Predict a catalogued kernel analytically with the ECM model — no
    simulation — and print the in-core bounds, per-boundary traffic and
    composed runtime (``--compare`` also simulates and prints the
    deviation; ``--json`` emits the ``repro.ecm/1`` document; see
    docs/MODELING.md).
``verify``
    Run the real-numerics headline checks (NPB EP/CG class S official
    verification, HPL residual, FFT parity, Sedov exponent).
``bench [--quick] [--tier engine|ecm|grid|all] [--out PATH]``
    Time the prediction tiers (cold seed scheduler, event-driven fast
    path, batched SoA engine, warm schedule cache, parallel sweep,
    analytical ECM evaluation, and the ``grid`` tier's >=512-point
    mixed-tier sweep with sharded batches and vectorized ECM) over the
    Fig. 1/2 kernel set and write ``BENCH_engine.json``; the full run
    exits non-zero if equivalence or a speedup floor regresses (see
    docs/PERFORMANCE.md).
``serve [--stdin] [--host H] [--port N] [--batch-window MS] [--max-batch N] [--workers N]``
    Run the persistent prediction server: JSON requests over a local
    socket (default; binds 127.0.0.1 and prints the address) or
    stdin/stdout lines (``--stdin``), answered with versioned
    ``repro.serve/1`` responses.  Concurrent requests coalesce into
    micro-batches over the shared schedule/compile caches; identical
    in-flight requests deduplicate (see docs/SERVING.md).
``serve-bench [--quick] [--out PATH]``
    Measure serve throughput against a no-reuse one-request-at-a-time
    baseline at several concurrency levels and write
    ``BENCH_serve.json``; exits non-zero if the speedup floor is
    breached or any batched response deviates from the baseline.
``cache [show|clear] [--json]``
    Inspect or drop the content-addressed schedule and compile caches
    (clears the schedule cache's on-disk layer too when
    ``REPRO_CACHE_DIR`` is set); ``show --json`` emits the versioned
    ``repro.cache/1`` document including the serve-session counters.
``validate [--seeds N] [--no-bands] [--json] [--out PATH]``
    Run the model-validation passes (IR verifier, scheduler invariants,
    counter reconciliation, differential fuzz vs the golden reference,
    machine-spec fuzz, paper-band scoring) and emit a
    ``repro.validate/1`` report; exits nonzero on any violation (see
    docs/VALIDATION.md).
``sweep [--kernels K,..] [--toolchains T,..] [--machine KEY] [--tier engine|ecm] [--json]``
    Sweep kernels x toolchains through the prediction tiers and print
    one row per point; ``--machine`` retargets every point at a preset
    machine from the declarative catalog instead of the default
    A64FX/Skylake pairing (see docs/MACHINES.md).
``sweep --grid [--machines N] [--kernels K,..] [--json] [--out PATH]``
    Design-space sweep: enumerate N hypothetical machines (vector
    length x issue width x bandwidth x window x L2 around the A64FX,
    Skylake and RVV presets), score every (machine, kernel) point
    through the batched tiers and report throughput plus the winning
    machine per kernel as a ``repro.sweep-grid/1`` document.
``machines [list | show <key> [--json] | report [--json] [--out PATH]]``
    Inspect the declarative machine catalog: ``list`` the preset specs,
    ``show`` one spec (``--json`` emits the ``repro.machine-spec/1``
    document), or build the per-kernel crossover ``report`` — which
    preset wins each paper kernel and the A64FX-over-Skylake ratio
    (``repro.machines/1``; see docs/MACHINES.md).
"""

from __future__ import annotations

import sys

from repro.bench.harness import EXPERIMENTS, EXTRAS
from repro.bench.report import render_experiment

_USAGE = __doc__ or ""


def _cmd_list() -> int:
    print("paper artifacts:")
    for exp_id, (title, _) in EXPERIMENTS.items():
        print(f"  {exp_id:<10} {title}")
    print("extras:")
    for exp_id, (title, _) in EXTRAS.items():
        print(f"  {exp_id:<10} {title}")
    return 0


def _cmd_run(args: list[str]) -> int:
    ids = list(EXPERIMENTS) if args == ["all"] or not args else args
    if args == ["extras"]:
        ids = list(EXTRAS)
    for exp_id in ids:
        if exp_id not in EXPERIMENTS and exp_id not in EXTRAS:
            print(f"unknown experiment {exp_id!r}; try 'python -m repro list'")
            return 1
        print(render_experiment(exp_id))
    return 0


def _resolve_loop_toolchain(args: list[str]):
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import get_toolchain
    from repro.kernels.catalog import ALL_KERNEL_NAMES, build_kernel
    from repro.machine.microarch import A64FX, SKYLAKE_6140

    if len(args) != 2:
        print("usage: python -m repro asm|pipeline <loop> <toolchain>")
        print(f"loops: {', '.join(ALL_KERNEL_NAMES)}")
        return None
    loop_name, tc_name = args
    tc = get_toolchain(tc_name)
    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
    return compile_loop(build_kernel(loop_name), tc, march)


def _cmd_asm(args: list[str]) -> int:
    from repro.compilers.asm import render_compiled_loop

    compiled = _resolve_loop_toolchain(args)
    if compiled is None:
        return 1
    print(render_compiled_loop(compiled))
    return 0


def _cmd_pipeline(args: list[str]) -> int:
    from repro.engine.trace import render_pipeline_diagram

    compiled = _resolve_loop_toolchain(args)
    if compiled is None:
        return 1
    print(render_pipeline_diagram(compiled.march, compiled.stream))
    return 0


def _parse_kernel_flags(cmd: str, args: list[str]):
    """Shared ``<kernel> [toolchain] [--system KEY] [--n LEN]`` parsing
    for the ``profile`` and ``ecm`` commands.

    Returns ``(kernel, toolchain, system, n)`` or ``None`` after
    printing a usage/error message (bare flags like ``--json`` must be
    stripped by the caller first).
    """
    from repro.kernels.catalog import ALL_KERNEL_NAMES

    system: str | None = None
    n: int | None = None
    positional: list[str] = []
    i = 0
    while i < len(args):
        if args[i] == "--system" and i + 1 < len(args):
            system = args[i + 1]
            i += 2
        elif args[i] == "--n" and i + 1 < len(args):
            try:
                n = int(args[i + 1])
            except ValueError:
                print(f"{cmd} failed: --n expects an integer, "
                      f"got {args[i + 1]!r}")
                return None
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if not positional or len(positional) > 2:
        print(f"usage: python -m repro {cmd} <kernel> [toolchain] "
              f"[--system KEY] [--n LEN] [--json]")
        print(f"kernels: {', '.join(ALL_KERNEL_NAMES)}")
        return None
    toolchain = positional[1] if len(positional) == 2 else "fujitsu"
    return positional[0], toolchain, system, n


def _cmd_profile(args: list[str]) -> int:
    from repro.perf.profile import profile_kernel
    from repro.perf.report import profile_to_json_str

    as_json = "--json" in args
    parsed = _parse_kernel_flags(
        "profile", [a for a in args if a != "--json"]
    )
    if parsed is None:
        return 1
    kernel, toolchain, system, n = parsed
    try:
        prof = profile_kernel(kernel, toolchain, system, n=n)
    except (KeyError, ValueError) as exc:
        print(f"profile failed: {exc}")
        return 1
    print(profile_to_json_str(prof.to_json()) if as_json else prof.render())
    return 0


def _cmd_ecm(args: list[str]) -> int:
    import json

    from repro.ecm import (
        compare_kernel, predict_kernel, prediction_to_json,
        render_comparison, render_prediction,
    )

    as_json = "--json" in args
    compare = "--compare" in args
    parsed = _parse_kernel_flags(
        "ecm", [a for a in args if a not in ("--json", "--compare")]
    )
    if parsed is None:
        return 1
    kernel, toolchain, system, n = parsed
    try:
        if compare:
            cmp = compare_kernel(kernel, toolchain, system, n=n)
            pred = cmp.prediction
        else:
            cmp = None
            pred = predict_kernel(kernel, toolchain, system, n=n)
    except (KeyError, ValueError) as exc:
        print(f"ecm failed: {exc}")
        return 1
    if as_json:
        doc = prediction_to_json(pred)
        if cmp is not None:
            doc["engine_seconds"] = cmp.engine_seconds
            doc["deviation"] = cmp.deviation
            doc["tolerance"] = cmp.tolerance
            doc["within_tolerance"] = cmp.within_tolerance
        print(json.dumps(doc, indent=2))
    else:
        print(render_prediction(pred))
        if cmp is not None:
            print()
            print(render_comparison(cmp))
    return 0 if cmp is None or cmp.within_tolerance else 1


def _cmd_verify() -> int:
    import numpy as np

    from repro.apps.lulesh.hydro import SedovSpherical
    from repro.hpcc.fft import fft_benchmark
    from repro.hpcc.hpl import hpl_benchmark
    from repro.npb.cg import run_cg
    from repro.npb.ep import run_ep

    failures = 0

    ep = run_ep("S")
    print(f"NPB EP class S  : {'OK' if ep.verified else 'FAIL'} "
          f"(sx={ep.sx:.9e})")
    failures += not ep.verified

    cg = run_cg("S")
    print(f"NPB CG class S  : {'OK' if cg.verified else 'FAIL'} "
          f"(zeta={cg.zeta:.10f})")
    failures += not cg.verified

    hpl = hpl_benchmark(n=256)
    print(f"HPL residual    : {'OK' if hpl.passed else 'FAIL'} "
          f"({hpl.scaled_residual:.4f} < 16)")
    failures += not hpl.passed

    fft = fft_benchmark(log2n=14)
    ok = fft.max_error < 1e-12
    print(f"FFT vs numpy    : {'OK' if ok else 'FAIL'} "
          f"(max rel err {fft.max_error:.2e})")
    failures += not ok

    s = SedovSpherical(nzones=150)
    ts, rs = [], []
    for t_end in (0.02, 0.04, 0.08, 0.16, 0.32):
        s.run(t_end)
        ts.append(s.t)
        rs.append(s.shock_radius())
    slope = float(np.polyfit(np.log(ts), np.log(rs), 1)[0])
    ok = abs(slope - 0.4) < 0.04
    print(f"Sedov exponent  : {'OK' if ok else 'FAIL'} "
          f"(t^{slope:.3f} vs t^0.400)")
    failures += not ok

    return 1 if failures else 0


def _cmd_bench(args: list[str]) -> int:
    from repro.bench.enginebench import main as bench_main

    return bench_main(args)


def _parse_serve_flags(args: list[str]) -> dict:
    """Parse ``serve`` flags -> option dict (raises ValueError)."""
    opts: dict = {"stdin": False, "host": "127.0.0.1", "port": 0,
                  "batch_window_ms": 2.0, "max_batch": 64, "workers": None}
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--stdin":
            opts["stdin"] = True
            i += 1
        elif a in ("--host", "--port", "--batch-window", "--max-batch",
                   "--workers"):
            if i + 1 >= len(args):
                raise ValueError(f"{a} expects a value")
            value = args[i + 1]
            try:
                if a == "--host":
                    opts["host"] = value
                elif a == "--port":
                    opts["port"] = int(value)
                elif a == "--batch-window":
                    opts["batch_window_ms"] = float(value)
                    if opts["batch_window_ms"] < 0:
                        raise ValueError
                else:
                    opts["max_batch" if a == "--max-batch"
                         else "workers"] = int(value)
                    if int(value) < 1:
                        raise ValueError
            except ValueError:
                raise ValueError(
                    f"{a} expects a valid value, got {value!r}") from None
            i += 2
        else:
            raise ValueError(f"unknown serve argument {a!r}")
    return opts


def _cmd_serve(args: list[str]) -> int:
    from repro.serve import PredictionServer, TcpFrontend, serve_stdio

    try:
        opts = _parse_serve_flags(args)
    except ValueError as exc:
        print(f"serve failed: {exc}")
        print("usage: python -m repro serve [--stdin] [--host H] "
              "[--port N] [--batch-window MS] [--max-batch N] "
              "[--workers N]")
        return 1
    server = PredictionServer(
        batch_window=opts["batch_window_ms"] / 1e3,
        max_batch=opts["max_batch"],
        workers=opts["workers"],
    )
    with server:
        if opts["stdin"]:
            return serve_stdio(server)
        with TcpFrontend(server, opts["host"], opts["port"]) as frontend:
            host, port = frontend.address
            print(f"serving repro.serve/1 on {host}:{port}", flush=True)
            try:
                frontend.wait()
            except KeyboardInterrupt:
                pass
    return 0


def _cmd_serve_bench(args: list[str]) -> int:
    from repro.serve.bench import main as serve_bench_main

    return serve_bench_main(args)


def _cmd_cache(args: list[str]) -> int:
    import json

    from repro.compilers.cache import get_compile_cache
    from repro.engine.cache import get_cache

    as_json = "--json" in args
    args = [a for a in args if a != "--json"]
    action = args[0] if args else "show"
    cache = get_cache()
    compile_cache = get_compile_cache()
    if action == "clear":
        dropped = cache.clear(disk=True)
        compiled_dropped = compile_cache.clear()
        print(f"schedule cache cleared ({dropped} entries dropped)")
        print(f"compile cache cleared ({compiled_dropped} entries dropped)")
        return 0
    if action == "show":
        if as_json:
            from repro.serve.server import session_stats

            doc = {
                "format": "repro.cache/1",
                "schedule": {
                    **{k: int(v) for k, v in cache.stats().items()},
                    "disk_dir": (str(cache.disk_dir)
                                 if cache.disk_dir else None),
                },
                "compile": {
                    k: int(v) for k, v in compile_cache.stats().items()
                },
                "serve": session_stats(),
            }
            print(json.dumps(doc, indent=2))
            return 0
        stats = cache.stats()
        print("schedule cache:")
        for name in ("entries", "capacity", "hits", "misses",
                     "disk_hits", "disk_misses", "disk_writes"):
            print(f"  {name:<11} {int(stats[name])}")
        disk = cache.disk_dir or "(memory only; set REPRO_CACHE_DIR to persist)"
        print(f"  disk dir    {disk}")
        cstats = compile_cache.stats()
        print("compile cache:")
        for name in ("entries", "capacity", "hits", "misses"):
            print(f"  {name:<11} {int(cstats[name])}")
        return 0
    print(f"unknown cache action {action!r}; "
          "usage: python -m repro cache [show|clear]")
    return 1


def _cmd_validate(args: list[str]) -> int:
    import json

    from repro.validate import validate_all

    try:
        seeds, bands, as_json, out = _parse_validate_flags(args)
    except ValueError as exc:
        print(f"validate failed: {exc}")
        print("usage: python -m repro validate [--seeds N] [--no-bands] "
              "[--json] [--out PATH]")
        return 1
    report = validate_all(seeds=seeds, bands=bands)
    doc = report.to_json()
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    print(json.dumps(doc, indent=2) if as_json else report.render())
    return 0 if report.ok else 1


def _parse_validate_flags(
    args: list[str],
) -> tuple[int, bool, bool, str | None]:
    """Parse ``validate`` flags -> (seeds, bands, as_json, out)."""
    seeds = 25
    bands = True
    as_json = False
    out: str | None = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--seeds" and i + 1 < len(args):
            try:
                seeds = int(args[i + 1])
            except ValueError:
                raise ValueError(f"--seeds expects an integer, "
                                 f"got {args[i + 1]!r}") from None
            i += 2
        elif a == "--no-bands":
            bands = False
            i += 1
        elif a == "--json":
            as_json = True
            i += 1
        elif a == "--out" and i + 1 < len(args):
            out = args[i + 1]
            i += 2
        else:
            raise ValueError(f"unknown argument {a!r}")
    return seeds, bands, as_json, out


def _parse_sweep_flags(args: list[str]) -> dict:
    """Parse ``sweep`` flags -> option dict (raises ValueError)."""
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.catalog import ALL_KERNEL_NAMES
    from repro.machine.spec import MACHINE_SPECS

    opts: dict = {"grid": False, "machines": 1000, "kernels": None,
                  "toolchains": None, "machine": None, "tier": "engine",
                  "json": False, "out": None}
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--grid":
            opts["grid"] = True
            i += 1
        elif a == "--json":
            opts["json"] = True
            i += 1
        elif a in ("--machines", "--kernels", "--toolchains", "--machine",
                   "--tier", "--out"):
            if i + 1 >= len(args):
                raise ValueError(f"{a} expects a value")
            value = args[i + 1]
            if a == "--machines":
                try:
                    opts["machines"] = int(value)
                except ValueError:
                    raise ValueError(
                        f"--machines expects an integer, got {value!r}"
                    ) from None
                if opts["machines"] < 1:
                    raise ValueError("--machines expects >= 1")
            elif a == "--kernels":
                kernels = [k for k in value.split(",") if k]
                for k in kernels:
                    if k not in ALL_KERNEL_NAMES:
                        raise ValueError(f"unknown kernel {k!r}")
                opts["kernels"] = kernels
            elif a == "--toolchains":
                tcs = [t.lower() for t in value.split(",") if t]
                for t in tcs:
                    if t not in TOOLCHAINS:
                        raise ValueError(f"unknown toolchain {t!r}")
                opts["toolchains"] = tcs
            elif a == "--machine":
                if value.lower() not in MACHINE_SPECS:
                    raise ValueError(
                        f"unknown machine {value!r}; "
                        f"available: {', '.join(sorted(MACHINE_SPECS))}")
                opts["machine"] = value.lower()
            elif a == "--tier":
                if value not in ("engine", "ecm"):
                    raise ValueError(
                        f"unknown tier {value!r} (expected engine or ecm)")
                opts["tier"] = value
            else:
                opts["out"] = value
            i += 2
        else:
            raise ValueError(f"unknown sweep argument {a!r}")
    if opts["grid"] and (opts["machine"] or opts["toolchains"]):
        raise ValueError(
            "--grid enumerates its own machines/toolchains; "
            "--machine/--toolchains only apply to preset sweeps")
    if not opts["grid"] and opts["out"] is not None:
        raise ValueError("--out only applies to --grid")
    return opts


def _cmd_sweep(args: list[str]) -> int:
    import json

    try:
        opts = _parse_sweep_flags(args)
    except ValueError as exc:
        print(f"sweep failed: {exc}")
        print("usage: python -m repro sweep [--kernels K,..] "
              "[--toolchains T,..] [--machine KEY] [--tier engine|ecm] "
              "[--json]\n       python -m repro sweep --grid "
              "[--machines N] [--kernels K,..] [--json] [--out PATH]")
        return 1

    if opts["grid"]:
        from repro.machine.grid import DEFAULT_KERNELS, run_machine_grid

        doc = run_machine_grid(
            machines=opts["machines"],
            kernels=tuple(opts["kernels"] or DEFAULT_KERNELS),
        )
        if opts["out"] is not None:
            with open(opts["out"], "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {opts['out']}")
        if opts["json"]:
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        print(f"design-space sweep ({doc['machines']} machines x "
              f"{len(doc['kernels'])} kernels)")
        print(f"  ecm points    : {doc['ecm_points']}"
              + (f"  (+{doc['skipped']} machine/kernel points skipped)"
                 if doc["skipped"] else ""))
        print(f"  engine points : {doc['engine_points']}")
        print(f"  throughput    : {doc['points_per_sec']:.0f} pts/s "
              f"({doc['seconds'] * 1e3:.1f} ms)")
        print("  best machine per kernel:")
        for kernel, win in doc["winners"].items():
            print(f"    {kernel:<10} {win['machine']:<28} "
                  f"[{win['toolchain']}]  "
                  f"{win['cycles_per_element']:8.3f} cyc/elem  "
                  f"({win['bound']}-bound)")
        return 0

    from repro.compilers.toolchains import TOOLCHAINS
    from repro.engine.sweep import run_sweep

    kernels = opts["kernels"] or ["simple", "gather", "sqrt", "exp"]
    toolchains = opts["toolchains"]
    if toolchains is None:
        if opts["machine"] is not None:
            from repro.machine.grid import _toolchains_for
            from repro.machine.spec import get_machine_spec

            spec = get_machine_spec(opts["machine"])
            toolchains = [tc.name for tc in _toolchains_for(
                spec.build_core())]
        else:
            toolchains = list(TOOLCHAINS)
    points = [(k, tc, None, opts["tier"], opts["machine"])
              for k in kernels for tc in toolchains]
    try:
        rows = run_sweep(points)
    except (KeyError, ValueError) as exc:
        print(f"sweep failed: {exc}")
        return 1
    if opts["json"]:
        print(json.dumps(rows, indent=2))
        return 0
    header = (f"{'loop':<14}{'toolchain':<10}{'march':<26}"
              f"{'cyc/elem':>10}  {'ipc':>5}  bound")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['loop']:<14}{row['toolchain']:<10}"
              f"{row['march']:<26}{row['cycles_per_element']:>10.3f}  "
              f"{row['ipc']:>5.2f}  {row['bound']}")
    return 0


def _cmd_machines(args: list[str]) -> int:
    import json

    from repro.machine.spec import MACHINE_SPECS

    as_json = "--json" in args
    rest = [a for a in args if a != "--json"]
    action = rest[0] if rest else "list"

    if action == "list" and len(rest) <= 1:
        if as_json:
            print("machines failed: --json applies to show/report")
            return 1
        print(f"{'key(s)':<24}{'isa':<8}{'bits':>5}{'cores':>6}  system")
        seen: dict[int, list[str]] = {}
        for key, spec in MACHINE_SPECS.items():
            seen.setdefault(id(spec), []).append(key)
        for spec_id, keys in seen.items():
            spec = MACHINE_SPECS[keys[0]]
            system = (spec.system_name or spec.name) if spec.has_system \
                else "(core-only)"
            print(f"{','.join(keys):<24}{spec.isa:<8}"
                  f"{spec.vector_bits:>5}{spec.cores:>6}  {system}")
        return 0

    if action == "show":
        if len(rest) != 2:
            print("usage: python -m repro machines show <key> [--json]")
            return 1
        from repro.machine.spec import get_machine_spec

        try:
            spec = get_machine_spec(rest[1])
        except KeyError as exc:
            print(f"machines failed: {exc.args[0]}")
            return 1
        if as_json:
            print(spec.to_json())
            return 0
        march = spec.build_core()
        print(f"{spec.name}  ({rest[1]})")
        print(f"  isa            {spec.isa} x {spec.vector_bits} bits "
              f"({march.lanes_f64} f64 lanes)")
        print(f"  clock          {spec.clock_ghz} GHz "
              f"(all-core {spec.allcore_clock_ghz} GHz)")
        print(f"  issue/window   {spec.issue_width}-wide, "
              f"{spec.window}-entry")
        print(f"  peak/core      {march.peak_gflops_core():.1f} GF/s")
        print(f"  mem overlap    {spec.mem_overlap}")
        if spec.has_system:
            system = spec.build_system()
            print(f"  cores          {spec.cores}")
            print(f"  node stream bw {system.node_stream_bw_gbs:.0f} GB/s")
            print(f"  system         {system.name}")
        else:
            print("  system         (core-only preset)")
        return 0

    if action == "report":
        from repro.machine.crossover import crossover_report, render

        out = None
        tail = rest[1:]
        if tail and tail[0] == "--out":
            if len(tail) != 2:
                print("machines failed: --out expects a path")
                return 1
            out = tail[1]
        elif tail:
            print(f"machines failed: unknown report argument {tail[0]!r}")
            return 1
        report = crossover_report()
        if out is not None:
            with open(out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {out}")
        print(json.dumps(report, indent=2, sort_keys=True) if as_json
              else render(report))
        return 0

    print(f"unknown machines action {action!r}; usage: python -m repro "
          "machines [list | show <key> [--json] | report [--json] "
          "[--out PATH]]")
    return 1


#: command registry: name -> (takes_args, handler); handlers that take no
#: arguments reject any (parse_command enforces this statically)
COMMANDS: dict[str, tuple[bool, object]] = {
    "list": (False, _cmd_list),
    "run": (True, _cmd_run),
    "asm": (True, _cmd_asm),
    "pipeline": (True, _cmd_pipeline),
    "profile": (True, _cmd_profile),
    "ecm": (True, _cmd_ecm),
    "verify": (False, _cmd_verify),
    "bench": (True, _cmd_bench),
    "serve": (True, _cmd_serve),
    "serve-bench": (True, _cmd_serve_bench),
    "cache": (True, _cmd_cache),
    "validate": (True, _cmd_validate),
    "sweep": (True, _cmd_sweep),
    "machines": (True, _cmd_machines),
}


def parse_command(argv: list[str]) -> str | None:
    """Statically validate a CLI invocation without executing it.

    Returns the command name (``None`` for the bare/help invocation), or
    raises ``ValueError`` describing what is wrong.  This is what keeps
    every ``python -m repro ...`` line quoted in the documentation
    honest: ``tests/test_docs.py`` runs each one through here.
    """
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.catalog import ALL_KERNEL_NAMES

    if not argv or argv[0] in ("-h", "--help", "help"):
        return None
    cmd, *rest = argv
    if cmd not in COMMANDS:
        raise ValueError(f"unknown command {cmd!r}")
    takes_args, _handler = COMMANDS[cmd]
    if not takes_args and rest:
        raise ValueError(f"{cmd} takes no arguments, got {rest}")
    if cmd == "run":
        for exp_id in rest:
            if exp_id not in EXPERIMENTS and exp_id not in EXTRAS \
                    and exp_id not in ("all", "extras"):
                raise ValueError(f"unknown experiment {exp_id!r}")
    elif cmd in ("asm", "pipeline"):
        if len(rest) != 2:
            raise ValueError(f"{cmd} expects <loop> <toolchain>")
        loop, tc = rest
        if loop not in ALL_KERNEL_NAMES:
            raise ValueError(f"unknown loop {loop!r}")
        if tc.lower() not in TOOLCHAINS:
            raise ValueError(f"unknown toolchain {tc!r}")
    elif cmd in ("profile", "ecm"):
        flags = ("--json",) if cmd == "profile" else ("--json", "--compare")
        positional = []
        i = 0
        while i < len(rest):
            if rest[i] in ("--system", "--n"):
                if i + 1 >= len(rest):
                    raise ValueError(f"{rest[i]} expects a value")
                if rest[i] == "--n":
                    int(rest[i + 1])
                i += 2
            elif rest[i] in flags:
                i += 1
            elif rest[i].startswith("-"):
                raise ValueError(f"unknown flag {rest[i]!r}")
            else:
                positional.append(rest[i])
                i += 1
        if not positional or len(positional) > 2:
            raise ValueError(f"{cmd} expects <kernel> [toolchain]")
        if positional[0] not in ALL_KERNEL_NAMES:
            raise ValueError(f"unknown kernel {positional[0]!r}")
        if len(positional) == 2 and positional[1].lower() not in TOOLCHAINS:
            raise ValueError(f"unknown toolchain {positional[1]!r}")
    elif cmd == "bench":
        i = 0
        while i < len(rest):
            if rest[i] == "--quick":
                i += 1
            elif rest[i] == "--out":
                if i + 1 >= len(rest):
                    raise ValueError("--out expects a path")
                i += 2
            elif rest[i] == "--tier":
                if i + 1 >= len(rest):
                    raise ValueError("--tier expects a value")
                if rest[i + 1] not in ("engine", "ecm", "grid", "all"):
                    raise ValueError(
                        f"unknown tier {rest[i + 1]!r} "
                        f"(expected engine, ecm, grid or all)")
                i += 2
            else:
                raise ValueError(f"unknown bench argument {rest[i]!r}")
    elif cmd == "serve":
        _parse_serve_flags(rest)
    elif cmd == "serve-bench":
        i = 0
        while i < len(rest):
            if rest[i] == "--quick":
                i += 1
            elif rest[i] == "--out":
                if i + 1 >= len(rest):
                    raise ValueError("--out expects a path")
                i += 2
            else:
                raise ValueError(
                    f"unknown serve-bench argument {rest[i]!r}")
    elif cmd == "cache":
        actions = [a for a in rest if a != "--json"]
        if actions and (len(actions) > 1
                        or actions[0] not in ("show", "clear")):
            raise ValueError(f"cache expects [show|clear], got {rest}")
        if "--json" in rest and actions == ["clear"]:
            raise ValueError("cache --json only applies to show")
    elif cmd == "validate":
        _parse_validate_flags(rest)
    elif cmd == "sweep":
        _parse_sweep_flags(rest)
    elif cmd == "machines":
        from repro.machine.spec import MACHINE_SPECS

        actions = [a for a in rest if a != "--json"]
        action = actions[0] if actions else "list"
        if action == "list":
            if len(actions) > 1:
                raise ValueError(f"machines list takes no arguments, "
                                 f"got {actions[1:]}")
            if "--json" in rest:
                raise ValueError("machines --json applies to show/report")
        elif action == "show":
            if len(actions) != 2:
                raise ValueError("machines show expects <key>")
            if actions[1].lower() not in MACHINE_SPECS:
                raise ValueError(f"unknown machine {actions[1]!r}")
        elif action == "report":
            tail = actions[1:]
            if tail and (tail[0] != "--out" or len(tail) != 2):
                raise ValueError(
                    f"unknown report arguments {tail!r} "
                    "(expected [--out PATH])")
        else:
            raise ValueError(f"unknown machines action {action!r}")
    return cmd


def main(argv: list[str]) -> int:
    """Dispatch one CLI invocation; returns the process exit code."""
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_USAGE)
        return 0
    cmd, *rest = argv
    if cmd == "list":
        return _cmd_list()
    if cmd == "run":
        return _cmd_run(rest)
    if cmd == "asm":
        return _cmd_asm(rest)
    if cmd == "pipeline":
        return _cmd_pipeline(rest)
    if cmd == "profile":
        return _cmd_profile(rest)
    if cmd == "ecm":
        return _cmd_ecm(rest)
    if cmd == "verify":
        return _cmd_verify()
    if cmd == "bench":
        return _cmd_bench(rest)
    if cmd == "serve":
        return _cmd_serve(rest)
    if cmd == "serve-bench":
        return _cmd_serve_bench(rest)
    if cmd == "cache":
        return _cmd_cache(rest)
    if cmd == "validate":
        return _cmd_validate(rest)
    if cmd == "sweep":
        return _cmd_sweep(rest)
    if cmd == "machines":
        return _cmd_machines(rest)
    print(f"unknown command {cmd!r}\n{_USAGE}")
    return 1


if __name__ == "__main__":
    try:
        raise SystemExit(main(sys.argv[1:]))
    except BrokenPipeError:
        # output piped into head/less that exited early: not an error
        raise SystemExit(0) from None
