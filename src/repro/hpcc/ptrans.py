"""HPCC PTRANS: parallel matrix transpose (A = A^T + B).

The seventh HPCC component: a network-stressing global transpose whose
single-node form exercises exactly the strided-access behaviour the
paper's cache discussion covers (reading columns of a row-major matrix
touches one element per line — catastrophic on 256-byte lines).

* :func:`transpose_blocked` — the real cache-blocked transpose kernel
  (tile-wise, the standard optimization), validated against ``.T``.
* :func:`ptrans_rate_model` — single/multi-node GB/s: on one node it is
  a bandwidth-bound sweep; across nodes it is a pairwise exchange of
  sub-blocks through the MPI stack model.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import require_positive
from repro.hpcc.interconnect import get_mpi_stack
from repro.machine.systems import System, get_system

__all__ = ["transpose_naive", "transpose_blocked", "ptrans_rate_model"]


def transpose_naive(a: np.ndarray) -> np.ndarray:
    """Materialized row-by-row transpose (the cache-hostile order)."""
    n, m = a.shape
    out = np.empty((m, n), dtype=a.dtype)
    for i in range(n):
        out[:, i] = a[i, :]
    return out


def transpose_blocked(a: np.ndarray, block: int = 64) -> np.ndarray:
    """Cache-blocked transpose: both the read and the write stay within
    a tile that fits in cache — the line-utilization fix."""
    require_positive(block, "block")
    n, m = a.shape
    out = np.empty((m, n), dtype=a.dtype)
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        for j0 in range(0, m, block):
            j1 = min(j0 + block, m)
            out[j0:j1, i0:i1] = a[i0:i1, j0:j1].T
    return out


def ptrans_rate_model(
    system: System | str, nodes: int = 1, mpi_stack: str = "openmpi"
) -> float:
    """Modeled PTRANS rate in GB/s (matrix bytes transposed per second).

    Weak scaling with the HPCC convention ``N = 20000 * sqrt(nodes)``.
    Single node: the blocked transpose moves each element twice (read +
    write-allocate+write ~ 3 transfers of 8 B) at stream bandwidth.
    Multi node: all-to-all block exchange through the MPI stack, which
    dominates — PTRANS is HPCC's interconnect stress test.
    """
    require_positive(nodes, "nodes")
    sys_ = get_system(system) if isinstance(system, str) else system
    n = int(20000 * math.sqrt(nodes))
    matrix_bytes = 8.0 * n * n

    local_bytes = 3.0 * matrix_bytes / nodes       # per-node memory traffic
    mem_s = local_bytes / (sys_.node_stream_bw_gbs * 1e9)
    if nodes == 1:
        return matrix_bytes / mem_s / 1e9

    stack = get_mpi_stack(mpi_stack)
    # each node exchanges all but 1/nodes of its slab with the others
    slab = matrix_bytes / nodes * (1.0 - 1.0 / nodes)
    comm_s = stack.effective_comm_s(
        stack.alltoall_time_s(sys_.interconnect, slab, nodes)
    )
    return matrix_bytes / (mem_s + comm_s) / 1e9
