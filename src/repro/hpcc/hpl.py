"""HPL: real blocked LU factorization + the Figure 9A/9B rate model.

The numeric half is a right-looking blocked LU with partial pivoting —
the algorithm HPL implements — validated by the benchmark's own scaled
residual test ``||Ax-b||_inf / (eps * ||A|| * ||x|| * n) < 16``.

The modeling half:

* single node (Fig. 9A): HPL reaches the library's DGEMM efficiency
  derated by panel-factorization overhead, which *grows* with DGEMM
  speed (the faster the update, the larger the non-GEMM fraction) —
  this is why Fujitsu BLAS wins DGEMM by 14x but HPL by "nearly ten
  times".
* multi node (Fig. 9B): weak scaling with ``N = 20000 * sqrt(Nn)``;
  panel broadcasts ride the MPI stack model, so Fujitsu MPI's poor
  InfiniBand efficiency flattens its curve while ARMPL + Open MPI keeps
  scaling — the paper's observation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro._util import require_positive
from repro.hpcc.dgemm import dgemm_flops
from repro.hpcc.interconnect import get_mpi_stack
from repro.hpcc.libraries import Library, dgemm_efficiency, get_library
from repro.machine.systems import System, get_system

__all__ = [
    "lu_factor_blocked",
    "lu_solve",
    "hpl_benchmark",
    "hpl_rate_gflops",
    "HplResult",
    "PANEL_OVERHEAD_K",
]

#: panel-overhead coupling: hpl_eff = dgemm_eff / (1 + K * dgemm_eff)
PANEL_OVERHEAD_K = 0.35
#: per-panel communication beyond the column broadcast (row swaps and the
#: U block-row propagation move comparable volume)
HPL_COMM_FACTOR = 4.0


def lu_factor_blocked(
    a: np.ndarray, block: int = 32
) -> tuple[np.ndarray, np.ndarray]:
    """Right-looking blocked LU with partial pivoting.

    Returns ``(lu, piv)`` in LAPACK compact form: L (unit diagonal) below,
    U on/above the diagonal; ``piv[k]`` is the row swapped with row ``k``.
    """
    require_positive(block, "block")
    lu = np.array(a, dtype=np.float64, copy=True)
    n = lu.shape[0]
    if lu.shape != (n, n):
        raise ValueError("matrix must be square")
    piv = np.arange(n)

    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # --- unblocked panel factorization with partial pivoting --------
        for k in range(k0, k1):
            p = k + int(np.argmax(np.abs(lu[k:, k])))
            if lu[p, k] == 0.0:
                raise np.linalg.LinAlgError("matrix is singular")
            if p != k:
                lu[[k, p], :] = lu[[p, k], :]
                piv[k], piv[p] = piv[p], piv[k]
            lu[k + 1 :, k] /= lu[k, k]
            if k + 1 < k1:
                lu[k + 1 :, k + 1 : k1] -= np.outer(
                    lu[k + 1 :, k], lu[k, k + 1 : k1]
                )
        if k1 == n:
            break
        # --- U block row: solve L11 * U12 = A12 (unit lower tri) ---------
        l11 = lu[k0:k1, k0:k1]
        for r in range(1, k1 - k0):
            lu[k0 + r, k1:] -= l11[r, :r] @ lu[k0 : k0 + r, k1:]
        # --- trailing update: the DGEMM that dominates HPL ----------------
        lu[k1:, k1:] -= lu[k1:, k0:k1] @ lu[k0:k1, k1:]
    return lu, piv


def lu_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` from the compact factorization."""
    n = lu.shape[0]
    x = np.asarray(b, dtype=np.float64)[piv].copy()
    # forward substitution (unit lower triangular)
    for k in range(1, n):
        x[k] -= lu[k, :k] @ x[:k]
    # back substitution
    for k in range(n - 1, -1, -1):
        x[k] = (x[k] - lu[k, k + 1 :] @ x[k + 1 :]) / lu[k, k]
    return x


@dataclass(frozen=True)
class HplResult:
    """One HPL run: verification + achieved rate."""

    n: int
    seconds: float
    gflops: float
    scaled_residual: float

    @property
    def passed(self) -> bool:
        """The official HPL acceptance threshold."""
        return self.scaled_residual < 16.0


def hpl_benchmark(n: int = 256, block: int = 32, seed: int = 0) -> HplResult:
    """Factor and solve a random dense system, HPL-style."""
    require_positive(n, "n")
    rng = np.random.default_rng(seed)
    a = rng.uniform(-0.5, 0.5, (n, n))
    b = rng.uniform(-0.5, 0.5, n)
    t0 = time.perf_counter()
    lu, piv = lu_factor_blocked(a, block=block)
    x = lu_solve(lu, piv, b)
    dt = time.perf_counter() - t0
    eps = np.finfo(np.float64).eps
    r = np.linalg.norm(a @ x - b, np.inf)
    scaled = r / (eps * np.linalg.norm(a, np.inf) * np.linalg.norm(x, np.inf) * n)
    flops = (2.0 / 3.0) * n**3 + 2.0 * n**2
    return HplResult(
        n=n, seconds=dt, gflops=flops / dt / 1e9, scaled_residual=float(scaled)
    )


# ---------------------------------------------------------------------------
# Figure 9A/9B model
# ---------------------------------------------------------------------------


def hpl_efficiency(library: Library | str, system: System | str) -> float:
    """Fraction of peak HPL reaches with *library* on *system*."""
    lib = get_library(library) if isinstance(library, str) else library
    sys_ = get_system(system) if isinstance(system, str) else system
    d = dgemm_efficiency(lib, sys_)
    return d / (1.0 + PANEL_OVERHEAD_K * d)


def hpl_rate_gflops(
    system: System | str,
    library: Library | str,
    nodes: int = 1,
    block: int = 232,
) -> float:
    """Modeled HPL rate (GFLOP/s, aggregate) for Figures 9A/9B.

    Weak scaling: ``N = 20000 * sqrt(nodes)``.  Per-node compute rides
    the single-node efficiency; panel broadcasts ride the library's MPI
    stack over the system's fabric.
    """
    require_positive(nodes, "nodes")
    sys_ = get_system(system) if isinstance(system, str) else system
    lib = get_library(library) if isinstance(library, str) else library

    n = int(20000 * math.sqrt(nodes))
    flops = (2.0 / 3.0) * float(n) ** 3
    node_rate = sys_.peak_gflops_node * hpl_efficiency(lib, sys_) * 1e9
    compute_s = flops / (node_rate * nodes)
    if nodes == 1:
        return flops / compute_s / 1e9

    stack = get_mpi_stack(lib.mpi_stack)
    n_panels = math.ceil(n / block)
    # each panel (n x block) is broadcast across the process columns
    panel_bytes = 8.0 * n * block / math.sqrt(nodes)
    comm_s = stack.effective_comm_s(
        HPL_COMM_FACTOR
        * n_panels
        * stack.broadcast_time_s(sys_.interconnect, panel_bytes, nodes)
    )
    return flops / (compute_s + comm_s) / 1e9
