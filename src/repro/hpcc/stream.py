"""HPCC STREAM: the bandwidth benchmark behind the paper's claims.

The paper's Section VII concentrates on DGEMM/HPL/FFT, but its central
architectural argument — "the trend of A64FX's good performance in
memory-bound apps can be attributed to higher memory bandwidth" — is a
STREAM statement: 1 TB/s of HBM2 against ~200 GB/s of DDR4.  HPCC ships
STREAM as one of its seven components; this module completes the suite:

* the four real kernels (Copy/Scale/Add/Triad), runnable and verified;
* the per-system bandwidth model (single core and full node), from the
  same memory hierarchy the NPB figures use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro._util import require_positive
from repro.machine.systems import System, get_system

__all__ = ["StreamResult", "run_stream", "stream_model_gbs", "STREAM_KERNELS"]

_SCALAR = 3.0

#: kernel name -> (operation, bytes moved per element incl. write-allocate)
STREAM_KERNELS: Mapping[str, tuple[Callable, float]] = {
    # 2 arrays touched, store write-allocates: 3 transfers of 8 B
    "copy": (lambda a, b, c: np.copyto(c, a), 24.0),
    "scale": (lambda a, b, c: np.multiply(a, _SCALAR, out=c), 24.0),
    # 3 arrays, 4 transfers
    "add": (lambda a, b, c: np.add(a, b, out=c), 32.0),
    "triad": (lambda a, b, c: np.add(a, _SCALAR * b, out=c), 32.0),
}


@dataclass(frozen=True)
class StreamResult:
    """Measured rates for one run of the four kernels (GB/s)."""

    n: int
    rates_gbs: Mapping[str, float]
    verified: bool

    def best(self) -> float:
        """Best rate across the four STREAM kernels, in GB/s."""
        return max(self.rates_gbs.values())


def run_stream(n: int = 2_000_000, repeats: int = 3,
               seed: int = 0) -> StreamResult:
    """Run the real STREAM kernels on this host (numpy arrays).

    Verification follows the original benchmark: after the timed loop the
    arrays must hold the analytically expected values.
    """
    require_positive(n, "n")
    require_positive(repeats, "repeats")
    rng = np.random.default_rng(seed)
    a = rng.uniform(1.0, 2.0, n)
    b = rng.uniform(1.0, 2.0, n)
    c = np.zeros(n)
    a0, b0 = a.copy(), b.copy()

    rates: dict[str, float] = {}
    for name, (kernel, bytes_per_elem) in STREAM_KERNELS.items():
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            kernel(a, b, c)
            best = min(best, time.perf_counter() - t0)
        rates[name] = n * bytes_per_elem / best / 1e9

    # verification: replay the last kernel chain analytically
    expected_c = a0 + _SCALAR * b0  # triad ran last
    ok = bool(np.allclose(c, expected_c, rtol=1e-13))
    return StreamResult(n=n, rates_gbs=rates, verified=ok)


def stream_model_gbs(system: System | str, threads: int = 1) -> float:
    """Modeled Triad bandwidth of *system* at *threads* threads.

    Single thread is prefetch-limited (``stream_bw_core_gbs``); the full
    node saturates the aggregate controllers — 1 TB/s HBM2 on the A64FX
    vs ~0.2 TB/s DDR4 on the Skylake node, the paper's central
    memory-bound argument.
    """
    sys_ = get_system(system) if isinstance(system, str) else system
    require_positive(threads, "threads")
    if threads > sys_.cores:
        raise ValueError(f"{threads} threads exceed {sys_.cores} cores")
    per_thread = sys_.hierarchy.stream_bw_core_gbs
    domains = sys_.topology.active_domains(threads)
    aggregate = sys_.topology.local_bw_gbs * domains
    return min(threads * per_thread, aggregate)
