"""HPCC RandomAccess (GUPS): the latency-bound end of the suite.

RandomAccess updates a huge table at pseudo-random 64-bit locations —
the pattern the paper's gather/scatter kernels and CG study probe.  This
completes the HPCC component set alongside DGEMM/HPL/FFT/STREAM:

* the real benchmark (official x(i+1) = 2*x(i) XOR poly LFSR stream,
  table XOR updates, self-inverse verification — re-running the updates
  restores the initial table);
* the GUPS model derived from the same random-access machinery as the
  CG figures: updates cost a full line transfer each, bounded by
  latency x memory-level parallelism per core.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro._util import require_positive
from repro.machine.systems import System, get_system

__all__ = ["GupsResult", "run_randomaccess", "gups_model"]

#: the official HPCC LFSR polynomial (x^63 feedback)
_POLY = np.uint64(0x0000000000000007)
_MSB = np.uint64(1) << np.uint64(63)


def _lfsr_stream(n: int, start: np.uint64 = np.uint64(1)) -> np.ndarray:
    """The official RandomAccess sequence: a(i+1) = (a(i) << 1) ^ (poly
    if the top bit was set).  Generated sequentially (it is an LFSR) but
    in one numpy pass per output — fine at benchmark sizes here."""
    out = np.empty(n, dtype=np.uint64)
    x = np.uint64(start)
    one = np.uint64(1)
    for i in range(n):
        x = np.uint64((x << one) ^ (_POLY if (x & _MSB) else np.uint64(0)))
        out[i] = x
    return out


@dataclass(frozen=True)
class GupsResult:
    """One RandomAccess run."""

    table_words: int
    updates: int
    seconds: float
    gups: float
    verified: bool


def run_randomaccess(log2_table: int = 16, updates_factor: int = 1,
                     chunk: int = 4096) -> GupsResult:
    """Run the real table-update benchmark at reduced scale.

    The official verification trick: XOR updates are self-inverse, so
    replaying the same update stream restores the initial table exactly.
    """
    require_positive(updates_factor, "updates_factor")
    require_positive(chunk, "chunk")
    size = 1 << log2_table
    updates = updates_factor * 4 * size
    table = np.arange(size, dtype=np.uint64)
    initial = table.copy()

    stream = _lfsr_stream(updates)
    mask = np.uint64(size - 1)

    t0 = time.perf_counter()
    for lo in range(0, updates, chunk):
        vals = stream[lo : lo + chunk]
        idx = (vals & mask).astype(np.int64)
        # XOR-update with duplicate-index reduction (the vector-hostile
        # conflict the paper's scatter kernel dramatizes)
        np.bitwise_xor.at(table, idx, vals)
    dt = time.perf_counter() - t0

    # verification pass: replay -> table must return to its initial state
    for lo in range(0, updates, chunk):
        vals = stream[lo : lo + chunk]
        idx = (vals & mask).astype(np.int64)
        np.bitwise_xor.at(table, idx, vals)
    ok = bool(np.array_equal(table, initial))

    return GupsResult(
        table_words=size,
        updates=updates,
        seconds=dt,
        gups=updates / dt / 1e9,
        verified=ok,
    )


def gups_model(system: System | str, threads: int | None = None) -> float:
    """Modeled GUPS for *system* (giga-updates/s).

    Each update is a dependent read-modify-write of one 8-byte word on a
    table far larger than cache: a full line transfer per update, with
    per-core concurrency limited to ``mlp`` outstanding misses — the same
    latency-bound path that prices CG's gathers.  The A64FX's 256-byte
    lines hurt here exactly as the paper's line-utilization argument
    predicts.
    """
    sys_ = get_system(system) if isinstance(system, str) else system
    threads = sys_.cores if threads is None else threads
    require_positive(threads, "threads")
    if threads > sys_.cores:
        raise ValueError(f"{threads} threads exceed {sys_.cores} cores")
    hier = sys_.hierarchy
    # per-core update rate: mlp lines in flight / latency (x2: RMW)
    per_core = hier.mlp / (2.0 * hier.dram_latency_ns)  # updates/ns
    # aggregate cap: raw line bandwidth of all controllers
    domains = sys_.topology.active_domains(threads)
    raw_lines = sys_.topology.local_bw_gbs * domains / hier.line  # Glines/s
    return min(threads * per_core, raw_lines / 2.0)
