"""FFT: a real iterative radix-2 transform + the Figure 9C/9D model.

The numeric half is an iterative (bit-reversal + butterfly stages)
radix-2 complex FFT whose stage loop is numpy-vectorized — validated
against ``numpy.fft`` and by the inverse round-trip.

The modeling half treats the HPCC 1-D FFT as bandwidth-bound (its
arithmetic intensity at ``N = 20000^2 * Nn`` is ~1.5 flop/byte over
multiple out-of-cache passes):

* single node (Fig. 9C): rate = library bandwidth fraction x the node's
  stream-bandwidth bound.  Fujitsu FFTW's SVE kernels reach ~4.2x the
  un-SVE'd FFTW ("smaller than what we see in the LA library
  comparison"), while the percent of peak stays below the mature x86
  libraries — both paper observations.
* multi node (Fig. 9D): the distributed transform is dominated by two
  all-to-all transposes per FFT, so aggregate rate is "relatively flat
  across all tested node counts".
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro._util import require_positive
from repro.hpcc.interconnect import get_mpi_stack
from repro.hpcc.libraries import Library, get_library
from repro.machine.systems import System, get_system

__all__ = [
    "bit_reverse_permutation",
    "fft_iterative",
    "ifft_iterative",
    "fft_flops",
    "fft_benchmark",
    "fft_rate_gflops",
    "FftResult",
]

#: bytes moved per flop at HPCC sizes (3 out-of-cache passes of 32 B per
#: complex element against 5 log2(N) flops/element, N ~ 4e8)
FFT_BYTES_PER_FLOP = 0.674


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing ``log2(n)`` bits."""
    require_positive(n, "n")
    if n & (n - 1):
        raise ValueError("n must be a power of two")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def fft_iterative(x: np.ndarray) -> np.ndarray:
    """Radix-2 decimation-in-time FFT (numpy-vectorized butterflies).

    Matches ``numpy.fft.fft`` to ~1e-10 relative for power-of-two sizes.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    if n & (n - 1) or n == 0:
        raise ValueError("size must be a power of two")
    a = x[bit_reverse_permutation(n)].copy()
    half = 1
    while half < n:
        step = half * 2
        # twiddles for this stage
        tw = np.exp(-2j * np.pi * np.arange(half) / step)
        blocks = a.reshape(n // step, step)
        even = blocks[:, :half].copy()  # copy: the write below aliases it
        odd = blocks[:, half:] * tw
        blocks[:, :half] = even + odd
        blocks[:, half:] = even - odd
        half = step
    return a


def ifft_iterative(x: np.ndarray) -> np.ndarray:
    """Inverse transform via conjugation."""
    x = np.asarray(x, dtype=np.complex128)
    return np.conj(fft_iterative(np.conj(x))) / x.size


def fft_flops(n: int) -> float:
    """The HPCC convention: ``5 n log2(n)`` flops per complex FFT."""
    require_positive(n, "n")
    return 5.0 * n * math.log2(n)


@dataclass(frozen=True)
class FftResult:
    """Outcome of one FFT benchmark run (timing + max error vs numpy)."""
    n: int
    seconds: float
    gflops: float
    max_error: float


def fft_benchmark(log2n: int = 16, seed: int = 0) -> FftResult:
    """Run one FFT and validate against numpy."""
    require_positive(log2n, "log2n")
    n = 1 << log2n
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    t0 = time.perf_counter()
    y = fft_iterative(x)
    dt = time.perf_counter() - t0
    ref = np.fft.fft(x)
    err = float(np.max(np.abs(y - ref)) / np.max(np.abs(ref)))
    return FftResult(n=n, seconds=dt, gflops=fft_flops(n) / dt / 1e9,
                     max_error=err)


# ---------------------------------------------------------------------------
# Figure 9C/9D model
# ---------------------------------------------------------------------------


def fft_rate_gflops(
    system: System | str,
    library: Library | str,
    nodes: int = 1,
) -> float:
    """Modeled HPCC-FFT rate (GFLOP/s aggregate) for Figures 9C/9D.

    The vector has ``20000^2 * nodes`` elements (the paper's weak
    scaling).  Single-node rate is the bandwidth-bound ceiling times the
    library's efficiency fraction; multi-node adds two all-to-all
    transposes per transform through the MPI stack model.
    """
    require_positive(nodes, "nodes")
    sys_ = get_system(system) if isinstance(system, str) else system
    lib = get_library(library) if isinstance(library, str) else library
    if lib.fft_bw_fraction <= 0.0:
        raise ValueError(f"{lib.name} has no FFT implementation in the catalog")

    n_total = 20000.0**2 * nodes
    flops = fft_flops(int(n_total))
    bw_bound_gflops = sys_.node_stream_bw_gbs / FFT_BYTES_PER_FLOP
    node_rate = bw_bound_gflops * lib.fft_bw_fraction * 1e9
    compute_s = flops / (node_rate * nodes)
    if nodes == 1:
        return flops / compute_s / 1e9

    stack = get_mpi_stack(lib.mpi_stack)
    # two distributed transposes; each node exchanges its whole local
    # slab (16 bytes per complex element)
    slab_bytes = 16.0 * n_total / nodes
    comm_s = stack.effective_comm_s(
        2.0 * stack.alltoall_time_s(sys_.interconnect, slab_bytes, nodes)
    )
    return flops / (compute_s + comm_s) / 1e9
