"""MPI stack models for the multi-node HPCC results (Figures 9B/9D).

"On multiple nodes, HPL does not scale well in the case of Fujitsu BLAS
and MPI ... ARMPL on the other hand shows better scalability ... We
speculate the Fujitsu MPI may not be optimized for our interconnect."

Each :class:`MpiStack` carries an efficiency factor on the node's
injection bandwidth plus a per-node software overhead; the collective
models (broadcast-pipeline for HPL's panel exchange, pairwise exchange
for the FFT transpose) then produce the scaling curves mechanistically —
a de-rated effective bandwidth is exactly "not optimized for our
interconnect".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import require_positive
from repro.machine.systems import Interconnect

__all__ = ["MpiStack", "MPI_STACKS", "get_mpi_stack"]


@dataclass(frozen=True)
class MpiStack:
    """Performance traits of one MPI implementation on one fabric."""

    name: str
    bw_efficiency: float      #: fraction of link bandwidth achieved
    latency_factor: float     #: multiplier on base fabric latency
    overlap: float = 0.0      #: fraction of comm hidden behind compute
    #: effective-bandwidth degradation per extra node in all-to-all
    #: exchanges (messages shrink as 1/(n-1) while rendezvous overheads
    #: and congestion grow — the HPCC MPIFFT flatness, Fig. 9D)
    alltoall_degradation: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.bw_efficiency <= 1.0:
            raise ValueError("bw_efficiency must be in (0, 1]")
        require_positive(self.latency_factor, "latency_factor")
        if not 0.0 <= self.overlap < 1.0:
            raise ValueError("overlap must be in [0, 1)")
        if self.alltoall_degradation < 0:
            raise ValueError("alltoall_degradation must be non-negative")

    # -- collectives ---------------------------------------------------------
    def ptp_time_s(self, fabric: Interconnect, nbytes: float) -> float:
        """Point-to-point transfer time under this stack."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        lat = fabric.latency_us * 1e-6 * self.latency_factor
        return lat + nbytes / (fabric.bw_gbs * 1e9 * self.bw_efficiency)

    def broadcast_time_s(
        self, fabric: Interconnect, nbytes: float, nodes: int
    ) -> float:
        """Pipelined-tree broadcast across *nodes*."""
        require_positive(nodes, "nodes")
        if nodes == 1:
            return 0.0
        hops = math.ceil(math.log2(nodes))
        return hops * self.ptp_time_s(fabric, nbytes)

    def alltoall_time_s(
        self, fabric: Interconnect, nbytes_per_node: float, nodes: int
    ) -> float:
        """Pairwise-exchange all-to-all: every node sends
        ``nbytes_per_node`` in total, in ``nodes - 1`` rounds."""
        require_positive(nodes, "nodes")
        if nodes == 1:
            return 0.0
        per_partner = nbytes_per_node / max(nodes - 1, 1)
        base = (nodes - 1) * self.ptp_time_s(fabric, per_partner)
        return base * (1.0 + self.alltoall_degradation * (nodes - 1))

    def effective_comm_s(self, raw_comm_s: float) -> float:
        """Apply computation/communication overlap."""
        if raw_comm_s < 0:
            raise ValueError("raw_comm_s must be non-negative")
        return raw_comm_s * (1.0 - self.overlap)


MPI_STACKS: dict[str, MpiStack] = {
    # the paper's speculation: Fujitsu MPI (tuned for Tofu-D) drives the
    # InfiniBand fabric poorly
    "fujitsu-mpi": MpiStack("Fujitsu MPI", bw_efficiency=0.22,
                            latency_factor=3.0, overlap=0.0,
                            alltoall_degradation=0.50),
    "openmpi": MpiStack("Open MPI + UCX", bw_efficiency=0.75,
                        latency_factor=1.0, overlap=0.3,
                        alltoall_degradation=0.15),
    "cray-mpich": MpiStack("Cray MPICH", bw_efficiency=0.70,
                           latency_factor=1.1, overlap=0.25,
                           alltoall_degradation=0.18),
    "impi": MpiStack("Intel MPI", bw_efficiency=0.80,
                     latency_factor=1.0, overlap=0.3,
                     alltoall_degradation=0.12),
}


def get_mpi_stack(key: str) -> MpiStack:
    """Look up an MPI stack model by key (case-insensitive)."""
    try:
        return MPI_STACKS[key.lower()]
    except KeyError:
        raise KeyError(
            f"unknown MPI stack {key!r}; available: {sorted(MPI_STACKS)}"
        ) from None
