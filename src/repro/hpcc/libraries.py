"""The math-library catalog of Section VII.

"We tested a large set of LA and FFT libraries on Ookami.  Several of
them already provide some SVE optimized routines, among them: ARM
Performance Library (ARMPL), Cray LibSci, Fujitsu BLAS, Cray FFTW,
Fujitsu FFTW.  OpenBLAS and FFTW currently do not have SVE optimizations
but can be built and pass numeric tests."

Each :class:`Library` records which SIMD width its kernels actually use
and a kernel-efficiency factor; the achieved DGEMM rate then *derives* as

    rate = clock x fp_pipes x (width_used / 64) x 2 x kernel_efficiency

so the paper's headline — Fujitsu BLAS ~14x the un-SVE'd OpenBLAS —
falls out of 512-bit vs scalar-class kernels rather than a looked-up
ratio.  FFT efficiency is separate because FFT is bandwidth-bound (the
catalog stores the fraction of stream bandwidth each FFT achieves).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_positive
from repro.machine.systems import System

__all__ = ["Library", "LIBRARIES", "get_library", "dgemm_efficiency"]


@dataclass(frozen=True)
class Library:
    """One BLAS/FFT library build on one architecture family.

    ``simd_bits_used``: the register width the hot kernels exploit (an
    un-SVE'd OpenBLAS falls back to 128-bit NEON or scalar C kernels).
    ``kernel_efficiency``: fraction of the *used-width* peak the DGEMM
    micro-kernel sustains (cache blocking, prefetch quality).
    ``fft_bw_fraction``: fraction of stream bandwidth the 1-D FFT
    sustains (FFTs are bandwidth-bound at HPCC sizes).
    ``mpi_stack``: default MPI pairing for multi-node runs.
    """

    name: str
    arch: str                 #: "sve" | "x86" | "knl" | "zen2"
    simd_bits_used: int
    kernel_efficiency: float
    fft_bw_fraction: float = 0.0
    mpi_stack: str = "openmpi"

    def __post_init__(self) -> None:
        require_positive(self.simd_bits_used, "simd_bits_used")
        if not 0.0 < self.kernel_efficiency <= 1.0:
            raise ValueError("kernel_efficiency must be in (0, 1]")
        if not 0.0 <= self.fft_bw_fraction <= 1.0:
            raise ValueError("fft_bw_fraction must be in [0, 1]")


LIBRARIES: dict[str, Library] = {
    # --- A64FX linear algebra ------------------------------------------------
    "fujitsu-blas": Library(
        name="Fujitsu BLAS", arch="sve", simd_bits_used=512,
        kernel_efficiency=0.71,   # 71% of peak, Fig. 8
        mpi_stack="fujitsu-mpi",
    ),
    "armpl": Library(
        name="ARM Performance Library", arch="sve", simd_bits_used=512,
        kernel_efficiency=0.55, fft_bw_fraction=0.005,  # "seems to be unoptimized"
        mpi_stack="openmpi",
    ),
    "cray-libsci": Library(
        name="Cray LibSci", arch="sve", simd_bits_used=512,
        kernel_efficiency=0.50,
        mpi_stack="cray-mpich",
    ),
    "openblas": Library(
        # no SVE kernels: generic scalar/NEON path -> the 14x gap of Fig. 8
        name="OpenBLAS (no SVE)", arch="sve", simd_bits_used=64,
        kernel_efficiency=0.41,   # generic C kernel: 14x below Fujitsu
        mpi_stack="openmpi",
    ),
    # --- A64FX FFT -------------------------------------------------------------
    "fujitsu-fftw": Library(
        name="Fujitsu FFTW", arch="sve", simd_bits_used=512,
        kernel_efficiency=0.30, fft_bw_fraction=0.030,
        mpi_stack="fujitsu-mpi",
    ),
    "cray-fftw": Library(
        name="Cray FFTW", arch="sve", simd_bits_used=512,
        kernel_efficiency=0.20, fft_bw_fraction=0.015,
        mpi_stack="cray-mpich",
    ),
    "fftw": Library(
        name="FFTW (no SVE)", arch="sve", simd_bits_used=128,
        kernel_efficiency=0.30, fft_bw_fraction=0.0071,  # 4.2x below Fujitsu FFTW
        mpi_stack="openmpi",
    ),
    # --- comparison systems ----------------------------------------------------
    "mkl-skx": Library(
        name="Intel MKL (SKX)", arch="x86", simd_bits_used=512,
        kernel_efficiency=0.97, fft_bw_fraction=0.27,  # 97% of peak, Fig. 8
        mpi_stack="impi",
    ),
    "mkl-knl": Library(
        # the paper measures only 11% of peak per KNL core in this config
        name="Intel MKL (KNL)", arch="knl", simd_bits_used=512,
        kernel_efficiency=0.11, fft_bw_fraction=0.12,
        mpi_stack="impi",
    ),
    "blis-zen2": Library(
        name="AMD BLIS (Zen 2)", arch="zen2", simd_bits_used=256,
        kernel_efficiency=0.70, fft_bw_fraction=0.20,
        mpi_stack="openmpi",
    ),
}


def get_library(key: str) -> Library:
    """Look up a math-library model by key (case-insensitive)."""
    try:
        return LIBRARIES[key.lower()]
    except KeyError:
        raise KeyError(
            f"unknown library {key!r}; available: {sorted(LIBRARIES)}"
        ) from None


def dgemm_efficiency(library: Library, system: System) -> float:
    """Fraction of the *system's* theoretical peak the library reaches.

    Width derating is mechanistic: a 64-bit scalar kernel on a 512-bit
    machine can reach at most 1/8 of peak before its own kernel
    efficiency applies.
    """
    width_frac = min(1.0, library.simd_bits_used / system.cpu.vector_bits)
    return width_frac * library.kernel_efficiency
