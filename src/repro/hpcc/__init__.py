"""HPC Challenge benchmarks: DGEMM, HPL, FFT (Section VII of the paper).

* :mod:`repro.hpcc.dgemm` — a real blocked matrix-matrix multiply (with
  a naive reference) and the per-library/system DGEMM rate model behind
  Figure 8.
* :mod:`repro.hpcc.hpl` — a real blocked LU factorization with partial
  pivoting and the HPL benchmark driver (scaled-residual verification),
  plus the single/multi-node rate model behind Figures 9A/9B.
* :mod:`repro.hpcc.fft` — a real iterative radix-2 FFT validated against
  numpy, plus the single/multi-node model behind Figures 9C/9D.
* :mod:`repro.hpcc.libraries` — the library catalog (Fujitsu BLAS/FFTW,
  ARMPL, Cray LibSci, OpenBLAS, FFTW, MKL) with per-system efficiency
  derivations.
* :mod:`repro.hpcc.interconnect` — MPI collective models with per-stack
  efficiency (the Fujitsu-MPI multi-node HPL pathology).
* :mod:`repro.hpcc.stream` / :mod:`repro.hpcc.randomaccess` — the
  remaining HPCC components (STREAM bandwidth, GUPS), completing the
  suite the paper samples from.
"""

from repro.hpcc.dgemm import dgemm_blocked, dgemm_naive, dgemm_rate_gflops
from repro.hpcc.hpl import hpl_benchmark, hpl_rate_gflops, lu_factor_blocked
from repro.hpcc.fft import fft_iterative, fft_benchmark, fft_rate_gflops
from repro.hpcc.libraries import LIBRARIES, Library, get_library
from repro.hpcc.interconnect import MpiStack, MPI_STACKS
from repro.hpcc.stream import run_stream, stream_model_gbs
from repro.hpcc.randomaccess import run_randomaccess, gups_model

__all__ = [
    "dgemm_blocked",
    "dgemm_naive",
    "dgemm_rate_gflops",
    "hpl_benchmark",
    "hpl_rate_gflops",
    "lu_factor_blocked",
    "fft_iterative",
    "fft_benchmark",
    "fft_rate_gflops",
    "LIBRARIES",
    "Library",
    "get_library",
    "MpiStack",
    "MPI_STACKS",
    "run_stream",
    "stream_model_gbs",
    "run_randomaccess",
    "gups_model",
]
