"""DGEMM: real blocked matrix multiply + the Figure 8 rate model.

"In the embarrassingly parallel DGEMM test, each MPI process performs a
test on the matrix of size ``(20000*sqrt(Nn/Nc))^2``."  Figure 8 reports
GFLOP/s *per core* with the percentage of theoretical peak.

The numeric half implements cache-blocked matrix multiplication the way
a BLAS level-3 kernel is structured (three blocking loops around a tile
kernel), validated against ``A @ B``; the modeling half converts the
library catalog into per-core rates and percent-of-peak.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._util import require_positive
from repro.hpcc.libraries import Library, dgemm_efficiency, get_library
from repro.machine.systems import System, get_system

__all__ = [
    "dgemm_naive",
    "dgemm_blocked",
    "dgemm_flops",
    "dgemm_rate_gflops",
    "DgemmPoint",
    "hpcc_dgemm_matrix_size",
]


def dgemm_naive(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple-loop reference (tiny inputs only; O(n^3) Python loops)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ValueError("inner dimensions disagree")
    c = np.zeros((n, m))
    for i in range(n):
        for j in range(m):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            c[i, j] = acc
    return c


def dgemm_blocked(a: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Cache-blocked GEMM: ``C[i0:i1, j0:j1] += A[i0:i1, p0:p1] @ B[p0:p1, j0:j1]``.

    The loop structure (j outer, p middle, i inner tiles) mirrors the
    GOTO-BLAS blocking scheme; tiles multiply through numpy so the tile
    kernel is genuinely fast while the blocking logic is explicit and
    testable.
    """
    require_positive(block, "block")
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ValueError("inner dimensions disagree")
    c = np.zeros((n, m))
    for j0 in range(0, m, block):
        j1 = min(j0 + block, m)
        for p0 in range(0, k, block):
            p1 = min(p0 + block, k)
            bt = b[p0:p1, j0:j1]
            for i0 in range(0, n, block):
                i1 = min(i0 + block, n)
                c[i0:i1, j0:j1] += a[i0:i1, p0:p1] @ bt
    return c


def dgemm_flops(n: int, m: int | None = None, k: int | None = None) -> float:
    """Flop count 2*n*m*k of one GEMM."""
    require_positive(n, "n")
    m = n if m is None else m
    k = n if k is None else k
    return 2.0 * n * m * k


def hpcc_dgemm_matrix_size(nodes: int, cores_per_node: int) -> int:
    """The paper's weak-scaling size: ``20000 * sqrt(Nn/Nc)`` per process."""
    require_positive(nodes, "nodes")
    require_positive(cores_per_node, "cores_per_node")
    return int(round(20000.0 * math.sqrt(nodes / cores_per_node)))


@dataclass(frozen=True)
class DgemmPoint:
    """One Figure 8 bar: a (system, library) pair."""

    system: str
    library: str
    gflops_per_core: float
    percent_of_peak: float


def dgemm_rate_gflops(system: System | str, library: Library | str) -> DgemmPoint:
    """Per-core DGEMM rate for a (system, library) pair (Figure 8).

    Rate = per-core peak at the all-core clock x the library's derived
    efficiency (SIMD width actually used x kernel efficiency).
    """
    sys_ = get_system(system) if isinstance(system, str) else system
    lib = get_library(library) if isinstance(library, str) else library
    eff = dgemm_efficiency(lib, sys_)
    peak = sys_.peak_gflops_core
    return DgemmPoint(
        system=sys_.name,
        library=lib.name,
        gflops_per_core=peak * eff,
        percent_of_peak=100.0 * eff,
    )
