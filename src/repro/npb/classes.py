"""NPB problem-class parameter tables (S, W, A, B, C).

Parameters follow the official NPB 3.x definitions; the paper runs
class C ("We used dataset C for our experimentation"):

* BT/SP/LU: 162^3 grids (LU 162^3), 200/400/250 iterations.
* CG: n=150000, 15 nonzeros/row, 75 outer iterations, shift 110.
* EP: 2^32 pairs.
* UA: 33500 elements, 8 refinement levels, 200 iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProblemClass", "CLASSES"]


@dataclass(frozen=True)
class ProblemClass:
    """Per-class parameters for every benchmark in the suite."""

    name: str
    # EP
    ep_log2_pairs: int
    # CG
    cg_n: int
    cg_nonzer: int
    cg_iters: int
    cg_shift: float
    # BT / SP / LU grids and iterations
    bt_grid: int
    bt_iters: int
    sp_grid: int
    sp_iters: int
    lu_grid: int
    lu_iters: int
    # UA
    ua_elements: int
    ua_levels: int
    ua_iters: int


CLASSES: dict[str, ProblemClass] = {
    "S": ProblemClass(
        name="S",
        ep_log2_pairs=24,
        cg_n=1400, cg_nonzer=7, cg_iters=15, cg_shift=10.0,
        bt_grid=12, bt_iters=60,
        sp_grid=12, sp_iters=100,
        lu_grid=12, lu_iters=50,
        ua_elements=100, ua_levels=4, ua_iters=50,
    ),
    "W": ProblemClass(
        name="W",
        ep_log2_pairs=25,
        cg_n=7000, cg_nonzer=8, cg_iters=15, cg_shift=12.0,
        bt_grid=24, bt_iters=200,
        sp_grid=36, sp_iters=400,
        lu_grid=33, lu_iters=300,
        ua_elements=500, ua_levels=5, ua_iters=100,
    ),
    "A": ProblemClass(
        name="A",
        ep_log2_pairs=28,
        cg_n=14000, cg_nonzer=11, cg_iters=15, cg_shift=20.0,
        bt_grid=64, bt_iters=200,
        sp_grid=64, sp_iters=400,
        lu_grid=64, lu_iters=250,
        ua_elements=2500, ua_levels=6, ua_iters=200,
    ),
    "B": ProblemClass(
        name="B",
        ep_log2_pairs=30,
        cg_n=75000, cg_nonzer=13, cg_iters=75, cg_shift=60.0,
        bt_grid=102, bt_iters=200,
        sp_grid=102, sp_iters=400,
        lu_grid=102, lu_iters=250,
        ua_elements=9500, ua_levels=7, ua_iters=200,
    ),
    "C": ProblemClass(
        name="C",
        ep_log2_pairs=32,
        cg_n=150000, cg_nonzer=15, cg_iters=75, cg_shift=110.0,
        bt_grid=162, bt_iters=200,
        sp_grid=162, sp_iters=400,
        lu_grid=162, lu_iters=250,
        ua_elements=33500, ua_levels=8, ua_iters=200,
    ),
}
