"""NPB CG — conjugate-gradient eigenvalue estimation, complete.

"Uses a Conjugate Gradient method to compute an approximation to the
smallest eigenvalue of a large, sparse, and unstructured matrix ... a
large amount of cache misses due to its usage of a matrix with randomly
generated locations of entries."  (paper, Sec. V)

The full NPB algorithm:

1. ``makea`` builds the sparse symmetric matrix
   ``A = sum_i size_i * w_i w_i^T + (rcond - shift) * I`` where each
   ``w_i`` is a sparse random vector from the official LCG stream
   (``tran = 314159265``), with a geometric condition-number ramp
   ``size_i = rcond^(i/n)``.
2. Inverse power iteration: ``niter`` outer steps, each solving
   ``A z = x`` with 25 unpreconditioned CG iterations and updating
   ``zeta = shift + 1 / (x . z)``, ``x = z / ||z||``.

Verification compares the final ``zeta`` with the published class
constants to 1e-10, exactly like the official suite.  The sparse matrix
uses CSR via scipy; the gather the paper discusses (``x[colidx[k]]``) is
the SpMV inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro._util import require_positive
from repro.npb.classes import CLASSES
from repro.npb.lcg import A_NPB, mulmod46

__all__ = ["CG_VERIFY", "CGResult", "run_cg", "make_cg_matrix"]

#: official NPB verification zeta per class
CG_VERIFY: dict[str, float] = {
    "S": 8.5971775078648,
    "W": 10.362595087124,
    "A": 17.130235054029,
    "B": 22.712745482631,
    "C": 28.973605592845,
}

_MOD46_MASK = (1 << 46) - 1
_R46 = 0.5**46
_TRAN0 = 314159265
_RCOND = 0.1
_CG_INNER_ITERS = 25
_NITER = {"S": 15, "W": 15, "A": 15, "B": 75, "C": 75}


class _SerialRandlc:
    """Scalar NPB randlc with exact integer state (fast inner loop)."""

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = seed & _MOD46_MASK

    def next(self) -> float:
        self.state = int(mulmod46(np.int64(self.state), np.int64(A_NPB)))
        return self.state * _R46


def _sprnvc(n: int, nz: int, nn1: int, rng: _SerialRandlc) -> tuple[list[float], list[int]]:
    """NPB sprnvc: nz distinct random (value, 1-based index) pairs."""
    v: list[float] = []
    iv: list[int] = []
    while len(v) < nz:
        vecelt = rng.next()
        vecloc = rng.next()
        i = int(vecloc * nn1) + 1
        if i > n:
            continue
        if i in iv:
            continue
        v.append(vecelt)
        iv.append(i)
    return v, iv


def _vecset(v: list[float], iv: list[int], ival: int, val: float) -> None:
    """NPB vecset: set element *ival* to *val*, appending if absent."""
    for k, idx in enumerate(iv):
        if idx == ival:
            v[k] = val
            return
    v.append(val)
    iv.append(ival)


def make_cg_matrix(
    n: int, nonzer: int, shift: float, rcond: float = _RCOND
) -> sp.csr_matrix:
    """The official ``makea`` matrix as CSR (0-based).

    Reproduces the NPB stream exactly: one warm-up ``randlc`` call (the
    driver's ``zeta = randlc(&tran, amult)``) precedes generation.
    """
    require_positive(n, "n")
    require_positive(nonzer, "nonzer")
    rng = _SerialRandlc(_TRAN0)
    rng.next()  # the driver's first call before makea

    nn1 = 1
    while nn1 < n:
        nn1 <<= 1

    rows_v: list[list[float]] = []
    rows_i: list[list[int]] = []
    for iouter in range(n):
        v, iv = _sprnvc(n, nonzer, nn1, rng)
        _vecset(v, iv, iouter + 1, 0.5)
        rows_v.append(v)
        rows_i.append(iv)

    # assembly: A = sum_i size_i * w_i w_i^T + (rcond - shift) I
    ratio = rcond ** (1.0 / n)
    size = 1.0
    coo_i: list[np.ndarray] = []
    coo_j: list[np.ndarray] = []
    coo_d: list[np.ndarray] = []
    for iouter in range(n):
        vals = np.asarray(rows_v[iouter])
        idxs = np.asarray(rows_i[iouter], dtype=np.int64) - 1
        block = size * np.outer(vals, vals)
        jj, kk = np.meshgrid(idxs, idxs, indexing="ij")
        coo_i.append(jj.ravel())
        coo_j.append(kk.ravel())
        coo_d.append(block.ravel())
        size *= ratio
    diag_idx = np.arange(n, dtype=np.int64)
    coo_i.append(diag_idx)
    coo_j.append(diag_idx)
    coo_d.append(np.full(n, rcond - shift))
    a = sp.coo_matrix(
        (np.concatenate(coo_d), (np.concatenate(coo_i), np.concatenate(coo_j))),
        shape=(n, n),
    ).tocsr()
    a.sum_duplicates()
    return a


def _conj_grad(a: sp.csr_matrix, x: np.ndarray) -> tuple[np.ndarray, float]:
    """One NPB conj_grad call: 25 CG iterations on ``A z = x``.

    Returns ``(z, rnorm)`` with ``rnorm = ||x - A z||``.
    """
    z = np.zeros_like(x)
    r = x.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(_CG_INNER_ITERS):
        q = a @ p
        alpha = rho / float(p @ q)
        z += alpha * p
        r -= alpha * q
        rho0 = rho
        rho = float(r @ r)
        p = r + (rho / rho0) * p
    res = x - a @ z
    return z, float(np.sqrt(res @ res))


@dataclass(frozen=True)
class CGResult:
    """Outcome of one CG run."""

    klass: str
    n: int
    zeta: float
    rnorm: float
    niter: int

    @property
    def verified(self) -> bool:
        """True when zeta matches the official class verification value."""
        ref = CG_VERIFY.get(self.klass)
        if ref is None:
            return False
        return abs(self.zeta - ref) <= 1e-10


def run_cg(klass: str = "S") -> CGResult:
    """Run the full CG benchmark for *klass* and return the zeta estimate."""
    if klass not in CLASSES:
        raise KeyError(f"unknown NPB class {klass!r}")
    pc = CLASSES[klass]
    n, nonzer, shift = pc.cg_n, pc.cg_nonzer, pc.cg_shift
    niter = _NITER[klass]
    a = make_cg_matrix(n, nonzer, shift)

    x = np.ones(n)
    # one untimed warm-up iteration, then reset x (as the official driver)
    _conj_grad(a, x)
    x = np.ones(n)

    zeta = 0.0
    rnorm = 0.0
    for _ in range(niter):
        z, rnorm = _conj_grad(a, x)
        zeta = shift + 1.0 / float(x @ z)
        x = z / float(np.sqrt(z @ z))
    return CGResult(klass=klass, n=n, zeta=zeta, rnorm=rnorm, niter=niter)
