"""Class-C workload signatures for the NPB performance studies.

Each :class:`~repro.kernels.workload.Workload` summarizes one benchmark at
the paper's scale (class C).  Flop and traffic totals are derived from the
algorithm structure (grid points x per-point work x iterations — the
formulas are inline below); vectorization and threading parameters are
calibrated against the paper's own observations, flagged explicitly:

* EP's math calls go through *serial* libm (``math_vectorized=False``):
  its acceptance loop (if-test + histogram) defeats every vectorizer,
  which is how GNU's slow scalar libm shows up.  The residual EP factor
  for GNU models the paper's own unexplained finding ("3 fold performance
  difference ... due to some other optimization, not vectorization").
* The ARM runtime's full-node BT/UA anomaly and the Fujitsu UA residue
  ("the performance improvement in UA is still not significant enough")
  are encoded as *parallel-only* factors — the paper reports them at
  full node with comparable single-core performance.
* The Fujitsu CMG-0 placement pathology needs **no** entry here: it
  falls out of the NUMA model plus the Fujitsu OpenMP default.
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.workload import Workload
from repro.npb.classes import CLASSES

__all__ = ["NPB_WORKLOADS", "npb_workload", "PARALLEL_FACTORS"]

_C = CLASSES["C"]
_PTS = float(_C.bt_grid**3)  # 162^3 grid points

#: parallel-only residual factors (see module docstring)
PARALLEL_FACTORS: dict[str, Mapping[str, float]] = {
    "BT": {"arm": 1.8},
    "UA": {"arm": 2.6, "fujitsu": 1.5},
}


def _bt() -> Workload:
    # ~3600 flops/point/iteration: rhs assembly (~800) plus three
    # directional 5x5 block-tridiagonal factor+solve sweeps (~900 each)
    flops = _PTS * _C.bt_iters * 3600.0
    # ~15 full-array passes per iteration over 5-component fields
    traffic = _PTS * _C.bt_iters * 5 * 8.0 * 15
    return Workload(
        name="BT.C",
        flops=flops,
        vector_fraction=0.85,
        vec_efficiency=0.35,
        contig_bytes=traffic,
        parallel_fraction=0.995,
        regions=10.0 * _C.bt_iters,
        imbalance=0.10,
    )


def _sp() -> Workload:
    # ~1100 flops/point/iteration: rhs + three scalar pentadiagonal sweeps
    flops = _PTS * _C.sp_iters * 1100.0
    # SP is the suite's bandwidth hog: ~32 array passes per iteration
    # including write-allocate traffic ("good load balancing behavior but
    # poor cache behavior")
    traffic = _PTS * _C.sp_iters * 5 * 8.0 * 32
    return Workload(
        name="SP.C",
        flops=flops,
        vector_fraction=0.95,
        vec_efficiency=0.45,
        contig_bytes=traffic,
        parallel_fraction=0.99,
        regions=12.0 * _C.sp_iters,
        # the factored sweeps synchronize between directions and their
        # line pipelines drain at boundaries — the least-scaling app
        imbalance=0.25,
    )


def _lu() -> Workload:
    # ~1600 flops/point/iteration of SSOR (jacld/blts + jacu/buts + rhs)
    flops = _PTS * _C.lu_iters * 1600.0
    traffic = _PTS * _C.lu_iters * 5 * 8.0 * 12
    return Workload(
        name="LU.C",
        flops=flops,
        vector_fraction=0.80,
        vec_efficiency=0.35,
        contig_bytes=traffic,
        parallel_fraction=0.99,
        regions=6.0 * _C.lu_iters,
        imbalance=0.12,  # wavefront pipelining fill/drain
    )


def _cg() -> Workload:
    # nnz after makea outer products: (nonzer+1)^2 entries per outer
    # product with ~13% overlap — the 0.87 dedup factor is *measured*
    # from the real makea matrices (tests/npb/test_characterize.py)
    nnz = _C.cg_n * (_C.cg_nonzer + 1) ** 2 * 0.87
    spmv_per_run = _C.cg_iters * 26.0  # 25 CG steps + residual
    flops = 2.0 * nnz * spmv_per_run + 10.0 * _C.cg_n * spmv_per_run
    # matrix values + colidx stream from DRAM every SpMV; the x[] gathers
    # stay on-chip (x is n*8 = 1.2 MB) but are latency-bound — "a large
    # amount of cache misses due to ... randomly generated locations"
    contig = (8.0 + 4.0) * nnz * spmv_per_run
    return Workload(
        name="CG.C",
        flops=flops,
        vector_fraction=0.90,
        vec_efficiency=0.50,
        contig_bytes=contig,
        l2_gather_accesses=nnz * spmv_per_run,
        gather_footprint=8.0 * _C.cg_n,
        parallel_fraction=0.995,
        regions=2.0 * spmv_per_run,
        imbalance=0.30,  # SpMV row-length variance across static chunks
    )


def _ep() -> Workload:
    pairs = float(1 << _C.ep_log2_pairs)
    accept = 0.785398  # pi/4
    # ~30 arithmetic ops per pair (LCG, mapping, radius, tallies); the
    # acceptance loop does not vectorize (if-test + histogram update)
    flops = pairs * 30.0
    return Workload(
        name="EP.C",
        flops=flops,
        vector_fraction=0.0,
        vec_efficiency=0.5,
        math_calls={
            "log": pairs * accept,
            "sqrt": pairs * accept,
            "recip": pairs * accept,
        },
        math_vectorized=False,
        parallel_fraction=0.9999,
        regions=48.0,
        imbalance=0.01,
        # gnu: the paper's unexplained "3 fold" EP gap beyond libm costs;
        # intel: icc additionally masks/vectorizes part of the Gaussian
        # loop with SVML, which the A64FX toolchains do not
        toolchain_factor={"gnu": 1.9, "intel": 0.72},
    )


def _ua() -> Workload:
    # irregular elementwise work across ~33500 elements, 200 iterations,
    # with mortar-point transfers dominating traffic
    elem_flops = 60000.0  # per element per iteration (high-order local ops)
    flops = _C.ua_elements * _C.ua_iters * elem_flops
    contig = _C.ua_elements * _C.ua_iters * 8.0 * 4000
    random = _C.ua_elements * _C.ua_iters * 8.0 * 2500
    return Workload(
        name="UA.C",
        flops=flops,
        vector_fraction=0.40,
        vec_efficiency=0.30,
        contig_bytes=contig,
        random_bytes=random,
        parallel_fraction=0.995,
        regions=100.0 * _C.ua_iters,
        imbalance=0.08,
    )


NPB_WORKLOADS: dict[str, Workload] = {
    "BT": _bt(),
    "SP": _sp(),
    "LU": _lu(),
    "CG": _cg(),
    "EP": _ep(),
    "UA": _ua(),
}


def npb_workload(name: str) -> Workload:
    """Class-C workload signature for benchmark *name* (BT/SP/LU/CG/EP/UA)."""
    try:
        return NPB_WORKLOADS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown NPB benchmark {name!r}; available: {sorted(NPB_WORKLOADS)}"
        ) from None
