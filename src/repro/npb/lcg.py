"""The official NPB linear congruential generator, vectorized.

NPB's ``randlc`` is the 46-bit LCG

    x_{k+1} = a * x_k  mod 2**46,      a = 5**13,  x_0 = 271828183

The Fortran original simulates the 46-bit integer arithmetic with pairs
of doubles (the ``r23``/``r46`` trick); here we do the same arithmetic
*exactly* with 64-bit integers, splitting each 46-bit operand into
23-bit halves so no product overflows 64 bits.

The recurrence is serial, but because the generator is a pure modular
power — ``x_k = a**k * x_0 mod 2**46`` — batches vectorize by building
the table ``a**k`` with log-doubling (the same skip-ahead trick the
MPI/OpenMP NPB versions use to give each rank a disjoint stream, and the
paper's "manual call to a vectorized random number generator").
"""

from __future__ import annotations

import numpy as np

from repro._util import require_positive

__all__ = ["A_NPB", "SEED_NPB", "mulmod46", "powmod46", "randlc_batch", "Randlc"]

#: NPB multiplier: 5**13
A_NPB = 5**13
#: default NPB EP seed
SEED_NPB = 271828183

_MASK23 = np.int64((1 << 23) - 1)
_MOD46 = 1 << 46
_R46 = 0.5**46


def mulmod46(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Exact ``x * y mod 2**46`` for int64 arrays of 46-bit values.

    Splits both operands into 23-bit halves; every partial product fits
    comfortably in 64 bits (46 + 1 bits max before masking).
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    x1, x0 = x >> 23, x & _MASK23
    y1, y0 = y >> 23, y & _MASK23
    # t = (x1*y0 + x0*y1) mod 2**23 gives the middle bits; x1*y1 overflows
    # past bit 46 entirely and drops out of the modulus.
    t = (x1 * y0 + x0 * y1) & _MASK23
    return ((t << 23) + x0 * y0) & np.int64(_MOD46 - 1)


def powmod46(a: int, n: int) -> int:
    """``a**n mod 2**46`` by binary exponentiation (exact Python ints)."""
    if n < 0:
        raise ValueError("exponent must be non-negative")
    return pow(a, n, _MOD46)


def randlc_batch(seed: int, n: int, a: int = A_NPB) -> np.ndarray:
    """The first *n* uniforms of the stream, as float64 in (0, 1).

    Returns ``x_1/2**46 .. x_n/2**46`` (matching NPB convention: the call
    ``randlc(&x, a)`` advances first, then returns), computed exactly via
    the power table ``a**k`` built by log-doubling.
    """
    require_positive(n, "n")
    # powers[k] = a**(k+1) mod 2**46 for k = 0..n-1
    powers = np.empty(n, dtype=np.int64)
    powers[0] = a % _MOD46
    filled = 1
    while filled < n:
        take = min(filled, n - filled)
        # powers[filled:filled+take] = powers[:take] * a**filled
        stride = np.int64(powmod46(a, filled))
        powers[filled : filled + take] = mulmod46(powers[:take], stride)
        filled += take
    xs = mulmod46(powers, np.int64(seed % _MOD46))
    return xs.astype(np.float64) * _R46


class Randlc:
    """Stateful batch interface to the NPB stream (skip-ahead capable)."""

    def __init__(self, seed: int = SEED_NPB, a: int = A_NPB) -> None:
        if seed <= 0:
            raise ValueError("NPB seeds are positive odd integers")
        self.a = a
        self._seed0 = seed % _MOD46
        self._k = 0  # values consumed so far

    @property
    def position(self) -> int:
        """Index of the next value in the stream."""
        return self._k

    def skip(self, n: int) -> None:
        """Advance the stream by *n* values without generating them."""
        if n < 0:
            raise ValueError("cannot skip backwards")
        self._k += n

    def next_batch(self, n: int) -> np.ndarray:
        """The next *n* uniforms as float64 in (0, 1)."""
        require_positive(n, "n")
        # current state = a**k * seed0
        state = mulmod46(
            np.int64(powmod46(self.a, self._k)), np.int64(self._seed0)
        )
        out = randlc_batch(int(state), n, self.a)
        self._k += n
        return out

    def next_scalar(self) -> float:
        """One value (matches the serial ``randlc`` call exactly)."""
        return float(self.next_batch(1)[0])
