"""Workload characterization: deriving the class-C signatures.

The Figure 3-6 signatures in :mod:`repro.npb.workloads` rest on per-point
operation counts.  This module derives those counts from the algorithms'
structure — and, where a real implementation exists in this package,
*measures* the structural quantities from it (CG's nonzero count from the
actual ``makea`` matrices, EP's acceptance rate from the real run, the
block-solve cost from the ``block_thomas`` recurrence), closing the loop
between the mini-apps and the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_in
from repro.npb.classes import CLASSES, ProblemClass

__all__ = [
    "OperationCounts",
    "bt_counts",
    "sp_counts",
    "lu_counts",
    "cg_structure",
    "ep_structure",
    "signature_consistency",
]


@dataclass(frozen=True)
class OperationCounts:
    """Structural per-point-per-iteration costs of a grid benchmark."""

    benchmark: str
    flops_per_point_iter: float
    array_passes_per_iter: float  # full-field sweeps (x 5 components x 8 B)
    derivation: str


def bt_counts() -> OperationCounts:
    """BT: rhs assembly + three block-tridiagonal sweeps.

    Per point per directional sweep the block Thomas recurrence performs
    one 5x5 LU-class elimination (~2/3 * 5^3 = 83), two 5x5 block
    multiplies (2 * 2 * 125 = 500) and vector updates (~75), plus block
    assembly (~250): ~900 flops; three sweeps plus a ~800-flop rhs gives
    ~3500-3700 per point per iteration.
    """
    per_sweep = (2 / 3) * 125 + 2 * 2 * 125 + 75 + 250
    total = 3 * per_sweep + 800
    return OperationCounts(
        benchmark="BT",
        flops_per_point_iter=total,
        array_passes_per_iter=15.0,
        derivation="3 x (5x5 block factor+solve ~908) + rhs ~800",
    )


def sp_counts() -> OperationCounts:
    """SP: rhs + three *scalar* pentadiagonal sweeps per component.

    A pentadiagonal elimination costs ~14 flops per unknown (forward: two
    eliminations of 3 ops each + rhs updates; backward: 5); five
    components over three directions gives ~210, plus the ~800-flop rhs
    and the ~100-flop invr/add stages: ~1100 per point per iteration.
    """
    per_unknown = 14
    total = 3 * 5 * per_unknown + 800 + 100
    return OperationCounts(
        benchmark="SP",
        flops_per_point_iter=total,
        array_passes_per_iter=32.0,
        derivation="3 dirs x 5 comps x ~14 (penta) + rhs ~800 + ~100",
    )


def lu_counts() -> OperationCounts:
    """LU: SSOR — two triangular sweeps with 5x5 block Jacobians.

    Each sweep applies three off-diagonal 5x5 blocks (3 x 50) plus a
    block solve (~130) per point: ~280; two sweeps plus the ~1000-flop
    rhs: ~1560 per point per iteration.
    """
    per_sweep = 3 * 50 + 130
    total = 2 * per_sweep + 1000
    return OperationCounts(
        benchmark="LU",
        flops_per_point_iter=total,
        array_passes_per_iter=12.0,
        derivation="2 SSOR sweeps x (3 blocks + solve ~280) + rhs ~1000",
    )


def cg_structure(klass: str = "S") -> dict:
    """Measured CG matrix structure from the real ``makea``.

    Returns the nonzero count, the per-outer-product prediction
    ``n * (nonzer+1)^2`` and the measured dedup factor — the constant the
    class-C signature extrapolates with.
    """
    from repro.npb.cg import make_cg_matrix

    require_in(klass, tuple(CLASSES), "klass")
    pc: ProblemClass = CLASSES[klass]
    a = make_cg_matrix(pc.cg_n, pc.cg_nonzer, pc.cg_shift)
    predicted = pc.cg_n * (pc.cg_nonzer + 1) ** 2
    return {
        "klass": klass,
        "n": pc.cg_n,
        "nnz": int(a.nnz),
        "predicted_outer_entries": predicted,
        "dedup_factor": a.nnz / predicted,
        "nnz_per_row": a.nnz / pc.cg_n,
    }


def ep_structure(log2_pairs: int = 20) -> dict:
    """Measured EP structure from the real benchmark: acceptance rate
    (the math-call count multiplier) and Gaussians per pair."""
    from repro.npb.ep import run_ep

    r = run_ep("S", log2_pairs=log2_pairs)
    return {
        "pairs": r.pairs,
        "acceptance_rate": r.accepted / r.pairs,
        "gaussians_per_pair": 2.0 * r.accepted / r.pairs,
    }


def signature_consistency() -> list[dict]:
    """Compare the derived/measured structure against the class-C
    signatures actually used by the Figure 3-6 models."""
    from repro.npb.workloads import NPB_WORKLOADS

    pc = CLASSES["C"]
    pts = float(pc.bt_grid**3)
    rows = []
    for counts, iters in ((bt_counts(), pc.bt_iters),
                          (sp_counts(), pc.sp_iters),
                          (lu_counts(), pc.lu_iters)):
        work = NPB_WORKLOADS[counts.benchmark]
        derived_flops = pts * iters * counts.flops_per_point_iter
        rows.append(
            {
                "benchmark": counts.benchmark,
                "derived_flops": derived_flops,
                "signature_flops": work.flops,
                "ratio": derived_flops / work.flops,
                "derivation": counts.derivation,
            }
        )
    # CG: measured dedup vs the signature's constant
    s = cg_structure("S")
    w = cg_structure("W")
    rows.append(
        {
            "benchmark": "CG",
            "derived_flops": s["dedup_factor"],
            "signature_flops": 0.87,
            "ratio": s["dedup_factor"] / 0.87,
            "derivation": (
                f"measured dedup S={s['dedup_factor']:.3f}, "
                f"W={w['dedup_factor']:.3f} vs signature 0.87"
            ),
        }
    )
    return rows
