"""UA mini-app: heat transfer on an adaptively refined unstructured mesh.

"UA: Provides the solution of a stylized heat transfer problem in a cubic
domain, discretized on an adaptively refined, and unstructured mesh.  The
benchmark features irregular, dynamic memory accesses."  (paper, Sec. V)

This reduced-scale version keeps exactly those characteristics:

* an **octree mesh** over the unit cube whose leaves refine around a
  moving Gaussian heat source and coarsen behind it (the mesh changes
  every ``adapt_every`` steps — the *dynamic* part);
* an explicit diffusion step whose neighbour lookups go through hash/
  index tables rather than strides (the *irregular gather* part —
  neighbour values are sampled from whatever leaf covers the face
  neighbour's center, across refinement levels);
* per-leaf heat content bookkeeping so tests can check the maximum
  principle and approximate conservation.

The mesh machinery (keys, refinement, neighbour resolution) is real and
tested; it is deliberately small (pure dict + numpy arrays), not a
production AMR framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require_positive

__all__ = ["UAMini"]

Key = tuple[int, int, int, int]  # (level, i, j, k)


@dataclass
class UAMini:
    """Adaptive octree heat solver.

    Parameters
    ----------
    base_level: level of the uniform starting mesh (cells = 8**level).
    max_level: finest refinement level allowed.
    refine_radius: cells within this distance of the source refine.
    kappa: diffusivity.
    """

    base_level: int = 2
    max_level: int = 4
    refine_radius: float = 0.26
    kappa: float = 0.02
    adapt_every: int = 5
    source_amp: float = 1.0
    keys: list[Key] = field(init=False)
    values: np.ndarray = field(init=False)
    time: float = field(init=False, default=0.0)
    _step_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        require_positive(self.base_level, "base_level")
        if self.max_level < self.base_level:
            raise ValueError("max_level must be >= base_level")
        n = 1 << self.base_level
        self.keys = [
            (self.base_level, i, j, k)
            for i in range(n)
            for j in range(n)
            for k in range(n)
        ]
        self.values = np.zeros(len(self.keys))
        self._adapt()

    # -- geometry helpers ----------------------------------------------------
    @staticmethod
    def cell_center(key: Key) -> tuple[float, float, float]:
        """Center coordinates of one octree cell."""
        lvl, i, j, k = key
        h = 1.0 / (1 << lvl)
        return ((i + 0.5) * h, (j + 0.5) * h, (k + 0.5) * h)

    @staticmethod
    def cell_size(key: Key) -> float:
        """Edge length of one octree cell at its refinement level."""
        return 1.0 / (1 << key[0])

    def source_center(self) -> tuple[float, float, float]:
        """The heat source orbits the domain center — the moving load
        that makes UA's access pattern *dynamic*."""
        t = self.time
        return (
            0.5 + 0.25 * np.cos(2 * np.pi * t),
            0.5 + 0.25 * np.sin(2 * np.pi * t),
            0.5,
        )

    def _wants_refine(self, key: Key) -> bool:
        cx, cy, cz = self.cell_center(key)
        sx, sy, sz = self.source_center()
        d = ((cx - sx) ** 2 + (cy - sy) ** 2 + (cz - sz) ** 2) ** 0.5
        return d < self.refine_radius and key[0] < self.max_level

    # -- adaptation ------------------------------------------------------------
    def _adapt(self) -> None:
        """Refine leaves near the source, coarsen far siblings.

        Refinement splits a leaf into its 8 children (value copied —
        preserving total heat since children sum to the parent volume);
        coarsening merges sibling octets into the volume-weighted mean.
        """
        # refinement pass
        new_keys: list[Key] = []
        new_vals: list[float] = []
        for key, val in zip(self.keys, self.values):
            if self._wants_refine(key):
                lvl, i, j, k = key
                for di in range(2):
                    for dj in range(2):
                        for dk in range(2):
                            new_keys.append(
                                (lvl + 1, 2 * i + di, 2 * j + dj, 2 * k + dk)
                            )
                            new_vals.append(float(val))
            else:
                new_keys.append(key)
                new_vals.append(float(val))

        # coarsening pass: merge complete octets that no longer refine
        by_parent: dict[Key, list[int]] = {}
        for idx, key in enumerate(new_keys):
            lvl, i, j, k = key
            if lvl > self.base_level:
                parent = (lvl - 1, i // 2, j // 2, k // 2)
                by_parent.setdefault(parent, []).append(idx)
        drop: set[int] = set()
        merged: list[tuple[Key, float]] = []
        for parent, children in by_parent.items():
            if len(children) == 8 and not self._wants_refine(parent):
                if all(not self._wants_refine(new_keys[c]) for c in children):
                    val = float(np.mean([new_vals[c] for c in children]))
                    merged.append((parent, val))
                    drop.update(children)
        keys = [k for idx, k in enumerate(new_keys) if idx not in drop]
        vals = [v for idx, v in enumerate(new_vals) if idx not in drop]
        for key, val in merged:
            keys.append(key)
            vals.append(val)
        self.keys = keys
        self.values = np.asarray(vals)
        self._index = {key: idx for idx, key in enumerate(self.keys)}

    # -- neighbour resolution -----------------------------------------------------
    def _leaf_at(self, x: float, y: float, z: float) -> int | None:
        """Index of the leaf containing point (x, y, z), or None outside."""
        if not (0 <= x < 1 and 0 <= y < 1 and 0 <= z < 1):
            return None
        for lvl in range(self.max_level, self.base_level - 1, -1):
            n = 1 << lvl
            key = (lvl, int(x * n), int(y * n), int(z * n))
            idx = self._index.get(key)
            if idx is not None:
                return idx
        return None

    def build_neighbor_table(self) -> tuple[np.ndarray, np.ndarray]:
        """(ncells, 6) neighbour indices and a validity mask.

        This is the irregular index structure the diffusion gather uses —
        rebuilding it after each adaptation is UA's "dynamic memory
        access" behaviour.
        """
        ncells = len(self.keys)
        nbr = np.zeros((ncells, 6), dtype=np.int64)
        valid = np.zeros((ncells, 6), dtype=bool)
        for idx, key in enumerate(self.keys):
            cx, cy, cz = self.cell_center(key)
            h = self.cell_size(key)
            for face, (dx, dy, dz) in enumerate(
                ((h, 0, 0), (-h, 0, 0), (0, h, 0), (0, -h, 0), (0, 0, h), (0, 0, -h))
            ):
                j = self._leaf_at(cx + dx, cy + dy, cz + dz)
                if j is not None:
                    nbr[idx, face] = j
                    valid[idx, face] = True
        return nbr, valid

    # -- physics ----------------------------------------------------------------
    def _source_field(self) -> np.ndarray:
        sx, sy, sz = self.source_center()
        centers = np.asarray([self.cell_center(k) for k in self.keys])
        d2 = ((centers - np.asarray([sx, sy, sz])) ** 2).sum(axis=1)
        return self.source_amp * np.exp(-d2 / (2 * 0.05**2))

    def total_heat(self) -> float:
        """Volume-integrated heat over the adaptive mesh."""
        vols = np.asarray([self.cell_size(k) ** 3 for k in self.keys])
        return float(np.sum(vols * self.values))

    def step(self, dt: float | None = None) -> None:
        """One explicit diffusion + source step (insulated boundaries)."""
        sizes = np.asarray([self.cell_size(k) for k in self.keys])
        if dt is None:
            hmin = float(sizes.min())
            dt = 0.1 * hmin * hmin / self.kappa
        nbr, valid = self.build_neighbor_table()
        u = self.values
        nbr_vals = np.where(valid, u[nbr], u[:, None])  # insulated: mirror
        lap = (nbr_vals - u[:, None]).sum(axis=1) / (sizes * sizes)
        self.values = u + dt * (self.kappa * lap + self._source_field())
        self.time += dt
        self._step_count += 1
        if self._step_count % self.adapt_every == 0:
            self._adapt()

    def run(self, steps: int) -> dict[str, float]:
        """Run *steps* steps; returns summary statistics for tests."""
        require_positive(steps, "steps")
        for _ in range(steps):
            self.step()
        return {
            "cells": float(len(self.keys)),
            "total_heat": self.total_heat(),
            "max": float(self.values.max()),
            "min": float(self.values.min()),
        }

    @property
    def ncells(self) -> int:
        """Number of leaf cells in the adaptive mesh."""
        return len(self.keys)

    @property
    def max_depth(self) -> int:
        """Deepest refinement level present in the mesh."""
        return max(k[0] for k in self.keys)
