"""LU mini-app: SSOR on a 3-D seven-diagonal system with wavefronts.

"LU: Solves a 3D seven-block-diagonal system using lower-upper triangular
systems solution.  This application works with regular sparse matrices,
and it uses symmetric successive over relaxation (SSOR) operations."
(paper, Sec. V)

The kernel is symmetric successive over-relaxation on the 7-point
convection-diffusion operator: each iteration performs a *lower*
triangular sweep (dependencies toward increasing i+j+k) and an *upper*
sweep (decreasing), relaxed by ``omega``.  The triangular solves are
vectorized by **hyperplane wavefronts** — all points with the same
``i+j+k`` are independent — which is exactly how the real LU benchmark
pipelines its sweeps across threads.

Tests verify convergence to the direct sparse solution (scipy) and the
classical SSOR contraction behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require_positive

__all__ = ["LUMini"]


@dataclass
class LUMini:
    """SSOR solver for ``(-nu Lap + a . grad) u = f`` on an n^3 grid.

    Parameters
    ----------
    n: interior points per dimension.
    omega: SSOR relaxation factor (NPB LU uses 1.2).
    nu: diffusion coefficient.
    adv: advection velocity (uniform), kept small for diagonal dominance.
    """

    n: int = 16
    omega: float = 1.2
    nu: float = 1.0
    adv: tuple[float, float, float] = (0.3, 0.2, 0.1)
    u: np.ndarray = field(init=False)
    f: np.ndarray = field(init=False)
    _coeffs: dict = field(init=False)
    _planes: list = field(init=False)

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        if not 0 < self.omega < 2:
            raise ValueError("omega must be in (0, 2) for SSOR")
        h = 1.0 / (self.n + 1)
        cd = self.nu / (h * h)
        self._coeffs = {"diag": 6.0 * cd}
        for axis, a in enumerate(self.adv):
            self._coeffs[("lo", axis)] = -cd - a / (2 * h)  # neighbor -1
            self._coeffs[("hi", axis)] = -cd + a / (2 * h)  # neighbor +1
        self.u = np.zeros((self.n, self.n, self.n))
        rng = np.random.default_rng(42)
        self.f = rng.standard_normal((self.n, self.n, self.n))
        # wavefront index lists: points grouped by i+j+k
        idx = np.indices((self.n, self.n, self.n)).reshape(3, -1)
        s = idx.sum(axis=0)
        self._planes = [
            tuple(idx[:, s == lvl]) for lvl in range(3 * (self.n - 1) + 1)
        ]

    # ------------------------------------------------------------------
    def apply_operator(self, u: np.ndarray) -> np.ndarray:
        """Dense stencil application of the 7-point operator."""
        out = self._coeffs["diag"] * u
        for axis in range(3):
            lo = np.roll(u, 1, axis=axis)
            hi = np.roll(u, -1, axis=axis)
            sl0 = [slice(None)] * 3
            sl0[axis] = 0
            sl1 = [slice(None)] * 3
            sl1[axis] = -1
            lo[tuple(sl0)] = 0.0
            hi[tuple(sl1)] = 0.0
            out += self._coeffs[("lo", axis)] * lo
            out += self._coeffs[("hi", axis)] * hi
        return out

    def residual(self) -> float:
        """RMS residual of the current iterate."""
        r = self.f - self.apply_operator(self.u)
        return float(np.sqrt(np.mean(r * r)))

    # ------------------------------------------------------------------
    def _sweep(self, forward: bool) -> None:
        """One triangular SSOR sweep over hyperplane wavefronts.

        In the forward (lower) sweep a point uses already-updated values
        from its -1 neighbours; planes are processed in increasing i+j+k
        so every dependency is satisfied — all points within a plane
        update simultaneously (the LU pipelining structure).
        """
        diag = self._coeffs["diag"]
        planes = self._planes if forward else self._planes[::-1]
        u, f = self.u, self.f
        n = self.n
        del n  # bounds handled inside _gather
        for pts in planes:
            i, j, k = pts
            acc = f[i, j, k].copy()
            for axis in range(3):
                acc -= self._coeffs[("lo", axis)] * self._gather(
                    u, i, j, k, axis, -1
                )
                acc -= self._coeffs[("hi", axis)] * self._gather(
                    u, i, j, k, axis, +1
                )
            unew = acc / diag
            u[i, j, k] = (1 - self.omega) * u[i, j, k] + self.omega * unew

    @staticmethod
    def _gather(
        u: np.ndarray, i: np.ndarray, j: np.ndarray, k: np.ndarray,
        axis: int, off: int,
    ) -> np.ndarray:
        """Neighbour values with zero Dirichlet boundaries (a genuine
        irregular gather — the memory pattern the paper's gather loop
        models)."""
        n = u.shape[0]
        coords = [i, j, k]
        c = coords[axis] + off
        valid = (c >= 0) & (c < n)
        cc = np.clip(c, 0, n - 1)
        coords = [x.copy() for x in coords]
        coords[axis] = cc
        vals = u[tuple(coords)]
        return np.where(valid, vals, 0.0)

    # ------------------------------------------------------------------
    def iterate(self, iters: int) -> list[float]:
        """Run *iters* SSOR iterations (forward + backward sweep each);
        returns the residual history."""
        require_positive(iters, "iters")
        hist = []
        for _ in range(iters):
            self._sweep(forward=True)
            self._sweep(forward=False)
            hist.append(self.residual())
        return hist

    def solve_direct(self) -> np.ndarray:
        """Reference solution via scipy sparse LU (for tests)."""
        import scipy.sparse as sps
        import scipy.sparse.linalg as spla

        n = self.n
        size = n**3

        def lin(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
            return (i * n + j) * n + k

        idx = np.indices((n, n, n)).reshape(3, -1)
        i, j, k = idx
        rows = [lin(i, j, k)]
        cols = [lin(i, j, k)]
        data = [np.full(size, self._coeffs["diag"])]
        for axis in range(3):
            for off, key in ((-1, ("lo", axis)), (+1, ("hi", axis))):
                c = idx.copy()
                c[axis] += off
                valid = (c[axis] >= 0) & (c[axis] < n)
                rows.append(lin(i, j, k)[valid])
                cols.append(lin(c[0], c[1], c[2])[valid])
                data.append(np.full(valid.sum(), self._coeffs[key]))
        a = sps.coo_matrix(
            (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
            shape=(size, size),
        ).tocsr()
        return spla.spsolve(a, self.f.ravel()).reshape((n, n, n))
