"""NPB EP — the Embarrassingly Parallel benchmark, complete.

"It generates pairs of Gaussian random deviates according to a specific
scheme.  The goal of this benchmark is to establish a reference point for
platforms' peak performance."  (paper, Sec. V)

The scheme (NPB 3.x): draw ``2n`` uniforms from the official 46-bit LCG,
map to ``x = 2u - 1`` on (-1, 1), and for each pair with
``t = x1^2 + x2^2 <= 1`` produce the Marsaglia polar Gaussian pair

    X = x1 * sqrt(-2 log t / t),   Y = x2 * sqrt(-2 log t / t)

accumulating ``sx = sum X``, ``sy = sum Y`` and the annulus counts
``q[l]``, ``l = floor(max(|X|, |Y|))``.  Verification compares ``sx, sy``
against the published class constants to 1e-8 relative error.

This implementation is *exact*: the LCG is bit-identical to NPB's
(:mod:`repro.npb.lcg`), evaluation is vectorized in chunks (the paper's
point — EP vectorizes beautifully once the RNG is batch-generated), and
``math="repro"`` routes log/sqrt through this project's own kernels to
demonstrate they hold verification accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require_in, require_positive
from repro.npb.classes import CLASSES
from repro.npb.lcg import SEED_NPB, randlc_batch

__all__ = ["EP_VERIFY", "EPResult", "run_ep"]

#: official NPB verification sums per class
EP_VERIFY: dict[str, tuple[float, float]] = {
    "S": (-3.247834652034740e3, -6.958407078382297e3),
    "W": (-2.863319731645753e3, -6.320053679109499e3),
    "A": (-4.295875165629892e3, -1.580732573678431e4),
    "B": (4.033815542441498e4, -2.660669192809235e4),
    "C": (4.764367927995374e4, -8.084072988043731e4),
}

#: number of annulus bins
NQ = 10


@dataclass(frozen=True)
class EPResult:
    """Outcome of one EP run."""

    klass: str
    pairs: int
    sx: float
    sy: float
    q: tuple[int, ...]
    accepted: int

    @property
    def verified(self) -> bool:
        """NPB acceptance test: 1e-8 relative error on both sums."""
        ref = EP_VERIFY.get(self.klass)
        if ref is None:
            return False
        ex, ey = ref
        return (
            abs((self.sx - ex) / ex) <= 1e-8
            and abs((self.sy - ey) / ey) <= 1e-8
        )

    @property
    def gaussian_count(self) -> int:
        """Number of accepted Gaussian pairs (the NPB 'counts')."""
        return self.accepted


def run_ep(
    klass: str = "S",
    *,
    math: str = "numpy",
    chunk_pairs: int = 1 << 20,
    log2_pairs: int | None = None,
) -> EPResult:
    """Run EP for *klass* (or an explicit ``log2_pairs`` size).

    ``math="numpy"`` uses libm-backed numpy log/sqrt; ``math="repro"``
    uses this project's :func:`~repro.mathlib.log.log_poly` and
    :func:`~repro.mathlib.newton.sqrt_newton` — both pass verification,
    demonstrating the vector-library accuracy class is sufficient.
    """
    require_in(math, ("numpy", "repro"), "math")
    if log2_pairs is None:
        if klass not in CLASSES:
            raise KeyError(f"unknown NPB class {klass!r}")
        log2_pairs = CLASSES[klass].ep_log2_pairs
    require_positive(chunk_pairs, "chunk_pairs")
    pairs = 1 << log2_pairs

    if math == "repro":
        from repro.mathlib.log import log_poly
        from repro.mathlib.newton import sqrt_newton

        log_fn, sqrt_fn = log_poly, lambda v: sqrt_newton(v, steps=3)
    else:
        log_fn, sqrt_fn = np.log, np.sqrt

    sx = 0.0
    sy = 0.0
    q = np.zeros(NQ, dtype=np.int64)
    accepted = 0

    done = 0
    while done < pairs:
        n = min(chunk_pairs, pairs - done)
        # uniforms 2*done .. 2*(done+n); skip-ahead keeps chunks exact
        u = _stream_chunk(2 * done, 2 * n)
        x = 2.0 * u[0::2] - 1.0
        y = 2.0 * u[1::2] - 1.0
        t = x * x + y * y
        keep = t <= 1.0
        tk = t[keep]
        if tk.size:
            fac = sqrt_fn(-2.0 * log_fn(tk) / tk)
            gx = x[keep] * fac
            gy = y[keep] * fac
            sx += float(np.sum(gx))
            sy += float(np.sum(gy))
            l = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
            q += np.bincount(np.minimum(l, NQ - 1), minlength=NQ)
            accepted += tk.size
        done += n

    return EPResult(
        klass=klass,
        pairs=pairs,
        sx=sx,
        sy=sy,
        q=tuple(int(v) for v in q),
        accepted=accepted,
    )


def _stream_chunk(offset: int, count: int) -> np.ndarray:
    """Uniforms ``offset+1 .. offset+count`` of the NPB stream."""
    from repro.npb.lcg import Randlc

    gen = Randlc(SEED_NPB)
    gen.skip(offset)
    return gen.next_batch(count)
