"""Unified NPB runner: one interface over the six benchmarks.

``run_benchmark("ep", "S")`` runs the real numerics (full EP/CG, the
BT/SP/LU/UA mini solvers at the class's reduced scale) and returns a
uniform :class:`BenchmarkReport` with the verification outcome — the
NPB-style SUCCESSFUL/FAILED banner, programmatically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro._util import require_in
from repro.npb.classes import CLASSES

__all__ = ["BenchmarkReport", "run_benchmark", "BENCHMARKS"]

BENCHMARKS = ("ep", "cg", "bt", "sp", "lu", "ua")

#: reduced iteration/grid settings per class for the mini solvers
_MINI_SCALE = {
    "S": {"grid": 8, "iters": 30},
    "W": {"grid": 10, "iters": 40},
    "A": {"grid": 12, "iters": 50},
    "B": {"grid": 14, "iters": 60},
    "C": {"grid": 16, "iters": 60},
}


@dataclass(frozen=True)
class BenchmarkReport:
    """Uniform result record for any NPB benchmark run."""

    benchmark: str
    klass: str
    seconds: float
    verified: bool
    metric_name: str
    metric_value: float
    detail: str = ""

    @property
    def banner(self) -> str:
        """NPB-style completion banner for the text report."""
        status = "SUCCESSFUL" if self.verified else "UNSUCCESSFUL"
        return (
            f" {self.benchmark.upper()} Benchmark Completed (class "
            f"{self.klass}): VERIFICATION {status}\n"
            f"   {self.metric_name} = {self.metric_value:.6e}   "
            f"time = {self.seconds:.2f} s"
        )


def run_benchmark(name: str, klass: str = "S") -> BenchmarkReport:
    """Run benchmark *name* at class *klass* and verify it.

    EP and CG run the complete official algorithms (official verification
    constants for the classes that have them); BT/SP/LU/UA run the real
    mini solvers with their analytic acceptance tests (residual
    reduction, convergence, conservation).
    """
    require_in(name.lower(), BENCHMARKS, "benchmark")
    if klass not in CLASSES:
        raise KeyError(f"unknown NPB class {klass!r}")
    name = name.lower()
    t0 = time.perf_counter()

    if name == "ep":
        from repro.npb.ep import run_ep

        r = run_ep(klass)
        return BenchmarkReport(
            benchmark="ep", klass=klass, seconds=time.perf_counter() - t0,
            verified=r.verified, metric_name="sx", metric_value=r.sx,
            detail=f"sy={r.sy:.6e}, accepted={r.accepted}",
        )

    if name == "cg":
        from repro.npb.cg import run_cg

        r = run_cg(klass)
        return BenchmarkReport(
            benchmark="cg", klass=klass, seconds=time.perf_counter() - t0,
            verified=r.verified, metric_name="zeta", metric_value=r.zeta,
            detail=f"rnorm={r.rnorm:.2e}",
        )

    scale = _MINI_SCALE[klass]
    if name == "bt":
        from repro.npb.bt import BTMini

        m = BTMini(n=scale["grid"], dt=0.05)
        hist = m.run(scale["iters"])
        ok = hist[-1] < hist[0] / 20 and m.error() < 0.05
        return BenchmarkReport(
            benchmark="bt", klass=klass, seconds=time.perf_counter() - t0,
            verified=ok, metric_name="residual", metric_value=hist[-1],
            detail=f"error vs manufactured solution = {m.error():.2e}",
        )

    if name == "sp":
        from repro.npb.sp import SPMini

        m = SPMini(n=max(scale["grid"], 6), dt=0.05)
        hist = m.run(scale["iters"])
        ok = hist[-1] < hist[0] / 50 and m.error() < 0.05
        return BenchmarkReport(
            benchmark="sp", klass=klass, seconds=time.perf_counter() - t0,
            verified=ok, metric_name="residual", metric_value=hist[-1],
            detail=f"error = {m.error():.2e}",
        )

    if name == "lu":
        from repro.npb.lu import LUMini

        m = LUMini(n=scale["grid"])
        hist = m.iterate(max(scale["iters"] // 2, 10))
        ref = m.solve_direct()
        err = float(np.abs(m.u - ref).max())
        ok = err < 1e-5
        return BenchmarkReport(
            benchmark="lu", klass=klass, seconds=time.perf_counter() - t0,
            verified=ok, metric_name="residual", metric_value=hist[-1],
            detail=f"max err vs direct solve = {err:.2e}",
        )

    # ua
    from repro.npb.ua import UAMini

    m = UAMini(base_level=2, max_level=min(2 + scale["grid"] // 6, 5))
    stats = m.run(scale["iters"])
    ok = (
        stats["min"] >= 0.0
        and np.isfinite(stats["max"])
        and stats["total_heat"] > 0.0
        and m.ncells >= 64
    )
    return BenchmarkReport(
        benchmark="ua", klass=klass, seconds=time.perf_counter() - t0,
        verified=ok, metric_name="total_heat",
        metric_value=stats["total_heat"],
        detail=f"cells={m.ncells}, max depth={m.max_depth}",
    )
