"""SP mini-app: Beam-Warming ADI with scalar pentadiagonal solves.

"SP ... based on a Beam-Warming approximate factorization ... The
resulting system has Scalar Pentadiagonal bands of linear equations that
are solved sequentially along each dimension.  It shows good load
balancing behavior but poor cache behavior."  (paper, Sec. V)

The pentadiagonal bands come from SP's fourth-order artificial
dissipation: the implicit directional operator is

    I + dt * (A d/dx + eps4 * h^-4 * (fourth difference))

whose stencil ``(1, -4, 6, -4, 1)`` spans five points.
:func:`penta_thomas` is the real scalar pentadiagonal Gaussian
elimination, vectorized across lines; :class:`SPMini` drives the x/y/z
factored sweeps on a 5-component system (the components decouple into
independent scalar solves — exactly why SP's systems are scalar where
BT's are block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require_positive

__all__ = ["penta_thomas", "SPMini", "NCOMP"]

NCOMP = 5


def penta_thomas(bands: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve many scalar pentadiagonal systems without pivoting.

    Parameters
    ----------
    bands:
        Shape ``(nlines, n, 5)`` holding, per row, the coefficients of
        offsets ``(-2, -1, 0, +1, +2)``.  Out-of-range band entries
        (first/last two rows) are ignored.
    rhs:
        Shape ``(nlines, n)``.

    The elimination is sequential along the line (SP's data dependence)
    and vectorized across lines.  Diagonal dominance is assumed, as in
    the benchmark (dissipation-dominated operators).
    """
    if bands.ndim != 3 or bands.shape[2] != 5:
        raise ValueError("bands must have shape (nlines, n, 5)")
    nlines, n, _ = bands.shape
    if rhs.shape != (nlines, n):
        raise ValueError(f"rhs shape {rhs.shape} != {(nlines, n)}")
    if n < 3:
        raise ValueError("need at least 3 rows")

    a = bands[:, :, 0].copy()  # offset -2
    b = bands[:, :, 1].copy()  # offset -1
    c = bands[:, :, 2].copy()  # offset  0
    d = bands[:, :, 3].copy()  # offset +1
    e = bands[:, :, 4].copy()  # offset +2
    f = rhs.copy()

    # forward elimination of sub-diagonals b (k-1) and a (k-2)
    for k in range(1, n):
        m1 = b[:, k] / c[:, k - 1]
        c[:, k] -= m1 * d[:, k - 1]
        if k + 1 < n:
            d[:, k] -= m1 * e[:, k - 1]
        f[:, k] -= m1 * f[:, k - 1]
        if k + 1 < n:
            m2 = a[:, k + 1] / c[:, k - 1]
            b[:, k + 1] -= m2 * d[:, k - 1]
            c[:, k + 1] -= m2 * e[:, k - 1]
            f[:, k + 1] -= m2 * f[:, k - 1]

    # back substitution
    x = np.empty_like(f)
    x[:, -1] = f[:, -1] / c[:, -1]
    x[:, -2] = (f[:, -2] - d[:, -2] * x[:, -1]) / c[:, -2]
    for k in range(n - 3, -1, -1):
        x[:, k] = (f[:, k] - d[:, k] * x[:, k + 1] - e[:, k] * x[:, k + 2]) / c[:, k]
    return x


@dataclass
class SPMini:
    """Reduced-scale SP: factored x/y/z pentadiagonal sweeps.

    Solves ``u_t + sum_d a_d u_x_d = nu Lap(u) - eps4 sum_d h^3 D4_d u + f``
    towards a manufactured steady state, with each implicit directional
    operator pentadiagonal through the fourth-difference dissipation.
    """

    n: int = 16
    dt: float = 0.02
    nu: float = 0.05
    eps4: float = 0.02
    u: np.ndarray = field(init=False)
    forcing: np.ndarray = field(init=False)
    target: np.ndarray = field(init=False)
    _adv: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        require_positive(self.dt, "dt")
        if self.n < 6:
            raise ValueError("grid too small for five-point bands")
        self._adv = 0.5 + 0.1 * np.arange(NCOMP)  # per-component wave speeds
        self.u = np.zeros((self.n, self.n, self.n, NCOMP))
        h = 1.0 / (self.n + 1)
        x = np.sin(np.pi * h * np.arange(1, self.n + 1))
        prof = x[:, None, None] * x[None, :, None] * x[None, None, :]
        self.target = prof[..., None] * (1.0 + 0.1 * np.arange(NCOMP))
        self.forcing = self._apply_spatial_operator(self.target)

    def _shift(self, u: np.ndarray, off: int, axis: int) -> np.ndarray:
        """Shift with zero (Dirichlet) boundaries."""
        out = np.roll(u, -off, axis=axis)
        sl = [slice(None)] * u.ndim
        if off > 0:
            sl[axis] = slice(-off, None)
        else:
            sl[axis] = slice(None, -off)
        out[tuple(sl)] = 0.0
        return out

    def _apply_spatial_operator(self, u: np.ndarray) -> np.ndarray:
        h = 1.0 / (self.n + 1)
        out = np.zeros_like(u)
        for axis in range(3):
            up1 = self._shift(u, +1, axis)
            dn1 = self._shift(u, -1, axis)
            up2 = self._shift(u, +2, axis)
            dn2 = self._shift(u, -2, axis)
            conv = (up1 - dn1) / (2 * h) * self._adv
            diff = (up1 - 2 * u + dn1) / (h * h)
            fourth = (up2 - 4 * up1 + 6 * u - 4 * dn1 + dn2) / h
            out += conv - self.nu * diff + self.eps4 * fourth
        return out

    def _direction_bands(self, axis: int) -> np.ndarray:
        """Pentadiagonal bands of ``I + dt * D_axis`` (per component)."""
        h = 1.0 / (self.n + 1)
        n = self.n
        bands = np.zeros((NCOMP, n, 5))
        for comp in range(NCOMP):
            adv = self._adv[comp]
            bands[comp, :, 0] = self.dt * self.eps4 / h
            bands[comp, :, 1] = self.dt * (
                -adv / (2 * h) - self.nu / (h * h) - 4 * self.eps4 / h
            )
            bands[comp, :, 2] = 1.0 + self.dt * (
                2 * self.nu / (h * h) + 6 * self.eps4 / h
            )
            bands[comp, :, 3] = self.dt * (
                adv / (2 * h) - self.nu / (h * h) - 4 * self.eps4 / h
            )
            bands[comp, :, 4] = self.dt * self.eps4 / h
        return bands

    def _sweep(self, rhs: np.ndarray, axis: int) -> np.ndarray:
        moved = np.moveaxis(rhs, axis, 2)  # (a, b, line, comp)
        shape = moved.shape
        bands_c = self._direction_bands(axis)
        out = np.empty_like(moved)
        nlines = shape[0] * shape[1]
        for comp in range(NCOMP):
            lines = moved[..., comp].reshape(nlines, shape[2])
            bands = np.broadcast_to(
                bands_c[comp], (nlines, self.n, 5)
            )
            out[..., comp] = penta_thomas(bands, lines).reshape(shape[:3])
        return np.moveaxis(out, 2, axis)

    def residual(self) -> float:
        """RMS residual of the current iterate."""
        r = self.forcing - self._apply_spatial_operator(self.u)
        return float(np.sqrt(np.mean(r * r)))

    def error(self) -> float:
        """RMS distance from the manufactured target solution."""
        d = self.u - self.target
        return float(np.sqrt(np.mean(d * d)))

    def step(self) -> float:
        """Advance one ADI step; returns the new residual."""
        rhs = self.dt * (self.forcing - self._apply_spatial_operator(self.u))
        for axis in range(3):
            rhs = self._sweep(rhs, axis)
        self.u += rhs
        return self.residual()

    def run(self, iters: int) -> list[float]:
        """Run *iters* ADI steps; returns the residual history."""
        require_positive(iters, "iters")
        return [self.step() for _ in range(iters)]
