"""NAS Parallel Benchmarks (NPB) — the Section V workload suite.

Two layers, as everywhere in this reproduction:

* **Real numerics at tractable scale** — EP is a complete, bit-exact
  implementation of the NPB algorithm (official ``randlc`` LCG, Marsaglia
  polar Gaussian pairs, annulus tallies); CG is a complete conjugate-
  gradient/inverse-power-iteration benchmark on an NPB-structured sparse
  matrix; BT, SP and LU are real ADI / Beam–Warming / SSOR solvers built
  on genuine block-tridiagonal, pentadiagonal and relaxation kernels; UA
  is a real adaptively-refined heat-transfer kernel with irregular
  gather/scatter access.  All are verified by tests.
* **Class-C workload signatures** (:mod:`repro.npb.workloads`) — flop,
  traffic and math-call totals at the paper's problem sizes
  (162^3 grids, 2^32 pairs, n=150000), driving the machine model to
  regenerate Figures 3-6.
"""

from repro.npb.classes import CLASSES, ProblemClass
from repro.npb.lcg import Randlc, randlc_batch
from repro.npb.ep import EPResult, run_ep
from repro.npb.cg import CGResult, run_cg
from repro.npb.bt import BTMini
from repro.npb.sp import SPMini
from repro.npb.lu import LUMini
from repro.npb.ua import UAMini
from repro.npb.workloads import NPB_WORKLOADS, npb_workload
from repro.npb.driver import BenchmarkReport, run_benchmark
from repro.npb.characterize import signature_consistency

__all__ = [
    "CLASSES",
    "ProblemClass",
    "Randlc",
    "randlc_batch",
    "EPResult",
    "run_ep",
    "CGResult",
    "run_cg",
    "BTMini",
    "SPMini",
    "LUMini",
    "UAMini",
    "NPB_WORKLOADS",
    "npb_workload",
    "BenchmarkReport",
    "run_benchmark",
    "signature_consistency",
]
