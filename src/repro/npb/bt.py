"""BT mini-app: ADI with 5x5 block-tridiagonal solves.

"BT ... uses an implicit algorithm to solve 3-dimensional compressible
Navier-Stokes equations ... based on an Alternating Direction Implicit
(ADI) approximate factorization that decouples the x, y, and z
dimensions.  The resulting systems are Block-Tridiagonal of 5x5 blocks
and are solved sequentially along each dimension."  (paper, Sec. V)

This module implements exactly that numerical skeleton at reduced scale:

* :func:`block_thomas` — the real 5x5 block-tridiagonal Thomas solver,
  vectorized over all grid lines simultaneously (the memory-access
  structure that makes BT cache-friendly and load-balanced).
* :class:`BTMini` — an ADI time-stepper for a 5-component linear
  hyperbolic-parabolic system ``u_t + A u_x + B u_y + C u_z = nu Lap(u) + f``
  with frozen characteristic matrices, the same operator shape BT's
  linearized Navier-Stokes sweeps have.  Each step factors
  ``(I - dt Dx)(I - dt Dy)(I - dt Dz)`` and performs three directional
  block-tridiagonal solves.

Tests verify the Thomas solver against dense solves and the ADI stepper
against the analytic steady state of a manufactured problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require_positive

__all__ = ["block_thomas", "BTMini", "NCOMP"]

#: components per grid point (mass, 3 momenta, energy in real BT)
NCOMP = 5


def block_thomas(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve many block-tridiagonal systems by the block Thomas algorithm.

    Parameters
    ----------
    lower, diag, upper:
        Block bands of shape ``(nlines, n, c, c)``; ``lower[:, 0]`` and
        ``upper[:, -1]`` are ignored.
    rhs:
        Right-hand sides, shape ``(nlines, n, c)``.

    Returns the solutions with the same shape as *rhs*.  The sweep runs
    sequentially along the line (the data dependence BT exposes) but is
    fully vectorized across lines — precisely how the benchmark
    parallelizes.
    """
    nlines, n, c, c2 = diag.shape
    if c != c2:
        raise ValueError("diagonal blocks must be square")
    if rhs.shape != (nlines, n, c):
        raise ValueError(f"rhs shape {rhs.shape} != {(nlines, n, c)}")
    if lower.shape != diag.shape or upper.shape != diag.shape:
        raise ValueError("band shapes disagree")

    # forward elimination
    dprime = np.empty_like(diag)
    rprime = np.empty_like(rhs)
    dprime[:, 0] = diag[:, 0]
    rprime[:, 0] = rhs[:, 0]
    for k in range(1, n):
        # m = lower[k] @ inv(dprime[k-1])
        m = np.linalg.solve(
            np.swapaxes(dprime[:, k - 1], -1, -2),
            np.swapaxes(lower[:, k], -1, -2),
        )
        m = np.swapaxes(m, -1, -2)
        dprime[:, k] = diag[:, k] - m @ upper[:, k - 1]
        rprime[:, k] = rhs[:, k] - np.einsum("lij,lj->li", m, rprime[:, k - 1])

    # back substitution
    x = np.empty_like(rhs)
    x[:, -1] = np.linalg.solve(dprime[:, -1], rprime[:, -1][..., None])[..., 0]
    for k in range(n - 2, -1, -1):
        b = rprime[:, k] - np.einsum("lij,lj->li", upper[:, k], x[:, k + 1])
        x[:, k] = np.linalg.solve(dprime[:, k], b[..., None])[..., 0]
    return x


def _default_char_matrix(seed: int) -> np.ndarray:
    """A well-conditioned symmetric 5x5 characteristic matrix."""
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((NCOMP, NCOMP))
    sym = 0.25 * (q + q.T)
    return sym + NCOMP * np.eye(NCOMP) * 0.1


@dataclass
class BTMini:
    """Reduced-scale BT: ADI over a cubic grid of 5-vectors.

    Parameters
    ----------
    n: grid points per dimension (interior).
    dt: time step.
    nu: diffusion coefficient.
    """

    n: int = 12
    dt: float = 0.01
    nu: float = 0.05
    _mats: tuple[np.ndarray, np.ndarray, np.ndarray] = field(init=False)
    u: np.ndarray = field(init=False)
    forcing: np.ndarray = field(init=False)
    target: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        require_positive(self.dt, "dt")
        require_positive(self.nu, "nu")
        if self.n < 4:
            raise ValueError("grid too small for the stencils")
        self._mats = tuple(_default_char_matrix(s) for s in (1, 2, 3))
        self.u = np.zeros((self.n, self.n, self.n, NCOMP))
        # manufactured steady state: smooth product of sines per component
        h = 1.0 / (self.n + 1)
        x = np.sin(np.pi * h * np.arange(1, self.n + 1))
        prof = x[:, None, None] * x[None, :, None] * x[None, None, :]
        comp_scale = 1.0 + 0.2 * np.arange(NCOMP)
        self.target = prof[..., None] * comp_scale
        self.forcing = self._apply_spatial_operator(self.target)

    # -- spatial operator ----------------------------------------------------
    def _apply_spatial_operator(self, u: np.ndarray) -> np.ndarray:
        """``L u = sum_d (A_d d/dx_d - nu d2/dx_d^2) u`` with Dirichlet-0
        boundaries (central differences)."""
        h = 1.0 / (self.n + 1)
        out = np.zeros_like(u)
        for axis, mat in enumerate(self._mats):
            up = np.roll(u, -1, axis=axis)
            dn = np.roll(u, 1, axis=axis)
            # zero-boundary: rolled-in planes must be zero
            sl_hi = [slice(None)] * 4
            sl_hi[axis] = -1
            sl_lo = [slice(None)] * 4
            sl_lo[axis] = 0
            up[tuple(sl_hi)] = 0.0
            dn[tuple(sl_lo)] = 0.0
            conv = (up - dn) / (2 * h) @ mat.T
            diff = (up - 2 * u + dn) / (h * h)
            out += conv - self.nu * diff
        return out

    def _direction_bands(
        self, axis: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bands of ``I + dt * D_axis`` for the implicit sweep."""
        h = 1.0 / (self.n + 1)
        mat = self._mats[axis]
        eye = np.eye(NCOMP)
        low = self.dt * (-mat / (2 * h) - self.nu / (h * h) * eye)
        dia = eye + self.dt * (2 * self.nu / (h * h)) * eye
        upp = self.dt * (mat / (2 * h) - self.nu / (h * h) * eye)
        nlines = self.n * self.n
        lower = np.broadcast_to(low, (nlines, self.n, NCOMP, NCOMP)).copy()
        diag = np.broadcast_to(dia, (nlines, self.n, NCOMP, NCOMP)).copy()
        upper = np.broadcast_to(upp, (nlines, self.n, NCOMP, NCOMP)).copy()
        return lower, diag, upper

    def _sweep(self, rhs: np.ndarray, axis: int) -> np.ndarray:
        """One directional solve of the ADI factorization."""
        moved = np.moveaxis(rhs, axis, 2)  # (a, b, line_dim, c)
        shape = moved.shape
        lines = moved.reshape(-1, shape[2], NCOMP)
        lower, diag, upper = self._direction_bands(axis)
        sol = block_thomas(lower, diag, upper, lines)
        return np.moveaxis(sol.reshape(shape), 2, axis)

    # -- time stepping ---------------------------------------------------------
    def residual(self) -> float:
        """RMS of ``f - L u`` (zero at the manufactured steady state)."""
        r = self.forcing - self._apply_spatial_operator(self.u)
        return float(np.sqrt(np.mean(r * r)))

    def error(self) -> float:
        """RMS distance to the manufactured solution."""
        d = self.u - self.target
        return float(np.sqrt(np.mean(d * d)))

    def step(self) -> float:
        """One ADI step; returns the post-step residual.

        ``(I + dt Dx)(I + dt Dy)(I + dt Dz) du = dt (f - L u)`` —
        the Beam-Warming/ADI shape of BT's x/y/z factored sweeps.
        """
        rhs = self.dt * (self.forcing - self._apply_spatial_operator(self.u))
        for axis in range(3):
            rhs = self._sweep(rhs, axis)
        self.u += rhs
        return self.residual()

    def run(self, iters: int) -> list[float]:
        """Run *iters* ADI steps, returning the residual history."""
        require_positive(iters, "iters")
        return [self.step() for _ in range(iters)]
