"""Whole-kernel profiling: run one suite kernel under counters.

:func:`profile_kernel` is the programmatic form of the ``repro profile``
CLI subcommand: it compiles one Section III suite loop for a toolchain,
schedules it on the target core, executes it on the full system model —
all inside a :class:`~repro.perf.counters.ProfileScope` — and returns a
:class:`KernelProfile` bundling the raw counters, the analytic results,
an ECM-style text breakdown and the stable JSON document.

The profile is *self-reconciling*: ``derived.reconciliation`` in the
JSON recomputes the run's compute seconds from the cycle counters and
its memory seconds from the byte/bandwidth counters, so a reader can
verify that the counters account for the analytic
:class:`~repro.engine.executor.KernelRun` without re-running the model
(the repository's tests assert agreement to well under 1%).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.perf.counters import CounterSet, ProfileScope
from repro.perf.report import profile_to_json, render_counters

__all__ = ["KernelProfile", "profile_kernel", "default_system_for"]


def default_system_for(toolchain_name: str) -> str:
    """System key a toolchain targets by default (SVE -> Ookami A64FX,
    x86 -> the paper's Skylake 6140 comparison node)."""
    from repro.compilers.toolchains import get_toolchain

    return "ookami" if get_toolchain(toolchain_name).target == "sve" else "skylake"


@dataclass(frozen=True)
class KernelProfile:
    """One kernel's counter-validated execution profile."""

    kernel: str
    toolchain: str
    system: str
    counters: CounterSet
    schedule: Any   # ScheduleResult (untyped to keep import graph light)
    run: Any        # KernelRun
    quality_factor: float

    # ------------------------------------------------------------------
    @property
    def cycles_per_element(self) -> float:
        """Compute cycles per source element, toolchain factor included."""
        return self.schedule.cycles_per_element * self.quality_factor

    def derived(self) -> dict[str, Any]:
        """Quantities computed from the counters + the model's answers."""
        run = self.run
        clock_hz = run.clock_ghz * 1e9
        c = self.counters
        compute_from_cycles = c.get("exec.compute_cycles", 0.0) / clock_hz
        memory_from_bytes = c.total("exec.stream_seconds")
        return {
            "cycles_per_iter": run.cycles_per_iter,
            "cycles_per_element": self.cycles_per_element,
            "elements_per_iter": self.schedule.elements_per_iter,
            "n_iters": run.iters,
            "clock_ghz": run.clock_ghz,
            "quality_factor": self.quality_factor,
            "compute_seconds": run.compute_seconds,
            "memory_seconds": run.memory_seconds,
            "hidden_seconds": run.hidden_seconds,
            "seconds": run.seconds,
            "bound": run.bound,
            "reconciliation": {
                "compute_seconds_from_cycles": compute_from_cycles,
                "memory_seconds_from_bytes": memory_from_bytes,
                "seconds_from_counters": max(
                    compute_from_cycles, memory_from_bytes
                ),
            },
        }

    def to_json(self) -> dict[str, Any]:
        """The stable, versioned JSON profile document."""
        return profile_to_json(
            kernel=self.kernel,
            toolchain=self.toolchain,
            system=self.system,
            counters=self.counters,
            derived=self.derived(),
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ECM-style text breakdown plus the grouped counter dump."""
        run = self.run
        sched = self.schedule
        c = self.counters
        lines = [
            f"== profile: {self.kernel} | toolchain={self.toolchain} "
            f"| system={self.system} ==",
            "",
            f"schedule   {sched.cycles_per_iter:.2f} cyc/iter over "
            f"{sched.elements_per_iter} elem/iter -> "
            f"{self.cycles_per_element:.2f} cyc/elem "
            f"(core bound: {sched.bound}, quality x{self.quality_factor:.2f})",
        ]
        used = c.get("pipeline.issue_slots.used", 0.0)
        slot_total = c.get("pipeline.issue_slots.total", 0.0)
        if slot_total:
            stall = c.get("pipeline.issue_slots.stalled", 0.0)
            lines.append(
                f"front end  {int(used)} of {int(slot_total)} issue slots "
                f"used, {int(stall)} stalled ({100.0 * stall / slot_total:.1f}%)"
            )
        mix = c.group("pipeline.instr_mix")
        if mix:
            top = sorted(mix.items(), key=lambda kv: -kv[1])[:6]
            lines.append(
                "instr mix  "
                + ", ".join(f"{op} {int(n)}" for op, n in top)
                + (" ..." if len(mix) > 6 else "")
            )
        lines.append("")
        # --- ECM-style time decomposition ------------------------------
        lines.append("ECM-style decomposition (full run):")
        lines.append(
            f"  T_comp             {run.compute_seconds * 1e6:10.2f} us   "
            f"({c.get('exec.compute_cycles', 0.0):.0f} cycles "
            f"@ {run.clock_ghz:.2f} GHz)"
        )
        for name, seconds in sorted(c.group("exec.stream_seconds").items()):
            bw = c.get(f"exec.stream_bw_gbs.{name}", 0.0)
            lines.append(
                f"  T_mem({name:<8})    {seconds * 1e6:10.2f} us   "
                f"(@ {bw:.1f} GB/s effective)"
            )
        for lvl, nbytes in sorted(c.group("memory.levels").items()):
            if lvl.endswith(".bytes_in"):
                lines.append(
                    f"  bytes via {lvl.removesuffix('.bytes_in'):<8} "
                    f"{nbytes / 1024.0:10.1f} KiB"
                )
        lines.append(
            f"  T = max(comp, mem) {run.seconds * 1e6:10.2f} us   "
            f"(bound: {run.bound}, {run.hidden_seconds * 1e6:.2f} us hidden)"
        )
        lines.append("")
        lines.append(render_counters(c, title="counters:"))
        return "\n".join(lines)


def profile_kernel(
    kernel: str,
    toolchain: str = "fujitsu",
    system: str | None = None,
    *,
    n: int | None = None,
    window: int | None = None,
) -> KernelProfile:
    """Profile one suite kernel under PMU counters.

    Parameters
    ----------
    kernel:
        Any catalogued kernel name
        (:data:`repro.kernels.catalog.ALL_KERNEL_NAMES`): a Section III
        suite loop (``simple``/``predicate``/``gather``/``scatter``/
        ``short_gather``/``short_scatter``), a math loop (``recip``/
        ``sqrt``/``exp``/``sin``/``pow``) or a sparse/stencil workload
        (``spmv_crs``/``spmv_sell``/``stencil2d``/``stencil3d``).
    toolchain:
        Toolchain model to compile with (default Fujitsu).
    system:
        System catalog key; defaults to the toolchain's natural target
        (Ookami for SVE toolchains, the Skylake 6140 node for x86).
    n:
        Override the loop trip count (default: L1-resident sizing).  Use
        a large ``n`` to push the working set to L2/HBM.
    window:
        Out-of-order window override passed to the scheduler.
    """
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import get_toolchain
    from repro.engine.executor import KernelExecutor
    from repro.engine.scheduler import PipelineScheduler
    from repro.kernels.catalog import build_kernel
    from repro.machine.systems import get_system

    tc = get_toolchain(toolchain)
    system_key = system if system is not None else default_system_for(toolchain)
    sysobj = get_system(system_key)
    loop = build_kernel(kernel, n)

    scope = ProfileScope(label=f"profile:{kernel}")
    with scope as counters:
        compiled = compile_loop(loop, tc, sysobj.cpu)
        if window is None:
            sched = compiled.schedule
        else:
            sched = PipelineScheduler(sysobj.cpu, window=window).steady_state(
                compiled.stream
            )
        factor = (
            tc.simd_quality if compiled.report.vectorized else tc.code_quality
        )
        # fold the toolchain code-quality factor into the executed
        # schedule so profile seconds match the figure pipeline's
        # cycles_per_element convention
        executed = replace(
            sched, cycles_per_iter=sched.cycles_per_iter * factor
        )
        run = KernelExecutor(sysobj).run(
            executed, compiled.mem_streams, n_iters=compiled.n_iters
        )
    return KernelProfile(
        kernel=kernel,
        toolchain=tc.name,
        system=system_key,
        counters=counters,
        schedule=sched,
        run=run,
        quality_factor=factor,
    )
