"""Rendering of counter sets: aligned text tables and stable JSON.

Two consumers drive the two formats:

* humans reading ``repro profile`` output want grouped, aligned tables
  (:func:`render_counters`);
* trajectory tooling (the ``BENCH_*.json`` convention) wants a stable,
  versioned machine-readable document (:func:`profile_to_json`,
  schema id :data:`PROFILE_SCHEMA`).

The JSON schema is append-only: fields are never renamed or removed
within a major schema id, only added — so downstream diffing of profile
documents across commits stays meaningful.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.perf.counters import CounterSet

__all__ = [
    "PROFILE_SCHEMA",
    "render_counters",
    "profile_to_json",
    "profile_to_json_str",
]

#: schema identifier stamped into every JSON profile document
PROFILE_SCHEMA = "repro.perf.profile/1"


def render_counters(counters: CounterSet | Mapping[str, float],
                    title: str = "") -> str:
    """Render a counter set as grouped, aligned text.

    Counters are grouped by their first dotted component; within a group
    rows align on the value column.  Integral values print without a
    fraction so slot/byte counts read like PMU dumps.
    """
    items = sorted(counters.items())
    if not items:
        return "(no counters)"
    groups: dict[str, list[tuple[str, float]]] = {}
    for name, value in items:
        top, _, rest = name.partition(".")
        groups.setdefault(top, []).append((rest or top, value))

    width = max(len(rest) for rows in groups.values() for rest, _ in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
    for top in sorted(groups):
        lines.append(f"[{top}]")
        for rest, value in groups[top]:
            lines.append(f"  {rest:<{width}}  {_fmt_value(value)}")
    return "\n".join(lines)


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):>14,}"
    if 0 < abs(value) < 1e-3:
        return f"{value:>14.4e}"
    return f"{value:>14.4f}"


def profile_to_json(
    *,
    kernel: str,
    toolchain: str,
    system: str,
    counters: CounterSet | Mapping[str, float],
    derived: Mapping[str, Any],
) -> dict[str, Any]:
    """Assemble the versioned JSON profile document (as a dict).

    ``derived`` carries quantities computed *from* the counters plus the
    analytic model's own answer, so one document is self-reconciling:
    a reader can check ``derived.reconciliation`` without re-running the
    model.
    """
    flat = (
        counters.as_dict()
        if isinstance(counters, CounterSet)
        else {k: counters[k] for k in sorted(counters)}
    )
    return {
        "schema": PROFILE_SCHEMA,
        "kernel": kernel,
        "toolchain": toolchain,
        "system": system,
        "counters": flat,
        "derived": dict(derived),
    }


def profile_to_json_str(document: Mapping[str, Any]) -> str:
    """Serialize a profile document deterministically (sorted keys)."""
    return json.dumps(document, indent=2, sort_keys=True)
