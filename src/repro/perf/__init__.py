"""PMU-style performance-counter subsystem.

The observability layer of the reproduction: every hot path of the
machine model (pipeline scheduler, memory hierarchy, cache simulator,
kernel executor, OpenMP model) emits dotted PMU-style counters when a
:class:`~repro.perf.counters.ProfileScope` is active, and this package
collects, reconciles, renders and serializes them.

* :mod:`repro.perf.counters` — :class:`CounterSet`, :class:`ProfileScope`
  and the :func:`emit` hooks the instrumented modules call.
* :mod:`repro.perf.report` — text-table rendering and the stable
  versioned JSON profile schema.
* :mod:`repro.perf.profile` — :func:`profile_kernel`, the engine behind
  the ``repro profile`` CLI subcommand.

See ``docs/PROFILING.md`` for the counter taxonomy and worked examples.
"""

from __future__ import annotations

from typing import Any

from repro.perf.counters import (
    CounterSet,
    ProfileScope,
    active_scopes,
    emit,
    emit_unique,
    is_profiling,
)
from repro.perf.report import (
    PROFILE_SCHEMA,
    profile_to_json,
    profile_to_json_str,
    render_counters,
)

__all__ = [
    "CounterSet",
    "ProfileScope",
    "active_scopes",
    "emit",
    "emit_unique",
    "is_profiling",
    "PROFILE_SCHEMA",
    "profile_to_json",
    "profile_to_json_str",
    "render_counters",
    "KernelProfile",
    "profile_kernel",
    "default_system_for",
]

_PROFILE_NAMES = {"KernelProfile", "profile_kernel", "default_system_for"}


def __getattr__(name: str) -> Any:
    # repro.perf.profile pulls in the compiler/engine stack; importing it
    # lazily keeps `repro.perf.counters` importable from low-level modules
    # (scheduler, memory) without a cycle.
    if name in _PROFILE_NAMES:
        from repro.perf import profile as _profile

        return getattr(_profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
