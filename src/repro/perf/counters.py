"""PMU-style software performance counters.

Real A64FX tuning work leans on the hardware PMU: cycles, issue slots,
per-pipe occupancy, cache fills, CMG-remote traffic.  This module gives
the *model* the same vocabulary.  Instrumented code (the pipeline
scheduler, the memory hierarchy, the kernel executor, the OpenMP model,
the exact cache simulator) calls :func:`emit` with a dotted counter name;
when a :class:`ProfileScope` is active the value accumulates into its
:class:`CounterSet`, and when none is active the call is a near-free
no-op — kernels run unchanged outside profiling.

Counter names form a stable dotted taxonomy (documented in
``docs/PROFILING.md``):

``pipeline.*``
    front-end slot accounting, per-pipe busy cycles, instruction mix —
    emitted by :class:`repro.engine.scheduler.PipelineScheduler`.
``memory.*``
    per-level hit/miss/eviction and byte accounting for the *analytic*
    hierarchy — emitted by :class:`repro.machine.memory.MemoryHierarchy`
    and :class:`repro.engine.executor.KernelExecutor`.
``cachesim.*``
    exact per-line counters of :class:`repro.machine.memory.CacheSim`
    trace replays.
``omp.*``
    thread imbalance, fork/join + barrier time, CMG-local vs remote
    bytes — emitted by :class:`repro.engine.openmp.OpenMPModel`.
``exec.*``
    compute-vs-memory attribution per kernel run — emitted by
    :class:`repro.engine.executor.KernelExecutor`.

Scopes nest: every active scope on the stack receives every emission, so
a broad scope around a whole experiment and a narrow scope around one
kernel see consistent totals.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping

__all__ = [
    "CounterSet",
    "ProfileScope",
    "emit",
    "emit_unique",
    "is_profiling",
    "active_scopes",
    "add_scope_observer",
    "remove_scope_observer",
]

#: opt-in scope-exit observers (see :func:`add_scope_observer`); empty in
#: normal operation so profiling pays nothing for the hook point
_SCOPE_OBSERVERS: list = []


def add_scope_observer(observer) -> None:
    """Register *observer* to receive each :class:`CounterSet` when its
    :class:`ProfileScope` exits cleanly.

    Used by :mod:`repro.validate` to run the counter-reconciliation
    identities (issue-slot accounting, cache hit/miss sums) on every
    completed scope without this module importing the validator.  Scopes
    unwound by an exception are not observed.
    """
    _SCOPE_OBSERVERS.append(observer)


def remove_scope_observer(observer) -> None:
    """Unregister a scope observer added by :func:`add_scope_observer`."""
    _SCOPE_OBSERVERS.remove(observer)


class CounterSet(Mapping[str, float]):
    """An accumulating mapping of dotted counter names to float values.

    The set behaves like a read-only mapping; mutation goes through
    :meth:`inc` (additive, the PMU semantic) and :meth:`put`
    (last-writer-wins, for ratios and rates that do not sum).
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._values: dict[str, float] = {}

    # -- mutation ------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* to counter *name* (creating it at 0)."""
        self._values[name] = self._values.get(name, 0.0) + value

    def put(self, name: str, value: float) -> None:
        """Overwrite counter *name* (for non-additive quantities)."""
        self._values[name] = value

    def merge(self, other: "CounterSet | Mapping[str, float]") -> None:
        """Accumulate every counter of *other* into this set."""
        for name, value in other.items():
            self.inc(name, value)

    def clear(self) -> None:
        """Drop every counter."""
        self._values.clear()

    # -- mapping interface ---------------------------------------------
    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    # -- queries -------------------------------------------------------
    def group(self, prefix: str) -> dict[str, float]:
        """All counters under ``prefix.``, keyed by the remainder.

        ``cs.group("pipeline.pipe_busy")`` returns ``{"fla": ..., ...}``.
        """
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name[len(dotted):]: value
            for name, value in sorted(self._values.items())
            if name.startswith(dotted)
        }

    def total(self, prefix: str) -> float:
        """Sum of every counter under ``prefix.``."""
        return sum(self.group(prefix).values())

    def as_dict(self) -> dict[str, float]:
        """Plain sorted dict — the stable JSON-facing form."""
        return {name: self._values[name] for name in sorted(self._values)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterSet {self.label or 'anonymous'}: {len(self)} counters>"


class _ScopeStack(threading.local):
    """Per-thread stack of scopes currently receiving emissions.

    Thread-local on purpose: the parallel sweep runner
    (:mod:`repro.engine.sweep`) opens one scope per task in its worker
    threads and merges the captured counters back into the caller's
    scopes in deterministic submission order — so totals under
    parallelism are *exactly* the serial totals, instead of racing
    increments into a shared stack.
    """

    def __init__(self) -> None:
        self.scopes: list[CounterSet] = []


_STACK = _ScopeStack()


def is_profiling() -> bool:
    """True when at least one :class:`ProfileScope` is active."""
    return bool(_STACK.scopes)


def active_scopes() -> tuple[CounterSet, ...]:
    """The currently active counter sets, outermost first."""
    return tuple(_STACK.scopes)


def emit(name: str, value: float = 1.0) -> None:
    """Accumulate *value* into counter *name* of every active scope."""
    for scope in _STACK.scopes:
        scope.inc(name, value)


def emit_unique(name: str, value: float) -> None:
    """Overwrite counter *name* in every active scope (non-additive)."""
    for scope in _STACK.scopes:
        scope.put(name, value)


class ProfileScope:
    """Context manager that collects counters emitted inside its body.

    >>> from repro.perf.counters import ProfileScope
    >>> with ProfileScope("demo") as counters:
    ...     pass  # run instrumented model code here
    >>> dict(counters)
    {}
    """

    def __init__(self, label: str = "") -> None:
        self.counters = CounterSet(label)

    def __enter__(self) -> CounterSet:
        _STACK.scopes.append(self.counters)
        return self.counters

    def __exit__(self, *exc_info: object) -> None:
        # remove by identity so interleaved (non-LIFO) exits stay correct
        scopes = _STACK.scopes
        for i in range(len(scopes) - 1, -1, -1):
            if scopes[i] is self.counters:
                del scopes[i]
                break
        if _SCOPE_OBSERVERS and (not exc_info or exc_info[0] is None):
            for observer in tuple(_SCOPE_OBSERVERS):
                observer(self.counters)
