"""Small shared utilities used across the :mod:`repro` package.

Nothing in this module is specific to the paper; it provides argument
validation helpers, formatting helpers for the benchmark harness, and a
couple of numpy conveniences that keep the rest of the code base terse.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = [
    "require",
    "require_positive",
    "require_in",
    "as_float_array",
    "format_table",
    "geomean",
    "KIB",
    "MIB",
    "GIB",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_in(value: T, allowed: Iterable[T], name: str) -> None:
    """Raise :class:`ValueError` unless *value* is one of *allowed*."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")


def as_float_array(x: Any, name: str = "array") -> np.ndarray:
    """Coerce *x* to a contiguous float64 numpy array, validating dtype."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used to summarize speedups)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Used by the benchmark harness to print paper-style tables without any
    plotting dependency.  Column order follows *columns* when given, else
    the key order of the first row.
    """
    if not rows:
        return "(empty table)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    rendered = [[fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    return f"{header}\n{sep}\n{body}"
