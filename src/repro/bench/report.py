"""Text rendering of experiments (no plotting dependencies)."""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro._util import format_table

__all__ = ["render_experiment", "render_rows"]


def render_rows(
    title: str,
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """A titled plain-text table."""
    bar = "=" * max(len(title), 8)
    return f"{title}\n{bar}\n{format_table(rows, columns)}\n"


def render_experiment(exp_id: str) -> str:
    """Run and render one registered experiment by id (e.g. ``fig1``,
    or an extra such as ``accuracy``)."""
    from repro.bench.harness import EXPERIMENTS, EXTRAS

    entry = EXPERIMENTS.get(exp_id) or EXTRAS.get(exp_id)
    if entry is None:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: "
            f"{sorted(EXPERIMENTS)} + extras {sorted(EXTRAS)}"
        )
    title, fn = entry
    return render_rows(f"{exp_id}: {title}", fn())
