"""Engine micro-benchmark: the repo's performance trajectory file.

Times the pipeline-scheduler hot path over the Fig. 1 + Fig. 2 kernel
set (every suite loop x all five toolchains) in four configurations:

``cold_seed``
    the preserved seed implementation
    (:class:`repro.engine._reference.ReferenceScheduler`) — the baseline
    all speedups are measured against;
``cold_fast``
    the event-driven scheduler with steady-state extrapolation, empty
    cache;
``batched_cold``
    the whole suite as one structure-of-arrays batch
    (:func:`repro.engine.batch.schedule_batch`, caches and precompiled
    tables cleared first) — content-identical points deduplicate and the
    int-indexed lanes replace the scalar heap walk; 10x acceptance
    floor over ``cold_seed``;
``warm_cache``
    the same sweep again through :func:`repro.engine.cache.cached_schedule`
    with the cache primed — the steady state of a figure-suite run;
``parallel``
    the warm sweep fanned out over :func:`repro.engine.sweep.run_sweep`
    worker threads;
``ecm_eval``
    the analytical ECM tier (:func:`repro.ecm.model.predict_compiled`)
    over the same precompiled points — no simulation at all, so its
    speedup is quoted against ``cold_fast`` (the engine answering the
    same per-point question from scratch), with a 100x acceptance
    floor.

``--tier engine`` times only the scheduler configurations, ``--tier
ecm`` only the analytical tier (plus the ``cold_fast`` reference it is
measured against); ``--tier grid`` times the grid-scale sweep paths —
a >=512-point mixed-tier (engine + ecm) window grid through
:func:`repro.engine.sweep.run_sweep` with points/sec, the sharded batch
(:func:`repro.engine.shard.schedule_batch_sharded`) against the serial
batch (2x floor, enforced when >= :data:`GRID_MIN_CORES` cores are
available), and the ECM sweep stage through the vectorized batch
(:func:`repro.ecm.batch.predict_batch`) against the per-point fallback
it replaced (5x floor), and the machine axis — a
>= :data:`GRID_MIN_MACHINES`-machine hypothetical design grid
(:func:`repro.machine.spec.grid_specs`) scored end-to-end through
:func:`repro.machine.grid.machine_grid_predictions` (spec build +
shared compile + batched predictions, gated at
:data:`GRID_MACHINE_RATE_FLOOR` points/s) with the batched predictions
checked exactly equal to per-point ``predict_compiled`` over the same
items — plus a full batched-vs-per-point row equality check; the
default ``all`` runs everything.

Results are written as versioned JSON (``repro.bench/1``) to
``BENCH_engine.json`` so the performance trajectory is tracked in-repo;
CI runs the full variant and archives the document.  The run fails
(exit 1) if the fast paths (batched included) deviate from the seed
scheduler by more than 1e-9 relative — counter payloads must match the
scalar path byte-for-byte — if the front-end slot identity breaks, or
if the warm-cache 5x / batched 10x / ECM 100x speedup floors are
missed (full mode).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

BENCH_FORMAT = "repro.bench/1"
SPEEDUP_FLOOR = 5.0
BATCH_SPEEDUP_FLOOR = 10.0
ECM_SPEEDUP_FLOOR = 100.0
EQUIV_RTOL = 1e-9

#: sharded batch must beat the serial batch by this factor per point...
GRID_SHARD_FLOOR = 2.0
#: ...but only where the machine can actually parallelize
GRID_MIN_CORES = 4
#: vectorized ECM batch must beat per-point analytical evaluation
GRID_ECM_FLOOR = 5.0
#: a grid run must carry at least this many mixed-tier points
GRID_MIN_POINTS = 512
#: the machine-axis row sweeps at least this many hypothetical machines
GRID_MIN_MACHINES = 500
#: machine-axis end-to-end throughput floor, points per second.  The
#: axis cannot be gated as a batched-vs-per-point ratio: every grid
#: machine is a distinct Microarch, so the in-core base analysis runs
#: once per point on both sides and the ratio sits near 1x by
#: construction.  The win is compile sharing (one compile per codegen
#: signature retargeted across hundreds of machines), which this
#: absolute rate floor captures with a ~25x margin over a single
#: modern core.
GRID_MACHINE_RATE_FLOOR = 200.0

#: kernels of the machine-axis bench row (one per paper mechanism:
#: streaming, gather, blocking sqrt, vector math)
_GRID_MACHINE_KERNELS = ("simple", "gather", "sqrt", "exp")

TIERS = ("engine", "ecm", "grid", "all")

#: window axes of the grid tier: the engine axis simulates fewer, wider
#: points; the analytical axis is window-dense — sweeping the reorder
#: window is what the closed-form tier is for, and each extra window
#: costs the batch almost nothing
_GRID_ENGINE_WINDOWS = (None, 8, 24, 48)
_GRID_ECM_WINDOWS = (None, 2, 4, 8, 16, 24, 32, 48, 64, 96)

_QUICK_LOOPS = ("simple", "gather", "sqrt", "exp")
_QUICK_TCS = ("fujitsu", "gnu", "intel")


def _points(quick: bool) -> list[tuple[str, str]]:
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES

    loops = _QUICK_LOOPS if quick else LOOP_NAMES + MATH_LOOP_NAMES
    tcs = _QUICK_TCS if quick else tuple(TOOLCHAINS)
    return [(loop, tc) for loop in loops for tc in tcs]


def _compiled(points: list[tuple[str, str]]):
    """Pre-compile every point so only prediction is on the clock."""
    from repro.compilers.codegen import compile_loop
    from repro.compilers.toolchains import get_toolchain
    from repro.kernels.loops import build_loop
    from repro.machine.microarch import A64FX, SKYLAKE_6140

    out = []
    for loop, tc_name in points:
        tc = get_toolchain(tc_name)
        march = SKYLAKE_6140 if tc.target == "x86" else A64FX
        full = compile_loop(build_loop(loop), tc, march)
        out.append((loop, tc_name, march, full.stream, full))
    return out


def _rel_dev(a: float, b: float) -> float:
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


def _check_equivalence(compiled) -> dict:
    """Fast-path results vs the seed scheduler, point by point.

    Covers the event-driven path, the cache replay, and the batched SoA
    engine; the batched counter payload must additionally equal the
    scalar path's byte-for-byte (a mismatch counts as full deviation).
    """
    from repro.engine._reference import ReferenceScheduler
    from repro.engine.batch import schedule_batch
    from repro.engine.cache import cached_schedule
    from repro.engine.scheduler import PipelineScheduler
    from repro.perf.counters import ProfileScope

    worst = 0.0
    worst_point = None
    for loop, tc_name, march, stream, _full in compiled:
        ref = ReferenceScheduler(march).steady_state(stream)
        with ProfileScope("scalar") as scalar_counters:
            fast = PipelineScheduler(march).steady_state(stream)
        with ProfileScope("batched") as batch_counters:
            batched = schedule_batch([(march, stream)], cache=False)[0]
        if scalar_counters.as_dict() != batch_counters.as_dict():
            worst, worst_point = 1.0, (loop, tc_name)
        for result in (
            fast,
            cached_schedule(march, stream),
            batched,
        ):
            dev = max(
                _rel_dev(result.cycles_per_iter, ref.cycles_per_iter),
                _rel_dev(result.ipc, ref.ipc),
                max(
                    _rel_dev(result.pipe_occupancy[p], occ)
                    for p, occ in ref.pipe_occupancy.items()
                ),
                0.0 if result.bound == ref.bound else 1.0,
            )
            if dev > worst:
                worst, worst_point = dev, (loop, tc_name)
    return {
        "max_rel_deviation": worst,
        "worst_point": worst_point,
        "tolerance": EQUIV_RTOL,
        "pass": worst <= EQUIV_RTOL,
    }


def _check_counter_identity(compiled) -> bool:
    """pipeline.issue_slots.total == used + stalled on every fast path."""
    from repro.engine.cache import cached_schedule
    from repro.engine.scheduler import PipelineScheduler
    from repro.perf.counters import ProfileScope

    from repro.engine.batch import schedule_batch

    for _, _, march, stream, _full in compiled:
        for run in (
            lambda: PipelineScheduler(march).steady_state(stream),
            lambda: cached_schedule(march, stream),  # hit: replayed payload
            lambda: schedule_batch([(march, stream)], cache=False),
        ):
            with ProfileScope("identity") as counters:
                run()
            total = counters["pipeline.issue_slots.total"]
            used = counters["pipeline.issue_slots.used"]
            stalled = counters["pipeline.issue_slots.stalled"]
            if total != used + stalled:
                return False
    return True


def _time_ecm(compiled, reps: int = 3) -> float:
    """Wall time of the analytical tier over every precompiled point.

    One full sweep takes single-digit milliseconds, so this is a
    micro-benchmark: one untimed warm-up pass, then the best of *reps*
    timed sweeps (the scheduler configurations are long enough that a
    single pass is already stable).
    """
    from repro.ecm.model import predict_compiled
    from repro.machine.systems import get_system
    from repro.perf.profile import default_system_for

    systems = {
        tc_name: get_system(default_system_for(tc_name))
        for tc_name in {p[1] for p in compiled}
    }
    best = float("inf")
    for rep in range(reps + 1):
        t0 = time.perf_counter()
        for _, tc_name, _, _, full in compiled:
            predict_compiled(full, systems[tc_name])
        if rep > 0:  # rep 0 is the warm-up
            best = min(best, time.perf_counter() - t0)
    return best


def _grid_points() -> list[tuple[str, str, int | None, str]]:
    """The >=512-point mixed-tier grid: loops x toolchains x windows."""
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES

    points: list[tuple[str, str, int | None, str]] = []
    for loop in LOOP_NAMES + MATH_LOOP_NAMES:
        for tc in TOOLCHAINS:
            for win in _GRID_ENGINE_WINDOWS:
                points.append((loop, tc, win, "engine"))
            for win in _GRID_ECM_WINDOWS:
                points.append((loop, tc, win, "ecm"))
    assert len(points) >= GRID_MIN_POINTS
    return points


def _grid_reset() -> None:
    """Drop every cache/memo layer the grid paths can warm."""
    from repro.compilers.cache import get_compile_cache
    from repro.ecm.batch import clear_ecm_memos
    from repro.engine.batch import clear_tables
    from repro.engine.cache import get_cache
    from repro.engine.scheduler import clear_memos

    get_cache().clear()
    get_compile_cache().clear()
    clear_memos()
    clear_tables()
    clear_ecm_memos()


def _run_grid(workers: int | None) -> dict:
    """Time the grid-scale sweep paths; returns the ``grid`` document.

    Three measurements over the same >=512-point mixed-tier grid:

    * the end-to-end batched sweep (``run_sweep(..., mode="process")``),
      quoted as points/sec;
    * the sharded batch vs the serial batch over the grid's unique
      engine requests (identical results asserted; the
      :data:`GRID_SHARD_FLOOR` is enforced only with at least
      :data:`GRID_MIN_CORES` cores — a 1-core runner records the ratio
      but cannot fail it);
    * the grid's ECM sweep stage through the vectorized batch path vs
      the per-point fallback it replaced (``batch=False``: one compile
      + one analytical prediction per point), schedules already primed
      as they are mid-sweep, compile cache and ECM memos cold
      (:data:`GRID_ECM_FLOOR`), rows compared for exact equality.

    Finally the batched sweep rows are checked equal to the per-point
    path's over the full grid.
    """
    from repro.compilers.cache import cached_compile
    from repro.compilers.toolchains import TOOLCHAINS, get_toolchain
    from repro.engine.batch import clear_tables, schedule_batch
    from repro.engine.scheduler import clear_memos
    from repro.engine.shard import last_shard_plan, schedule_batch_sharded
    from repro.engine.sweep import run_sweep
    from repro.kernels.catalog import build_kernel
    from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES
    from repro.machine.microarch import A64FX, SKYLAKE_6140

    points = _grid_points()
    cores = os.cpu_count() or 1

    # -- end-to-end batched sweep, cold ---------------------------------
    _grid_reset()
    t0 = time.perf_counter()
    rows = run_sweep(points, mode="process", max_workers=workers)
    t_sweep = time.perf_counter() - t0

    # -- sharded vs serial batch over the unique engine requests --------
    combos = []
    for loop in LOOP_NAMES + MATH_LOOP_NAMES:
        for tc_name in TOOLCHAINS:
            tc = get_toolchain(tc_name)
            march = SKYLAKE_6140 if tc.target == "x86" else A64FX
            combos.append((loop, tc_name,
                           cached_compile(build_kernel(loop), tc, march)))
    reqs = [(c.march, c.stream, win)
            for _, _, c in combos for win in _GRID_ENGINE_WINDOWS]
    clear_memos()
    clear_tables()
    t0 = time.perf_counter()
    serial_results = schedule_batch(reqs, cache=False)
    t_serial = time.perf_counter() - t0
    clear_memos()
    clear_tables()
    t0 = time.perf_counter()
    sharded_results = schedule_batch_sharded(
        reqs, cache=False, max_workers=workers or cores)
    t_sharded = time.perf_counter() - t0
    shard_exact = serial_results == sharded_results
    shard_plan = last_shard_plan() or {"routing": "serial", "workers": 1,
                                       "jobs": 0}
    if shard_plan["routing"] == "serial":
        # the profitability router fell back to the serial batch path,
        # so the "sharded" run above timed the identical implementation:
        # report the routed time but score the row as 1.0x rather than
        # reading pool-free measurement noise as a sharding slowdown
        shard_speedup = 1.0
    else:
        shard_speedup = t_serial / t_sharded if t_sharded else float("inf")
    shard_enforced = (cores >= GRID_MIN_CORES
                      and shard_plan["routing"] == "sharded")

    # -- ECM sweep stage: vectorized batch vs the per-point fallback ----
    # timed as the stage occurs inside a grid sweep: the schedule cache
    # stays primed from the runs above (the engine axis already
    # simulated these streams), so what is compared is exactly the
    # per-ECM-point work the vectorized path replaced — batch=False is
    # the pre-batching fallback (one compile + one analytical prediction
    # per point), batch=True compiles through the content-addressed
    # cache and composes every prediction in one array program.  Compile
    # cache and ECM memos start cold on both sides; rows must match
    # exactly.
    from repro.compilers.cache import get_compile_cache
    from repro.ecm.batch import clear_ecm_memos

    ecm_points = [p for p in points if p[3] == "ecm"]
    get_compile_cache().clear()
    clear_ecm_memos()
    t0 = time.perf_counter()
    pp_ecm_rows = run_sweep(ecm_points, mode="serial", batch=False)
    t_pp = time.perf_counter() - t0
    get_compile_cache().clear()
    clear_ecm_memos()
    t0 = time.perf_counter()
    vec_ecm_rows = run_sweep(ecm_points, mode="serial", batch=True)
    t_vec = time.perf_counter() - t0
    ecm_exact = pp_ecm_rows == vec_ecm_rows
    ecm_speedup = t_pp / t_vec if t_vec else float("inf")

    # -- machine axis: >=500 hypothetical machines through the batched
    # ECM tier vs the per-point analytical evaluation.  Every machine is
    # a distinct Microarch, so the per-point side gets no memo sharing —
    # the measured win is the vectorized array program itself.
    from repro.ecm.batch import predict_batch
    from repro.ecm.model import predict_compiled
    from repro.machine.grid import machine_grid_predictions
    from repro.machine.spec import grid_specs

    specs = grid_specs(GRID_MIN_MACHINES)
    get_compile_cache().clear()
    clear_ecm_memos()
    # end-to-end sweep: spec -> core/system build -> shared compile ->
    # batched predictions (the ``repro sweep --grid`` hot path)
    t0 = time.perf_counter()
    items, _, skipped = machine_grid_predictions(
        specs, _GRID_MACHINE_KERNELS)
    t_machine_total = time.perf_counter() - t0
    # floor comparison over the identical prebuilt items: one array
    # program vs one predict_compiled call per point, memos cleared on
    # both sides
    clear_ecm_memos()
    t0 = time.perf_counter()
    preds = predict_batch(items)
    t_machines = time.perf_counter() - t0
    clear_ecm_memos()
    t0 = time.perf_counter()
    scalar_preds = [predict_compiled(c, system, window=win)
                    for c, system, win in items]
    t_machine_pp = time.perf_counter() - t0

    def _pred_key(p):
        return (p.cycles_per_iter, p.elements_per_iter, p.n_iters,
                p.clock_ghz, p.bound, p.seconds)

    machine_exact = (
        list(map(_pred_key, preds)) == list(map(_pred_key, scalar_preds))
    )
    machine_rate = (len(items) / t_machine_total if t_machine_total
                    else float("inf"))

    # -- full-grid row equality: batched sweep vs per-point path --------
    pp_rows = run_sweep(points, mode="serial", batch=False)
    rows_exact = rows == pp_rows

    return {
        "points": len(points),
        "cores": cores,
        "sweep_seconds": round(t_sweep, 6),
        "points_per_sec": round(len(points) / t_sweep, 1),
        "shard": {
            "unique_requests": len(reqs),
            "routing": shard_plan["routing"],
            "workers": shard_plan["workers"],
            "unique_lanes": shard_plan["jobs"],
            "serial_seconds": round(t_serial, 6),
            "sharded_seconds": round(t_sharded, 6),
            "speedup": round(shard_speedup, 2),
            "floor": GRID_SHARD_FLOOR,
            "enforced": shard_enforced,
            "exact": shard_exact,
            # whenever the sharded path was actually selected it must
            # not lose to the serial batch (>= 1.0), and must clear the
            # full floor where the machine can parallelize
            "pass": shard_exact
            and (shard_plan["routing"] == "serial"
                 or shard_speedup >= 1.0)
            and (not shard_enforced or shard_speedup >= GRID_SHARD_FLOOR),
        },
        "ecm_batch": {
            "points": len(ecm_points),
            "per_point_seconds": round(t_pp, 6),
            "batched_seconds": round(t_vec, 6),
            "speedup": round(ecm_speedup, 2),
            "floor": GRID_ECM_FLOOR,
            "exact": ecm_exact,
            "pass": ecm_exact and ecm_speedup >= GRID_ECM_FLOOR,
        },
        "machine_grid": {
            "machines": len(specs),
            "kernels": list(_GRID_MACHINE_KERNELS),
            "points": len(items),
            "skipped": skipped,
            "sweep_seconds": round(t_machine_total, 6),
            "per_point_seconds": round(t_machine_pp, 6),
            "batched_seconds": round(t_machines, 6),
            "points_per_sec": round(machine_rate, 1),
            "rate_floor": GRID_MACHINE_RATE_FLOOR,
            "exact": machine_exact,
            "pass": machine_exact and machine_rate >= GRID_MACHINE_RATE_FLOOR,
        },
        "equivalence_pass": rows_exact,
    }


def run_bench(quick: bool = False, workers: int | None = None,
              tier: str = "all") -> dict:
    """Run every requested configuration and return the bench document."""
    from repro.engine._reference import ReferenceScheduler
    from repro.engine.cache import cached_schedule, get_cache
    from repro.engine.scheduler import PipelineScheduler, clear_memos

    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    points = _points(quick)
    compiled = _compiled(points)
    engine_tier = tier in ("engine", "all")
    ecm_tier = tier in ("ecm", "all")
    grid_tier = tier in ("grid", "all")

    t_seed = t_batched = t_warm = t_par = None
    if engine_tier:
        t0 = time.perf_counter()
        for _, _, march, stream, _full in compiled:
            ReferenceScheduler(march).steady_state(stream)
        t_seed = time.perf_counter() - t0

    # cold_fast is always timed: it is the engine configuration the
    # analytical tier's speedup is quoted against.  Memoized tables are
    # dropped first so table warm-up cannot flatter the cold number.
    clear_memos()
    t0 = time.perf_counter()
    for _, _, march, stream, _full in compiled:
        PipelineScheduler(march).steady_state(stream)
    t_fast = time.perf_counter() - t0

    if engine_tier:
        from repro.engine.batch import clear_tables, schedule_batch
        from repro.engine.sweep import run_sweep

        reqs = [(march, stream) for _, _, march, stream, _full in compiled]
        clear_memos()
        clear_tables()
        t0 = time.perf_counter()
        schedule_batch(reqs, cache=False)
        t_batched = time.perf_counter() - t0

        get_cache().clear()
        for _, _, march, stream, _full in compiled:  # prime
            cached_schedule(march, stream)
        t0 = time.perf_counter()
        for _, _, march, stream, _full in compiled:
            cached_schedule(march, stream)
        t_warm = time.perf_counter() - t0

        # the thread fan-out path, batching off (batched has its own row)
        t0 = time.perf_counter()
        run_sweep(points, mode="thread", max_workers=workers, batch=False)
        t_par = time.perf_counter() - t0

    t_ecm = _time_ecm(compiled) if ecm_tier else None
    grid = _run_grid(workers) if grid_tier else None

    equivalence = _check_equivalence(compiled)
    identity_ok = _check_counter_identity(compiled)

    def _round(t: float | None) -> float | None:
        return round(t, 6) if t is not None else None

    speedup_warm = (t_seed / t_warm if t_warm else float("inf")) \
        if engine_tier else None
    speedup_batched = (t_seed / t_batched if t_batched else float("inf")) \
        if engine_tier else None
    speedup_ecm = (t_fast / t_ecm if t_ecm else float("inf")) \
        if ecm_tier else None
    acceptance = {
        "equivalence": equivalence,
        "counter_identity_pass": identity_ok,
    }
    if engine_tier:
        acceptance["warm_speedup_floor"] = SPEEDUP_FLOOR
        acceptance["warm_speedup_pass"] = speedup_warm >= SPEEDUP_FLOOR
        acceptance["batched_speedup_floor"] = BATCH_SPEEDUP_FLOOR
        acceptance["batched_speedup_pass"] = (
            speedup_batched >= BATCH_SPEEDUP_FLOOR
        )
    if ecm_tier:
        acceptance["ecm_speedup_floor"] = ECM_SPEEDUP_FLOOR
        acceptance["ecm_speedup_pass"] = speedup_ecm >= ECM_SPEEDUP_FLOOR
    if grid is not None:
        acceptance["grid_shard_floor"] = GRID_SHARD_FLOOR
        acceptance["grid_shard_pass"] = grid["shard"]["pass"]
        acceptance["grid_ecm_floor"] = GRID_ECM_FLOOR
        acceptance["grid_ecm_pass"] = grid["ecm_batch"]["pass"]
        acceptance["grid_machine_rate_floor"] = GRID_MACHINE_RATE_FLOOR
        acceptance["grid_machine_pass"] = grid["machine_grid"]["pass"]
        acceptance["grid_equivalence_pass"] = grid["equivalence_pass"]

    def _vs_fast(t: float | None) -> float | None:
        # every tier is comparable against the cold fast path, in quick
        # mode too (satellite of the batched-engine work)
        return round(t_fast / t, 2) if t and t_fast else None

    doc = {
        "version": BENCH_FORMAT,
        "suite": "fig1+fig2 kernels x toolchains"
                 + (" (quick subset)" if quick else ""),
        "quick": quick,
        "tier": tier,
        "points": len(points),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "seconds": {
            "cold_seed": _round(t_seed),
            "cold_fast": _round(t_fast),
            "batched_cold": _round(t_batched),
            "warm_cache": _round(t_warm),
            "parallel": _round(t_par),
            "ecm_eval": _round(t_ecm),
        },
        "speedup_vs_cold_seed": {
            "cold_fast": round(t_seed / t_fast, 2)
            if engine_tier and t_fast else None,
            "batched_cold": round(speedup_batched, 2)
            if engine_tier else None,
            "warm_cache": round(speedup_warm, 2) if engine_tier else None,
            "parallel": round(t_seed / t_par, 2)
            if engine_tier and t_par else None,
        },
        "speedup_vs_cold_fast": {
            "batched_cold": _vs_fast(t_batched),
            "warm_cache": _vs_fast(t_warm),
            "parallel": _vs_fast(t_par),
            "ecm_eval": _vs_fast(t_ecm),
        },
        "acceptance": acceptance,
    }
    if grid is not None:
        doc["grid"] = grid
    return doc


def render(doc: dict) -> str:
    """Format one benchmark document as an aligned text table."""
    secs = doc["seconds"]
    speed = doc["speedup_vs_cold_seed"]
    acc = doc["acceptance"]
    lines = [f"engine bench ({doc['suite']}, {doc['points']} points)"]
    if secs["cold_seed"] is not None:
        lines.append(
            f"  cold seed scheduler : {secs['cold_seed'] * 1e3:9.1f} ms")
    lines.append(
        f"  cold fast path      : {secs['cold_fast'] * 1e3:9.1f} ms"
        + (f"  ({speed['cold_fast']:.1f}x)"
           if speed["cold_fast"] is not None else ""))
    if secs.get("batched_cold") is not None:
        lines.append(
            f"  batched soa engine  : {secs['batched_cold'] * 1e3:9.1f} ms"
            f"  ({speed['batched_cold']:.1f}x)")
    if secs["warm_cache"] is not None:
        lines.append(
            f"  warm schedule cache : {secs['warm_cache'] * 1e3:9.1f} ms"
            f"  ({speed['warm_cache']:.1f}x)")
    if secs["parallel"] is not None:
        lines.append(
            f"  parallel sweep      : {secs['parallel'] * 1e3:9.1f} ms"
            f"  ({speed['parallel']:.1f}x)")
    if secs["ecm_eval"] is not None:
        lines.append(
            f"  analytical ecm tier : {secs['ecm_eval'] * 1e3:9.1f} ms"
            f"  ({doc['speedup_vs_cold_fast']['ecm_eval']:.1f}x "
            f"vs cold fast)")
    grid = doc.get("grid")
    if grid is not None:
        shard = grid["shard"]
        ecmb = grid["ecm_batch"]
        lines += [
            f"  grid sweep          : {grid['sweep_seconds'] * 1e3:9.1f} ms"
            f"  ({grid['points']} pts, {grid['points_per_sec']:.0f} pts/s)",
            f"  grid sharded batch  : {shard['sharded_seconds'] * 1e3:9.1f} ms"
            f"  ({shard['speedup']:.1f}x vs serial batch, "
            f"{grid['cores']} core{'s' if grid['cores'] != 1 else ''}, "
            f"routed {shard['routing']})",
            f"  grid ecm batch      : {ecmb['batched_seconds'] * 1e3:9.1f} ms"
            f"  ({ecmb['speedup']:.1f}x vs per-point)",
        ]
        mg = grid["machine_grid"]
        lines.append(
            f"  grid machine axis   : {mg['sweep_seconds'] * 1e3:9.1f} ms"
            f"  ({mg['machines']} machines, {mg['points']} pts, "
            f"{mg['points_per_sec']:.0f} pts/s)")
    lines += [
        f"  golden equivalence  : max rel dev "
        f"{acc['equivalence']['max_rel_deviation']:.2e} "
        f"({'PASS' if acc['equivalence']['pass'] else 'FAIL'})",
        f"  slot identity       : "
        f"{'PASS' if acc['counter_identity_pass'] else 'FAIL'}",
    ]
    if "warm_speedup_pass" in acc:
        lines.append(
            f"  warm speedup floor  : {acc['warm_speedup_floor']:.0f}x "
            f"({'PASS' if acc['warm_speedup_pass'] else 'FAIL'})")
    if "batched_speedup_pass" in acc:
        lines.append(
            f"  batch speedup floor : {acc['batched_speedup_floor']:.0f}x "
            f"({'PASS' if acc['batched_speedup_pass'] else 'FAIL'})")
    if "ecm_speedup_pass" in acc:
        lines.append(
            f"  ecm speedup floor   : {acc['ecm_speedup_floor']:.0f}x "
            f"({'PASS' if acc['ecm_speedup_pass'] else 'FAIL'})")
    if "grid_shard_pass" in acc:
        enforced = doc["grid"]["shard"]["enforced"]
        lines.append(
            f"  grid shard floor    : {acc['grid_shard_floor']:.0f}x "
            + (f"({'PASS' if acc['grid_shard_pass'] else 'FAIL'})"
               if enforced else
               f"(recorded; needs >= {GRID_MIN_CORES} cores to enforce)"))
    if "grid_ecm_pass" in acc:
        lines.append(
            f"  grid ecm floor      : {acc['grid_ecm_floor']:.0f}x "
            f"({'PASS' if acc['grid_ecm_pass'] else 'FAIL'})")
    if "grid_machine_pass" in acc:
        lines.append(
            f"  grid machine floor  : "
            f"{acc['grid_machine_rate_floor']:.0f} pts/s "
            f"({'PASS' if acc['grid_machine_pass'] else 'FAIL'})")
    if "grid_equivalence_pass" in acc:
        lines.append(
            f"  grid equivalence    : "
            f"{'PASS' if acc['grid_equivalence_pass'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    """CLI entry point for ``python -m repro bench``."""
    quick = "--quick" in argv
    args = [a for a in argv if a != "--quick"]
    out = Path("BENCH_engine.json")
    tier = "all"
    if "--out" in args:
        i = args.index("--out")
        if i + 1 >= len(args):
            print("bench: --out expects a path")
            return 1
        out = Path(args[i + 1])
        del args[i:i + 2]
    if "--tier" in args:
        i = args.index("--tier")
        if i + 1 >= len(args) or args[i + 1] not in TIERS:
            print(f"bench: --tier expects one of {', '.join(TIERS)}")
            return 1
        tier = args[i + 1]
        del args[i:i + 2]
    if args:
        print(f"bench: unknown arguments {args}")
        print("usage: python -m repro bench [--quick] "
              "[--tier engine|ecm|grid|all] [--out PATH]")
        return 1
    doc = run_bench(quick=quick, tier=tier)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(render(doc))
    print(f"wrote {out}")
    acc = doc["acceptance"]
    ok = acc["equivalence"]["pass"] and acc["counter_identity_pass"]
    ok = ok and acc.get("grid_equivalence_pass", True)
    if not quick:
        ok = ok and acc.get("warm_speedup_pass", True)
        ok = ok and acc.get("batched_speedup_pass", True)
        ok = ok and acc.get("ecm_speedup_pass", True)
        ok = ok and acc.get("grid_shard_pass", True)
        ok = ok and acc.get("grid_ecm_pass", True)
        ok = ok and acc.get("grid_machine_pass", True)
    return 0 if ok else 1
