"""Ablation studies over the model's load-bearing design choices.

Each function switches one mechanism off (or sweeps one parameter) and
reports the effect on a paper result, demonstrating that the figures are
carried by the mechanisms DESIGN.md claims — not by accident:

* :func:`window_ablation` — the out-of-order window size vs the Section
  IV exp kernel cost (the chain-vs-window mechanism).
* :func:`unroll_ablation` — unrolling the FEXPA loop ("Unrolling once
  decreased this to 1.9 cycles/element").
* :func:`coalescing_ablation` — the 128-byte gather pair-coalescing rule
  vs the short-gather result (Fig. 1).
* :func:`placement_ablation` — NUMA page placement vs SP's full-node
  runtime (the Fig. 4 fujitsu/first-touch story).
* :func:`newton_steps_ablation` — Newton refinement steps: measured ULP
  against modeled cycles (the fast-math accuracy trade).
* :func:`blocking_sqrt_ablation` — what Fig. 2's sqrt gap would be if
  the A64FX ``FSQRT`` were pipelined instead of blocking.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import FUJITSU, GNU, TOOLCHAINS
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.loops import build_loop
from repro.machine.isa import Op, Pipe
from repro.machine.microarch import A64FX, Microarch, OpTiming
from repro.machine.numa import PagePlacement

__all__ = [
    "window_ablation",
    "unroll_ablation",
    "coalescing_ablation",
    "placement_ablation",
    "newton_steps_ablation",
    "blocking_sqrt_ablation",
]


def window_ablation(
    windows: tuple[int, ...] = (16, 32, 64, 96, 128, 192, 256, 512)
) -> list[dict]:
    """Exp-kernel cycles/element as a function of the ROB window.

    Small windows expose the 9-cycle FMA chain; large ones converge to
    the port bound.  The A64FX's 128-entry commit stack sits on the knee
    — which is why the Section IV numbers come out where they do.
    """
    from repro.bench.figures import _exp_kernel_stream

    stream = _exp_kernel_stream("exp_fexpa_estrin", unroll=1, vla=True)
    rows = []
    for w in windows:
        res = PipelineScheduler(A64FX, window=w).steady_state(stream)
        rows.append(
            {
                "window": w,
                "cycles_per_elem": round(res.cycles_per_element, 3),
                "bound": res.bound,
                "is_a64fx": w == A64FX.window,
            }
        )
    return rows


def unroll_ablation(unrolls: tuple[int, ...] = (1, 2, 4, 8)) -> list[dict]:
    """FEXPA kernel cycles/element vs unroll factor (Sec. IV)."""
    from repro.bench.figures import _exp_kernel_stream

    sched = PipelineScheduler(A64FX)
    rows = []
    for u in unrolls:
        res = sched.steady_state(
            _exp_kernel_stream("exp_fexpa_estrin", unroll=u, vla=True)
        )
        rows.append(
            {"unroll": u, "cycles_per_elem": round(res.cycles_per_element, 3),
             "bound": res.bound}
        )
    return rows


def _a64fx_without_coalescing() -> Microarch:
    return replace(A64FX, gather_pair_coalescing=False)


def coalescing_ablation() -> list[dict]:
    """Short-gather cost with the 128-byte pair rule on vs off.

    With the rule disabled the short gather costs the same as the full
    random gather — the entire Fig. 1 short-gather effect is this one
    documented microarchitectural special case.
    """
    rows = []
    for label, march in (
        ("with 128B pair coalescing (A64FX)", A64FX),
        ("without (hypothetical)", _a64fx_without_coalescing()),
    ):
        for loop_name in ("gather", "short_gather"):
            compiled = compile_loop(build_loop(loop_name), FUJITSU, march)
            rows.append(
                {
                    "machine": label,
                    "loop": loop_name,
                    "cycles_per_elem": round(compiled.cycles_per_element, 3),
                    "gather_uops": compiled.stream.counts().get(
                        Op.GATHER_UOP, 0),
                }
            )
    return rows


def placement_ablation(
    threads: tuple[int, ...] = (12, 24, 48)
) -> list[dict]:
    """SP full-node runtime under each NUMA page-placement policy."""
    from repro.kernels.workload import parallel_run
    from repro.machine.systems import get_system
    from repro.npb.workloads import NPB_WORKLOADS

    ook = get_system("ookami")
    work = NPB_WORKLOADS["SP"]
    rows = []
    for p in threads:
        for placement in PagePlacement:
            run = parallel_run(work, ook, FUJITSU, p, placement=placement)
            rows.append(
                {
                    "threads": p,
                    "placement": placement.value,
                    "seconds": round(run.seconds, 2),
                    "bound": run.bound,
                }
            )
    return rows


def newton_steps_ablation(samples: int = 100_000) -> list[dict]:
    """Newton refinement steps: measured ULP vs modeled pipelined cost.

    Also prices the blocking hardware alternative — the quantitative form
    of the paper's FSQRT indictment.
    """
    from repro.mathlib.newton import sqrt_newton
    from repro.mathlib.ulp import max_ulp_error

    rng = np.random.default_rng(11)
    x = 10.0 ** rng.uniform(-300, 300, samples)
    exact = np.sqrt(x)

    rows = []
    for steps in (0, 1, 2, 3):
        ulp = max_ulp_error(sqrt_newton(x, steps=steps), exact)
        # cost: FRSQRTE + steps x (FRSQRTS + FMUL) + final FMUL, pipelined
        # on 2 FP pipes at 8 lanes
        instrs = 1 + 2 * steps + 1
        cycles = instrs / 2.0 / A64FX.lanes_f64
        rows.append(
            {
                "method": f"newton-{steps}step",
                "max_ulp": ulp if np.isfinite(ulp) else float("inf"),
                "cycles_per_elem_tput": round(cycles, 3),
            }
        )
    fsqrt = A64FX.timing(Op.FSQRT)
    rows.append(
        {
            "method": "hardware FSQRT (blocking)",
            "max_ulp": 0.5,  # correctly rounded
            "cycles_per_elem_tput": round(fsqrt.rtput / A64FX.lanes_f64, 3),
        }
    )
    return rows


def blocking_sqrt_ablation() -> list[dict]:
    """What the GNU sqrt loop would cost if FSQRT were pipelined.

    Replaces the blocking unit (rtput = latency = 134) with a
    Skylake-style pipelined one (rtput 25) and re-prices Fig. 2's sqrt
    loop: the 'blocking' property, not the latency, carries the 20x.
    """
    pipelined_timings = dict(A64FX.timings)
    pipelined_timings[Op.FSQRT] = OpTiming(134, 25, frozenset({Pipe.FLA}))
    hypothetical = replace(A64FX, timings=pipelined_timings)

    rows = []
    for label, march in (("A64FX (blocking FSQRT)", A64FX),
                         ("hypothetical pipelined FSQRT", hypothetical)):
        gnu = compile_loop(build_loop("sqrt"), GNU, march)
        fj = compile_loop(build_loop("sqrt"), TOOLCHAINS["fujitsu"], march)
        rows.append(
            {
                "machine": label,
                "gnu_cycles_per_elem": round(gnu.cycles_per_element, 2),
                "fujitsu_cycles_per_elem": round(fj.cycles_per_element, 2),
                "gnu_vs_fujitsu": round(
                    gnu.cycles_per_element / fj.cycles_per_element, 1),
            }
        )
    return rows
