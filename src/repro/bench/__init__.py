"""The benchmark harness: one generator per paper table/figure.

* :mod:`repro.bench.figures` — ``fig1_*`` .. ``fig9_*``, ``table1_*`` ..
  ``table3_*``, ``sec4_*``: each returns the rows of the corresponding
  paper artifact as plain dicts.
* :mod:`repro.bench.expected` — the values the paper itself prints
  (tables verbatim, quoted ratios and cycle counts) for comparison.
* :mod:`repro.bench.report` — text rendering and paper-vs-model deltas.
* :mod:`repro.bench.harness` — the experiment registry and ``run_all``.
"""

from repro.bench.harness import EXPERIMENTS, EXTRAS, run_experiment, run_all
from repro.bench.report import render_experiment

__all__ = ["EXPERIMENTS", "EXTRAS", "run_experiment", "run_all", "render_experiment"]
