"""One generator per paper table/figure.

Every function returns ``list[dict]`` rows ready for
:func:`repro._util.format_table`; the benchmark suite under
``benchmarks/`` calls these and compares against
:mod:`repro.bench.expected`.
"""

from __future__ import annotations

import numpy as np

from repro._util import format_table
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import TOOLCHAINS, get_toolchain
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES, build_loop
from repro.kernels.workload import parallel_run, serial_seconds
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, SKYLAKE_6140
from repro.machine.numa import PagePlacement
from repro.machine.systems import SYSTEMS, get_system
from repro.npb.workloads import NPB_WORKLOADS, PARALLEL_FACTORS

__all__ = [
    "table1_flags",
    "fig1_loop_suite",
    "fig2_math_suite",
    "sec4_exp_study",
    "fig3_npb_serial",
    "fig4_npb_fullnode",
    "fig5_scaling_a64fx",
    "fig6_scaling_skylake",
    "table2_lulesh",
    "fig7_lulesh",
    "table3_systems",
    "fig8_dgemm",
    "fig9_hpl",
    "fig9_fft",
]

_A64FX_TCS = ("fujitsu", "cray", "arm", "gnu")


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def table1_flags() -> list[dict]:
    """Table I: compiler versions and flags."""
    order = ("fujitsu", "arm", "cray", "gnu", "intel")
    return [
        {
            "compiler": name,
            "version": TOOLCHAINS[name].version,
            "flags": TOOLCHAINS[name].flags,
        }
        for name in order
    ]


# ---------------------------------------------------------------------------
# Figures 1 & 2: the loop suite
# ---------------------------------------------------------------------------


def _loop_row_block(name: str) -> list[dict]:
    """All Fig. 1/2 rows for one loop (top-level: sweep-dispatchable)."""
    rows = []
    loop = build_loop(name)
    intel = compile_loop(loop, TOOLCHAINS["intel"], SKYLAKE_6140)
    t_skl = intel.cycles_per_element / SKYLAKE_6140.clock_ghz  # ns/elem
    for tc in _A64FX_TCS:
        compiled = compile_loop(loop, TOOLCHAINS[tc], A64FX)
        t = compiled.cycles_per_element / A64FX.clock_ghz
        rows.append(
            {
                "loop": name,
                "toolchain": tc,
                "cycles_per_elem": compiled.cycles_per_element,
                "ns_per_elem": t,
                "rel_skylake": t / t_skl,
                "vectorized": compiled.report.vectorized,
            }
        )
    rows.append(
        {
            "loop": name,
            "toolchain": "intel",
            "cycles_per_elem": intel.cycles_per_element,
            "ns_per_elem": t_skl,
            "rel_skylake": 1.0,
            "vectorized": intel.report.vectorized,
        }
    )
    return rows


def _loop_rows(loops: tuple[str, ...], parallel: bool = False) -> list[dict]:
    from repro.engine.sweep import map_schedules

    blocks = map_schedules(
        _loop_row_block, loops, mode="thread" if parallel else "serial"
    )
    return [row for block in blocks for row in block]


def fig1_loop_suite(loops: tuple[str, ...] = LOOP_NAMES,
                    parallel: bool = False) -> list[dict]:
    """Fig. 1: simple/predicate/gather/scatter/short-* runtimes relative
    to Skylake + Intel."""
    return _loop_rows(loops, parallel=parallel)


def fig2_math_suite(loops: tuple[str, ...] = MATH_LOOP_NAMES,
                    parallel: bool = False) -> list[dict]:
    """Fig. 2: vectorized math-function runtimes relative to Skylake."""
    return _loop_rows(loops, parallel=parallel)


# ---------------------------------------------------------------------------
# Section IV: the exponential function study
# ---------------------------------------------------------------------------


def _exp_kernel_stream(
    recipe: str, unroll: int, vla: bool
) -> InstructionStream:
    """Hand-built exp loop (the paper's Section IV kernel experiments)."""
    from repro.mathlib.vectormath import build_recipe

    body: list[Instruction] = []
    for copy in range(unroll):
        body.append(Instruction(Op.VLOAD, f"x{copy}", tag="load x"))
        body.extend(
            build_recipe(recipe, A64FX, [f"x{copy}"], f"y{copy}", f"e{copy}")
        )
        body.append(Instruction(Op.VSTORE, "", (f"y{copy}",), tag="store y"))
    body.append(Instruction(Op.SALU, "ptr", tag="advance"))
    if vla:
        body.append(Instruction(Op.PWHILE, "pred", tag="whilelt"))
        body.append(Instruction(Op.BRANCH, "", ("pred",), tag="b.first"))
    else:
        body.append(Instruction(Op.SALU, "cnt", tag="cmp"))
        body.append(Instruction(Op.BRANCH, "", ("cnt",), tag="b.lt"))
    return InstructionStream(
        body=body, elements_per_iter=A64FX.lanes_f64 * unroll,
        label=f"{recipe}/u{unroll}/{'vla' if vla else 'fixed'}",
    )


def sec4_exp_study(ulp_samples: int = 200_000) -> list[dict]:
    """Section IV: cycles/element and measured ULP error of the
    exponential-function implementations."""
    from repro.mathlib.exp import exp_fexpa, exp_plain
    from repro.mathlib.ulp import max_ulp_error

    rng = np.random.default_rng(2021)
    x = rng.uniform(-700.0, 700.0, ulp_samples)
    exact = np.exp(x)

    sched = PipelineScheduler(A64FX)

    rows: list[dict] = []

    def kernel_row(label: str, recipe: str, unroll: int, vla: bool,
                   ulp: float | None) -> None:
        res = sched.steady_state(_exp_kernel_stream(recipe, unroll, vla))
        rows.append(
            {
                "impl": label,
                "cycles_per_elem": res.cycles_per_element,
                "max_ulp": ulp if ulp is not None else float("nan"),
                "bound": res.bound,
            }
        )

    ulp_fexpa_estrin = max_ulp_error(exp_fexpa(x, scheme="estrin"), exact)
    ulp_fexpa_horner = max_ulp_error(exp_fexpa(x, scheme="horner"), exact)
    ulp_fexpa_refined = max_ulp_error(exp_fexpa(x, refined=True), exact)
    ulp_plain = max_ulp_error(exp_plain(x), exact)

    kernel_row("fexpa-vla (paper kernel)", "exp_fexpa_estrin", 1, True,
               ulp_fexpa_estrin)
    kernel_row("fexpa-fixed", "exp_fexpa_estrin", 1, False, ulp_fexpa_estrin)
    kernel_row("fexpa-unrolled-x2", "exp_fexpa_estrin", 2, True,
               ulp_fexpa_estrin)
    kernel_row("fexpa-horner", "exp_fexpa_horner", 1, True, ulp_fexpa_horner)

    # library implementations via the compiled exp loop
    loop = build_loop("exp")
    for tc in _A64FX_TCS:
        compiled = compile_loop(loop, TOOLCHAINS[tc], A64FX)
        rows.append(
            {
                "impl": f"{tc} library"
                + (" (scalar libm)" if not compiled.report.vectorized else ""),
                "cycles_per_elem": compiled.cycles_per_element,
                "max_ulp": ulp_plain if tc != "fujitsu" else ulp_fexpa_estrin,
                "bound": compiled.schedule.bound,
            }
        )
    intel = compile_loop(loop, TOOLCHAINS["intel"], SKYLAKE_6140)
    rows.append(
        {
            "impl": "intel svml (skylake)",
            "cycles_per_elem": intel.cycles_per_element,
            "max_ulp": ulp_plain,
            "bound": intel.schedule.bound,
        }
    )
    rows.append(
        {
            "impl": "fexpa-refined (corrected last FMA)",
            "cycles_per_elem": rows[0]["cycles_per_elem"] + 0.25,
            "max_ulp": ulp_fexpa_refined,
            "bound": "estimated (+0.25 cyc/elem, Sec. IV)",
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Figures 3-6: NPB
# ---------------------------------------------------------------------------


def _fig3_bench_rows(bench: str) -> list[dict]:
    """Fig. 3 rows for one NPB benchmark (top-level: sweep-dispatchable).

    Each compiler's serial run bottoms out in the schedule cache via
    ``math_cycles_per_call`` → ``compile_loop`` → ``schedule_on``, so
    compilers emitting identical math-loop streams share schedules."""
    ook = get_system("ookami")
    skl = get_system("skylake")
    work = NPB_WORKLOADS[bench]
    rows = []
    icc = serial_seconds(work, skl, TOOLCHAINS["intel"])
    for tc in _A64FX_TCS:
        t = serial_seconds(work, ook, TOOLCHAINS[tc])
        rows.append(
            {"bench": bench, "toolchain": tc, "seconds": t,
             "rel_icc": t / icc}
        )
    rows.append(
        {"bench": bench, "toolchain": "intel", "seconds": icc,
         "rel_icc": 1.0}
    )
    return rows


def fig3_npb_serial(parallel: bool = False) -> list[dict]:
    """Fig. 3: single-core class C runtimes per compiler."""
    from repro.engine.sweep import map_schedules

    blocks = map_schedules(
        _fig3_bench_rows, NPB_WORKLOADS,
        mode="thread" if parallel else "serial",
    )
    return [row for block in blocks for row in block]


def fig4_npb_fullnode() -> list[dict]:
    """Fig. 4: full-node runtimes (48 threads on A64FX, 36 on Skylake),
    including the ``fujitsu-first-touch`` configuration."""
    ook = get_system("ookami")
    skl = get_system("skylake")
    rows = []
    for bench, work in NPB_WORKLOADS.items():
        pf = PARALLEL_FACTORS.get(bench, {})
        for tc in _A64FX_TCS:
            t = parallel_run(
                work, ook, TOOLCHAINS[tc], 48,
                parallel_factor=pf.get(tc, 1.0),
            ).seconds
            rows.append({"bench": bench, "config": tc, "seconds": t})
        t_ft = parallel_run(
            work, ook, TOOLCHAINS["fujitsu"], 48,
            placement=PagePlacement.FIRST_TOUCH,
            parallel_factor=pf.get("fujitsu", 1.0),
        ).seconds
        rows.append({"bench": bench, "config": "fujitsu-first-touch",
                     "seconds": t_ft})
        t_icc = parallel_run(work, skl, TOOLCHAINS["intel"], 36).seconds
        rows.append({"bench": bench, "config": "intel/skylake",
                     "seconds": t_icc})
    return rows


def fig5_scaling_a64fx(
    threads: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32, 48)
) -> list[dict]:
    """Fig. 5: parallel efficiency on A64FX with GCC."""
    ook = get_system("ookami")
    rows = []
    for bench, work in NPB_WORKLOADS.items():
        for p in threads:
            eff = parallel_run(work, ook, TOOLCHAINS["gnu"], p).efficiency
            rows.append({"bench": bench, "threads": p, "efficiency": eff})
    return rows


def fig6_scaling_skylake(
    threads: tuple[int, ...] = (1, 2, 4, 8, 12, 18, 24, 36)
) -> list[dict]:
    """Fig. 6: parallel efficiency on Skylake with icc."""
    skl = get_system("skylake")
    rows = []
    for bench, work in NPB_WORKLOADS.items():
        for p in threads:
            eff = parallel_run(work, skl, TOOLCHAINS["intel"], p).efficiency
            rows.append({"bench": bench, "threads": p, "efficiency": eff})
    return rows


# ---------------------------------------------------------------------------
# Table II / Figure 7: LULESH
# ---------------------------------------------------------------------------


def table2_lulesh() -> list[dict]:
    """Table II: LULESH timings, modeled vs paper."""
    from repro.apps.lulesh.model import table2_rows

    return table2_rows()


def fig7_lulesh() -> list[dict]:
    """Fig. 7: the same data arranged as the chart's series."""
    rows = []
    for r in table2_lulesh():
        for variant in ("base", "vect"):
            for mode in ("st", "mt"):
                rows.append(
                    {
                        "compiler": r["compiler"],
                        "series": f"{variant}({mode})",
                        "seconds": r[f"{variant}_{mode}"],
                        "paper_seconds": r[f"paper_{variant}_{mode}"],
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Table III and Figures 8-9: HPCC
# ---------------------------------------------------------------------------


def table3_systems() -> list[dict]:
    """Table III: specifications, derived from the machine models."""
    keys = ("ookami", "stampede2-skx", "stampede2-knl", "bridges2", "expanse")
    rows = []
    for key in keys:
        s = SYSTEMS[key]
        rows.append(
            {
                "system": s.name,
                "simd": s.simd_label,
                "cores_per_node": s.cores,
                "base_ghz": s.table3_base_ghz,
                "peak_gflops_core": round(s.peak_gflops_core, 1),
                "peak_gflops_node": round(s.peak_gflops_node),
            }
        )
    return rows


#: the Figure 8 / 9 (system, library) pairs
_HPCC_LA_PAIRS = (
    ("ookami", "fujitsu-blas"),
    ("ookami", "armpl"),
    ("ookami", "cray-libsci"),
    ("ookami", "openblas"),
    ("skx", "mkl-skx"),
    ("knl", "mkl-knl"),
    ("bridges2", "blis-zen2"),
    ("expanse", "blis-zen2"),
)

_HPCC_FFT_PAIRS = (
    ("ookami", "fujitsu-fftw"),
    ("ookami", "cray-fftw"),
    ("ookami", "fftw"),
    ("ookami", "armpl"),
    ("skx", "mkl-skx"),
    ("knl", "mkl-knl"),
    ("bridges2", "blis-zen2"),
)


def fig8_dgemm() -> list[dict]:
    """Fig. 8: DGEMM GFLOP/s per core with percent of peak."""
    from repro.hpcc.dgemm import dgemm_rate_gflops

    rows = []
    for sys_key, lib_key in _HPCC_LA_PAIRS:
        p = dgemm_rate_gflops(sys_key, lib_key)
        rows.append(
            {
                "system": sys_key,
                "library": lib_key,
                "gflops_per_core": p.gflops_per_core,
                "percent_of_peak": p.percent_of_peak,
            }
        )
    return rows


def _fig9_hpl_point(spec: tuple[str, str, int]) -> dict:
    from repro.hpcc.hpl import hpl_rate_gflops

    sys_key, lib_key, n = spec
    return {
        "system": sys_key,
        "library": lib_key,
        "nodes": n,
        "gflops": hpl_rate_gflops(sys_key, lib_key, nodes=n),
    }


def fig9_hpl(nodes: tuple[int, ...] = (1, 2, 4, 8),
             parallel: bool = False) -> list[dict]:
    """Fig. 9A/9B: HPL rates, single and multi node."""
    from repro.engine.sweep import map_schedules

    specs = [
        (sys_key, lib_key, n)
        for sys_key, lib_key in _HPCC_LA_PAIRS
        for n in nodes
        # the multi-node panel compares Ookami stacks
        if n == 1 or sys_key in ("ookami",)
    ]
    return map_schedules(
        _fig9_hpl_point, specs, mode="thread" if parallel else "serial"
    )


def _fig9_fft_point(spec: tuple[str, str, int]) -> dict:
    from repro.hpcc.fft import fft_rate_gflops

    sys_key, lib_key, n = spec
    return {
        "system": sys_key,
        "library": lib_key,
        "nodes": n,
        "gflops": fft_rate_gflops(sys_key, lib_key, nodes=n),
    }


def fig9_fft(nodes: tuple[int, ...] = (1, 2, 4, 8),
             parallel: bool = False) -> list[dict]:
    """Fig. 9C/9D: FFT rates, single and multi node."""
    from repro.engine.sweep import map_schedules

    specs = [
        (sys_key, lib_key, n)
        for sys_key, lib_key in _HPCC_FFT_PAIRS
        for n in nodes
        if n == 1 or sys_key in ("ookami",)
    ]
    return map_schedules(
        _fig9_fft_point, specs, mode="thread" if parallel else "serial"
    )
