"""Experiment registry: every table and figure of the paper, runnable.

``run_all()`` regenerates the complete evaluation section; each entry is
also exercised individually by ``benchmarks/`` (pytest-benchmark) and by
``examples/reproduce_paper.py``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.bench import figures as F

__all__ = ["EXPERIMENTS", "EXTRAS", "run_experiment", "run_all"]

ExperimentFn = Callable[[], list[dict]]

#: id -> (title, generator) for every artifact in the paper's evaluation
EXPERIMENTS: dict[str, tuple[str, ExperimentFn]] = {
    "table1": ("Compiler flags used in loop vectorization tests",
               F.table1_flags),
    "fig1": ("Runtime of simple vector loops relative to Skylake",
             F.fig1_loop_suite),
    "fig2": ("Runtime of vectorized math functions relative to Skylake",
             F.fig2_math_suite),
    "sec4": ("Evaluation of the exponential function (cycles/elem, ULP)",
             F.sec4_exp_study),
    "fig3": ("NPB class C single-core runtime per compiler",
             F.fig3_npb_serial),
    "fig4": ("NPB class C full-node runtime per compiler",
             F.fig4_npb_fullnode),
    "fig5": ("NPB parallel efficiency on A64FX (GCC)",
             F.fig5_scaling_a64fx),
    "fig6": ("NPB parallel efficiency on Skylake (icc)",
             F.fig6_scaling_skylake),
    "table2": ("LULESH timings", F.table2_lulesh),
    "fig7": ("LULESH timings chart series", F.fig7_lulesh),
    "table3": ("Specifications of compared HPC systems", F.table3_systems),
    "fig8": ("DGEMM per-core performance and percent of peak",
             F.fig8_dgemm),
    "fig9ab": ("HPL single/multi-node performance", F.fig9_hpl),
    "fig9cd": ("FFT single/multi-node performance", F.fig9_fft),
}


def _accuracy_rows() -> list[dict]:
    from repro.mathlib.accuracy import accuracy_sweep

    return [r.as_row() for r in accuracy_sweep(samples=100_000)]


def _ladder_rows() -> list[dict]:
    from repro.kernels.ladder import optimization_ladder

    return [r.as_row() for r in optimization_ladder()]


def _stream_rows() -> list[dict]:
    from repro.hpcc.stream import stream_model_gbs

    rows = []
    for sys_key, threads in (("ookami", (1, 12, 48)),
                             ("skylake", (1, 18, 36))):
        for t in threads:
            rows.append(
                {"system": sys_key, "threads": t,
                 "triad_gbs": round(stream_model_gbs(sys_key, t), 1)}
            )
    return rows


def _gups_rows() -> list[dict]:
    from repro.hpcc.randomaccess import gups_model

    return [
        {"system": k, "gups": round(gups_model(k), 4)}
        for k in ("ookami", "skylake", "knl", "bridges2")
    ]


def _ptrans_rows() -> list[dict]:
    from repro.hpcc.ptrans import ptrans_rate_model

    rows = []
    for nodes in (1, 2, 4, 8):
        rows.append(
            {"system": "ookami", "nodes": nodes,
             "gbs": round(ptrans_rate_model("ookami", nodes), 1)}
        )
    rows.append({"system": "skylake", "nodes": 1,
                 "gbs": round(ptrans_rate_model("skylake", 1), 1)})
    return rows


def _ablation_rows() -> list[dict]:
    from repro.bench import ablations as ab

    rows: list[dict] = []
    for name in ("window_ablation", "unroll_ablation",
                 "coalescing_ablation", "newton_steps_ablation",
                 "blocking_sqrt_ablation"):
        for r in getattr(ab, name)():
            rows.append({"study": name.replace("_ablation", ""), **r})
    return rows


def _roofline_rows() -> list[dict]:
    from repro.bench.roofline_study import roofline_positions

    return roofline_positions()


#: beyond-the-paper studies: the announced accuracy follow-up, the MC
#: optimization ladder, the remaining HPCC components, the ablations
EXTRAS: dict[str, tuple[str, ExperimentFn]] = {
    "accuracy": ("Math-library accuracy study (the paper's announced "
                 "follow-up): max/mean ULP per implementation and domain",
                 _accuracy_rows),
    "ladder": ("Monte Carlo optimization ladder (Sec. III's sequence, "
               "quantified)", _ladder_rows),
    "stream": ("HPCC STREAM: modeled Triad bandwidth", _stream_rows),
    "gups": ("HPCC RandomAccess: modeled GUPS per node", _gups_rows),
    "ptrans": ("HPCC PTRANS: modeled transpose rates", _ptrans_rows),
    "ablations": ("Model ablations: window, unroll, gather coalescing, "
                  "Newton steps, blocking FSQRT", _ablation_rows),
    "roofline": ("Roofline positioning of the NPB workloads",
                 _roofline_rows),
}


def run_experiment(exp_id: str) -> list[dict]:
    """Run one experiment (paper artifact or extra) and return its rows."""
    entry = EXPERIMENTS.get(exp_id) or EXTRAS.get(exp_id)
    if entry is None:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: "
            f"{sorted(EXPERIMENTS)} + extras {sorted(EXTRAS)}"
        )
    return entry[1]()


def run_all(include_extras: bool = False) -> dict[str, list[dict]]:
    """Regenerate every table and figure; returns ``{id: rows}``."""
    out = {exp_id: fn() for exp_id, (_, fn) in EXPERIMENTS.items()}
    if include_extras:
        out.update({exp_id: fn() for exp_id, (_, fn) in EXTRAS.items()})
    return out
