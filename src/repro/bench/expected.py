"""Values the paper reports, for model-vs-paper comparison.

Only numbers the paper states explicitly are recorded (table cells and
quoted ratios); bar charts without printed values are represented by the
qualitative relations the text asserts, encoded as (lo, hi) acceptance
bands used by the regression tests.
"""

from __future__ import annotations

__all__ = [
    "SEC4_EXP_CYCLES",
    "FIG1_FIG2_RATIO_BANDS",
    "FIG3_RATIO_BANDS",
    "FIG5_EFFICIENCY_BANDS",
    "FIG6_EFFICIENCY_BANDS",
    "FIG8_PERCENT_OF_PEAK",
    "HPCC_RATIOS",
    "TABLE3_EXPECTED",
]

#: Section IV: cycles per element of the exponential function
SEC4_EXP_CYCLES = {
    "gnu-serial": 32.0,
    "arm": 6.0,
    "cray": 4.2,
    "fujitsu": 2.1,
    "intel-skylake": 1.6,
    "fexpa-vla": 2.2,       # the paper's kernel, VLA loop
    "fexpa-fixed": 2.0,     # fixed-width register form
    "fexpa-unrolled": 1.9,  # "Unrolling once decreased this to 1.9"
}

#: Figures 1-2: runtime ratio A64FX(fujitsu)/Skylake(intel) acceptance
#: bands around the paper's statements ("hovers at the factor of 2",
#: "predicate ... 3-fold slower", "short gather ... circa 1.5-fold")
FIG1_FIG2_RATIO_BANDS: dict[str, tuple[float, float]] = {
    "simple": (1.5, 3.2),
    "predicate": (2.0, 4.5),
    "gather": (1.4, 3.0),
    "scatter": (1.4, 3.0),
    "short_gather": (0.8, 2.0),
    "short_scatter": (0.7, 2.0),
    "recip": (1.5, 3.2),
    "sqrt": (1.5, 3.5),
    "exp": (1.5, 3.2),
    "sin": (1.5, 4.5),
    "pow": (1.5, 5.0),
}

#: Figure 3: best-A64FX / icc-Skylake serial runtime ratio bands
#: ("from 1.6X to 5.5X ... biggest for compute-bound (5.5X for EP) while
#:   it narrows towards the memory-bound applications (1.6X for CG)")
FIG3_RATIO_BANDS: dict[str, tuple[float, float]] = {
    "BT": (2.0, 4.5),
    "SP": (1.2, 3.0),
    "LU": (2.0, 4.5),
    "CG": (1.3, 2.0),
    "EP": (4.5, 6.5),
    "UA": (1.4, 3.0),
}

#: Figure 5 (A64FX+GCC) parallel efficiency at 48 threads
FIG5_EFFICIENCY_BANDS: dict[str, tuple[float, float]] = {
    "EP": (0.9, 1.01),   # "scales almost linearly"
    "SP": (0.5, 0.7),    # "least scaling ... of 0.6"
    "BT": (0.6, 0.9),
    "LU": (0.55, 0.85),
    "CG": (0.55, 0.9),
    "UA": (0.55, 0.9),
}

#: Figure 6 (Skylake+icc) parallel efficiency at 36 threads
#: ("between 0.7 (in EP) and 0.25 (in SP)")
FIG6_EFFICIENCY_BANDS: dict[str, tuple[float, float]] = {
    "EP": (0.45, 0.8),
    "SP": (0.2, 0.45),
    "BT": (0.3, 0.6),
    "LU": (0.3, 0.6),
    "CG": (0.3, 0.6),
    "UA": (0.3, 0.6),
}

#: Figure 8: DGEMM percent of theoretical peak per (system, library)
FIG8_PERCENT_OF_PEAK = {
    ("ookami", "fujitsu-blas"): 71.0,
    ("skx", "mkl-skx"): 97.0,
    ("knl", "mkl-knl"): 11.0,
}

#: quoted HPCC ratios
HPCC_RATIOS = {
    # "almost 14 times faster than non-optimized OpenBLAS"
    "dgemm_fujitsu_vs_openblas": 14.0,
    # "nearly ten times faster than non-optimized OpenBLAS"
    "hpl_fujitsu_vs_openblas": 10.0,
    # "A64FX core performance ... 1.6 times faster than AMD Zen 2 cores"
    "dgemm_a64fx_vs_zen2_core": 1.6,
    # "4.2 times faster than the non-optimized FFTW"
    "fft_fujitsu_vs_stock": 4.2,
}

#: Table III verbatim
TABLE3_EXPECTED = [
    {"system": "Ookami", "simd": "SVE (512 wide)", "cores": 48,
     "base_ghz": 1.8, "peak_core": 57.6, "peak_node": 2765},
    {"system": "TACC Stampede 2 SKX", "simd": "AVX512", "cores": 48,
     "base_ghz": 1.4, "peak_core": 44.8, "peak_node": 2150},
    {"system": "TACC Stampede 2 KNL", "simd": "AVX512", "cores": 68,
     "base_ghz": 1.4, "peak_core": 44.8, "peak_node": 3046},
    {"system": "PSC Bridges 2", "simd": "AVX2", "cores": 128,
     "base_ghz": 2.25, "peak_core": 36.0, "peak_node": 4608},
    {"system": "SDSC Expanse", "simd": "AVX2", "cores": 128,
     "base_ghz": 2.25, "peak_core": 36.0, "peak_node": 4608},
]
