"""Roofline positioning of the paper's workloads.

Places every NPB benchmark, LULESH and the HPCC kernels on the A64FX and
Skylake node rooflines — the analysis that *explains* the paper's Fig. 4
winners ("A64FX performs well in memory-bound applications (CG, SP, UA)
while Skylake wins out in compute-bound applications"): an application
left of the A64FX ridge (~2.7 flop/byte) rides the 1 TB/s HBM; one right
of it needs the compute the Skylake node clocks higher for.
"""

from __future__ import annotations

from repro.engine.roofline import Roofline
from repro.machine.systems import get_system

__all__ = ["workload_intensity", "roofline_positions", "crossover_intensity"]


def workload_intensity(name: str) -> float:
    """Arithmetic intensity (flop / DRAM byte) of one NPB workload."""
    from repro.npb.workloads import NPB_WORKLOADS

    work = NPB_WORKLOADS[name.upper()]
    traffic = work.contig_bytes + work.random_bytes
    if traffic == 0:
        return float("inf")
    return work.flops / traffic


def crossover_intensity() -> float:
    """Intensity at which the Skylake node overtakes the A64FX node.

    Below it the A64FX's bandwidth advantage dominates; above it
    Skylake's (all-core) compute may win.  With the A64FX holding both a
    bandwidth *and* a peak advantage over the 36-core 6140 node, this is
    where the ratio of attainable performance is closest.
    """
    a64 = Roofline.for_node(get_system("ookami"))
    skl = Roofline.for_node(get_system("skylake"))
    # scan intensities for the minimum A64FX/Skylake attainable ratio
    best_x, best_ratio = 0.1, float("inf")
    x = 0.05
    while x < 200.0:
        ratio = a64.attainable_gflops(x) / skl.attainable_gflops(x)
        if ratio < best_ratio:
            best_ratio, best_x = ratio, x
        x *= 1.05
    return best_x


def roofline_positions() -> list[dict]:
    """One row per workload: intensity, attainable GFLOP/s on each node,
    and which machine the roofline favours."""
    a64 = Roofline.for_node(get_system("ookami"))
    skl = Roofline.for_node(get_system("skylake"))

    from repro.npb.workloads import NPB_WORKLOADS

    rows = []
    for name in sorted(NPB_WORKLOADS):
        x = workload_intensity(name)
        if x == float("inf"):
            a_att, s_att = a64.peak_gflops, skl.peak_gflops
            x_label = "compute-only"
        else:
            a_att, s_att = a64.attainable_gflops(x), skl.attainable_gflops(x)
            x_label = f"{x:.2f}"
        rows.append(
            {
                "workload": name,
                "intensity_flop_per_byte": x_label,
                "a64fx_attainable_gflops": round(a_att, 1),
                "skylake_attainable_gflops": round(s_att, 1),
                "roofline_favours": "A64FX" if a_att >= s_att else "Skylake",
                "regime": (
                    "memory-bound" if x != float("inf")
                    and x < a64.ridge_intensity else "compute-bound"
                ),
            }
        )
    return rows
