"""CMG/NUMA topology and page-placement policy model.

The A64FX groups its 48 cores into four Core Memory Groups (CMGs) of 12
cores; each CMG owns 8 GB of on-package HBM at 256 GB/s and the CMGs are
fully connected by an on-die ring/network.  Where OpenMP data lands
therefore decides whether a 48-thread run sees 1 TB/s or 256 GB/s:

    "The Fujitsu compiler has a default policy of allocating all the data
     in CMG 0.  Once we changed the policy to first touch, the Fujitsu
     compiler showed a much better performance in SP..."  (paper, Sec. V)

:class:`CMGTopology` turns a placement policy plus a set of active cores
into the aggregate memory bandwidth the threads can draw — the quantity
the OpenMP engine needs to reproduce Figure 4's `fujitsu` vs
`fujitsu-first-touch` bars.  x86 dual-socket nodes use the same class with
``domains=2``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro._util import require_positive

__all__ = ["PagePlacement", "CMGTopology"]


class PagePlacement(enum.Enum):
    """Where the OS/runtime places a parallel job's data pages."""

    FIRST_TOUCH = "first_touch"      #: each thread's pages land on its CMG
    SINGLE_DOMAIN = "single_domain"  #: everything on domain 0 (Fujitsu default)
    INTERLEAVE = "interleave"        #: round-robin across domains


@dataclass(frozen=True)
class CMGTopology:
    """NUMA topology of one node.

    Parameters
    ----------
    domains:
        Number of NUMA domains (4 CMGs on A64FX, 2 sockets on x86).
    cores_per_domain:
        Cores per domain.
    local_bw_gbs:
        Memory bandwidth of one domain.
    remote_bw_gbs:
        Bandwidth available when a domain's memory is accessed from other
        domains (the on-die ring for A64FX, UPI for Skylake) — this caps a
        SINGLE_DOMAIN run even below the owning domain's local bandwidth.
    remote_latency_factor:
        Multiplier on memory latency for remote accesses.
    """

    domains: int
    cores_per_domain: int
    local_bw_gbs: float
    remote_bw_gbs: float
    remote_latency_factor: float = 1.6

    def __post_init__(self) -> None:
        require_positive(self.domains, "domains")
        require_positive(self.cores_per_domain, "cores_per_domain")
        require_positive(self.local_bw_gbs, "local_bw_gbs")
        require_positive(self.remote_bw_gbs, "remote_bw_gbs")
        require_positive(self.remote_latency_factor, "remote_latency_factor")

    @property
    def total_cores(self) -> int:
        """Compute cores across all domains."""
        return self.domains * self.cores_per_domain

    def active_domains(self, threads: int) -> int:
        """Domains hosting at least one thread under a spread/close-packed
        hybrid: threads fill domains in order (OMP_PROC_BIND=close), the
        common default on both systems."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads > self.total_cores:
            raise ValueError(
                f"{threads} threads exceed {self.total_cores} cores"
            )
        return min(self.domains, math.ceil(threads / self.cores_per_domain))

    def aggregate_bandwidth_gbs(
        self, threads: int, placement: PagePlacement
    ) -> float:
        """Total memory bandwidth the *threads* can draw together.

        * FIRST_TOUCH: each active domain serves its own threads — the sum
          of active domains' local bandwidth.
        * SINGLE_DOMAIN: every access targets domain 0; threads on domain 0
          get local bandwidth, the rest squeeze through the remote fabric,
          and both contend for the single domain's memory controller.
        * INTERLEAVE: accesses spread over all domains, but
          ``(domains-1)/domains`` of them are remote, capped by the fabric.
        """
        act = self.active_domains(threads)
        if placement is PagePlacement.FIRST_TOUCH:
            return self.local_bw_gbs * act
        if placement is PagePlacement.SINGLE_DOMAIN:
            if act == 1:
                return self.local_bw_gbs
            # the owning controller is the hard cap; remote traffic is
            # further throttled by the fabric
            return min(self.local_bw_gbs, self.remote_bw_gbs + self.local_bw_gbs / act)
        # INTERLEAVE
        local_frac = 1.0 / self.domains
        remote = min(self.remote_bw_gbs, self.local_bw_gbs * self.domains * (1 - local_frac))
        return min(self.local_bw_gbs * self.domains,
                   self.local_bw_gbs * act * local_frac + remote)

    def latency_factor(self, placement: PagePlacement, threads: int) -> float:
        """Average memory-latency multiplier under *placement*."""
        act = self.active_domains(threads)
        if placement is PagePlacement.FIRST_TOUCH or act == 1:
            return 1.0
        if placement is PagePlacement.SINGLE_DOMAIN:
            remote_frac = 1.0 - 1.0 / act
            return 1.0 + remote_frac * (self.remote_latency_factor - 1.0)
        remote_frac = 1.0 - 1.0 / self.domains
        return 1.0 + remote_frac * (self.remote_latency_factor - 1.0)
