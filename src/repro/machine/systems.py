"""Catalog of the full systems the paper measures (Table III and Sec. II).

A :class:`System` bundles a per-core pipeline model, a memory hierarchy,
a NUMA topology and interconnect parameters.  The catalog covers:

* ``ookami`` — the HPE Apollo 80 A64FX nodes (48 cores, 32 GB HBM2,
  4 CMGs x 256 GB/s, HDR-200 InfiniBand fat tree).
* ``skylake-6140`` — the Xeon Gold 6140 node used for the loop/NPB
  comparisons ("Intel Skylake with 36 cores").
* ``skylake-6130`` — the Xeon Gold 6130 (32-core) LULESH comparison node.
* ``stampede2-skx`` / ``stampede2-knl`` — TACC Stampede 2 (Table III).
* ``bridges2`` / ``expanse`` — the AMD EPYC 7742 systems (Table III).

The Table III columns (SIMD width, cores/node, base frequency, peak
GFLOP/s per core and per node) are all *derived* from the models, and a
unit test checks they reproduce the table's printed values.

Since the machine-description refactor the numbers behind each system
live as declarative :class:`~repro.machine.spec.MachineSpec` presets in
:mod:`repro.machine.spec`; this catalog is the cached
:meth:`~repro.machine.spec.MachineSpec.build_system` of those presets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_positive
from repro.machine.memory import MemoryHierarchy
from repro.machine.microarch import Microarch
from repro.machine.numa import CMGTopology

__all__ = ["System", "Interconnect", "SYSTEMS", "get_system"]


@dataclass(frozen=True)
class Interconnect:
    """Analytic alpha-beta model of the inter-node network."""

    name: str
    latency_us: float
    bw_gbs: float  # injection bandwidth per node

    def __post_init__(self) -> None:
        require_positive(self.latency_us, "latency_us")
        require_positive(self.bw_gbs, "bw_gbs")

    def transfer_time_s(self, nbytes: float) -> float:
        """Time to move *nbytes* point-to-point."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_us * 1e-6 + nbytes / (self.bw_gbs * 1e9)


@dataclass(frozen=True)
class System:
    """A complete compute node (plus its network) as a simulation target."""

    name: str
    cpu: Microarch
    cores: int
    hierarchy: MemoryHierarchy
    topology: CMGTopology
    interconnect: Interconnect
    simd_label: str
    table3_base_ghz: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.cores, "cores")
        if self.cores != self.topology.total_cores:
            raise ValueError(
                f"{self.name}: cores={self.cores} disagrees with topology "
                f"{self.topology.total_cores}"
            )

    @property
    def peak_gflops_core(self) -> float:
        """Peak double-precision GFLOP/s per core at the all-core clock
        (the convention Table III uses)."""
        return self.cpu.peak_gflops_core(allcore=True)

    @property
    def peak_gflops_node(self) -> float:
        """Theoretical peak of a full node, in GFLOP/s."""
        return self.peak_gflops_core * self.cores

    @property
    def node_stream_bw_gbs(self) -> float:
        """Aggregate streaming memory bandwidth of the node."""
        return self.hierarchy.node_dram_bw_gbs


# ---------------------------------------------------------------------------
# Catalog: cached builds of the declarative presets.  The bottom import
# breaks the import cycle (spec.py lazy-imports this module's System /
# Interconnect classes, which are defined above).
# ---------------------------------------------------------------------------

from repro.machine import spec as _spec  # noqa: E402

SYSTEMS: dict[str, System] = {}


def _register(system: System, *keys: str) -> System:
    for key in keys:
        if key in SYSTEMS:
            raise ValueError(f"duplicate system key {key!r}")
        SYSTEMS[key] = system
    return system


OOKAMI = _register(_spec.A64FX_SPEC.build_system(), "ookami", "a64fx")
SKYLAKE_36C = _register(
    _spec.SKYLAKE_6140_SPEC.build_system(), "skylake-6140", "skylake"
)
SKYLAKE_LULESH = _register(
    _spec.SKYLAKE_6130_SPEC.build_system(), "skylake-6130"
)
STAMPEDE2_SKX = _register(
    _spec.SKYLAKE_8160_SPEC.build_system(), "stampede2-skx", "skx"
)
STAMPEDE2_KNL = _register(
    _spec.KNL_7250_SPEC.build_system(), "stampede2-knl", "knl"
)
# two Table III systems share the EPYC 7742 machine spec
BRIDGES2 = _register(
    _spec.EPYC_7742_SPEC.build_system("PSC Bridges 2 (EPYC 7742)"),
    "bridges2",
)
EXPANSE = _register(_spec.EPYC_7742_SPEC.build_system(), "expanse", "epyc")
RVV_HBM = _register(_spec.RVV_SPEC.build_system(), "rvv")


def get_system(key: str) -> System:
    """Look up a system by catalog key (case-insensitive)."""
    try:
        return SYSTEMS[key.lower()]
    except KeyError:
        raise KeyError(
            f"unknown system {key!r}; available: {sorted(SYSTEMS)}"
        ) from None
