"""Catalog of the full systems the paper measures (Table III and Sec. II).

A :class:`System` bundles a per-core pipeline model, a memory hierarchy,
a NUMA topology and interconnect parameters.  The catalog covers:

* ``ookami`` — the HPE Apollo 80 A64FX nodes (48 cores, 32 GB HBM2,
  4 CMGs x 256 GB/s, HDR-200 InfiniBand fat tree).
* ``skylake-6140`` — the Xeon Gold 6140 node used for the loop/NPB
  comparisons ("Intel Skylake with 36 cores").
* ``skylake-6130`` — the Xeon Gold 6130 (32-core) LULESH comparison node.
* ``stampede2-skx`` / ``stampede2-knl`` — TACC Stampede 2 (Table III).
* ``bridges2`` / ``expanse`` — the AMD EPYC 7742 systems (Table III).

The Table III columns (SIMD width, cores/node, base frequency, peak
GFLOP/s per core and per node) are all *derived* from the models, and a
unit test checks they reproduce the table's printed values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import GIB, KIB, MIB, require_positive
from repro.machine.memory import CacheLevel, MemoryHierarchy
from repro.machine.microarch import (
    A64FX,
    EPYC_7742,
    KNL_7250,
    Microarch,
    SKYLAKE_6130,
    SKYLAKE_6140,
    SKYLAKE_8160,
)
from repro.machine.numa import CMGTopology

__all__ = ["System", "Interconnect", "SYSTEMS", "get_system"]


@dataclass(frozen=True)
class Interconnect:
    """Analytic alpha-beta model of the inter-node network."""

    name: str
    latency_us: float
    bw_gbs: float  # injection bandwidth per node

    def __post_init__(self) -> None:
        require_positive(self.latency_us, "latency_us")
        require_positive(self.bw_gbs, "bw_gbs")

    def transfer_time_s(self, nbytes: float) -> float:
        """Time to move *nbytes* point-to-point."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_us * 1e-6 + nbytes / (self.bw_gbs * 1e9)


@dataclass(frozen=True)
class System:
    """A complete compute node (plus its network) as a simulation target."""

    name: str
    cpu: Microarch
    cores: int
    hierarchy: MemoryHierarchy
    topology: CMGTopology
    interconnect: Interconnect
    simd_label: str
    table3_base_ghz: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.cores, "cores")
        if self.cores != self.topology.total_cores:
            raise ValueError(
                f"{self.name}: cores={self.cores} disagrees with topology "
                f"{self.topology.total_cores}"
            )

    @property
    def peak_gflops_core(self) -> float:
        """Peak double-precision GFLOP/s per core at the all-core clock
        (the convention Table III uses)."""
        return self.cpu.peak_gflops_core(allcore=True)

    @property
    def peak_gflops_node(self) -> float:
        """Theoretical peak of a full node, in GFLOP/s."""
        return self.peak_gflops_core * self.cores

    @property
    def node_stream_bw_gbs(self) -> float:
        """Aggregate streaming memory bandwidth of the node."""
        return self.hierarchy.node_dram_bw_gbs


def _a64fx_hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        levels=(
            CacheLevel("L1", 64 * KIB, 256, 4, latency=11, bw_bytes_per_cycle=128),
            CacheLevel("L2", 8 * MIB, 256, 16, latency=37, bw_bytes_per_cycle=64,
                       shared_by=12),
        ),
        dram_bw_gbs=256.0,       # HBM2 per CMG
        dram_latency_ns=260.0,
        cores_per_domain=12,
        domains=4,
        mlp=16,
        stream_bw_core_gbs=36.0,
    )


def _skylake_hierarchy(sockets: int, cores_per_socket: int,
                       bw_per_socket: float = 100.0) -> MemoryHierarchy:
    return MemoryHierarchy(
        levels=(
            CacheLevel("L1", 32 * KIB, 64, 8, latency=5, bw_bytes_per_cycle=128),
            CacheLevel("L2", 1 * MIB, 64, 16, latency=14, bw_bytes_per_cycle=64),
            CacheLevel("L3", int(1.375 * MIB) * cores_per_socket, 64, 11,
                       latency=50, bw_bytes_per_cycle=14,
                       shared_by=cores_per_socket),
        ),
        dram_bw_gbs=bw_per_socket,   # 6 x DDR4-2666 per socket, sustained
        dram_latency_ns=90.0,
        cores_per_domain=cores_per_socket,
        domains=sockets,
        mlp=10,
        stream_bw_core_gbs=13.0,
    )


def _knl_hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        levels=(
            CacheLevel("L1", 32 * KIB, 64, 8, latency=5, bw_bytes_per_cycle=64),
            CacheLevel("L2", 1 * MIB, 64, 16, latency=20, bw_bytes_per_cycle=32,
                       shared_by=2),
        ),
        dram_bw_gbs=330.0,   # MCDRAM flat-mode sustained
        dram_latency_ns=150.0,
        cores_per_domain=68,
        domains=1,
        mlp=12,
        stream_bw_core_gbs=10.0,
    )


def _epyc_hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        levels=(
            CacheLevel("L1", 32 * KIB, 64, 8, latency=4, bw_bytes_per_cycle=64),
            CacheLevel("L2", 512 * KIB, 64, 8, latency=12, bw_bytes_per_cycle=32),
            CacheLevel("L3", 16 * MIB, 64, 16, latency=40, bw_bytes_per_cycle=14,
                       shared_by=4),
        ),
        dram_bw_gbs=150.0,   # 8 x DDR4-3200 per socket, sustained
        dram_latency_ns=100.0,
        cores_per_domain=64,
        domains=2,
        mlp=12,
        stream_bw_core_gbs=14.0,
    )


_HDR200 = Interconnect("HDR-200 InfiniBand fat tree", latency_us=1.3, bw_gbs=24.0)
_OPA = Interconnect("Omni-Path 100", latency_us=1.1, bw_gbs=12.0)
_HDR_XSEDE = Interconnect("HDR-200 InfiniBand", latency_us=1.2, bw_gbs=24.0)


SYSTEMS: dict[str, System] = {}


def _register(system: System, *keys: str) -> System:
    for key in keys:
        if key in SYSTEMS:
            raise ValueError(f"duplicate system key {key!r}")
        SYSTEMS[key] = system
    return system


OOKAMI = _register(
    System(
        name="Ookami (Fujitsu A64FX)",
        cpu=A64FX,
        cores=48,
        hierarchy=_a64fx_hierarchy(),
        topology=CMGTopology(
            domains=4, cores_per_domain=12,
            local_bw_gbs=230.0,       # sustained per-CMG (256 raw)
            remote_bw_gbs=60.0,       # inter-CMG ring (sustained, shared)
            remote_latency_factor=1.6,
        ),
        interconnect=_HDR200,
        simd_label="SVE (512 wide)",
        table3_base_ghz=1.8,
    ),
    "ookami", "a64fx",
)

SKYLAKE_36C = _register(
    System(
        name="Skylake 6140 (36 cores)",
        cpu=SKYLAKE_6140,
        cores=36,
        hierarchy=_skylake_hierarchy(sockets=2, cores_per_socket=18),
        topology=CMGTopology(
            domains=2, cores_per_domain=18,
            local_bw_gbs=95.0, remote_bw_gbs=55.0,
            remote_latency_factor=1.7,
        ),
        interconnect=_OPA,
        simd_label="AVX512",
    ),
    "skylake-6140", "skylake",
)

SKYLAKE_LULESH = _register(
    System(
        name="Skylake 6130 (32 cores)",
        cpu=SKYLAKE_6130,
        cores=32,
        hierarchy=_skylake_hierarchy(sockets=2, cores_per_socket=16),
        topology=CMGTopology(
            domains=2, cores_per_domain=16,
            local_bw_gbs=95.0, remote_bw_gbs=55.0,
            remote_latency_factor=1.7,
        ),
        interconnect=_OPA,
        simd_label="AVX512",
    ),
    "skylake-6130",
)

STAMPEDE2_SKX = _register(
    System(
        name="TACC Stampede 2 SKX (Xeon Platinum 8160)",
        cpu=SKYLAKE_8160,
        cores=48,
        hierarchy=_skylake_hierarchy(sockets=2, cores_per_socket=24),
        topology=CMGTopology(
            domains=2, cores_per_domain=24,
            local_bw_gbs=95.0, remote_bw_gbs=55.0,
            remote_latency_factor=1.7,
        ),
        interconnect=_OPA,
        simd_label="AVX512",
        table3_base_ghz=1.4,
    ),
    "stampede2-skx", "skx",
)

STAMPEDE2_KNL = _register(
    System(
        name="TACC Stampede 2 KNL (Xeon Phi 7250)",
        cpu=KNL_7250,
        cores=68,
        hierarchy=_knl_hierarchy(),
        topology=CMGTopology(
            domains=1, cores_per_domain=68,
            local_bw_gbs=330.0, remote_bw_gbs=330.0,
            remote_latency_factor=1.0,
        ),
        interconnect=_OPA,
        simd_label="AVX512",
        table3_base_ghz=1.4,
    ),
    "stampede2-knl", "knl",
)


def _epyc_system(name: str) -> System:
    return System(
        name=name,
        cpu=EPYC_7742,
        cores=128,
        hierarchy=_epyc_hierarchy(),
        topology=CMGTopology(
            domains=2, cores_per_domain=64,
            local_bw_gbs=140.0, remote_bw_gbs=70.0,
            remote_latency_factor=1.6,
        ),
        interconnect=_HDR_XSEDE,
        simd_label="AVX2",
        table3_base_ghz=2.25,
    )


BRIDGES2 = _register(_epyc_system("PSC Bridges 2 (EPYC 7742)"), "bridges2")
EXPANSE = _register(_epyc_system("SDSC Expanse (EPYC 7742)"), "expanse", "epyc")


def get_system(key: str) -> System:
    """Look up a system by catalog key (case-insensitive)."""
    try:
        return SYSTEMS[key.lower()]
    except KeyError:
        raise KeyError(
            f"unknown system {key!r}; available: {sorted(SYSTEMS)}"
        ) from None
