"""Declarative machine descriptions: machines as data, not code.

A :class:`MachineSpec` is a pure-data record — strings, numbers and
tuples only — that fully describes one machine: the vector ISA (by
:data:`~repro.machine.isa.VECTOR_ISAS` registry name), vector length,
issue width, out-of-order window, the complete per-op timing table
(port map + pipe latencies), and optionally the cache/HBM geometry,
NUMA topology and interconnect of a full node.  Every spec serializes
to and from JSON (:meth:`MachineSpec.to_dict` /
:meth:`MachineSpec.from_dict`, format :data:`SPEC_FORMAT`) and builds
the executable model objects on demand:

* :meth:`MachineSpec.build_core` → a
  :class:`~repro.machine.microarch.Microarch` consumed by the code
  generator, the event-driven/batched engines and the ECM in-core
  analysis;
* :meth:`MachineSpec.build_system` → a
  :class:`~repro.machine.systems.System` consumed by the ECM traffic
  model and the executor.

Builds are cached per (value-equal) spec, so two equal specs — e.g.
one round-tripped through JSON — resolve to the *same* ``Microarch``
object, which keeps the engines' id-keyed memo tables effective.

The paper's machines are presets here (:data:`MACHINE_SPECS`):
``repro.machine.microarch.A64FX`` and friends are now *built from*
:data:`A64FX_SPEC` etc., with the numbers bit-identical to the
original in-code tables (the golden/fuzz suites and
``tests/machine/test_spec.py`` enforce this).  :func:`grid_variants`
and :func:`grid_specs` enumerate hypothetical machines across the
vector-length x issue-width x cache/HBM-geometry design space for
``repro sweep --grid`` (see :mod:`repro.machine.grid`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from functools import lru_cache
from itertools import islice
from typing import Iterator, Sequence

from repro._util import KIB, MIB, require_positive
from repro.machine.isa import Op, Pipe, VECTOR_ISAS, VectorISA, get_isa

__all__ = [
    "SPEC_FORMAT",
    "OpTimingSpec",
    "CacheLevelSpec",
    "MemorySpec",
    "TopologySpec",
    "InterconnectSpec",
    "MachineSpec",
    "MACHINE_SPECS",
    "A64FX_SPEC",
    "SKYLAKE_6140_SPEC",
    "SKYLAKE_6130_SPEC",
    "SKYLAKE_8160_SPEC",
    "KNL_7250_SPEC",
    "EPYC_7742_SPEC",
    "THUNDERX2_SPEC",
    "RVV_SPEC",
    "get_machine_spec",
    "grid_variants",
    "grid_specs",
    "clear_build_caches",
]

#: version tag carried by every serialized machine spec
SPEC_FORMAT = "repro.machine-spec/1"

_OP_NAMES = {op.value for op in Op}
_PIPE_NAMES = {pipe.value for pipe in Pipe}


@dataclass(frozen=True)
class OpTimingSpec:
    """Timing of one abstract op, by name: latency / rtput / pipe set."""

    op: str
    latency: float
    rtput: float
    pipes: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in _OP_NAMES:
            raise ValueError(f"unknown op {self.op!r}")
        require_positive(self.latency, "latency")
        require_positive(self.rtput, "rtput")
        if not self.pipes:
            raise ValueError(f"op {self.op!r} needs at least one pipe")
        for pipe in self.pipes:
            if pipe not in _PIPE_NAMES:
                raise ValueError(f"op {self.op!r}: unknown pipe {pipe!r}")


@dataclass(frozen=True)
class CacheLevelSpec:
    """One cache level of a memory geometry, as data."""

    name: str
    capacity: int
    line: int
    assoc: int
    latency: float
    bw_bytes_per_cycle: float
    shared_by: int = 1

    def __post_init__(self) -> None:
        require_positive(self.capacity, "capacity")
        require_positive(self.line, "line")
        require_positive(self.assoc, "assoc")
        require_positive(self.latency, "latency")
        require_positive(self.bw_bytes_per_cycle, "bw_bytes_per_cycle")
        require_positive(self.shared_by, "shared_by")


@dataclass(frozen=True)
class MemorySpec:
    """Cache levels plus DRAM/HBM geometry of one NUMA domain."""

    levels: tuple[CacheLevelSpec, ...]
    dram_bw_gbs: float
    dram_latency_ns: float
    cores_per_domain: int
    domains: int
    mlp: int
    stream_bw_core_gbs: float = 12.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a MemorySpec needs at least one cache level")
        require_positive(self.dram_bw_gbs, "dram_bw_gbs")
        require_positive(self.dram_latency_ns, "dram_latency_ns")
        require_positive(self.cores_per_domain, "cores_per_domain")
        require_positive(self.domains, "domains")
        require_positive(self.mlp, "mlp")
        require_positive(self.stream_bw_core_gbs, "stream_bw_core_gbs")


@dataclass(frozen=True)
class TopologySpec:
    """NUMA/CMG topology parameters, as data."""

    domains: int
    cores_per_domain: int
    local_bw_gbs: float
    remote_bw_gbs: float
    remote_latency_factor: float = 1.6

    def __post_init__(self) -> None:
        require_positive(self.domains, "domains")
        require_positive(self.cores_per_domain, "cores_per_domain")
        require_positive(self.local_bw_gbs, "local_bw_gbs")
        require_positive(self.remote_bw_gbs, "remote_bw_gbs")
        require_positive(self.remote_latency_factor, "remote_latency_factor")


@dataclass(frozen=True)
class InterconnectSpec:
    """Alpha-beta interconnect parameters, as data."""

    name: str
    latency_us: float
    bw_gbs: float

    def __post_init__(self) -> None:
        require_positive(self.latency_us, "latency_us")
        require_positive(self.bw_gbs, "bw_gbs")


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine description in plain data.

    ``isa`` names a :class:`~repro.machine.isa.VectorISA`; the
    ISA-derived lowering flags (``has_fexpa``,
    ``gather_pair_coalescing``) default from the registry entry and can
    be overridden per machine (gather pair coalescing is an A64FX core
    feature, not an SVE guarantee).  ``memory``/``topology``/
    ``interconnect`` are optional: core-only specs (ThunderX2) build a
    :class:`~repro.machine.microarch.Microarch` but refuse
    :meth:`build_system`.

    Construction *is* validation: every field is range-checked and the
    timing table must cover the full op vocabulary the code generator
    can emit (``fexpa`` exactly when the machine has the accelerator),
    so a spec that constructs — including one drawn by the fuzzer —
    always builds a schedulable machine.
    """

    name: str
    isa: str
    vector_bits: int
    clock_ghz: float
    allcore_clock_ghz: float
    issue_width: int
    window: int
    timings: tuple[OpTimingSpec, ...]
    fp_pipes: int = 2
    smt: int = 1
    mem_overlap: bool = True
    has_fexpa: bool | None = None
    gather_pair_coalescing: bool | None = None
    cores: int = 1
    memory: MemorySpec | None = None
    topology: TopologySpec | None = None
    interconnect: InterconnectSpec | None = None
    system_name: str = ""
    simd_label: str = ""
    table3_base_ghz: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a MachineSpec needs a name")
        if self.isa not in VECTOR_ISAS:
            raise ValueError(
                f"unknown vector ISA {self.isa!r}; "
                f"available: {sorted(VECTOR_ISAS)}"
            )
        if self.vector_bits % 64 or self.vector_bits <= 0:
            raise ValueError("vector_bits must be a positive multiple of 64")
        require_positive(self.clock_ghz, "clock_ghz")
        require_positive(self.allcore_clock_ghz, "allcore_clock_ghz")
        if self.issue_width < 1 or self.window < 1:
            raise ValueError("issue_width and window must be >= 1")
        require_positive(self.fp_pipes, "fp_pipes")
        require_positive(self.smt, "smt")
        require_positive(self.cores, "cores")
        # canonical op order, so specs equal in content are equal as
        # values (and share one cached build) however they were written
        object.__setattr__(
            self, "timings",
            tuple(sorted(self.timings, key=lambda t: t.op)),
        )
        seen: set[str] = set()
        for t in self.timings:
            if t.op in seen:
                raise ValueError(f"duplicate timing for op {t.op!r}")
            seen.add(t.op)
        required = _OP_NAMES - {Op.FEXPA.value}
        missing = required - seen
        if missing:
            raise ValueError(
                f"{self.name}: timing table is missing ops "
                f"{sorted(missing)}"
            )
        if self.resolved_has_fexpa != (Op.FEXPA.value in seen):
            raise ValueError(
                f"{self.name}: a machine has a {Op.FEXPA.value!r} timing "
                "exactly when it has the FEXPA accelerator"
            )
        if (self.topology is not None
                and self.cores != self.topology.domains
                * self.topology.cores_per_domain):
            raise ValueError(
                f"{self.name}: cores={self.cores} disagrees with the "
                "topology's domains x cores_per_domain"
            )

    # -- ISA resolution -----------------------------------------------------
    @property
    def vector_isa(self) -> VectorISA:
        """The registry :class:`~repro.machine.isa.VectorISA` entry."""
        return VECTOR_ISAS[self.isa]

    @property
    def resolved_has_fexpa(self) -> bool:
        """``has_fexpa`` with the ISA default applied."""
        if self.has_fexpa is None:
            return self.vector_isa.has_fexpa
        return self.has_fexpa

    @property
    def resolved_gather_pair_coalescing(self) -> bool:
        """``gather_pair_coalescing`` with the ISA default applied.

        An ISA without a coalescing gather form can never coalesce, so
        the ISA capability bounds the per-machine override.
        """
        if self.gather_pair_coalescing is None:
            return self.vector_isa.gather_pair_coalescing
        return (self.gather_pair_coalescing
                and self.vector_isa.gather_pair_coalescing)

    @property
    def has_system(self) -> bool:
        """True when the spec describes a full node, not just a core."""
        return (self.memory is not None and self.topology is not None
                and self.interconnect is not None)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-safe dict (format :data:`SPEC_FORMAT`)."""
        doc = asdict(self)
        doc["timings"] = {
            t.op: {"latency": t.latency, "rtput": t.rtput,
                   "pipes": list(t.pipes)}
            for t in self.timings
        }
        for key in ("memory", "topology", "interconnect"):
            if doc[key] is not None:
                doc[key] = {
                    k: (list(v) if isinstance(v, tuple) else v)
                    for k, v in doc[key].items()
                }
        if doc["memory"] is not None:
            doc["memory"]["levels"] = [
                asdict(level) for level in self.memory.levels
            ]
        return {"format": SPEC_FORMAT, **doc}

    @classmethod
    def from_dict(cls, doc: dict) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_dict` output (validating)."""
        doc = dict(doc)
        fmt = doc.pop("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValueError(
                f"unsupported machine-spec format {fmt!r} "
                f"(expected {SPEC_FORMAT!r})"
            )
        timings = tuple(
            OpTimingSpec(op=op, latency=t["latency"], rtput=t["rtput"],
                         pipes=tuple(t["pipes"]))
            for op, t in doc.pop("timings").items()
        )
        memory = doc.pop("memory", None)
        if memory is not None:
            memory = MemorySpec(
                levels=tuple(CacheLevelSpec(**lvl)
                             for lvl in memory.pop("levels")),
                **memory,
            )
        topology = doc.pop("topology", None)
        if topology is not None:
            topology = TopologySpec(**topology)
        interconnect = doc.pop("interconnect", None)
        if interconnect is not None:
            interconnect = InterconnectSpec(**interconnect)
        return cls(timings=timings, memory=memory, topology=topology,
                   interconnect=interconnect, **doc)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # -- builders -----------------------------------------------------------
    def build_core(self):
        """The :class:`~repro.machine.microarch.Microarch` this spec
        describes (cached: equal specs share one object)."""
        return _build_core(self)

    def build_system(self, name: str | None = None):
        """The full :class:`~repro.machine.systems.System` (cached).

        ``name`` overrides the system label (two Table III systems —
        Bridges 2 and Expanse — share one machine spec).  Raises
        ``ValueError`` for core-only specs.
        """
        return _build_system(self, name)


@lru_cache(maxsize=None)
def _build_core(spec: MachineSpec):
    from repro.machine.microarch import Microarch, OpTiming

    timings = {
        Op(t.op): OpTiming(t.latency, t.rtput,
                           frozenset(Pipe(p) for p in t.pipes))
        for t in spec.timings
    }
    return Microarch(
        name=spec.name,
        vector_bits=spec.vector_bits,
        clock_ghz=spec.clock_ghz,
        allcore_clock_ghz=spec.allcore_clock_ghz,
        issue_width=spec.issue_width,
        window=spec.window,
        timings=timings,
        has_fexpa=spec.resolved_has_fexpa,
        gather_pair_coalescing=spec.resolved_gather_pair_coalescing,
        fp_pipes=spec.fp_pipes,
        smt=spec.smt,
        mem_overlap=spec.mem_overlap,
        isa=spec.isa,
    )


@lru_cache(maxsize=None)
def _build_system(spec: MachineSpec, name: str | None):
    from repro.machine.memory import CacheLevel, MemoryHierarchy
    from repro.machine.numa import CMGTopology
    from repro.machine.systems import Interconnect, System

    if not spec.has_system:
        raise ValueError(
            f"{spec.name} is a core-only spec (no memory/topology/"
            "interconnect); it cannot build a System"
        )
    assert spec.memory is not None
    assert spec.topology is not None
    assert spec.interconnect is not None
    hierarchy = MemoryHierarchy(
        levels=tuple(
            CacheLevel(lvl.name, lvl.capacity, lvl.line, lvl.assoc,
                       latency=lvl.latency,
                       bw_bytes_per_cycle=lvl.bw_bytes_per_cycle,
                       shared_by=lvl.shared_by)
            for lvl in spec.memory.levels
        ),
        dram_bw_gbs=spec.memory.dram_bw_gbs,
        dram_latency_ns=spec.memory.dram_latency_ns,
        cores_per_domain=spec.memory.cores_per_domain,
        domains=spec.memory.domains,
        mlp=spec.memory.mlp,
        stream_bw_core_gbs=spec.memory.stream_bw_core_gbs,
    )
    return System(
        name=name or spec.system_name or spec.name,
        cpu=_build_core(spec),
        cores=spec.cores,
        hierarchy=hierarchy,
        topology=CMGTopology(
            domains=spec.topology.domains,
            cores_per_domain=spec.topology.cores_per_domain,
            local_bw_gbs=spec.topology.local_bw_gbs,
            remote_bw_gbs=spec.topology.remote_bw_gbs,
            remote_latency_factor=spec.topology.remote_latency_factor,
        ),
        interconnect=Interconnect(
            spec.interconnect.name,
            latency_us=spec.interconnect.latency_us,
            bw_gbs=spec.interconnect.bw_gbs,
        ),
        simd_label=spec.simd_label,
        table3_base_ghz=spec.table3_base_ghz,
    )


def clear_build_caches() -> None:
    """Drop the cached Microarch/System builds (tests; pure caches)."""
    _build_core.cache_clear()
    _build_system.cache_clear()


# ---------------------------------------------------------------------------
# Timing tables as data.  These are the numbers the paper's results hinge
# on (see the module docstring of :mod:`repro.machine.microarch` for the
# provenance); :mod:`repro.machine.microarch` builds its public constants
# from these presets, so the values here are THE model.
# ---------------------------------------------------------------------------


def _ts(op: str, latency: float, rtput: float,
        *pipes: str) -> OpTimingSpec:
    return OpTimingSpec(op, latency, rtput, pipes)


def _with(base: tuple[OpTimingSpec, ...],
          *overrides: OpTimingSpec,
          drop: Sequence[str] = ()) -> tuple[OpTimingSpec, ...]:
    """A timing table derived from *base* by per-op override/removal."""
    by_op = {t.op: t for t in base}
    for t in overrides:
        by_op[t.op] = t
    for op in drop:
        by_op.pop(op, None)
    return tuple(by_op.values())


_A64FX_TIMINGS = (
    _ts("fadd", 9, 1, "fla", "flb"),
    _ts("fmul", 9, 1, "fla", "flb"),
    _ts("fma", 9, 1, "fla", "flb"),
    _ts("fmov", 4, 1, "fla", "flb"),
    _ts("fcmp", 4, 1, "fla"),
    _ts("fsel", 4, 1, "fla", "flb"),
    _ts("fminmax", 4, 1, "fla", "flb"),
    _ts("fcvt", 9, 1, "fla", "flb"),
    # blocking iterative units: reciprocal throughput == latency (the
    # paper quotes 134 cycles for a 512-bit FSQRT)
    _ts("fdiv", 112, 112, "fla"),
    _ts("fsqrt", 134, 134, "fla"),
    _ts("frecpe", 4, 1, "fla", "flb"),
    _ts("frsqrte", 4, 1, "fla", "flb"),
    _ts("fexpa", 4, 1, "fla", "flb"),
    _ts("fscale", 9, 1, "fla", "flb"),
    _ts("iadd", 4, 1, "fla", "flb"),
    _ts("imul", 9, 1, "fla", "flb"),
    _ts("ilogic", 4, 1, "fla", "flb"),
    _ts("perm", 6, 1, "flb"),       # single shuffle pipe on A64FX
    _ts("plogic", 3, 1, "pr"),
    _ts("pwhile", 3, 1, "pr"),
    _ts("ptest", 3, 1, "pr"),
    _ts("vload", 11, 1, "ls1", "ls2"),
    _ts("vstore", 1, 1, "ls1"),
    _ts("gather_uop", 11, 1, "ls1"),
    _ts("scatter_uop", 1, 1, "ls1"),
    _ts("sload", 8, 1, "ls1", "ls2"),
    _ts("sstore", 1, 1, "ls1"),
    _ts("salu", 1, 0.5, "exa", "exb"),
    _ts("sfp", 9, 1, "fla", "flb"),
    _ts("sfdiv", 43, 43, "fla"),
    _ts("sfsqrt", 51, 51, "fla"),
    _ts("branch", 1, 1, "br"),
    _ts("call", 1, 1, "br"),  # real cost comes from per-instr overrides
)

_SKX_TIMINGS = (
    _ts("fadd", 4, 1, "fla", "flb"),
    _ts("fmul", 4, 1, "fla", "flb"),
    _ts("fma", 4, 1, "fla", "flb"),
    _ts("fmov", 1, 0.5, "fla", "flb"),
    _ts("fcmp", 4, 1, "fla", "flb"),
    _ts("fsel", 2, 1, "fla", "flb"),
    _ts("fminmax", 4, 1, "fla", "flb"),
    _ts("fcvt", 4, 1, "fla", "flb"),
    # dedicated partially-pipelined divide unit: far from blocking
    _ts("fdiv", 23, 16, "fla"),
    _ts("fsqrt", 31, 25, "fla"),
    _ts("frecpe", 7, 2, "fla"),    # VRCP14PD
    _ts("frsqrte", 9, 2, "fla"),   # VRSQRT14PD
    # no FEXPA on x86 — deliberately absent from the table
    _ts("fscale", 4, 1, "fla", "flb"),  # VSCALEFPD (AVX-512 has one)
    _ts("iadd", 1, 0.5, "fla", "flb"),
    _ts("imul", 5, 1, "fla"),
    _ts("ilogic", 1, 0.5, "fla", "flb"),
    _ts("perm", 3, 1, "flb"),      # port-5 shuffles
    _ts("plogic", 1, 1, "pr"),     # kmask ops
    _ts("pwhile", 2, 1, "pr"),
    _ts("ptest", 2, 1, "pr"),
    _ts("vload", 7, 1, "ls1", "ls2"),
    _ts("vstore", 1, 1, "ls1"),
    _ts("gather_uop", 7, 1, "ls1"),
    _ts("scatter_uop", 1, 1, "ls1"),
    _ts("sload", 5, 0.5, "ls1", "ls2"),
    _ts("sstore", 1, 1, "ls1"),
    _ts("salu", 1, 0.25, "exa", "exb"),
    _ts("sfp", 4, 0.5, "fla", "flb"),
    _ts("sfdiv", 14, 4, "fla"),
    _ts("sfsqrt", 18, 6, "fla"),
    _ts("branch", 1, 0.5, "br"),
    _ts("call", 1, 1, "br"),
)

_KNL_TIMINGS = _with(
    _SKX_TIMINGS,
    _ts("fadd", 6, 1, "fla", "flb"),
    _ts("fmul", 6, 1, "fla", "flb"),
    _ts("fma", 6, 1, "fla", "flb"),
    _ts("fdiv", 32, 30, "fla"),
    _ts("fsqrt", 38, 35, "fla"),
    _ts("vload", 9, 1, "ls1", "ls2"),
    _ts("salu", 1, 0.5, "exa", "exb"),
    _ts("sfp", 6, 1, "fla", "flb"),
    _ts("gather_uop", 9, 2, "ls1"),
)

_ZEN2_TIMINGS = _with(
    _SKX_TIMINGS,
    _ts("fadd", 3, 1, "fla", "flb"),
    _ts("fmul", 3, 1, "fla", "flb"),
    _ts("fma", 5, 1, "fla", "flb"),
    _ts("fdiv", 13, 5, "fla"),
    _ts("fsqrt", 20, 9, "fla"),
    _ts("vload", 7, 1, "ls1", "ls2"),
    _ts("gather_uop", 7, 2, "ls1"),  # AVX2 gathers are microcoded
)

_TX2_TIMINGS = _with(
    _SKX_TIMINGS,
    _ts("fadd", 6, 1, "fla", "flb"),
    _ts("fmul", 6, 1, "fla", "flb"),
    _ts("fma", 6, 1, "fla", "flb"),
    _ts("fdiv", 16, 8, "fla"),
    _ts("fsqrt", 23, 12, "fla"),
)

# RVV: a hypothetical RISC-V vector core in the spirit of the design
# -space studies of arXiv 2111.01949 — vector-length-agnostic predicated
# loops like SVE, no FEXPA, pipelined (non-blocking) divide/sqrt, and
# per-element gathers (no pair coalescing).  Latencies sit between the
# A64FX's deep FP pipes and Skylake's short ones.
_RVV_TIMINGS = _with(
    _A64FX_TIMINGS,
    _ts("fadd", 6, 1, "fla", "flb"),
    _ts("fmul", 6, 1, "fla", "flb"),
    _ts("fma", 6, 1, "fla", "flb"),
    _ts("fmov", 2, 1, "fla", "flb"),
    _ts("fcvt", 6, 1, "fla", "flb"),
    _ts("fdiv", 24, 12, "fla"),
    _ts("fsqrt", 28, 14, "fla"),
    _ts("frecpe", 4, 1, "fla", "flb"),
    _ts("frsqrte", 4, 1, "fla", "flb"),
    _ts("fscale", 6, 1, "fla", "flb"),
    _ts("imul", 6, 1, "fla", "flb"),
    _ts("perm", 4, 1, "flb"),
    _ts("vload", 9, 1, "ls1", "ls2"),
    _ts("gather_uop", 9, 1, "ls1"),
    _ts("sload", 5, 1, "ls1", "ls2"),
    _ts("sfp", 6, 1, "fla", "flb"),
    _ts("sfdiv", 20, 10, "fla"),
    _ts("sfsqrt", 24, 12, "fla"),
    drop=("fexpa",),
)


# ---------------------------------------------------------------------------
# Machine presets: the paper's systems (plus the hypothetical RVV node)
# re-expressed as declarative data.
# ---------------------------------------------------------------------------

_A64FX_MEMORY = MemorySpec(
    levels=(
        CacheLevelSpec("L1", 64 * KIB, 256, 4, latency=11,
                       bw_bytes_per_cycle=128),
        CacheLevelSpec("L2", 8 * MIB, 256, 16, latency=37,
                       bw_bytes_per_cycle=64, shared_by=12),
    ),
    dram_bw_gbs=256.0,       # HBM2 per CMG
    dram_latency_ns=260.0,
    cores_per_domain=12,
    domains=4,
    mlp=16,
    stream_bw_core_gbs=36.0,
)


def _skylake_memory(sockets: int, cores_per_socket: int,
                    bw_per_socket: float = 100.0) -> MemorySpec:
    return MemorySpec(
        levels=(
            CacheLevelSpec("L1", 32 * KIB, 64, 8, latency=5,
                           bw_bytes_per_cycle=128),
            CacheLevelSpec("L2", 1 * MIB, 64, 16, latency=14,
                           bw_bytes_per_cycle=64),
            CacheLevelSpec("L3", int(1.375 * MIB) * cores_per_socket, 64,
                           11, latency=50, bw_bytes_per_cycle=14,
                           shared_by=cores_per_socket),
        ),
        dram_bw_gbs=bw_per_socket,   # 6 x DDR4-2666 per socket, sustained
        dram_latency_ns=90.0,
        cores_per_domain=cores_per_socket,
        domains=sockets,
        mlp=10,
        stream_bw_core_gbs=13.0,
    )


_HDR200 = InterconnectSpec("HDR-200 InfiniBand fat tree",
                           latency_us=1.3, bw_gbs=24.0)
_OPA = InterconnectSpec("Omni-Path 100", latency_us=1.1, bw_gbs=12.0)
_HDR_XSEDE = InterconnectSpec("HDR-200 InfiniBand",
                              latency_us=1.2, bw_gbs=24.0)


A64FX_SPEC = MachineSpec(
    name="A64FX",
    isa="sve",
    vector_bits=512,
    clock_ghz=1.8,
    allcore_clock_ghz=1.8,
    issue_width=4,
    window=128,  # 128-entry commit stack (A64FX microarchitecture manual)
    timings=_A64FX_TIMINGS,
    fp_pipes=2,
    mem_overlap=False,  # non-overlapping ECM composition (Alappat et al.)
    cores=48,
    memory=_A64FX_MEMORY,
    topology=TopologySpec(
        domains=4, cores_per_domain=12,
        local_bw_gbs=230.0,       # sustained per-CMG (256 raw)
        remote_bw_gbs=60.0,       # inter-CMG ring (sustained, shared)
        remote_latency_factor=1.6,
    ),
    interconnect=_HDR200,
    system_name="Ookami (Fujitsu A64FX)",
    simd_label="SVE (512 wide)",
    table3_base_ghz=1.8,
)


def _skylake_spec(name: str, boost: float, allcore: float, *,
                  sockets: int, cores_per_socket: int,
                  system_name: str,
                  table3_base_ghz: float | None = None) -> MachineSpec:
    return MachineSpec(
        name=name,
        isa="avx512",
        vector_bits=512,
        clock_ghz=boost,
        allcore_clock_ghz=allcore,
        issue_width=4,
        window=224,
        timings=_SKX_TIMINGS,
        fp_pipes=2,
        smt=2,
        cores=sockets * cores_per_socket,
        memory=_skylake_memory(sockets, cores_per_socket),
        topology=TopologySpec(
            domains=sockets, cores_per_domain=cores_per_socket,
            local_bw_gbs=95.0, remote_bw_gbs=55.0,
            remote_latency_factor=1.7,
        ),
        interconnect=_OPA,
        system_name=system_name,
        simd_label="AVX512",
        table3_base_ghz=table3_base_ghz,
    )


SKYLAKE_6140_SPEC = _skylake_spec(
    "Skylake 6140", boost=3.7, allcore=2.1,
    sockets=2, cores_per_socket=18,
    system_name="Skylake 6140 (36 cores)",
)
SKYLAKE_6130_SPEC = _skylake_spec(
    "Skylake 6130", boost=3.7, allcore=1.9,
    sockets=2, cores_per_socket=16,
    system_name="Skylake 6130 (32 cores)",
)
SKYLAKE_8160_SPEC = _skylake_spec(
    "Skylake 8160 (SKX)", boost=3.7, allcore=1.4,
    sockets=2, cores_per_socket=24,
    system_name="TACC Stampede 2 SKX (Xeon Platinum 8160)",
    table3_base_ghz=1.4,
)

KNL_7250_SPEC = MachineSpec(
    name="KNL 7250",
    isa="avx512",
    vector_bits=512,
    clock_ghz=1.4,
    allcore_clock_ghz=1.4,
    issue_width=2,
    window=72,
    timings=_KNL_TIMINGS,
    fp_pipes=2,
    smt=4,
    cores=68,
    memory=MemorySpec(
        levels=(
            CacheLevelSpec("L1", 32 * KIB, 64, 8, latency=5,
                           bw_bytes_per_cycle=64),
            CacheLevelSpec("L2", 1 * MIB, 64, 16, latency=20,
                           bw_bytes_per_cycle=32, shared_by=2),
        ),
        dram_bw_gbs=330.0,   # MCDRAM flat-mode sustained
        dram_latency_ns=150.0,
        cores_per_domain=68,
        domains=1,
        mlp=12,
        stream_bw_core_gbs=10.0,
    ),
    topology=TopologySpec(
        domains=1, cores_per_domain=68,
        local_bw_gbs=330.0, remote_bw_gbs=330.0,
        remote_latency_factor=1.0,
    ),
    interconnect=_OPA,
    system_name="TACC Stampede 2 KNL (Xeon Phi 7250)",
    simd_label="AVX512",
    table3_base_ghz=1.4,
)

EPYC_7742_SPEC = MachineSpec(
    name="EPYC 7742 (Zen2)",
    isa="avx2",
    vector_bits=256,
    clock_ghz=3.2,
    allcore_clock_ghz=2.25,
    issue_width=5,
    window=224,
    timings=_ZEN2_TIMINGS,
    fp_pipes=2,
    smt=2,
    cores=128,
    memory=MemorySpec(
        levels=(
            CacheLevelSpec("L1", 32 * KIB, 64, 8, latency=4,
                           bw_bytes_per_cycle=64),
            CacheLevelSpec("L2", 512 * KIB, 64, 8, latency=12,
                           bw_bytes_per_cycle=32),
            CacheLevelSpec("L3", 16 * MIB, 64, 16, latency=40,
                           bw_bytes_per_cycle=14, shared_by=4),
        ),
        dram_bw_gbs=150.0,   # 8 x DDR4-3200 per socket, sustained
        dram_latency_ns=100.0,
        cores_per_domain=64,
        domains=2,
        mlp=12,
        stream_bw_core_gbs=14.0,
    ),
    topology=TopologySpec(
        domains=2, cores_per_domain=64,
        local_bw_gbs=140.0, remote_bw_gbs=70.0,
        remote_latency_factor=1.6,
    ),
    interconnect=_HDR_XSEDE,
    system_name="SDSC Expanse (EPYC 7742)",
    simd_label="AVX2",
    table3_base_ghz=2.25,
)

THUNDERX2_SPEC = MachineSpec(
    name="ThunderX2",
    isa="neon",
    vector_bits=128,
    clock_ghz=2.3,
    allcore_clock_ghz=2.3,
    issue_width=4,
    window=128,
    timings=_TX2_TIMINGS,
    fp_pipes=2,
    smt=4,
    # core-only preset: the Ookami login nodes never ran the paper's
    # node-level experiments, so no memory/topology/interconnect
)

RVV_SPEC = MachineSpec(
    name="RVV-HBM",
    isa="rvv",
    vector_bits=512,
    clock_ghz=2.0,
    allcore_clock_ghz=2.0,
    issue_width=4,
    window=128,
    timings=_RVV_TIMINGS,
    fp_pipes=2,
    mem_overlap=False,  # HBM-class part; model it like the A64FX
    cores=32,
    memory=MemorySpec(
        levels=(
            CacheLevelSpec("L1", 32 * KIB, 64, 8, latency=6,
                           bw_bytes_per_cycle=128),
            CacheLevelSpec("L2", 2 * MIB, 64, 16, latency=30,
                           bw_bytes_per_cycle=64, shared_by=8),
        ),
        dram_bw_gbs=400.0,   # HBM2e-class stack per domain
        dram_latency_ns=180.0,
        cores_per_domain=8,
        domains=4,
        mlp=14,
        stream_bw_core_gbs=28.0,
    ),
    topology=TopologySpec(
        domains=4, cores_per_domain=8,
        local_bw_gbs=360.0, remote_bw_gbs=90.0,
        remote_latency_factor=1.5,
    ),
    interconnect=_HDR200,
    system_name="RVV-HBM (hypothetical RISC-V vector node)",
    simd_label="RVV 1.0 (VLA)",
)


#: preset registry: lookup key -> spec (aliases share the spec object)
MACHINE_SPECS: dict[str, MachineSpec] = {
    "a64fx": A64FX_SPEC,
    "ookami": A64FX_SPEC,
    "skylake-6140": SKYLAKE_6140_SPEC,
    "skylake": SKYLAKE_6140_SPEC,
    "skylake-6130": SKYLAKE_6130_SPEC,
    "skylake-8160": SKYLAKE_8160_SPEC,
    "skx": SKYLAKE_8160_SPEC,
    "knl": KNL_7250_SPEC,
    "epyc": EPYC_7742_SPEC,
    "thunderx2": THUNDERX2_SPEC,
    "rvv": RVV_SPEC,
}


def get_machine_spec(key: str) -> MachineSpec:
    """Look up a machine spec by registry key (case-insensitive)."""
    try:
        return MACHINE_SPECS[key.lower()]
    except KeyError:
        raise KeyError(
            f"unknown machine {key!r}; available: {sorted(MACHINE_SPECS)}"
        ) from None


# ---------------------------------------------------------------------------
# Design-space enumeration: hypothetical machines for grid sweeps.
# ---------------------------------------------------------------------------

#: default axes of the machine design space
GRID_VECTOR_BITS = (128, 256, 512, 1024)
GRID_ISSUE_WIDTHS = (2, 4, 6, 8)
GRID_DRAM_BW_GBS = (64.0, 128.0, 256.0, 512.0)
GRID_WINDOWS = (64, 128, 224)
GRID_L2_MIB = (4, 8)

#: preset bases the default grid derives hypothetical machines from
GRID_BASES = (A64FX_SPEC, SKYLAKE_6140_SPEC, RVV_SPEC)


def grid_variants(
    base: MachineSpec,
    *,
    vector_bits: Sequence[int] = GRID_VECTOR_BITS,
    issue_widths: Sequence[int] = GRID_ISSUE_WIDTHS,
    dram_bw_gbs: Sequence[float] = GRID_DRAM_BW_GBS,
    windows: Sequence[int] = GRID_WINDOWS,
    l2_mib: Sequence[int] = GRID_L2_MIB,
) -> list[MachineSpec]:
    """Every axis combination of *base*, uniquely named.

    Each variant keeps the base's ISA, timing table and topology but
    sweeps vector length, issue width, out-of-order window and the
    cache/HBM geometry (per-domain DRAM/HBM bandwidth, last-level cache
    capacity).  Names encode the axes (``A64FX@vl256/iw2/w64/bw128/
    l2-4m``), which keeps every content-addressed fingerprint in the
    engines distinct.
    """
    if base.memory is None:
        raise ValueError(f"{base.name}: grid variants need a memory spec")
    out = []
    for vb in vector_bits:
        for iw in issue_widths:
            for bw in dram_bw_gbs:
                for win in windows:
                    for l2 in l2_mib:
                        out.append(_grid_variant(base, vb, iw, bw, win, l2))
    return out


def _grid_variant(base: MachineSpec, vb: int, iw: int, bw: float,
                  win: int, l2: int) -> MachineSpec:
    assert base.memory is not None
    levels = tuple(
        replace(lvl, capacity=l2 * MIB) if lvl is base.memory.levels[-1]
        else lvl
        for lvl in base.memory.levels
    )
    return replace(
        base,
        name=(f"{base.name}@vl{vb}/iw{iw}/w{win}/bw{int(bw)}/l2-{l2}m"),
        system_name="",
        vector_bits=vb,
        issue_width=iw,
        window=win,
        memory=replace(base.memory, levels=levels, dram_bw_gbs=bw),
    )


def _enumerate_grid(bases: Sequence[MachineSpec]) -> Iterator[MachineSpec]:
    """Deterministic unbounded enumeration of hypothetical machines.

    Round 0 walks the full default axis product for every base; later
    rounds re-walk it with the window shifted (+16 per round) so any
    requested machine count stays reachable with unique names.
    """
    rnd = 0
    while True:
        windows = tuple(w + 16 * rnd for w in GRID_WINDOWS)
        for base in bases:
            for spec in grid_variants(base, windows=windows):
                yield spec
        rnd += 1


def grid_specs(n: int,
               bases: Sequence[MachineSpec] = GRID_BASES,
               ) -> list[MachineSpec]:
    """The first *n* machines of the design-space enumeration.

    Deterministic: the same *n* and *bases* always produce the same
    machines, so sweep results are reproducible and cache-addressable.
    """
    if n < 1:
        raise ValueError(f"need at least one machine, got {n}")
    return list(islice(_enumerate_grid(tuple(bases)), n))
