"""Cache-hierarchy and bandwidth model.

Two complementary tools live here:

* :class:`MemoryHierarchy` — an *analytic* model used by the performance
  engine: given a memory stream's footprint and access pattern it decides
  which level serves the stream and at what effective bandwidth/latency.
  This is what turns "CG has a random 7 GB sparse matrix" into cycles.
* :class:`CacheSim` — a *true* set-associative LRU cache simulator used by
  tests and examples to validate claims the analytic model encodes (for
  example that permuting indices inside 128-byte windows preserves
  locality while a global permutation destroys it).

Mechanisms from the paper encoded here:

* The A64FX cache line is **256 bytes** (Skylake: 64).  A random 8-byte
  access therefore wastes 31/32 of the transferred line on A64FX but only
  7/8 on Skylake — a 4x utilization gap that, combined with the 8x raw
  HBM-vs-DDR bandwidth advantage, reproduces the paper's CG results
  (Skylake wins single-core, A64FX wins full-node).
* The short-scatter test "localizes pairs of 128-byte windows within a
  single 256 byte cache line, whereas the cache line is only 64 bytes on
  Skylake" — the analytic window-pattern rules and the true simulator both
  express this.
* Random access is latency-bound at low concurrency: effective line
  bandwidth is capped by ``mlp * line / latency`` per core.

Both tools are PMU-instrumented: under an active
:class:`repro.perf.counters.ProfileScope`, analytic bandwidth queries
emit ``memory.*`` counters (which level served a stream, line
utilization, prefetch coverage) and :meth:`CacheSim.access_trace` emits
exact ``cachesim.*`` hit/miss/eviction and byte counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro._util import require_in, require_positive
from repro.perf.counters import emit, emit_unique, is_profiling

__all__ = [
    "CacheLevel",
    "MemoryHierarchy",
    "MemoryStream",
    "CacheSim",
    "AccessPattern",
]

AccessPattern = Literal["contig", "stride", "random", "window128"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of on-chip cache.

    ``shared_by`` is the number of cores that share the capacity (12 for
    the A64FX per-CMG L2).  ``bw_bytes_per_cycle`` is per-core sustained
    read bandwidth when hitting in this level.
    """

    name: str
    capacity: int
    line: int
    assoc: int
    latency: float
    bw_bytes_per_cycle: float
    shared_by: int = 1

    def __post_init__(self) -> None:
        require_positive(self.capacity, "capacity")
        require_positive(self.line, "line")
        require_positive(self.assoc, "assoc")
        require_positive(self.latency, "latency")
        require_positive(self.bw_bytes_per_cycle, "bw_bytes_per_cycle")
        if self.capacity % self.line:
            raise ValueError("capacity must be a multiple of the line size")


@dataclass(frozen=True)
class MemoryStream:
    """A named memory access stream of a kernel.

    ``bytes_per_iter`` is the amount of *useful* data the loop touches per
    iteration of the (possibly vectorized) loop; ``footprint`` is the total
    working set the stream cycles through; ``pattern`` classifies spatial
    locality.  ``is_store`` streams cost write-allocate + writeback traffic
    at the DRAM level (modelled as a 2x byte multiplier there).
    """

    name: str
    bytes_per_iter: float
    footprint: float
    pattern: AccessPattern = "contig"
    is_store: bool = False
    elem_size: int = 8

    def __post_init__(self) -> None:
        require_positive(self.bytes_per_iter, "bytes_per_iter")
        require_positive(self.footprint, "footprint")
        require_in(self.pattern, ("contig", "stride", "random", "window128"), "pattern")


@dataclass(frozen=True)
class MemoryHierarchy:
    """Analytic cache + DRAM model for one socket/package.

    Parameters
    ----------
    levels:
        Inner-to-outer cache levels.
    dram_bw_gbs:
        Raw DRAM (or HBM) bandwidth per NUMA domain in GB/s.
    dram_latency_ns:
        Load-to-use DRAM latency.
    cores_per_domain:
        Cores sharing one NUMA domain's bandwidth (12 per A64FX CMG).
    domains:
        NUMA domains per node (4 CMGs on A64FX; sockets on x86).
    mlp:
        Maximum outstanding cache-line fills per core — bounds
        latency-limited random-access bandwidth.
    stream_bw_core_gbs:
        Per-core sustained DRAM bandwidth for *contiguous* streams, where
        hardware prefetchers provide far more memory-level parallelism
        than ``mlp`` demand misses would.
    """

    levels: tuple[CacheLevel, ...]
    dram_bw_gbs: float
    dram_latency_ns: float
    cores_per_domain: int
    domains: int
    mlp: int
    stream_bw_core_gbs: float = 12.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("need at least one cache level")
        require_positive(self.dram_bw_gbs, "dram_bw_gbs")
        require_positive(self.dram_latency_ns, "dram_latency_ns")
        require_positive(self.cores_per_domain, "cores_per_domain")
        require_positive(self.domains, "domains")
        require_positive(self.mlp, "mlp")

    # ------------------------------------------------------------------
    @property
    def line(self) -> int:
        """DRAM-facing transfer granule = outermost cache line size."""
        return self.levels[-1].line

    @property
    def node_dram_bw_gbs(self) -> float:
        """Aggregate DRAM bandwidth of the full node."""
        return self.dram_bw_gbs * self.domains

    def serving_level(self, footprint: float, cores_sharing: int = 1) -> int:
        """Index of the innermost level whose (share of) capacity holds
        *footprint* bytes; ``len(levels)`` means DRAM."""
        for i, lvl in enumerate(self.levels):
            share = lvl.capacity / max(1, cores_sharing // lvl.shared_by, 1)
            if lvl.shared_by > 1:
                # a shared level is divided among the cores actually using it
                share = lvl.capacity / max(1, min(cores_sharing, lvl.shared_by))
            if footprint <= share:
                return i
        return len(self.levels)

    def dram_line_bw_per_core_gbs(self, clock_ghz: float) -> float:
        """Latency-limited raw line bandwidth for one core doing dependent
        random accesses: ``mlp`` lines in flight, each taking
        ``dram_latency_ns``."""
        del clock_ghz  # latency is specified in ns; clock not needed
        return self.mlp * self.line / self.dram_latency_ns  # bytes/ns == GB/s

    def effective_bw_gbs(
        self,
        stream: MemoryStream,
        clock_ghz: float,
        active_cores_per_domain: int = 1,
        placement_domains: int | None = None,
    ) -> float:
        """Effective *useful* bandwidth one core sees for *stream*, GB/s.

        The result accounts for: which level serves the footprint, cache
        bandwidth for resident streams, DRAM bandwidth sharing among active
        cores, line-utilization waste for random patterns, the 128-byte
        window pattern's improved utilization, latency limits on random
        access, and write-allocate doubling for stores that miss.

        ``placement_domains`` restricts DRAM pages to that many NUMA
        domains (1 models the Fujitsu "everything on CMG 0" default); all
        active cores then share only those domains' bandwidth.
        """
        require_positive(clock_ghz, "clock_ghz")
        lvl_idx = self.serving_level(stream.footprint, active_cores_per_domain)
        if is_profiling():
            self._emit_stream_counters(stream, lvl_idx)
        if lvl_idx < len(self.levels):
            lvl = self.levels[lvl_idx]
            bw = lvl.bw_bytes_per_cycle * clock_ghz  # bytes/cycle * Gcycle/s = GB/s
            if lvl.shared_by > 1:
                sharers = min(active_cores_per_domain, lvl.shared_by)
                # shared-cache bandwidth saturates ~ linearly up to 4 sharers
                bw = bw * min(sharers, 4) / sharers
            util = self._line_utilization(stream, lvl.line)
            return bw * util

        # --- DRAM-resident stream ---------------------------------------
        domains = self.domains if placement_domains is None else placement_domains
        require_positive(domains, "placement_domains")
        total_active = active_cores_per_domain * self.domains
        raw_total = self.dram_bw_gbs * min(domains, self.domains)
        # active cores contend for the domains that actually hold pages
        raw_share = raw_total / max(1, total_active)
        # a single core cannot draw the whole domain's bandwidth
        raw_share = min(raw_share, self._single_core_dram_cap(stream.pattern))
        util = self._line_utilization(stream, self.line)
        eff = raw_share * util
        if stream.is_store:
            eff /= 2.0  # write-allocate: each stored line is also read
        return eff

    def _emit_stream_counters(self, stream: MemoryStream, lvl_idx: int) -> None:
        """Analytic ``memory.*`` PMU counters for one bandwidth query.

        In the analytic model a stream "hits" in the level that serves
        its footprint and "misses" in every level inside it (their
        capacity share could not hold the working set); the serving
        level's line size prices utilization.  Prefetch coverage is the
        modelled fraction of line fills issued by the hardware
        prefetchers rather than demand misses — 1.0 for the stream
        patterns they track, 0.0 for the patterns they cannot.
        """
        for i, lvl in enumerate(self.levels):
            if i < lvl_idx:
                emit(f"memory.levels.{lvl.name}.misses")
            elif i == lvl_idx:
                emit(f"memory.levels.{lvl.name}.hits")
        if lvl_idx == len(self.levels):
            emit("memory.levels.dram.hits")
        line = self.line if lvl_idx == len(self.levels) else self.levels[lvl_idx].line
        emit_unique(f"memory.line_util.{stream.name}",
                    self._line_utilization(stream, line))
        emit_unique(f"memory.prefetch_coverage.{stream.name}",
                    self.prefetch_coverage(stream.pattern))

    @staticmethod
    def prefetch_coverage(pattern: AccessPattern) -> float:
        """Modelled hardware-prefetch coverage of line fills, in [0, 1].

        Contiguous and constant-stride streams are fully tracked by the
        stream prefetchers; index-driven (random/windowed) accesses are
        pure demand misses.
        """
        return 1.0 if pattern in ("contig", "stride") else 0.0

    def line_utilization(self, stream: MemoryStream, line: int) -> float:
        """Public form of the per-line payload-utilization rule.

        Exposed so analytic consumers (the ECM tier in
        :mod:`repro.ecm`) price cacheline traffic with exactly the same
        spatial-locality rules the bandwidth model applies — contiguous
        streams use whole lines, random accesses waste ``line -
        elem_size`` bytes per transfer, 128-byte-window patterns keep
        utilization near 1 on 256-byte lines.
        """
        return self._line_utilization(stream, line)

    def single_core_dram_cap_gbs(self, pattern: AccessPattern) -> float:
        """Public form of the per-core DRAM bandwidth cap, in GB/s.

        Contiguous/strided streams ride the hardware prefetchers
        (``stream_bw_core_gbs``); random and windowed patterns are
        limited to ``mlp`` demand-miss line fills in flight against DRAM
        latency.  Used by the ECM tier's ``T_data`` accounting.
        """
        return self._single_core_dram_cap(pattern)

    def _single_core_dram_cap(self, pattern: AccessPattern) -> float:
        """Per-core DRAM bandwidth cap, never the whole domain bandwidth.

        Contiguous/strided streams ride the hardware prefetchers
        (``stream_bw_core_gbs``); random and windowed patterns are limited
        to ``mlp`` demand-miss line fills in flight against DRAM latency.
        """
        if pattern in ("contig", "stride"):
            cap = self.stream_bw_core_gbs
        else:
            cap = self.mlp * self.line / self.dram_latency_ns
        return min(cap, self.dram_bw_gbs)

    def _line_utilization(self, stream: MemoryStream, line: int) -> float:
        """Fraction of each transferred line that is useful payload."""
        if stream.pattern == "contig":
            return 1.0
        if stream.pattern == "stride":
            return min(1.0, 2.0 * stream.elem_size / line)
        if stream.pattern == "window128":
            # all of a 128-byte window is eventually consumed; lines of 256
            # bytes hold two windows that the short-gather/scatter tests
            # both touch, so utilization stays near 1 for line <= 256.
            return min(1.0, 256.0 / max(line, 128))
        # random: one element per line transfer
        return stream.elem_size / line


# ---------------------------------------------------------------------------
# True cache simulator
# ---------------------------------------------------------------------------


class CacheSim:
    """Set-associative LRU cache simulator over an address trace.

    Used to *validate* the analytic rules above rather than to drive the
    performance model (simulating class-C NPB traces address-by-address
    would be prohibitively slow in Python).  The implementation keeps a
    per-set LRU timestamp array and processes addresses in numpy batches
    where possible, falling back to an exact per-access loop.
    """

    def __init__(self, capacity: int, line: int, assoc: int) -> None:
        require_positive(capacity, "capacity")
        require_positive(line, "line")
        require_positive(assoc, "assoc")
        if capacity % (line * assoc):
            raise ValueError("capacity must be divisible by line*assoc")
        self.capacity = capacity
        self.line = line
        self.assoc = assoc
        self.n_sets = capacity // (line * assoc)
        # tags[set, way] = line tag (-1 empty); stamps[set, way] = LRU time
        self._tags = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self._stamps = np.zeros((self.n_sets, assoc), dtype=np.int64)
        self._time = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (contents kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit."""
        lineno = addr // self.line
        s = lineno % self.n_sets
        tag = lineno // self.n_sets
        self._time += 1
        ways = self._tags[s]
        hit_idx = np.nonzero(ways == tag)[0]
        if hit_idx.size:
            self._stamps[s, hit_idx[0]] = self._time
            self.hits += 1
            return True
        self.misses += 1
        victim = int(np.argmin(self._stamps[s]))
        if self._tags[s, victim] != -1:
            self.evictions += 1
        self._tags[s, victim] = tag
        self._stamps[s, victim] = self._time
        return False

    def access_trace(self, addrs: Sequence[int] | np.ndarray) -> float:
        """Access every address in order; return the hit rate.

        Under an active profile scope, the replay's exact deltas are
        emitted as ``cachesim.*`` counters (``bytes_in`` = filled lines,
        ``bytes_out`` = evicted lines, both at line granularity).
        """
        arr = np.asarray(addrs, dtype=np.int64)
        if arr.size == 0:
            raise ValueError("empty trace")
        before_h, before_m, before_e = self.hits, self.misses, self.evictions
        for a in arr:
            self.access(int(a))
        d_hits = self.hits - before_h
        d_misses = self.misses - before_m
        if is_profiling():
            d_evictions = self.evictions - before_e
            emit("cachesim.accesses", float(arr.size))
            emit("cachesim.hits", float(d_hits))
            emit("cachesim.misses", float(d_misses))
            emit("cachesim.evictions", float(d_evictions))
            emit("cachesim.bytes_in", float(d_misses * self.line))
            emit("cachesim.bytes_out", float(d_evictions * self.line))
        return d_hits / (d_hits + d_misses)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
