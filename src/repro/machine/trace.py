"""Address-trace generation and trace-driven cache validation.

The analytic memory model (:mod:`repro.machine.memory`) prices streams by
pattern classification; this module generates the *actual* byte-address
traces of the suite's kernels and replays them through the exact
set-associative simulator, so tests can confirm the analytic rules
(footprint residency, line utilization, the 128-byte-window locality)
against ground truth rather than against themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require_in, require_positive
from repro.machine.memory import CacheSim

__all__ = [
    "TraceStats",
    "contiguous_trace",
    "strided_trace",
    "gather_trace",
    "measure_trace",
    "line_utilization_measured",
]


def contiguous_trace(n: int, elem_size: int = 8, base: int = 0) -> np.ndarray:
    """Byte addresses of a sequential sweep over *n* elements."""
    require_positive(n, "n")
    return base + elem_size * np.arange(n, dtype=np.int64)


def strided_trace(n: int, stride_elems: int, elem_size: int = 8,
                  base: int = 0) -> np.ndarray:
    """Byte addresses of a strided sweep (``x[0], x[s], x[2s], ...``)."""
    require_positive(n, "n")
    require_positive(stride_elems, "stride_elems")
    return base + elem_size * stride_elems * np.arange(n, dtype=np.int64)


def gather_trace(n: int, *, short: bool = False, elem_size: int = 8,
                 base: int = 0, seed: int = 2021) -> np.ndarray:
    """Byte addresses of the paper's gather tests: a full random
    permutation, or one confined to 128-byte windows (``short=True``)."""
    from repro.kernels.loops import make_permutation

    idx = make_permutation(n, short=short, seed=seed)
    return base + elem_size * idx


@dataclass(frozen=True)
class TraceStats:
    """Cache behaviour of one trace replay."""

    accesses: int
    hit_rate: float
    lines_touched: int
    bytes_transferred: float  # misses x line size
    useful_bytes: float       # accesses x elem size

    @property
    def line_utilization(self) -> float:
        """Useful fraction of the transferred lines — the quantity the
        analytic ``_line_utilization`` rule approximates."""
        if self.bytes_transferred == 0:
            return 1.0
        return min(1.0, self.useful_bytes / self.bytes_transferred)


def measure_trace(
    addrs: np.ndarray,
    *,
    capacity: int,
    line: int,
    assoc: int = 4,
    elem_size: int = 8,
) -> TraceStats:
    """Replay *addrs* through an exact cache and collect the statistics."""
    sim = CacheSim(capacity, line, assoc)
    hit_rate = sim.access_trace(addrs)
    lines = len(np.unique(np.asarray(addrs, dtype=np.int64) // line))
    return TraceStats(
        accesses=len(addrs),
        hit_rate=hit_rate,
        lines_touched=lines,
        bytes_transferred=float(sim.misses * line),
        useful_bytes=float(len(addrs) * elem_size),
    )


def line_utilization_measured(
    pattern: str, n: int = 4096, line: int = 256, elem_size: int = 8
) -> float:
    """Ground-truth line utilization of one pass over *n* elements with a
    cold cache far smaller than the footprint (so every line misses once
    per visit) — directly comparable to the analytic model's rule."""
    require_in(pattern, ("contig", "random", "window128"), "pattern")
    if pattern == "contig":
        addrs = contiguous_trace(n, elem_size)
    elif pattern == "random":
        addrs = gather_trace(n, short=False, elem_size=elem_size)
    else:
        addrs = gather_trace(n, short=True, elem_size=elem_size)
    # tiny cache: no reuse survives between visits of far-apart lines
    stats = measure_trace(addrs, capacity=16 * line, line=line,
                          elem_size=elem_size)
    return stats.line_utilization
