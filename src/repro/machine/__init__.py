"""Hardware models: ISA, microarchitecture, memory hierarchy, NUMA, systems.

The :mod:`repro.machine` package is the substrate every experiment runs on.
It replaces the physical A64FX / Skylake / KNL / EPYC machines of the paper
with mechanistic models:

* :mod:`repro.machine.isa` — the abstract operation vocabulary shared by
  the code generator and the pipeline scheduler.
* :mod:`repro.machine.microarch` — per-core timing models (pipes, latency
  and throughput tables, out-of-order window) for each CPU studied.
* :mod:`repro.machine.memory` — cache hierarchy and bandwidth model,
  including the A64FX 128-byte gather-coalescing window.
* :mod:`repro.machine.numa` — CMG topology and page-placement policies.
* :mod:`repro.machine.systems` — the catalog of full systems from
  Table III of the paper.
"""

from repro.machine.isa import Instruction, InstructionStream, Op, Pipe
from repro.machine.microarch import (
    A64FX,
    EPYC_7742,
    KNL_7250,
    Microarch,
    OpTiming,
    SKYLAKE_6130,
    SKYLAKE_6140,
    SKYLAKE_8160,
)
from repro.machine.memory import CacheLevel, CacheSim, MemoryHierarchy, MemoryStream
from repro.machine.numa import CMGTopology, PagePlacement
from repro.machine.systems import SYSTEMS, System, get_system

__all__ = [
    "Instruction",
    "InstructionStream",
    "Op",
    "Pipe",
    "Microarch",
    "OpTiming",
    "A64FX",
    "SKYLAKE_6140",
    "SKYLAKE_6130",
    "SKYLAKE_8160",
    "KNL_7250",
    "EPYC_7742",
    "CacheLevel",
    "CacheSim",
    "MemoryHierarchy",
    "MemoryStream",
    "CMGTopology",
    "PagePlacement",
    "System",
    "SYSTEMS",
    "get_system",
]
