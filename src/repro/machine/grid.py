"""Cross-machine design-space sweeps over hypothetical machine grids.

This is the machine axis of ``repro sweep --grid``: take the first *N*
machines of the deterministic design-space enumeration
(:func:`repro.machine.spec.grid_specs` — vector length x issue width x
out-of-order window x cache/HBM geometry around the A64FX, Skylake and
RVV presets), run every (machine, kernel) point through the fast tiers,
and report which machine wins each kernel.

Two scale tricks keep thousands of machines cheap:

* **Compile sharing.**  The lowered instruction stream depends on the
  machine only through its codegen signature — float64 lanes plus the
  :class:`~repro.machine.isa.VectorISA` lowering traits — so each
  (kernel, toolchain, signature) combination is compiled once and
  *retargeted* to every machine sharing it
  (``dataclasses.replace(compiled, march=...)``), instead of compiled
  per machine.  ``tests/machine/test_machine_grid.py`` pins
  retarget == direct-compile bit-exactness.
* **Batched tiers.**  All ECM points go through one
  :func:`repro.ecm.batch.predict_batch` array program and all engine
  points through one :func:`repro.engine.shard.schedule_batch_sharded`
  call, so the existing vectorized/sharded fast paths — not a Python
  loop — do the heavy lifting.

Toolchains are chosen per machine from the ISA's target list (best
SIMD code generator first); kernels whose recipe needs a missing ISA
feature (the FEXPA exponential on RVV) fall back to the next toolchain
and are skipped — and counted — only when no toolchain compiles.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Mapping, Sequence

from repro.compilers.cache import cached_compile
from repro.compilers.codegen import CompiledLoop
from repro.compilers.toolchains import TOOLCHAINS, Toolchain
from repro.ecm.batch import predict_batch
from repro.engine.shard import last_shard_plan, schedule_batch_sharded
from repro.kernels.catalog import build_kernel
from repro.machine.microarch import Microarch
from repro.machine.spec import GRID_BASES, MachineSpec, grid_specs

__all__ = [
    "GRID_FORMAT",
    "DEFAULT_KERNELS",
    "DEFAULT_ENGINE_KERNELS",
    "codegen_signature",
    "compile_for_machines",
    "machine_grid_predictions",
    "run_machine_grid",
]

#: version tag of the grid-sweep result document
GRID_FORMAT = "repro.sweep-grid/1"

#: kernels every machine is scored on by default (ECM tier)
DEFAULT_KERNELS = ("simple", "gather", "sqrt", "exp", "spmv_crs",
                   "stencil2d")

#: kernels additionally driven through the cycle-accurate engine tier
DEFAULT_ENGINE_KERNELS = ("simple", "sqrt")

#: per-target toolchain preference: best SIMD code generator first,
#: with non-FEXPA fallbacks behind it
_TC_PREFERENCE: Mapping[str, tuple[str, ...]] = {
    "sve": ("fujitsu", "arm", "gnu"),
    "x86": ("intel",),
}


def codegen_signature(march: Microarch) -> tuple:
    """Everything the code generator reads from a machine.

    Two machines with equal signatures get bit-identical lowered
    streams for every (kernel, toolchain), which is what makes compile
    sharing across a machine grid sound.
    """
    isa = march.vector_isa
    return (
        march.lanes_f64,
        isa.predicated_tail,
        isa.predicated_store_crack,
        isa.gather_pair_coalescing,
        march.has_fexpa,
    )


def _toolchains_for(march: Microarch) -> tuple[Toolchain, ...]:
    """Candidate toolchains for *march*, best first."""
    names: list[str] = []
    for target in march.vector_isa.toolchain_targets:
        names.extend(_TC_PREFERENCE.get(target, ()))
    return tuple(TOOLCHAINS[n] for n in names)


def compile_for_machines(
    kernel: str,
    marches: Sequence[Microarch],
) -> tuple[list[CompiledLoop | None], list[str]]:
    """Compile *kernel* once per codegen signature, retargeted per machine.

    Returns one :class:`CompiledLoop` per march (``None`` when no
    candidate toolchain compiles the kernel for that machine — e.g. a
    FEXPA recipe on an ISA without the accelerator) plus the names of
    machines that were skipped.
    """
    loop = build_kernel(kernel)
    by_sig: dict[tuple, CompiledLoop | None] = {}
    out: list[CompiledLoop | None] = []
    skipped: list[str] = []
    for march in marches:
        for tc in _toolchains_for(march):
            sig = (tc.name,) + codegen_signature(march)
            if sig not in by_sig:
                try:
                    by_sig[sig] = cached_compile(loop, tc, march)
                except ValueError:
                    by_sig[sig] = None
            base = by_sig[sig]
            if base is not None:
                out.append(base if base.march is march
                           else replace(base, march=march))
                break
        else:
            out.append(None)
            skipped.append(march.name)
    return out, skipped


def machine_grid_predictions(
    specs: Sequence[MachineSpec],
    kernels: Sequence[str] = DEFAULT_KERNELS,
):
    """The ECM item list for a machine grid, plus its predictions.

    Returns ``(items, predictions, skipped)`` where ``items`` is the
    ``(compiled, system, window)`` list fed to
    :func:`repro.ecm.batch.predict_batch` (usable as-is for a
    scalar-vs-batched equivalence check), ``predictions`` aligns with
    it, and ``skipped`` counts (machine, kernel) points no toolchain
    could compile.
    """
    marches = [spec.build_core() for spec in specs]
    systems = [spec.build_system() for spec in specs]
    items = []
    skipped = 0
    for kernel in kernels:
        compiled, skips = compile_for_machines(kernel, marches)
        skipped += len(skips)
        for c, system in zip(compiled, systems):
            if c is not None:
                items.append((c, system, None))
    return items, predict_batch(items), skipped


def run_machine_grid(
    specs: Sequence[MachineSpec] | None = None,
    *,
    machines: int = 1000,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    engine_kernels: Sequence[str] = DEFAULT_ENGINE_KERNELS,
    max_workers: int | None = None,
    include_rows: bool = False,
) -> dict:
    """Sweep a machine grid and report per-kernel winners.

    With ``specs=None`` the grid is the first *machines* entries of the
    default design-space enumeration (:data:`~repro.machine.spec.
    GRID_BASES` presets x the default axes).  Every machine is scored
    on *kernels* through the vectorized ECM tier; *engine_kernels* are
    additionally driven through the sharded batch scheduler to keep the
    cycle-accurate tier honest on the same grid.  Returns a versioned
    :data:`GRID_FORMAT` document.
    """
    if specs is None:
        specs = grid_specs(machines, GRID_BASES)
    specs = list(specs)
    t0 = time.perf_counter()
    items, preds, skipped = machine_grid_predictions(specs, kernels)
    ecm_seconds = time.perf_counter() - t0

    # per-kernel crossover: which machine (with which toolchain) wins
    winners: dict[str, dict] = {}
    rows = []
    for (compiled, system, _win), pred in zip(items, preds):
        kernel = compiled.loop.name
        row = {
            "kernel": kernel,
            "machine": compiled.march.name,
            "toolchain": compiled.toolchain.name,
            "seconds": pred.seconds,
            "cycles_per_element": pred.cycles_per_element,
            "bound": pred.bound,
        }
        if include_rows:
            rows.append(row)
        best = winners.get(kernel)
        if best is None or row["seconds"] < best["seconds"]:
            winners[kernel] = row

    # engine tier: one sharded batch over machines x engine_kernels
    t0 = time.perf_counter()
    engine_points = 0
    marches = [spec.build_core() for spec in specs]
    requests = []
    for kernel in engine_kernels:
        compiled, _skips = compile_for_machines(kernel, marches)
        requests.extend((c.march, c.stream) for c in compiled
                        if c is not None)
    if requests:
        schedule_batch_sharded(requests, max_workers=max_workers)
        engine_points = len(requests)
    engine_seconds = time.perf_counter() - t0

    total = len(items) + engine_points
    wall = ecm_seconds + engine_seconds
    return {
        "format": GRID_FORMAT,
        "machines": len(specs),
        "kernels": list(kernels),
        "engine_kernels": list(engine_kernels),
        "points": total,
        "ecm_points": len(items),
        "engine_points": engine_points,
        "skipped": skipped,
        "seconds": wall,
        "points_per_sec": (total / wall) if wall > 0 else 0.0,
        "shard": last_shard_plan(),
        "winners": winners,
        **({"rows": rows} if include_rows else {}),
    }
