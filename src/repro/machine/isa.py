"""Abstract instruction-set vocabulary for the machine model.

The performance engine does not interpret real machine code.  Instead the
code generator (:mod:`repro.compilers.codegen`) lowers loop kernels to a
stream of :class:`Instruction` records drawn from the operation vocabulary
:class:`Op`.  Each microarchitecture (:mod:`repro.machine.microarch`) maps
every :class:`Op` to a latency / throughput / pipe-set record, and the
pipeline scheduler (:mod:`repro.engine.scheduler`) replays the stream
against that timing model.

The vocabulary is deliberately small — it covers exactly the operations
that appear in the kernels of the paper: fused multiply-add arithmetic,
divide/sqrt (both the blocking hardware instructions and the
estimate+Newton sequences), the SVE ``FEXPA`` exponential accelerator,
predicated selects, contiguous and indexed (gather/scatter) memory
accesses, permutes for table lookups, and the scalar loop-control tail.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Op",
    "Pipe",
    "VectorISA",
    "VECTOR_ISAS",
    "get_isa",
    "Instruction",
    "InstructionStream",
]


class Op(enum.Enum):
    """Operation kinds understood by every microarchitecture model.

    Vector ops operate on one full hardware vector (e.g. 8 float64 lanes
    for 512-bit SIMD); scalar ops operate on one element.  The scheduler
    never needs the element width — the code generator already decided how
    many instructions a loop iteration needs.
    """

    # --- vector floating point -------------------------------------------------
    FADD = "fadd"          #: vector FP add/sub
    FMUL = "fmul"          #: vector FP multiply
    FMA = "fma"            #: vector fused multiply-add
    FMOV = "fmov"          #: vector register move / abs / neg
    FCMP = "fcmp"          #: vector FP compare producing a predicate/mask
    FSEL = "fsel"          #: predicated select / blend
    FMINMAX = "fminmax"    #: vector min/max
    FCVT = "fcvt"          #: float<->int convert, round-to-int
    FDIV = "fdiv"          #: vector FP divide (hardware instruction)
    FSQRT = "fsqrt"        #: vector FP square root (hardware instruction)
    FRECPE = "frecpe"      #: reciprocal estimate (8-bit seed)
    FRSQRTE = "frsqrte"    #: reciprocal sqrt estimate (8-bit seed)
    FEXPA = "fexpa"        #: SVE exponential accelerator (2^(m + i/64) table)
    FSCALE = "fscale"      #: multiply by 2^n via exponent-field add

    # --- vector integer / logical ----------------------------------------------
    IADD = "iadd"          #: vector integer add/sub/compare
    IMUL = "imul"          #: vector integer multiply
    ILOGIC = "ilogic"      #: vector and/or/xor/shift
    PERM = "perm"          #: permute / table lookup (TBL) / broadcast

    # --- predicate ---------------------------------------------------------------
    PLOGIC = "plogic"      #: predicate and/or/not
    PWHILE = "pwhile"      #: WHILELT-style loop predicate generation
    PTEST = "ptest"        #: predicate test feeding a branch

    # --- memory ------------------------------------------------------------------
    VLOAD = "vload"        #: contiguous vector load
    VSTORE = "vstore"      #: contiguous vector store
    GATHER_UOP = "gather_uop"    #: one split transaction of a gather load
    SCATTER_UOP = "scatter_uop"  #: one split transaction of a scatter store
    SLOAD = "sload"        #: scalar load
    SSTORE = "sstore"      #: scalar store

    # --- scalar / control ----------------------------------------------------------
    SALU = "salu"          #: scalar integer ALU op (pointer/counter updates)
    SFP = "sfp"            #: scalar FP op
    SFDIV = "sfdiv"        #: scalar FP divide
    SFSQRT = "sfsqrt"      #: scalar FP square root
    BRANCH = "branch"      #: conditional branch closing the loop
    CALL = "call"          #: opaque call (scalar libm); timing supplied per-op


class Pipe(enum.Enum):
    """Execution resources.  A64FX names are used; x86 ports are mapped onto
    the same six-way split (two FP/SIMD pipes, two load/store pipes, two
    scalar/integer pipes, plus predicate and branch resources)."""

    FLA = "fla"    #: FP/SIMD pipe A (also the only divide/sqrt pipe)
    FLB = "flb"    #: FP/SIMD pipe B (also the permute pipe on A64FX)
    LS1 = "ls1"    #: load/store pipe 1
    LS2 = "ls2"    #: load/store pipe 2 (loads only on A64FX)
    EXA = "exa"    #: scalar integer pipe A
    EXB = "exb"    #: scalar integer pipe B
    PR = "pr"      #: predicate pipe
    BR = "br"      #: branch pipe


@dataclass(frozen=True)
class VectorISA:
    """One vector instruction set, described as data.

    The code generator used to key its ISA-specific lowering decisions
    on ``march.has_fexpa`` — a proxy that happened to separate SVE from
    AVX-512 but could not express a third ISA.  A :class:`VectorISA`
    names each lowering-relevant trait explicitly, so adding an ISA
    (RVV here; others later) is a registry entry, not a compiler patch.

    Parameters
    ----------
    name:
        Registry key (``"sve"``, ``"avx512"``, ``"avx2"``, ``"neon"``,
        ``"rvv"``).
    predicated_tail:
        Vector-length-agnostic loop control: the lowered tail is a
        ``WHILELT``-style predicate generation plus a branch on it (SVE
        ``whilelt``/``b.first``; RVV ``vsetvli`` strip-mining behaves
        identically at this abstraction).  Fixed-width ISAs instead
        compare the scalar counter and branch.
    has_fexpa:
        The ``FEXPA`` exponential accelerator exists (SVE only); gates
        the Fujitsu 5-term exp recipe
        (:mod:`repro.mathlib.vectormath`).
    predicated_store_crack:
        Masked vector stores crack into slower store flows
        (``rtput`` 1.2 instead of 1.0) — the A64FX mechanism behind the
        paper's predicate-loop result (Fig. 1).
    gather_pair_coalescing:
        The ISA's gather form *can* merge element pairs inside an
        aligned 128-byte window (whether a concrete core does is the
        :class:`~repro.machine.microarch.Microarch` flag; an ISA with
        ``False`` here never coalesces).
    toolchain_targets:
        Which :attr:`repro.compilers.toolchains.Toolchain.target`
        values can generate code for this ISA (``"sve"`` toolchains
        also cover the other predicated ARM/RISC-V-style ISAs).
    """

    name: str
    predicated_tail: bool
    has_fexpa: bool
    predicated_store_crack: bool
    gather_pair_coalescing: bool
    toolchain_targets: tuple[str, ...]


#: the vector ISA registry — machine specs reference these by name
VECTOR_ISAS: dict[str, VectorISA] = {
    isa.name: isa
    for isa in (
        VectorISA(
            name="sve",
            predicated_tail=True,
            has_fexpa=True,
            predicated_store_crack=True,
            gather_pair_coalescing=True,
            toolchain_targets=("sve",),
        ),
        VectorISA(
            name="avx512",
            predicated_tail=False,
            has_fexpa=False,
            predicated_store_crack=False,
            gather_pair_coalescing=False,
            toolchain_targets=("x86",),
        ),
        VectorISA(
            name="avx2",
            predicated_tail=False,
            has_fexpa=False,
            predicated_store_crack=False,
            gather_pair_coalescing=False,
            toolchain_targets=("x86",),
        ),
        VectorISA(
            name="neon",
            predicated_tail=False,
            has_fexpa=False,
            predicated_store_crack=False,
            gather_pair_coalescing=False,
            toolchain_targets=("sve",),
        ),
        VectorISA(
            name="rvv",
            predicated_tail=True,
            has_fexpa=False,
            predicated_store_crack=False,
            gather_pair_coalescing=False,
            toolchain_targets=("sve",),
        ),
    )
}


def get_isa(name: str) -> VectorISA:
    """Look up a vector ISA by registry name (case-insensitive)."""
    try:
        return VECTOR_ISAS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown vector ISA {name!r}; available: {sorted(VECTOR_ISAS)}"
        ) from None


@dataclass(frozen=True)
class Instruction:
    """One abstract instruction in a kernel body.

    Parameters
    ----------
    op:
        Operation kind; indexes the microarchitecture timing table.
    dest:
        Name of the value this instruction produces (``""`` for stores and
        branches that produce nothing consumed by the dataflow model).
    srcs:
        Names of the values consumed.  Dependencies are tracked purely by
        these names within one loop iteration; cross-iteration dependencies
        are expressed with the ``carried`` flag.
    carried:
        True when the instruction consumes the value its own ``dest``
        produced in the *previous* iteration (loop-carried dependence, e.g.
        a running sum).  The scheduler serializes such chains.
    tag:
        Free-form label used in traces and tests.
    latency_override / rtput_override:
        Optional per-instruction timing overrides; used for :attr:`Op.CALL`
        (opaque scalar libm calls) whose cost depends on the library, not
        the microarchitecture table.
    """

    op: Op
    dest: str = ""
    srcs: tuple[str, ...] = ()
    carried: bool = False
    tag: str = ""
    latency_override: float | None = None
    rtput_override: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.op, Op):
            raise TypeError(f"op must be an Op, got {type(self.op).__name__}")
        if self.carried and not self.dest:
            raise ValueError("a loop-carried instruction must name its dest")


@dataclass
class InstructionStream:
    """An ordered loop body plus bookkeeping about the loop it came from.

    ``body`` is the per-iteration instruction sequence.  ``elements_per_iter``
    records how many *result elements* one iteration produces (the vector
    length for a vectorized loop, 1 for scalar code) so that schedulers can
    report cycles *per element*, the unit used throughout the paper.
    """

    body: list[Instruction] = field(default_factory=list)
    elements_per_iter: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.elements_per_iter < 1:
            raise ValueError("elements_per_iter must be >= 1")

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.body)

    def __len__(self) -> int:
        return len(self.body)

    def append(self, instr: Instruction) -> None:
        """Append one instruction to the loop body."""
        self.body.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        """Append a sequence of instructions to the loop body."""
        self.body.extend(instrs)

    def counts(self) -> dict[Op, int]:
        """Histogram of operation kinds in the body (used by tests)."""
        out: dict[Op, int] = {}
        for ins in self.body:
            out[ins.op] = out.get(ins.op, 0) + 1
        return out

    def fp_ops(self) -> int:
        """Number of vector FP arithmetic instructions in the body."""
        fp = {Op.FADD, Op.FMUL, Op.FMA, Op.FDIV, Op.FSQRT, Op.FRECPE,
              Op.FRSQRTE, Op.FEXPA, Op.FSCALE, Op.FCMP, Op.FSEL,
              Op.FMINMAX, Op.FCVT, Op.FMOV}
        return sum(1 for ins in self.body if ins.op in fp)

    def validate(self) -> None:
        """Check dataflow consistency.

        Three source classes are legal: names produced earlier in the
        body (same-iteration dataflow), names never produced (loop
        inputs, ready at cycle 0), and names produced *later* in the
        body (implicit references to the previous iteration's value —
        how software-pipelined chains such as the Monte Carlo kernel are
        expressed; the scheduler resolves them with an iteration delta
        of one).  The check rejects only instructions that consume their
        own not-yet-produced dest without being marked ``carried`` —
        the one case that is always a builder mistake.
        """
        for idx, ins in enumerate(self.body):
            for src in ins.srcs:
                if src == ins.dest and src and not ins.carried:
                    raise ValueError(
                        f"instruction {idx} ({ins.tag or ins.op.value}) "
                        f"consumes its own dest {src!r} without being "
                        "marked loop-carried"
                    )


def concat_streams(streams: Sequence[InstructionStream], label: str = "") -> InstructionStream:
    """Concatenate loop bodies that execute back-to-back in one iteration."""
    if not streams:
        raise ValueError("need at least one stream")
    epi = streams[0].elements_per_iter
    for s in streams:
        if s.elements_per_iter != epi:
            raise ValueError("streams disagree on elements_per_iter")
    out = InstructionStream(elements_per_iter=epi, label=label)
    for s in streams:
        out.extend(s.body)
    return out
