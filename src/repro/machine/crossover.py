"""Per-kernel machine crossover report (the paper's Figs. 1–2, generalized).

The source paper's central analysis is a crossover: on which kernels
does the A64FX's SVE + HBM2 beat a Skylake server part, and where does
it lose?  :func:`crossover_report` generalizes that two-machine
comparison to the whole preset catalog (A64FX, the Skylake SKUs, KNL,
EPYC, and the hypothetical RVV node): every kernel of the Fig. 1/2 +
SpMV/stencil suite is compiled with every toolchain the machine's ISA
admits, scored through the vectorized ECM tier, and reduced to the
winning (machine, toolchain) per kernel plus the headline
A64FX-over-Skylake ratio.

``repro machines report`` emits this as a versioned
:data:`REPORT_FORMAT` JSON document; :func:`render` prints the
text table.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.compilers.cache import cached_compile
from repro.compilers.toolchains import TOOLCHAINS
from repro.ecm.batch import predict_batch
from repro.kernels.catalog import ALL_KERNEL_NAMES, build_kernel
from repro.machine.spec import MACHINE_SPECS, MachineSpec

__all__ = [
    "REPORT_FORMAT",
    "DEFAULT_MACHINES",
    "crossover_report",
    "render",
]

#: version tag of the crossover report document
REPORT_FORMAT = "repro.machines/1"

#: preset machines compared by default (every catalog entry that
#: describes a full node, one key per distinct machine)
DEFAULT_MACHINES = ("a64fx", "skylake-6140", "skx", "knl", "epyc", "rvv")


def _toolchains_for(spec: MachineSpec):
    targets = spec.vector_isa.toolchain_targets
    return [tc for tc in TOOLCHAINS.values() if tc.target in targets]


def crossover_report(
    machines: Sequence[str] = DEFAULT_MACHINES,
    kernels: Sequence[str] = ALL_KERNEL_NAMES,
) -> dict:
    """Score *kernels* on *machines* (preset keys) and pick winners.

    For each kernel every machine is scored at its best compiling
    toolchain; kernels a machine cannot compile at all (a FEXPA-only
    recipe on an ISA without the accelerator) are recorded in that
    machine's ``skipped`` list.  The headline ``a64fx_over_skylake``
    ratio is Skylake's best time over A64FX's best time (> 1 means
    the A64FX wins) when both machines are in the comparison.
    """
    specs = {key: MACHINE_SPECS[key] for key in machines}
    systems = {key: spec.build_system() for key, spec in specs.items()}

    # compile every (machine, kernel, toolchain) point, then one batch
    items = []
    meta = []
    skipped: dict[str, list[str]] = {key: [] for key in specs}
    for kernel in kernels:
        loop = build_kernel(kernel)
        for key, spec in specs.items():
            compiled_any = False
            for tc in _toolchains_for(spec):
                try:
                    compiled = cached_compile(loop, tc, spec.build_core())
                except ValueError:
                    continue
                items.append((compiled, systems[key], None))
                meta.append((kernel, key, tc.name))
                compiled_any = True
            if not compiled_any:
                skipped[key].append(kernel)

    preds = predict_batch(items)

    per_kernel: dict[str, dict] = {}
    for (kernel, key, tc_name), pred in zip(meta, preds):
        entry = per_kernel.setdefault(
            kernel, {"winner": None, "per_machine": {}})
        best = entry["per_machine"].get(key)
        if best is None or pred.seconds < best["seconds"]:
            entry["per_machine"][key] = {
                "toolchain": tc_name,
                "seconds": pred.seconds,
                "cycles_per_element": pred.cycles_per_element,
                "bound": pred.bound,
            }

    a64fx_wins = 0
    for kernel, entry in per_kernel.items():
        winner = min(entry["per_machine"],
                     key=lambda k: entry["per_machine"][k]["seconds"])
        entry["winner"] = winner
        if winner == "a64fx":
            a64fx_wins += 1
        a64 = entry["per_machine"].get("a64fx")
        skl = entry["per_machine"].get("skylake-6140")
        if a64 and skl:
            entry["a64fx_over_skylake"] = skl["seconds"] / a64["seconds"]

    return {
        "format": REPORT_FORMAT,
        "machines": {
            key: {
                "name": spec.name,
                "system": systems[key].name,
                "isa": spec.isa,
                "vector_bits": spec.vector_bits,
                "cores": spec.cores,
                "peak_gflops_core": systems[key].peak_gflops_core,
                "node_stream_bw_gbs": systems[key].node_stream_bw_gbs,
                "skipped": skipped[key],
            }
            for key, spec in specs.items()
        },
        "kernels": per_kernel,
        "points": len(items),
        "a64fx_wins": a64fx_wins,
    }


def render(report: Mapping) -> str:
    """Text table of a :func:`crossover_report` document."""
    keys = list(report["machines"])
    lines = ["machine crossover (ECM tier, best toolchain per machine;"
             " * = winner)", ""]
    header = f"{'kernel':<14}" + "".join(f"{k:>16}" for k in keys)
    lines.append(header)
    lines.append("-" * len(header))
    for kernel, entry in report["kernels"].items():
        cells = []
        for key in keys:
            pm = entry["per_machine"].get(key)
            if pm is None:
                cells.append(f"{'—':>16}")
                continue
            mark = "*" if entry["winner"] == key else " "
            cells.append(f"{pm['seconds'] * 1e6:>14.2f}{mark} ")
        lines.append(f"{kernel:<14}" + "".join(cells))
    lines.append("")
    lines.append(f"(cell = predicted microseconds per kernel run; "
                 f"{report['a64fx_wins']}/{len(report['kernels'])} "
                 "kernels won by a64fx)")
    return "\n".join(lines)
