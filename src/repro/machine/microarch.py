"""Per-core timing models for the CPUs studied in the paper.

Each :class:`Microarch` gives, for every abstract :class:`~repro.machine.isa.Op`,
a latency / reciprocal-throughput / pipe-set record, plus the global core
parameters the scheduler needs (issue width, out-of-order window, vector
width, clock domains).

Numbers for the A64FX come from the public *A64FX Microarchitecture Manual*
(github.com/fujitsu/A64FX); the paper itself quotes the headline ones (two
512-bit FMA pipes, 9-cycle FP latency, the blocking 134-cycle ``FSQRT``,
the 128-byte gather-coalescing window).  x86 numbers follow Agner Fog's
instruction tables for Skylake-X / KNL / Zen 2.  These are *models*: they
are accurate enough to reproduce the relative performance the paper reports
(its stated reproduction bar), not cycle-exact RTL.

Key mechanisms encoded here that the paper's results hinge on:

* A64FX peak: 2 pipes x 8 lanes x 2 flops x 1.8 GHz = 57.6 GFLOP/s/core.
* ``FSQRT``/``FDIV`` are **blocking** (non-pipelined) on A64FX — reciprocal
  throughput equals latency — which is why toolchains that select
  ``FSQRT`` (GNU, ARM v20) lose ~20x on sqrt loops while Fujitsu/Cray use
  ``FRSQRTE`` + Newton refinement (Section III).
* ``FEXPA`` exists only on SVE, enabling the 5-term exponential of
  Section IV.
* Gather loads are split into per-element transactions unless an aligned
  128-byte window covers an element pair (``gather_pair_coalescing``).
* Skylake boosts its clock for single-core runs but drops to an all-core
  AVX-512 license frequency when every core is busy — the mechanism behind
  the paper's EP scaling efficiency of ~0.7 on Skylake (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro._util import require_positive
from repro.machine.isa import Op, Pipe

__all__ = [
    "OpTiming",
    "Microarch",
    "A64FX",
    "SKYLAKE_6140",
    "SKYLAKE_6130",
    "SKYLAKE_8160",
    "KNL_7250",
    "EPYC_7742",
    "THUNDERX2",
]


@dataclass(frozen=True)
class OpTiming:
    """Timing of one operation kind on one microarchitecture.

    ``latency`` is cycles from issue to result availability; ``rtput`` is
    the reciprocal throughput in cycles the chosen pipe stays busy (1.0 for
    fully pipelined ops; equal to latency for blocking ops such as the
    A64FX ``FSQRT``).
    """

    latency: float
    rtput: float
    pipes: frozenset[Pipe]

    def __post_init__(self) -> None:
        require_positive(self.latency, "latency")
        require_positive(self.rtput, "rtput")
        if not self.pipes:
            raise ValueError("an OpTiming needs at least one pipe")


def _t(latency: float, rtput: float, *pipes: Pipe) -> OpTiming:
    return OpTiming(latency, rtput, frozenset(pipes))


@dataclass(frozen=True)
class Microarch:
    """A per-core pipeline model.

    Parameters
    ----------
    name:
        Human-readable identifier (used in reports).
    vector_bits:
        SIMD register width; float64 lanes = ``vector_bits / 64``.
    clock_ghz:
        Sustained clock for single-core vector work.  The A64FX runs at a
        fixed 1.8 GHz; x86 parts boost here.
    allcore_clock_ghz:
        Clock when all cores run wide-SIMD code (AVX-512 license frequency
        on Skylake; equal to ``clock_ghz`` on A64FX/KNL).
    issue_width:
        Maximum instructions issued per cycle.
    window:
        Out-of-order scheduling window in instructions (bounds how much
        cross-iteration parallelism the scheduler may exploit).
    timings:
        Map from :class:`Op` to :class:`OpTiming`.
    has_fexpa:
        Whether the ISA provides the ``FEXPA`` accelerator (SVE only).
    gather_pair_coalescing:
        Whether gathers merge element pairs that share an aligned 128-byte
        window into one transaction (A64FX special case, paper Section III).
    fp_pipes:
        Number of FP/SIMD pipes (for peak-FLOP computations).
    mem_overlap:
        ECM composition rule for this core (Alappat et al., arXiv
        2103.03013 / 2009.13903): ``True`` for cores that overlap in-core
        arithmetic with all data transfers (the classic x86 rule,
        ``T = max(T_OL, T_nOL + sum(T_data))``); ``False`` for the A64FX,
        whose measured single-core behaviour shows essentially **no**
        overlap between in-core work and transfers beyond L1
        (``T = T_comp + sum(T_data)``).
    """

    name: str
    vector_bits: int
    clock_ghz: float
    allcore_clock_ghz: float
    issue_width: int
    window: int
    timings: Mapping[Op, OpTiming]
    has_fexpa: bool = False
    gather_pair_coalescing: bool = False
    fp_pipes: int = 2
    smt: int = 1
    mem_overlap: bool = True

    def __post_init__(self) -> None:
        require_positive(self.clock_ghz, "clock_ghz")
        require_positive(self.allcore_clock_ghz, "allcore_clock_ghz")
        if self.vector_bits % 64:
            raise ValueError("vector_bits must be a multiple of 64")
        if self.issue_width < 1 or self.window < 1:
            raise ValueError("issue_width and window must be >= 1")

    # -- derived quantities -------------------------------------------------
    @property
    def lanes_f64(self) -> int:
        """Number of float64 lanes per vector register."""
        return self.vector_bits // 64

    def peak_gflops_core(self, allcore: bool = False) -> float:
        """Theoretical peak double-precision GFLOP/s for one core.

        ``fp_pipes`` FMA pipes x lanes x 2 flops/FMA x clock.  For the
        A64FX this reproduces the paper's 57.6 GFLOP/s/core.
        """
        clock = self.allcore_clock_ghz if allcore else self.clock_ghz
        return clock * self.fp_pipes * self.lanes_f64 * 2.0

    def timing(self, op: Op) -> OpTiming:
        """Timing-table entry for *op*; KeyError names unsupported ops."""
        try:
            return self.timings[op]
        except KeyError:
            raise KeyError(
                f"{self.name} has no timing for {op.value!r} — the code "
                "generator emitted an op this ISA does not support"
            ) from None

    def supports(self, op: Op) -> bool:
        """True when this core has a timing entry for *op*."""
        return op in self.timings


# ---------------------------------------------------------------------------
# A64FX (Ookami compute node CPU) — 48 cores, 512-bit SVE, 1.8 GHz fixed.
# ---------------------------------------------------------------------------

_A64FX_TIMINGS: dict[Op, OpTiming] = {
    Op.FADD: _t(9, 1, Pipe.FLA, Pipe.FLB),
    Op.FMUL: _t(9, 1, Pipe.FLA, Pipe.FLB),
    Op.FMA: _t(9, 1, Pipe.FLA, Pipe.FLB),
    Op.FMOV: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FCMP: _t(4, 1, Pipe.FLA),
    Op.FSEL: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FMINMAX: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FCVT: _t(9, 1, Pipe.FLA, Pipe.FLB),
    # Blocking iterative units: reciprocal throughput == latency.  The paper
    # quotes 134 cycles for a 512-bit FSQRT; FDIV is of the same class.
    Op.FDIV: _t(112, 112, Pipe.FLA),
    Op.FSQRT: _t(134, 134, Pipe.FLA),
    Op.FRECPE: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FRSQRTE: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FEXPA: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FSCALE: _t(9, 1, Pipe.FLA, Pipe.FLB),
    Op.IADD: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.IMUL: _t(9, 1, Pipe.FLA, Pipe.FLB),
    Op.ILOGIC: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.PERM: _t(6, 1, Pipe.FLB),       # single shuffle pipe on A64FX
    Op.PLOGIC: _t(3, 1, Pipe.PR),
    Op.PWHILE: _t(3, 1, Pipe.PR),
    Op.PTEST: _t(3, 1, Pipe.PR),
    Op.VLOAD: _t(11, 1, Pipe.LS1, Pipe.LS2),
    Op.VSTORE: _t(1, 1, Pipe.LS1),
    Op.GATHER_UOP: _t(11, 1, Pipe.LS1),
    Op.SCATTER_UOP: _t(1, 1, Pipe.LS1),
    Op.SLOAD: _t(8, 1, Pipe.LS1, Pipe.LS2),
    Op.SSTORE: _t(1, 1, Pipe.LS1),
    Op.SALU: _t(1, 0.5, Pipe.EXA, Pipe.EXB),
    Op.SFP: _t(9, 1, Pipe.FLA, Pipe.FLB),
    Op.SFDIV: _t(43, 43, Pipe.FLA),
    Op.SFSQRT: _t(51, 51, Pipe.FLA),
    Op.BRANCH: _t(1, 1, Pipe.BR),
    Op.CALL: _t(1, 1, Pipe.BR),  # real cost comes from per-instr overrides
}

A64FX = Microarch(
    name="A64FX",
    vector_bits=512,
    clock_ghz=1.8,
    allcore_clock_ghz=1.8,
    issue_width=4,
    window=128,  # 128-entry commit stack (A64FX microarchitecture manual)
    timings=_A64FX_TIMINGS,
    has_fexpa=True,
    gather_pair_coalescing=True,
    fp_pipes=2,
    mem_overlap=False,  # non-overlapping ECM composition (Alappat et al.)
)


# ---------------------------------------------------------------------------
# Skylake-SP family.  Three SKUs appear in the paper: Gold 6140 (loop and
# NPB comparisons; 2.3 base / 3.7 boost), Gold 6130 (LULESH system), and
# Platinum 8160 (TACC Stampede 2, 1.4 GHz AVX-512 all-core).
# ---------------------------------------------------------------------------

_SKX_TIMINGS: dict[Op, OpTiming] = {
    Op.FADD: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FMUL: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FMA: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FMOV: _t(1, 0.5, Pipe.FLA, Pipe.FLB),
    Op.FCMP: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FSEL: _t(2, 1, Pipe.FLA, Pipe.FLB),
    Op.FMINMAX: _t(4, 1, Pipe.FLA, Pipe.FLB),
    Op.FCVT: _t(4, 1, Pipe.FLA, Pipe.FLB),
    # Dedicated partially-pipelined divide unit: far from blocking.
    Op.FDIV: _t(23, 16, Pipe.FLA),
    Op.FSQRT: _t(31, 25, Pipe.FLA),
    Op.FRECPE: _t(7, 2, Pipe.FLA),    # VRCP14PD
    Op.FRSQRTE: _t(9, 2, Pipe.FLA),   # VRSQRT14PD
    # no FEXPA on x86 — deliberately absent from the table
    Op.FSCALE: _t(4, 1, Pipe.FLA, Pipe.FLB),  # VSCALEFPD (AVX-512 has one)
    Op.IADD: _t(1, 0.5, Pipe.FLA, Pipe.FLB),
    Op.IMUL: _t(5, 1, Pipe.FLA),
    Op.ILOGIC: _t(1, 0.5, Pipe.FLA, Pipe.FLB),
    Op.PERM: _t(3, 1, Pipe.FLB),      # port-5 shuffles
    Op.PLOGIC: _t(1, 1, Pipe.PR),     # kmask ops
    Op.PWHILE: _t(2, 1, Pipe.PR),
    Op.PTEST: _t(2, 1, Pipe.PR),
    Op.VLOAD: _t(7, 1, Pipe.LS1, Pipe.LS2),
    Op.VSTORE: _t(1, 1, Pipe.LS1),
    Op.GATHER_UOP: _t(7, 1, Pipe.LS1),
    Op.SCATTER_UOP: _t(1, 1, Pipe.LS1),
    Op.SLOAD: _t(5, 0.5, Pipe.LS1, Pipe.LS2),
    Op.SSTORE: _t(1, 1, Pipe.LS1),
    Op.SALU: _t(1, 0.25, Pipe.EXA, Pipe.EXB),
    Op.SFP: _t(4, 0.5, Pipe.FLA, Pipe.FLB),
    Op.SFDIV: _t(14, 4, Pipe.FLA),
    Op.SFSQRT: _t(18, 6, Pipe.FLA),
    Op.BRANCH: _t(1, 0.5, Pipe.BR),
    Op.CALL: _t(1, 1, Pipe.BR),
}


def _skylake(name: str, boost: float, allcore: float) -> Microarch:
    return Microarch(
        name=name,
        vector_bits=512,
        clock_ghz=boost,
        allcore_clock_ghz=allcore,
        issue_width=4,
        window=224,
        timings=_SKX_TIMINGS,
        has_fexpa=False,
        gather_pair_coalescing=False,
        fp_pipes=2,
        smt=2,
    )


SKYLAKE_6140 = _skylake("Skylake 6140", boost=3.7, allcore=2.1)
SKYLAKE_6130 = _skylake("Skylake 6130", boost=3.7, allcore=1.9)
SKYLAKE_8160 = _skylake("Skylake 8160 (SKX)", boost=3.7, allcore=1.4)


# ---------------------------------------------------------------------------
# Knights Landing: 512-bit AVX-512 but simple 2-wide cores with tiny OoO
# resources; FP latency 6 and weak scalar units.
# ---------------------------------------------------------------------------

_KNL_TIMINGS: dict[Op, OpTiming] = dict(_SKX_TIMINGS)
_KNL_TIMINGS.update(
    {
        Op.FADD: _t(6, 1, Pipe.FLA, Pipe.FLB),
        Op.FMUL: _t(6, 1, Pipe.FLA, Pipe.FLB),
        Op.FMA: _t(6, 1, Pipe.FLA, Pipe.FLB),
        Op.FDIV: _t(32, 30, Pipe.FLA),
        Op.FSQRT: _t(38, 35, Pipe.FLA),
        Op.VLOAD: _t(9, 1, Pipe.LS1, Pipe.LS2),
        Op.SALU: _t(1, 0.5, Pipe.EXA, Pipe.EXB),
        Op.SFP: _t(6, 1, Pipe.FLA, Pipe.FLB),
        Op.GATHER_UOP: _t(9, 2, Pipe.LS1),
    }
)

KNL_7250 = Microarch(
    name="KNL 7250",
    vector_bits=512,
    clock_ghz=1.4,
    allcore_clock_ghz=1.4,
    issue_width=2,
    window=72,
    timings=_KNL_TIMINGS,
    has_fexpa=False,
    gather_pair_coalescing=False,
    fp_pipes=2,
    smt=4,
)


# ---------------------------------------------------------------------------
# AMD EPYC 7742 (Zen 2): 256-bit AVX2, 2 FMA pipes, strong scalar core.
# ---------------------------------------------------------------------------

_ZEN2_TIMINGS: dict[Op, OpTiming] = dict(_SKX_TIMINGS)
_ZEN2_TIMINGS.update(
    {
        Op.FADD: _t(3, 1, Pipe.FLA, Pipe.FLB),
        Op.FMUL: _t(3, 1, Pipe.FLA, Pipe.FLB),
        Op.FMA: _t(5, 1, Pipe.FLA, Pipe.FLB),
        Op.FDIV: _t(13, 5, Pipe.FLA),
        Op.FSQRT: _t(20, 9, Pipe.FLA),
        Op.VLOAD: _t(7, 1, Pipe.LS1, Pipe.LS2),
        Op.GATHER_UOP: _t(7, 2, Pipe.LS1),  # AVX2 gathers are microcoded
    }
)

EPYC_7742 = Microarch(
    name="EPYC 7742 (Zen2)",
    vector_bits=256,
    clock_ghz=3.2,
    allcore_clock_ghz=2.25,
    issue_width=5,
    window=224,
    timings=_ZEN2_TIMINGS,
    has_fexpa=False,
    gather_pair_coalescing=False,
    fp_pipes=2,
    smt=2,
)


# ---------------------------------------------------------------------------
# Marvell ThunderX2 (Ookami login nodes): ARMv8 + 128-bit NEON, high scalar
# throughput.  Included for completeness of the system catalog.
# ---------------------------------------------------------------------------

_TX2_TIMINGS: dict[Op, OpTiming] = dict(_SKX_TIMINGS)
_TX2_TIMINGS.update(
    {
        Op.FADD: _t(6, 1, Pipe.FLA, Pipe.FLB),
        Op.FMUL: _t(6, 1, Pipe.FLA, Pipe.FLB),
        Op.FMA: _t(6, 1, Pipe.FLA, Pipe.FLB),
        Op.FDIV: _t(16, 8, Pipe.FLA),
        Op.FSQRT: _t(23, 12, Pipe.FLA),
    }
)

THUNDERX2 = Microarch(
    name="ThunderX2",
    vector_bits=128,
    clock_ghz=2.3,
    allcore_clock_ghz=2.3,
    issue_width=4,
    window=128,
    timings=_TX2_TIMINGS,
    has_fexpa=False,
    gather_pair_coalescing=False,
    fp_pipes=2,
    smt=4,
)
