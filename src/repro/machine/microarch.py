"""Per-core timing models for the CPUs studied in the paper.

Each :class:`Microarch` gives, for every abstract :class:`~repro.machine.isa.Op`,
a latency / reciprocal-throughput / pipe-set record, plus the global core
parameters the scheduler needs (issue width, out-of-order window, vector
width, clock domains).

Numbers for the A64FX come from the public *A64FX Microarchitecture Manual*
(github.com/fujitsu/A64FX); the paper itself quotes the headline ones (two
512-bit FMA pipes, 9-cycle FP latency, the blocking 134-cycle ``FSQRT``,
the 128-byte gather-coalescing window).  x86 numbers follow Agner Fog's
instruction tables for Skylake-X / KNL / Zen 2.  These are *models*: they
are accurate enough to reproduce the relative performance the paper reports
(its stated reproduction bar), not cycle-exact RTL.

Key mechanisms encoded here that the paper's results hinge on:

* A64FX peak: 2 pipes x 8 lanes x 2 flops x 1.8 GHz = 57.6 GFLOP/s/core.
* ``FSQRT``/``FDIV`` are **blocking** (non-pipelined) on A64FX — reciprocal
  throughput equals latency — which is why toolchains that select
  ``FSQRT`` (GNU, ARM v20) lose ~20x on sqrt loops while Fujitsu/Cray use
  ``FRSQRTE`` + Newton refinement (Section III).
* ``FEXPA`` exists only on SVE, enabling the 5-term exponential of
  Section IV.
* Gather loads are split into per-element transactions unless an aligned
  128-byte window covers an element pair (``gather_pair_coalescing``).
* Skylake boosts its clock for single-core runs but drops to an all-core
  AVX-512 license frequency when every core is busy — the mechanism behind
  the paper's EP scaling efficiency of ~0.7 on Skylake (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro._util import require_positive
from repro.machine.isa import Op, Pipe, VectorISA, get_isa

__all__ = [
    "OpTiming",
    "Microarch",
    "A64FX",
    "SKYLAKE_6140",
    "SKYLAKE_6130",
    "SKYLAKE_8160",
    "KNL_7250",
    "EPYC_7742",
    "THUNDERX2",
]


@dataclass(frozen=True)
class OpTiming:
    """Timing of one operation kind on one microarchitecture.

    ``latency`` is cycles from issue to result availability; ``rtput`` is
    the reciprocal throughput in cycles the chosen pipe stays busy (1.0 for
    fully pipelined ops; equal to latency for blocking ops such as the
    A64FX ``FSQRT``).
    """

    latency: float
    rtput: float
    pipes: frozenset[Pipe]

    def __post_init__(self) -> None:
        require_positive(self.latency, "latency")
        require_positive(self.rtput, "rtput")
        if not self.pipes:
            raise ValueError("an OpTiming needs at least one pipe")


def _t(latency: float, rtput: float, *pipes: Pipe) -> OpTiming:
    return OpTiming(latency, rtput, frozenset(pipes))


@dataclass(frozen=True)
class Microarch:
    """A per-core pipeline model.

    Parameters
    ----------
    name:
        Human-readable identifier (used in reports).
    vector_bits:
        SIMD register width; float64 lanes = ``vector_bits / 64``.
    clock_ghz:
        Sustained clock for single-core vector work.  The A64FX runs at a
        fixed 1.8 GHz; x86 parts boost here.
    allcore_clock_ghz:
        Clock when all cores run wide-SIMD code (AVX-512 license frequency
        on Skylake; equal to ``clock_ghz`` on A64FX/KNL).
    issue_width:
        Maximum instructions issued per cycle.
    window:
        Out-of-order scheduling window in instructions (bounds how much
        cross-iteration parallelism the scheduler may exploit).
    timings:
        Map from :class:`Op` to :class:`OpTiming`.
    has_fexpa:
        Whether the ISA provides the ``FEXPA`` accelerator (SVE only).
    gather_pair_coalescing:
        Whether gathers merge element pairs that share an aligned 128-byte
        window into one transaction (A64FX special case, paper Section III).
    fp_pipes:
        Number of FP/SIMD pipes (for peak-FLOP computations).
    mem_overlap:
        ECM composition rule for this core (Alappat et al., arXiv
        2103.03013 / 2009.13903): ``True`` for cores that overlap in-core
        arithmetic with all data transfers (the classic x86 rule,
        ``T = max(T_OL, T_nOL + sum(T_data))``); ``False`` for the A64FX,
        whose measured single-core behaviour shows essentially **no**
        overlap between in-core work and transfers beyond L1
        (``T = T_comp + sum(T_data)``).
    isa:
        Name of the :class:`~repro.machine.isa.VectorISA` this core
        implements (a :data:`~repro.machine.isa.VECTOR_ISAS` registry
        key).  Empty for directly-constructed cores, in which case
        :attr:`vector_isa` infers an anonymous ISA from the legacy
        capability flags.
    """

    name: str
    vector_bits: int
    clock_ghz: float
    allcore_clock_ghz: float
    issue_width: int
    window: int
    timings: Mapping[Op, OpTiming]
    has_fexpa: bool = False
    gather_pair_coalescing: bool = False
    fp_pipes: int = 2
    smt: int = 1
    mem_overlap: bool = True
    isa: str = ""

    def __post_init__(self) -> None:
        require_positive(self.clock_ghz, "clock_ghz")
        require_positive(self.allcore_clock_ghz, "allcore_clock_ghz")
        if self.vector_bits % 64:
            raise ValueError("vector_bits must be a multiple of 64")
        if self.issue_width < 1 or self.window < 1:
            raise ValueError("issue_width and window must be >= 1")

    # -- derived quantities -------------------------------------------------
    @property
    def lanes_f64(self) -> int:
        """Number of float64 lanes per vector register."""
        return self.vector_bits // 64

    def peak_gflops_core(self, allcore: bool = False) -> float:
        """Theoretical peak double-precision GFLOP/s for one core.

        ``fp_pipes`` FMA pipes x lanes x 2 flops/FMA x clock.  For the
        A64FX this reproduces the paper's 57.6 GFLOP/s/core.
        """
        clock = self.allcore_clock_ghz if allcore else self.clock_ghz
        return clock * self.fp_pipes * self.lanes_f64 * 2.0

    def timing(self, op: Op) -> OpTiming:
        """Timing-table entry for *op*; KeyError names unsupported ops."""
        try:
            return self.timings[op]
        except KeyError:
            raise KeyError(
                f"{self.name} has no timing for {op.value!r} — the code "
                "generator emitted an op this ISA does not support"
            ) from None

    def supports(self, op: Op) -> bool:
        """True when this core has a timing entry for *op*."""
        return op in self.timings

    @property
    def vector_isa(self) -> VectorISA:
        """The :class:`~repro.machine.isa.VectorISA` this core implements.

        Spec-built cores carry a registry name in :attr:`isa`; cores
        constructed directly (tests, ad-hoc experiments) get an inferred
        anonymous ISA whose traits reproduce the pre-spec behaviour of
        the legacy capability flags.
        """
        if self.isa:
            return get_isa(self.isa)
        return VectorISA(
            name="inferred",
            predicated_tail=self.has_fexpa,
            has_fexpa=self.has_fexpa,
            predicated_store_crack=self.has_fexpa,
            gather_pair_coalescing=self.gather_pair_coalescing,
            toolchain_targets=("sve",) if self.has_fexpa else ("x86",),
        )


# ---------------------------------------------------------------------------
# The paper's cores.  Since the machine-description refactor the numbers
# live as declarative data in :mod:`repro.machine.spec` (same values,
# same provenance); these constants are the cached builds of those
# presets, so ``A64FX is A64FX_SPEC.build_core()`` holds and the
# engines' id-keyed memo tables keep working unchanged.
# ---------------------------------------------------------------------------

from repro.machine import spec as _spec  # noqa: E402  (bottom import breaks the import cycle)

#: A64FX (Ookami compute node CPU) — 48 cores, 512-bit SVE, 1.8 GHz fixed
A64FX = _spec.A64FX_SPEC.build_core()

# Skylake-SP family.  Three SKUs appear in the paper: Gold 6140 (loop and
# NPB comparisons; 2.3 base / 3.7 boost), Gold 6130 (LULESH system), and
# Platinum 8160 (TACC Stampede 2, 1.4 GHz AVX-512 all-core).
SKYLAKE_6140 = _spec.SKYLAKE_6140_SPEC.build_core()
SKYLAKE_6130 = _spec.SKYLAKE_6130_SPEC.build_core()
SKYLAKE_8160 = _spec.SKYLAKE_8160_SPEC.build_core()

#: Knights Landing: 512-bit AVX-512 but simple 2-wide cores with tiny
#: OoO resources; FP latency 6 and weak scalar units
KNL_7250 = _spec.KNL_7250_SPEC.build_core()

#: AMD EPYC 7742 (Zen 2): 256-bit AVX2, 2 FMA pipes, strong scalar core
EPYC_7742 = _spec.EPYC_7742_SPEC.build_core()

#: Marvell ThunderX2 (Ookami login nodes): ARMv8 + 128-bit NEON, high
#: scalar throughput.  Included for completeness of the system catalog.
THUNDERX2 = _spec.THUNDERX2_SPEC.build_core()

