"""Sparse-matrix storage models: row-length distributions, CRS, SELL-C-sigma.

The performance of SpMV is governed almost entirely by the *storage
layout*, not by the numerical values: how many nonzeros each row holds,
how much padding the SIMD-friendly format introduces, and how local the
column indices are.  This module models exactly that layer.  A
:class:`SparseMatrix` is a deterministic row-length distribution (no
values are materialised — the kernels only need byte counts and
footprints); :meth:`SparseMatrix.crs` and :meth:`SparseMatrix.sell`
derive the layout quantities the ECM papers use:

* **CRS** (compressed row storage): ``nnz`` values + ``nnz`` column
  indices + ``nrows+1`` row pointers, processed one row at a time.
* **SELL-C-sigma** (Kreutzer et al.): rows are sorted by length inside
  windows of ``sigma`` rows, grouped into chunks of ``C`` rows, and each
  chunk is zero-padded to its longest row.  The *chunk occupancy*
  ``beta = nnz / padded_nnz`` measures the padding overhead — the
  SIMD-vectorised kernel streams ``padded_nnz`` elements, so its memory
  traffic and trip count scale with ``1/beta``.

Both layout dataclasses are consumed by :mod:`repro.spmv.kernels` when
lowering SpMV to loop IR, and are directly inspectable from docs/tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

INDEX_BYTES = 4
"""Column indices are 32-bit (the common choice below 2**31 columns)."""

VALUE_BYTES = 8
"""Matrix values and vector entries are IEEE double precision."""


def _lcg(state: int) -> int:
    """One step of a 64-bit linear congruential generator (MMIX constants)."""
    return (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)


@dataclass(frozen=True)
class SparseMatrix:
    """A deterministic sparse-matrix *shape*: per-row nonzero counts.

    Attributes:
        name: short identifier used in kernel labels (``"hpcg"`` ...).
        nrows: number of rows (= number of columns; matrices are square).
        row_lengths: nonzeros in each row, as an immutable tuple.
        structured: ``True`` when column indices follow a stencil-like
            banded structure (good spatial locality in the ``x`` gather),
            ``False`` for scattered/random columns.
    """

    name: str
    nrows: int
    row_lengths: tuple[int, ...]
    structured: bool

    @cached_property
    def nnz(self) -> int:
        """Total number of stored nonzeros."""
        return sum(self.row_lengths)

    @cached_property
    def avg_row_length(self) -> float:
        """Mean nonzeros per row."""
        return self.nnz / self.nrows

    def crs(self) -> "CrsLayout":
        """Derive the CRS (compressed row storage) layout quantities."""
        return CrsLayout(
            matrix=self,
            bytes_values=self.nnz * VALUE_BYTES,
            bytes_colidx=self.nnz * INDEX_BYTES,
            bytes_rowptr=(self.nrows + 1) * INDEX_BYTES,
        )

    def sell(self, chunk: int = 8, sigma: int = 1024) -> "SellLayout":
        """Derive the SELL-C-sigma layout for chunk height *chunk*.

        Rows are sorted by descending length inside consecutive windows
        of *sigma* rows, grouped into chunks of *chunk* rows, and each
        chunk padded to its longest member.  Returns the padded element
        count and the occupancy ``beta``.
        """
        if chunk < 1 or sigma < 1:
            raise ValueError("chunk and sigma must be >= 1")
        padded = 0
        lengths = list(self.row_lengths)
        for start in range(0, self.nrows, sigma):
            window = sorted(lengths[start:start + sigma], reverse=True)
            for cstart in range(0, len(window), chunk):
                rows = window[cstart:cstart + chunk]
                padded += max(rows) * chunk if len(rows) == chunk else (
                    max(rows) * len(rows))
        return SellLayout(
            matrix=self,
            chunk=chunk,
            sigma=sigma,
            padded_nnz=padded,
            beta=self.nnz / padded if padded else 1.0,
        )


@dataclass(frozen=True)
class CrsLayout:
    """Byte-level description of a matrix stored in CRS format."""

    matrix: SparseMatrix
    bytes_values: int
    bytes_colidx: int
    bytes_rowptr: int

    @property
    def bytes_total(self) -> int:
        """Total storage footprint of the matrix data structures."""
        return self.bytes_values + self.bytes_colidx + self.bytes_rowptr


@dataclass(frozen=True)
class SellLayout:
    """Byte-level description of a matrix stored in SELL-C-sigma format.

    ``beta`` is the chunk occupancy (``nnz / padded_nnz``); the streamed
    value/index arrays hold ``padded_nnz`` entries, so lower ``beta``
    means proportionally more memory traffic and loop iterations.
    """

    matrix: SparseMatrix
    chunk: int
    sigma: int
    padded_nnz: int
    beta: float

    @property
    def bytes_values(self) -> int:
        """Padded value-array bytes."""
        return self.padded_nnz * VALUE_BYTES

    @property
    def bytes_colidx(self) -> int:
        """Padded column-index bytes."""
        return self.padded_nnz * INDEX_BYTES


def hpcg_like(nrows: int) -> SparseMatrix:
    """A 27-point HPCG-style problem: banded, near-uniform row lengths.

    Interior rows hold 27 nonzeros; rows touching the domain boundary
    hold fewer.  We approximate the boundary fraction of a cubic grid
    with side ``n = nrows**(1/3)``: a face point loses a 9-point plane.
    The structure is banded, so the ``x`` gather enjoys stencil-like
    spatial locality (``structured=True``).
    """
    side = max(2, round(nrows ** (1.0 / 3.0)))
    interior = max(0, (side - 2)) ** 3 / side ** 3
    lengths = []
    for row in range(nrows):
        # deterministic boundary assignment: the first (1-interior)
        # fraction of a side-long period plays the boundary rows
        lengths.append(27 if (row % side) / side < interior else 18)
    return SparseMatrix(
        name="hpcg", nrows=nrows, row_lengths=tuple(lengths),
        structured=True,
    )


def random_matrix(nrows: int, avg_nnz_per_row: int = 16,
                  seed: int = 7) -> SparseMatrix:
    """A scattered matrix with LCG-drawn row lengths around the mean.

    Row lengths are uniform on ``[1, 2*avg_nnz_per_row - 1]`` so the
    mean is *avg_nnz_per_row*; column indices are assumed scattered
    (``structured=False``), which maps the ``x`` gather to the
    ``random`` access pattern in the memory model.
    """
    if avg_nnz_per_row < 1:
        raise ValueError("avg_nnz_per_row must be >= 1")
    span = 2 * avg_nnz_per_row - 1
    lengths = []
    state = (seed * 2654435761 + 1) % (1 << 64)
    for _ in range(nrows):
        state = _lcg(state)
        lengths.append(1 + (state >> 33) % span)
    return SparseMatrix(
        name="random", nrows=nrows, row_lengths=tuple(lengths),
        structured=False,
    )


def sell_beta(row_lengths: tuple[int, ...], chunk: int, sigma: int) -> float:
    """Chunk occupancy ``beta`` for an arbitrary row-length tuple.

    Convenience wrapper used by tests and docs; equivalent to building a
    :class:`SparseMatrix` and reading ``sell(chunk, sigma).beta``.
    """
    mat = SparseMatrix(name="tmp", nrows=len(row_lengths),
                       row_lengths=tuple(row_lengths), structured=False)
    return mat.sell(chunk=chunk, sigma=sigma).beta


def grid_points(n: int, dims: int) -> int:
    """Side length of a ``dims``-dimensional grid with ~``n`` points."""
    return max(4, math.ceil(n ** (1.0 / dims)))
