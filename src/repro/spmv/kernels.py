"""IR builders and reference numerics for the SpMV/stencil kernel family.

Four kernels, mirroring the validation set of the A64FX ECM papers:

* ``spmv_crs``   — ``y[row] += val[j] * x[col[j]]`` over the nonzeros of
  a *scattered* matrix in CRS storage.  The ``x`` gather hits a fresh
  cache line almost every time (``random`` pattern), the classic
  low-alpha-locality SpMV.
* ``spmv_sell``  — the same streaming kernel over an HPCG-style banded
  matrix in SELL-C-sigma storage.  The trip count is the *padded*
  nonzero count (``nnz / beta``), and the sigma-sorted banded structure
  keeps gathered columns inside 128-byte windows (``window128`` — the
  A64FX pair-coalescing case).
* ``stencil2d``  — 5-point Jacobi sweep on a square grid.
* ``stencil3d``  — 7-point Jacobi sweep on a cubic grid.

**Layer conditions.**  The loop IR indexes arrays only through the
induction variable, so stencil neighbour accesses are modelled the way
analytical ECM tools (kerncraft) do after layer-condition analysis: each
*distinct reuse distance* becomes its own named stream with the
footprint of the data that must stay cached for the reuse to hit.  The
leading-edge stream (``xc``) and the store (``y``) carry the full grid
footprint (DRAM); neighbouring rows carry a 3-row footprint (inner
cache); neighbouring planes in 3D carry a 3-plane footprint; the
left/right neighbours are register/L1-resident.  Which cache level
serves each stream then falls out of the machine's capacity table — the
same classification on every tier.

**Sampling.**  Default problem sizes are DRAM-resident (millions of
rows).  Storage *statistics* (mean row length, SELL occupancy ``beta``)
converge after a few thousand rows, so builders sample
``min(n, SAMPLE_ROWS)`` rows and scale byte counts to the full ``n`` —
building a multi-million-entry row-length tuple would dwarf the cost of
the prediction itself.
"""

from __future__ import annotations

import numpy as np

from repro._util import require_in, require_positive
from repro.compilers.ir import ArrayInfo, BinOp, Const, Load, Loop, Reduce, Store
from repro.spmv.matrices import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseMatrix,
    grid_points,
    hpcg_like,
    random_matrix,
)

__all__ = [
    "SPMV_KERNEL_NAMES",
    "SAMPLE_ROWS",
    "SELL_CHUNK",
    "SELL_SIGMA",
    "build_spmv_loop",
    "spmv_reference_run",
]

#: kernels this package contributes to the unified catalog
SPMV_KERNEL_NAMES = ("spmv_crs", "spmv_sell", "stencil2d", "stencil3d")

#: rows sampled when estimating row-length statistics for large problems
SAMPLE_ROWS = 4096

#: SELL-C-sigma parameters: chunk height = one SVE vector of doubles,
#: sort window = 512 rows (the papers' C=8..32, sigma in the hundreds)
SELL_CHUNK = 8
SELL_SIGMA = 512

#: default problem sizes — chosen DRAM-resident on every studied machine
DEFAULT_SPMV_ROWS = 1 << 21       # x vector: 16 MiB
DEFAULT_STENCIL_POINTS = 1 << 24  # grids: 128 MiB per array


def _sampled(n: int, structured: bool) -> SparseMatrix:
    """Row-length sample used for statistics at problem size *n*."""
    rows = min(n, SAMPLE_ROWS)
    return hpcg_like(rows) if structured else random_matrix(rows)


def _spmv_body() -> tuple[Reduce, ...]:
    """The per-nonzero statement: ``y += val[j] * x[col[j]]``.

    The row accumulator is a :class:`~repro.compilers.ir.Reduce`, so the
    lowered stream carries the loop-carried FMA chain (split over unroll
    copies into partial sums, exactly like compiled SpMV inner loops).
    The result-vector writeback (one store per *row*, not per nonzero)
    is ~``1/avg_row_length`` of the nonzero traffic and is left out of
    the per-nonzero stream set.
    """
    return (
        Reduce("y", "+",
               BinOp("*", Load("val"), Load("x", index=Load("col")))),
    )


def _stencil_sum(names: tuple[str, ...]) -> BinOp:
    """Balanced addition tree over neighbour loads."""
    exprs: list = [Load(name) for name in names]
    while len(exprs) > 1:
        exprs = [
            BinOp("+", exprs[k], exprs[k + 1]) if k + 1 < len(exprs)
            else exprs[k]
            for k in range(0, len(exprs), 2)
        ]
    return exprs[0]


def build_spmv_loop(name: str, n: int | None = None) -> Loop:
    """Build the named SpMV/stencil kernel as loop IR.

    ``n`` is the number of matrix *rows* for the SpMV kernels and the
    number of grid *points* for the stencils (rounded to a full grid);
    the loop length is the derived per-nonzero / per-point trip count.
    """
    require_in(name, SPMV_KERNEL_NAMES, "spmv kernel name")

    if name == "spmv_crs":
        n = n if n is not None else DEFAULT_SPMV_ROWS
        require_positive(n, "n")
        sample = _sampled(n, structured=False)
        nnz = max(1, round(n * sample.avg_row_length))
        arrays = {
            "val": ArrayInfo("val", footprint=float(nnz * VALUE_BYTES)),
            "col": ArrayInfo("col", footprint=float(nnz * INDEX_BYTES),
                             elem_size=INDEX_BYTES),
            "x": ArrayInfo("x", footprint=8.0 * n, pattern="random"),
        }
        return Loop("spmv_crs", nnz, _spmv_body(), arrays)

    if name == "spmv_sell":
        n = n if n is not None else DEFAULT_SPMV_ROWS
        require_positive(n, "n")
        sample = _sampled(n, structured=True)
        layout = sample.sell(chunk=SELL_CHUNK, sigma=SELL_SIGMA)
        padded = max(1, round(n * sample.avg_row_length / layout.beta))
        arrays = {
            "val": ArrayInfo("val", footprint=float(padded * VALUE_BYTES)),
            "col": ArrayInfo("col", footprint=float(padded * INDEX_BYTES),
                             elem_size=INDEX_BYTES),
            "x": ArrayInfo("x", footprint=8.0 * n, pattern="window128"),
        }
        return Loop("spmv_sell", padded, _spmv_body(), arrays)

    if name == "stencil2d":
        n = n if n is not None else DEFAULT_STENCIL_POINTS
        require_positive(n, "n")
        side = grid_points(n, 2)
        npts = side * side
        row = 8.0 * side
        arrays = {
            "xc": ArrayInfo("xc", footprint=8.0 * npts),
            "xn": ArrayInfo("xn", footprint=3.0 * row),
            "xs": ArrayInfo("xs", footprint=3.0 * row),
            "xw": ArrayInfo("xw", footprint=256.0),
            "xe": ArrayInfo("xe", footprint=256.0),
            "y": ArrayInfo("y", footprint=8.0 * npts),
        }
        body = Store(
            "y",
            BinOp("+", BinOp("*", Const(0.5), Load("xc")),
                  BinOp("*", Const(0.125),
                        _stencil_sum(("xn", "xs", "xw", "xe")))),
        )
        return Loop("stencil2d", npts, (body,), arrays)

    # stencil3d
    n = n if n is not None else DEFAULT_STENCIL_POINTS
    require_positive(n, "n")
    side = grid_points(n, 3)
    npts = side ** 3
    row = 8.0 * side
    plane = 8.0 * side * side
    arrays = {
        "xc": ArrayInfo("xc", footprint=8.0 * npts),
        "xd": ArrayInfo("xd", footprint=3.0 * plane),
        "xu": ArrayInfo("xu", footprint=3.0 * plane),
        "xn": ArrayInfo("xn", footprint=3.0 * row),
        "xs": ArrayInfo("xs", footprint=3.0 * row),
        "xw": ArrayInfo("xw", footprint=256.0),
        "xe": ArrayInfo("xe", footprint=256.0),
        "y": ArrayInfo("y", footprint=8.0 * npts),
    }
    body = Store(
        "y",
        BinOp("+", BinOp("*", Const(0.4), Load("xc")),
              BinOp("*", Const(0.1),
                    _stencil_sum(("xd", "xu", "xn", "xs", "xw", "xe")))),
    )
    return Loop("stencil3d", npts, (body,), arrays)


# ---------------------------------------------------------------------------
# numpy reference numerics (small problem sizes)
# ---------------------------------------------------------------------------


def _reference_matrix(n: int, structured: bool, seed: int):
    """Materialise actual CRS arrays (rowptr/col/val) for *n* rows."""
    rng = np.random.default_rng(seed)
    mat = hpcg_like(n) if structured else random_matrix(n, seed=seed)
    lengths = np.asarray(mat.row_lengths, dtype=np.int64)
    rowptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=rowptr[1:])
    nnz = int(rowptr[-1])
    if structured:
        # banded columns: offsets around the diagonal, wrapped
        col = np.concatenate([
            (row + np.arange(lengths[row]) - lengths[row] // 2) % n
            for row in range(n)
        ])
    else:
        col = rng.integers(0, n, size=nnz)
    val = rng.standard_normal(nnz)
    return rowptr, col.astype(np.int64), val


def _crs_spmv(rowptr, col, val, x):
    """Row-wise ``y = A @ x`` over CRS arrays."""
    prods = val * x[col]
    y = np.add.reduceat(prods, rowptr[:-1])
    y[rowptr[:-1] == rowptr[1:]] = 0.0  # empty rows (reduceat quirk)
    return y


def spmv_reference_run(name: str, n: int | None = None, seed: int = 7):
    """Run the named kernel's reference numerics on a small problem.

    Returns ``(inputs, output)`` like
    :func:`repro.kernels.loops.reference_run`.  SpMV kernels materialise
    a real CRS matrix (scattered or banded to match the modelled
    structure) and compute ``y = A @ x``; the SELL kernel additionally
    traverses the *padded* chunk layout to demonstrate that zero padding
    leaves the numerics unchanged.  Stencils run periodic 5-point /
    7-point Jacobi sweeps via ``np.roll``.
    """
    require_in(name, SPMV_KERNEL_NAMES, "spmv kernel name")
    n = n if n is not None else 512
    require_positive(n, "n")
    rng = np.random.default_rng(seed)

    if name in ("spmv_crs", "spmv_sell"):
        structured = name == "spmv_sell"
        rowptr, col, val, = _reference_matrix(n, structured, seed)
        x = rng.standard_normal(n)
        y = _crs_spmv(rowptr, col, val, x)
        if name == "spmv_sell":
            # padded SELL traversal: pad every row to its chunk's max
            # length with (val=0, col=0) and accumulate chunk-wise
            lengths = np.diff(rowptr)
            y_sell = np.zeros(n)
            for start in range(0, n, SELL_CHUNK):
                rows = range(start, min(start + SELL_CHUNK, n))
                width = int(max(lengths[r] for r in rows))
                for r in rows:
                    seg = slice(rowptr[r], rowptr[r + 1])
                    padded_val = np.zeros(width)
                    padded_col = np.zeros(width, dtype=np.int64)
                    padded_val[: lengths[r]] = val[seg]
                    padded_col[: lengths[r]] = col[seg]
                    y_sell[r] = float(padded_val @ x[padded_col])
            np.testing.assert_allclose(y_sell, y, rtol=1e-12, atol=1e-12)
        return {"rowptr": rowptr, "col": col, "val": val, "x": x}, y

    dims = 2 if name == "stencil2d" else 3
    side = grid_points(n, dims)
    grid = rng.standard_normal((side,) * dims)
    if dims == 2:
        out = 0.5 * grid + 0.125 * (
            np.roll(grid, 1, 0) + np.roll(grid, -1, 0)
            + np.roll(grid, 1, 1) + np.roll(grid, -1, 1)
        )
    else:
        out = 0.4 * grid + 0.1 * (
            np.roll(grid, 1, 0) + np.roll(grid, -1, 0)
            + np.roll(grid, 1, 1) + np.roll(grid, -1, 1)
            + np.roll(grid, 1, 2) + np.roll(grid, -1, 2)
        )
    return {"x": grid}, out


def padded_trip_count(n: int, structured: bool = True) -> int:
    """Padded SELL trip count for *n* rows (sampled statistics).

    Exposed for docs/tests that want the number without building IR.
    """
    require_positive(n, "n")
    sample = _sampled(n, structured)
    layout = sample.sell(chunk=SELL_CHUNK, sigma=SELL_SIGMA)
    return max(1, round(n * sample.avg_row_length / layout.beta))
