"""SpMV and stencil workloads (the Alappat et al. ECM kernel family).

The two companion papers to the Ookami study — "ECM modeling and
performance tuning of SpMV and Lattice QCD on A64FX" (arXiv 2103.03013)
and "Performance Modeling of Streaming Kernels and SpMV on A64FX"
(arXiv 2009.13903) — validate their analytical ECM model on sparse
matrix-vector multiplication (CRS and SELL-C-sigma storage) and on
regular stencil sweeps.  This package reproduces that kernel family as
loop IR so the same kernels run on **all three prediction tiers**:

* the analytical ECM tier (:mod:`repro.ecm`) — microseconds,
* the event-driven fast engine (:mod:`repro.engine.scheduler`),
* the full simulation (``PipelineScheduler(march, extrapolate=False)``).

:mod:`repro.spmv.matrices` models the sparse-matrix storage formats
(row-length distributions, CRS, SELL-C-sigma chunk occupancy beta);
:mod:`repro.spmv.kernels` builds the IR loops and the numpy reference
numerics.
"""

from repro.spmv.kernels import (
    SPMV_KERNEL_NAMES,
    build_spmv_loop,
    spmv_reference_run,
)
from repro.spmv.matrices import (
    CrsLayout,
    SellLayout,
    SparseMatrix,
    hpcg_like,
    random_matrix,
)

__all__ = [
    "SPMV_KERNEL_NAMES",
    "build_spmv_loop",
    "spmv_reference_run",
    "SparseMatrix",
    "CrsLayout",
    "SellLayout",
    "hpcg_like",
    "random_matrix",
]
