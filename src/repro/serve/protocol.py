"""The ``repro.serve/1`` line protocol: requests, responses, validation.

The prediction server (:mod:`repro.serve.server`) speaks
newline-delimited JSON over a local socket or stdin/stdout.  Every line
the client sends is one request object; every line the server answers
is one versioned response object with ``"format": "repro.serve/1"``.

Request grammar
---------------
``{"op": "predict", ...}`` (the default when ``op`` is omitted)::

    {"id": 7, "kernel": "simple", "toolchain": "fujitsu",
     "tier": "engine", "window": 24}

* ``kernel`` — any :data:`repro.kernels.catalog.ALL_KERNEL_NAMES` entry
  (required);
* ``toolchain`` — any :data:`repro.compilers.toolchains.TOOLCHAINS` key
  (default ``"fujitsu"``); the machine follows the toolchain target
  (x86 -> Skylake 6140, SVE -> A64FX) exactly as in every CLI;
* ``tier`` — ``"engine"`` (simulate the steady-state schedule) or
  ``"ecm"`` (closed-form analytical model; default ``"engine"``);
* ``window`` — reorder-window override, integer >= 1 (default: the
  march's window);
* ``system`` — memory-hierarchy key for the ECM tier (default: the
  toolchain's home system, Ookami or the Skylake node);
* ``threads`` — active cores per NUMA domain for the ECM traffic model
  (default 1; the engine tier models one core and rejects other
  values);
* ``id`` — opaque client correlation value, echoed back verbatim.

Control operations: ``{"op": "stats"}`` returns the serve-session
counters, ``{"op": "ping"}`` echoes, ``{"op": "shutdown"}`` stops a
daemon loop after responding.

Responses
---------
``ok: true`` predictions carry the same row fields a
:func:`repro.engine.sweep.run_sweep` point produces plus per-request
cache/batch provenance::

    {"format": "repro.serve/1", "id": 7, "ok": true,
     "result": {"loop": "simple", "toolchain": "fujitsu", ...},
     "provenance": {"cache": "miss", "deduped": false,
                    "batched_with": 12}}

``cache`` says whether the answer was already resident in this process
(schedule cache for the engine tier, compile cache for the ECM tier),
``deduped`` marks requests coalesced onto an identical in-flight
request of the same micro-batch, and ``batched_with`` is the number of
predict requests the micro-batch carried.  Malformed or unsatisfiable
requests answer ``ok: false`` with an ``error`` string and never take
the batch down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = [
    "PROTOCOL_FORMAT",
    "ProtocolError",
    "PredictRequest",
    "error_response",
    "parse_request",
    "predict_response",
]

#: version tag stamped on every response line
PROTOCOL_FORMAT = "repro.serve/1"

#: tiers a predict request may name
REQUEST_TIERS = ("engine", "ecm")

#: operations the server understands
OPS = ("predict", "stats", "ping", "shutdown")

_PREDICT_KEYS = frozenset(
    ("op", "id", "kernel", "toolchain", "tier", "window", "system",
     "threads")
)


class ProtocolError(ValueError):
    """A request line that cannot be turned into work.

    Carries the client-facing message; the server converts it into an
    ``ok: false`` response for the offending request only.
    """


@dataclass(frozen=True)
class PredictRequest:
    """One validated prediction request.

    ``key`` (the content fingerprint requests deduplicate on) is
    everything that shapes the answer — the id deliberately excluded,
    so two clients asking the same question coalesce onto one
    execution.
    """

    id: object
    kernel: str
    toolchain: str
    tier: str
    window: int | None
    system: str | None
    threads: int

    @property
    def key(self) -> tuple:
        """Content fingerprint: identical questions share one answer."""
        return (self.kernel, self.toolchain, self.tier, self.window,
                self.system, self.threads)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError(message)


def parse_request(line: str) -> "PredictRequest | str":
    """Parse one protocol line into a request (or a control op name).

    Returns a :class:`PredictRequest` for predict operations and the
    bare op string (``"stats"``, ``"ping"``, ``"shutdown"``) for
    control operations.  Raises :class:`ProtocolError` on anything the
    server should answer with ``ok: false``.
    """
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.catalog import ALL_KERNEL_NAMES
    from repro.machine.systems import SYSTEMS

    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    _require(isinstance(doc, dict), "request must be a JSON object")
    op = doc.get("op", "predict")
    _require(op in OPS, f"unknown op {op!r} (expected one of {OPS})")
    if op != "predict":
        return op

    unknown = sorted(set(doc) - _PREDICT_KEYS)
    _require(not unknown, f"unknown request keys {unknown}")
    _require("kernel" in doc, "predict request needs a 'kernel'")
    kernel = doc["kernel"]
    _require(kernel in ALL_KERNEL_NAMES,
             f"unknown kernel {kernel!r} "
             f"(see repro.kernels.catalog.ALL_KERNEL_NAMES)")
    toolchain = doc.get("toolchain", "fujitsu")
    _require(isinstance(toolchain, str) and toolchain.lower() in TOOLCHAINS,
             f"unknown toolchain {toolchain!r}")
    tier = doc.get("tier", "engine")
    _require(tier in REQUEST_TIERS,
             f"tier must be one of {REQUEST_TIERS}, got {tier!r}")
    window = doc.get("window")
    if window is not None:
        _require(isinstance(window, int) and not isinstance(window, bool)
                 and window >= 1,
                 f"window must be an integer >= 1, got {window!r}")
    system = doc.get("system")
    if system is not None:
        _require(isinstance(system, str) and system.lower() in SYSTEMS,
                 f"unknown system {system!r} "
                 f"(available: {sorted(SYSTEMS)})")
        _require(tier == "ecm",
                 "'system' only applies to the ecm tier "
                 "(the engine tier models the march, not the node)")
    threads = doc.get("threads", 1)
    _require(isinstance(threads, int) and not isinstance(threads, bool)
             and threads >= 1,
             f"threads must be an integer >= 1, got {threads!r}")
    if tier == "engine":
        _require(threads == 1,
                 "the engine tier simulates one core; "
                 "use tier='ecm' for multi-core traffic scaling")
    return PredictRequest(
        id=doc.get("id"),
        kernel=kernel,
        toolchain=toolchain.lower(),
        tier=tier,
        window=window,
        system=system.lower() if system is not None else None,
        threads=threads,
    )


def predict_response(request: PredictRequest, result: dict,
                     provenance: dict) -> dict:
    """Build the ``ok: true`` response document for one request."""
    return {
        "format": PROTOCOL_FORMAT,
        "id": request.id,
        "ok": True,
        "result": result,
        "provenance": provenance,
    }


def error_response(message: str, request_id: object = None) -> dict:
    """Build the ``ok: false`` response for one failed request line."""
    return {
        "format": PROTOCOL_FORMAT,
        "id": request_id,
        "ok": False,
        "error": message,
    }
