"""Serve clients: the socket client and the load generator.

:class:`ServeClient` is the reference implementation of the
``repro.serve/1`` line protocol over a local TCP socket — one JSON
request per line out, one JSON response per line back, in order.

:func:`request_mix` builds the deterministic request workload the
throughput benchmark replays: every suite kernel x toolchain from
:mod:`repro.kernels.catalog` across both prediction tiers and several
reorder windows, with a controlled fraction of exact duplicates mixed
in (real clients repeat themselves; deduplication is a serve feature
worth measuring).  :func:`run_load` replays such a mix through N
closed-loop connections and reports wall time plus per-request
latencies — the raw material for ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field

__all__ = ["LoadResult", "ServeClient", "request_mix", "run_load"]


class ServeClient:
    """Line-protocol client for a :class:`~repro.serve.server.TcpFrontend`.

    Synchronous: :meth:`request` sends one request line and blocks for
    its response line.  Use one client per thread (the protocol answers
    a connection's lines in order, so interleaving senders on one
    socket would misattribute responses).
    """

    def __init__(self, address: tuple[str, int],
                 timeout: float | None = 120.0) -> None:
        self._sock = socket.create_connection(address, timeout=timeout)
        self._rf = self._sock.makefile("r", encoding="utf-8")
        self._wf = self._sock.makefile("w", encoding="utf-8")

    def request(self, doc: dict) -> dict:
        """One request in, one response document out."""
        self._wf.write(json.dumps(doc) + "\n")
        self._wf.flush()
        line = self._rf.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def ping(self) -> dict:
        """Round-trip a ``{"op": "ping"}`` control request."""
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        """Fetch the serve-session counters."""
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> dict:
        """Ask the daemon to stop (answered before it does)."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        """Close the connection (the daemon keeps serving others)."""
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
def request_mix(*, quick: bool = False, seed: int = 2021,
                duplicate_fraction: float = 0.3) -> list[dict]:
    """The deterministic benchmark workload, as raw request dicts.

    The base set covers kernels x toolchains across both tiers and a
    few windows; *duplicate_fraction* of additional exact repeats are
    sampled and the whole mix shuffled with ``random.Random(seed)``, so
    every run (and the naive baseline) replays the identical sequence.
    ``quick`` shrinks the grid for smoke tests and CI.
    """
    from repro.compilers.toolchains import TOOLCHAINS
    from repro.kernels.catalog import ALL_KERNEL_NAMES

    if quick:
        kernels = ("simple", "gather", "recip", "spmv_crs")
        toolchains = ("fujitsu", "gnu", "arm")
        engine_windows: tuple[int | None, ...] = (None,)
        ecm_threads: tuple[int, ...] = (1,)
    else:
        kernels = tuple(ALL_KERNEL_NAMES)
        toolchains = tuple(TOOLCHAINS)
        engine_windows = (None, 24)
        ecm_threads = (1, 4)

    base: list[dict] = []
    for kernel in kernels:
        for tc in toolchains:
            for window in engine_windows:
                req = {"kernel": kernel, "toolchain": tc, "tier": "engine"}
                if window is not None:
                    req["window"] = window
                base.append(req)
            for threads in ecm_threads:
                req = {"kernel": kernel, "toolchain": tc, "tier": "ecm"}
                if threads != 1:
                    req["threads"] = threads
                base.append(req)

    rng = random.Random(seed)
    mix = list(base)
    for _ in range(int(len(base) * duplicate_fraction)):
        mix.append(dict(rng.choice(base)))
    rng.shuffle(mix)
    for i, req in enumerate(mix):
        req["id"] = i
    return mix


@dataclass
class LoadResult:
    """What one closed-loop load run measured."""

    wall_s: float
    latencies_s: list[float] = field(default_factory=list)
    responses: list[dict] = field(default_factory=list)
    errors: int = 0

    @property
    def requests_per_s(self) -> float:
        """Completed requests divided by wall-clock seconds."""
        return len(self.latencies_s) / self.wall_s if self.wall_s else 0.0

    def percentile_ms(self, q: float) -> float:
        """The *q*-quantile (0..1) of per-request latency, in ms."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[idx] * 1e3


def run_load(address: tuple[str, int], requests: list[dict],
             concurrency: int = 1) -> LoadResult:
    """Replay *requests* through *concurrency* closed-loop connections.

    Requests are dealt round-robin to workers; each worker opens its
    own connection and issues its share one at a time (send, wait,
    send...), so *concurrency* is exactly the number of in-flight
    requests.  Latencies and responses come back indexed by the
    original request order.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    n = len(requests)
    latencies: list[float | None] = [None] * n
    responses: list[dict | None] = [None] * n
    errors = [0] * concurrency

    def worker(w: int) -> None:
        assigned = range(w, n, concurrency)
        try:
            with ServeClient(address) as client:
                for i in assigned:
                    t0 = time.perf_counter()
                    resp = client.request(requests[i])
                    latencies[i] = time.perf_counter() - t0
                    responses[i] = resp
                    errors[w] += not resp.get("ok", False)
        except Exception:
            errors[w] += sum(1 for i in assigned if responses[i] is None)

    threads = [threading.Thread(target=worker, args=(w,), daemon=True)
               for w in range(min(concurrency, max(n, 1)))]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    return LoadResult(
        wall_s=wall,
        latencies_s=[lat for lat in latencies if lat is not None],
        responses=[r for r in responses if r is not None],
        errors=sum(errors),
    )
