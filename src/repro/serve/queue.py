"""Admission queue: coalesce concurrent requests into micro-batches.

The serve tier's throughput comes from executing *batches* — the SoA
scheduling engine and the vectorized ECM tier amortize planning and
table construction across lanes, and cross-request deduplication only
helps when identical requests are in flight together.  A
:class:`MicroBatcher` makes that happen for independent clients: the
first pending request opens a **batching window** (default 2 ms), every
request arriving inside the window joins the batch, and the batch
executes when the window closes, :attr:`~MicroBatcher.max_batch`
requests accumulate, or the queue goes quiet — whichever comes first.
An idle server therefore answers a lone request with at most one
window of added latency, while a loaded server executes ever larger
batches at near-constant per-batch cost.

``max_batch=1`` (or a zero window) degenerates to strict
one-request-at-a-time execution — the serve benchmark's naive baseline
uses exactly that, so the measured speedup isolates batching + shared
caches rather than transport differences.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Sequence

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Single-consumer micro-batching queue in front of an executor.

    *execute* is called with a list of submitted items and must return
    one result per item, in order; each result resolves the matching
    :class:`~concurrent.futures.Future` returned by :meth:`submit`.
    An exception from *execute* fails every future of that batch (one
    poisoned batch never wedges the drain loop).
    """

    def __init__(self, execute: Callable[[list], Sequence], *,
                 batch_window: float = 0.002, max_batch: int = 64) -> None:
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._execute = execute
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._pending: deque[tuple[object, Future]] = deque()
        self._cond = threading.Condition()
        self._running = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drain thread (idempotent)."""
        with self._cond:
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(
            target=self._drain, name="repro-serve-batcher", daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Drain remaining requests, then stop the thread."""
        with self._cond:
            if not self._running:
                return
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "MicroBatcher":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def submit(self, item: object) -> Future:
        """Enqueue one item; the future resolves when its batch ran."""
        fut: Future = Future()
        with self._cond:
            if not self._running:
                raise RuntimeError("MicroBatcher is not running")
            self._pending.append((item, fut))
            self._cond.notify()
        return fut

    # ------------------------------------------------------------------
    def _collect(self) -> list[tuple[object, Future]] | None:
        """Block for the next batch; None when stopped and drained."""
        with self._cond:
            while self._running and not self._pending:
                self._cond.wait()
            if not self._pending:
                return None  # stopped with nothing left
            batch = [self._pending.popleft()]
            deadline = time.monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                if self._pending:
                    batch.append(self._pending.popleft())
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._running:
                    break
                self._cond.wait(remaining)
                if not self._pending:
                    # window expired (or quiet period): run what we have
                    break
            return batch

    def _drain(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            items = [item for item, _fut in batch]
            try:
                results = self._execute(items)
                if len(results) != len(items):
                    raise RuntimeError(
                        f"batch executor returned {len(results)} results "
                        f"for {len(items)} items"
                    )
            except BaseException as exc:
                for _item, fut in batch:
                    fut.set_exception(exc)
                continue
            for (_item, fut), result in zip(batch, results):
                fut.set_result(result)
