"""The prediction server: cross-request batching over shared caches.

A :class:`PredictionServer` is the long-running counterpart of the
one-shot CLIs: it keeps the process-wide schedule cache
(:mod:`repro.engine.cache`), compile cache
(:mod:`repro.compilers.cache`) and ECM memos warm across requests, and
coalesces concurrent requests through a
:class:`~repro.serve.queue.MicroBatcher` so they execute as *one*
batch:

* identical requests (same content fingerprint,
  :attr:`~repro.serve.protocol.PredictRequest.key`) **deduplicate** —
  one execution answers all of them;
* engine-tier requests run as one SoA batch
  (:func:`repro.engine.batch.schedule_batch`; sharded across a process
  pool via :func:`repro.engine.shard.schedule_batch_sharded` when the
  server was started with ``workers > 1``);
* ECM-tier requests evaluate as one vectorized array program per
  thread count (:func:`repro.ecm.batch.predict_batch`);
* every response records its provenance — whether the answer was
  already resident in this process before the batch ran (``cache``),
  whether the request coalesced onto an identical in-flight request
  (``deduped``), and how many requests its micro-batch carried
  (``batched_with``).

Bit-exactness: the batched paths carry the engine's equivalence
contract, so a served response is float-for-float identical to calling
:func:`repro.engine.scheduler.schedule_on` /
:func:`repro.ecm.model.predict_compiled` directly — including replays
answered from the warm caches (``tests/serve/test_golden.py``).

``naive=True`` builds the benchmark baseline: one-request-at-a-time
execution with **no** cross-request reuse (private compilation, uncached
scalar scheduling), so ``repro serve-bench`` measures exactly what the
serving architecture adds.

Frontends: :func:`serve_stdio` speaks the line protocol over
stdin/stdout; :class:`TcpFrontend` serves a local socket with one
handler thread per connection, all feeding the same admission queue —
which is what makes cross-*client* batching happen.

Worker pools: with ``workers > 1`` the server probes a process pool at
startup.  Where fork is unavailable the probe emits the same
:class:`~repro.engine.sweep.PoolDowngradeWarning` as the sweep runner,
downgrades batch sharding to threads, and records the effective mode in
the session stats (and :func:`~repro.engine.sweep.last_effective_mode`).
"""

from __future__ import annotations

import json
import sys
import threading
import warnings
from collections import OrderedDict
from concurrent.futures import Future
from queue import SimpleQueue

from repro.serve.protocol import (
    PROTOCOL_FORMAT,
    PredictRequest,
    ProtocolError,
    error_response,
    parse_request,
    predict_response,
)
from repro.serve.queue import MicroBatcher

__all__ = [
    "PredictionServer",
    "TcpFrontend",
    "reset_session_stats",
    "serve_stdio",
    "session_stats",
]


# ----------------------------------------------------------------------
# serve-session statistics (process-wide; `repro cache show --json` and
# the {"op": "stats"} control request both report them)
_STATS_LOCK = threading.Lock()


def _fresh_stats() -> dict:
    return {
        "requests": 0,          # predict requests admitted
        "ok": 0,                # successful predict responses
        "errors": 0,            # protocol + execution errors
        "batches": 0,           # micro-batches executed
        "batched_requests": 0,  # predict requests carried by batches
        "max_batch": 0,         # largest micro-batch seen
        "deduped": 0,           # requests answered by an identical twin
        "cache_hits": 0,        # answers resident before their batch ran
        "cache_misses": 0,
        "pool_mode": None,      # serial | thread | process (last server)
        "workers": 0,
    }


_STATS = _fresh_stats()


def session_stats() -> dict:
    """Snapshot of the serve-session counters (plain dict copy)."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_session_stats() -> dict:
    """Zero the serve-session counters; returns the previous snapshot."""
    global _STATS
    with _STATS_LOCK:
        old, _STATS = _STATS, _fresh_stats()
    return old


def _bump(**deltas) -> None:
    with _STATS_LOCK:
        for name, delta in deltas.items():
            _STATS[name] += delta


def _probe_task() -> int:
    """No-op shipped to the worker-pool probe (top-level: picklable)."""
    return 42


class _Unique:
    """One deduplicated unit of work inside a micro-batch."""

    __slots__ = ("req", "idxs", "compiled", "march", "system",
                 "cache_label", "req_idx", "row", "error")

    def __init__(self, req: PredictRequest, idxs: list[int]) -> None:
        self.req = req
        self.idxs = idxs
        self.compiled = None
        self.march = None
        self.system = None
        self.cache_label = "miss"
        self.req_idx = -1
        self.row: dict | None = None
        self.error: str | None = None


class PredictionServer:
    """Micro-batching prediction daemon over the process-wide caches.

    ``batch_window`` (seconds) and ``max_batch`` tune the admission
    queue; ``workers > 1`` shards engine-tier batch simulation across a
    process pool (probed at :meth:`start`); ``naive=True`` degenerates
    to one-request-at-a-time execution with no cross-request reuse —
    the serve benchmark's baseline.

    Use as a context manager, or :meth:`start`/:meth:`stop` explicitly.
    In-process clients call :meth:`request` (synchronous) or
    :meth:`submit_line`; network/stdio clients go through
    :class:`TcpFrontend` / :func:`serve_stdio`.
    """

    def __init__(self, *, batch_window: float = 0.002,
                 max_batch: int = 64, workers: int | None = None,
                 naive: bool = False) -> None:
        if naive:
            batch_window, max_batch = 0.0, 1
        self.naive = naive
        self.workers = workers or 1
        self._pool_mode = "serial"
        self._batcher = MicroBatcher(
            self._execute_batch,
            batch_window=batch_window, max_batch=max_batch,
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Probe the worker pool (if any) and start the batch drain."""
        if self.workers > 1 and not self.naive:
            self._pool_mode = self._probe_pool()
        else:
            self._pool_mode = "serial"
        with _STATS_LOCK:
            _STATS["pool_mode"] = self._pool_mode
            _STATS["workers"] = self.workers
        self._batcher.start()

    def stop(self) -> None:
        """Drain pending requests and stop the batch thread."""
        self._batcher.stop()

    def __enter__(self) -> "PredictionServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _probe_pool(self) -> str:
        """Confirm a process pool actually works before relying on it.

        Emits :class:`~repro.engine.sweep.PoolDowngradeWarning` (the
        same signal the sweep runner uses) and falls back to thread
        sharding when the pool cannot be created *or* its workers die
        at first use; the effective mode lands in
        :func:`~repro.engine.sweep.last_effective_mode` and the session
        stats either way.
        """
        from repro.engine.sweep import (
            PoolDowngradeWarning,
            _make_pool,
            _set_effective_mode,
        )

        pool, effective = _make_pool("process", 1)
        with pool:
            if effective == "process":
                try:
                    pool.submit(_probe_task).result(timeout=60)
                except Exception as exc:
                    warnings.warn(
                        f"process pool workers unusable ({exc}); "
                        "serve batches will shard over threads",
                        PoolDowngradeWarning, stacklevel=3,
                    )
                    effective = "thread"
        _set_effective_mode(effective)
        return effective

    # ------------------------------------------------------------------
    def submit_line(self, line: str) -> tuple[Future, str]:
        """Admit one protocol line; returns ``(future, op)``.

        The future resolves to the response document.  Control
        operations (``stats``/``ping``/``shutdown``) and protocol
        errors resolve immediately; predict requests resolve when
        their micro-batch executes.  ``op`` lets frontends react to
        ``"shutdown"`` without re-parsing the line.
        """
        try:
            parsed = parse_request(line)
        except ProtocolError as exc:
            _bump(errors=1)
            try:
                doc = json.loads(line)
                request_id = doc.get("id") if isinstance(doc, dict) else None
            except ValueError:
                request_id = None
            return _resolved(error_response(str(exc), request_id)), "error"
        if isinstance(parsed, str):
            if parsed == "stats":
                body = {"format": PROTOCOL_FORMAT, "ok": True,
                        "op": "stats", "stats": session_stats()}
            else:  # ping / shutdown just acknowledge
                body = {"format": PROTOCOL_FORMAT, "ok": True, "op": parsed}
            return _resolved(body), parsed
        _bump(requests=1)
        return self._batcher.submit(parsed), "predict"

    def request(self, doc: "dict | str") -> dict:
        """Synchronous convenience: one request in, one response out."""
        line = doc if isinstance(doc, str) else json.dumps(doc)
        fut, _op = self.submit_line(line)
        return fut.result()

    # ------------------------------------------------------------------
    def _execute_batch(self, items: list[PredictRequest]) -> list[dict]:
        try:
            if self.naive:
                return self._run_naive(items)
            return self._run_batched(items)
        except Exception as exc:  # keep one bad batch from wedging serve
            _bump(errors=len(items), batches=1, batched_requests=len(items))
            return [error_response(f"internal error: {exc}", it.id)
                    for it in items]

    def _run_batched(self, items: list[PredictRequest]) -> list[dict]:
        from repro.compilers.cache import (
            cached_compile,
            compile_key,
            get_compile_cache,
        )
        from repro.compilers.toolchains import get_toolchain
        from repro.ecm.batch import predict_batch
        from repro.engine.batch import schedule_batch
        from repro.engine.cache import (
            get_cache,
            march_fingerprint,
            stream_fingerprint,
        )
        from repro.engine.shard import schedule_batch_sharded
        from repro.kernels.catalog import build_kernel
        from repro.machine.microarch import A64FX, SKYLAKE_6140
        from repro.machine.systems import get_system
        from repro.perf.profile import default_system_for

        n = len(items)
        groups: OrderedDict[tuple, list[int]] = OrderedDict()
        for i, req in enumerate(items):
            groups.setdefault(req.key, []).append(i)
        uniques = [_Unique(items[idxs[0]], idxs)
                   for idxs in groups.values()]

        # Phase 1: compile every unique combo (content-cached), taking
        # the provenance peeks *before* any execution so "cache: hit"
        # uniformly means "resident in this process before this batch".
        scache, ccache = get_cache(), get_compile_cache()
        compiled_of: dict[tuple[str, str], tuple] = {}
        for u in uniques:
            req = u.req
            try:
                combo = (req.kernel, req.toolchain)
                hit = compiled_of.get(combo)
                if hit is None:
                    tc = get_toolchain(req.toolchain)
                    march = SKYLAKE_6140 if tc.target == "x86" else A64FX
                    loop = build_kernel(req.kernel)
                    resident = ccache.peek(compile_key(loop, tc, march))
                    hit = (cached_compile(loop, tc, march), march, resident)
                    compiled_of[combo] = hit
                u.compiled, u.march, compile_resident = hit
                if req.tier == "ecm":
                    u.system = get_system(
                        req.system or default_system_for(req.toolchain))
                    u.cache_label = "hit" if compile_resident else "miss"
                else:
                    win = (u.march.window if req.window is None
                           else req.window)
                    key = (march_fingerprint(u.march, win),
                           stream_fingerprint(u.compiled.stream))
                    u.cache_label = "hit" if scache.peek(key) else "miss"
            except Exception as exc:
                u.error = str(exc)

        # Phase 2: one schedule batch for every live unique — the
        # default-window request behind cycles_per_element plus the
        # windowed request for engine-tier answers (mirrors the batched
        # sweep path, so cache statistics stay identical to a sweep).
        requests: list[tuple] = []
        results: list = []
        for u in uniques:
            if u.error is not None:
                continue
            u.req_idx = len(requests)
            requests.append((u.march, u.compiled.stream))
            if u.req.tier == "engine":
                requests.append((u.march, u.compiled.stream, u.req.window))
        if requests:
            if self._pool_mode in ("process", "thread"):
                results = schedule_batch_sharded(
                    requests, max_workers=self.workers,
                    mode=self._pool_mode,
                )
            else:
                results = schedule_batch(requests)

        # Phase 3: compose rows; ECM uniques vectorize per thread count.
        ecm_groups: OrderedDict[int, list[_Unique]] = OrderedDict()
        for u in uniques:
            if u.error is not None:
                continue
            req = u.req
            u.compiled.__dict__["schedule"] = results[u.req_idx]
            u.row = {
                "loop": req.kernel,
                "toolchain": u.compiled.toolchain.name,
                "march": u.march.name,
                "window": (req.window if req.window is not None
                           else u.march.window),
                "tier": req.tier,
                "model_cycles_per_element": u.compiled.cycles_per_element,
            }
            if req.tier == "ecm":
                u.row["system"] = u.system.name
                u.row["threads"] = req.threads
                ecm_groups.setdefault(req.threads, []).append(u)
                continue
            sched = results[u.req_idx + 1]
            u.row.update({
                "cycles_per_iter": sched.cycles_per_iter,
                "cycles_per_element": sched.cycles_per_element,
                "ipc": sched.ipc,
                "bound": sched.bound,
            })
        for threads, members in ecm_groups.items():
            preds = predict_batch(
                [(u.compiled, u.system, u.req.window) for u in members],
                active_cores_per_domain=threads,
            )
            for u, pred in zip(members, preds):
                u.row.update({
                    "cycles_per_iter": pred.cycles_per_iter,
                    "cycles_per_element": pred.cycles_per_element,
                    "ipc": pred.incore.n_instrs / pred.cycles_per_iter,
                    "bound": pred.bound,
                })

        # Phase 4: fan results back out to every admitted request.
        out: list[dict | None] = [None] * n
        n_ok = n_err = n_hit = 0
        for u in uniques:
            for j, i in enumerate(u.idxs):
                if u.error is not None:
                    out[i] = error_response(u.error, items[i].id)
                    n_err += 1
                    continue
                out[i] = predict_response(items[i], dict(u.row), {
                    "cache": u.cache_label,
                    "deduped": j > 0,
                    "batched_with": n,
                })
                n_ok += 1
                n_hit += u.cache_label == "hit"
        with _STATS_LOCK:
            _STATS["ok"] += n_ok
            _STATS["errors"] += n_err
            _STATS["batches"] += 1
            _STATS["batched_requests"] += n
            _STATS["max_batch"] = max(_STATS["max_batch"], n)
            _STATS["deduped"] += n - len(uniques)
            _STATS["cache_hits"] += n_hit
            _STATS["cache_misses"] += n_ok - n_hit
        return out  # type: ignore[return-value]

    def _run_naive(self, items: list[PredictRequest]) -> list[dict]:
        """Baseline execution: no batching, no cross-request reuse.

        Every request pays a private compilation and uncached scalar
        scheduling/prediction — what a stateless one-shot process would
        do.  Responses are still bit-identical (the caches and batch
        paths are exact), so the serve benchmark's speedup isolates the
        serving architecture, not answer drift.
        """
        from repro.compilers.codegen import compile_loop
        from repro.compilers.toolchains import get_toolchain
        from repro.ecm.model import predict_compiled
        from repro.engine.scheduler import schedule_on
        from repro.kernels.catalog import build_kernel
        from repro.machine.microarch import A64FX, SKYLAKE_6140
        from repro.machine.systems import get_system
        from repro.perf.profile import default_system_for

        out = []
        n_ok = n_err = 0
        for req in items:
            try:
                tc = get_toolchain(req.toolchain)
                march = SKYLAKE_6140 if tc.target == "x86" else A64FX
                compiled = compile_loop(build_kernel(req.kernel), tc, march)
                compiled.__dict__["schedule"] = schedule_on(
                    march, compiled.stream, cache=False)
                row = {
                    "loop": req.kernel,
                    "toolchain": tc.name,
                    "march": march.name,
                    "window": (req.window if req.window is not None
                               else march.window),
                    "tier": req.tier,
                    "model_cycles_per_element": compiled.cycles_per_element,
                }
                if req.tier == "ecm":
                    system = get_system(
                        req.system or default_system_for(req.toolchain))
                    pred = predict_compiled(
                        compiled, system, window=req.window,
                        active_cores_per_domain=req.threads,
                    )
                    row.update({
                        "system": system.name,
                        "threads": req.threads,
                        "cycles_per_iter": pred.cycles_per_iter,
                        "cycles_per_element": pred.cycles_per_element,
                        "ipc": pred.incore.n_instrs / pred.cycles_per_iter,
                        "bound": pred.bound,
                    })
                else:
                    sched = schedule_on(
                        march, compiled.stream, req.window, cache=False)
                    row.update({
                        "cycles_per_iter": sched.cycles_per_iter,
                        "cycles_per_element": sched.cycles_per_element,
                        "ipc": sched.ipc,
                        "bound": sched.bound,
                    })
                out.append(predict_response(req, row, {
                    "cache": "miss", "deduped": False, "batched_with": 1,
                }))
                n_ok += 1
            except Exception as exc:
                out.append(error_response(str(exc), req.id))
                n_err += 1
        with _STATS_LOCK:
            _STATS["ok"] += n_ok
            _STATS["errors"] += n_err
            _STATS["batches"] += 1
            _STATS["batched_requests"] += len(items)
            _STATS["max_batch"] = max(_STATS["max_batch"], len(items))
            _STATS["cache_misses"] += n_ok
        return out


def _resolved(doc: dict) -> Future:
    fut: Future = Future()
    fut.set_result(doc)
    return fut


# ----------------------------------------------------------------------
def serve_stdio(server: PredictionServer, in_stream=None,
                out_stream=None) -> int:
    """Speak the line protocol over stdio (or any line iterables).

    Requests are admitted as they are read — responses come back in
    submission order but later lines join earlier lines' micro-batches,
    so even a piped file of requests gets cross-request batching.
    Stops at EOF or after answering ``{"op": "shutdown"}``.
    """
    in_stream = sys.stdin if in_stream is None else in_stream
    out_stream = sys.stdout if out_stream is None else out_stream
    pending: SimpleQueue = SimpleQueue()

    def _writer() -> None:
        while True:
            fut = pending.get()
            if fut is None:
                return
            try:
                doc = fut.result()
            except Exception as exc:  # pragma: no cover - defensive
                doc = error_response(f"internal error: {exc}")
            out_stream.write(json.dumps(doc) + "\n")
            out_stream.flush()

    writer = threading.Thread(target=_writer, name="repro-serve-stdio",
                              daemon=True)
    writer.start()
    for line in in_stream:
        if not line.strip():
            continue
        fut, op = server.submit_line(line)
        pending.put(fut)
        if op == "shutdown":
            break
    pending.put(None)
    writer.join()
    return 0


class TcpFrontend:
    """Serve the line protocol on a local TCP socket.

    One handler thread per connection, all submitting into the same
    server — concurrent clients coalesce into shared micro-batches.
    Binding port 0 picks a free port; :attr:`address` reports the bound
    ``(host, port)``.  A ``{"op": "shutdown"}`` from any client is
    answered, then sets :attr:`shutdown_event` (``wait()`` on it from
    the daemon's main thread).
    """

    def __init__(self, server: PredictionServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        import socket

        self.server = server
        self._sock = socket.create_server((host, port))
        self._sock.settimeout(0.2)
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self.shutdown_event = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []

    def start(self) -> None:
        """Start accepting connections (returns immediately)."""
        if self._accept_thread is not None:
            return
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True,
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        self.shutdown_event.set()
        if self._accept_thread is not None:
            self._accept_thread.join()
            self._accept_thread = None
        for t in self._conn_threads:
            t.join(timeout=5)
        self._sock.close()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a client requests shutdown (or *timeout*)."""
        return self.shutdown_event.wait(timeout)

    def __enter__(self) -> "TcpFrontend":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        import socket

        while not self.shutdown_event.is_set():
            try:
                conn, _peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(
                target=self._handle, args=(conn,),
                name="repro-serve-conn", daemon=True,
            )
            t.start()
            self._conn_threads.append(t)

    def _handle(self, conn) -> None:
        with conn:
            rf = conn.makefile("r", encoding="utf-8")
            wf = conn.makefile("w", encoding="utf-8")
            for line in rf:
                if not line.strip():
                    continue
                fut, op = self.server.submit_line(line)
                try:
                    doc = fut.result()
                except Exception as exc:  # pragma: no cover - defensive
                    doc = error_response(f"internal error: {exc}")
                try:
                    wf.write(json.dumps(doc) + "\n")
                    wf.flush()
                except OSError:
                    return  # client went away mid-response
                if op == "shutdown":
                    self.shutdown_event.set()
                    return
