"""Serve throughput benchmark: ``repro serve-bench`` -> BENCH_serve.json.

Measures what the serving architecture adds over one-shot execution:

1. **Naive baseline** — a :class:`~repro.serve.server.PredictionServer`
   in ``naive`` mode behind the same TCP frontend: one request at a
   time, private compilation, uncached scalar scheduling.  This is the
   stateless process-per-request deployment the paper's sweep tooling
   started from, measured over the identical transport so the ratio
   isolates batching + shared caches + dedup rather than socket costs.
2. **Batched server** at several closed-loop concurrency levels —
   cross-request micro-batching, content-addressed caches, in-flight
   deduplication, the SoA engine batch and vectorized ECM tier.

Each level starts from cold process caches (schedule, compile, batch
tables, ECM memos, session counters), so per-level numbers are
reproducible and the *within-level* reuse is exactly the serving
feature being scored.  The payload (format ``repro.serve-bench/1``)
records requests/sec and p50/p99 latency per level plus batching and
dedup efficiency from the session counters, and the run fails (non-zero
exit) if best-level throughput does not beat the naive baseline by
:data:`SERVE_SPEEDUP_FLOOR` (:data:`SERVE_SPEEDUP_FLOOR_QUICK` for
``--quick``), if any request errors, or if any batched response
deviates from its naive twin — bit-identical answers are part of the
contract, not just speed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.serve.client import LoadResult, request_mix, run_load
from repro.serve.server import (
    PredictionServer,
    TcpFrontend,
    reset_session_stats,
    session_stats,
)

__all__ = [
    "BENCH_FORMAT",
    "CONCURRENCY_LEVELS",
    "CONCURRENCY_LEVELS_QUICK",
    "SERVE_SPEEDUP_FLOOR",
    "SERVE_SPEEDUP_FLOOR_QUICK",
    "main",
    "render",
    "run_bench",
]

BENCH_FORMAT = "repro.serve-bench/1"

#: best-level batched throughput must beat the naive baseline by this
SERVE_SPEEDUP_FLOOR = 5.0
#: smoke floor for ``--quick`` (tiny mix, cold caches, CI containers)
SERVE_SPEEDUP_FLOOR_QUICK = 2.0

#: closed-loop client counts per measured level
CONCURRENCY_LEVELS = (1, 8, 32)
CONCURRENCY_LEVELS_QUICK = (1, 4, 8)


def _reset_process_state() -> None:
    """Cold-start every cross-request reuse layer (and the counters)."""
    from repro.compilers.cache import get_compile_cache
    from repro.ecm.batch import clear_ecm_memos
    from repro.engine.batch import clear_tables
    from repro.engine.cache import get_cache

    get_cache().clear()
    get_compile_cache().clear()
    clear_tables()
    clear_ecm_memos()
    reset_session_stats()


def _measure(mix: list[dict], concurrency: int, *,
             naive: bool) -> tuple[LoadResult, dict]:
    """One cold-cache load run; returns (load result, session stats)."""
    _reset_process_state()
    server = PredictionServer(naive=naive)
    with server:
        with TcpFrontend(server) as frontend:
            result = run_load(frontend.address, mix, concurrency)
    return result, session_stats()


def _level_doc(concurrency: int, result: LoadResult, stats: dict) -> dict:
    batches = stats["batches"] or 1
    return {
        "concurrency": concurrency,
        "requests": len(result.responses),
        "wall_s": round(result.wall_s, 4),
        "rps": round(result.requests_per_s, 1),
        "p50_ms": round(result.percentile_ms(0.50), 3),
        "p99_ms": round(result.percentile_ms(0.99), 3),
        "errors": result.errors,
        "batches": stats["batches"],
        "avg_batch": round(stats["batched_requests"] / batches, 2),
        "max_batch": stats["max_batch"],
        "deduped": stats["deduped"],
        "cache_hits": stats["cache_hits"],
        "cache_misses": stats["cache_misses"],
    }


def run_bench(*, quick: bool = False) -> dict:
    """Run the full benchmark; returns the ``repro.serve-bench/1`` doc."""
    mix = request_mix(quick=quick)
    levels = CONCURRENCY_LEVELS_QUICK if quick else CONCURRENCY_LEVELS
    floor = SERVE_SPEEDUP_FLOOR_QUICK if quick else SERVE_SPEEDUP_FLOOR

    naive_result, naive_stats = _measure(mix, 1, naive=True)
    naive_doc = _level_doc(1, naive_result, naive_stats)
    golden = {r["id"]: r["result"] for r in naive_result.responses
              if r.get("ok")}

    level_docs = []
    mismatches = 0
    total_errors = naive_result.errors
    for concurrency in levels:
        result, stats = _measure(mix, concurrency, naive=False)
        level_docs.append(_level_doc(concurrency, result, stats))
        total_errors += result.errors
        for resp in result.responses:
            if resp.get("ok"):
                mismatches += golden.get(resp["id"]) != resp["result"]
            # errors are already counted; nothing to compare against

    best_rps = max(d["rps"] for d in level_docs)
    naive_rps = naive_doc["rps"]
    speedup = round(best_rps / naive_rps, 2) if naive_rps else float("inf")
    acceptance = {
        "equivalence_pass": mismatches == 0,
        "errors_pass": total_errors == 0,
        "speedup_floor": floor,
        "speedup_pass": speedup >= floor,
    }
    acceptance["pass"] = all(
        acceptance[k] for k in
        ("equivalence_pass", "errors_pass", "speedup_pass")
    )
    return {
        "format": BENCH_FORMAT,
        "quick": quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "requests": len(mix),
        "unique_requests": len({json.dumps(
            {k: v for k, v in r.items() if k != "id"}, sort_keys=True)
            for r in mix}),
        "naive": naive_doc,
        "levels": level_docs,
        "best_rps": best_rps,
        "speedup_vs_naive": speedup,
        "mismatches": mismatches,
        "acceptance": acceptance,
    }


def render(doc: dict) -> str:
    """Format one serve benchmark document as an aligned text table."""
    acc = doc["acceptance"]
    lines = [
        f"serve bench ({doc['requests']} requests, "
        f"{doc['unique_requests']} unique"
        f"{', quick' if doc['quick'] else ''})",
        f"  {'level':<12} {'rps':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'avg batch':>9} {'deduped':>8}",
    ]
    naive = doc["naive"]
    lines.append(
        f"  {'naive c=1':<12} {naive['rps']:>8.1f} {naive['p50_ms']:>8.2f} "
        f"{naive['p99_ms']:>8.2f} {naive['avg_batch']:>9.2f} "
        f"{naive['deduped']:>8}")
    for lvl in doc["levels"]:
        name = f"batched c={lvl['concurrency']}"
        lines.append(
            f"  {name:<12} {lvl['rps']:>8.1f} {lvl['p50_ms']:>8.2f} "
            f"{lvl['p99_ms']:>8.2f} {lvl['avg_batch']:>9.2f} "
            f"{lvl['deduped']:>8}")
    lines.append(
        f"  speedup vs naive    : {doc['speedup_vs_naive']:.2f}x "
        f"(floor {acc['speedup_floor']:.1f}x) "
        f"{'PASS' if acc['speedup_pass'] else 'FAIL'}")
    lines.append(
        f"  response equivalence: "
        f"{'PASS' if acc['equivalence_pass'] else 'FAIL'} "
        f"({doc['mismatches']} mismatches)")
    lines.append(
        f"  request errors      : "
        f"{'PASS' if acc['errors_pass'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    """CLI entry point for ``python -m repro serve-bench``."""
    quick = "--quick" in argv
    args = [a for a in argv if a != "--quick"]
    out = Path("BENCH_serve.json")
    if "--out" in args:
        i = args.index("--out")
        if i + 1 >= len(args):
            print("serve-bench: --out expects a path")
            return 1
        out = Path(args[i + 1])
        del args[i:i + 2]
    if args:
        print(f"serve-bench: unknown arguments {args}")
        print("usage: python -m repro serve-bench [--quick] [--out PATH]")
        return 1
    doc = run_bench(quick=quick)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(render(doc))
    print(f"wrote {out}")
    return 0 if doc["acceptance"]["pass"] else 1
