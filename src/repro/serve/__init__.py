"""Simulation-as-a-service: the persistent prediction server.

One-shot CLIs pay compilation, table construction and scheduler
warm-up per invocation; design-space tooling that asks one question at
a time throws the process-wide caches away every time.  This package
keeps them alive: a long-running :class:`~repro.serve.server.
PredictionServer` accepts JSON prediction requests over a local socket
or stdin/stdout (:mod:`repro.serve.protocol`), coalesces concurrent
requests into micro-batches (:mod:`repro.serve.queue`), deduplicates
identical work in flight, and executes engine-tier batches through the
SoA scheduling engine and ECM-tier batches through the vectorized
analytical model — returning versioned ``repro.serve/1`` responses
with per-request cache/batch provenance.

``python -m repro serve`` runs the daemon, ``python -m repro
serve-bench`` (:mod:`repro.serve.bench`) measures the resulting
throughput against a no-reuse baseline and writes ``BENCH_serve.json``.
See ``docs/SERVING.md``.
"""

from repro.serve.client import (
    LoadResult,
    ServeClient,
    request_mix,
    run_load,
)
from repro.serve.protocol import (
    PROTOCOL_FORMAT,
    PredictRequest,
    ProtocolError,
    parse_request,
)
from repro.serve.queue import MicroBatcher
from repro.serve.server import (
    PredictionServer,
    TcpFrontend,
    reset_session_stats,
    serve_stdio,
    session_stats,
)

__all__ = [
    "LoadResult",
    "MicroBatcher",
    "PROTOCOL_FORMAT",
    "PredictRequest",
    "PredictionServer",
    "ProtocolError",
    "ServeClient",
    "TcpFrontend",
    "parse_request",
    "request_mix",
    "reset_session_stats",
    "run_load",
    "serve_stdio",
    "session_stats",
]
