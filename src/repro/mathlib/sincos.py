"""Vectorized sine via quadrant reduction + odd/even Taylor kernels.

The ``sin`` loop of the paper's math-function suite (Fig. 2).  Algorithm:

1. Cody–Waite reduction: ``n = rint(x * 2/pi)``, ``r = x - n*pi/2`` with a
   three-constant split of ``pi/2`` so the reduction stays accurate for
   ``|x|`` up to ~1e6 (the paper's kernels use L1-resident operands, far
   inside that range; huge-argument Payne–Hanek reduction is out of scope
   and documented as such).
2. Quadrant dispatch on ``n mod 4``: ``sin(r)``, ``cos(r)``, ``-sin(r)``,
   ``-cos(r)`` — in vector code this is the predicated-select pattern the
   paper's predicate kernel exercises.
3. Polynomial kernels on ``|r| <= pi/4``: odd Taylor to degree 17 for sin,
   even to degree 16 for cos (truncation below 1 ULP at the interval edge).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["sin_poly", "cos_poly", "SIN_DEGREE", "COS_DEGREE", "MAX_ABS_ARG"]

# pi/2 split into three parts; the top parts have enough trailing zeros
# that n * part is exact for |n| < 2**20.
_PIO2_HI = float.fromhex("0x1.921fb54400000p+0")
_PIO2_MID = float.fromhex("0x1.0b4611a600000p-34")
_PIO2_LO = float.fromhex("0x1.3198a2e037073p-69")
_TWO_OVER_PI = float.fromhex("0x1.45f306dc9c883p-1")

SIN_DEGREE = 17
COS_DEGREE = 16
#: beyond this the three-constant reduction loses accuracy
MAX_ABS_ARG = 1.0e6

_SIN_COEFFS = np.array(
    [(-1.0) ** k / math.factorial(2 * k + 1) for k in range((SIN_DEGREE + 1) // 2)]
)
_COS_COEFFS = np.array(
    [(-1.0) ** k / math.factorial(2 * k) for k in range(COS_DEGREE // 2 + 1)]
)


def _poly_even(coeffs: np.ndarray, r2: np.ndarray) -> np.ndarray:
    acc = np.full_like(r2, coeffs[-1])
    for c in coeffs[-2::-1]:
        acc = acc * r2 + c
    return acc


def _reduce(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    with np.errstate(invalid="ignore"):  # inf/NaN lanes masked by callers
        n = np.rint(np.where(np.isfinite(x), x, 0.0) * _TWO_OVER_PI)
        r = ((x - n * _PIO2_HI) - n * _PIO2_MID) - n * _PIO2_LO
    return r, n.astype(np.int64)


def sin_poly(x: np.ndarray) -> np.ndarray:
    """Vectorized ``sin`` accurate to ~2 ULP for ``|x| <= MAX_ABS_ARG``."""
    x = np.asarray(x, dtype=np.float64)
    if np.any(np.abs(x[np.isfinite(x)]) > MAX_ABS_ARG):
        raise ValueError(
            f"sin_poly supports |x| <= {MAX_ABS_ARG:g}; larger arguments "
            "need Payne-Hanek reduction (out of scope, see module docs)"
        )
    r, n = _reduce(x)
    r2 = r * r
    s = r * _poly_even(_SIN_COEFFS, r2)
    c = _poly_even(_COS_COEFFS, r2)
    q = n & 3
    y = np.where(q == 0, s, 0.0)
    y = np.where(q == 1, c, y)
    y = np.where(q == 2, -s, y)
    y = np.where(q == 3, -c, y)
    return np.where(np.isnan(x) | np.isinf(x), np.nan, y)


def cos_poly(x: np.ndarray) -> np.ndarray:
    """Vectorized ``cos`` via the same reduction (quadrant-shifted)."""
    x = np.asarray(x, dtype=np.float64)
    if np.any(np.abs(x[np.isfinite(x)]) > MAX_ABS_ARG):
        raise ValueError(f"cos_poly supports |x| <= {MAX_ABS_ARG:g}")
    r, n = _reduce(x)
    r2 = r * r
    s = r * _poly_even(_SIN_COEFFS, r2)
    c = _poly_even(_COS_COEFFS, r2)
    q = n & 3
    y = np.where(q == 0, c, 0.0)
    y = np.where(q == 1, -s, y)
    y = np.where(q == 2, -c, y)
    y = np.where(q == 3, s, y)
    return np.where(np.isnan(x) | np.isinf(x), np.nan, y)
