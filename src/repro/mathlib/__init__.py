"""Vector math kernels: the real numerics behind Section IV of the paper.

Unlike the machine model (which predicts *cycles*), everything here
computes *values*: these are genuine numpy implementations of the
algorithms the paper discusses, validated in ULPs against the fully
rounded references.

* :mod:`repro.mathlib.ulp` — units-in-the-last-place error measurement.
* :mod:`repro.mathlib.polynomial` — Horner and Estrin evaluation schemes.
* :mod:`repro.mathlib.exp` — the exponential: the plain 13-term
  range-reduction algorithm and the ``FEXPA``-accelerated 5-term variant
  (Section IV), with bit-exact emulation of the FEXPA instruction.
* :mod:`repro.mathlib.newton` — reciprocal and reciprocal-sqrt from
  8-bit hardware-style estimates refined by Newton–Raphson (the
  Fujitsu/Cray strategy vs the blocking FSQRT the GNU/ARM compilers pick).
* :mod:`repro.mathlib.log`, :mod:`repro.mathlib.sincos`,
  :mod:`repro.mathlib.power` — the remaining Section III math functions.
* :mod:`repro.mathlib.vectormath` — the recipe registry binding each
  toolchain's library algorithm to (a) an instruction-sequence builder for
  the performance model and (b) the numpy implementation.
* :mod:`repro.mathlib.rng` — a vectorizable counter-based RNG (the
  "manual call to a vectorized random number generator" of Section III).
"""

from repro.mathlib.ulp import ulp_diff, max_ulp_error
from repro.mathlib.polynomial import horner, estrin
from repro.mathlib.exp import exp_fexpa, exp_plain, fexpa_emulate
from repro.mathlib.newton import recip_newton, rsqrt_newton, sqrt_newton
from repro.mathlib.log import log_poly
from repro.mathlib.sincos import sin_poly
from repro.mathlib.power import pow_explog
from repro.mathlib.rng import VectorRng

__all__ = [
    "ulp_diff",
    "max_ulp_error",
    "horner",
    "estrin",
    "exp_fexpa",
    "exp_plain",
    "fexpa_emulate",
    "recip_newton",
    "rsqrt_newton",
    "sqrt_newton",
    "log_poly",
    "sin_poly",
    "pow_explog",
    "VectorRng",
]
