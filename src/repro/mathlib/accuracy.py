"""Math-library accuracy study — the paper's announced follow-up.

"Finally, we note that a complete evaluation of math library performance
must include accuracy, which will be the topic of another paper."
(Sec. III.)  This module *is* that evaluation for the library models in
this reproduction: it sweeps every (toolchain, function) implementation
over stratified test domains and reports maximum/mean ULP error, domain
edge behaviour, and the speed-accuracy frontier (cycles/element vs ULP).

Everything here is measured, not modeled: the implementations are the
real numpy kernels behind each library recipe, and the references are
numpy's correctly-rounded-to-double libm bindings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro._util import require_positive
from repro.mathlib.ulp import max_ulp_error, mean_ulp_error

__all__ = [
    "AccuracyResult",
    "DOMAINS",
    "accuracy_sweep",
    "speed_accuracy_frontier",
]

#: per-function test domains: (label, sampler(rng, n))
DOMAINS: Mapping[str, Sequence[tuple[str, Callable]]] = {
    "exp": (
        ("core [-1, 1]", lambda r, n: r.uniform(-1.0, 1.0, n)),
        ("wide [-700, 700]", lambda r, n: r.uniform(-700.0, 700.0, n)),
        ("near overflow", lambda r, n: r.uniform(700.0, 709.7, n)),
        ("tiny args", lambda r, n: r.uniform(-1e-8, 1e-8, n)),
    ),
    "log": (
        ("core [0.1, 10]", lambda r, n: r.uniform(0.1, 10.0, n)),
        ("near one", lambda r, n: 1.0 + r.uniform(-1e-6, 1e-6, n)),
        ("full range", lambda r, n: 10.0 ** r.uniform(-300, 300, n)),
    ),
    "sin": (
        ("core [-pi, pi]", lambda r, n: r.uniform(-np.pi, np.pi, n)),
        ("reduced [-1e4, 1e4]", lambda r, n: r.uniform(-1e4, 1e4, n)),
    ),
    "recip": (
        ("core [0.1, 10]", lambda r, n: r.uniform(0.1, 10.0, n)),
        ("full range", lambda r, n: 10.0 ** r.uniform(-300, 300, n)),
    ),
    "sqrt": (
        ("core [0.1, 10]", lambda r, n: r.uniform(0.1, 10.0, n)),
        ("full range", lambda r, n: 10.0 ** r.uniform(-300, 300, n)),
    ),
    "pow(x, 1.5)": (
        ("core [0.1, 10]", lambda r, n: r.uniform(0.1, 10.0, n)),
        ("wide [1e-50, 1e50]", lambda r, n: 10.0 ** r.uniform(-50, 50, n)),
    ),
}

#: implementation catalog: function -> {impl label: (callable, reference)}
def _implementations() -> Mapping[str, Mapping[str, tuple[Callable, Callable]]]:
    from repro.mathlib.exp import exp_fexpa, exp_plain
    from repro.mathlib.log import log_poly
    from repro.mathlib.newton import recip_newton, sqrt_newton
    from repro.mathlib.power import pow_explog
    from repro.mathlib.sincos import sin_poly

    return {
        "exp": {
            "fexpa-5term (fujitsu)": (lambda x: exp_fexpa(x), np.exp),
            "fexpa-refined": (lambda x: exp_fexpa(x, refined=True), np.exp),
            "plain-13term (cray/arm)": (lambda x: exp_plain(x), np.exp),
            "plain-8term (fast-math)": (
                lambda x: exp_plain(x, terms=8), np.exp),
        },
        "log": {
            "atanh-series": (log_poly, np.log),
        },
        "sin": {
            "quadrant-poly": (sin_poly, np.sin),
        },
        "recip": {
            "newton-3step": (lambda x: recip_newton(x, steps=3),
                             lambda x: 1.0 / x),
            "newton-2step (fast-math)": (lambda x: recip_newton(x, steps=2),
                                         lambda x: 1.0 / x),
        },
        "sqrt": {
            "newton-3step": (lambda x: sqrt_newton(x, steps=3), np.sqrt),
            "newton-2step (fast-math)": (lambda x: sqrt_newton(x, steps=2),
                                         np.sqrt),
        },
        "pow(x, 1.5)": {
            "double-double log": (
                lambda x: pow_explog(x, 1.5, accurate=True),
                lambda x: np.power(x, 1.5)),
            "fast exp(y*log x)": (
                lambda x: pow_explog(x, 1.5, accurate=False),
                lambda x: np.power(x, 1.5)),
        },
    }


@dataclass(frozen=True)
class AccuracyResult:
    """One (function, implementation, domain) accuracy measurement."""

    function: str
    implementation: str
    domain: str
    samples: int
    max_ulp: float
    mean_ulp: float

    def as_row(self) -> dict:
        """Plain-dict form used by the report tables."""
        return {
            "function": self.function,
            "implementation": self.implementation,
            "domain": self.domain,
            "max_ulp": self.max_ulp,
            "mean_ulp": round(self.mean_ulp, 4),
        }


def accuracy_sweep(
    samples: int = 200_000, seed: int = 2021,
    functions: Sequence[str] | None = None,
) -> list[AccuracyResult]:
    """Measure every implementation over every domain.

    Returns one :class:`AccuracyResult` per (function, impl, domain)
    triple; this is the raw data of the paper's promised accuracy study.
    """
    require_positive(samples, "samples")
    impls = _implementations()
    names = list(impls) if functions is None else list(functions)
    rng = np.random.default_rng(seed)
    out: list[AccuracyResult] = []
    for fn in names:
        if fn not in impls:
            raise KeyError(f"unknown function {fn!r}; have {sorted(impls)}")
        for domain_label, sampler in DOMAINS[fn]:
            x = sampler(rng, samples)
            for impl_label, (impl, ref) in impls[fn].items():
                got = impl(x)
                exact = ref(x)
                out.append(
                    AccuracyResult(
                        function=fn,
                        implementation=impl_label,
                        domain=domain_label,
                        samples=samples,
                        max_ulp=max_ulp_error(got, exact),
                        mean_ulp=mean_ulp_error(got, exact),
                    )
                )
    return out


def speed_accuracy_frontier(samples: int = 100_000) -> list[dict]:
    """The trade-off the paper gestures at: cycles/element (A64FX model)
    against measured max ULP, for the exponential variants."""
    from repro.bench.figures import sec4_exp_study

    rows = sec4_exp_study(ulp_samples=samples)
    frontier = [
        {
            "impl": r["impl"],
            "cycles_per_elem": r["cycles_per_elem"],
            "max_ulp": r["max_ulp"],
        }
        for r in rows
        if np.isfinite(r["max_ulp"])
    ]
    return sorted(frontier, key=lambda r: r["cycles_per_elem"])
