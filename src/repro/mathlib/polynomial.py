"""Polynomial evaluation schemes: Horner vs Estrin.

Section IV of the paper: "Empirically, the Estrin form for the polynomial
that reveals more parallelism at the expense of more multiplications is
slightly faster than the Horner form."  Horner is a single serial chain of
FMAs (degree-many, each 9 cycles on A64FX); Estrin halves the chain depth
by pairing terms at the cost of extra squarings.

Both evaluators here are real numpy implementations used by the exp/sin/
log kernels; :func:`estrin_depth` and :func:`horner_depth` expose the
dependence-chain lengths the performance model relies on.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["horner", "estrin", "horner_depth", "estrin_depth"]


def _check(coeffs: Sequence[float]) -> np.ndarray:
    c = np.asarray(coeffs, dtype=np.float64)
    if c.ndim != 1 or c.size == 0:
        raise ValueError("coeffs must be a non-empty 1-D sequence")
    return c


def horner(coeffs: Sequence[float], x: np.ndarray) -> np.ndarray:
    """Evaluate ``sum(coeffs[k] * x**k)`` by Horner's rule.

    ``coeffs`` are in ascending-degree order.  One FMA per degree, each
    depending on the previous — the maximally serial scheme.
    """
    c = _check(coeffs)
    x = np.asarray(x, dtype=np.float64)
    acc = np.full_like(x, c[-1])
    for k in range(c.size - 2, -1, -1):
        acc = acc * x + c[k]
    return acc


def estrin(coeffs: Sequence[float], x: np.ndarray) -> np.ndarray:
    """Evaluate the polynomial by Estrin's scheme.

    Adjacent coefficient pairs combine as ``c[2k] + c[2k+1]*x`` in
    parallel; the pairs then combine with powers ``x^2, x^4, ...`` in a
    logarithmic-depth tree.  More multiplies than Horner, ~half the
    dependence depth.
    """
    c = _check(coeffs)
    x = np.asarray(x, dtype=np.float64)
    # level 0: pair up coefficients
    terms = [
        np.full_like(x, c[k]) if k + 1 >= c.size else c[k] + c[k + 1] * x
        for k in range(0, c.size, 2)
    ]
    power = x * x
    while len(terms) > 1:
        nxt = []
        for k in range(0, len(terms), 2):
            if k + 1 < len(terms):
                nxt.append(terms[k] + terms[k + 1] * power)
            else:
                nxt.append(terms[k])
        terms = nxt
        power = power * power
    return terms[0]


def horner_depth(degree: int) -> int:
    """FMA dependence-chain length of Horner evaluation."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    return degree


def estrin_depth(degree: int) -> int:
    """Dependence-chain length (in FMA-equivalents) of Estrin evaluation:
    one pairing FMA plus one combine per tree level, plus the x^2 chain."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    if degree == 0:
        return 0
    n_terms = degree + 1
    levels = math.ceil(math.log2(math.ceil(n_terms / 2))) if n_terms > 2 else 0
    return 1 + levels + 1  # pair FMA + combine tree + first squaring
