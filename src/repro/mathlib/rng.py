"""Counter-based vectorizable random number generation.

Section III: "a manual call to a vectorized random number generator is
still necessary" — sequential LCG-style generators carry a loop
dependence, so vector code wants a *counter-based* generator where sample
``i`` is a pure hash of ``i``.  :class:`VectorRng` implements the
splitmix64 finalizer over a counter stream: stateless per element,
arbitrarily skippable (each thread/lane takes a disjoint counter range),
and good enough statistically for Monte Carlo integration (the test suite
checks moments and bit balance).
"""

from __future__ import annotations

import numpy as np

__all__ = ["VectorRng", "splitmix64"]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(counters: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer applied element-wise to uint64 counters."""
    z = np.asarray(counters, dtype=np.uint64) + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _M1
    z = (z ^ (z >> np.uint64(27))) * _M2
    return z ^ (z >> np.uint64(31))


class VectorRng:
    """A skippable counter-based uniform generator.

    Parameters
    ----------
    seed:
        Mixed into every counter, so distinct seeds give independent
        streams.
    start:
        Initial counter (lets threads carve disjoint sub-streams:
        ``VectorRng(seed, start=rank * chunk)``).
    """

    def __init__(self, seed: int = 0, start: int = 0) -> None:
        if seed < 0 or start < 0:
            raise ValueError("seed and start must be non-negative")
        self._seed = np.uint64(seed * 0x9E3779B97F4A7C15 % (1 << 64))
        self._counter = np.uint64(start)

    @property
    def position(self) -> int:
        """Current counter position (number of values consumed)."""
        return int(self._counter)

    def skip(self, n: int) -> None:
        """Advance the stream by *n* values without generating them."""
        if n < 0:
            raise ValueError("cannot skip backwards")
        self._counter = np.uint64(int(self._counter) + n)

    def raw(self, n: int) -> np.ndarray:
        """*n* raw uint64 values."""
        if n <= 0:
            raise ValueError("n must be positive")
        ctrs = np.arange(int(self._counter), int(self._counter) + n,
                         dtype=np.uint64)
        self._counter = np.uint64(int(self._counter) + n)
        return splitmix64(ctrs ^ self._seed)

    def uniform(self, n: int) -> np.ndarray:
        """*n* float64 samples uniform on ``[0, 1)`` (top 53 bits)."""
        bits = self.raw(n) >> np.uint64(11)
        return bits.astype(np.float64) * (1.0 / (1 << 53))

    def uniform_pairs(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Two independent uniform vectors of length *n* (for polar
        methods that consume pairs)."""
        u = self.uniform(2 * n)
        return u[0::2].copy(), u[1::2].copy()
