"""``pow(x, y) = exp(y * log x)`` — the Section III ``pow`` loop.

Vector libraries build ``pow`` from their ``log`` and ``exp`` kernels.
The catch is error amplification: a 1-ULP error in ``log x`` becomes a
``y*log(x)``-scaled *absolute* error in the exponent, i.e. roughly
``y * log(x)`` ULPs in the result.  That is why accurate ``pow`` kernels
carry ``log x`` in double-double (head + tail) — and why sleef-style
accurate ``pow`` costs the ~10x the paper observes for the ARM library.

Two variants:

* :func:`pow_explog` (``accurate=True``) — double-double log, |error|
  within a few ULP for the moderate domain the suite uses.
* ``accurate=False`` — plain composition ``exp_fexpa(y*log_poly(x))``,
  faster but with the documented amplified error.
"""

from __future__ import annotations

import numpy as np

from repro.mathlib.exp import EXP_OVERFLOW, EXP_UNDERFLOW, exp_fexpa, exp_plain
from repro.mathlib.log import log_dd, log_poly

__all__ = ["pow_explog"]


def pow_explog(
    x: np.ndarray, y: np.ndarray | float, *, accurate: bool = True
) -> np.ndarray:
    """``x ** y`` for positive *x* via exp/log composition.

    Negative bases are NaN (integer-exponent special cases are a scalar
    fix-up path in real libraries, irrelevant to the vector-kernel study);
    ``x == 0`` gives 0 for ``y > 0``, ``inf`` for ``y < 0``, 1 for
    ``y == 0``.
    """
    x = np.asarray(x, dtype=np.float64)
    y_arr = np.broadcast_to(np.asarray(y, dtype=np.float64), x.shape)
    pos = x > 0
    xs = np.where(pos, x, 1.0)

    if accurate:
        hi, lo = log_dd(xs)
        # t = y*log(x) in double-double, re-rounded through longdouble
        ld = np.longdouble
        t_ext = y_arr.astype(ld) * (hi.astype(ld) + lo.astype(ld))
        t_hi = t_ext.astype(np.float64)
        t_lo = (t_ext - t_hi.astype(ld)).astype(np.float64)
        base = exp_plain(np.clip(t_hi, EXP_UNDERFLOW - 1, EXP_OVERFLOW + 1))
        # first-order correction: exp(hi+lo) = exp(hi)*(1+lo)
        out = base * (1.0 + t_lo)
    else:
        t = y_arr * log_poly(xs)
        out = exp_fexpa(np.clip(t, EXP_UNDERFLOW - 1, EXP_OVERFLOW + 1))

    with np.errstate(invalid="ignore"):
        out = np.where(pos, out, np.nan)
        zero = x == 0.0
        out = np.where(zero & (y_arr > 0), 0.0, out)
        out = np.where(zero & (y_arr < 0), np.inf, out)
        out = np.where(y_arr == 0.0, 1.0, out)
        out = np.where(np.isnan(x) | np.isnan(y_arr), np.nan, out)
        out = np.where((x == 1.0), 1.0, out)
    return out
