"""The vectorized exponential function of Section IV.

Two real algorithms, both implemented with numpy primitives that map 1:1
onto SVE instructions:

* :func:`exp_plain` — the "standard approach": find integer ``m`` and
  residual ``|r| < log(2)/2`` with ``x = m*log2 + r``; exponentiate ``r``
  with a 13-term series; multiply by ``2**m`` via the binary exponent.
  This is the Cray/ARM-class algorithm.
* :func:`exp_fexpa` — the SVE ``FEXPA``-accelerated variant the paper
  develops: write ``x = (m + i/64)*log2 + r`` with ``0 <= i < 64`` and
  ``|r| < log(2)/128``; ``FEXPA`` produces ``2**(m + i/64)`` from 17 input
  bits (``i`` in the low 6, ``m + 1023`` above), so only a 5-term
  polynomial in ``r`` remains.  :func:`fexpa_emulate` reproduces the
  instruction bit-exactly from its documented semantics.

Both use Cody–Waite two-constant range reduction (the high part of
``log 2`` has 32 trailing zero bits, so ``n * ln2_hi`` is exact for the
relevant ``n``), support Horner or Estrin polynomial evaluation, and
handle the edges the paper's prototype skipped (overflow to ``inf``,
underflow to ``0``, NaN propagation).

Accuracy (validated by the test suite):

* ``exp_plain``  — <= 2 ULP over the full double range.
* ``exp_fexpa``  — ~6 ULP ("about 6 ulp precision", Sec. IV) with the
  plain final multiply; <= 2 ULP with ``refined=True``, modelling the
  paper's "correcting the last FMA operation" at an estimated extra
  0.25 cycles/element.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.mathlib.polynomial import estrin, horner

__all__ = [
    "exp_plain",
    "exp_fexpa",
    "fexpa_emulate",
    "EXP_OVERFLOW",
    "EXP_UNDERFLOW",
    "PLAIN_TERMS",
    "FEXPA_TERMS",
]

#: inputs above this overflow double precision (exp(x) > DBL_MAX)
EXP_OVERFLOW = 709.782712893384
#: inputs below this underflow to zero (even subnormal)
EXP_UNDERFLOW = -745.1332191019412
#: FEXPA's biased exponent cannot go below -1023, so the FEXPA kernel
#: flushes would-be-subnormal results to zero — matching the flush-to-zero
#: mode the ``-Kfast`` / ``-ffast-math`` flags of Table I enable anyway.
FEXPA_UNDERFLOW = -708.0

# log(2) split so the high part has 32 trailing zero bits: n*_LN2_HI is
# exact for |n| < 2**20, making the reduction r = x - n*ln2 correct to a
# rounding of the low part only.
_LN2_HI = float.fromhex("0x1.62e42fee00000p-1")
_LN2_LO = float.fromhex("0x1.a39ef35793c76p-33")
_INV_LN2 = float.fromhex("0x1.71547652b82fep+0")

#: polynomial degree of the plain algorithm ("13 terms being required")
PLAIN_TERMS = 13
#: polynomial degree of the FEXPA algorithm ("reducing ... to 5")
FEXPA_TERMS = 5

_FACTORIAL_COEFFS = [1.0]
for _k in range(1, PLAIN_TERMS + 1):
    _FACTORIAL_COEFFS.append(_FACTORIAL_COEFFS[-1] / _k)

#: FEXPA's internal ROM: correctly rounded 2**(i/64) for i = 0..63
_FEXPA_TABLE = np.exp2(np.arange(64, dtype=np.float64) / 64.0)

Scheme = Literal["horner", "estrin"]


def _eval_poly(coeffs: list[float], r: np.ndarray, scheme: Scheme) -> np.ndarray:
    if scheme == "horner":
        return horner(coeffs, r)
    if scheme == "estrin":
        return estrin(coeffs, r)
    raise ValueError(f"scheme must be 'horner' or 'estrin', got {scheme!r}")


def _finish_edges(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Out-of-range and NaN handling ("some additional mask manipulation
    is necessary", Sec. IV)."""
    y = np.where(x > EXP_OVERFLOW, np.inf, y)
    y = np.where(x < EXP_UNDERFLOW, 0.0, y)
    return np.where(np.isnan(x), np.nan, y)


def exp_plain(
    x: np.ndarray, *, terms: int = PLAIN_TERMS, scheme: Scheme = "estrin"
) -> np.ndarray:
    """13-term range-reduction exponential (the non-FEXPA algorithm).

    ``terms`` is the polynomial degree; fewer than 13 trades accuracy for
    speed exactly as a library writer would (tests chart the trade-off).
    """
    if terms < 3:
        raise ValueError("need at least a degree-3 polynomial")
    x = np.asarray(x, dtype=np.float64)
    xc = np.clip(np.where(np.isnan(x), 0.0, x),
                 EXP_UNDERFLOW - 1.0, EXP_OVERFLOW + 1.0)
    n = np.rint(xc * _INV_LN2)
    r = (xc - n * _LN2_HI) - n * _LN2_LO
    p = _eval_poly(_FACTORIAL_COEFFS[: terms + 1], r, scheme)
    with np.errstate(over="ignore"):  # clipped-overflow inputs -> inf is intended
        y = np.ldexp(p, n.astype(np.int64))
    return _finish_edges(x, y)


def fexpa_emulate(bits: np.ndarray) -> np.ndarray:
    """Bit-exact emulation of the SVE ``FEXPA`` instruction (float64 form).

    ``bits`` holds ``i`` in the low 6 bits and the *biased* exponent
    ``m + 1023`` in bits 6..16; the result is ``2**(m + i/64)`` — the
    table significand of ``2**(i/64)`` glued under the exponent ``m``.
    """
    bits = np.asarray(bits, dtype=np.int64)
    if np.any(bits < 0) or np.any(bits >= (1 << 17)):
        raise ValueError("FEXPA input must fit in 17 bits")
    i = bits & 63
    e = (bits >> 6) - 1023
    with np.errstate(over="ignore"):  # e = +1024 encodes inf, as in hardware
        return np.ldexp(_FEXPA_TABLE[i], e)


def exp_fexpa(
    x: np.ndarray,
    *,
    terms: int = FEXPA_TERMS,
    scheme: Scheme = "estrin",
    refined: bool = False,
) -> np.ndarray:
    """FEXPA-accelerated exponential (the paper's Section IV kernel).

    With ``refined=True`` the final multiply ``2**(m+i/64) * p(r)`` is
    replaced by the corrected form ``fma(s, p-1, s)`` evaluated in extended
    precision — the paper's "correcting the last FMA operation" that
    brings the error from ~6 ULP to the 1-2 ULP class for an estimated
    0.25 extra cycles/element.
    """
    if terms < 2:
        raise ValueError("need at least a degree-2 polynomial")
    x = np.asarray(x, dtype=np.float64)
    # upper clip at the overflow bound keeps the 17-bit FEXPA input in
    # range; NaNs are parked at 0 and restored by the edge mask below
    xc = np.clip(np.where(np.isnan(x), 0.0, x), FEXPA_UNDERFLOW, EXP_OVERFLOW)
    n = np.rint(xc * (64.0 * _INV_LN2))
    n_int = n.astype(np.int64)
    bits = n_int + (1023 << 6)
    s = fexpa_emulate(bits)
    r = (xc - n * (_LN2_HI / 64.0)) - n * (_LN2_LO / 64.0)
    if not refined:
        p = _eval_poly(_FACTORIAL_COEFFS[: terms + 1], r, scheme)
        y = s * p
    else:
        # evaluate p-1 (no cancellation: constant term drops out exactly),
        # then fuse s*pm1 + s with one rounding via extended precision
        pm1 = r * _eval_poly(_FACTORIAL_COEFFS[1 : terms + 1], r, scheme)
        ld = np.longdouble
        y = np.asarray(ld(s) * ld(pm1) + ld(s), dtype=np.float64)
    y = np.where(x < FEXPA_UNDERFLOW, 0.0, y)  # flush-to-zero region
    return _finish_edges(x, y)
