"""Vector math library recipes: one per (toolchain, function) algorithm.

A *recipe* couples the two faces of a library kernel:

* ``build(march, args, dest, prefix)`` — the abstract instruction sequence
  the kernel compiles to, spliced into loops by
  :mod:`repro.compilers.codegen` and costed by the pipeline scheduler.
  The sequences follow the algorithms of Section IV: reductions are FMA
  chains, polynomials are Horner chains or Estrin trees, FEXPA/table
  lookups and exponent scalings appear where the algorithm uses them.
* ``numpy_fn`` — a real numpy implementation of the same algorithm from
  :mod:`repro.mathlib`, so tests can verify the *values* each library
  model would produce (and their ULP class).

The catalog covers the paper's library landscape:

========================  ==========================================
recipe                    algorithm
========================  ==========================================
``exp_fexpa_estrin``      Fujitsu: FEXPA + degree-5 Estrin (Sec. IV)
``exp_table13_estrin``    Cray: plain reduction + degree-13 Estrin
``exp_sleef_horner13``    ARM/sleef: plain reduction + degree-13 Horner
                          with sleef's special-case select overhead
``exp_svml``              Intel SVML: table lookup (permutes) + deg-7
``sin_fast/std/sleef/svml``  quadrant reduction + odd/even kernels
``pow_explog_fast``       Fujitsu: fast log + FEXPA exp
``pow_explog``            Cray: standard log + exp
``pow_sleef``             sleef-accurate: double-double log/exp — the
                          ~10x pow cost the paper measures
``pow_svml``              Intel SVML pow
``log_fast/std/sleef/svml``  atanh-series logs of matching quality
========================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.machine.isa import Instruction, Op
from repro.machine.microarch import Microarch
from repro.mathlib.exp import exp_fexpa, exp_plain
from repro.mathlib.log import log_poly
from repro.mathlib.power import pow_explog
from repro.mathlib.sincos import sin_poly

__all__ = ["Recipe", "RECIPES", "build_recipe", "numpy_impl"]


class _Emit:
    """Tiny instruction-sequence builder with automatic temp naming."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.instrs: list[Instruction] = []
        self._n = 0

    def op(self, op: Op, *srcs: str, dest: str | None = None, tag: str = "") -> str:
        if dest is None:
            self._n += 1
            dest = f"{self.prefix}.t{self._n}"
        self.instrs.append(Instruction(op=op, dest=dest, srcs=srcs, tag=tag))
        return dest

    # -- polynomial schemes ------------------------------------------------
    def horner(self, r: str, degree: int, tag: str = "horner") -> str:
        """Degree-many dependent FMAs — the serial scheme."""
        acc = self.op(Op.FMOV, tag=f"{tag}: c[{degree}]")
        for k in range(degree - 1, -1, -1):
            acc = self.op(Op.FMA, acc, r, tag=f"{tag}: *r + c[{k}]")
        return acc

    def estrin(self, r: str, degree: int, tag: str = "estrin") -> str:
        """Estrin tree: pair FMAs + power chain + combine FMAs."""
        n_terms = degree + 1
        pairs = []
        for k in range(0, n_terms, 2):
            if k + 1 < n_terms:
                pairs.append(self.op(Op.FMA, r, tag=f"{tag}: c{k}+c{k + 1}*r"))
            else:
                pairs.append(self.op(Op.FMOV, tag=f"{tag}: c{k}"))
        power = self.op(Op.FMUL, r, r, tag=f"{tag}: r^2")
        terms = pairs
        while len(terms) > 1:
            nxt = []
            for k in range(0, len(terms), 2):
                if k + 1 < len(terms):
                    nxt.append(
                        self.op(Op.FMA, terms[k], terms[k + 1], power,
                                tag=f"{tag}: combine")
                    )
                else:
                    nxt.append(terms[k])
            terms = nxt
            if len(terms) > 1:
                power = self.op(Op.FMUL, power, power, tag=f"{tag}: square")
        return terms[0]

    def reduce_cw(self, x: str, tag: str = "reduce") -> tuple[str, str]:
        """Cody-Waite reduction: magic-number round + two FMA subtractions.
        Returns (n, r)."""
        n = self.op(Op.FMA, x, tag=f"{tag}: n=x*c+magic")
        n = self.op(Op.FADD, n, tag=f"{tag}: n-=magic")
        r = self.op(Op.FMA, x, n, tag=f"{tag}: r=x-n*hi")
        r = self.op(Op.FMA, r, n, tag=f"{tag}: r-=n*lo")
        return n, r

    def scale_2n(self, p: str, n: str, tag: str = "scale") -> str:
        """Multiply by 2**n via convert + exponent-field arithmetic."""
        ni = self.op(Op.FCVT, n, tag=f"{tag}: to-int")
        sh = self.op(Op.ILOGIC, ni, tag=f"{tag}: <<52")
        return self.op(Op.FSCALE, p, sh, tag=f"{tag}: 2^n*p")


BuildFn = Callable[[Microarch, Sequence[str], str, str], list[Instruction]]


@dataclass(frozen=True)
class Recipe:
    """One vector math kernel: instruction builder + reference numerics."""

    name: str
    description: str
    build: BuildFn
    numpy_fn: Callable[..., np.ndarray]
    requires_fexpa: bool = False


# ---------------------------------------------------------------------------
# exp
# ---------------------------------------------------------------------------


def _build_exp_fexpa(march: Microarch, args: Sequence[str], dest: str,
                     prefix: str) -> list[Instruction]:
    """Section IV kernel: ~15 FP instructions, FEXPA + degree-5 Estrin."""
    (x,) = args
    e = _Emit(prefix)
    n, r = e.reduce_cw(x, tag="exp64")
    bits = e.op(Op.ILOGIC, n, tag="fexpa input bits")
    s = e.op(Op.FEXPA, bits, tag="FEXPA 2^(m+i/64)")
    p = e.estrin(r, 5, tag="p5")
    e.op(Op.FMUL, s, p, dest=dest, tag="y = s*p")
    return e.instrs


def _build_exp_table13_estrin(march: Microarch, args: Sequence[str], dest: str,
                              prefix: str) -> list[Instruction]:
    """Plain reduction + degree-13 Estrin + exponent scale (Cray-class)."""
    (x,) = args
    e = _Emit(prefix)
    n, r = e.reduce_cw(x, tag="exp")
    p = e.estrin(r, 13, tag="p13")
    ni = e.op(Op.FCVT, n, tag="to-int")
    sh = e.op(Op.ILOGIC, ni, tag="<<52")
    e.op(Op.FSCALE, p, sh, dest=dest, tag="2^n*p")
    return e.instrs


def _build_exp_sleef_horner13(march: Microarch, args: Sequence[str], dest: str,
                              prefix: str) -> list[Instruction]:
    """Degree-13 Horner + sleef special-case selects (ARM-class)."""
    (x,) = args
    e = _Emit(prefix)
    n, r = e.reduce_cw(x, tag="exp")
    p = e.horner(r, 13, tag="p13")
    y = e.scale_2n(p, n, tag="exp scale")
    # sleef's overflow/underflow/NaN handling: compares + selects
    m1 = e.op(Op.FCMP, x, tag="x > hi?")
    m2 = e.op(Op.FCMP, x, tag="x < lo?")
    y = e.op(Op.FSEL, y, m1, tag="sel inf")
    e.op(Op.FSEL, y, m2, dest=dest, tag="sel 0")
    return e.instrs


def _build_exp_svml(march: Microarch, args: Sequence[str], dest: str,
                    prefix: str) -> list[Instruction]:
    """SVML-class: table lookup by permutes + degree-7 Estrin."""
    (x,) = args
    e = _Emit(prefix)
    n, r = e.reduce_cw(x, tag="exp")
    bits = e.op(Op.FCVT, n, tag="to-int")
    idx = e.op(Op.ILOGIC, bits, tag="table index")
    t_hi = e.op(Op.PERM, idx, tag="table hi")
    t_lo = e.op(Op.PERM, idx, tag="table lo")
    p = e.estrin(r, 7, tag="p7")
    p = e.op(Op.FMA, p, t_lo, tag="p*tlo+...")
    sc = e.op(Op.ILOGIC, bits, tag="exponent bits")
    y = e.op(Op.FMUL, p, t_hi, tag="p*thi")
    e.op(Op.FSCALE, y, sc, dest=dest, tag="2^m*y")
    return e.instrs


# ---------------------------------------------------------------------------
# sin
# ---------------------------------------------------------------------------


def _build_sin(extra_ops: int, poly_deg: int, scheme: str = "estrin") -> BuildFn:
    """sin kernel family: 3-part reduction, r^2, odd kernel, quadrant
    selects; ``extra_ops`` models per-library special-case overhead and
    ``scheme`` the polynomial evaluation order (sleef uses Horner)."""

    def build(march: Microarch, args: Sequence[str], dest: str,
              prefix: str) -> list[Instruction]:
        (x,) = args
        e = _Emit(prefix)
        n = e.op(Op.FMA, x, tag="n=x*2/pi+magic")
        n = e.op(Op.FADD, n, tag="n-=magic")
        r = e.op(Op.FMA, x, n, tag="r=x-n*hi")
        r = e.op(Op.FMA, r, n, tag="r-=n*mid")
        r = e.op(Op.FMA, r, n, tag="r-=n*lo")
        r2 = e.op(Op.FMUL, r, r, tag="r^2")
        if scheme == "horner":
            p = e.horner(r2, poly_deg, tag="odd kernel")
        else:
            p = e.estrin(r2, poly_deg, tag="odd kernel")
        s = e.op(Op.FMUL, p, r, tag="r*P(r^2)")
        q = e.op(Op.ILOGIC, n, tag="quadrant")
        m = e.op(Op.FCMP, q, tag="sign mask")
        y = e.op(Op.FSEL, s, m, tag="apply sign")
        for k in range(extra_ops):
            y = e.op(Op.FSEL if k % 2 else Op.FCMP, y, tag=f"special[{k}]")
        e.op(Op.FMOV, y, dest=dest, tag="result")
        return e.instrs

    return build


# ---------------------------------------------------------------------------
# log
# ---------------------------------------------------------------------------


def _build_log(series_terms: int, extra_ops: int, fast_div: bool,
               scheme: str = "estrin") -> BuildFn:
    """log kernel family: frexp-style normalize, z=(m-1)/(m+1) (a divide —
    Newton on good toolchains), atanh series, e*ln2 recombination."""

    def build(march: Microarch, args: Sequence[str], dest: str,
              prefix: str) -> list[Instruction]:
        (x,) = args
        e = _Emit(prefix)
        mantissa = e.op(Op.ILOGIC, x, tag="mantissa bits")
        expo = e.op(Op.ILOGIC, x, tag="exponent bits")
        ef = e.op(Op.FCVT, expo, tag="e to float")
        num = e.op(Op.FADD, mantissa, tag="m-1")
        den = e.op(Op.FADD, mantissa, tag="m+1")
        if fast_div:
            rc = e.op(Op.FRECPE, den, tag="frecpe")
            for step in range(2):
                t = e.op(Op.FMA, den, rc, tag=f"nr{step}a")
                rc = e.op(Op.FMA, rc, t, rc, tag=f"nr{step}b")
            z = e.op(Op.FMUL, num, rc, tag="z=(m-1)*(1/(m+1))")
        else:
            z = e.op(Op.FDIV, num, den, tag="z=(m-1)/(m+1)")
        w = e.op(Op.FMUL, z, z, tag="z^2")
        if scheme == "horner":
            s = e.horner(w, series_terms - 1, tag="atanh series")
        else:
            s = e.estrin(w, series_terms - 1, tag="atanh series")
        s = e.op(Op.FMUL, s, z, tag="z*S(w)")
        s = e.op(Op.FADD, s, s, tag="2*...")
        y = e.op(Op.FMA, ef, s, tag="e*ln2_hi + logm")
        y = e.op(Op.FMA, ef, y, tag="+ e*ln2_lo")
        for k in range(extra_ops):
            y = e.op(Op.FSEL if k % 2 else Op.FCMP, y, tag=f"special[{k}]")
        e.op(Op.FMOV, y, dest=dest, tag="result")
        return e.instrs

    return build


# ---------------------------------------------------------------------------
# pow = exp(y * log x)
# ---------------------------------------------------------------------------


def _build_pow(log_build: BuildFn, exp_build: BuildFn,
               dd_passes: int = 0) -> BuildFn:
    """pow composition.  ``dd_passes`` > 0 models double-double arithmetic
    (sleef-accurate): each pass adds an error-free-transform block of
    ~8 dependent FMAs around the log and the multiply."""

    def build(march: Microarch, args: Sequence[str], dest: str,
              prefix: str) -> list[Instruction]:
        x = args[0]
        y = args[1] if len(args) > 1 else args[0]
        e = _Emit(prefix)
        lg = f"{prefix}.log"
        e.instrs.extend(log_build(march, [x], lg, f"{prefix}.L"))
        t = lg
        for p in range(dd_passes):
            # two-prod / two-sum blocks: dependent FMA ladders
            for k in range(8):
                t = e.op(Op.FMA, t, y, tag=f"dd[{p}].{k}")
        t = e.op(Op.FMUL, t, y, tag="y*log(x)")
        ex = f"{prefix}.exp"
        e.instrs.extend(exp_build(march, [t], ex, f"{prefix}.E"))
        e.op(Op.FMOV, ex, dest=dest, tag="result")
        return e.instrs

    return build


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_LOG_FAST = _build_log(series_terms=8, extra_ops=0, fast_div=True)
_LOG_STD = _build_log(series_terms=10, extra_ops=2, fast_div=True)
_LOG_SLEEF = _build_log(series_terms=10, extra_ops=4, fast_div=True, scheme="horner")
_LOG_SVML = _build_log(series_terms=9, extra_ops=2, fast_div=True)

RECIPES: dict[str, Recipe] = {
    "exp_fexpa_estrin": Recipe(
        name="exp_fexpa_estrin",
        description="FEXPA-accelerated exp, 5-term Estrin (paper Sec. IV)",
        build=_build_exp_fexpa,
        numpy_fn=lambda x: exp_fexpa(x, scheme="estrin"),
        requires_fexpa=True,
    ),
    "exp_fexpa_horner": Recipe(
        name="exp_fexpa_horner",
        description="FEXPA-accelerated exp, 5-term Horner (Sec. IV ablation)",
        build=lambda m, a, d, p: _swap_poly(_build_exp_fexpa, m, a, d, p),
        numpy_fn=lambda x: exp_fexpa(x, scheme="horner"),
        requires_fexpa=True,
    ),
    "exp_table13_estrin": Recipe(
        name="exp_table13_estrin",
        description="plain-reduction exp, 13-term Estrin (Cray-class)",
        build=_build_exp_table13_estrin,
        numpy_fn=lambda x: exp_plain(x, scheme="estrin"),
    ),
    "exp_sleef_horner13": Recipe(
        name="exp_sleef_horner13",
        description="plain-reduction exp, 13-term Horner + selects (ARM-class)",
        build=_build_exp_sleef_horner13,
        numpy_fn=lambda x: exp_plain(x, scheme="horner"),
    ),
    "exp_svml": Recipe(
        name="exp_svml",
        description="table-lookup exp, degree-7 Estrin (Intel SVML-class)",
        build=_build_exp_svml,
        numpy_fn=lambda x: exp_plain(x, scheme="estrin"),
    ),
    "sin_fast": Recipe(
        name="sin_fast",
        description="quadrant-reduced sin, tight kernel (Fujitsu-class)",
        build=_build_sin(extra_ops=0, poly_deg=7),
        numpy_fn=sin_poly,
    ),
    "sin_std": Recipe(
        name="sin_std",
        description="quadrant-reduced sin (Cray-class)",
        build=_build_sin(extra_ops=2, poly_deg=8),
        numpy_fn=sin_poly,
    ),
    "sin_sleef": Recipe(
        name="sin_sleef",
        description="quadrant-reduced sin with full special cases (sleef)",
        build=_build_sin(extra_ops=6, poly_deg=8, scheme="horner"),
        numpy_fn=sin_poly,
    ),
    "sin_svml": Recipe(
        name="sin_svml",
        description="quadrant-reduced sin (Intel SVML-class)",
        build=_build_sin(extra_ops=1, poly_deg=7),
        numpy_fn=sin_poly,
    ),
    "log_fast": Recipe(
        name="log_fast", description="atanh-series log (Fujitsu-class)",
        build=_LOG_FAST, numpy_fn=log_poly,
    ),
    "log_std": Recipe(
        name="log_std", description="atanh-series log (Cray-class)",
        build=_LOG_STD, numpy_fn=log_poly,
    ),
    "log_sleef": Recipe(
        name="log_sleef", description="atanh-series log (sleef-class)",
        build=_LOG_SLEEF, numpy_fn=log_poly,
    ),
    "log_svml": Recipe(
        name="log_svml", description="atanh-series log (SVML-class)",
        build=_LOG_SVML, numpy_fn=log_poly,
    ),
    "pow_explog_fast": Recipe(
        name="pow_explog_fast",
        description="pow via fast log + FEXPA exp (Fujitsu-class)",
        build=_build_pow(_LOG_FAST, _build_exp_fexpa),
        numpy_fn=lambda x, y=1.5: pow_explog(x, y, accurate=False),
        requires_fexpa=True,
    ),
    "pow_explog": Recipe(
        name="pow_explog",
        description="pow via standard log + exp (Cray-class)",
        build=_build_pow(_LOG_STD, _build_exp_table13_estrin),
        numpy_fn=lambda x, y=1.5: pow_explog(x, y, accurate=True),
    ),
    "pow_sleef": Recipe(
        name="pow_sleef",
        description="double-double accurate pow (sleef) — the 10x kernel",
        build=_build_pow(_LOG_SLEEF, _build_exp_sleef_horner13, dd_passes=6),
        numpy_fn=lambda x, y=1.5: pow_explog(x, y, accurate=True),
    ),
    "pow_svml": Recipe(
        name="pow_svml",
        description="pow via SVML log + exp (Intel-class)",
        build=_build_pow(_LOG_SVML, _build_exp_svml),
        numpy_fn=lambda x, y=1.5: pow_explog(x, y, accurate=True),
    ),
}


def _swap_poly(base: BuildFn, march: Microarch, args: Sequence[str],
               dest: str, prefix: str) -> list[Instruction]:
    """Variant of the FEXPA kernel with the Estrin tree replaced by a
    Horner chain (for the Section IV Horner-vs-Estrin comparison)."""
    (x,) = args
    e = _Emit(prefix)
    n, r = e.reduce_cw(x, tag="exp64")
    bits = e.op(Op.ILOGIC, n, tag="fexpa input bits")
    s = e.op(Op.FEXPA, bits, tag="FEXPA")
    p = e.horner(r, 5, tag="p5 horner")
    e.instrs.append(Instruction(op=Op.FMUL, dest=dest, srcs=(s, p), tag="s*p"))
    return e.instrs


def build_recipe(name: str, march: Microarch, args: Sequence[str], dest: str,
                 prefix: str) -> list[Instruction]:
    """Build recipe *name* for *march*, producing *dest* from *args*."""
    try:
        recipe = RECIPES[name]
    except KeyError:
        raise KeyError(
            f"unknown math recipe {name!r}; available: {sorted(RECIPES)}"
        ) from None
    if recipe.requires_fexpa and not march.has_fexpa:
        raise ValueError(
            f"recipe {name!r} needs the FEXPA instruction, absent on "
            f"{march.name}"
        )
    return recipe.build(march, list(args), dest, prefix)


def numpy_impl(name: str) -> Callable[..., np.ndarray]:
    """The real numpy implementation backing recipe *name*."""
    try:
        return RECIPES[name].numpy_fn
    except KeyError:
        raise KeyError(f"unknown math recipe {name!r}") from None
