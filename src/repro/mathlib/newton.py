"""Reciprocal and reciprocal-square-root via estimate + Newton–Raphson.

Section III of the paper: the GNU and ARM compilers emit the SVE ``FSQRT``
instruction, "blocking with a 134 cycle latency for a 512-bit vector",
while "the Cray and Fujitsu compilers instead employ a Newton algorithm" —
the ~20x sqrt gap of Figure 2.  This module implements that Newton
algorithm for real: an 8-bit hardware-style seed (emulating SVE
``FRECPE``/``FRSQRTE``) refined by quadratically converging iterations.

Accuracy doubles per step: 8 -> 16 -> 32 -> ~52 bits, so three steps reach
double precision (<= 2 ULP; the test suite charts the per-step error).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "recip_estimate",
    "rsqrt_estimate",
    "recip_newton",
    "rsqrt_newton",
    "sqrt_newton",
]

#: seed precision of the hardware estimate instructions (bits)
ESTIMATE_BITS = 8


def recip_estimate(x: np.ndarray) -> np.ndarray:
    """Emulate ``FRECPE``: ~8-bit reciprocal estimate.

    The significand of ``1/x`` is truncated to :data:`ESTIMATE_BITS`
    fractional bits, mirroring the hardware's internal lookup table.
    Zeros map to ``inf`` (with sign), infinities to signed zero.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.where(np.signbit(x), -1.0, 1.0)  # keep the sign of +-0.0
    ax = np.abs(x)
    with np.errstate(divide="ignore", over="ignore"):
        m, e = np.frexp(ax)  # ax = m * 2**e, m in [0.5, 1)
        # 1/m in (1, 2]; keep ESTIMATE_BITS fractional bits
        scale = float(1 << ESTIMATE_BITS)
        with np.errstate(invalid="ignore"):
            est_m = np.floor((1.0 / m) * scale + 0.5) / scale
        est = np.ldexp(est_m, -e)
        est = np.where(ax == 0.0, np.inf, est)
        est = np.where(np.isinf(ax), 0.0, est)
    return sign * est


def rsqrt_estimate(x: np.ndarray) -> np.ndarray:
    """Emulate ``FRSQRTE``: ~8-bit reciprocal-sqrt estimate.

    Negative inputs give NaN, zero gives ``inf``, ``inf`` gives 0.
    """
    x = np.asarray(x, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        m, e = np.frexp(x)
        odd = (e % 2).astype(bool)
        m = np.where(odd, m * 2.0, m)   # m in [0.5, 2)
        e = np.where(odd, e - 1, e)     # e even
        scale = float(1 << ESTIMATE_BITS)
        est_m = np.floor((1.0 / np.sqrt(m)) * scale + 0.5) / scale
        est = np.ldexp(est_m, -(e // 2).astype(np.int64))
        est = np.where(x == 0.0, np.inf, est)
        est = np.where(np.isinf(x) & (x > 0), 0.0, est)
        est = np.where(x < 0.0, np.nan, est)
    return est


def recip_newton(x: np.ndarray, steps: int = 3) -> np.ndarray:
    """``1/x`` by estimate + *steps* Newton iterations.

    Each step computes ``y' = y * (2 - x*y)``; on SVE this is the
    ``FRECPS`` + ``FMUL`` pair, two pipelined FMAs instead of the blocking
    ``FDIV``.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    y = recip_estimate(x)
    with np.errstate(invalid="ignore", over="ignore"):
        for _ in range(steps):
            y = y * (2.0 - x * y)
        # exact special cases survive the refinement
        y = np.where(x == 0.0, np.sign(1.0 / np.where(x == 0, 1, x)) * np.inf, y)
        y = np.where(np.isinf(x), np.sign(x) * 0.0, y)
        y = np.where(x == 0.0, np.copysign(np.inf, x), y)
    return y


def rsqrt_newton(x: np.ndarray, steps: int = 3) -> np.ndarray:
    """``1/sqrt(x)`` by estimate + *steps* Newton iterations.

    Each step computes ``y' = y * (1.5 - 0.5*x*y*y)`` (``FRSQRTS``-style).
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    y = rsqrt_estimate(x)
    with np.errstate(invalid="ignore", over="ignore"):
        for _ in range(steps):
            y = y * (1.5 - 0.5 * x * y * y)
        y = np.where(x == 0.0, np.inf, y)
        y = np.where(np.isinf(x) & (x > 0), 0.0, y)
    return y


def sqrt_newton(x: np.ndarray, steps: int = 3) -> np.ndarray:
    """``sqrt(x) = x * rsqrt(x)`` — the Fujitsu/Cray lowering of ``sqrt``.

    ``sqrt(0)`` is forced to 0 (``0 * inf`` would be NaN).
    """
    x = np.asarray(x, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        y = x * rsqrt_newton(x, steps=steps)
    y = np.where(x == 0.0, 0.0, y)
    return np.where(np.isinf(x) & (x > 0), np.inf, y)
