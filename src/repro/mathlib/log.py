"""Natural logarithm via the atanh series — the building block of ``pow``.

The classic vector-library algorithm: normalize ``x = m * 2**e`` with
``m`` in ``[sqrt(2)/2, sqrt(2))`` (so that arguments near 1 suffer no
cancellation against ``e*log 2``), substitute ``z = (m-1)/(m+1)`` and use

    log(m) = 2*atanh(z) = 2*z * (1 + z^2/3 + z^4/5 + ...)

With ``|z| <= 3 - 2*sqrt(2) ~= 0.1716`` a degree-9 polynomial in ``z^2``
reaches sub-ULP truncation error.  ``e*log 2`` is added with a two-constant
split of ``log 2``.  The double-double variant :func:`log_dd` returns a
head/tail pair used by :mod:`repro.mathlib.power` to keep ``pow`` accurate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["log_poly", "log_dd", "LOG_SERIES_TERMS"]

_LN2_HI = float.fromhex("0x1.62e42fee00000p-1")
_LN2_LO = float.fromhex("0x1.a39ef35793c76p-33")
_SQRT2_OVER_2 = float.fromhex("0x1.6a09e667f3bcdp-1")

#: terms of the atanh series in z^2 (degree 2*TERMS-1 in z)
LOG_SERIES_TERMS = 10

# coefficients 1/(2k+1) for k = 0..TERMS-1
_ATANH_COEFFS = np.array([1.0 / (2 * k + 1) for k in range(LOG_SERIES_TERMS)])


def _normalize(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split positive *x* into ``m * 2**e`` with m in [sqrt2/2, sqrt2)."""
    m, e = np.frexp(x)            # m in [0.5, 1)
    low = m < _SQRT2_OVER_2
    m = np.where(low, m * 2.0, m)
    e = np.where(low, e - 1, e).astype(np.float64)
    return m, e


def log_poly(x: np.ndarray) -> np.ndarray:
    """Vectorized natural log, accurate to a few ULP for positive finite
    inputs; IEEE edge behaviour for 0 (-inf), negatives (NaN), inf."""
    x = np.asarray(x, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        m, e = _normalize(np.where(x > 0, x, 1.0))
        z = (m - 1.0) / (m + 1.0)
        w = z * z
        s = np.full_like(z, _ATANH_COEFFS[-1])
        for c in _ATANH_COEFFS[-2::-1]:
            s = s * w + c
        logm = 2.0 * z * s
        y = e * _LN2_HI + (logm + e * _LN2_LO)
        y = np.where(x == 0.0, -np.inf, y)
        y = np.where(x < 0.0, np.nan, y)
        y = np.where(np.isinf(x) & (x > 0), np.inf, y)
        y = np.where(np.isnan(x), np.nan, y)
    return y


def log_dd(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``log(x)`` as an unevaluated head/tail double-double pair.

    The tail captures what one float64 rounds away, giving ``pow`` the
    extra bits it needs (``exp(y*log x)`` amplifies log error by ``y``).
    Extended precision (x87 80-bit via ``np.longdouble``) stands in for
    the FMA-based error-free transforms a C implementation would use.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any(x <= 0):
        raise ValueError("log_dd requires strictly positive inputs")
    ld = np.longdouble
    y = np.log(x.astype(ld))
    hi = y.astype(np.float64)
    lo = (y - hi.astype(ld)).astype(np.float64)
    return hi, lo
