"""ULP (units in the last place) error measurement.

The paper quotes math-library accuracy in ULPs ("An error of between 1
and 4 ulps ... is common in vectorized libraries"; the FEXPA kernel
"yields about 6 ulp precision").  This module measures exactly that
quantity for float64 arrays, using the integer representation of IEEE-754
doubles so that the distance is exact even across exponent boundaries.
"""

from __future__ import annotations

import numpy as np

__all__ = ["float_to_ordinal", "ulp_diff", "max_ulp_error", "mean_ulp_error"]


def float_to_ordinal(x: np.ndarray) -> np.ndarray:
    """Map float64 values to a monotone int64 ordinal.

    IEEE-754 doubles ordered as sign-magnitude integers become totally
    ordered after flipping negative values; adjacent representable doubles
    then differ by exactly 1, so ordinal distance *is* ULP distance.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any(np.isnan(x)):
        raise ValueError("cannot rank NaN values in ULP space")
    bits = x.view(np.int64)
    # negative floats order in reverse of their bit patterns; map a
    # negative pattern (-2**63 + magnitude) to the ordinal -magnitude.
    int_min = np.int64(np.iinfo(np.int64).min)
    return np.where(bits < 0, int_min - bits, bits)


def ulp_diff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ULP distance between two float64 arrays (as float64).

    Same-sign pairs subtract exactly in int64 (their distance always
    fits); sign-straddling pairs — whose distance can exceed int64 and is
    astronomically large anyway — are combined in float64.
    """
    oa = float_to_ordinal(np.asarray(a, dtype=np.float64))
    ob = float_to_ordinal(np.asarray(b, dtype=np.float64))
    same_sign = (oa >= 0) == (ob >= 0)
    safe_b = np.where(same_sign, ob, oa)  # avoid overflow in dead lanes
    d_same = np.abs(oa - safe_b).astype(np.float64)
    d_cross = np.abs(oa.astype(np.float64)) + np.abs(ob.astype(np.float64))
    return np.where(same_sign, d_same, d_cross)


def max_ulp_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Maximum ULP error of *approx* against *exact*.

    Infinities must match exactly (0 ULP) or the result is ``inf``.
    """
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if approx.shape != exact.shape:
        raise ValueError("shape mismatch between approx and exact")
    inf_a = np.isinf(approx)
    inf_e = np.isinf(exact)
    if np.any(inf_a != inf_e) or np.any(approx[inf_a] != exact[inf_e]):
        return float("inf")
    finite = ~inf_a
    if not np.any(finite):
        return 0.0
    return float(np.max(ulp_diff(approx[finite], exact[finite])))


def mean_ulp_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Mean ULP error over finite entries."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    finite = np.isfinite(approx) & np.isfinite(exact)
    if not np.any(finite):
        return 0.0
    return float(np.mean(ulp_diff(approx[finite], exact[finite])))
