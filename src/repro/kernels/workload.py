"""Aggregate workload signatures and the application performance model.

The NPB, LULESH and HPCC studies run at paper scale (class C, 162^3 grids,
20000^2 matrices) — far too large to execute instruction-by-instruction in
Python.  Instead each application run is summarized as a
:class:`Workload`: total flops, how much of that is vectorizable, DRAM
traffic split by access pattern, math-library call counts, and the
threading shape (Amdahl fraction, parallel regions, imbalance).  The mini
implementations in :mod:`repro.npb` and :mod:`repro.apps.lulesh` supply
*verified numerics* at reduced scale and the formulas that produce these
signatures at paper scale.

:func:`serial_seconds` turns a signature into single-core time on a given
(system, toolchain) pair:

* vectorized flops retire at the port bound (``fp_pipes * lanes`` per
  cycle) derated by the workload's ``vec_efficiency`` (dependence stalls,
  short loops);
* non-vectorized flops retire at the scalar rate, which scales inversely
  with the machine's scalar FP latency — the mechanism behind the A64FX's
  weak single-core showing in Figs. 3 and 7 (9-cycle chains vs Skylake's
  4);
* math calls cost what the toolchain's library kernel costs *on this
  machine* — obtained by actually scheduling the library recipe through
  the pipeline model (so GNU's scalar libm exp costs ~32 cycles/element
  while Fujitsu's FEXPA kernel costs ~2);
* memory time comes from the analytic hierarchy model and overlaps
  compute (roofline composition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping

from repro._util import require_positive
from repro.compilers.codegen import compile_loop
from repro.compilers.toolchains import Toolchain
from repro.engine.openmp import OpenMPModel, ParallelRun, WorkDecomposition
from repro.machine.numa import PagePlacement
from repro.machine.systems import System

__all__ = ["Workload", "serial_seconds", "parallel_run", "math_cycles_per_call"]


@dataclass(frozen=True)
class Workload:
    """Signature of one application run on one node.

    Parameters
    ----------
    name: benchmark identifier (e.g. ``"CG.C"``).
    flops: total floating-point operations of the run.
    vector_fraction: fraction of flops inside vectorizable loops.
    vec_efficiency: fraction of the port bound those loops achieve
        (dependence chains, short trip counts, mixed ops).
    contig_bytes / random_bytes: DRAM-level traffic by access pattern
        (useful bytes; zero for cache-resident apps).
    math_calls: total calls per math function (``{"exp": 1e9, ...}``).
    parallel_fraction: Amdahl fraction of the compute.
    regions: parallel regions entered during the run.
    imbalance: fractional static-schedule imbalance.
    """

    name: str
    flops: float
    vector_fraction: float
    vec_efficiency: float = 0.6
    contig_bytes: float = 0.0
    random_bytes: float = 0.0
    math_calls: Mapping[str, float] = field(default_factory=dict)
    parallel_fraction: float = 0.99
    regions: float = 1.0
    imbalance: float = 0.0
    #: latency-bound gathers whose footprint fits on-chip (CG's x vector:
    #: 1.2 MB, L2-resident on A64FX, L3-resident on Skylake) — costed at
    #: the serving level's latency divided by the achievable overlap
    l2_gather_accesses: float = 0.0
    gather_footprint: float = 0.0
    #: whether the loops containing the math calls vectorize; NPB's EP
    #: acceptance loop does not (if-test + histogram update), so its
    #: log/sqrt go through each toolchain's *serial* libm
    math_vectorized: bool = True
    #: residual per-toolchain factors the paper reports but does not
    #: explain mechanistically (e.g. EP: "3 fold performance difference
    #: ... due to some other optimization, not vectorization") — pure
    #: calibration, documented in DESIGN.md
    toolchain_factor: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive(self.flops, "flops")
        for frac, nm in (
            (self.vector_fraction, "vector_fraction"),
            (self.vec_efficiency, "vec_efficiency"),
            (self.parallel_fraction, "parallel_fraction"),
        ):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"{nm} must be in [0, 1], got {frac}")
        if self.contig_bytes < 0 or self.random_bytes < 0:
            raise ValueError("traffic byte counts must be non-negative")
        if self.l2_gather_accesses < 0 or self.gather_footprint < 0:
            raise ValueError("gather parameters must be non-negative")
        if self.l2_gather_accesses and not self.gather_footprint:
            raise ValueError("l2_gather_accesses needs a gather_footprint")


@lru_cache(maxsize=256)
def _math_loop_cpe(fn: str, toolchain_name: str, march_name: str) -> float:
    """Cycles per element of the ``y[i] = fn(x[i])`` loop for a toolchain
    on a machine — obtained by compiling and scheduling the actual loop.

    Two cache layers: this ``lru_cache`` memoizes the final quality-
    adjusted number per (fn, toolchain, march) name triple, and the
    schedule itself goes through the content-addressed cache of
    :mod:`repro.engine.cache` (via ``CompiledLoop.schedule``) — so the
    NPB and LULESH drivers reuse schedules across compilers that emit
    identical math-loop streams."""
    from repro.compilers.toolchains import get_toolchain
    from repro.kernels.loops import build_loop
    from repro.machine import microarch as ma

    marchs = {
        m.name: m
        for m in (ma.A64FX, ma.SKYLAKE_6140, ma.SKYLAKE_6130, ma.SKYLAKE_8160,
                  ma.KNL_7250, ma.EPYC_7742, ma.THUNDERX2)
    }
    compiled = compile_loop(
        build_loop(fn), get_toolchain(toolchain_name), marchs[march_name]
    )
    return compiled.cycles_per_element


def math_cycles_per_call(
    fn: str, toolchain: Toolchain, system: System, vectorized: bool = True
) -> float:
    """Per-call cost of math function *fn* under *toolchain* on *system*.

    For vectorizable call sites the cost comes from compiling and
    scheduling the actual ``y[i] = fn(x[i])`` loop through the pipeline
    model.  For scalar call sites it is the toolchain's serial libm cost
    (Table: ``Toolchain.scalar_libm``).
    """
    if not vectorized:
        try:
            return toolchain.scalar_libm[fn]
        except KeyError:
            raise KeyError(
                f"toolchain {toolchain.name!r} has no scalar libm cost "
                f"for {fn!r}"
            ) from None
    return _math_loop_cpe(fn, toolchain.name, system.cpu.name)


#: concurrent outstanding gathers a core sustains against cache latency
GATHER_MLP = 4.0


def _gather_cycles(work: Workload, system: System) -> float:
    """Cycles spent on latency-bound on-chip gathers (CG's SpMV x[] reads).

    The serving cache level is chosen by footprint: A64FX's 8 MB per-CMG
    L2 holds CG's 1.2 MB vector at 37-cycle latency, while on Skylake it
    spills past the 1 MB L2 into the ~50-cycle L3 — the mechanism behind
    the paper's narrow 1.6x CG gap (Fig. 3).
    """
    if not work.l2_gather_accesses:
        return 0.0
    hier = system.hierarchy
    lvl = hier.serving_level(work.gather_footprint)
    if lvl >= len(hier.levels):
        latency = hier.dram_latency_ns * system.cpu.clock_ghz  # cycles
    else:
        latency = hier.levels[lvl].latency
    return work.l2_gather_accesses * latency / GATHER_MLP


def _scalar_flops_per_cycle(system: System) -> float:
    """Sustained scalar FP throughput heuristic: inversely proportional to
    the scalar FP latency (dependent-chain-dominated code), normalized so
    Skylake ~= 1 flop/cycle."""
    from repro.machine.isa import Op

    lat = system.cpu.timing(Op.SFP).latency
    return 4.0 / lat


def serial_seconds(work: Workload, system: System, toolchain: Toolchain) -> float:
    """Single-core runtime of *work* under (*system*, *toolchain*)."""
    cpu = system.cpu
    clock_hz = cpu.clock_ghz * 1e9

    vec_flops = work.flops * work.vector_fraction
    scal_flops = work.flops - vec_flops
    vec_rate = cpu.fp_pipes * cpu.lanes_f64 * work.vec_efficiency  # flops/cyc
    scal_rate = _scalar_flops_per_cycle(system)
    # Whole applications scale with general optimizer quality only: the
    # paper's Fig. 3 shows GCC best-or-comparable on the NPB suite even
    # though Fig. 1's micro-kernels favour Fujitsu's SVE codegen — the
    # loop-overhead polish that separates micro-kernels washes out in
    # application-sized loop nests (simd_quality stays a kernel-level
    # effect, applied in CompiledLoop only).
    compute_cycles = (
        vec_flops / vec_rate
        + scal_flops / scal_rate
        + _gather_cycles(work, system)
    ) * toolchain.code_quality

    math_cycles = 0.0
    for fn, calls in work.math_calls.items():
        math_cycles += calls * math_cycles_per_call(
            fn, toolchain, system, vectorized=work.math_vectorized
        )

    factor = work.toolchain_factor.get(toolchain.name, 1.0)
    compute_s = (compute_cycles + math_cycles) * factor / clock_hz

    memory_s = 0.0
    hier = system.hierarchy
    if work.contig_bytes:
        memory_s += work.contig_bytes / (hier.stream_bw_core_gbs * 1e9)
    if work.random_bytes:
        rand_bw = hier.mlp * hier.line / hier.dram_latency_ns  # GB/s raw
        rand_bw *= 8.0 / hier.line  # useful fraction of each line
        memory_s += work.random_bytes / (rand_bw * 1e9)

    return max(compute_s, memory_s)


def parallel_run(
    work: Workload,
    system: System,
    toolchain: Toolchain,
    threads: int,
    placement: PagePlacement | None = None,
    parallel_factor: float = 1.0,
) -> ParallelRun:
    """Multi-threaded runtime of *work* (Figs. 4-6 machinery).

    ``placement=None`` takes the toolchain's OpenMP default — which is how
    the Fujitsu CMG-0 pathology appears without special-casing; pass
    ``PagePlacement.FIRST_TOUCH`` to model the paper's
    ``fujitsu-first-touch`` configuration.  ``parallel_factor`` scales the
    result for the paper's parallel-only residual anomalies (ARM on
    BT/UA; see :data:`repro.npb.workloads.PARALLEL_FACTORS`).
    """
    require_positive(parallel_factor, "parallel_factor")
    base = serial_seconds(work, system, toolchain)
    decomp = WorkDecomposition(
        compute_serial_s=base,
        contig_bytes=work.contig_bytes,
        random_bytes=work.random_bytes,
        parallel_fraction=work.parallel_fraction,
        regions=work.regions,
        imbalance=work.imbalance,
    )
    model = OpenMPModel(system, toolchain.openmp)
    run = model.run(decomp, threads, placement)
    if parallel_factor != 1.0 and threads > 1:
        run = ParallelRun(
            seconds=run.seconds * parallel_factor,
            threads=run.threads,
            compute_seconds=run.compute_seconds * parallel_factor,
            memory_seconds=run.memory_seconds,
            overhead_seconds=run.overhead_seconds,
            serial_seconds=run.serial_seconds,
        )
    return run


def scaling_efficiency(
    work: Workload,
    system: System,
    toolchain: Toolchain,
    thread_counts: list[int],
    placement: PagePlacement | None = None,
) -> dict[int, float]:
    """Parallel efficiency across *thread_counts* (Figs. 5-6)."""
    out: dict[int, float] = {}
    for p in thread_counts:
        out[p] = parallel_run(work, system, toolchain, p, placement).efficiency
    return out
