"""The Monte Carlo motivating example from the paper's introduction.

The naive three-line kernel samples a Metropolis chain targeting the
density ``exp(-x)`` on ``[0, 23]``:

.. code-block:: c

    xnew = 23.0*rand();
    if (exp(-xnew) > exp(-x)*rand()) x = xnew;
    sum += x;

On a CPU this chain "exposes nearly the full latency of most of the
operations in the loop"; the remedy is "introducing an additional loop
over independent samples, splitting that loop to serve both thread and
vector parallelism" — many independent chains advanced in lockstep.

This module provides both versions with *real numerics* (they estimate
``E[x] = 1 - 24*exp(-23)/(1-exp(-23)) ~= 1.0``), plus hand-built
instruction streams so the performance model can quantify the serial
latency wall the paper teaches with.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import require_positive
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.mathlib.exp import exp_fexpa
from repro.mathlib.rng import VectorRng

__all__ = [
    "MC_UPPER",
    "mc_expected_mean",
    "mc_exp_integral_serial",
    "mc_exp_integral_vectorized",
    "mc_serial_stream",
    "mc_vector_stream",
]

#: the paper samples x in [0, 23]
MC_UPPER = 23.0


def mc_expected_mean() -> float:
    """Exact mean of x under the truncated density exp(-x) on [0, 23]."""
    u = MC_UPPER
    z = 1.0 - math.exp(-u)
    return (1.0 - (1.0 + u) * math.exp(-u)) / z


def mc_exp_integral_serial(n_samples: int, seed: int = 0) -> float:
    """The literal serial Markov chain (small *n* only — it is meant to be
    slow; the paper's point is exactly that this form defeats vector and
    thread parallelism)."""
    require_positive(n_samples, "n_samples")
    rng = VectorRng(seed)
    # draw all randoms up-front (2 per step + initial)
    u = rng.uniform(2 * n_samples + 1)
    x = MC_UPPER * float(u[0])
    total = 0.0
    ex = math.exp(-x)
    for k in range(n_samples):
        xnew = MC_UPPER * float(u[1 + 2 * k])
        enew = math.exp(-xnew)
        if enew > ex * float(u[2 + 2 * k]):
            x = xnew
            ex = enew
        total += x
    return total / n_samples


def mc_exp_integral_vectorized(
    n_samples: int, seed: int = 0, chains: int = 4096, burn_in: int = 64
) -> float:
    """Vectorized variant: *chains* independent chains in lockstep.

    Each numpy statement below corresponds to one vector instruction
    stream over the chain axis — the loop structure the paper derives
    (outer loop over steps, inner data-parallel loop over chains), using
    the counter-based RNG and this project's FEXPA exponential.
    """
    require_positive(n_samples, "n_samples")
    require_positive(chains, "chains")
    steps = max(1, math.ceil(n_samples / chains))
    rng = VectorRng(seed)
    x = MC_UPPER * rng.uniform(chains)
    ex = exp_fexpa(-x)
    total = 0.0
    count = 0
    for step in range(burn_in + steps):
        u1, u2 = rng.uniform_pairs(chains)
        xnew = MC_UPPER * u1
        enew = exp_fexpa(-xnew)
        accept = enew > ex * u2
        x = np.where(accept, xnew, x)
        ex = np.where(accept, enew, ex)
        if step >= burn_in:
            total += float(np.sum(x))
            count += chains
    return total / count


# ---------------------------------------------------------------------------
# Instruction-stream models
# ---------------------------------------------------------------------------


def mc_serial_stream(exp_cycles: float = 32.0, rand_cycles: float = 18.0
                     ) -> InstructionStream:
    """The naive kernel as a scalar, loop-carried instruction stream.

    Every iteration depends on the previous one through ``x`` (and the
    accept/reject select), so the chain length — libm exp, libm rand,
    compare, select — is fully exposed, exactly the paper's diagnosis.
    """
    body = [
        Instruction(Op.CALL, "u1", (), tag="rand()",
                    latency_override=rand_cycles, rtput_override=rand_cycles),
        Instruction(Op.SFP, "xnew", ("u1",), tag="23*u1"),
        Instruction(Op.CALL, "enew", ("xnew",), tag="exp(-xnew)",
                    latency_override=exp_cycles, rtput_override=exp_cycles),
        Instruction(Op.CALL, "u2", (), tag="rand()",
                    latency_override=rand_cycles, rtput_override=rand_cycles),
        Instruction(Op.SFP, "thresh", ("ex", "u2"), tag="exp(-x)*u2"),
        Instruction(Op.SFP, "cmp", ("enew", "thresh"), tag="compare"),
        Instruction(Op.SFP, "x", ("cmp", "xnew", "x"), carried=True,
                    tag="select x"),
        Instruction(Op.SFP, "ex", ("cmp", "enew", "ex"), carried=True,
                    tag="select exp(-x)"),
        Instruction(Op.SFP, "sum", ("sum", "x"), carried=True, tag="sum+=x"),
    ]
    return InstructionStream(body=body, elements_per_iter=1,
                             label="mc-serial")


def mc_vector_stream(lanes: int = 8) -> InstructionStream:
    """One step of the lockstep-chains variant over one vector of chains:
    counter RNG (integer ops), FEXPA exp, predicated select, running sums.
    Independent across iterations — the latency wall is gone.
    """
    require_positive(lanes, "lanes")
    body = [
        # counter-based rand: 2 uniforms = ~6 integer ops + 2 converts
        Instruction(Op.IADD, "c1", (), tag="ctr+gamma"),
        Instruction(Op.ILOGIC, "h1", ("c1",), tag="mix1"),
        Instruction(Op.IMUL, "h1b", ("h1",), tag="mix2"),
        Instruction(Op.ILOGIC, "h1c", ("h1b",), tag="mix3"),
        Instruction(Op.FCVT, "u1", ("h1c",), tag="to double"),
        Instruction(Op.IADD, "c2", (), tag="ctr+gamma"),
        Instruction(Op.ILOGIC, "h2", ("c2",), tag="mix1"),
        Instruction(Op.IMUL, "h2b", ("h2",), tag="mix2"),
        Instruction(Op.ILOGIC, "h2c", ("h2b",), tag="mix3"),
        Instruction(Op.FCVT, "u2", ("h2c",), tag="to double"),
        Instruction(Op.FMUL, "xnew", ("u1",), tag="23*u1"),
        # FEXPA exp(-xnew): condensed form of the Sec. IV kernel
        Instruction(Op.FMA, "n", ("xnew",), tag="reduce n"),
        Instruction(Op.FADD, "n2", ("n",), tag="n-=magic"),
        Instruction(Op.FMA, "r", ("xnew", "n2"), tag="r hi"),
        Instruction(Op.FMA, "r2", ("r", "n2"), tag="r lo"),
        Instruction(Op.ILOGIC, "bits", ("n2",), tag="fexpa bits"),
        Instruction(Op.FEXPA, "s", ("bits",), tag="FEXPA"),
        Instruction(Op.FMA, "q1", ("r2",), tag="p pair1"),
        Instruction(Op.FMA, "q2", ("r2",), tag="p pair2"),
        Instruction(Op.FMA, "q3", ("r2",), tag="p pair3"),
        Instruction(Op.FMUL, "rr", ("r2", "r2"), tag="r^2"),
        Instruction(Op.FMA, "p1", ("q1", "q2", "rr"), tag="combine"),
        Instruction(Op.FMA, "p", ("p1", "q3", "rr"), tag="combine2"),
        Instruction(Op.FMUL, "enew", ("s", "p"), tag="s*p"),
        # accept/reject
        Instruction(Op.FMUL, "thresh", ("ex", "u2"), tag="exp(-x)*u2"),
        Instruction(Op.FCMP, "acc", ("enew", "thresh"), tag="accept?"),
        Instruction(Op.FSEL, "x", ("acc", "xnew", "x"), carried=True,
                    tag="select x"),
        Instruction(Op.FSEL, "ex", ("acc", "enew", "ex"), carried=True,
                    tag="select ex"),
        Instruction(Op.FADD, "sum", ("sum", "x"), carried=True, tag="sum+=x"),
    ]
    return InstructionStream(body=body, elements_per_iter=lanes,
                             label="mc-vector")
