"""The Monte Carlo optimization ladder of Section III.

The paper describes the exact sequence that takes the naive three-line
kernel to machine speed: "introducing an additional loop over independent
samples, splitting that loop to serve both thread and vector parallelism,
interchanging loops, and promoting scalars to vectors ... additional
required optimizations were loop splitting, and directly invoking
vectorized math library operations."

:func:`optimization_ladder` materializes each rung as an instruction
stream for the machine model and returns the cumulative speedups —
quantifying each transformation's payoff on the A64FX, the way the
authors teach it to physical scientists.  The rungs:

0. **naive** — the three-line Metropolis chain: scalar, serial libm
   exp, serial rand; the full latency of every operation is exposed.
1. **batched RNG** — "a manual call to a vectorized random number
   generator": the counter-based stream removes the RNG from the
   dependence chain (values pre-generated), but the chain remains.
2. **independent chains** — the extra loop over samples.  On a scalar
   core this is an *enabling* transformation: the serial libm call's
   throughput still gates every chain (calls cannot overlap on one
   core), so the rung is speed-neutral — its value is unlocking the
   vector and thread rungs.
3. **vectorized** — scalars promoted to vectors, the if-test to a
   predicated select, and exp to the FEXPA library kernel.
4. **threaded** — the vector loop split across 48 cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_positive
from repro.engine.scheduler import PipelineScheduler
from repro.kernels.mc import mc_serial_stream, mc_vector_stream
from repro.machine.isa import Instruction, InstructionStream, Op
from repro.machine.microarch import A64FX, Microarch

__all__ = ["LadderRung", "optimization_ladder"]


@dataclass(frozen=True)
class LadderRung:
    """One step of the optimization sequence."""

    stage: int
    name: str
    transformation: str
    cycles_per_sample: float
    speedup_vs_naive: float
    bound: str

    def as_row(self) -> dict:
        """Plain-dict form used by the report tables."""
        return {
            "stage": self.stage,
            "name": self.name,
            "transformation": self.transformation,
            "cycles_per_sample": round(self.cycles_per_sample, 2),
            "speedup": round(self.speedup_vs_naive, 1),
            "bound": self.bound,
        }


def _serial_batched_rng_stream(exp_cycles: float = 32.0) -> InstructionStream:
    """Rung 1: the chain with pre-generated randoms (a load each) but the
    scalar libm exp and the accept/select recurrence intact."""
    body = [
        Instruction(Op.SLOAD, "u1", tag="u1 = rand[i]"),
        Instruction(Op.SFP, "xnew", ("u1",), tag="23*u1"),
        Instruction(Op.CALL, "enew", ("xnew",), tag="exp(-xnew)",
                    latency_override=exp_cycles, rtput_override=exp_cycles),
        Instruction(Op.SLOAD, "u2", tag="u2 = rand[i]"),
        Instruction(Op.SFP, "thresh", ("ex", "u2"), tag="exp(-x)*u2"),
        Instruction(Op.SFP, "cmp", ("enew", "thresh"), tag="compare"),
        Instruction(Op.SFP, "x", ("cmp", "xnew", "x"), carried=True,
                    tag="select x"),
        Instruction(Op.SFP, "ex", ("cmp", "enew", "ex"), carried=True,
                    tag="select exp(-x)"),
        Instruction(Op.SFP, "sum", ("sum", "x"), carried=True, tag="sum+=x"),
    ]
    return InstructionStream(body=body, elements_per_iter=1,
                             label="mc-batched-rng")


def _independent_chains_stream(chains: int = 4,
                               exp_cycles: float = 32.0) -> InstructionStream:
    """Rung 2: *chains* scalar chains interleaved in one loop body; each
    carries its own recurrence, so the chains' latencies overlap."""
    require_positive(chains, "chains")
    body: list[Instruction] = []
    for c in range(chains):
        body += [
            Instruction(Op.SLOAD, f"u1_{c}", tag=f"[{c}] u1"),
            Instruction(Op.SFP, f"xnew_{c}", (f"u1_{c}",), tag=f"[{c}] 23*u1"),
            Instruction(Op.CALL, f"enew_{c}", (f"xnew_{c}",),
                        tag=f"[{c}] exp", latency_override=exp_cycles,
                        rtput_override=exp_cycles),
            Instruction(Op.SLOAD, f"u2_{c}", tag=f"[{c}] u2"),
            Instruction(Op.SFP, f"th_{c}", (f"ex_{c}", f"u2_{c}"),
                        tag=f"[{c}] thresh"),
            Instruction(Op.SFP, f"cmp_{c}", (f"enew_{c}", f"th_{c}"),
                        tag=f"[{c}] compare"),
            Instruction(Op.SFP, f"x_{c}", (f"cmp_{c}", f"xnew_{c}", f"x_{c}"),
                        carried=True, tag=f"[{c}] select x"),
            Instruction(Op.SFP, f"ex_{c}",
                        (f"cmp_{c}", f"enew_{c}", f"ex_{c}"),
                        carried=True, tag=f"[{c}] select ex"),
            Instruction(Op.SFP, f"sum_{c}", (f"sum_{c}", f"x_{c}"),
                        carried=True, tag=f"[{c}] sum"),
        ]
    return InstructionStream(body=body, elements_per_iter=chains,
                             label=f"mc-{chains}chains")


def optimization_ladder(
    march: Microarch = A64FX, threads: int = 48, chains: int = 4
) -> list[LadderRung]:
    """Model every rung on *march* and return the cumulative speedups."""
    require_positive(threads, "threads")
    sched = PipelineScheduler(march)

    stages = [
        ("naive 3-line kernel",
         "scalar, serial libm exp, serial rand()",
         mc_serial_stream()),
        ("batched RNG",
         "counter-based generator called in bulk (vectorizable rand)",
         _serial_batched_rng_stream()),
        (f"{chains} independent chains",
         "extra loop over samples (enables vector/thread parallelism)",
         _independent_chains_stream(chains=chains)),
        ("vectorized",
         "scalars promoted to vectors; if-test predicated; FEXPA exp",
         mc_vector_stream(lanes=march.lanes_f64)),
    ]

    rungs: list[LadderRung] = []
    base: float | None = None
    for i, (name, transformation, stream) in enumerate(stages):
        res = sched.steady_state(stream)
        cps = res.cycles_per_element
        if base is None:
            base = cps
        rungs.append(
            LadderRung(
                stage=i,
                name=name,
                transformation=transformation,
                cycles_per_sample=cps,
                speedup_vs_naive=base / cps,
                bound=res.bound,
            )
        )

    # rung 4: threads multiply the vector throughput (EP-style workload:
    # embarrassingly parallel, no bandwidth component)
    last = rungs[-1]
    rungs.append(
        LadderRung(
            stage=len(stages),
            name=f"{threads} threads",
            transformation="outer loop split across cores (OpenMP)",
            cycles_per_sample=last.cycles_per_sample / threads,
            speedup_vs_naive=last.speedup_vs_naive * threads,
            bound="embarrassingly parallel",
        )
    )
    return rungs
