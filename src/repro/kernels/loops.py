"""The Section III loop-vectorization test suite.

The paper: "we developed a small test suite to explore the ability of
toolchains to vectorize code and the resulting performance":

* ``simple``:        ``y[i] = 2*x[i] + 3*x[i]*x[i]``
* ``predicate``:     ``if (x[i] > 0) y[i] = x[i]``
* ``gather``:        ``y[i] = x[index[i]]``, index a random permutation
* ``scatter``:       ``y[index[i]] = x[i]``
* ``short_gather``/``short_scatter``: the permutation stays inside
  128-byte (16-double) windows, exercising the A64FX gather-coalescing
  special case.
* math loops:        ``y[i] = f(x[i])`` for recip, sqrt, exp, sin, pow

"The sizes of working vectors were adjusted to collectively fill the L1
cache" — :func:`l1_resident_length` computes that size per machine, and
each builder defaults to the A64FX value.

Each loop exists twice: as IR (:func:`build_loop`, consumed by the
toolchain models) and as a numpy reference (:func:`reference_run`,
consumed by correctness tests and by the runnable examples).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._util import KIB, require_in, require_positive
from repro.compilers.ir import (
    ArrayInfo,
    BinOp,
    Call,
    Cmp,
    Const,
    Load,
    Loop,
    LoopIdx,
    Store,
    Var,
)
from repro.mathlib import exp_fexpa, log_poly, pow_explog, sin_poly
from repro.mathlib.newton import recip_newton, sqrt_newton

__all__ = [
    "LOOP_NAMES",
    "MATH_LOOP_NAMES",
    "WINDOW_DOUBLES",
    "l1_resident_length",
    "build_loop",
    "make_permutation",
    "reference_run",
]

#: a 128-byte window holds 16 doubles (the A64FX coalescing granule)
WINDOW_DOUBLES = 16

#: structural loops of Figure 1
LOOP_NAMES = (
    "simple",
    "predicate",
    "gather",
    "scatter",
    "short_gather",
    "short_scatter",
)
#: math-function loops of Figure 2
MATH_LOOP_NAMES = ("recip", "sqrt", "exp", "sin", "pow")

#: default exponent for the pow loop (loop-invariant scalar input)
POW_EXPONENT = 1.5


def l1_resident_length(l1_bytes: int = 64 * KIB, n_arrays: int = 2) -> int:
    """Vector length filling the L1 cache with *n_arrays* float64 arrays,
    rounded down to a multiple of the 16-double window."""
    require_positive(l1_bytes, "l1_bytes")
    require_positive(n_arrays, "n_arrays")
    n = l1_bytes // (8 * n_arrays)
    return max(WINDOW_DOUBLES, (n // WINDOW_DOUBLES) * WINDOW_DOUBLES)


def make_permutation(
    n: int, *, short: bool = False, seed: int = 2021
) -> np.ndarray:
    """Index vector for the gather/scatter tests.

    ``short=False``: "a random permutation of the entire index space".
    ``short=True``: "randomly permuting within 128 byte windows (i.e., 16
    doubles)" — each aligned window is shuffled internally, so every
    gathered element pair stays inside one aligned 128-byte region.
    """
    require_positive(n, "n")
    rng = np.random.default_rng(seed)
    if not short:
        return rng.permutation(n).astype(np.int64)
    if n % WINDOW_DOUBLES:
        raise ValueError(f"short permutation needs n divisible by {WINDOW_DOUBLES}")
    idx = np.arange(n, dtype=np.int64).reshape(-1, WINDOW_DOUBLES)
    idx = rng.permuted(idx, axis=1)
    return idx.reshape(-1)


# ---------------------------------------------------------------------------
# IR builders
# ---------------------------------------------------------------------------


def _xy_arrays(n: int, extra: dict[str, ArrayInfo] | None = None,
               y_pattern: str = "contig") -> dict[str, ArrayInfo]:
    arrays = {
        "x": ArrayInfo("x", footprint=8.0 * n),
        "y": ArrayInfo("y", footprint=8.0 * n, pattern=y_pattern),
    }
    if extra:
        arrays.update(extra)
    return arrays


def build_loop(name: str, n: int | None = None) -> Loop:
    """Build the named suite loop at length *n* (default: L1-resident)."""
    require_in(
        name, LOOP_NAMES + MATH_LOOP_NAMES, "loop name"
    )
    x = Load("x")

    if name == "simple":
        n = n if n is not None else l1_resident_length(n_arrays=2)
        body = Store(
            "y",
            BinOp("+", BinOp("*", Const(2.0), x),
                  BinOp("*", Const(3.0), BinOp("*", x, x))),
        )
        return Loop("simple", n, (body,), _xy_arrays(n))

    if name == "predicate":
        n = n if n is not None else l1_resident_length(n_arrays=2)
        body = Store("y", x, mask=Cmp(">", x, Const(0.0)))
        return Loop("predicate", n, (body,), _xy_arrays(n))

    if name in ("gather", "scatter", "short_gather", "short_scatter"):
        n = n if n is not None else l1_resident_length(n_arrays=3)
        short = name.startswith("short_")
        pattern = "window128" if short else "random"
        idx_info = ArrayInfo("index", footprint=8.0 * n)
        if name.endswith("gather"):
            arrays = {
                "x": ArrayInfo("x", footprint=8.0 * n, pattern=pattern),
                "y": ArrayInfo("y", footprint=8.0 * n),
                "index": idx_info,
            }
            body = Store("y", Load("x", index=Load("index")))
        else:
            arrays = {
                "x": ArrayInfo("x", footprint=8.0 * n),
                "y": ArrayInfo("y", footprint=8.0 * n, pattern=pattern),
                "index": idx_info,
            }
            body = Store("y", x, index=Load("index"))
        return Loop(name, n, (body,), arrays)

    # math loops
    n = n if n is not None else l1_resident_length(n_arrays=2)
    if name == "recip":
        expr = Call("recip", (x,))
    elif name == "pow":
        expr = Call("pow", (x, Var("p")))
    else:
        expr = Call(name, (x,))
    return Loop(name, n, (Store("y", expr),), _xy_arrays(n))


# ---------------------------------------------------------------------------
# numpy reference implementations (real numerics)
# ---------------------------------------------------------------------------


def _ref_simple(x: np.ndarray) -> np.ndarray:
    return 2.0 * x + 3.0 * x * x


def _ref_predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.where(x > 0.0, x, y)


def _ref_gather(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
    return x[idx]


def _ref_scatter(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
    y = np.empty_like(x)
    y[idx] = x
    return y


_MATH_REFS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "recip": lambda x: recip_newton(x),
    "sqrt": lambda x: sqrt_newton(x),
    "exp": lambda x: exp_fexpa(x),
    "sin": lambda x: sin_poly(x),
    "pow": lambda x: pow_explog(x, POW_EXPONENT),
    "log": lambda x: log_poly(x),
}


def reference_run(name: str, n: int | None = None, seed: int = 7):
    """Run the named kernel's reference numerics on random data.

    Returns ``(inputs, output)`` where ``inputs`` is a dict of the arrays
    used.  These are *this project's* math kernels for the math loops (the
    Newton/FEXPA algorithms), so the suite exercises the real library
    implementations, not just numpy built-ins.
    """
    require_in(name, LOOP_NAMES + MATH_LOOP_NAMES, "loop name")
    loop = build_loop(name, n)
    n = loop.length
    rng = np.random.default_rng(seed)

    if name in ("simple", "predicate"):
        x = rng.standard_normal(n)
        if name == "simple":
            return {"x": x}, _ref_simple(x)
        y0 = rng.standard_normal(n)
        return {"x": x, "y0": y0}, _ref_predicate(x, y0)

    if name in ("gather", "scatter", "short_gather", "short_scatter"):
        short = name.startswith("short_")
        x = rng.standard_normal(n)
        idx = make_permutation(n, short=short, seed=seed)
        if name.endswith("gather"):
            return {"x": x, "index": idx}, _ref_gather(x, idx)
        return {"x": x, "index": idx}, _ref_scatter(x, idx)

    # math loops: positive operands keep recip/sqrt/pow in-domain
    x = rng.uniform(0.1, 10.0, n)
    return {"x": x}, _MATH_REFS[name](x)
