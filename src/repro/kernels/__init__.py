"""The paper's kernel suite: Section III test loops and the Monte Carlo
motivating example, plus the workload-signature machinery used by the
application studies (NPB, LULESH).

* :mod:`repro.kernels.loops` — simple / predicate / gather / scatter /
  short-gather / short-scatter / math-function loops as IR + numpy
  reference implementations.
* :mod:`repro.kernels.mc` — the Monte Carlo exponential-integral example
  from the introduction (serial Markov chain vs vectorized independent
  chains).
* :mod:`repro.kernels.workload` — aggregate workload signatures and the
  application performance model built on them.
"""

from repro.kernels.loops import (
    LOOP_NAMES,
    MATH_LOOP_NAMES,
    build_loop,
    make_permutation,
    reference_run,
)
from repro.kernels.mc import (
    mc_exp_integral_serial,
    mc_exp_integral_vectorized,
    mc_serial_stream,
)
from repro.kernels.workload import Workload

__all__ = [
    "LOOP_NAMES",
    "MATH_LOOP_NAMES",
    "build_loop",
    "make_permutation",
    "reference_run",
    "mc_exp_integral_serial",
    "mc_exp_integral_vectorized",
    "mc_serial_stream",
    "Workload",
]
