"""Unified kernel catalog across the suite and SpMV/stencil families.

Every prediction tier — the analytical ECM model, the fast engine, the
full simulation — and every CLI entry point resolves kernel names
through this one table, so ``repro ecm spmv_crs`` and
``repro profile simple`` share a namespace.  The SpMV builders are
imported lazily to keep the dependency direction clean: the engine and
sweep layers may import the catalog without pulling in
:mod:`repro.spmv` (or, transitively, numpy reference numerics) until a
SpMV kernel is actually requested.
"""

from __future__ import annotations

from repro._util import require_in
from repro.compilers.ir import Loop
from repro.kernels.loops import LOOP_NAMES, MATH_LOOP_NAMES

__all__ = ["ALL_KERNEL_NAMES", "SUITE_KERNEL_NAMES", "build_kernel"]

#: the Fig. 1/2 loop-suite kernels (Sections III/IV of the paper)
SUITE_KERNEL_NAMES: tuple[str, ...] = LOOP_NAMES + MATH_LOOP_NAMES

#: SpMV/stencil workload names, duplicated here as a plain literal so
#: listing the catalog never imports the spmv package
_SPMV_NAMES: tuple[str, ...] = ("spmv_crs", "spmv_sell", "stencil2d",
                                "stencil3d")

#: every kernel any tier can predict
ALL_KERNEL_NAMES: tuple[str, ...] = SUITE_KERNEL_NAMES + _SPMV_NAMES


def build_kernel(name: str, n: int | None = None) -> Loop:
    """Build any catalogued kernel as loop IR.

    ``n`` means what it means for the underlying family: vector length
    for the suite loops (default L1-resident), matrix rows / grid points
    for the SpMV and stencil kernels (default DRAM-resident).
    """
    require_in(name, ALL_KERNEL_NAMES, "kernel name")
    if name in SUITE_KERNEL_NAMES:
        from repro.kernels.loops import build_loop

        return build_loop(name, n)
    from repro.spmv.kernels import build_spmv_loop

    return build_spmv_loop(name, n)
