"""Figure 4: NPB class C full-node runtimes, including the
fujitsu-first-touch configuration."""

from repro.bench.figures import fig4_npb_fullnode


def test_fig4(benchmark, print_rows):
    rows = benchmark(fig4_npb_fullnode)
    print_rows(
        "Figure 4: NPB class C full-node runtime (s, model)",
        rows,
        columns=["bench", "config", "seconds"],
    )
    t = {(r["bench"], r["config"]): r["seconds"] for r in rows}
    # A64FX wins the memory-bound apps, Skylake the compute-bound ones
    for bench in ("SP", "UA", "CG"):
        assert t[(bench, "gnu")] < t[(bench, "intel/skylake")], bench
    for bench in ("BT", "LU", "EP"):
        assert t[(bench, "intel/skylake")] < t[(bench, "gnu")], bench
    # first touch rescues SP for the Fujitsu runtime
    assert t[("SP", "fujitsu-first-touch")] < t[("SP", "fujitsu")] / 1.5
