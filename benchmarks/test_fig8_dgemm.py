"""Figure 8: DGEMM per-core performance and percent of peak."""

import numpy as np
import pytest

from repro.bench.expected import FIG8_PERCENT_OF_PEAK
from repro.bench.figures import fig8_dgemm


def test_fig8(benchmark, print_rows):
    rows = benchmark(fig8_dgemm)
    print_rows(
        "Figure 8: DGEMM GFLOP/s per core (model)",
        rows,
        columns=["system", "library", "gflops_per_core", "percent_of_peak"],
    )
    by = {(r["system"], r["library"]): r for r in rows}
    for key, pct in FIG8_PERCENT_OF_PEAK.items():
        assert by[key]["percent_of_peak"] == pytest.approx(pct, abs=1.0)
    fj = by[("ookami", "fujitsu-blas")]["gflops_per_core"]
    ob = by[("ookami", "openblas")]["gflops_per_core"]
    assert fj / ob == pytest.approx(14.0, rel=0.15)


def test_dgemm_blocked_numeric(benchmark):
    """Time the real blocked GEMM (the numeric half of Fig. 8)."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    b = rng.standard_normal((256, 256))
    from repro.hpcc.dgemm import dgemm_blocked

    c = benchmark(dgemm_blocked, a, b, 64)
    assert np.allclose(c, a @ b, atol=1e-10)
