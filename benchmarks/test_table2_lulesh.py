"""Table II / Figure 7: LULESH timings per toolchain, model vs paper."""

import pytest

from repro.bench.figures import table2_lulesh


def test_table2(benchmark, print_rows):
    rows = benchmark(table2_lulesh)
    print_rows(
        "Table II: LULESH timings (model vs paper)",
        rows,
        columns=["compiler", "base_st", "paper_base_st", "vect_st",
                 "paper_vect_st", "base_mt", "paper_base_mt", "vect_mt",
                 "paper_vect_mt"],
    )
    by = {r["compiler"]: r for r in rows}
    # the four A64FX Base(st) entries agree with each other and the paper
    for c in ("arm", "cray", "fujitsu", "gnu"):
        assert by[c]["base_st"] == pytest.approx(by[c]["paper_base_st"],
                                                 rel=0.2)
    assert by["intel"]["base_st"] == pytest.approx(0.395, rel=0.2)
    # vectorization helps everywhere
    for r in rows:
        assert r["vect_st"] < r["base_st"]


def test_sedov_hydro_step(benchmark):
    """Time the real Sedov hydro solver (the numeric half of Sec. VI)."""
    from repro.apps.lulesh.hydro import SedovSpherical

    def run():
        s = SedovSpherical(nzones=150)
        s.run(0.05)
        return s

    s = benchmark(run)
    assert s.total_energy() == pytest.approx(0.5, rel=0.02)


def test_hex_kernels_vect_vs_base(benchmark):
    """The Vect speedup on the real hex-volume kernel."""
    import numpy as np

    from repro.apps.lulesh.hexkernels import (
        hex_volumes_base,
        hex_volumes_vect,
        make_box_mesh,
    )

    coords, conn = make_box_mesh(12, jitter=0.3, seed=0)
    v = benchmark(hex_volumes_vect, coords, conn)
    assert np.allclose(np.sum(v), 1.0)
    assert np.array_equal(v, hex_volumes_base(coords, conn))
