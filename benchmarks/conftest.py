"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper
(`pytest benchmarks/ --benchmark-only`).  Benchmarks time the *model* —
the pipeline scheduler, the threading model, the analytic memory model —
and print the regenerated artifact alongside the paper's expected values
so a run doubles as the reproduction report.
"""

import pytest


@pytest.fixture(scope="session")
def print_rows():
    """Pretty-print helper: renders rows once per benchmark session."""
    from repro._util import format_table

    printed = set()

    def _print(title: str, rows, columns=None):
        if title in printed:
            return
        printed.add(title)
        bar = "=" * max(8, len(title))
        print(f"\n{title}\n{bar}\n{format_table(rows, columns)}")

    return _print
