"""Ablation benchmarks: the design choices DESIGN.md calls out, each
switched off to show it carries its figure."""

from repro.bench.ablations import (
    blocking_sqrt_ablation,
    coalescing_ablation,
    newton_steps_ablation,
    placement_ablation,
    unroll_ablation,
    window_ablation,
)


def test_window_ablation(benchmark, print_rows):
    rows = benchmark(window_ablation)
    print_rows("Ablation: ROB window vs Sec. IV exp kernel", rows)
    by = {r["window"]: r["cycles_per_elem"] for r in rows}
    # small windows expose the chain; large ones converge to port bound
    assert by[16] > 2.0 * by[256]
    assert by[256] <= by[128] <= by[32]


def test_unroll_ablation(benchmark, print_rows):
    rows = benchmark(unroll_ablation)
    print_rows("Ablation: unroll factor vs FEXPA kernel", rows)
    by = {r["unroll"]: r["cycles_per_elem"] for r in rows}
    assert by[2] < by[1]  # "Unrolling once decreased this..."
    assert by[8] <= by[2]


def test_coalescing_ablation(benchmark, print_rows):
    rows = benchmark(coalescing_ablation)
    print_rows("Ablation: 128-byte gather pair coalescing", rows)
    t = {(r["machine"].split(" ")[0], r["loop"]): r["cycles_per_elem"]
         for r in rows}
    # with the rule: short gather ~2x cheaper; without: no difference
    assert t[("with", "short_gather")] < 0.75 * t[("with", "gather")]
    assert abs(t[("without", "short_gather")] - t[("without", "gather")]) < 0.05


def test_placement_ablation(benchmark, print_rows):
    rows = benchmark(placement_ablation)
    print_rows("Ablation: NUMA placement vs SP full-node", rows)
    t = {(r["threads"], r["placement"]): r["seconds"] for r in rows}
    # at 48 threads the CMG-0 policy is the pathology; at 12 (one CMG)
    # the policies coincide
    assert t[(48, "single_domain")] > 1.5 * t[(48, "first_touch")]
    assert abs(t[(12, "single_domain")] - t[(12, "first_touch")]) < 0.5


def test_newton_steps_ablation(benchmark, print_rows):
    rows = benchmark(newton_steps_ablation, samples=50_000)
    print_rows("Ablation: Newton steps — accuracy vs cost", rows)
    by = {r["method"]: r for r in rows}
    # accuracy improves with steps; even 3 steps stay far cheaper than
    # the blocking hardware instruction
    assert by["newton-3step"]["max_ulp"] < by["newton-1step"]["max_ulp"]
    assert (by["newton-3step"]["cycles_per_elem_tput"]
            < by["hardware FSQRT (blocking)"]["cycles_per_elem_tput"] / 5)


def test_blocking_sqrt_ablation(benchmark, print_rows):
    rows = benchmark(blocking_sqrt_ablation)
    print_rows("Ablation: blocking vs pipelined FSQRT", rows)
    blocking = rows[0]["gnu_vs_fujitsu"]
    pipelined = rows[1]["gnu_vs_fujitsu"]
    # the 'blocking' property carries most of the Fig. 2 sqrt gap
    assert blocking > 3 * pipelined
