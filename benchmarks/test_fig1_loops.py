"""Figure 1: runtime of simple vector loops relative to Skylake+Intel.

Benchmarks the full pipeline (IR -> vectorize -> lower -> schedule) for
the six structural loops across all five toolchains, and prints the
regenerated figure.
"""

from repro.bench.expected import FIG1_FIG2_RATIO_BANDS
from repro.bench.figures import fig1_loop_suite


def test_fig1(benchmark, print_rows):
    rows = benchmark(fig1_loop_suite)
    print_rows(
        "Figure 1: loop runtimes relative to Skylake (model)",
        rows,
        columns=["loop", "toolchain", "cycles_per_elem", "ns_per_elem",
                 "rel_skylake"],
    )
    for row in rows:
        if row["toolchain"] == "fujitsu":
            lo, hi = FIG1_FIG2_RATIO_BANDS[row["loop"]]
            assert lo <= row["rel_skylake"] <= hi, row["loop"]
