"""Table III: specifications of the compared HPC systems (derived)."""

from repro.bench.expected import TABLE3_EXPECTED
from repro.bench.figures import table3_systems


def test_table3(benchmark, print_rows):
    rows = benchmark(table3_systems)
    print_rows(
        "Table III: system specifications (derived from the models)",
        rows,
    )
    for got, want in zip(rows, TABLE3_EXPECTED):
        assert got["cores_per_node"] == want["cores"]
        assert got["simd"] == want["simd"]
        assert abs(got["peak_gflops_core"] - want["peak_core"]) < 0.1
        assert abs(got["peak_gflops_node"] - want["peak_node"]) <= 3
