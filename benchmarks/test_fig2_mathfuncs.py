"""Figure 2: runtime of vectorized math functions relative to Skylake.

The math loops exercise the full library-model path: per-toolchain
recipes (FEXPA / 13-term / sleef / SVML), Newton-vs-hardware instruction
selection, and GNU's scalar-libm fallback.
"""

from repro.bench.expected import FIG1_FIG2_RATIO_BANDS
from repro.bench.figures import fig2_math_suite


def test_fig2(benchmark, print_rows):
    rows = benchmark(fig2_math_suite)
    print_rows(
        "Figure 2: math-function runtimes relative to Skylake (model)",
        rows,
        columns=["loop", "toolchain", "cycles_per_elem", "rel_skylake",
                 "vectorized"],
    )
    for row in rows:
        if row["toolchain"] == "fujitsu":
            lo, hi = FIG1_FIG2_RATIO_BANDS[row["loop"]]
            assert lo <= row["rel_skylake"] <= hi, row["loop"]
        if row["toolchain"] == "gnu" and row["loop"] in ("exp", "sin", "pow"):
            assert not row["vectorized"]
