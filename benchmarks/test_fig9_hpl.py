"""Figure 9A/9B: HPL single- and multi-node performance."""

import pytest

from repro.bench.figures import fig9_hpl


def test_fig9ab(benchmark, print_rows):
    rows = benchmark(fig9_hpl)
    print_rows(
        "Figure 9A/9B: HPL GFLOP/s (model)",
        rows,
        columns=["system", "library", "nodes", "gflops"],
    )
    one = {(r["system"], r["library"]): r["gflops"]
           for r in rows if r["nodes"] == 1}
    # single node: fujitsu ~10x openblas; node parity with SKX
    assert one[("ookami", "fujitsu-blas")] / one[("ookami", "openblas")] == (
        pytest.approx(10.0, rel=0.25)
    )
    assert one[("ookami", "fujitsu-blas")] == pytest.approx(
        one[("skx", "mkl-skx")], rel=0.15
    )
    # multi node: ARMPL overtakes Fujitsu MPI beyond one node
    multi = {(r["library"], r["nodes"]): r["gflops"]
             for r in rows if r["system"] == "ookami"}
    assert multi[("armpl", 8)] > multi[("fujitsu-blas", 8)]


def test_hpl_numeric(benchmark):
    """Time the real blocked LU solve with residual verification."""
    from repro.hpcc.hpl import hpl_benchmark

    result = benchmark(hpl_benchmark, 192, 32)
    assert result.passed
