"""Figure 9C/9D: FFT single- and multi-node performance."""

import numpy as np
import pytest

from repro.bench.figures import fig9_fft


def test_fig9cd(benchmark, print_rows):
    rows = benchmark(fig9_fft)
    print_rows(
        "Figure 9C/9D: FFT GFLOP/s (model)",
        rows,
        columns=["system", "library", "nodes", "gflops"],
    )
    one = {(r["system"], r["library"]): r["gflops"]
           for r in rows if r["nodes"] == 1}
    assert one[("ookami", "fujitsu-fftw")] / one[("ookami", "fftw")] == (
        pytest.approx(4.2, rel=0.1)
    )
    # multi-node flatness for the Fujitsu stack
    fj = [r["gflops"] for r in rows
          if r["library"] == "fujitsu-fftw" and r["system"] == "ookami"]
    assert max(fj) / min(fj) < 2.5


def test_fft_numeric(benchmark):
    """Time the real radix-2 FFT against numpy."""
    from repro.hpcc.fft import fft_iterative

    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 14) + 1j * rng.standard_normal(1 << 14)
    y = benchmark(fft_iterative, x)
    ref = np.fft.fft(x)
    assert np.max(np.abs(y - ref)) / np.max(np.abs(ref)) < 1e-12
