#!/usr/bin/env python
"""Time the simulation engine and record the performance trajectory.

Thin script entry over :mod:`repro.bench.enginebench` (also reachable as
``python -m repro bench``): times the scheduler over the Fig. 1 + Fig. 2
kernel set cold (seed implementation), cold (event-driven fast path),
warm-cache, and through the parallel sweep runner, verifies the fast
paths against the seed scheduler, and writes versioned results to
``BENCH_engine.json`` (format ``repro.bench/1``).

Run:  python benchmarks/engine_bench.py [--quick] [--out PATH]
"""

import sys

if __name__ == "__main__":
    from repro.bench.enginebench import main

    raise SystemExit(main(sys.argv[1:]))
