"""Section IV: the exponential-function study.

Regenerates the cycles/element and ULP table — including the real
numeric ULP measurement of the FEXPA kernel — and benchmarks both the
model side (scheduling the kernels) and the numeric side (evaluating
exp over a large vector with this project's implementations).
"""

import numpy as np

from repro.bench.expected import SEC4_EXP_CYCLES
from repro.bench.figures import sec4_exp_study


def test_sec4_table(benchmark, print_rows):
    rows = benchmark(sec4_exp_study, ulp_samples=100_000)
    print_rows(
        "Section IV: exponential function (model cycles + measured ULP)",
        rows,
        columns=["impl", "cycles_per_elem", "max_ulp", "bound"],
    )
    by_impl = {r["impl"]: r for r in rows}
    # paper-quoted cycle counts (model within a band)
    assert by_impl["gnu library (scalar libm)"]["cycles_per_elem"] == (
        __import__("pytest").approx(SEC4_EXP_CYCLES["gnu-serial"], rel=0.1)
    )
    assert by_impl["fexpa-vla (paper kernel)"]["max_ulp"] <= 6.0


def test_exp_fexpa_numeric_throughput(benchmark):
    """Time the actual numpy FEXPA-exp kernel over 1M elements."""
    from repro.mathlib.exp import exp_fexpa

    rng = np.random.default_rng(0)
    x = rng.uniform(-700, 700, 1_000_000)
    result = benchmark(exp_fexpa, x)
    assert np.all(np.isfinite(result))


def test_exp_plain_numeric_throughput(benchmark):
    from repro.mathlib.exp import exp_plain

    rng = np.random.default_rng(1)
    x = rng.uniform(-700, 700, 1_000_000)
    result = benchmark(exp_plain, x)
    assert np.all(np.isfinite(result))
