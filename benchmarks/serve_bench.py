#!/usr/bin/env python
"""Benchmark the persistent prediction server end to end.

Thin script entry over :mod:`repro.serve.bench` (also reachable as
``python -m repro serve-bench``): replays a deterministic request mix
against a naive one-request-at-a-time server with no cross-request
reuse, then against the batching/deduplicating server at several
closed-loop concurrency levels over the real TCP transport, checks
every batched response bit-identical to its naive twin, and writes
versioned results to ``BENCH_serve.json`` (format
``repro.serve-bench/1``).  Exits non-zero when the speedup floor is
breached or any response mismatches.

Run:  python benchmarks/serve_bench.py [--quick] [--out PATH]
"""

import sys

if __name__ == "__main__":
    from repro.serve.bench import main

    raise SystemExit(main(sys.argv[1:]))
