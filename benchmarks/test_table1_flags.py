"""Table I: compiler flags used in the loop vectorization tests."""


def test_table1(benchmark, print_rows):
    from repro.bench.figures import table1_flags

    rows = benchmark(table1_flags)
    print_rows("Table I: compiler flags", rows,
               columns=["compiler", "version", "flags"])
    assert len(rows) == 5
