"""Figure 5: NPB parallel efficiency on A64FX with GCC."""

from repro.bench.expected import FIG5_EFFICIENCY_BANDS
from repro.bench.figures import fig5_scaling_a64fx


def test_fig5(benchmark, print_rows):
    rows = benchmark(fig5_scaling_a64fx)
    print_rows(
        "Figure 5: A64FX (GCC) parallel efficiency (model)",
        rows,
        columns=["bench", "threads", "efficiency"],
    )
    at48 = {r["bench"]: r["efficiency"] for r in rows if r["threads"] == 48}
    for bench, (lo, hi) in FIG5_EFFICIENCY_BANDS.items():
        assert lo <= at48[bench] <= hi, bench
    # EP scales almost linearly; SP is the least efficient
    assert at48["EP"] > 0.95
    assert min(at48, key=at48.get) == "SP"
