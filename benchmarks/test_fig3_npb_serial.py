"""Figure 3: NPB class C single-core runtime per compiler."""

from repro.bench.expected import FIG3_RATIO_BANDS
from repro.bench.figures import fig3_npb_serial


def test_fig3(benchmark, print_rows):
    rows = benchmark(fig3_npb_serial)
    print_rows(
        "Figure 3: NPB class C serial runtime (s, model)",
        rows,
        columns=["bench", "toolchain", "seconds", "rel_icc"],
    )
    best = {}
    for row in rows:
        if row["toolchain"] != "intel":
            best.setdefault(row["bench"], []).append(row["rel_icc"])
    for bench, ratios in best.items():
        lo, hi = FIG3_RATIO_BANDS[bench]
        assert lo <= min(ratios) <= hi, bench
