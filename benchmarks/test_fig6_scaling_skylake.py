"""Figure 6: NPB parallel efficiency on Skylake with icc."""

from repro.bench.expected import FIG6_EFFICIENCY_BANDS
from repro.bench.figures import fig6_scaling_skylake


def test_fig6(benchmark, print_rows):
    rows = benchmark(fig6_scaling_skylake)
    print_rows(
        "Figure 6: Skylake (icc) parallel efficiency (model)",
        rows,
        columns=["bench", "threads", "efficiency"],
    )
    at36 = {r["bench"]: r["efficiency"] for r in rows if r["threads"] == 36}
    for bench, (lo, hi) in FIG6_EFFICIENCY_BANDS.items():
        assert lo <= at36[bench] <= hi, bench
    # the paper's envelope: EP at the top, SP at the bottom
    assert max(at36, key=at36.get) == "EP"
    assert min(at36, key=at36.get) == "SP"
