"""Tests for the application performance model (Workload -> seconds)."""

import pytest

from repro.compilers.toolchains import FUJITSU, GNU, INTEL
from repro.kernels.workload import (
    Workload,
    math_cycles_per_call,
    parallel_run,
    serial_seconds,
)
from repro.machine.numa import PagePlacement
from repro.machine.systems import get_system


OOKAMI = get_system("ookami")
SKYLAKE = get_system("skylake")


def _work(**kw):
    defaults = dict(name="t", flops=1e12, vector_fraction=0.9)
    defaults.update(kw)
    return Workload(**defaults)


class TestValidation:
    def test_fraction_ranges(self):
        with pytest.raises(ValueError):
            _work(vector_fraction=1.5)
        with pytest.raises(ValueError):
            _work(vec_efficiency=-0.1)

    def test_gather_needs_footprint(self):
        with pytest.raises(ValueError):
            _work(l2_gather_accesses=10.0)


class TestSerialModel:
    def test_scalar_code_slower_on_a64fx(self):
        """The 9-vs-4-cycle scalar latency gap: A64FX pays ~2.25x more
        cycles for unvectorized code (the LULESH Base(st) mechanism)."""
        w = _work(vector_fraction=0.0)
        a = serial_seconds(w, OOKAMI, GNU) * 1.8e9     # cycles
        s = serial_seconds(w, SKYLAKE, INTEL) * 3.7e9  # cycles
        assert a / s == pytest.approx(9.0 / 4.0, rel=0.05)

    def test_vectorized_code_narrows_gap(self):
        w_scalar = _work(vector_fraction=0.0)
        w_vec = _work(vector_fraction=1.0)
        gap_scalar = serial_seconds(w_scalar, OOKAMI, GNU) / serial_seconds(
            w_scalar, SKYLAKE, INTEL
        )
        gap_vec = serial_seconds(w_vec, OOKAMI, GNU) / serial_seconds(
            w_vec, SKYLAKE, INTEL
        )
        assert gap_vec < gap_scalar

    def test_memory_bound_workload(self):
        w = _work(flops=1e6, contig_bytes=1e12)
        t = serial_seconds(w, OOKAMI, GNU)
        assert t == pytest.approx(1e12 / (36.0 * 1e9), rel=0.05)

    def test_scalar_math_uses_libm_table(self):
        w = _work(flops=1.0, math_calls={"exp": 1e9},
                  math_vectorized=False)
        gnu_t = serial_seconds(w, OOKAMI, GNU)
        fj_t = serial_seconds(w, OOKAMI, FUJITSU)
        # 32-cycle glibc exp vs the ~10-cycle Fujitsu scalar exp
        assert gnu_t / fj_t == pytest.approx(32.0 / (10.0 * 1.1), rel=0.1)

    def test_vector_math_uses_pipeline_model(self):
        gnu = math_cycles_per_call("exp", GNU, OOKAMI, vectorized=True)
        fj = math_cycles_per_call("exp", FUJITSU, OOKAMI, vectorized=True)
        assert gnu > 15 * fj  # scalarized loop vs FEXPA kernel

    def test_toolchain_factor(self):
        w0 = _work()
        w3 = _work(toolchain_factor={"gnu": 3.0})
        assert serial_seconds(w3, OOKAMI, GNU) == pytest.approx(
            3.0 * serial_seconds(w0, OOKAMI, GNU)
        )
        assert serial_seconds(w3, OOKAMI, FUJITSU) == pytest.approx(
            serial_seconds(w0, OOKAMI, FUJITSU)
        )

    def test_l2_gather_serving_level_differs(self):
        """CG's x vector: in-L2 on A64FX (8 MB/CMG), spilled to L3 on
        Skylake (1 MB L2) — the narrow-CG-gap mechanism."""
        w = _work(flops=1.0, l2_gather_accesses=1e9,
                  gather_footprint=1.2e6)
        a_cyc = serial_seconds(w, OOKAMI, GNU) * 1.8e9
        s_cyc = serial_seconds(w, SKYLAKE, INTEL) * 3.7e9
        assert a_cyc == pytest.approx(1e9 * 37 / 4, rel=0.05)
        assert s_cyc == pytest.approx(1e9 * 50 / 4, rel=0.05)


class TestParallelModel:
    def test_default_placement_comes_from_toolchain(self):
        w = _work(contig_bytes=5e12, flops=1e10)
        fj_default = parallel_run(w, OOKAMI, FUJITSU, 48)
        fj_ft = parallel_run(w, OOKAMI, FUJITSU, 48,
                             placement=PagePlacement.FIRST_TOUCH)
        assert fj_default.seconds > 2 * fj_ft.seconds

    def test_parallel_factor_scales(self):
        w = _work()
        base = parallel_run(w, OOKAMI, GNU, 48)
        anom = parallel_run(w, OOKAMI, GNU, 48, parallel_factor=2.0)
        assert anom.seconds == pytest.approx(2 * base.seconds)

    def test_parallel_factor_skips_single_thread(self):
        w = _work()
        base = parallel_run(w, OOKAMI, GNU, 1)
        anom = parallel_run(w, OOKAMI, GNU, 1, parallel_factor=2.0)
        assert anom.seconds == pytest.approx(base.seconds)

    def test_efficiency_decreases_with_threads(self):
        w = _work(parallel_fraction=0.99, imbalance=0.1)
        e8 = parallel_run(w, OOKAMI, GNU, 8).efficiency
        e48 = parallel_run(w, OOKAMI, GNU, 48).efficiency
        assert e8 > e48
