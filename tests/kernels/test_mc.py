"""Tests for the Monte Carlo motivating example."""

import pytest

from repro.engine.scheduler import schedule_on
from repro.kernels.mc import (
    mc_exp_integral_serial,
    mc_exp_integral_vectorized,
    mc_expected_mean,
    mc_serial_stream,
    mc_vector_stream,
)
from repro.machine.microarch import A64FX


class TestNumerics:
    def test_expected_mean_close_to_one(self):
        # E[x] under exp(-x) on [0, 23] is within 1e-8 of 1
        assert mc_expected_mean() == pytest.approx(1.0, abs=1e-7)

    def test_serial_estimates_mean(self):
        got = mc_exp_integral_serial(20_000, seed=1)
        assert got == pytest.approx(mc_expected_mean(), abs=0.08)

    def test_vectorized_estimates_mean(self):
        got = mc_exp_integral_vectorized(500_000, seed=2)
        assert got == pytest.approx(mc_expected_mean(), abs=0.02)

    def test_deterministic(self):
        a = mc_exp_integral_vectorized(100_000, seed=3)
        b = mc_exp_integral_vectorized(100_000, seed=3)
        assert a == b

    def test_seeds_differ(self):
        a = mc_exp_integral_vectorized(100_000, seed=3)
        b = mc_exp_integral_vectorized(100_000, seed=4)
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            mc_exp_integral_serial(0)
        with pytest.raises(ValueError):
            mc_exp_integral_vectorized(10, chains=0)


class TestPerformanceStory:
    """The paper's pedagogical point: the naive serial chain 'exposes
    nearly the full latency of most of the operations in the loop' while
    the restructured version is throughput-bound."""

    def test_serial_chain_exposes_latency(self):
        res = schedule_on(A64FX, mc_serial_stream())
        # two libm calls + dependent FP ops: >> 50 cycles per sample
        assert res.cycles_per_element > 50.0

    def test_vector_version_is_orders_faster(self):
        serial = schedule_on(A64FX, mc_serial_stream())
        vector = schedule_on(A64FX, mc_vector_stream())
        speedup = serial.cycles_per_element / vector.cycles_per_element
        # vector alone gives ~10-30x; with 48 threads this is the ~500x
        # class the paper's GPU comparison dramatizes
        assert speedup > 8.0

    def test_streams_validate(self):
        mc_serial_stream().validate()
        mc_vector_stream().validate()
