"""Tests for the Monte Carlo optimization ladder."""

import pytest

from repro.kernels.ladder import optimization_ladder
from repro.machine.microarch import A64FX


@pytest.fixture(scope="module")
def ladder():
    return optimization_ladder()


class TestLadder:
    def test_five_rungs(self, ladder):
        assert len(ladder) == 5
        assert [r.stage for r in ladder] == [0, 1, 2, 3, 4]

    def test_monotone_improvement(self, ladder):
        """The sequence never regresses (the chains rung is speed-neutral
        on a scalar core — see module docs — but enables the rest)."""
        speedups = [r.speedup_vs_naive for r in ladder]
        assert speedups[0] == 1.0
        assert all(b >= a * 0.999 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > speedups[0]

    def test_naive_is_latency_wall(self, ladder):
        """The naive chain 'exposes nearly the full latency of most of
        the operations in the loop'."""
        assert ladder[0].cycles_per_sample > 50

    def test_independent_chains_are_call_throughput_bound(self, ladder):
        """On a scalar core the libm call's throughput gates every chain:
        restructuring alone buys nothing until vectorization (the honest
        version of the paper's sequence)."""
        assert ladder[2].cycles_per_sample == pytest.approx(
            ladder[1].cycles_per_sample, rel=0.05
        )
        assert ladder[2].bound == "pipe:br"

    def test_vectorization_is_the_big_step(self, ladder):
        gains = [
            ladder[i + 1].speedup_vs_naive / ladder[i].speedup_vs_naive
            for i in range(3)
        ]
        assert max(gains) == gains[2]  # scalar->vector dominates

    def test_threaded_total_in_500x_class(self, ladder):
        """The full ladder lands in the class of the paper's 500-fold
        GPU-vs-naive-CPU anecdote."""
        assert ladder[-1].speedup_vs_naive > 300

    def test_rows_render(self, ladder):
        row = ladder[0].as_row()
        assert {"stage", "name", "transformation", "cycles_per_sample",
                "speedup", "bound"} == set(row)

    def test_chain_count_parameter(self):
        two = optimization_ladder(chains=2)
        eight = optimization_ladder(chains=8)
        assert eight[2].cycles_per_sample <= two[2].cycles_per_sample

    def test_validation(self):
        with pytest.raises(ValueError):
            optimization_ladder(threads=0)
