"""Tests for the Section III loop suite (IR builders + reference runs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import KIB
from repro.kernels.loops import (
    LOOP_NAMES,
    MATH_LOOP_NAMES,
    WINDOW_DOUBLES,
    build_loop,
    l1_resident_length,
    make_permutation,
    reference_run,
)


class TestSizing:
    def test_l1_resident_default(self):
        # two float64 arrays filling the 64 KiB A64FX L1
        n = l1_resident_length()
        assert n * 2 * 8 <= 64 * KIB
        assert n % WINDOW_DOUBLES == 0

    def test_three_array_case(self):
        n = l1_resident_length(n_arrays=3)
        assert n * 3 * 8 <= 64 * KIB

    def test_validation(self):
        with pytest.raises(ValueError):
            l1_resident_length(l1_bytes=0)


class TestPermutations:
    def test_full_permutation_is_permutation(self):
        idx = make_permutation(1024)
        assert np.array_equal(np.sort(idx), np.arange(1024))

    def test_short_permutation_is_permutation(self):
        idx = make_permutation(1024, short=True)
        assert np.array_equal(np.sort(idx), np.arange(1024))

    def test_short_stays_in_windows(self):
        """'randomly permuting within 128 byte windows (i.e., 16 doubles)'"""
        idx = make_permutation(4096, short=True)
        windows = idx // WINDOW_DOUBLES
        expected = np.arange(4096) // WINDOW_DOUBLES
        assert np.array_equal(windows, expected)

    def test_full_leaves_windows(self):
        idx = make_permutation(4096, short=False, seed=0)
        windows = idx // WINDOW_DOUBLES
        expected = np.arange(4096) // WINDOW_DOUBLES
        assert not np.array_equal(windows, expected)

    def test_short_requires_window_multiple(self):
        with pytest.raises(ValueError):
            make_permutation(100, short=True)

    def test_deterministic(self):
        assert np.array_equal(make_permutation(512, seed=5),
                              make_permutation(512, seed=5))

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_short_window_property(self, nwin):
        n = nwin * WINDOW_DOUBLES
        idx = make_permutation(n, short=True, seed=1)
        assert np.array_equal(np.sort(idx), np.arange(n))
        assert np.all(idx // WINDOW_DOUBLES == np.arange(n) // WINDOW_DOUBLES)


class TestBuilders:
    @pytest.mark.parametrize("name", LOOP_NAMES + MATH_LOOP_NAMES)
    def test_builds(self, name):
        loop = build_loop(name)
        assert loop.name == name
        assert loop.length > 0

    def test_unknown_loop(self):
        with pytest.raises(ValueError):
            build_loop("fancy")

    def test_gather_has_window_pattern_when_short(self):
        loop = build_loop("short_gather")
        assert loop.arrays["x"].pattern == "window128"
        loop = build_loop("gather")
        assert loop.arrays["x"].pattern == "random"

    def test_explicit_length(self):
        assert build_loop("simple", n=128).length == 128


class TestReferenceRuns:
    def test_simple_values(self):
        inputs, out = reference_run("simple", n=256)
        x = inputs["x"]
        assert np.allclose(out, 2 * x + 3 * x * x)

    def test_predicate_values(self):
        inputs, out = reference_run("predicate", n=256)
        x, y0 = inputs["x"], inputs["y0"]
        assert np.array_equal(out, np.where(x > 0, x, y0))

    def test_gather_scatter_inverse(self):
        gi, gout = reference_run("gather", n=256, seed=3)
        si, sout = reference_run("scatter", n=256, seed=3)
        # gather then scatter with the same permutation is the identity
        assert np.array_equal(gi["index"], si["index"])
        idx = gi["index"]
        x = gi["x"]
        y = np.empty_like(x)
        y[idx] = x[idx]
        assert np.array_equal(y, x)

    def test_scatter_values(self):
        inputs, out = reference_run("scatter", n=128)
        x, idx = inputs["x"], inputs["index"]
        assert np.array_equal(out[idx], x)

    @pytest.mark.parametrize("name", MATH_LOOP_NAMES)
    def test_math_loops_match_numpy(self, name):
        inputs, out = reference_run(name, n=2048)
        x = inputs["x"]
        ref = {
            "recip": lambda v: 1.0 / v,
            "sqrt": np.sqrt,
            "exp": np.exp,
            "sin": np.sin,
            "pow": lambda v: np.power(v, 1.5),
        }[name](x)
        assert np.allclose(out, ref, rtol=1e-12)
