"""Tests for the Sedov-blast Lagrangian hydro solver — the 'analytic
answers' LULESH is defined by (paper Sec. VI)."""

import numpy as np
import pytest

from repro.apps.lulesh.hydro import GAMMA, SedovSpherical


@pytest.fixture(scope="module")
def evolved():
    s = SedovSpherical(nzones=150)
    ts, rs = [], []
    for t_end in (0.02, 0.04, 0.08, 0.16, 0.32):
        s.run(t_end)
        ts.append(s.t)
        rs.append(s.shock_radius())
    return s, np.array(ts), np.array(rs)


class TestConservation:
    def test_mass_exactly_conserved(self, evolved):
        s, _, _ = evolved
        expected = s.rho0 * (4.0 / 3.0) * np.pi * s.rmax**3
        assert s.total_mass() == pytest.approx(expected, rel=1e-12)

    def test_energy_conserved_to_scheme_accuracy(self, evolved):
        s, _, _ = evolved
        assert s.total_energy() == pytest.approx(s.e_blast, rel=0.02)

    def test_density_positive(self, evolved):
        s, _, _ = evolved
        assert np.all(s.rho > 0)

    def test_mesh_stays_ordered(self, evolved):
        s, _, _ = evolved
        assert np.all(np.diff(s.r) > 0)


class TestSedovSimilarity:
    def test_shock_exponent(self, evolved):
        """r_s ~ t^(2/5): the Sedov-Taylor point-blast similarity law."""
        _, ts, rs = evolved
        slope = np.polyfit(np.log(ts), np.log(rs), 1)[0]
        assert slope == pytest.approx(SedovSpherical.sedov_exponent(),
                                      abs=0.04)

    def test_shock_moves_outward(self, evolved):
        _, _, rs = evolved
        assert np.all(np.diff(rs) > 0)

    def test_density_jump_near_strong_shock_limit(self, evolved):
        """Rankine-Hugoniot: peak compression approaches
        (gamma+1)/(gamma-1) = 6 for gamma = 1.4 (artificial viscosity
        smears it somewhat)."""
        s, _, _ = evolved
        limit = (GAMMA + 1) / (GAMMA - 1)
        assert 0.5 * limit < np.max(s.rho) <= 1.1 * limit

    def test_resolution_convergence(self):
        """Shock position converges with mesh refinement."""
        radii = []
        for nz in (50, 100, 200):
            s = SedovSpherical(nzones=nz)
            s.run(0.1)
            radii.append(s.shock_radius())
        assert abs(radii[2] - radii[1]) < abs(radii[1] - radii[0]) + 0.01


class TestMechanics:
    def test_dt_positive_and_bounded(self):
        s = SedovSpherical(nzones=60)
        dt = s.step()
        assert 0 < dt < 0.01

    def test_origin_pinned(self):
        s = SedovSpherical(nzones=60)
        s.run(0.05)
        assert s.r[0] == 0.0
        assert s.u[0] == 0.0

    def test_run_reports_cycles(self):
        s = SedovSpherical(nzones=60)
        n = s.run(0.02)
        assert n == s.cycles > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SedovSpherical(nzones=5)
        with pytest.raises(ValueError):
            SedovSpherical(nzones=60).run(-1.0)

    def test_max_cycles_guard(self):
        s = SedovSpherical(nzones=60)
        with pytest.raises(RuntimeError):
            s.run(10.0, max_cycles=3)
