"""Tests for the Table II / Figure 7 LULESH timing model."""

import pytest

from repro.apps.lulesh.model import (
    TABLE2_PAPER,
    lulesh_time,
    table2_rows,
)


@pytest.fixture(scope="module")
def rows():
    return {r["compiler"]: r for r in table2_rows()}


class TestBaseSingleThread:
    def test_a64fx_compilers_agree(self, rows):
        """Table II Base(st): 2.030-2.055 s on every A64FX toolchain —
        the reference code is scalar everywhere, so the machine's scalar
        rate dominates and the compilers converge."""
        vals = [rows[c]["base_st"] for c in ("arm", "cray", "fujitsu", "gnu")]
        assert max(vals) / min(vals) < 1.25

    @pytest.mark.parametrize("compiler", ["arm", "cray", "fujitsu", "gnu"])
    def test_a64fx_base_st_matches_paper(self, rows, compiler):
        got = rows[compiler]["base_st"]
        paper = TABLE2_PAPER[(compiler, "base")]["st"]
        assert got == pytest.approx(paper, rel=0.20)

    def test_intel_base_st(self, rows):
        # the 5x scalar gap: 0.395 s vs ~2.05 s
        assert rows["intel"]["base_st"] == pytest.approx(0.395, rel=0.20)

    def test_scalar_gap_is_about_5x(self, rows):
        gap = rows["gnu"]["base_st"] / rows["intel"]["base_st"]
        assert 3.5 <= gap <= 6.5


class TestVectVariant:
    @pytest.mark.parametrize("compiler", ["arm", "cray", "fujitsu", "gnu",
                                          "intel"])
    def test_vect_faster_than_base(self, rows, compiler):
        """'promising vectorization for LULESH based on code tuned for
        Intel architectures'"""
        assert rows[compiler]["vect_st"] < rows[compiler]["base_st"]

    @pytest.mark.parametrize("compiler", ["arm", "cray", "fujitsu", "gnu"])
    def test_vect_st_magnitude(self, rows, compiler):
        got = rows[compiler]["vect_st"]
        paper = TABLE2_PAPER[(compiler, "vect")]["st"]
        assert got == pytest.approx(paper, rel=0.30)


class TestMultiThread:
    @pytest.mark.parametrize("compiler", ["arm", "cray", "fujitsu", "gnu",
                                          "intel"])
    def test_mt_much_faster(self, rows, compiler):
        assert rows[compiler]["base_mt"] < rows[compiler]["base_st"] / 10

    @pytest.mark.parametrize("compiler", ["arm", "cray", "fujitsu", "gnu"])
    def test_a64fx_base_mt_magnitude(self, rows, compiler):
        got = rows[compiler]["base_mt"]
        paper = TABLE2_PAPER[(compiler, "base")]["mt"]
        assert got == pytest.approx(paper, rel=0.45)

    def test_a64fx_catches_up_at_full_node(self, rows):
        """Fig. 7's point: the 5x single-thread gap shrinks to ~2x at
        full node (48 slow cores vs 32 derated fast ones)."""
        st_gap = rows["gnu"]["base_st"] / rows["intel"]["base_st"]
        mt_gap = rows["gnu"]["base_mt"] / rows["intel"]["base_mt"]
        assert mt_gap < st_gap / 2


class TestInterface:
    def test_lulesh_time_variants(self):
        assert lulesh_time("gnu", "base") > lulesh_time("gnu", "vect")
        with pytest.raises(ValueError):
            lulesh_time("gnu", "turbo")

    def test_rows_carry_paper_values(self, rows):
        for r in rows.values():
            for variant in ("base", "vect"):
                for mode in ("st", "mt"):
                    assert f"paper_{variant}_{mode}" in r
