"""Tests for the LULESH hex-element kernels (Base vs Vect parity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lulesh.hexkernels import (
    characteristic_length,
    hex_volumes_base,
    hex_volumes_vect,
    make_box_mesh,
    shape_function_derivatives,
)


class TestMesh:
    def test_box_counts(self):
        coords, conn = make_box_mesh(4)
        assert coords.shape == ((5) ** 3, 3)
        assert conn.shape == (64, 8)

    def test_connectivity_in_range(self):
        coords, conn = make_box_mesh(3, jitter=0.2)
        assert conn.min() >= 0
        assert conn.max() < coords.shape[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_box_mesh(0)


class TestVolumes:
    def test_unit_cube_elements(self):
        coords, conn = make_box_mesh(4)
        v = hex_volumes_vect(coords, conn)
        assert np.allclose(v, (1.0 / 4.0) ** 3)

    def test_total_volume_invariant_under_jitter(self):
        """Interior jitter redistributes volume but conserves the total —
        the box is still the box."""
        coords, conn = make_box_mesh(5, jitter=0.4, seed=2)
        v = hex_volumes_vect(coords, conn)
        assert np.sum(v) == pytest.approx(1.0, rel=1e-12)
        assert np.all(v > 0)

    def test_base_equals_vect_bitwise(self):
        """Table II's Base and Vect compute the same thing — only the
        loop structure differs."""
        coords, conn = make_box_mesh(4, jitter=0.3, seed=1)
        assert np.array_equal(hex_volumes_base(coords, conn),
                              hex_volumes_vect(coords, conn))

    def test_sheared_parallelepiped(self):
        # shear preserves volume (det of shear = 1)
        coords, conn = make_box_mesh(2)
        sheared = coords.copy()
        sheared[:, 0] += 0.3 * coords[:, 1]
        v = hex_volumes_vect(sheared, conn)
        assert np.allclose(v, 0.125)

    @given(st.floats(min_value=0.1, max_value=3.0),
           st.floats(min_value=0.1, max_value=3.0),
           st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_property(self, sx, sy, sz):
        coords, conn = make_box_mesh(2)
        scaled = coords * np.array([sx, sy, sz])
        v = hex_volumes_vect(scaled, conn)
        assert np.allclose(v, 0.125 * sx * sy * sz, rtol=1e-10)


class TestShapeFunctions:
    def test_det_matches_volume_for_uniform_hexes(self):
        coords, conn = make_box_mesh(3)
        _, det = shape_function_derivatives(coords, conn)
        v = hex_volumes_vect(coords, conn)
        assert np.allclose(det, v, rtol=1e-12)

    def test_b_matrix_rows_sum_to_zero(self):
        """Constant fields have zero gradient: sum of the B-matrix over
        the 8 nodes vanishes per direction."""
        coords, conn = make_box_mesh(3, jitter=0.3, seed=4)
        b, _ = shape_function_derivatives(coords, conn)
        assert np.allclose(b.sum(axis=2), 0.0, atol=1e-14)

    def test_b_matrix_linear_consistency(self):
        """For u = x, sum_n B[0, n] * x_n must equal the volume-weighted
        gradient (= det * 8 scaling of the centroid Jacobian)."""
        coords, conn = make_box_mesh(3)
        b, det = shape_function_derivatives(coords, conn)
        x_nodes = coords[conn][:, :, 0]  # (nelem, 8)
        grad = np.einsum("en,en->e", b[:, 0, :], x_nodes)
        assert np.allclose(grad, det, rtol=1e-12)


class TestCharacteristicLength:
    def test_uniform_cubes(self):
        coords, conn = make_box_mesh(4)
        cl = characteristic_length(coords, conn)
        h = 0.25
        # LULESH's areaFace term for a cube face evaluates to (2h^2)^2,
        # giving charLen = 4*h^3 / sqrt(16 h^4) = h — the edge length
        assert np.allclose(cl, h, rtol=1e-12)

    def test_positive_on_jittered_mesh(self):
        coords, conn = make_box_mesh(5, jitter=0.4, seed=9)
        cl = characteristic_length(coords, conn)
        assert np.all(cl > 0)
        assert np.all(cl < 1.0)
