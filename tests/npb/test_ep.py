"""Tests for NPB EP — including the official class S verification."""

import numpy as np
import pytest

from repro.npb.ep import EP_VERIFY, NQ, run_ep


@pytest.fixture(scope="module")
def class_s_result():
    return run_ep("S")


class TestOfficialVerification:
    def test_class_s_passes(self, class_s_result):
        """Bit-faithful reproduction of NPB EP class S: the published
        verification sums to 1e-8 relative."""
        r = class_s_result
        ex, ey = EP_VERIFY["S"]
        assert r.verified
        assert r.sx == pytest.approx(ex, rel=1e-10)
        assert r.sy == pytest.approx(ey, rel=1e-10)

    def test_class_s_with_repro_mathlib(self):
        """The project's own log/sqrt kernels hold verification accuracy
        (the vectorized-library ULP class is sufficient)."""
        r = run_ep("S", math="repro")
        assert r.verified

    def test_acceptance_rate_is_pi_over_4(self, class_s_result):
        r = class_s_result
        assert r.accepted / r.pairs == pytest.approx(np.pi / 4, abs=1e-3)

    def test_annulus_counts_sum(self, class_s_result):
        r = class_s_result
        assert sum(r.q) == r.accepted

    def test_counts_decay(self, class_s_result):
        # Gaussian tails: each annulus holds fewer than the previous
        q = class_s_result.q
        nonzero = [c for c in q if c > 0]
        assert all(a > b for a, b in zip(nonzero, nonzero[1:]))
        assert len(q) == NQ


class TestInvocation:
    def test_chunking_invariance(self):
        a = run_ep("S", log2_pairs=16, chunk_pairs=1 << 12)
        b = run_ep("S", log2_pairs=16, chunk_pairs=1 << 16)
        # summation order differs across chunk boundaries: equal to
        # floating-point roundoff, and identical tallies
        assert a.sx == pytest.approx(b.sx, rel=1e-12)
        assert a.sy == pytest.approx(b.sy, rel=1e-12)
        assert a.q == b.q and a.accepted == b.accepted

    def test_custom_size(self):
        r = run_ep(log2_pairs=14)
        assert r.pairs == 1 << 14
        assert r.accepted > 0

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            run_ep("Z")

    def test_bad_math(self):
        with pytest.raises(ValueError):
            run_ep("S", math="mkl", log2_pairs=10)

    @pytest.mark.slow
    def test_class_w_official_verification(self):
        r = run_ep("W")
        assert r.verified
        ex, ey = EP_VERIFY["W"]
        assert r.sx == pytest.approx(ex, rel=1e-10)
        assert r.sy == pytest.approx(ey, rel=1e-10)

    def test_gaussian_moments_small_run(self):
        r = run_ep(log2_pairs=18)
        # mean of each Gaussian component ~ 0 within MC error
        n = r.accepted
        assert abs(r.sx / n) < 5.0 / np.sqrt(n)
        assert abs(r.sy / n) < 5.0 / np.sqrt(n)
