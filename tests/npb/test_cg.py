"""Tests for NPB CG — including the official class S verification."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.npb.cg import CG_VERIFY, make_cg_matrix, run_cg
from repro.npb.classes import CLASSES


@pytest.fixture(scope="module")
def class_s_result():
    return run_cg("S")


class TestOfficialVerification:
    def test_class_s_zeta(self, class_s_result):
        """Bit-faithful NPB CG class S: zeta matches the published
        verification value to 1e-10."""
        r = class_s_result
        assert r.verified
        assert r.zeta == pytest.approx(CG_VERIFY["S"], abs=1e-10)

    def test_residual_tiny(self, class_s_result):
        assert class_s_result.rnorm < 1e-10

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            run_cg("X")

    @pytest.mark.slow
    def test_class_w_zeta(self):
        r = run_cg("W")
        assert r.verified
        assert r.zeta == pytest.approx(CG_VERIFY["W"], abs=1e-10)

    @pytest.mark.slow
    def test_class_a_zeta(self):
        r = run_cg("A")
        assert r.verified
        assert r.zeta == pytest.approx(CG_VERIFY["A"], abs=1e-10)


class TestMakea:
    @pytest.fixture(scope="class")
    def matrix_s(self):
        pc = CLASSES["S"]
        return make_cg_matrix(pc.cg_n, pc.cg_nonzer, pc.cg_shift)

    def test_shape(self, matrix_s):
        assert matrix_s.shape == (1400, 1400)

    def test_symmetric(self, matrix_s):
        diff = matrix_s - matrix_s.T
        assert abs(diff).max() < 1e-12

    def test_sparse(self, matrix_s):
        density = matrix_s.nnz / (1400 * 1400)
        assert density < 0.06  # "large, sparse, and unstructured"

    def test_eigenvalue_relationship(self, matrix_s, class_s_result):
        """Inverse power iteration converges to the eigenvalue of A of
        smallest magnitude; since x.z -> 1/lambda, the benchmark's
        zeta = shift + 1/(x.z) = shift + lambda (dense cross-check)."""
        lams = np.linalg.eigvalsh(matrix_s.toarray())
        lam = lams[np.argmin(np.abs(lams))]
        assert class_s_result.zeta == pytest.approx(10.0 + lam, abs=1e-4)

    def test_deterministic(self):
        a = make_cg_matrix(200, 3, 10.0)
        b = make_cg_matrix(200, 3, 10.0)
        assert (a != b).nnz == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_cg_matrix(0, 3, 10.0)
