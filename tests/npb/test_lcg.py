"""Tests for the NPB 46-bit LCG (exactness and skip-ahead)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npb.lcg import (
    A_NPB,
    Randlc,
    SEED_NPB,
    mulmod46,
    powmod46,
    randlc_batch,
)

MOD = 1 << 46


class TestModularArithmetic:
    @given(st.integers(min_value=0, max_value=MOD - 1),
           st.integers(min_value=0, max_value=MOD - 1))
    @settings(max_examples=200, deadline=None)
    def test_mulmod_matches_python(self, x, y):
        got = int(mulmod46(np.int64(x), np.int64(y)))
        assert got == (x * y) % MOD

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_powmod(self, n):
        assert powmod46(A_NPB, n) == pow(A_NPB, n, MOD)

    def test_powmod_negative(self):
        with pytest.raises(ValueError):
            powmod46(A_NPB, -1)


class TestBatchGeneration:
    def test_matches_serial_recurrence(self):
        # reference serial randlc
        state = SEED_NPB
        ref = []
        for _ in range(500):
            state = (state * A_NPB) % MOD
            ref.append(state / MOD)
        got = randlc_batch(SEED_NPB, 500)
        assert np.allclose(got, ref, rtol=0, atol=0)

    def test_range(self):
        u = randlc_batch(SEED_NPB, 10_000)
        assert np.all((u > 0) & (u < 1))

    def test_batch_sizes_consistent(self):
        a = randlc_batch(SEED_NPB, 1000)
        b = randlc_batch(SEED_NPB, 123)
        assert np.array_equal(a[:123], b)


class TestRandlcStateful:
    def test_next_batch_continues_stream(self):
        gen = Randlc()
        a = np.concatenate([gen.next_batch(100), gen.next_batch(200)])
        b = Randlc().next_batch(300)
        assert np.array_equal(a, b)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_skip_equivalence(self, n):
        skipped = Randlc()
        skipped.skip(n)
        direct = Randlc()
        direct.next_batch(n + 1)  # consume n+1, compare the tail
        assert skipped.next_batch(1)[0] == direct.next_batch(0 + 1)[0] or True
        # stronger: positions line up
        a = Randlc(); a.skip(n)
        b = Randlc();
        if n:
            b.next_batch(n)
        assert np.array_equal(a.next_batch(50), b.next_batch(50))

    def test_scalar_matches_batch(self):
        gen = Randlc()
        vals = [gen.next_scalar() for _ in range(10)]
        assert np.allclose(vals, randlc_batch(SEED_NPB, 10), atol=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Randlc(seed=0)
        with pytest.raises(ValueError):
            Randlc().skip(-1)
        with pytest.raises(ValueError):
            Randlc().next_batch(0)

    def test_statistics(self):
        u = randlc_batch(SEED_NPB, 1_000_000)
        assert np.mean(u) == pytest.approx(0.5, abs=1e-3)
        assert np.var(u) == pytest.approx(1 / 12, abs=1e-3)
