"""Regression tests: the NPB workload signatures must reproduce the
paper's Figure 3-6 shapes through the machine model."""

import pytest

from repro.bench.expected import (
    FIG3_RATIO_BANDS,
    FIG5_EFFICIENCY_BANDS,
    FIG6_EFFICIENCY_BANDS,
)
from repro.compilers.toolchains import TOOLCHAINS
from repro.kernels.workload import parallel_run, serial_seconds
from repro.machine.numa import PagePlacement
from repro.machine.systems import get_system
from repro.npb.workloads import NPB_WORKLOADS, PARALLEL_FACTORS, npb_workload

OOKAMI = get_system("ookami")
SKYLAKE = get_system("skylake")
A64FX_TCS = ("fujitsu", "cray", "arm", "gnu")


def _serial(bench, tc):
    return serial_seconds(NPB_WORKLOADS[bench],
                          SKYLAKE if tc == "intel" else OOKAMI,
                          TOOLCHAINS[tc])


def _fullnode(bench, tc, placement=None):
    work = NPB_WORKLOADS[bench]
    pf = PARALLEL_FACTORS.get(bench, {}).get(tc, 1.0)
    if tc == "intel":
        return parallel_run(work, SKYLAKE, TOOLCHAINS[tc], 36).seconds
    return parallel_run(work, OOKAMI, TOOLCHAINS[tc], 48,
                        placement=placement, parallel_factor=pf).seconds


class TestLookup:
    def test_npb_workload_lookup(self):
        assert npb_workload("cg").name == "CG.C"
        with pytest.raises(KeyError):
            npb_workload("FT")


class TestFig3Serial:
    @pytest.mark.parametrize("bench", sorted(NPB_WORKLOADS))
    def test_ratio_bands(self, bench):
        """'Intel compiler outperforms all the compilers in A64FX by a
        huge margin (from 1.6X to 5.5X)'"""
        best = min(_serial(bench, tc) for tc in A64FX_TCS)
        icc = _serial(bench, "intel")
        lo, hi = FIG3_RATIO_BANDS[bench]
        assert lo <= best / icc <= hi

    def test_cg_has_narrowest_gap(self):
        ratios = {
            b: min(_serial(b, tc) for tc in A64FX_TCS) / _serial(b, "intel")
            for b in NPB_WORKLOADS
        }
        assert min(ratios, key=ratios.get) in ("CG", "SP")

    def test_ep_has_widest_gap(self):
        ratios = {
            b: min(_serial(b, tc) for tc in A64FX_TCS) / _serial(b, "intel")
            for b in NPB_WORKLOADS
        }
        assert max(ratios, key=ratios.get) == "EP"

    @pytest.mark.parametrize("bench", ["BT", "SP", "LU", "CG", "UA"])
    def test_gcc_best_or_comparable(self, bench):
        """'gcc seems to perform the best or comparable for 5 of the 6
        apps except for EP'"""
        gnu = _serial(bench, "gnu")
        best = min(_serial(bench, tc) for tc in A64FX_TCS)
        assert gnu <= best * 1.05

    def test_gcc_three_fold_worse_on_ep(self):
        """'both compilers vectorized the same portion of the code, yet
        there is a 3 fold performance difference'"""
        gnu = _serial("EP", "gnu")
        best = min(_serial("EP", tc) for tc in A64FX_TCS)
        assert 2.3 <= gnu / best <= 3.8


class TestFig4FullNode:
    @pytest.mark.parametrize("bench", ["SP", "UA", "CG"])
    def test_a64fx_wins_memory_bound(self, bench):
        """'in some cases, it outperforms Skylake (SP and UA) ... A64FX
        performs well in memory-bound applications (CG, SP, UA)'"""
        best_a64 = min(_fullnode(bench, tc) for tc in A64FX_TCS)
        assert best_a64 < _fullnode(bench, "intel")

    @pytest.mark.parametrize("bench", ["BT", "LU", "EP"])
    def test_skylake_wins_compute_bound(self, bench):
        best_a64 = min(_fullnode(bench, tc) for tc in A64FX_TCS)
        assert _fullnode(bench, "intel") < best_a64

    def test_fujitsu_default_placement_hurts_sp(self):
        """'the Fujitsu compiler showed a much better performance in SP'
        (with first touch)"""
        default = _fullnode("SP", "fujitsu")
        ft = _fullnode("SP", "fujitsu", PagePlacement.FIRST_TOUCH)
        assert default > 1.5 * ft

    def test_fujitsu_first_touch_slight_on_cg(self):
        """'... and a slightly better performance in all the apps'"""
        default = _fullnode("CG", "fujitsu")
        ft = _fullnode("CG", "fujitsu", PagePlacement.FIRST_TOUCH)
        assert ft <= default <= 1.3 * ft

    def test_ua_fujitsu_still_behind_gcc_after_first_touch(self):
        """'the performance improvement in UA is still not significant
        enough for it to be comparable with other compilers'"""
        ft = _fullnode("UA", "fujitsu", PagePlacement.FIRST_TOUCH)
        gnu = _fullnode("UA", "gnu")
        assert ft > 1.2 * gnu

    @pytest.mark.parametrize("bench", ["BT", "UA"])
    def test_arm_anomaly(self, bench):
        """'interesting results with the ARM (in UA and BT)'"""
        arm = _fullnode(bench, "arm")
        gnu = _fullnode(bench, "gnu")
        assert arm > 1.5 * gnu


class TestScalingFigures:
    @pytest.mark.parametrize("bench", sorted(NPB_WORKLOADS))
    def test_fig5_a64fx_bands(self, bench):
        run = parallel_run(NPB_WORKLOADS[bench], OOKAMI, TOOLCHAINS["gnu"], 48)
        lo, hi = FIG5_EFFICIENCY_BANDS[bench]
        assert lo <= run.efficiency <= hi

    @pytest.mark.parametrize("bench", sorted(NPB_WORKLOADS))
    def test_fig6_skylake_bands(self, bench):
        run = parallel_run(NPB_WORKLOADS[bench], SKYLAKE, TOOLCHAINS["intel"],
                           36)
        lo, hi = FIG6_EFFICIENCY_BANDS[bench]
        assert lo <= run.efficiency <= hi

    def test_a64fx_scales_better_than_skylake(self):
        """'A64FX shows better scaling for all the applications compared
        to Skylake.'"""
        for bench, work in NPB_WORKLOADS.items():
            a64 = parallel_run(work, OOKAMI, TOOLCHAINS["gnu"], 48).efficiency
            skl = parallel_run(work, SKYLAKE, TOOLCHAINS["intel"],
                               36).efficiency
            assert a64 > skl, bench

    def test_sp_is_least_scaling_on_a64fx(self):
        """'SP (memory-bound) having the least scaling/parallel
        efficiency of 0.6 across all 48 cores'"""
        effs = {
            b: parallel_run(w, OOKAMI, TOOLCHAINS["gnu"], 48).efficiency
            for b, w in NPB_WORKLOADS.items()
        }
        assert min(effs, key=effs.get) == "SP"
        assert effs["SP"] == pytest.approx(0.6, abs=0.1)

    def test_ep_near_linear_on_a64fx(self):
        eff = parallel_run(NPB_WORKLOADS["EP"], OOKAMI, TOOLCHAINS["gnu"],
                           48).efficiency
        assert eff > 0.95
