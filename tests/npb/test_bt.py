"""Tests for the BT mini-app (block-tridiagonal ADI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npb.bt import BTMini, NCOMP, block_thomas


def _random_system(nlines, n, c, seed=0, dominance=3.0):
    rng = np.random.default_rng(seed)
    lower = rng.standard_normal((nlines, n, c, c)) * 0.1
    upper = rng.standard_normal((nlines, n, c, c)) * 0.1
    diag = rng.standard_normal((nlines, n, c, c)) * 0.1 + np.eye(c) * dominance
    rhs = rng.standard_normal((nlines, n, c))
    return lower, diag, upper, rhs


def _dense_solve(lower, diag, upper, rhs, line):
    n, c = rhs.shape[1], rhs.shape[2]
    a = np.zeros((n * c, n * c))
    for k in range(n):
        a[k * c:(k + 1) * c, k * c:(k + 1) * c] = diag[line, k]
        if k > 0:
            a[k * c:(k + 1) * c, (k - 1) * c:k * c] = lower[line, k]
        if k < n - 1:
            a[k * c:(k + 1) * c, (k + 1) * c:(k + 2) * c] = upper[line, k]
    return np.linalg.solve(a, rhs[line].ravel()).reshape(n, c)


class TestBlockThomas:
    def test_matches_dense_solve(self):
        lower, diag, upper, rhs = _random_system(4, 9, 5)
        x = block_thomas(lower, diag, upper, rhs)
        for line in range(4):
            ref = _dense_solve(lower, diag, upper, rhs, line)
            assert np.allclose(x[line], ref, atol=1e-11)

    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_sizes_property(self, n, c):
        lower, diag, upper, rhs = _random_system(2, n, c, seed=n * 7 + c)
        x = block_thomas(lower, diag, upper, rhs)
        ref = _dense_solve(lower, diag, upper, rhs, 0)
        assert np.allclose(x[0], ref, atol=1e-9)

    def test_identity_system(self):
        n, c = 6, 5
        eye = np.broadcast_to(np.eye(c), (1, n, c, c)).copy()
        zero = np.zeros_like(eye)
        rhs = np.arange(n * c, dtype=float).reshape(1, n, c)
        x = block_thomas(zero, eye, zero, rhs)
        assert np.allclose(x, rhs)

    def test_shape_validation(self):
        lower, diag, upper, rhs = _random_system(2, 5, 3)
        with pytest.raises(ValueError):
            block_thomas(lower, diag, upper, rhs[:, :, :2])
        with pytest.raises(ValueError):
            block_thomas(lower[:1], diag, upper, rhs)


class TestBTMini:
    def test_residual_decreases(self):
        m = BTMini(n=8, dt=0.05)
        hist = m.run(40)
        assert hist[-1] < hist[0] / 50

    def test_converges_to_manufactured_solution(self):
        m = BTMini(n=8, dt=0.05)
        m.run(80)
        assert m.error() < 5e-3

    def test_five_components(self):
        m = BTMini(n=6)
        assert m.u.shape == (6, 6, 6, NCOMP)

    def test_steady_state_is_fixed_point(self):
        m = BTMini(n=6, dt=0.05)
        m.u = m.target.copy()
        r0 = m.residual()
        assert r0 < 1e-10
        m.step()
        assert m.error() < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            BTMini(n=2)
        with pytest.raises(ValueError):
            BTMini(n=8, dt=-0.1)
        m = BTMini(n=6)
        with pytest.raises(ValueError):
            m.run(0)
